// Package stabilizer is a flexible geo-replication library with
// user-defined consistency models, reproducing "Stabilizer: Geo-Replication
// with User-defined Consistency" (ICDCS 2022).
//
// A Stabilizer deployment is a set of WAN nodes (data centers), each owning
// a pool of data it alone updates (primary-site model) and mirroring every
// other node's stream. The data plane streams messages aggressively to
// saturate WAN bandwidth; the control plane streams monotonic stability
// reports (ACKs) separately, and every node independently re-evaluates its
// registered stability frontier predicates as reports arrive.
//
// Consistency models are expressions in a small DSL over per-node
// acknowledgment counters:
//
//	MIN($ALLWNODES)                                   // received everywhere
//	KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)       // majority quorum
//	MIN(MIN($MYAZWNODES-$MYWNODE),
//	    MAX($ALLWNODES-$MYAZWNODES))                  // AZ-replicated + ≥1 remote
//	MIN(($ALLWNODES-$MYWNODE).verified)               // app-defined level
//
// Quick start:
//
//	node, err := stabilizer.Open(stabilizer.Config{
//	    Topology: topo,          // *stabilizer.Topology
//	    Network:  network,       // emulated or loopback fabric
//	})
//	node.RegisterPredicate("maj", "KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)")
//	seq, _ := node.Send(payload)
//	node.WaitFor(ctx, seq, "maj") // block until majority-stable
//
// To run several WAN nodes in one process — emulated deployments, tests,
// benchmarks — open a Cluster instead of wiring nodes by hand. Every node
// shares one metrics registry, each instrumenting through its own
// node-labeled group, so a single ServeMetrics endpoint exposes the whole
// deployment:
//
//	reg := stabilizer.NewMetricsRegistry()
//	cluster, err := stabilizer.OpenCluster(stabilizer.ClusterConfig{
//	    Topology: topo,          // full deployment; Nodes picks a subset
//	    Network:  network,
//	    Metrics:  reg,           // shared; families carry node="<id>"
//	})
//	defer cluster.Close()        // ordered drain, reverse boot order
//	n1 := cluster.Node(1)
//	seq, _ := n1.Send(payload)
//	cluster.WaitAllFor(ctx, seq, "maj") // stable on every live node
//	stabilizer.ServeMetrics(":9090", reg, nil, stabilizer.WithPprof())
//
// # Naming conventions
//
// Methods come in pairs when both a plain and a context-aware form make
// sense: the plain name (Send, Put, Backup) blocks with the package's
// default deadline semantics, and the Ctx-suffixed variant (SendCtx,
// PutCtx, BackupCtx) takes a context.Context for cancellation. Methods
// that are blocking by design — WaitFor, WaitStable, WaitAllFor — have no
// plain form and always take a context as their first argument.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package stabilizer

import (
	"net/http"

	"stabilizer/internal/adaptive"
	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
	"stabilizer/internal/transport"
)

// Re-exported core types: the root package is a thin facade over
// internal/core so downstream users never import internal paths.
type (
	// Node is one Stabilizer WAN node. See core.Node for method docs.
	Node = core.Node
	// Config parameterizes Open.
	Config = core.Config
	// Cluster is a set of WAN nodes booted together in one process,
	// sharing one metrics registry. See core.Cluster for method docs.
	Cluster = core.Cluster
	// ClusterConfig parameterizes OpenCluster.
	ClusterConfig = core.ClusterConfig
	// Checkpoint captures restartable control-plane state (§III-E).
	Checkpoint = core.Checkpoint
	// Message is a delivered data-plane message.
	Message = core.Message
	// AppMessage is an out-of-band application message.
	AppMessage = core.AppMessage
	// DeliverFunc consumes delivered messages.
	DeliverFunc = core.DeliverFunc
	// Persister persists delivered messages for the "persisted" level.
	Persister = core.Persister
	// Stats is a point-in-time node state snapshot.
	Stats = core.Stats
	// DebugSnapshot is a JSON-friendly control-plane dump (Node.DebugSnapshot).
	DebugSnapshot = core.DebugSnapshot

	// MetricsRegistry collects instrumentation; share one across every
	// node of a deployment (Config.Metrics / ClusterConfig.Metrics) and
	// expose it with ServeMetrics. Registries form label groups: each
	// node instruments through a node="<id>" view of the shared root, so
	// one scrape distinguishes every in-process node.
	MetricsRegistry = metrics.Registry
	// MetricsHistogram is a log2-bucketed latency histogram (for example
	// the per-predicate stability-latency histogram returned by
	// Node.StabilityLatencyHistogram); feed one to NewSLOMonitor.
	MetricsHistogram = metrics.Histogram
	// ServeOption tweaks the ServeMetrics endpoint (see WithPprof).
	ServeOption = metrics.ServeOption

	// SLOConfig parameterizes an in-process multiwindow burn-rate
	// monitor over a latency histogram (see NewSLOMonitor). The
	// Prometheus-rule equivalent lives in examples/alerts.
	SLOConfig = metrics.SLOConfig
	// SLOMonitor watches a histogram and fires BurnAlert transitions.
	SLOMonitor = metrics.SLOMonitor
	// BurnAlert is one SLO alert state change.
	BurnAlert = metrics.BurnAlert

	// Ladder is an ordered, validated sequence of predicate rungs from
	// strongest to weakest for the adaptive controller; build one with
	// NewLadder, ParseLadder, or a preset (LadderWNodes, LadderRegions,
	// LadderAllMajorityK).
	Ladder = adaptive.Ladder
	// Rung is one ladder step: a display name plus the predicate DSL
	// source installed while the rung is active.
	Rung = adaptive.Rung
	// AdaptiveConfig tunes one closed-loop consistency controller: the
	// stability-latency SLO (Target, Objective, burn windows) and the
	// hysteresis that keeps it from flapping (MinDwell, Cooldown).
	AdaptiveConfig = adaptive.Config
	// AdaptiveController is the handle for a running controller: current
	// rung, transition history, OnTransition hook. Obtain one from
	// Node.StartAdaptive or Node.AdaptiveController.
	AdaptiveController = adaptive.Controller
	// AdaptiveTransition is one recorded controller rung change.
	AdaptiveTransition = adaptive.Transition
	// AdaptiveDirection labels a transition AdaptiveDown or AdaptiveUp.
	AdaptiveDirection = adaptive.Direction
	// AdaptiveSpec starts the controller at boot time; set via
	// Config.Adaptive / ClusterConfig.Adaptive.
	AdaptiveSpec = core.AdaptiveSpec

	// Topology describes the WAN deployment.
	Topology = config.Topology
	// TopologyNode is one WAN node entry.
	TopologyNode = config.Node

	// BatchConfig tunes data-plane send batching (RTT-adaptive byte
	// budget, flush interval); set via Config.Batch.
	BatchConfig = transport.BatchConfig
	// FlowConfig bounds the send log with admission control (byte/entry
	// caps with hysteretic high/low watermarks); set via Config.Flow.
	FlowConfig = transport.FlowConfig
	// FlowMode picks blocking or fail-fast admission.
	FlowMode = transport.FlowMode
	// StallConfig arms the degraded-mode stall monitor; set via
	// Config.Stall.
	StallConfig = core.StallConfig
	// StallReport is one stall notification with blame attribution
	// (see Node.OnStall).
	StallReport = core.StallReport
	// Health is a degraded-mode snapshot: send-log occupancy, admission
	// pressure, and per-predicate stall state (see Node.Health).
	Health = core.Health
	// PredicateHealth is one predicate's stall view inside Health.
	PredicateHealth = core.PredicateHealth
	// PeerLag describes one blamed peer inside PredicateHealth.
	PeerLag = core.PeerLag

	// TraceConfig arms the per-operation flight recorder (sampling rate
	// and per-node ring size); set via Config.Trace / ClusterConfig.Trace.
	// The zero value keeps tracing off with zero hot-path cost.
	TraceConfig = optrace.Config
	// TraceEvent is one recorded lifecycle point of a traced operation.
	TraceEvent = optrace.Event
	// TraceTimeline is the merged cross-node view of one operation
	// (see Cluster.TraceOp and Cluster.SlowestOp).
	TraceTimeline = optrace.Timeline

	// Network is the fabric abstraction nodes dial through.
	Network = emunet.Network
	// Link is one directed link's latency/bandwidth profile.
	Link = emunet.Link
	// Matrix holds a deployment's link profiles.
	Matrix = emunet.Matrix
)

// Admission modes for FlowConfig.Mode.
const (
	// FlowBlock makes Send wait for reclaimed space when the log is full
	// (SendCtx for cancellation).
	FlowBlock = transport.FlowBlock
	// FlowFail makes Send return ErrBackpressure when the log is full.
	FlowFail = transport.FlowFail
	// FlowSpill migrates the cold prefix of the send log to on-disk
	// segment files when the memory cap latches: memory stays bounded
	// while a partitioned peer's backlog grows with the disk, and the
	// stream is read back gapless on reconnect. Requires
	// FlowConfig.SpillDir plus at least one cap.
	FlowSpill = transport.FlowSpill
)

// Directions an adaptive controller transition can move.
const (
	// AdaptiveDown is a step to a weaker rung (higher ladder index).
	AdaptiveDown = adaptive.DirectionDown
	// AdaptiveUp is a step back to a stronger rung (lower ladder index).
	AdaptiveUp = adaptive.DirectionUp
)

// ErrBackpressure is returned by Send in FlowFail mode when the bounded
// send log is full: the caller sheds load instead of queueing unbounded.
var ErrBackpressure = transport.ErrBackpressure

// DefaultStabilizeInterval is the recommended Config.StabilizeInterval /
// ClusterConfig.StabilizeInterval for deferred stabilization: ACK ingestion
// marks predicates dirty and a background control-plane tick drains them
// in batches, keeping frontier evaluation off the append/ACK hot path. The
// zero value keeps the legacy inline mode (stabilize synchronously on every
// ACK advance).
const DefaultStabilizeInterval = core.DefaultStabilizeInterval

// DefaultLogStripes is the send-log stripe count used when
// Config.LogStripes is zero: min(8, GOMAXPROCS). See Config.LogStripes.
func DefaultLogStripes() int { return transport.DefaultLogStripes() }

// Open starts a Stabilizer node and connects it to its peers. It is the
// single-node form of OpenCluster: the node's metrics land in a
// node-labeled group of the registry exactly as a cluster member's would.
func Open(cfg Config) (*Node, error) { return core.Open(cfg) }

// OpenCluster boots the requested subset of a topology's nodes (all of
// them by default) in this process, wiring every node into one shared
// metrics registry. See ClusterConfig for the knobs and Cluster for the
// cluster-wide helpers (Node, Health, WaitAllFor, ordered Close).
func OpenCluster(cfg ClusterConfig) (*Cluster, error) { return core.OpenCluster(cfg) }

// NewMetricsRegistry returns an empty metrics registry for Config.Metrics
// or ClusterConfig.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewSLOMonitor starts an in-process multiwindow burn-rate monitor over a
// latency histogram — the code-level twin of the Prometheus alert rules in
// examples/alerts/stability-slo.rules.yml. Close it to stop the sampler.
func NewSLOMonitor(h *MetricsHistogram, cfg SLOConfig) (*SLOMonitor, error) {
	return metrics.NewSLOMonitor(h, cfg)
}

// NewLadder validates and builds an adaptation ladder, strongest rung
// first. It needs at least two rungs with unique names and sources.
func NewLadder(rungs ...Rung) (Ladder, error) { return adaptive.NewLadder(rungs...) }

// ParseLadder builds a ladder from the CLI form "name=SOURCE;name=SOURCE",
// strongest rung first — the syntax the -adaptive-ladder flags take.
func ParseLadder(s string) (Ladder, error) { return adaptive.ParseLadder(s) }

// ServeMetrics binds addr and serves reg at /metrics (Prometheus text
// format; JSON with ?format=json) in the background, plus any extra
// handlers keyed by path. Options add optional endpoints (WithPprof).
// Close the returned server on shutdown.
func ServeMetrics(addr string, reg *MetricsRegistry, extra map[string]http.Handler, opts ...ServeOption) (*http.Server, error) {
	return metrics.Serve(addr, reg, extra, opts...)
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the ServeMetrics
// mux, so profiles come from the same port as the scrape endpoint instead
// of requiring the DefaultServeMux on a second listener.
func WithPprof() ServeOption { return metrics.WithPprof() }

// NewTraceHandler serves a cluster's per-operation flight recorder over
// HTTP: ?origin=N&seq=M returns the merged cross-node timeline of one
// sampled operation, ?op=latest-slow picks the slowest sampled op, and
// &format=chrome renders Chrome trace_event JSON for about://tracing.
// Mount it (conventionally at /debug/trace) via ServeMetrics' extra map;
// it requires ClusterConfig.Trace to be enabled.
func NewTraceHandler(cluster *Cluster) http.Handler { return optrace.NewHTTPHandler(cluster) }

// LoadTopology reads and validates a topology JSON file.
func LoadTopology(path string) (*Topology, error) { return config.Load(path) }

// ParseTopology decodes and validates topology JSON.
func ParseTopology(raw []byte) (*Topology, error) { return config.Parse(raw) }

// NewMatrix returns an empty link-profile matrix.
func NewMatrix() *Matrix { return emunet.NewMatrix() }

// NewMemNetwork builds an in-process fabric shaped by matrix (nil for
// unshaped links) — ideal for tests and single-machine experiments.
func NewMemNetwork(matrix *Matrix) Network { return emunet.NewMemNetwork(matrix) }

// NewTCPNetwork builds a loopback-TCP fabric shaped by matrix.
func NewTCPNetwork(matrix *Matrix) Network { return emunet.NewTCPNetwork(matrix) }

// Mbps converts megabits per second to the bits-per-second unit Link uses.
func Mbps(v float64) float64 { return emunet.Mbps(v) }

// EC2Topology returns the paper's Fig. 2 8-node/4-region AWS topology.
func EC2Topology(self int) *Topology { return config.EC2Topology(self) }

// EC2Matrix returns the paper's Table I link profiles for EC2Topology.
func EC2Matrix() *Matrix { return emunet.EC2Matrix() }

// CloudLabTopology returns the paper's Table II 5-node CloudLab topology.
func CloudLabTopology(self int) *Topology { return config.CloudLabTopology(self) }

// CloudLabMatrix returns the paper's Table II link profiles.
func CloudLabMatrix() *Matrix { return emunet.CloudLabMatrix() }
