// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON record, so benchmark results can be checked in and diffed.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson             # JSON to stdout
//	go test -bench=. -benchmem ./... | benchjson -update F   # rewrite F
//	go test -bench=. -benchmem ./... | benchjson -compare F  # regression gate
//
// With -update, the parsed run is stored under "current"; an existing
// file's "baseline" section is preserved so the pre-optimization numbers
// survive regeneration. A fresh file seeds "baseline" from the first run.
//
// With -compare, nothing is written: the run on stdin is checked against
// the file's recorded "current" section (falling back to "baseline").
// Every benchmark whose name contains -match (default "StreamThroughput")
// has its -metric value (default "msgs/s") compared; regressions up to the
// blocking threshold (default 20%) print a non-blocking warning, and at or
// past it fail the command — the CI gate for performance regressions.
// Metrics whose unit ends in "/op" (ns/op, B/op, allocs/op) are
// lower-is-better; everything else (msgs/s, MB/s, ...) higher-is-better.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op", "B/op", "allocs/op",
	// "MB/s" and any b.ReportMetric unit such as "msgs/s".
	Metrics map[string]float64 `json:"metrics"`
}

// Run is one benchmark invocation.
type Run struct {
	Date       string      `json:"date"`
	Go         string      `json:"go,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk layout of BENCH_*.json records.
type File struct {
	Note     string `json:"note,omitempty"`
	Baseline *Run   `json:"baseline,omitempty"`
	Current  *Run   `json:"current,omitempty"`
}

func main() {
	update := flag.String("update", "", "rewrite this JSON file, preserving its baseline section")
	note := flag.String("note", "", "free-form note stored in the file (only with -update on a fresh file)")
	compare := flag.String("compare", "", "compare the run on stdin against this JSON file's recorded numbers instead of writing anything")
	threshold := flag.Float64("threshold", 0.20, "blocking regression threshold for -compare (fraction of the recorded value)")
	match := flag.String("match", "StreamThroughput", "substring selecting which benchmarks -compare judges")
	metric := flag.String("metric", "msgs/s", "metric unit -compare judges; units ending in /op are lower-is-better")
	flag.Parse()

	run := &Run{Date: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass output through so failures stay visible
		if strings.HasPrefix(line, "go: ") || strings.HasPrefix(line, "goos:") {
			continue
		}
		if b, ok := parseLine(line); ok {
			run.Benchmarks = append(run.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read stdin: %v", err)
	}
	if len(run.Benchmarks) == 0 {
		fatalf("no benchmark lines found on stdin")
	}

	if *compare != "" {
		compareRun(run, *compare, *threshold, *match, *metric)
		return
	}
	if *update == "" {
		emit(os.Stdout, &File{Current: run})
		return
	}
	out := &File{Note: *note, Baseline: run, Current: run}
	if data, err := os.ReadFile(*update); err == nil {
		var prev File
		if err := json.Unmarshal(data, &prev); err != nil {
			fatalf("parse %s: %v", *update, err)
		}
		if prev.Baseline != nil {
			out.Baseline = prev.Baseline
		}
		if prev.Note != "" && *note == "" {
			out.Note = prev.Note
		}
	}
	f, err := os.Create(*update)
	if err != nil {
		fatalf("%v", err)
	}
	emit(f, out)
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
}

// compareRun gates the fresh run against the recorded numbers in path: for
// every benchmark matching the name substring and present on both sides,
// a regression of the chosen metric of at least thresh fails the command;
// smaller regressions warn. Benchmarks missing on either side are skipped
// (new benchmarks must not break the gate). For rate metrics a regression
// is a drop; for /op metrics (time, bytes, allocs) it is an increase.
func compareRun(run *Run, path string, thresh float64, match, metric string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("read %s: %v", path, err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fatalf("parse %s: %v", path, err)
	}
	ref := f.Current
	if ref == nil {
		ref = f.Baseline
	}
	if ref == nil {
		fatalf("%s has neither current nor baseline numbers", path)
	}
	recorded := make(map[string]float64, len(ref.Benchmarks))
	for _, b := range ref.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			recorded[b.Name] = v
		}
	}
	lowerBetter := strings.HasSuffix(metric, "/op")
	checked, failed := 0, false
	for _, b := range run.Benchmarks {
		if !strings.Contains(b.Name, match) {
			continue
		}
		want, ok := recorded[b.Name]
		got, has := b.Metrics[metric]
		if !ok || !has || want <= 0 {
			continue
		}
		checked++
		var reg float64 // fraction of the recorded value lost (or gained, for /op)
		if lowerBetter {
			reg = (got - want) / want
		} else {
			reg = (want - got) / want
		}
		direction := "below"
		if lowerBetter {
			direction = "above"
		}
		switch {
		case reg >= thresh:
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %.0f %s is %.1f%% %s the recorded %.0f (threshold %.0f%%)\n",
				b.Name, got, metric, reg*100, direction, want, thresh*100)
			failed = true
		case reg > 0:
			fmt.Fprintf(os.Stderr, "benchjson: warn %s: %.0f %s is %.1f%% %s the recorded %.0f\n",
				b.Name, got, metric, reg*100, direction, want)
		default:
			fmt.Printf("benchjson: ok %s: %.0f %s (recorded %.0f)\n", b.Name, got, metric, want)
		}
	}
	if checked == 0 {
		fatalf("no %q benchmarks with a %q metric to compare against %s", match, metric, path)
	}
	if failed {
		os.Exit(1)
	}
}

// parseLine parses one `Benchmark...` result line: a name, an iteration
// count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimSuffix(fields[0], "-"+lastDashSuffix(fields[0])),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// lastDashSuffix returns the trailing -N GOMAXPROCS suffix digits of a
// benchmark name, or "" when there is none.
func lastDashSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	suf := name[i+1:]
	if _, err := strconv.Atoi(suf); err != nil {
		return ""
	}
	return suf
}

func emit(w *os.File, f *File) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		fatalf("encode: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
