// Command wankv runs an interactive geo-replicated K/V demo: it boots one
// Stabilizer node per topology entry on an in-process emulated WAN and
// accepts commands on stdin, so you can watch writes propagate, frontiers
// advance, and predicates change — all from one terminal.
//
// Usage:
//
//	wankv                       # Fig. 2 EC2 topology, Table I links
//	wankv -topology topo.json   # custom deployment
//	wankv -timescale 5          # compress WAN latencies 5x
//	wankv -metrics-addr :9090   # every node's /metrics + /debug/stabilizer
//	                            # + /debug/trace (per-op flight recorder:
//	                            # ?origin=N&seq=M, ?op=latest-slow,
//	                            # &format=chrome for about://tracing)
//	wankv -metrics-addr :9090 -pprof
//	                            # plus /debug/pprof on the same port
//	wankv -trace-sample 1       # trace every op instead of 1 in 64
//	wankv -flow-max-bytes 65536 -flow-mode fail -stall-deadline 2s
//	                            # bounded send logs + degraded-mode reporting
//	wankv -adaptive-ladder 'all=MIN($ALLWNODES);one=KTH_MAX(1, $ALLWNODES)'
//	                            # closed-loop consistency controller on
//	                            # every node; inspect with 'adaptive'
//
// Commands:
//
//	put <key> <value>                write into node 1's pool
//	get <key>                        read node 1's pool
//	mirror <node> <key>              read node 1's pool from another node
//	wait <seq> <predicate-key>       block until the frontier covers seq
//	register <key> <predicate...>    register a new consistency model
//	change <key> <predicate...>      swap a consistency model at runtime
//	frontier [key]                   show stability frontiers
//	predicates                       list registered predicates
//	adaptive                         adaptive controller rungs + history
//	acks                             dump the ACK recorder for node 1
//	health                           send-log pressure + stall blame for node 1
//	help, quit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"stabilizer"
	"stabilizer/apps/wankv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wankv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topoPath    = flag.String("topology", "", "topology JSON file (default: built-in EC2 Fig. 2)")
		timescale   = flag.Float64("timescale", 10, "divide emulated WAN latencies by this factor")
		metricsAddr = flag.String("metrics-addr", "", "serve every node's /metrics and /debug/stabilizer on this address (e.g. :9090)")
		pprofOn     = flag.Bool("pprof", false, "also mount /debug/pprof on the metrics address")

		flowMaxBytes   = flag.Int64("flow-max-bytes", 0, "cap each node's send log at this many buffered bytes (0 = unbounded)")
		flowMaxEntries = flag.Int("flow-max-entries", 0, "cap each node's send log at this many buffered entries (0 = unbounded)")
		flowMode       = flag.String("flow-mode", "block", "admission at the cap: 'block' (put waits), 'fail' (put errors) or 'spill' (cold backlog migrates to disk; needs -spill-dir)")
		spillDir       = flag.String("spill-dir", "", "directory for on-disk spill segments in 'spill' mode (each node uses its own subdirectory)")
		spillSegBytes  = flag.Int64("spill-segment-bytes", 0, "payload bytes per spill segment file (0 = default 4 MiB)")
		stallDeadline  = flag.Duration("stall-deadline", 0, "declare a predicate stalled after its frontier sits still this long (0 = off)")
		traceSample    = flag.Int("trace-sample", 64, "flight-record 1 in N operations end to end (1 = every op, 0 = off)")
		stabilizeEvery = flag.Duration("stabilize-interval", 0, "defer predicate stabilization onto a control-plane tick of this period (0 = inline; try 1ms)")

		adaptLadder = flag.String("adaptive-ladder", "", "run the closed-loop consistency controller on every node: 'name=SOURCE;name=SOURCE' strongest rung first (empty = off; inspect with the 'adaptive' command)")
		adaptKey    = flag.String("adaptive-key", "adaptive", "predicate key the adaptive controller drives")
		adaptTarget = flag.Duration("adaptive-target", 2*time.Second, "adaptive SLO: stabilize within this latency or step the ladder down")
	)
	flag.Parse()
	var adaptiveSpec *stabilizer.AdaptiveSpec
	if *adaptLadder != "" {
		ladder, err := stabilizer.ParseLadder(*adaptLadder)
		if err != nil {
			return fmt.Errorf("-adaptive-ladder: %w", err)
		}
		adaptiveSpec = &stabilizer.AdaptiveSpec{
			Key:    *adaptKey,
			Ladder: ladder,
			Config: stabilizer.AdaptiveConfig{Target: *adaptTarget},
		}
	}
	var mode stabilizer.FlowMode
	switch *flowMode {
	case "block":
		mode = stabilizer.FlowBlock
	case "fail":
		mode = stabilizer.FlowFail
	case "spill":
		mode = stabilizer.FlowSpill
		if *spillDir == "" {
			return fmt.Errorf("-flow-mode spill requires -spill-dir")
		}
		if *flowMaxBytes == 0 && *flowMaxEntries == 0 {
			return fmt.Errorf("-flow-mode spill requires -flow-max-bytes or -flow-max-entries (the spill watermark)")
		}
	default:
		return fmt.Errorf("bad -flow-mode %q (want block, fail or spill)", *flowMode)
	}
	flow := stabilizer.FlowConfig{
		MaxBytes:          *flowMaxBytes,
		MaxEntries:        *flowMaxEntries,
		Mode:              mode,
		SpillDir:          *spillDir,
		SpillSegmentBytes: *spillSegBytes,
	}
	stall := stabilizer.StallConfig{Deadline: *stallDeadline}

	topo := stabilizer.EC2Topology(1)
	matrix := stabilizer.EC2Matrix()
	if *topoPath != "" {
		var err error
		topo, err = stabilizer.LoadTopology(*topoPath)
		if err != nil {
			return err
		}
		matrix = stabilizer.NewMatrix()
	}
	network := stabilizer.NewMemNetwork(matrix.Scaled(*timescale))
	defer network.Close()

	// One cluster boots every topology entry in-process; every node
	// shares the registry, instrumenting under its own node label, so a
	// single scrape covers the whole emulated deployment.
	reg := stabilizer.NewMetricsRegistry()
	cluster, err := stabilizer.OpenCluster(stabilizer.ClusterConfig{
		Topology:          topo,
		Network:           network,
		Metrics:           reg,
		Flow:              flow,
		Stall:             stall,
		Trace:             stabilizer.TraceConfig{SampleEvery: *traceSample},
		StabilizeInterval: *stabilizeEvery,
		Adaptive:          adaptiveSpec,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	stores := make([]*wankv.Store, topo.N())
	for i := 1; i <= topo.N(); i++ {
		stores[i-1] = wankv.New(cluster.Node(i))
	}
	primary := cluster.Node(1)
	kv := stores[0]
	for name, src := range stabilizer.TableIII(topo) {
		if err := primary.RegisterPredicate(name, src); err != nil {
			return err
		}
	}
	if *metricsAddr != "" {
		var opts []stabilizer.ServeOption
		if *pprofOn {
			opts = append(opts, stabilizer.WithPprof())
		}
		extra := map[string]http.Handler{
			"/debug/stabilizer": debugHandler(cluster),
		}
		extras := "/metrics and /debug/stabilizer"
		if *traceSample > 0 {
			extra["/debug/trace"] = stabilizer.NewTraceHandler(cluster)
			extras += " and /debug/trace"
		}
		srv, err := stabilizer.ServeMetrics(*metricsAddr, reg, extra, opts...)
		if err != nil {
			return err
		}
		defer srv.Close()
		if *pprofOn {
			extras += " and /debug/pprof"
		}
		fmt.Printf("wankv: serving %s on %s\n", extras, srv.Addr)
	}

	fmt.Printf("wankv: %d WAN nodes up; node 1 (%s) is yours. Type 'help'.\n",
		topo.N(), topo.SelfNode().Name)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if err := dispatch(fields, topo, primary, kv, stores); err != nil {
			if err == errQuit {
				return nil
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

// debugHandler serves DebugSnapshots as indented JSON — every live node
// keyed by id, or a single node with ?node=<id>.
func debugHandler(cluster *stabilizer.Cluster) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if q := r.URL.Query().Get("node"); q != "" {
			id, err := strconv.Atoi(q)
			if err != nil || cluster.Node(id) == nil {
				http.Error(w, fmt.Sprintf("unknown node %q", q), http.StatusNotFound)
				return
			}
			_ = enc.Encode(cluster.Node(id).DebugSnapshot())
			return
		}
		snaps := make(map[string]stabilizer.DebugSnapshot)
		for _, n := range cluster.Nodes() {
			snaps[strconv.Itoa(n.Self())] = n.DebugSnapshot()
		}
		_ = enc.Encode(snaps)
	})
}

func dispatch(fields []string, topo *stabilizer.Topology, primary *stabilizer.Node, kv *wankv.Store, stores []*wankv.Store) error {
	switch fields[0] {
	case "quit", "exit":
		return errQuit

	case "help":
		fmt.Println("put get mirror wait register change frontier predicates adaptive acks health quit")
		return nil

	case "put":
		if len(fields) < 3 {
			return fmt.Errorf("put <key> <value>")
		}
		res, err := kv.Put(fields[1], []byte(strings.Join(fields[2:], " ")))
		if err != nil {
			return err
		}
		fmt.Printf("seq=%d version=%d (locally stable; use 'wait %d <predicate>' for more)\n",
			res.Seq, res.Version, res.Seq)
		return nil

	case "get":
		if len(fields) != 2 {
			return fmt.Errorf("get <key>")
		}
		v, err := kv.Get(fields[1])
		if err != nil {
			return err
		}
		fmt.Printf("%q (version %d, %s)\n", v.Value, v.Num, v.Time.Format(time.RFC3339Nano))
		return nil

	case "mirror":
		if len(fields) != 3 {
			return fmt.Errorf("mirror <node> <key>")
		}
		idx, err := strconv.Atoi(fields[1])
		if err != nil || idx < 1 || idx > len(stores) {
			return fmt.Errorf("bad node index %q", fields[1])
		}
		v, err := stores[idx-1].GetFrom(1, fields[2])
		if err != nil {
			return err
		}
		name, _ := topo.NodeAt(idx)
		fmt.Printf("[%s] %q (version %d)\n", name.Name, v.Value, v.Num)
		return nil

	case "wait":
		if len(fields) != 3 {
			return fmt.Errorf("wait <seq> <predicate-key>")
		}
		seq, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seq %q", fields[1])
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		start := time.Now()
		if err := primary.WaitFor(ctx, seq, fields[2]); err != nil {
			return err
		}
		fmt.Printf("satisfied in %v\n", time.Since(start).Round(time.Millisecond))
		return nil

	case "register", "change":
		if len(fields) < 3 {
			return fmt.Errorf("%s <key> <predicate>", fields[0])
		}
		src := strings.Join(fields[2:], " ")
		if fields[0] == "register" {
			return primary.RegisterPredicate(fields[1], src)
		}
		return primary.ChangePredicate(fields[1], src)

	case "frontier":
		keys := primary.Predicates()
		if len(fields) == 2 {
			keys = []string{fields[1]}
		}
		for _, k := range keys {
			f, err := primary.StabilityFrontier(k)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %d\n", k, f)
		}
		return nil

	case "predicates":
		for _, k := range primary.Predicates() {
			src, _ := primary.PredicateSource(k)
			fmt.Printf("%-20s %s\n", k, src)
		}
		return nil

	case "adaptive":
		ctrls := primary.AdaptiveControllers()
		if len(ctrls) == 0 {
			fmt.Println("no adaptive controllers (start wankv with -adaptive-ladder)")
			return nil
		}
		for _, c := range ctrls {
			rung := c.Rung()
			fmt.Printf("%-20s rung %d (%s) installed=%d firing=%v ladder=%s\n",
				c.Key(), c.RungIndex(), rung.Name, c.InstalledIndex(), c.Firing(), c.Ladder())
			for _, tr := range c.History() {
				fmt.Printf("    %s %s %s->%s (%s)\n",
					tr.At.Format("15:04:05.000"), tr.Direction,
					tr.FromRung.Name, tr.ToRung.Name, tr.Reason)
			}
		}
		return nil

	case "acks":
		fmt.Printf("%-12s %10s %10s %10s\n", "node", "received", "delivered", "persisted")
		for i := 1; i <= topo.N(); i++ {
			name, _ := topo.NodeAt(i)
			r, _ := primary.AckValue(1, i, "received")
			d, _ := primary.AckValue(1, i, "delivered")
			p, _ := primary.AckValue(1, i, "persisted")
			fmt.Printf("%-12s %10d %10d %10d\n", name.Name, r, d, p)
		}
		return nil

	case "health":
		h := primary.Health()
		cap := "unbounded"
		if h.SendLogCapBytes > 0 {
			cap = fmt.Sprintf("%d", h.SendLogCapBytes)
		}
		fmt.Printf("head=%d send-log: %d bytes / %d entries (cap %s) backpressured=%v blocked=%d shed=%d\n",
			h.Head, h.SendLogBytes, h.SendLogEntries, cap, h.Backpressured, h.BlockedAppends, h.ShedAppends)
		for _, p := range h.Predicates {
			if !p.Stalled {
				fmt.Printf("%-22s frontier=%d/%d ok\n", p.Key, p.Frontier, p.Head)
				continue
			}
			fmt.Printf("%-22s frontier=%d/%d STALLED for %v\n",
				p.Key, p.Frontier, p.Head, p.StalledFor.Round(time.Millisecond))
			for _, b := range p.Blamed {
				name, _ := topo.NodeAt(b.Peer)
				fmt.Printf("    blames node %d (%s, %s/%s) ack=%d\n",
					b.Peer, name.Name, b.AZ, b.Region, b.Ack)
			}
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q (try 'help')", fields[0])
	}
}
