// Command predcheck compiles a stability-frontier predicate against a
// topology and reports its canonical form, the WAN nodes it depends on,
// and the compiled bytecode — the offline counterpart of
// register_predicate's just-in-time checking step.
//
// Usage:
//
//	predcheck -topology topo.json 'KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)'
//	predcheck -builtin ec2 -self 1 'MIN($ALLWNODES-$MYWNODE)'
//	predcheck -builtin cloudlab -types verified 'MIN(($ALLWNODES-$MYWNODE).verified)'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/dsl"
	"stabilizer/internal/frontier"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "predcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topoPath = flag.String("topology", "", "topology JSON file")
		builtin  = flag.String("builtin", "", "built-in topology: ec2 or cloudlab")
		self     = flag.Int("self", 1, "local node index for $MYWNODE/$MYAZWNODES")
		types    = flag.String("types", "", "comma-separated application-defined stability types")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("exactly one predicate argument expected (got %d)", flag.NArg())
	}
	source := flag.Arg(0)

	var (
		topo *config.Topology
		err  error
	)
	switch {
	case *topoPath != "":
		topo, err = config.Load(*topoPath)
		if err != nil {
			return err
		}
		topo = topo.WithSelf(*self)
	case *builtin == "ec2":
		topo = config.EC2Topology(*self)
	case *builtin == "cloudlab":
		topo = config.CloudLabTopology(*self)
	default:
		return fmt.Errorf("provide -topology FILE or -builtin ec2|cloudlab")
	}
	if err := topo.Validate(); err != nil {
		return err
	}

	reg := frontier.NewTypes()
	if *types != "" {
		for _, name := range strings.Split(*types, ",") {
			if _, err := reg.Register(strings.TrimSpace(name)); err != nil {
				return err
			}
		}
	}

	ast, err := dsl.Parse(source)
	if err != nil {
		return err
	}
	fmt.Printf("canonical: %s\n", ast)

	env := core.NewDSLEnv(topo, reg)
	resolved, err := dsl.Resolve(ast, env)
	if err != nil {
		return err
	}
	prog := dsl.CompileResolved(source, resolved)

	fmt.Printf("topology:  %d WAN nodes, self=%s ($%d)\n",
		topo.N(), topo.SelfNode().Name, topo.Self)
	deps := prog.DependsOn()
	names := make([]string, len(deps))
	for i, d := range deps {
		n, _ := topo.NodeAt(d)
		names[i] = fmt.Sprintf("$%d=%s", d, n.Name)
	}
	fmt.Printf("reads:     %s\n", strings.Join(names, ", "))
	fmt.Printf("bytecode (%d instructions):\n%s", prog.Len(), prog.Disassemble())
	return nil
}
