// Command stabilizer-bench regenerates the paper's evaluation tables and
// figures (§VI) on the emulated WAN.
//
// Usage:
//
//	stabilizer-bench -experiment all
//	stabilizer-bench -experiment fig6 -timescale 10
//	stabilizer-bench -experiment fig7 -short
//	stabilizer-bench -metrics-addr :9090 -trace-sample 64
//	                       # /metrics plus /debug/trace (per-op flight
//	                       # recorder: ?origin=N&seq=M, ?op=latest-slow)
//	stabilizer-bench -experiment fig6 \
//	    -adaptive-ladder 'all=MIN($ALLWNODES);one=KTH_MAX(1, $ALLWNODES)' \
//	    -adaptive-target 500ms
//	                       # closed-loop consistency controller on every node
//
// Experiments: table1 table2 table3 micro fig3 fig4 fig5 fig6 fig7 fig8
// ablation all.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"stabilizer/internal/adaptive"
	"stabilizer/internal/bench"
	"stabilizer/internal/core"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stabilizer-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment  = flag.String("experiment", "all", "which experiment to run (table1 table2 table3 micro fig3 fig4 fig5 fig6 fig7 fig8 ablation all)")
		timescale   = flag.Float64("timescale", 1, "divide emulated latencies by this factor (1 = faithful wall-clock)")
		fabric      = flag.String("fabric", "mem", "network fabric: mem or tcp")
		short       = flag.Bool("short", false, "shrink workloads for a quick pass")
		metricsAddr = flag.String("metrics-addr", "", "serve every experiment node's /metrics on this address (e.g. :9090)")
		pprofOn     = flag.Bool("pprof", false, "also mount /debug/pprof on the metrics address")
		traceSample = flag.Int("trace-sample", 0, "flight-record 1 in N operations and mount /debug/trace on the metrics address (0 = off, the faithful-measurement default)")
		logStripes  = flag.Int("log-stripes", 0, "send-log producer stripes per node (0 = min(8, GOMAXPROCS), 1 = classic single-stripe log)")
		writevMin   = flag.Int("writev-min-bytes", 0, "smallest batch payload sent as one vectored write on TCP fabrics (0 = 8 KiB default, negative disables writev)")
		stabilize   = flag.Duration("stabilize-interval", 0, "defer predicate stabilization onto a control-plane tick of this period (0 = inline; try 1ms)")

		adaptLadder = flag.String("adaptive-ladder", "", "run the closed-loop consistency controller on every experiment node: 'name=SOURCE;name=SOURCE' strongest rung first (empty = off)")
		adaptKey    = flag.String("adaptive-key", "adaptive", "predicate key the adaptive controller drives")
		adaptTarget = flag.Duration("adaptive-target", 2*time.Second, "adaptive SLO: this fraction of appends should stabilize within the target")
		adaptObj    = flag.Float64("adaptive-objective", 0.99, "adaptive SLO good fraction in (0,1)")
	)
	flag.Parse()

	var adaptiveSpec *core.AdaptiveSpec
	if *adaptLadder != "" {
		ladder, err := adaptive.ParseLadder(*adaptLadder)
		if err != nil {
			return fmt.Errorf("-adaptive-ladder: %w", err)
		}
		adaptiveSpec = &core.AdaptiveSpec{
			Key:    *adaptKey,
			Ladder: ladder,
			Config: adaptive.Config{Target: *adaptTarget, Objective: *adaptObj},
		}
	}

	opts := bench.Options{
		Out:               os.Stdout,
		TimeScale:         *timescale,
		Fabric:            *fabric,
		Short:             *short,
		LogStripes:        *logStripes,
		Trace:             optrace.Config{SampleEvery: *traceSample},
		StabilizeInterval: *stabilize,
		Adaptive:          adaptiveSpec,
	}
	opts.Batch.WritevMinBytes = *writevMin
	if *metricsAddr != "" {
		var sopts []metrics.ServeOption
		if *pprofOn {
			sopts = append(sopts, metrics.WithPprof())
		}
		reg := metrics.NewRegistry()
		opts.Metrics = reg
		extra := map[string]http.Handler{}
		served := "/metrics"
		if *traceSample > 0 {
			opts.TraceTarget = &bench.TraceTarget{}
			extra["/debug/trace"] = optrace.NewHTTPHandler(opts.TraceTarget)
			served += " and /debug/trace"
		}
		srv, err := metrics.Serve(*metricsAddr, reg, extra, sopts...)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving %s on %s\n", served, srv.Addr)
	} else if *pprofOn {
		return fmt.Errorf("-pprof requires -metrics-addr")
	}

	type exp struct {
		name string
		run  func() error
	}
	experiments := []exp{
		{"table1", func() error { _, err := bench.Table1(opts); return err }},
		{"table2", func() error { _, err := bench.Table2(opts); return err }},
		{"table3", func() error { _, err := bench.Table3(opts); return err }},
		{"micro", func() error { _, err := bench.MicroDSL(opts); return err }},
		{"fig3", func() error { _, err := bench.Fig3(opts); return err }},
		{"fig4", func() error { _, err := bench.Fig4(opts); return err }},
		{"fig5", func() error { _, err := bench.Fig5(opts); return err }},
		{"fig6", func() error { _, err := bench.Fig6(opts); return err }},
		{"fig7", func() error { _, err := bench.Fig7(opts); return err }},
		{"fig8", func() error { _, err := bench.Fig8(opts); return err }},
		{"ablation", func() error {
			if _, err := bench.AblationDSL(opts); err != nil {
				return err
			}
			if _, err := bench.AblationControlPlane(opts); err != nil {
				return err
			}
			if _, err := bench.AblationBatching(opts); err != nil {
				return err
			}
			_, err := bench.AblationDeferredStabilization(opts)
			return err
		}},
	}

	ran := false
	for _, e := range experiments {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Printf("=== %s ===\n", e.name)
		if err := e.run(); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("=== %s done in %v ===\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return nil
}
