GO ?= go

.PHONY: check vet build test race examples chaos chaos-flow chaos-spill chaos-adaptive bench bench-transport bench-transport-short bench-optrace bench-frontier bench-frontier-short bench-spill bench-spill-short fuzz-dsl fuzz-segment

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# examples builds every runnable program under examples/ — they are the
# documented entry points, so a facade change that breaks one fails here.
examples:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...

# chaos runs the full-horizon fault-injection soak (the default `go test`
# run only gets the -short bounded variant). Pin the fault schedule with
# STABILIZER_CHAOS_SEED=<n> to replay a failure byte-for-byte.
chaos:
	STABILIZER_CHAOS_FULL=1 $(GO) test -v -run TestChaosSoak ./internal/chaos

# chaos-flow is the bounded-memory variant: the same fault soak with
# send-log caps, blocking admission, and stall detection engaged, plus the
# end-to-end FlowDemo (blackholed peer, 64 KiB cap, majority fallback).
# Replays the same way: STABILIZER_CHAOS_SEED=<n> make chaos-flow.
chaos-flow:
	STABILIZER_CHAOS_FULL=1 $(GO) test -v -run 'TestChaosSoakFlow|TestFlowDemo' ./internal/chaos

# chaos-spill is invariant 9: the spill-tier soak — a backlog-driven
# partition ("day-long region outage" measured in bytes) against FlowSpill
# send logs, requiring bounded memory while the backlog grows past 1 GiB
# on disk and a gap-free, byte-identical post-heal drain — plus the seeded
# crash-schedule harness (crash mid-spill, crash mid-read-back, disk-write
# faults) and the end-to-end reconnect drain, all under the race detector.
# CI runs the same tests -short; replay with STABILIZER_CHAOS_SEED=<n>.
chaos-spill:
	STABILIZER_CHAOS_FULL=1 $(GO) test -race -v -run 'TestChaosSoakSpill' ./internal/chaos
	STABILIZER_CHAOS_FULL=1 $(GO) test -race -v -run 'TestSpillCrashScheduleGroundTruth|TestSpillEndToEndReconnectDrain' ./internal/transport

# chaos-adaptive is invariant 10: the closed-loop consistency acceptance
# scenario. A seeded blackhole (stall-detector path) and latency spike
# (burn-detector path) each force the SLO controller down its ladder and
# back up after the heal, while sweeps assert guarantee honesty (never
# report a rung stronger than the one installed), hysteresis (one rung per
# step, never faster than MinDwell), and release consistency (every WaitFor
# release re-evaluates under the rung active when it happened). Runs under
# the race detector; replay with STABILIZER_CHAOS_SEED=<n>.
chaos-adaptive:
	STABILIZER_CHAOS_FULL=1 $(GO) test -race -v -run 'TestAdaptiveDemo|TestCheckerAdaptiveFlapDetection' ./internal/chaos

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-transport reruns the data-plane microbenchmarks (wire codec,
# send-log drain, end-to-end stream throughput) and rewrites the "current"
# run in BENCH_transport.json, preserving the recorded pre-batching
# baseline.
bench-transport:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/wire ./internal/transport \
	  | $(GO) run ./cmd/benchjson -update BENCH_transport.json

# bench-transport-short is the CI variant: a quick measured pass over the
# stream-throughput benchmarks, compared against the numbers recorded in
# BENCH_transport.json. Drops under 20% print a non-blocking warning; a
# StreamThroughput regression of 20% or more fails the target.
bench-transport-short:
	$(GO) test -bench='StreamThroughput' -benchmem -benchtime=1s -run=^$$ ./internal/transport \
	  | $(GO) run ./cmd/benchjson -compare BENCH_transport.json

# bench-frontier measures the frontier control plane: batched advance cost
# across a predicate × parked-waiter grid (1k to 1M waiters), waiter release
# drains, mass-cancel detach, and idle-predicate insulation. Rewrites the
# "current" run in BENCH_frontier.json (the first run seeds the baseline).
bench-frontier:
	$(GO) test -bench='FrontierAdvance|WaiterReleaseDrain|DetachCancel|IdlePredicates' -benchmem -run=^$$ ./internal/frontier \
	  | $(GO) run ./cmd/benchjson -update BENCH_frontier.json

# bench-frontier-short is the CI variant: a quick pass over the advance
# grid, compared against BENCH_frontier.json on ns/op (lower is better).
# Regressions under 50% warn; at or past 50% the target fails.
bench-frontier-short:
	$(GO) test -bench='FrontierAdvance' -benchtime=0.5s -run=^$$ ./internal/frontier \
	  | $(GO) run ./cmd/benchjson -compare BENCH_frontier.json -match FrontierAdvance -metric ns/op -threshold 0.50

# bench-spill measures the disk tier — sustained spill bandwidth (appends
# against a small cap with no reader), tiered read-back through the batched
# drain path — and re-records StreamThroughputLocal next to the
# FlowSpill-configured-but-untriggered variant, so the <5% idle-overhead
# claim is always judged against a same-machine, same-run baseline.
# Rewrites the "current" run in BENCH_spill.json.
bench-spill:
	$(GO) test -bench='SpillWrite|SpillReadback|StreamThroughputLocal$$|StreamThroughputSpillUntriggered' -benchmem -run=^$$ ./internal/transport \
	  | $(GO) run ./cmd/benchjson -update BENCH_spill.json

# bench-spill-short is the CI variant: a quick pass over the untriggered
# FlowSpill stream benchmark, compared against BENCH_spill.json on msgs/s.
# Regressions under 20% warn; at or past 20% the target fails.
bench-spill-short:
	$(GO) test -bench='StreamThroughputSpillUntriggered' -benchmem -benchtime=1s -run=^$$ ./internal/transport \
	  | $(GO) run ./cmd/benchjson -compare BENCH_spill.json

# fuzz-segment runs the shared segment reader fuzzer: truncated and
# corrupted tails must recover the intact record prefix and stop cleanly —
# the torn-tail contract both the kvstore WAL and the send-log spill tier
# recover through.
fuzz-segment:
	$(GO) test -fuzz=FuzzReaderTail -fuzztime=30s -run=^$$ ./internal/storage/segment

# fuzz-dsl runs the predicate compiler/evaluator fuzzer for a bounded
# session: compile-or-error on arbitrary input, and exact Cells()/
# DependsOn() metadata — the contract the incremental frontier index
# depends on.
fuzz-dsl:
	$(GO) test -fuzz=FuzzCompileEval -fuzztime=30s -run=^$$ ./internal/dsl

# bench-optrace measures the flight recorder's cost: the raw Record and
# sampler-miss microbenchmarks plus end-to-end stream throughput with
# tracing off / 1-in-64 sampled / tracing every message. Rewrites the
# "current" run in BENCH_optrace.json (the first run seeds the baseline).
bench-optrace:
	$(GO) test -bench='Record|SampledMiss|StreamThroughputLocal' -benchmem -run=^$$ ./internal/optrace ./internal/transport \
	  | $(GO) run ./cmd/benchjson -update BENCH_optrace.json
