package stabilizer

import (
	"stabilizer/internal/predlib"
)

// Predicate builders: ready-made consistency models from the paper,
// rendered as DSL source strings for RegisterPredicate/ChangePredicate.

// TableIII returns the paper's six experiment predicates (OneRegion,
// MajorityRegions, AllRegions, OneWNode, MajorityWNodes, AllWNodes) built
// for topo, keyed by their paper names.
func TableIII(topo *Topology) map[string]string { return predlib.TableIII(topo) }

// TableIIIOrder lists the Table III predicate names in the paper's order.
func TableIIIOrder() []string { return predlib.TableIIIOrder() }

// OneRegion: stable once any WAN node in any remote region acknowledges.
func OneRegion(topo *Topology) string { return predlib.OneRegion(topo) }

// MajorityRegions: stable once a majority of remote regions acknowledge.
func MajorityRegions(topo *Topology) string { return predlib.MajorityRegions(topo) }

// AllRegions: stable once every remote region acknowledges.
func AllRegions(topo *Topology) string { return predlib.AllRegions(topo) }

// OneWNode: stable once any remote WAN node acknowledges.
func OneWNode() string { return predlib.OneWNode() }

// MajorityWNodes: stable once a majority of WAN nodes acknowledge.
func MajorityWNodes() string { return predlib.MajorityWNodes() }

// AllWNodes: stable once every remote WAN node acknowledges.
func AllWNodes() string { return predlib.AllWNodes() }

// QuorumWrite builds the §IV-B quorum write predicate over members.
func QuorumWrite(members []int, nw int) string { return predlib.QuorumWrite(members, nw) }

// QuorumRead builds the §IV-B quorum read-progress predicate.
func QuorumRead(members []int, nr int) string { return predlib.QuorumRead(members, nr) }

// ExcludeNodes waits for all remote sites except the listed ones — the
// §VI-D dynamic reconfiguration idiom.
func ExcludeNodes(excluded []int) string { return predlib.ExcludeNodes(excluded) }

// KOfRemote waits until at least k remote sites acknowledge.
func KOfRemote(k int) string { return predlib.KOfRemote(k) }

// Ladder presets for the adaptive controller (Node.StartAdaptive,
// Config.Adaptive): ready-made strong→weak sequences over the Table III
// predicates.

// LadderWNodes: all remote WAN nodes → majority → any one.
func LadderWNodes() Ladder { return predlib.LadderWNodes() }

// LadderAllMajorityK: all remote WAN nodes → majority → any k of them.
func LadderAllMajorityK(k int) Ladder { return predlib.LadderAllMajorityK(k) }

// LadderRegions: every remote region → majority of regions → any one.
func LadderRegions(topo *Topology) Ladder { return predlib.LadderRegions(topo) }
