module stabilizer

go 1.22
