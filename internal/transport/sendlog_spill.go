package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"stabilizer/internal/storage/segment"
)

// The spill tier turns the bounded in-memory send log into the hot tail of
// a two-tier log: [diskOldest, memBase) lives in epoch-numbered segment
// files on disk, [memBase, next) in memory. The spiller goroutine migrates
// the cold merged prefix downward when the admission watermark latches;
// readers cross the disk→memory boundary transparently inside the same
// batched drain calls the links already use. Sequences stay gapless across
// the boundary: a segment is registered (and its entries dropped from
// memory) only after its file is fsynced, and successive segments are
// contiguous by construction.

// defaultSpillSegmentBytes bounds each segment file's payload when the
// caller does not choose (4 MiB: large enough to amortize open/sync, small
// enough that truncation reclaims disk promptly).
const defaultSpillSegmentBytes = 4 << 20

// spillRecordOverhead is the per-record body prefix: sequence and
// sent-timestamp, both big-endian.
const spillRecordOverhead = 16

const (
	spillSegPrefix = "spill-"
	spillSegSuffix = ".seg"
)

// spillSegment is one sealed, fsynced segment file holding the contiguous
// sequence range [first, last].
type spillSegment struct {
	path  string
	first uint64
	last  uint64
	bytes int64 // payload bytes written (dead prefixes included until delete)
}

// spillState is the disk tier of a FlowSpill SendLog. Lock order: l.mu may
// be held when taking sp.mu, never the reverse — disk reads run under sp.mu
// alone so they cannot stall appends, and the truncate/registration paths
// that need both take l.mu first.
type spillState struct {
	dir      string
	segBytes int64

	mu    sync.Mutex
	segs  []spillSegment // ascending, contiguous ranges
	trunc uint64         // highest reclaimed sequence (mirror of l.reclaimed)
	epoch uint64         // number for the next segment file

	// Cached sequential reader: the common case is one lagging peer
	// draining the tier in order, so keep its position (and a one-entry
	// peek, letting TryNext probe the same sequence TryNextBatch then
	// consumes) instead of reopening per call.
	rd     *segment.Reader
	rdSeg  int    // index into segs of rd's file
	rdNext uint64 // next sequence rd will yield
	peek   LogEntry
	peekOK bool

	spilled  atomic.Int64 // payload bytes across live segments
	segCount atomic.Int64
	readback atomic.Int64 // cumulative payload bytes served from disk
	degraded atomic.Bool  // spill writes currently failing

	faultMu sync.Mutex
	fault   error

	horizon atomic.Pointer[func() uint64]

	kick      chan struct{} // buffered(1): wake the spiller
	done      chan struct{} // closed when the spiller exits
	closeOnce sync.Once

	// Spiller-goroutine-only scratch.
	batch  []LogEntry
	encBuf []byte
}

func newSpillState(flow FlowConfig) (*spillState, error) {
	if err := os.MkdirAll(flow.SpillDir, 0o755); err != nil {
		return nil, fmt.Errorf("transport: spill dir: %w", err)
	}
	segBytes := flow.SpillSegmentBytes
	if segBytes <= 0 {
		segBytes = defaultSpillSegmentBytes
	}
	sp := &spillState{
		dir:      flow.SpillDir,
		segBytes: segBytes,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	if err := sp.recover(); err != nil {
		return nil, err
	}
	return sp, nil
}

// recover rebuilds the segment chain from the files left by a previous
// incarnation: segments are replayed in epoch order and kept while they form
// one contiguous, CRC-intact sequence chain. A torn tail truncates that
// segment's range (crash mid-spill); everything after the first break is
// unreachable through a gapless stream and is deleted.
func (sp *spillState) recover() error {
	entries, err := os.ReadDir(sp.dir)
	if err != nil {
		return fmt.Errorf("transport: spill recover: %w", err)
	}
	type segFile struct {
		epoch uint64
		path  string
	}
	var files []segFile
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, spillSegPrefix) || !strings.HasSuffix(name, spillSegSuffix) {
			continue
		}
		epStr := strings.TrimSuffix(strings.TrimPrefix(name, spillSegPrefix), spillSegSuffix)
		ep, err := strconv.ParseUint(epStr, 10, 64)
		if err != nil {
			continue // not ours
		}
		files = append(files, segFile{epoch: ep, path: filepath.Join(sp.dir, name)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].epoch < files[j].epoch })

	broken := false
	for _, f := range files {
		if f.epoch >= sp.epoch {
			sp.epoch = f.epoch + 1
		}
		if broken {
			_ = os.Remove(f.path)
			continue
		}
		seg, intact, ok := scanSpillFile(f.path)
		if !ok {
			// Empty or unreadable from the first record: nothing usable,
			// and anything after it cannot chain.
			broken = true
			_ = os.Remove(f.path)
			continue
		}
		if n := len(sp.segs); n > 0 && seg.first != sp.segs[n-1].last+1 {
			broken = true // chain gap: later epochs are unreachable
			_ = os.Remove(f.path)
			continue
		}
		sp.segs = append(sp.segs, seg)
		sp.spilled.Add(seg.bytes)
		if !intact {
			broken = true // torn tail: this segment ends the chain
		}
	}
	sp.segCount.Store(int64(len(sp.segs)))
	return nil
}

// scanSpillFile replays one segment file, returning its contiguous intact
// range. intact is false when the file ends in a torn or corrupt record
// (the returned range still covers the intact prefix); ok is false when no
// record is usable.
func scanSpillFile(path string) (seg spillSegment, intact, ok bool) {
	seg.path = path
	r, err := segment.OpenReader(path)
	if err != nil {
		return seg, false, false
	}
	defer r.Close()
	intact = true
	for {
		body, err := r.Next()
		if err != nil {
			return seg, intact, ok // clean EOF keeps intact=true
		}
		e, decOK := decodeSpillRecord(body)
		if !decOK || (ok && e.Seq != seg.last+1) {
			// Undecodable or discontiguous record: treat as a torn tail.
			return seg, false, ok
		}
		if !ok {
			seg.first = e.Seq
			ok = true
		}
		seg.last = e.Seq
		seg.bytes += int64(len(e.Payload))
	}
}

func encodeSpillRecord(buf []byte, e LogEntry) []byte {
	buf = buf[:0]
	buf = binary.BigEndian.AppendUint64(buf, e.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.SentUnixNano))
	buf = append(buf, e.Payload...)
	return buf
}

func decodeSpillRecord(body []byte) (LogEntry, bool) {
	if len(body) < spillRecordOverhead {
		return LogEntry{}, false
	}
	return LogEntry{
		Seq:          binary.BigEndian.Uint64(body[:8]),
		SentUnixNano: int64(binary.BigEndian.Uint64(body[8:16])),
		Payload:      body[16:],
	}, true
}

func (sp *spillState) setFault(cause error) {
	sp.faultMu.Lock()
	sp.fault = cause
	sp.faultMu.Unlock()
}

func (sp *spillState) loadFault() error {
	sp.faultMu.Lock()
	defer sp.faultMu.Unlock()
	return sp.fault
}

// oldest returns the oldest live on-disk sequence (reclaimed prefixes of
// the first segment excluded). ok is false when the disk tier is empty.
func (sp *spillState) oldest() (uint64, bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.oldestLocked()
}

func (sp *spillState) oldestLocked() (uint64, bool) {
	if len(sp.segs) == 0 {
		return 0, false
	}
	first := sp.segs[0].first
	if sp.trunc+1 > first {
		first = sp.trunc + 1
	}
	return first, true
}

// nextSegPathLocked reserves the next epoch number. Caller holds sp.mu.
func (sp *spillState) nextSegPathLocked() string {
	p := filepath.Join(sp.dir, fmt.Sprintf("%s%08d%s", spillSegPrefix, sp.epoch, spillSegSuffix))
	sp.epoch++
	return p
}

// discardAllLocked drops every recovered segment (used when a checkpoint
// makes the recovered chain unsequenceable). Called before the log is
// shared, so no locking.
func (sp *spillState) discardAllLocked() {
	for _, s := range sp.segs {
		_ = os.Remove(s.path)
	}
	sp.segs = nil
	sp.spilled.Store(0)
	sp.segCount.Store(0)
}

// truncate reclaims every on-disk sequence <= seq: whole segments below the
// watermark are deleted; a segment straddling it keeps its file until its
// last sequence is reclaimed (readers skip the dead prefix via trunc).
// Caller holds l.mu.
func (sp *spillState) truncate(seq uint64) {
	sp.mu.Lock()
	if seq > sp.trunc {
		sp.trunc = seq
	}
	removed := 0
	var victims []string
	for removed < len(sp.segs) && sp.segs[removed].last <= seq {
		sp.spilled.Add(-sp.segs[removed].bytes)
		victims = append(victims, sp.segs[removed].path)
		removed++
	}
	if removed > 0 {
		sp.segs = sp.segs[:copy(sp.segs, sp.segs[removed:])]
		sp.segCount.Store(int64(len(sp.segs)))
		if sp.rd != nil {
			if sp.rdSeg < removed {
				_ = sp.rd.Close()
				sp.rd = nil
			} else {
				sp.rdSeg -= removed
			}
		}
	}
	if sp.peekOK && sp.peek.Seq <= seq {
		sp.peekOK = false
	}
	sp.mu.Unlock()
	for _, p := range victims {
		_ = os.Remove(p)
	}
}

// readOne returns the entry at seq from the disk tier. resume is the
// sequence the caller should retry from when the requested one is gone:
// the oldest retained sequence if seq fell below it, or memBase when the
// whole remaining range below memBase has been reclaimed. ok=false with
// resume==seq means the tier is wedged (an unreadable sealed segment) and
// the caller should stall rather than skip.
func (sp *spillState) readOne(seq, memBase uint64) (e LogEntry, ok bool, resume uint64) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	oldest, any := sp.oldestLocked()
	if !any {
		return LogEntry{}, false, memBase // nothing on disk: all reclaimed
	}
	if seq < oldest {
		seq = oldest
	}
	if seq >= memBase {
		return LogEntry{}, false, seq
	}
	if top := sp.segs[len(sp.segs)-1].last; seq > top {
		// Beyond the spilled range but below memBase: reclaimed after
		// spilling (see tier invariants in DESIGN.md par.15).
		return LogEntry{}, false, memBase
	}
	ent, got := sp.nextLocked(seq)
	if !got {
		return LogEntry{}, false, seq // wedged
	}
	sp.readback.Add(int64(len(ent.Payload)))
	return ent, true, seq
}

// readBatch appends entries [seq, memBase) from the disk tier to dst,
// bounded by the caller's frame and byte budgets. start is the dst length
// at the top of the caller's whole batch (for the oversize first-frame
// rule). Returns the extended dst, the next sequence to read, and ok=false
// when the tier is wedged.
func (sp *spillState) readBatch(seq, memBase uint64, dst []LogEntry, start, maxFrames int, budget *int) ([]LogEntry, uint64, bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	oldest, any := sp.oldestLocked()
	if !any {
		return dst, memBase, true
	}
	if seq < oldest {
		seq = oldest
	}
	top := sp.segs[len(sp.segs)-1].last
	for len(dst)-start < maxFrames && seq < memBase {
		if seq > top {
			return dst, memBase, true // reclaimed gap between tiers
		}
		e, got := sp.nextLocked(seq)
		if !got {
			return dst, seq, false // wedged: stall, never gap
		}
		if len(dst) > start && len(e.Payload) > *budget {
			return dst, seq, true
		}
		dst = append(dst, e)
		*budget -= len(e.Payload)
		sp.readback.Add(int64(len(e.Payload)))
		seq++
	}
	return dst, seq, true
}

// nextLocked returns the entry at seq using the cached sequential reader,
// repositioning it when the request is not the next in line. Caller holds
// sp.mu and has established first <= seq <= top.
func (sp *spillState) nextLocked(seq uint64) (LogEntry, bool) {
	if sp.peekOK && sp.peek.Seq == seq {
		return sp.peek, true
	}
	if sp.rd == nil || sp.rdNext > seq || sp.rdSeg >= len(sp.segs) || seq > sp.segs[sp.rdSeg].last && sp.rdNext != sp.segs[sp.rdSeg].last+1 {
		// Reposition: binary-search the segment holding seq and start a
		// fresh reader at its head (records below seq are skipped).
		idx := sort.Search(len(sp.segs), func(i int) bool { return sp.segs[i].last >= seq })
		if idx == len(sp.segs) || sp.segs[idx].first > seq {
			return LogEntry{}, false
		}
		if !sp.openSegLocked(idx) {
			return LogEntry{}, false
		}
	}
	for {
		if sp.rdNext > sp.segs[sp.rdSeg].last {
			// Cross into the next segment (contiguous by construction).
			if sp.rdSeg+1 >= len(sp.segs) {
				return LogEntry{}, false
			}
			if !sp.openSegLocked(sp.rdSeg + 1) {
				return LogEntry{}, false
			}
		}
		body, err := sp.rd.Next()
		if err == io.EOF || err != nil {
			// A sealed segment ended before its recorded range: disk
			// corruption after the seal. Wedge rather than fabricate a
			// gap; the stall monitor surfaces the blame.
			sp.dropReaderLocked()
			return LogEntry{}, false
		}
		e, ok := decodeSpillRecord(body)
		if !ok || e.Seq != sp.rdNext {
			sp.dropReaderLocked()
			return LogEntry{}, false
		}
		// The segment reader hands out a fresh allocation per record, so
		// the payload (a sub-slice of it) is safe to retain and share.
		sp.rdNext++
		if e.Seq == seq {
			sp.peek, sp.peekOK = e, true
			return e, true
		}
		// e.Seq < seq: skipping the dead or already-consumed prefix.
	}
}

func (sp *spillState) openSegLocked(idx int) bool {
	if sp.rd != nil {
		_ = sp.rd.Close()
		sp.rd = nil
	}
	rd, err := segment.OpenReader(sp.segs[idx].path)
	if err != nil {
		return false
	}
	sp.rd, sp.rdSeg, sp.rdNext = rd, idx, sp.segs[idx].first
	sp.peekOK = false
	return true
}

func (sp *spillState) dropReaderLocked() {
	if sp.rd != nil {
		_ = sp.rd.Close()
		sp.rd = nil
	}
	sp.peekOK = false
}

// kickSpill wakes the spiller without blocking (coalescing with a pending
// wakeup). Safe under l.mu.
func (l *SendLog) kickSpill() {
	select {
	case l.spill.kick <- struct{}{}:
	default:
	}
}

// spiller is the background migration goroutine: each wakeup drains the
// cold merged prefix into segment files until the admission latch clears.
func (l *SendLog) spiller() {
	sp := l.spill
	defer func() {
		sp.mu.Lock()
		sp.dropReaderLocked()
		sp.mu.Unlock()
		close(sp.done)
	}()
	for range sp.kick {
		for l.spillOnce() {
		}
	}
}

// spillOnce migrates one segment's worth of the cold prefix to disk.
// Returns true when it spilled and more work may remain.
func (l *SendLog) spillOnce() bool {
	sp := l.spill
	if sp.loadFault() != nil {
		sp.degraded.Store(true)
		return false // disk faulted: FlowBlock semantics until cleared
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	l.mergeLocked()
	if !l.overLocked() {
		l.mu.Unlock()
		return false
	}
	live := len(l.entries) - l.off
	if live == 0 {
		l.mu.Unlock()
		return false
	}
	fc := &l.flow
	var needBytes int64
	if fc.MaxBytes > 0 {
		needBytes = l.bytes.Load() - fc.lowBytes()
	}
	needEntries := 0
	if fc.MaxEntries > 0 {
		needEntries = int(l.next.Load()-l.base) - fc.lowEntries()
	}
	// Cold-prefix bias: prefer not to spill past the horizon (what live
	// links still need from memory) — but never let the bias starve the
	// watermark; bounded memory wins over read locality.
	limit := ^uint64(0)
	if fnp := sp.horizon.Load(); fnp != nil && *fnp != nil {
		if h := (*fnp)(); h > l.base {
			limit = h
		}
	}
	count := 0
	var bytes int64
	for count < live {
		e := &l.entries[l.off+count]
		if count > 0 && e.Seq >= limit {
			break
		}
		bytes += int64(len(e.Payload))
		count++
		if bytes >= sp.segBytes {
			break
		}
		if bytes >= needBytes && count >= needEntries {
			break
		}
	}
	sp.batch = append(sp.batch[:0], l.entries[l.off:l.off+count]...)
	first := l.base
	sp.mu.Lock()
	path := sp.nextSegPathLocked()
	sp.mu.Unlock()
	l.mu.Unlock()

	// Write and seal the segment outside every lock: appends, truncation
	// and reads all proceed while the cold copy streams to disk (the
	// entries are still in memory and still visible).
	err := writeSpillSegment(path, sp, sp.batch)
	if err != nil {
		_ = os.Remove(path)
		sp.degraded.Store(true)
		return false
	}
	sp.degraded.Store(false)
	last := first + uint64(count) - 1

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		_ = os.Remove(path)
		return false
	}
	if l.base > last {
		// The whole range was reclaimed while we wrote: the segment was
		// stillborn.
		l.mu.Unlock()
		_ = os.Remove(path)
		return true
	}
	sp.mu.Lock()
	sp.segs = append(sp.segs, spillSegment{path: path, first: first, last: last, bytes: bytes})
	sp.spilled.Add(bytes)
	sp.segCount.Store(int64(len(sp.segs)))
	if l.reclaimed > sp.trunc {
		sp.trunc = l.reclaimed // a concurrent truncate may have eaten a prefix
	}
	sp.mu.Unlock()
	// Only now — with the segment durable and registered — do the entries
	// leave memory, so no reader ever finds a hole between the tiers.
	drop := int(last - l.base + 1)
	dead := l.entries[l.off : l.off+drop]
	var freed int64
	for i := range dead {
		freed += int64(len(dead[i].Payload))
	}
	l.bytes.Add(-freed)
	clear(dead)
	l.off += drop
	l.base = last + 1
	if l.off >= len(l.entries)-l.off && l.off >= compactThreshold {
		n := copy(l.entries, l.entries[l.off:])
		clear(l.entries[n:])
		l.entries = l.entries[:n]
		l.off = 0
	}
	l.releaseSpaceLocked()
	l.mu.Unlock()
	clear(sp.batch) // release payload references from the scratch buffer
	return true
}

func writeSpillSegment(path string, sp *spillState, batch []LogEntry) error {
	w, err := segment.OpenWriter(path, false)
	if err != nil {
		return err
	}
	if f := sp.loadFault(); f != nil {
		w.SetWriteFault(f)
	}
	for i := range batch {
		sp.encBuf = encodeSpillRecord(sp.encBuf, batch[i])
		if err := w.Append(sp.encBuf); err != nil {
			_ = w.Close()
			return err
		}
	}
	if err := w.Sync(); err != nil {
		_ = w.Close()
		return err
	}
	return w.Close()
}
