package transport

import (
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/faultinject"
	"stabilizer/internal/metrics"
)

// TestReconnectMetricsConsistency forces a link flap with in-flight frames
// and checks the transport's books against what the receiver actually
// observed: the resent-frames counter must equal the frames sent twice, and
// the per-peer byte counters on both ends must reconcile exactly — sent
// bytes exceed received bytes by precisely the resent frames' bytes.
//
// Heartbeats are disabled and no acks are queued, so data frames are the
// only counted traffic and the byte math is exact (handshakes are excluded
// from the per-peer counters by design).
func TestReconnectMetricsConsistency(t *testing.T) {
	fabric := emunet.NewMemNetwork(nil)
	defer fabric.Close()
	inj := faultinject.New(nil)
	defer inj.Close()
	fabric.SetConnHook(inj.Hook())

	regS, regR := metrics.NewRegistry(), metrics.NewRegistry()
	mk := func(self int, reg *metrics.Registry, h Handler, log *SendLog) *Transport {
		tr, err := New(Config{
			Self: self, N: 2, Network: fabric, Handler: h, Log: log,
			HeartbeatEvery: time.Hour, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Start(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	sendLog := NewSendLog(1)
	rec := newRecorder()
	sender := mk(1, regS, newRecorder(), sendLog)
	defer sender.Close()
	receiver := mk(2, regR, rec, NewSendLog(1))
	defer receiver.Close()

	sentBytes := func() int64 {
		return regS.CounterVec("stabilizer_transport_bytes_sent_total",
			"Frame bytes written per peer.", "peer").With("2").Value()
	}
	recvBytes := func() int64 {
		return regR.CounterVec("stabilizer_transport_bytes_recv_total",
			"Frame bytes read per peer (post-handshake).", "peer").With("1").Value()
	}
	resentFrames := func() int64 {
		return regS.CounterVec("stabilizer_transport_data_resent_total",
			"Data frames retransmitted after reconnect, per peer.", "peer").With("2").Value()
	}

	// Phase 1: a clean prefix. Identical payload sizes keep every data
	// frame the same wire size, so byte deltas divide evenly by frames.
	payload := make([]byte, 32)
	for i := 0; i < 3; i++ {
		if _, err := sendLog.Append(payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	sender.NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return receiver.RecvLast(1) == 3 })
	// Quiesce: with only data frames on the wire, both ends must agree.
	waitUntil(t, 5*time.Second, func() bool { return sentBytes() == recvBytes() && sentBytes() > 0 })
	s0, r0 := sentBytes(), recvBytes()

	// Phase 2: cut the link while idle, then append. The frames are
	// counted as sent when they enter the link's write path but every byte
	// stalls at the fault gate, so "counted sent but never received" is
	// deterministic — no mid-frame partial delivery.
	inj.CutLink(1, 2)
	for i := 0; i < 5; i++ {
		if _, err := sendLog.Append(payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	sender.NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return sender.DataSent() > 3 })
	if got := receiver.DataRecv(); got != 3 {
		t.Fatalf("receiver saw %d data frames through a cut link, want 3", got)
	}

	// Phase 3: sever first (kills the stalled write and both live conns),
	// then heal so the redial succeeds and the log resends from the
	// receiver's reported position.
	inj.Sever(1, 2)
	inj.HealLink(1, 2)

	waitUntil(t, 10*time.Second, func() bool { return receiver.RecvLast(1) == 8 })
	waitUntil(t, 5*time.Second, func() bool { return sentBytes()-s0 > recvBytes()-r0 && recvBytes() > r0 })

	// FIFO with no gaps or duplicates across the flap.
	seqs := rec.dataSeqs(1)
	if len(seqs) != 8 {
		t.Fatalf("receiver delivered %d frames, want 8: %v", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d: gap or duplicate across flap", i, s)
		}
	}

	// Books must balance. The receiver read frames 4..8 exactly once:
	// recvDelta = 5 frames. The sender wrote those 5 plus `resent` frames
	// a second time, all the same wire size.
	sDelta, rDelta := sentBytes()-s0, recvBytes()-r0
	resent := resentFrames()
	if resent < 1 {
		t.Fatalf("flap lost frames but resent counter = %d", resent)
	}
	if rDelta%5 != 0 {
		t.Fatalf("received byte delta %d is not 5 equal frames", rDelta)
	}
	frameBytes := rDelta / 5
	if want := rDelta + resent*frameBytes; sDelta != want {
		t.Fatalf("byte books don't balance: sent delta %d, want recv delta %d + %d resent frames × %d bytes = %d",
			sDelta, rDelta, resent, frameBytes, want)
	}
	// The metrics families must agree with the transport's own counters.
	if resent != sender.Resent() {
		t.Fatalf("resent metric %d != accessor %d", resent, sender.Resent())
	}
	if got := sender.DataSent(); got != 8+resent {
		t.Fatalf("DataSent = %d, want 8 first sends + %d resends", got, resent)
	}
	if sender.Reconnects() < 1 {
		t.Fatalf("reconnects = %d after a flap", sender.Reconnects())
	}
}
