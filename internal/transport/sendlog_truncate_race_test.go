package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTruncateStagedReexposure is the deterministic regression for the
// truncate/stripe-merge interleaving bug: a truncation that lands while
// some of the truncated range is still staged behind a reservation gap
// must not let those staged entries become visible when a later merge
// finally pops them.
//
// The interleaving (reconstructed white-box, since it needs a producer
// parked between sequence reservation and staging):
//
//	merged:   1..5 visible
//	producer A reserves 6 (not yet staged)
//	producer B stages  7, 8
//	TruncateThrough(8)   — merge stops at the gap, so only 1..5 drop;
//	                       the log records reclaimed=8
//	producer A stages  6 — the gap closes
//	next merge pops 6, 7, 8
//
// Before the fix the merge appended 6..8 to the visible region and readers
// received sequences the reclaim predicate had already declared globally
// durable — a FIFO stream that travels back in time. Now the merge drops
// any popped entry at or below the reclaimed high-water mark.
func TestTruncateStagedReexposure(t *testing.T) {
	l := NewSendLogOpts(1, FlowConfig{}, 2)
	defer l.Close()

	for i := 1; i <= 5; i++ {
		if _, err := l.Append(make([]byte, 8), 0); err != nil {
			t.Fatal(err)
		}
	}
	if e, ok := l.TryNext(1); !ok || e.Seq != 1 {
		t.Fatalf("TryNext(1) = (%v, %v)", e.Seq, ok)
	}

	// Producer A reserves 6 but has not staged it; producer B stages 7, 8.
	if got := l.next.Add(3) - 3; got != 6 {
		t.Fatalf("reserved %d, want 6", got)
	}
	stage := func(stripe int, seq uint64) {
		s := &l.stripes[stripe]
		s.mu.Lock()
		s.entries = append(s.entries, LogEntry{Seq: seq, Payload: make([]byte, 8)})
		s.mu.Unlock()
		l.bytes.Add(8)
	}
	stage(1, 7)
	stage(1, 8)

	l.TruncateThrough(8)

	// The gap closes: producer A finally stages 6.
	stage(0, 6)

	// No read, now or ever, may surface a sequence <= 8 again.
	if e, ok := l.TryNext(1); ok {
		t.Fatalf("truncated sequence %d re-exposed after merge", e.Seq)
	}
	if batch := l.TryNextBatch(1, nil, 16, 1<<20); len(batch) != 0 {
		t.Fatalf("truncated sequences re-exposed in batch: first %d", batch[0].Seq)
	}
	if n := l.Len(); n != 0 {
		t.Fatalf("Len() = %d after full truncation, want 0", n)
	}
	if b := l.Bytes(); b != 0 {
		t.Fatalf("Bytes() = %d after full truncation, want 0 (accounting leak)", b)
	}

	// The stream continues cleanly after the reclaimed range.
	seq, err := l.Append(make([]byte, 8), 0)
	if err != nil || seq != 9 {
		t.Fatalf("next append = (%d, %v), want seq 9", seq, err)
	}
	if e, ok := l.TryNext(1); !ok || e.Seq != 9 {
		t.Fatalf("TryNext after reclaim = (%v, %v), want seq 9", e.Seq, ok)
	}
}

// TestTruncateConcurrentStripeMergeNeverReexposes is the randomized -race
// stress for the same bug, through the public API only: producers hammer
// the striped fast path while truncators reclaim behind them and readers
// continuously probe the head of the log. The protocol makes violations
// unambiguous despite the races: a truncator publishes its watermark only
// AFTER TruncateThrough returns, and a reader loads the published
// watermark BEFORE probing — so any entry the probe returns at or below
// that pre-loaded watermark was re-exposed after its truncation fully
// completed.
func TestTruncateConcurrentStripeMergeNeverReexposes(t *testing.T) {
	const (
		producers  = 6
		truncators = 2
		readers    = 3
		perProd    = 4000
	)
	l := NewSendLogOpts(1, FlowConfig{}, 4)
	defer l.Close()

	var (
		appended atomic.Uint64 // sequences 1..appended have been assigned
		maxTrunc atomic.Uint64 // highest watermark with a COMPLETED truncation
		stop     atomic.Bool
		violated atomic.Bool
		wg       sync.WaitGroup
	)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 1))
			for i := 0; i < perProd; i++ {
				if _, err := l.Append(make([]byte, 1+rng.Intn(32)), 0); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				appended.Add(1)
			}
		}(p)
	}
	for r := 0; r < truncators; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 100))
			for !stop.Load() {
				hi := appended.Load()
				if hi == 0 {
					continue
				}
				s := uint64(rng.Int63n(int64(hi))) + 1
				l.TruncateThrough(s)
				// Publish only after the truncation completed.
				for {
					cur := maxTrunc.Load()
					if s <= cur || maxTrunc.CompareAndSwap(cur, s) {
						break
					}
				}
			}
		}(r)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				pre := maxTrunc.Load()
				if e, ok := l.TryNext(1); ok && e.Seq <= pre {
					violated.Store(true)
					t.Errorf("TryNext returned seq %d, already truncated through %d", e.Seq, pre)
					return
				}
				pre = maxTrunc.Load()
				for _, e := range l.TryNextBatch(1, nil, 8, 1<<20) {
					if e.Seq <= pre {
						violated.Store(true)
						t.Errorf("TryNextBatch returned seq %d, already truncated through %d", e.Seq, pre)
						return
					}
				}
			}
		}()
	}

	// Let producers finish, then give truncators/readers a final window over
	// the fully-staged log before stopping everyone.
	waitProducers := make(chan struct{})
	go func() {
		for appended.Load() < producers*perProd && !violated.Load() {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(50 * time.Millisecond)
		stop.Store(true)
		close(waitProducers)
	}()
	wg.Wait()
	<-waitProducers
	if violated.Load() {
		t.Fatal("truncated sequences were re-exposed")
	}

	// Drain-down sanity: reclaim everything and confirm the accounting
	// returns to zero (no husk entries survived the interleavings).
	l.TruncateThrough(uint64(producers * perProd))
	if l.Len() != 0 || l.Bytes() != 0 {
		t.Fatalf("after final truncation: Len=%d Bytes=%d, want 0,0", l.Len(), l.Bytes())
	}
}
