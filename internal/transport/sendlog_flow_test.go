package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fillToCap appends payload-sized entries until the log's bytes reach its
// cap. Admission checks run before each append, so every append here is
// admitted (bytes were still under the cap); the NEXT append is the first
// one the latch can refuse. Full() stays false until that admission check —
// the latch is maintained at admission time, not recomputed per read.
func fillToCap(t *testing.T, l *SendLog, payload int) int {
	t.Helper()
	n := 0
	for l.Bytes() < l.Flow().MaxBytes {
		if _, err := l.Append(make([]byte, payload), 0); err != nil {
			t.Fatalf("append %d while under cap: %v", n, err)
		}
		n++
		if n > 10_000 {
			t.Fatal("cap never reached")
		}
	}
	return n
}

func TestFlowFailFastShedsAtCap(t *testing.T) {
	l := NewSendLogFlow(1, FlowConfig{MaxBytes: 4 << 10, Mode: FlowFail})
	defer l.Close()
	fillToCap(t, l, 256)
	if _, err := l.Append(make([]byte, 256), 0); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("append at cap: err=%v, want ErrBackpressure", err)
	}
	if got := l.ShedAppends(); got != 1 {
		t.Fatalf("shed appends = %d, want 1", got)
	}
	if got := l.BlockedAppends(); got != 0 {
		t.Fatalf("blocked appends = %d, want 0 in fail-fast mode", got)
	}
}

func TestFlowBlockResumesOnTruncate(t *testing.T) {
	l := NewSendLogFlow(1, FlowConfig{MaxBytes: 4 << 10, Mode: FlowBlock})
	defer l.Close()
	n := fillToCap(t, l, 256)

	done := make(chan error, 1)
	go func() {
		_, err := l.AppendCtx(context.Background(), make([]byte, 256), 0)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("append completed through a full log: err=%v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if l.Waiting() != 1 {
		t.Fatalf("waiting = %d, want 1", l.Waiting())
	}

	// Truncating below the low watermark must wake the blocked append.
	l.TruncateThrough(uint64(n))
	if err := <-done; err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	if got := l.BlockedAppends(); got != 1 {
		t.Fatalf("blocked appends = %d, want 1", got)
	}
}

// TestFlowHysteresis pins the watermark latch: once full, small truncations
// above the low watermark must NOT re-admit appends (that would flap at the
// cap boundary); only dropping to the low watermark clears the latch.
func TestFlowHysteresis(t *testing.T) {
	l := NewSendLogFlow(1, FlowConfig{MaxBytes: 4 << 10, LowFrac: 0.5, Mode: FlowFail})
	defer l.Close()
	fillToCap(t, l, 256)
	// First refused append engages the latch.
	if _, err := l.Append(make([]byte, 256), 0); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("append at cap: err=%v, want ErrBackpressure", err)
	}

	// Free one entry: 256 bytes below cap, far above the 2 KiB low mark.
	l.TruncateThrough(1)
	if !l.Full() {
		t.Fatal("latch cleared above the low watermark")
	}
	if _, err := l.Append(make([]byte, 256), 0); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("append above low watermark: err=%v, want ErrBackpressure", err)
	}

	// Drop to the low watermark: the latch must clear.
	for seq := uint64(2); l.Full() && seq <= uint64(l.Len())+8; seq++ {
		l.TruncateThrough(seq)
	}
	if l.Full() {
		t.Fatal("latch never cleared at the low watermark")
	}
	if _, err := l.Append(make([]byte, 256), 0); err != nil {
		t.Fatalf("append after latch cleared: %v", err)
	}
}

func TestFlowBlockHonorsContextCancel(t *testing.T) {
	l := NewSendLogFlow(1, FlowConfig{MaxBytes: 4 << 10, Mode: FlowBlock})
	defer l.Close()
	fillToCap(t, l, 256)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := l.AppendCtx(ctx, make([]byte, 256), 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled append: err=%v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked append ignored context cancellation")
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Fatalf("canceled append returned after %v, want prompt", el)
	}
	if l.Waiting() != 0 {
		t.Fatalf("waiting = %d after cancel, want 0", l.Waiting())
	}
}

func TestFlowCloseUnblocksWaiters(t *testing.T) {
	l := NewSendLogFlow(1, FlowConfig{MaxBytes: 1 << 10, Mode: FlowBlock})
	fillToCap(t, l, 256)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = l.AppendCtx(context.Background(), make([]byte, 256), 0)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	l.Close()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrLogClosed) {
			t.Fatalf("waiter %d: err=%v, want ErrLogClosed", i, err)
		}
	}
}

// TestFlowCloseDuringBlockedAppendCtx pins down the terminal-error contract
// of Close racing a blocked AppendCtx: every appender parked on the space
// latch — with or without a context — must wake promptly with ErrLogClosed
// (never hang, never succeed, never return a nil error), the waiter count
// must drain to zero, and the log must stay terminally closed for new
// appends. Unlike TestFlowCloseUnblocksWaiters this waits until every
// appender is provably parked (no sleep-and-hope) and closes from a
// concurrent goroutine, so the wakeup path itself is what's under test.
func TestFlowCloseDuringBlockedAppendCtx(t *testing.T) {
	l := NewSendLogFlow(1, FlowConfig{MaxBytes: 1 << 10, Mode: FlowBlock})
	fillToCap(t, l, 256)

	const waiters = 8
	errs := make(chan error, waiters)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < waiters; i++ {
		go func(i int) {
			var err error
			if i%2 == 0 {
				_, err = l.AppendCtx(ctx, make([]byte, 256), 0)
			} else {
				_, err = l.AppendCtx(nil, make([]byte, 256), 0) // no-deadline flavor
			}
			errs <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Waiting() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d appenders parked", l.Waiting(), waiters)
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() { l.Close(); close(closed) }()
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrLogClosed) {
				t.Fatalf("blocked appender woke with %v, want ErrLogClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("blocked appender never woke after Close")
		}
	}
	<-closed
	if got := l.Waiting(); got != 0 {
		t.Fatalf("Waiting() = %d after Close, want 0", got)
	}
	// Terminal: appends after Close fail immediately, blocked or not.
	if _, err := l.Append([]byte("late"), 0); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after Close = %v, want ErrLogClosed", err)
	}
	l.Close() // idempotent
}

func TestFlowEntryCap(t *testing.T) {
	l := NewSendLogFlow(1, FlowConfig{MaxEntries: 4, Mode: FlowFail})
	defer l.Close()
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte("x"), 0); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := l.Append([]byte("x"), 0); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("append past entry cap: err=%v, want ErrBackpressure", err)
	}
}
