package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/wire"
)

// recorder is a Handler that records everything.
type recorder struct {
	mu    sync.Mutex
	data  map[int][]uint64 // per-peer data sequences in arrival order
	acks  []wire.Ack
	apps  []*wire.App
	ups   []int
	downs []int
}

func newRecorder() *recorder {
	return &recorder{data: make(map[int][]uint64)}
}

func (r *recorder) HandleData(from int, d *wire.Data) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data[from] = append(r.data[from], d.Seq)
}

func (r *recorder) HandleAck(a *wire.Ack) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.acks = append(r.acks, *a)
}

func (r *recorder) HandleApp(from int, a *wire.App) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.apps = append(r.apps, a)
}

func (r *recorder) PeerUp(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ups = append(r.ups, p)
}

func (r *recorder) PeerDown(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.downs = append(r.downs, p)
}

func (r *recorder) dataSeqs(from int) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.data[from]))
	copy(out, r.data[from])
	return out
}

func (r *recorder) maxAck(origin, by, typ int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var max uint64
	for _, a := range r.acks {
		if int(a.Origin) == origin && int(a.By) == by && int(a.Type) == typ && a.Seq > max {
			max = a.Seq
		}
	}
	return max
}

type harness struct {
	net  *emunet.MemNetwork
	trs  []*Transport
	recs []*recorder
	logs []*SendLog
}

func startHarness(t *testing.T, n int) *harness {
	t.Helper()
	h := &harness{net: emunet.NewMemNetwork(nil)}
	for i := 1; i <= n; i++ {
		rec := newRecorder()
		log := NewSendLog(1)
		tr, err := New(Config{
			Self:           i,
			N:              n,
			Network:        h.net,
			Handler:        rec,
			Log:            log,
			HeartbeatEvery: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("new transport %d: %v", i, err)
		}
		if err := tr.Start(); err != nil {
			t.Fatalf("start transport %d: %v", i, err)
		}
		h.trs = append(h.trs, tr)
		h.recs = append(h.recs, rec)
		h.logs = append(h.logs, log)
	}
	t.Cleanup(func() {
		for _, tr := range h.trs {
			_ = tr.Close()
		}
		_ = h.net.Close()
	})
	return h
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestDataFIFOAcrossPeers(t *testing.T) {
	h := startHarness(t, 3)
	const count = 200
	for i := 0; i < count; i++ {
		if _, err := h.logs[0].Append([]byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	h.trs[0].NotifyData()
	for peer := 2; peer <= 3; peer++ {
		peer := peer
		waitUntil(t, 5*time.Second, func() bool {
			return len(h.recs[peer-1].dataSeqs(1)) == count
		})
		seqs := h.recs[peer-1].dataSeqs(1)
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("peer %d: seq[%d] = %d (FIFO violated)", peer, i, s)
			}
		}
	}
}

func TestAckCoalescingDeliversNewest(t *testing.T) {
	h := startHarness(t, 2)
	// Queue many monotonic acks quickly; only the newest value matters.
	for s := uint64(1); s <= 1000; s++ {
		h.trs[0].QueueAck(wire.Ack{Origin: 1, By: 1, Type: 1, Seq: s})
	}
	waitUntil(t, 5*time.Second, func() bool {
		return h.recs[1].maxAck(1, 1, 1) == 1000
	})
	// Coalescing may drop intermediates but must deliver 1000.
}

func TestAckStateResyncsAfterReconnect(t *testing.T) {
	h := startHarness(t, 2)
	h.trs[0].QueueAck(wire.Ack{Origin: 1, By: 1, Type: 1, Seq: 7})
	waitUntil(t, 5*time.Second, func() bool { return h.recs[1].maxAck(1, 1, 1) == 7 })

	// Kill node 2's transport and restart it with fresh state: node 1
	// must resync its full ACK state on the new connection.
	_ = h.trs[1].Close()
	rec := newRecorder()
	log := NewSendLog(1)
	tr, err := New(Config{
		Self: 2, N: 2, Network: h.net, Handler: rec, Log: log,
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	h.trs[1] = tr
	h.recs[1] = rec
	waitUntil(t, 5*time.Second, func() bool { return rec.maxAck(1, 1, 1) == 7 })
}

func TestResendAfterReconnect(t *testing.T) {
	h := startHarness(t, 2)
	for i := 0; i < 10; i++ {
		_, _ = h.logs[0].Append([]byte{byte(i)}, 0)
	}
	h.trs[0].NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return len(h.recs[1].dataSeqs(1)) == 10 })

	// Restart the receiver with its last-received state intact is the
	// transport's own job via HelloAck; restart with FRESH state and all
	// ten messages must be resent (the log still holds them).
	_ = h.trs[1].Close()
	rec := newRecorder()
	tr, err := New(Config{
		Self: 2, N: 2, Network: h.net, Handler: rec, Log: NewSendLog(1),
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	h.trs[1] = tr
	waitUntil(t, 5*time.Second, func() bool { return len(rec.dataSeqs(1)) == 10 })
	seqs := rec.dataSeqs(1)
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("resent seq[%d] = %d", i, s)
		}
	}
}

func TestNoDuplicateDeliveryAfterSenderReconnect(t *testing.T) {
	h := startHarness(t, 2)
	for i := 0; i < 5; i++ {
		_, _ = h.logs[0].Append([]byte{byte(i)}, 0)
	}
	h.trs[0].NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return len(h.recs[1].dataSeqs(1)) == 5 })

	// Restart the SENDER; it resends from what the receiver reports, so
	// the receiver sees no duplicates.
	_ = h.trs[0].Close()
	tr, err := New(Config{
		Self: 1, N: 2, Network: h.net, Handler: newRecorder(), Log: h.logs[0],
		HeartbeatEvery: 20 * time.Millisecond, Epoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 5; i < 8; i++ {
		_, _ = h.logs[0].Append([]byte{byte(i)}, 0)
	}
	tr.NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return len(h.recs[1].dataSeqs(1)) == 8 })
	seqs := h.recs[1].dataSeqs(1)
	seen := make(map[uint64]bool)
	for _, s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate delivery of seq %d", s)
		}
		seen[s] = true
	}
}

// tinyBatch forces multi-frame batches with a byte-budget boundary in the
// middle of a run: 40-byte budget over 16-byte payloads cuts every batch at
// two frames even though the frame cap allows four.
var tinyBatch = BatchConfig{MaxFrames: 4, MinBytes: 40, MaxBytes: 40}

// TestNoDuplicateDeliveryAfterSenderReconnectBatched is the sender-restart
// contract under batched streaming: batch sizes > 1, a byte-budget boundary
// mid-run, and a reconnect in the middle of the sequence must yield a
// gapless, duplicate-free FIFO stream.
func TestNoDuplicateDeliveryAfterSenderReconnectBatched(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	sendLog := NewSendLog(1)
	rec := newRecorder()
	mk := func(self int, h Handler, log *SendLog, epoch uint64) *Transport {
		tr, err := New(Config{
			Self: self, N: 2, Network: net, Handler: h, Log: log,
			HeartbeatEvery: 20 * time.Millisecond, Epoch: epoch, Batch: tinyBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Start(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	sender := mk(1, newRecorder(), sendLog, 1)
	receiver := mk(2, rec, NewSendLog(1), 1)
	defer receiver.Close()

	payload := make([]byte, 16)
	const before, after = 21, 12 // odd count: reconnect lands mid-batch-run
	for i := 0; i < before; i++ {
		if _, err := sendLog.Append(payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	sender.NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return len(rec.dataSeqs(1)) == before })

	// Restart the sender; it resumes from what the receiver reports.
	_ = sender.Close()
	sender = mk(1, newRecorder(), sendLog, 2)
	defer sender.Close()
	for i := 0; i < after; i++ {
		if _, err := sendLog.Append(payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	sender.NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return len(rec.dataSeqs(1)) == before+after })
	seqs := rec.dataSeqs(1)
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d: gap or duplicate across batched reconnect", i, s)
		}
	}
}

// TestReceiverRestartMidBatchStream restarts the RECEIVER with fresh state
// while the sender is streaming multi-frame batches: the full stream must
// be resent from the log with no gaps and no duplicate deliveries.
func TestReceiverRestartMidBatchStream(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	sendLog := NewSendLog(1)
	mk := func(self int, h Handler, log *SendLog) *Transport {
		tr, err := New(Config{
			Self: self, N: 2, Network: net, Handler: h, Log: log,
			HeartbeatEvery: 20 * time.Millisecond, Batch: tinyBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Start(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	rec1 := newRecorder()
	sender := mk(1, newRecorder(), sendLog)
	defer sender.Close()
	receiver := mk(2, rec1, NewSendLog(1))

	const total = 200
	payload := make([]byte, 16)
	for i := 0; i < total; i++ {
		if _, err := sendLog.Append(payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	sender.NotifyData()
	// Kill the receiver once the stream is partially delivered.
	waitUntil(t, 5*time.Second, func() bool { return len(rec1.dataSeqs(1)) >= 20 })
	_ = receiver.Close()

	rec2 := newRecorder()
	receiver = mk(2, rec2, NewSendLog(1))
	defer receiver.Close()
	sender.NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return len(rec2.dataSeqs(1)) == total })
	seqs := rec2.dataSeqs(1)
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d: gap or duplicate after receiver restart", i, s)
		}
	}
}

func TestAppMessages(t *testing.T) {
	h := startHarness(t, 2)
	if err := h.trs[0].SendApp(2, &wire.App{ID: 9, Method: 3, From: 1, Payload: []byte("req")}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool {
		h.recs[1].mu.Lock()
		defer h.recs[1].mu.Unlock()
		return len(h.recs[1].apps) == 1
	})
	h.recs[1].mu.Lock()
	a := h.recs[1].apps[0]
	h.recs[1].mu.Unlock()
	if a.ID != 9 || a.Method != 3 || string(a.Payload) != "req" {
		t.Fatalf("app message = %+v", a)
	}
	if err := h.trs[0].SendApp(99, &wire.App{}); err == nil {
		t.Fatal("SendApp to unknown peer succeeded")
	}
}

func TestPeerUpDown(t *testing.T) {
	h := startHarness(t, 2)
	waitUntil(t, 5*time.Second, func() bool {
		h.recs[0].mu.Lock()
		defer h.recs[0].mu.Unlock()
		return len(h.recs[0].ups) > 0
	})
	_ = h.trs[1].Close()
	waitUntil(t, 5*time.Second, func() bool {
		h.recs[0].mu.Lock()
		defer h.recs[0].mu.Unlock()
		return len(h.recs[0].downs) > 0
	})
}

func TestConfigValidation(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	base := Config{Self: 1, N: 2, Network: net, Handler: newRecorder(), Log: NewSendLog(1)}

	bad := base
	bad.Handler = nil
	if _, err := New(bad); err == nil {
		t.Fatal("nil handler accepted")
	}
	bad = base
	bad.Log = nil
	if _, err := New(bad); err == nil {
		t.Fatal("nil log accepted")
	}
	bad = base
	bad.Network = nil
	if _, err := New(bad); err == nil {
		t.Fatal("nil network accepted")
	}
	bad = base
	bad.Self = 3
	if _, err := New(bad); err == nil {
		t.Fatal("out-of-range self accepted")
	}
}

func TestSendLogBasics(t *testing.T) {
	l := NewSendLog(0) // 0 normalizes to 1
	if l.NextSeq() != 1 {
		t.Fatalf("NextSeq = %d", l.NextSeq())
	}
	s1, _ := l.Append([]byte("a"), 1)
	s2, _ := l.Append([]byte("bb"), 2)
	if s1 != 1 || s2 != 2 {
		t.Fatalf("seqs = %d, %d", s1, s2)
	}
	if l.Head() != 2 || l.Len() != 2 || l.Bytes() != 3 {
		t.Fatalf("head=%d len=%d bytes=%d", l.Head(), l.Len(), l.Bytes())
	}
	e, err := l.Next(1)
	if err != nil || e.Seq != 1 || string(e.Payload) != "a" {
		t.Fatalf("Next(1) = %+v, %v", e, err)
	}
	if _, ok := l.TryNext(3); ok {
		t.Fatal("TryNext past head succeeded")
	}
	l.TruncateThrough(1)
	if l.Base() != 2 || l.Bytes() != 2 {
		t.Fatalf("after truncate: base=%d bytes=%d", l.Base(), l.Bytes())
	}
	// Next below base snaps to base.
	e, err = l.Next(1)
	if err != nil || e.Seq != 2 {
		t.Fatalf("Next(1) after truncate = %+v, %v", e, err)
	}
	l.Close()
	if _, err := l.Append(nil, 0); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after close err = %v", err)
	}
	if _, err := l.Next(3); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("next after close err = %v", err)
	}
}

func TestSendLogBlockingNext(t *testing.T) {
	l := NewSendLog(1)
	got := make(chan LogEntry, 1)
	go func() {
		e, err := l.Next(1)
		if err == nil {
			got <- e
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := l.Append([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if e.Seq != 1 {
			t.Fatalf("blocked Next returned seq %d", e.Seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Next never woke")
	}
}

func TestSendLogCheckpointStart(t *testing.T) {
	l := NewSendLog(100)
	s, _ := l.Append(nil, 0)
	if s != 100 {
		t.Fatalf("first seq after checkpoint = %d, want 100", s)
	}
}

func TestSendLogTryNextBatch(t *testing.T) {
	l := NewSendLog(1)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(make([]byte, 10), 0); err != nil {
			t.Fatal(err)
		}
	}

	// Frame cap.
	batch := l.TryNextBatch(1, nil, 3, 1<<20)
	if len(batch) != 3 || batch[0].Seq != 1 || batch[2].Seq != 3 {
		t.Fatalf("frame-capped batch = %+v", batch)
	}

	// Byte budget: 25 bytes fits two 10-byte payloads, not three.
	batch = l.TryNextBatch(1, batch[:0], 100, 25)
	if len(batch) != 2 {
		t.Fatalf("byte-capped batch len = %d, want 2", len(batch))
	}

	// An over-budget first entry is still returned: progress over budget.
	batch = l.TryNextBatch(1, batch[:0], 100, 1)
	if len(batch) != 1 || batch[0].Seq != 1 {
		t.Fatalf("over-budget batch = %+v", batch)
	}

	// Nothing ready past the head.
	if batch = l.TryNextBatch(11, batch[:0], 100, 1<<20); len(batch) != 0 {
		t.Fatalf("batch past head = %+v", batch)
	}

	// A cursor below the retained base snaps to the base.
	l.TruncateThrough(4)
	batch = l.TryNextBatch(1, batch[:0], 100, 1<<20)
	if len(batch) != 6 || batch[0].Seq != 5 || batch[5].Seq != 10 {
		t.Fatalf("post-truncate batch = %+v", batch)
	}
}

func TestSendLogTruncateAmortized(t *testing.T) {
	// Interleave appends and truncates past the compaction threshold and
	// check the observable state stays exact throughout.
	l := NewSendLog(1)
	var appended, truncated uint64
	for round := 0; round < 50; round++ {
		for i := 0; i < 17; i++ {
			if _, err := l.Append([]byte{byte(i)}, 0); err != nil {
				t.Fatal(err)
			}
			appended++
		}
		// Reclaim all but the last 5 entries.
		if appended > 5 {
			l.TruncateThrough(appended - 5)
			truncated = appended - 5
		}
		if got := l.Base(); got != truncated+1 {
			t.Fatalf("round %d: base = %d, want %d", round, got, truncated+1)
		}
		if got := l.Len(); got != int(appended-truncated) {
			t.Fatalf("round %d: len = %d, want %d", round, got, appended-truncated)
		}
		if got := l.Bytes(); got != int64(appended-truncated) {
			t.Fatalf("round %d: bytes = %d, want %d", round, got, appended-truncated)
		}
		e, ok := l.TryNext(truncated + 1)
		if !ok || e.Seq != truncated+1 {
			t.Fatalf("round %d: TryNext(base) = %+v, %v", round, e, ok)
		}
		e, ok = l.TryNext(appended)
		if !ok || e.Seq != appended {
			t.Fatalf("round %d: TryNext(head) = %+v, %v", round, e, ok)
		}
	}
	// Truncating everything leaves an empty, still-appendable log.
	l.TruncateThrough(appended)
	if l.Len() != 0 {
		t.Fatalf("len after full truncate = %d", l.Len())
	}
	s, err := l.Append(nil, 0)
	if err != nil || s != appended+1 {
		t.Fatalf("append after full truncate = %d, %v", s, err)
	}
}

func TestManyNodesAllToAll(t *testing.T) {
	const n = 5
	h := startHarness(t, n)
	const per = 50
	for i := 0; i < n; i++ {
		for m := 0; m < per; m++ {
			_, _ = h.logs[i].Append([]byte(fmt.Sprintf("%d-%d", i+1, m)), 0)
		}
		h.trs[i].NotifyData()
	}
	for me := 1; me <= n; me++ {
		for from := 1; from <= n; from++ {
			if me == from {
				continue
			}
			me, from := me, from
			waitUntil(t, 10*time.Second, func() bool {
				return len(h.recs[me-1].dataSeqs(from)) == per
			})
		}
	}
}
