package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/wire"
)

// recorder is a Handler that records everything.
type recorder struct {
	mu    sync.Mutex
	data  map[int][]uint64 // per-peer data sequences in arrival order
	acks  []wire.Ack
	apps  []*wire.App
	ups   []int
	downs []int
}

func newRecorder() *recorder {
	return &recorder{data: make(map[int][]uint64)}
}

func (r *recorder) HandleData(from int, d *wire.Data) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data[from] = append(r.data[from], d.Seq)
}

func (r *recorder) HandleAck(a *wire.Ack) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.acks = append(r.acks, *a)
}

func (r *recorder) HandleApp(from int, a *wire.App) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.apps = append(r.apps, a)
}

func (r *recorder) PeerUp(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ups = append(r.ups, p)
}

func (r *recorder) PeerDown(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.downs = append(r.downs, p)
}

func (r *recorder) dataSeqs(from int) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.data[from]))
	copy(out, r.data[from])
	return out
}

func (r *recorder) maxAck(origin, by, typ int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var max uint64
	for _, a := range r.acks {
		if int(a.Origin) == origin && int(a.By) == by && int(a.Type) == typ && a.Seq > max {
			max = a.Seq
		}
	}
	return max
}

type harness struct {
	net  *emunet.MemNetwork
	trs  []*Transport
	recs []*recorder
	logs []*SendLog
}

func startHarness(t *testing.T, n int) *harness {
	t.Helper()
	h := &harness{net: emunet.NewMemNetwork(nil)}
	for i := 1; i <= n; i++ {
		rec := newRecorder()
		log := NewSendLog(1)
		tr, err := New(Config{
			Self:           i,
			N:              n,
			Network:        h.net,
			Handler:        rec,
			Log:            log,
			HeartbeatEvery: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("new transport %d: %v", i, err)
		}
		if err := tr.Start(); err != nil {
			t.Fatalf("start transport %d: %v", i, err)
		}
		h.trs = append(h.trs, tr)
		h.recs = append(h.recs, rec)
		h.logs = append(h.logs, log)
	}
	t.Cleanup(func() {
		for _, tr := range h.trs {
			_ = tr.Close()
		}
		_ = h.net.Close()
	})
	return h
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestDataFIFOAcrossPeers(t *testing.T) {
	h := startHarness(t, 3)
	const count = 200
	for i := 0; i < count; i++ {
		if _, err := h.logs[0].Append([]byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	h.trs[0].NotifyData()
	for peer := 2; peer <= 3; peer++ {
		peer := peer
		waitUntil(t, 5*time.Second, func() bool {
			return len(h.recs[peer-1].dataSeqs(1)) == count
		})
		seqs := h.recs[peer-1].dataSeqs(1)
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("peer %d: seq[%d] = %d (FIFO violated)", peer, i, s)
			}
		}
	}
}

func TestAckCoalescingDeliversNewest(t *testing.T) {
	h := startHarness(t, 2)
	// Queue many monotonic acks quickly; only the newest value matters.
	for s := uint64(1); s <= 1000; s++ {
		h.trs[0].QueueAck(wire.Ack{Origin: 1, By: 1, Type: 1, Seq: s})
	}
	waitUntil(t, 5*time.Second, func() bool {
		return h.recs[1].maxAck(1, 1, 1) == 1000
	})
	// Coalescing may drop intermediates but must deliver 1000.
}

func TestAckStateResyncsAfterReconnect(t *testing.T) {
	h := startHarness(t, 2)
	h.trs[0].QueueAck(wire.Ack{Origin: 1, By: 1, Type: 1, Seq: 7})
	waitUntil(t, 5*time.Second, func() bool { return h.recs[1].maxAck(1, 1, 1) == 7 })

	// Kill node 2's transport and restart it with fresh state: node 1
	// must resync its full ACK state on the new connection.
	_ = h.trs[1].Close()
	rec := newRecorder()
	log := NewSendLog(1)
	tr, err := New(Config{
		Self: 2, N: 2, Network: h.net, Handler: rec, Log: log,
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	h.trs[1] = tr
	h.recs[1] = rec
	waitUntil(t, 5*time.Second, func() bool { return rec.maxAck(1, 1, 1) == 7 })
}

func TestResendAfterReconnect(t *testing.T) {
	h := startHarness(t, 2)
	for i := 0; i < 10; i++ {
		_, _ = h.logs[0].Append([]byte{byte(i)}, 0)
	}
	h.trs[0].NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return len(h.recs[1].dataSeqs(1)) == 10 })

	// Restart the receiver with its last-received state intact is the
	// transport's own job via HelloAck; restart with FRESH state and all
	// ten messages must be resent (the log still holds them).
	_ = h.trs[1].Close()
	rec := newRecorder()
	tr, err := New(Config{
		Self: 2, N: 2, Network: h.net, Handler: rec, Log: NewSendLog(1),
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	h.trs[1] = tr
	waitUntil(t, 5*time.Second, func() bool { return len(rec.dataSeqs(1)) == 10 })
	seqs := rec.dataSeqs(1)
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("resent seq[%d] = %d", i, s)
		}
	}
}

func TestNoDuplicateDeliveryAfterSenderReconnect(t *testing.T) {
	h := startHarness(t, 2)
	for i := 0; i < 5; i++ {
		_, _ = h.logs[0].Append([]byte{byte(i)}, 0)
	}
	h.trs[0].NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return len(h.recs[1].dataSeqs(1)) == 5 })

	// Restart the SENDER; it resends from what the receiver reports, so
	// the receiver sees no duplicates.
	_ = h.trs[0].Close()
	tr, err := New(Config{
		Self: 1, N: 2, Network: h.net, Handler: newRecorder(), Log: h.logs[0],
		HeartbeatEvery: 20 * time.Millisecond, Epoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 5; i < 8; i++ {
		_, _ = h.logs[0].Append([]byte{byte(i)}, 0)
	}
	tr.NotifyData()
	waitUntil(t, 5*time.Second, func() bool { return len(h.recs[1].dataSeqs(1)) == 8 })
	seqs := h.recs[1].dataSeqs(1)
	seen := make(map[uint64]bool)
	for _, s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate delivery of seq %d", s)
		}
		seen[s] = true
	}
}

func TestAppMessages(t *testing.T) {
	h := startHarness(t, 2)
	if err := h.trs[0].SendApp(2, &wire.App{ID: 9, Method: 3, From: 1, Payload: []byte("req")}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool {
		h.recs[1].mu.Lock()
		defer h.recs[1].mu.Unlock()
		return len(h.recs[1].apps) == 1
	})
	h.recs[1].mu.Lock()
	a := h.recs[1].apps[0]
	h.recs[1].mu.Unlock()
	if a.ID != 9 || a.Method != 3 || string(a.Payload) != "req" {
		t.Fatalf("app message = %+v", a)
	}
	if err := h.trs[0].SendApp(99, &wire.App{}); err == nil {
		t.Fatal("SendApp to unknown peer succeeded")
	}
}

func TestPeerUpDown(t *testing.T) {
	h := startHarness(t, 2)
	waitUntil(t, 5*time.Second, func() bool {
		h.recs[0].mu.Lock()
		defer h.recs[0].mu.Unlock()
		return len(h.recs[0].ups) > 0
	})
	_ = h.trs[1].Close()
	waitUntil(t, 5*time.Second, func() bool {
		h.recs[0].mu.Lock()
		defer h.recs[0].mu.Unlock()
		return len(h.recs[0].downs) > 0
	})
}

func TestConfigValidation(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	base := Config{Self: 1, N: 2, Network: net, Handler: newRecorder(), Log: NewSendLog(1)}

	bad := base
	bad.Handler = nil
	if _, err := New(bad); err == nil {
		t.Fatal("nil handler accepted")
	}
	bad = base
	bad.Log = nil
	if _, err := New(bad); err == nil {
		t.Fatal("nil log accepted")
	}
	bad = base
	bad.Network = nil
	if _, err := New(bad); err == nil {
		t.Fatal("nil network accepted")
	}
	bad = base
	bad.Self = 3
	if _, err := New(bad); err == nil {
		t.Fatal("out-of-range self accepted")
	}
}

func TestSendLogBasics(t *testing.T) {
	l := NewSendLog(0) // 0 normalizes to 1
	if l.NextSeq() != 1 {
		t.Fatalf("NextSeq = %d", l.NextSeq())
	}
	s1, _ := l.Append([]byte("a"), 1)
	s2, _ := l.Append([]byte("bb"), 2)
	if s1 != 1 || s2 != 2 {
		t.Fatalf("seqs = %d, %d", s1, s2)
	}
	if l.Head() != 2 || l.Len() != 2 || l.Bytes() != 3 {
		t.Fatalf("head=%d len=%d bytes=%d", l.Head(), l.Len(), l.Bytes())
	}
	e, err := l.Next(1)
	if err != nil || e.Seq != 1 || string(e.Payload) != "a" {
		t.Fatalf("Next(1) = %+v, %v", e, err)
	}
	if _, ok := l.TryNext(3); ok {
		t.Fatal("TryNext past head succeeded")
	}
	l.TruncateThrough(1)
	if l.Base() != 2 || l.Bytes() != 2 {
		t.Fatalf("after truncate: base=%d bytes=%d", l.Base(), l.Bytes())
	}
	// Next below base snaps to base.
	e, err = l.Next(1)
	if err != nil || e.Seq != 2 {
		t.Fatalf("Next(1) after truncate = %+v, %v", e, err)
	}
	l.Close()
	if _, err := l.Append(nil, 0); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after close err = %v", err)
	}
	if _, err := l.Next(3); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("next after close err = %v", err)
	}
}

func TestSendLogBlockingNext(t *testing.T) {
	l := NewSendLog(1)
	got := make(chan LogEntry, 1)
	go func() {
		e, err := l.Next(1)
		if err == nil {
			got <- e
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := l.Append([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if e.Seq != 1 {
			t.Fatalf("blocked Next returned seq %d", e.Seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Next never woke")
	}
}

func TestSendLogCheckpointStart(t *testing.T) {
	l := NewSendLog(100)
	s, _ := l.Append(nil, 0)
	if s != 100 {
		t.Fatalf("first seq after checkpoint = %d, want 100", s)
	}
}

func TestManyNodesAllToAll(t *testing.T) {
	const n = 5
	h := startHarness(t, n)
	const per = 50
	for i := 0; i < n; i++ {
		for m := 0; m < per; m++ {
			_, _ = h.logs[i].Append([]byte(fmt.Sprintf("%d-%d", i+1, m)), 0)
		}
		h.trs[i].NotifyData()
	}
	for me := 1; me <= n; me++ {
		for from := 1; from <= n; from++ {
			if me == from {
				continue
			}
			me, from := me, from
			waitUntil(t, 10*time.Second, func() bool {
				return len(h.recs[me-1].dataSeqs(from)) == per
			})
		}
	}
}
