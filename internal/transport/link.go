package transport

import (
	"bufio"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stabilizer/internal/optrace"
	"stabilizer/internal/wire"
)

// maxAppQueue bounds pending application messages per link.
const maxAppQueue = 4096

// ErrAppQueueFull is returned when a link's application-message queue is
// saturated.
var ErrAppQueueFull = errors.New("transport: app queue full")

// errDialTimeout is returned by a connect attempt that exceeded
// Config.DialTimeout (dial plus handshake).
var errDialTimeout = errors.New("transport: dial timeout")

// Reconnect backoff bounds: the mean sleep doubles from the floor to the
// ceiling, with full jitter applied per attempt.
const (
	backoffFloor = 50 * time.Millisecond
	backoffCeil  = 2 * time.Second
)

// ackKey identifies one coalescing slot in a link's ACK outbox.
type ackKey struct {
	origin uint16
	by     uint16
	typ    uint16
}

// link is one outgoing connection toward a peer: it dials, handshakes,
// then multiplexes coalesced ACKs, app messages and the shared data stream
// over the connection, reconnecting with backoff on failure.
type link struct {
	t    *Transport
	peer int
	ins  *peerInstruments

	// notified coalesces data wakeups: it is set by the first NotifyData
	// after the writer goes idle and cleared by the writer before it
	// re-checks for work, so a burst of Sends costs one cond broadcast
	// per idle link instead of one per message.
	notified atomic.Bool

	mu   sync.Mutex
	cond sync.Cond
	// acks holds the latest known value per slot and is never cleared;
	// sent holds what has been written on the *current* connection. On
	// reconnect sent is reset, so the full control state is resynced —
	// monotonicity makes the resend harmless (SST-style control plane).
	acks map[ackKey]uint64
	sent map[ackKey]uint64
	// dirty is the emission queue; dirtySet mirrors it for O(1)
	// already-queued checks.
	dirty    []ackKey
	dirtySet map[ackKey]struct{}
	apps     []*wire.App
	hbDue    bool
	hbClock  uint64
	dataTick uint64 // bumped by signal(); lets waiters notice new log entries
	closed   bool
	// hbSentClock/hbSentAt record the newest heartbeat written on the
	// current connection; the peer echoes it back and the drain goroutine
	// turns the match into an RTT sample.
	hbSentClock uint64
	hbSentAt    time.Time

	// maxDataSeq is the highest data sequence ever written on any
	// connection of this link; entries at or below it are resends.
	// Touched only by the run/stream goroutine.
	maxDataSeq uint64
	// batch is the reusable drain buffer for TryNextBatch; budgetBytes
	// caches the adaptive batch budget and budgetAge counts batches until
	// the next recomputation. Run/stream goroutine only.
	batch       []LogEntry
	budgetBytes int
	budgetAge   int
	// traced collects the sampled seqs of the current batch so their
	// WireSend events can be stamped after the connection write returns.
	// Empty whenever tracing is off or nothing in the batch was sampled.
	// Run/stream goroutine only.
	traced []uint64
	// scratch is the handshake frame buffer, reused across redials.
	// Run goroutine only.
	scratch []byte
	// rng drives the reconnect backoff jitter. Seeded from the link's
	// identity so seeded chaos runs replay the same sleep sequence.
	// Run goroutine only.
	rng *rand.Rand

	connMu sync.Mutex
	conn   net.Conn
}

func newLink(t *Transport, peer int) *link {
	l := &link{
		t:        t,
		peer:     peer,
		ins:      t.peers[peer],
		acks:     make(map[ackKey]uint64),
		sent:     make(map[ackKey]uint64),
		dirtySet: make(map[ackKey]struct{}),
		rng:      rand.New(rand.NewSource(int64(t.cfg.Self)<<16 | int64(peer))),
	}
	l.cond.L = &l.mu
	return l
}

// signal wakes the writer after new data was appended to the send log.
func (l *link) signal() {
	l.mu.Lock()
	l.dataTick++
	l.mu.Unlock()
	l.cond.Broadcast()
}

// notifyData coalesces send-log wakeups: only the first notification after
// the writer went idle pays for the lock and broadcast; the rest of a burst
// is a single atomic load.
func (l *link) notifyData() {
	if l.notified.Load() {
		return
	}
	if !l.notified.Swap(true) {
		l.signal()
	}
}

func (l *link) queueAck(a wire.Ack) {
	k := ackKey{origin: a.Origin, by: a.By, typ: a.Type}
	l.mu.Lock()
	if prev, ok := l.acks[k]; !ok || a.Seq > prev {
		l.acks[k] = a.Seq
		if _, queued := l.dirtySet[k]; !queued {
			l.dirty = append(l.dirty, k)
			l.dirtySet[k] = struct{}{}
		}
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// resetSent forgets per-connection send state so the next stream resyncs
// the full control state.
func (l *link) resetSent() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sent = make(map[ackKey]uint64, len(l.acks))
	l.dirty = l.dirty[:0]
	clear(l.dirtySet)
	for k := range l.acks {
		l.dirty = append(l.dirty, k)
		l.dirtySet[k] = struct{}{}
	}
}

func (l *link) queueApp(a *wire.App) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return net.ErrClosed
	}
	if len(l.apps) >= maxAppQueue {
		l.mu.Unlock()
		return ErrAppQueueFull
	}
	l.apps = append(l.apps, a)
	l.mu.Unlock()
	l.cond.Broadcast()
	return nil
}

func (l *link) queueHeartbeat(clock uint64) {
	l.mu.Lock()
	l.hbDue = true
	l.hbClock = clock
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *link) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
	l.connMu.Lock()
	if l.conn != nil {
		_ = l.conn.Close()
	}
	l.connMu.Unlock()
}

// run is the link's lifetime loop: dial, handshake, stream, reconnect.
func (l *link) run() {
	defer l.t.wg.Done()
	backoff := backoffFloor
	connected := false
	for {
		if l.isClosed() {
			return
		}
		conn, lastSeq, err := l.dial()
		if err != nil {
			// Full jitter: sleep uniformly in [floor, backoff] instead of
			// exactly backoff, so the cluster's links don't re-dial in
			// lockstep after a partition heals and hammer the same instant.
			d := backoffFloor
			if span := int64(backoff - backoffFloor); span > 0 {
				d += time.Duration(l.rng.Int63n(span + 1))
			}
			if !l.sleep(d) {
				return
			}
			if backoff *= 2; backoff > backoffCeil {
				backoff = backoffCeil
			}
			continue
		}
		if connected {
			l.t.reconnects.Add(1)
			l.ins.reconn.Inc()
		}
		connected = true
		backoff = backoffFloor
		l.resetSent()
		l.stream(conn, lastSeq+1)
		_ = conn.Close()
	}
}

func (l *link) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// sleep waits d unless the transport shuts down first.
func (l *link) sleep(d time.Duration) bool {
	select {
	case <-l.t.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// dial connects and handshakes within Config.DialTimeout, returning the
// peer's last received contiguous data sequence. Both the connect and the
// handshake round trip run in a goroutine: a black-holed fabric dial, or a
// peer that accepts but never answers the Hello, cannot hang the run loop.
// The in-flight connection is handed out on connCh as soon as it exists, so
// an abandoning caller can close it — which aborts a handshake stalled in a
// fault gate or a dead network, letting the goroutine finish.
func (l *link) dial() (net.Conn, uint64, error) {
	timeout := l.t.cfg.DialTimeout
	connCh := make(chan net.Conn, 1)
	resCh := make(chan dialResult, 1)
	go func() {
		conn, err := l.t.cfg.Network.Dial(l.t.cfg.Self, l.peer)
		if err != nil {
			resCh <- dialResult{err: err}
			return
		}
		connCh <- conn
		// A deadline as defense in depth: on transports whose reads honor it
		// the handshake self-aborts even if nobody reaps the attempt.
		_ = conn.SetDeadline(time.Now().Add(timeout))
		frame := wire.AppendFrame(nil, &wire.Hello{From: uint16(l.t.cfg.Self), Epoch: l.t.cfg.Epoch})
		if _, err := conn.Write(frame); err != nil {
			resCh <- dialResult{conn: conn, err: err}
			return
		}
		r := wire.NewReader(conn)
		msg, err := r.Next()
		if err != nil {
			resCh <- dialResult{conn: conn, err: err}
			return
		}
		ack, ok := msg.(*wire.HelloAck)
		if !ok {
			resCh <- dialResult{conn: conn, err: errors.New("transport: handshake: unexpected frame")}
			return
		}
		_ = conn.SetDeadline(time.Time{})
		resCh <- dialResult{conn: conn, r: r, lastSeq: ack.LastSeq}
	}()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var res dialResult
	select {
	case res = <-resCh:
	case <-timer.C:
		go reapDial(connCh, resCh)
		return nil, 0, errDialTimeout
	case <-l.t.stop:
		go reapDial(connCh, resCh)
		return nil, 0, net.ErrClosed
	}
	if res.err != nil {
		if res.conn != nil {
			_ = res.conn.Close()
		}
		return nil, 0, res.err
	}
	conn, r := res.conn, res.r
	l.connMu.Lock()
	l.conn = conn
	l.connMu.Unlock()
	l.t.heard(l.peer)

	// Drain the reverse direction so connection teardown is noticed even
	// while the writer is idle. The only frames peers send here are
	// heartbeat echoes, which double as RTT probes and liveness evidence.
	go func() {
		for {
			msg, err := r.Next()
			if err != nil {
				_ = conn.Close()
				return
			}
			if hb, ok := msg.(*wire.Heartbeat); ok {
				l.observeEcho(hb.Clock)
			}
		}
	}()
	return conn, res.lastSeq, nil
}

// dialResult carries a completed dial-and-handshake back to the run loop.
type dialResult struct {
	conn    net.Conn
	r       *wire.Reader
	lastSeq uint64
	err     error
}

// reapDial cleans up an abandoned dial attempt: it closes the in-flight
// connection as soon as it exists (aborting a handshake stalled inside it),
// then waits for the dial goroutine's final result so nothing leaks.
func reapDial(connCh <-chan net.Conn, resCh <-chan dialResult) {
	for {
		select {
		case c := <-connCh:
			_ = c.Close()
		case res := <-resCh:
			if res.conn != nil {
				_ = res.conn.Close()
			}
			return
		}
	}
}

// observeEcho matches a heartbeat echo against the newest heartbeat written
// and records the round trip.
func (l *link) observeEcho(clock uint64) {
	l.mu.Lock()
	match := clock == l.hbSentClock && !l.hbSentAt.IsZero()
	sentAt := l.hbSentAt
	l.mu.Unlock()
	if match {
		l.ins.hbRTT.Observe(time.Since(sentAt).Nanoseconds())
	}
	l.t.heard(l.peer)
}

// budgetRefreshEvery is how many data batches are sized from one cached
// budget before the heartbeat-RTT histogram is consulted again.
const budgetRefreshEvery = 32

// batchBudget returns the link's current data-batch byte budget, sized
// bandwidth-delay-product style from the observed heartbeat RTT: slower
// links get bigger batches (budget = RTT × assumed bandwidth), clamped to
// [BatchMinBytes, BatchMaxBytes]. Before any RTT sample exists the budget
// is the configured minimum, which keeps fresh links latency-friendly.
// The histogram scan is amortized over budgetRefreshEvery batches.
func (l *link) batchBudget() int {
	if l.budgetAge > 0 {
		l.budgetAge--
		return l.budgetBytes
	}
	l.budgetAge = budgetRefreshEvery
	cfg := &l.t.cfg.Batch
	rttSec := l.ins.hbRTT.Quantile(0.5)
	b := int(rttSec * cfg.BandwidthBps / 8)
	if b < cfg.MinBytes {
		b = cfg.MinBytes
	}
	if b > cfg.MaxBytes {
		b = cfg.MaxBytes
	}
	l.budgetBytes = b
	return b
}

// stream multiplexes outbox + send log over an established connection until
// it fails or the link closes. Data is written in batches: a run of log
// entries is drained under one lock acquisition, encoded back to back into
// one reusable frame buffer, handed to the connection as a single write,
// and accounted with per-batch (not per-frame) metric updates. Control
// frames are re-checked between batches so ACKs interleave with bulk data.
func (l *link) stream(conn net.Conn, cursor uint64) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	var frame []byte
	var data wire.Data
	for {
		acks, apps, hb, hbClock, ok := l.takeControl()
		if !ok {
			return
		}
		wrote := false
		if len(acks) > 0 {
			frame = frame[:0]
			for i := range acks {
				frame = wire.AppendFrame(frame, &acks[i])
			}
			if _, err := bw.Write(frame); err != nil {
				return // resetSent on reconnect resyncs everything
			}
			l.countSent(len(frame), len(acks), &l.ins.ackSent)
			wrote = true
		}
		if len(apps) > 0 {
			frame = frame[:0]
			for _, a := range apps {
				frame = wire.AppendFrame(frame, a)
			}
			if _, err := bw.Write(frame); err != nil {
				return
			}
			l.countSent(len(frame), len(apps), &l.ins.appSent)
			wrote = true
		}
		if hb {
			frame = wire.AppendFrame(frame[:0], &wire.Heartbeat{Clock: hbClock})
			if _, err := bw.Write(frame); err != nil {
				return
			}
			l.countSent(len(frame), 1, &l.ins.hbSent)
			l.mu.Lock()
			l.hbSentClock, l.hbSentAt = hbClock, time.Now()
			l.mu.Unlock()
			wrote = true
		}
		l.batch = l.t.cfg.Log.TryNextBatch(cursor, l.batch[:0], l.t.cfg.Batch.MaxFrames, l.batchBudget())
		if len(l.batch) > 0 {
			frame = frame[:0]
			resends := 0
			rec := l.t.cfg.Trace
			var tDrain int64
			if rec != nil {
				tDrain = time.Now().UnixNano()
				l.traced = l.traced[:0]
			}
			for i := range l.batch {
				e := &l.batch[i]
				data.Seq, data.SentUnixNano, data.Payload = e.Seq, e.SentUnixNano, e.Payload
				frame = wire.AppendFrame(frame, &data)
				if e.Seq <= l.maxDataSeq {
					resends++
				} else {
					l.maxDataSeq = e.Seq
				}
				if rec != nil && rec.Sampled(l.t.cfg.Self, e.Seq) {
					rec.Record(optrace.StageBatchEnqueue, l.t.cfg.Self, e.Seq, l.peer, 0, tDrain)
					l.t.stageBatchQueue.Observe(tDrain - e.SentUnixNano)
					l.traced = append(l.traced, e.Seq)
				}
			}
			cursor = l.batch[len(l.batch)-1].Seq + 1
			if _, err := bw.Write(frame); err != nil {
				return
			}
			if len(l.traced) > 0 {
				tWrite := time.Now().UnixNano()
				for _, seq := range l.traced {
					rec.Record(optrace.StageWireSend, l.t.cfg.Self, seq, l.peer, 0, tWrite)
					l.t.stageWireSend.Observe(tWrite - tDrain)
				}
				l.traced = l.traced[:0]
			}
			l.countSent(len(frame), len(l.batch), &l.ins.dataSent)
			l.t.dataSent.Add(int64(len(l.batch)))
			if resends > 0 {
				l.t.resent.Add(int64(resends))
				l.ins.resent.Add(int64(resends))
			}
			wrote = true
		}
		if wrote {
			continue
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if !l.waitWork(cursor) {
			return
		}
	}
}

// countSent records one written batch of `frames` frames totalling n bytes
// in the transport total and the per-peer byte and frame-kind counters.
func (l *link) countSent(n, frames int, kind *counterPair) {
	l.t.bytesSent.Add(int64(n))
	l.ins.bytesSent.Add(int64(n))
	kind.Add(int64(frames))
}

// takeControl atomically drains the control outbox. ok is false once the
// link is closed.
func (l *link) takeControl() (acks []wire.Ack, apps []*wire.App, hb bool, hbClock uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, nil, false, 0, false
	}
	if len(l.dirty) > 0 {
		acks = make([]wire.Ack, 0, len(l.dirty))
		for _, k := range l.dirty {
			v := l.acks[k]
			if v <= l.sent[k] {
				continue // already on the wire for this connection
			}
			l.sent[k] = v
			acks = append(acks, wire.Ack{Origin: k.origin, By: k.by, Type: k.typ, Seq: v})
		}
		l.dirty = l.dirty[:0]
		clear(l.dirtySet)
	}
	if len(l.apps) > 0 {
		apps = l.apps
		l.apps = nil
	}
	hb, hbClock = l.hbDue, l.hbClock
	l.hbDue = false
	return acks, apps, hb, hbClock, true
}

// waitWork blocks until there is something to send: control traffic, a
// heartbeat, or a log entry at or beyond cursor. Returns false on close.
func (l *link) waitWork(cursor uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		// Re-arm data notifications before checking for work: any append
		// that lands after this store triggers a real signal, and any
		// append before it is visible to the TryNext probe below — so no
		// wakeup is lost while the flag keeps bursts down to one
		// broadcast per idle period.
		l.notified.Store(false)
		if l.closed {
			return false
		}
		if len(l.dirty) > 0 || len(l.apps) > 0 || l.hbDue {
			return true
		}
		if _, ready := l.t.cfg.Log.TryNext(cursor); ready {
			return true
		}
		l.cond.Wait()
	}
}
