package transport

import (
	"bufio"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stabilizer/internal/optrace"
	"stabilizer/internal/wire"
)

// maxAppQueue bounds pending application messages per link.
const maxAppQueue = 4096

// ErrAppQueueFull is returned when a link's application-message queue is
// saturated.
var ErrAppQueueFull = errors.New("transport: app queue full")

// errDialTimeout is returned by a connect attempt that exceeded
// Config.DialTimeout (dial plus handshake).
var errDialTimeout = errors.New("transport: dial timeout")

// Reconnect backoff bounds: the mean sleep doubles from the floor to the
// ceiling, with full jitter applied per attempt.
const (
	backoffFloor = 50 * time.Millisecond
	backoffCeil  = 2 * time.Second
)

// ackKey identifies one coalescing slot in a link's ACK outbox.
type ackKey struct {
	origin uint16
	by     uint16
	typ    uint16
}

// link is one outgoing connection toward a peer: it dials, handshakes,
// then multiplexes coalesced ACKs, app messages and the shared data stream
// over the connection, reconnecting with backoff on failure.
type link struct {
	t    *Transport
	peer int
	ins  *peerInstruments

	// notified coalesces writer wakeups: it is set by the first wake()
	// after the writer goes idle and cleared by the writer before it
	// re-checks for work, so a burst of Sends (or queued ACKs) costs one
	// cond broadcast per idle link instead of one per message.
	notified atomic.Bool
	// draining is true while the writer is actively pushing data batches.
	// The accept side reads it to decide whether a heartbeat echo should
	// ride this link's data stream as a trailer frame (queueEcho) instead
	// of competing for the incoming connection.
	draining atomic.Bool

	mu   sync.Mutex
	cond sync.Cond
	// acks holds the latest known value per slot and is never cleared;
	// sent holds what has been written on the *current* connection. On
	// reconnect sent is reset, so the full control state is resynced —
	// monotonicity makes the resend harmless (SST-style control plane).
	acks map[ackKey]uint64
	sent map[ackKey]uint64
	// dirty is the emission queue; dirtySet mirrors it for O(1)
	// already-queued checks.
	dirty    []ackKey
	dirtySet map[ackKey]struct{}
	apps     []*wire.App
	hbDue    bool
	hbClock  uint64
	// echoDue/echoClock queue a piggybacked heartbeat echo; the newest
	// clock wins, since the peer only matches echoes against its latest
	// heartbeat.
	echoDue   bool
	echoClock uint64
	dataTick  uint64 // bumped by signal(); lets waiters notice new log entries
	closed    bool
	// hbSentClock/hbSentAt record the newest heartbeat written on the
	// current connection; the peer echoes it back and the drain goroutine
	// turns the match into an RTT sample.
	hbSentClock uint64
	hbSentAt    time.Time

	// maxDataSeq is the highest data sequence ever written on any
	// connection of this link; entries at or below it are resends.
	// Touched only by the run/stream goroutine.
	maxDataSeq uint64
	// sendCursor is the next log sequence this link will drain while a
	// connection is live, 0 while disconnected. It feeds the spill
	// horizon: the minimum live cursor marks where the send log's cold
	// prefix ends, so the spiller prefers migrating entries no connected
	// peer still needs from memory. Advisory only — a stale value costs a
	// disk read-back, never correctness.
	sendCursor atomic.Uint64
	// batch is the reusable drain buffer for TryNextBatch; budgetBytes
	// caches the adaptive batch budget and budgetAge counts batches until
	// the next recomputation. Run/stream goroutine only.
	batch       []LogEntry
	budgetBytes int
	budgetAge   int
	// hdrs packs the batch's per-entry Data frame headers back to back;
	// vecs is the reusable iovec list handed to writev (header and payload
	// alternating); ctl is the encoded control trailer (ACKs, apps,
	// heartbeat, echo) riding behind the batch; ackBuf backs the ACK slice
	// takeControl hands out. Run/stream goroutine only (ackBuf is filled
	// under mu but only read by the writer).
	hdrs   []byte
	vecs   [][]byte
	ctl    []byte
	ackBuf []wire.Ack
	// traced collects the sampled seqs of the current batch so their
	// WireSend events can be stamped after the connection write returns.
	// Empty whenever tracing is off or nothing in the batch was sampled.
	// Run/stream goroutine only.
	traced []uint64
	// scratch is the handshake frame buffer, reused across redials.
	// Run goroutine only.
	scratch []byte
	// rng drives the reconnect backoff jitter. Seeded from the link's
	// identity so seeded chaos runs replay the same sleep sequence.
	// Run goroutine only.
	rng *rand.Rand

	connMu sync.Mutex
	conn   net.Conn
}

func newLink(t *Transport, peer int) *link {
	l := &link{
		t:        t,
		peer:     peer,
		ins:      t.peers[peer],
		acks:     make(map[ackKey]uint64),
		sent:     make(map[ackKey]uint64),
		dirtySet: make(map[ackKey]struct{}),
		rng:      rand.New(rand.NewSource(int64(t.cfg.Self)<<16 | int64(peer))),
	}
	l.cond.L = &l.mu
	return l
}

// signal wakes the writer after new data was appended to the send log.
func (l *link) signal() {
	l.mu.Lock()
	l.dataTick++
	l.mu.Unlock()
	l.cond.Broadcast()
}

// wake coalesces writer wakeups: only the first notification after the
// writer went idle pays for the lock and broadcast; the rest of a burst is
// a single atomic load. Safe because waitWork re-arms the flag under mu
// before re-checking every work source.
func (l *link) wake() {
	if l.notified.Load() {
		return
	}
	if !l.notified.Swap(true) {
		l.signal()
	}
}

// notifyData wakes the writer after new entries were appended to the send
// log.
func (l *link) notifyData() { l.wake() }

func (l *link) queueAck(a wire.Ack) {
	k := ackKey{origin: a.Origin, by: a.By, typ: a.Type}
	l.mu.Lock()
	if prev, ok := l.acks[k]; !ok || a.Seq > prev {
		l.acks[k] = a.Seq
		if _, queued := l.dirtySet[k]; !queued {
			l.dirty = append(l.dirty, k)
			l.dirtySet[k] = struct{}{}
		}
	}
	l.mu.Unlock()
	l.wake()
}

// resetSent forgets per-connection send state so the next stream resyncs
// the full control state.
func (l *link) resetSent() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sent = make(map[ackKey]uint64, len(l.acks))
	l.dirty = l.dirty[:0]
	clear(l.dirtySet)
	for k := range l.acks {
		l.dirty = append(l.dirty, k)
		l.dirtySet[k] = struct{}{}
	}
}

func (l *link) queueApp(a *wire.App) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return net.ErrClosed
	}
	if len(l.apps) >= maxAppQueue {
		l.mu.Unlock()
		return ErrAppQueueFull
	}
	l.apps = append(l.apps, a)
	l.mu.Unlock()
	l.wake()
	return nil
}

func (l *link) queueHeartbeat(clock uint64) {
	l.mu.Lock()
	l.hbDue = true
	l.hbClock = clock
	l.mu.Unlock()
	l.wake()
}

// queueEcho accepts a heartbeat echo for piggybacking if the writer is
// actively draining data, reporting whether it took it. The echo rides the
// next batch as a trailer frame; on a quiet link the caller falls back to
// echoing directly on the incoming connection. A stale draining read is
// harmless: waitWork treats a pending echo as work, so an accepted echo is
// written promptly even if the stream goes idle right after.
func (l *link) queueEcho(clock uint64) bool {
	if !l.draining.Load() {
		return false
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	l.echoDue = true
	if clock > l.echoClock {
		l.echoClock = clock
	}
	l.mu.Unlock()
	l.wake()
	return true
}

func (l *link) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
	l.connMu.Lock()
	if l.conn != nil {
		_ = l.conn.Close()
	}
	l.connMu.Unlock()
}

// run is the link's lifetime loop: dial, handshake, stream, reconnect.
func (l *link) run() {
	defer l.t.wg.Done()
	backoff := backoffFloor
	connected := false
	for {
		if l.isClosed() {
			return
		}
		conn, lastSeq, err := l.dial()
		if err != nil {
			// Full jitter: sleep uniformly in [floor, backoff] instead of
			// exactly backoff, so the cluster's links don't re-dial in
			// lockstep after a partition heals and hammer the same instant.
			d := backoffFloor
			if span := int64(backoff - backoffFloor); span > 0 {
				d += time.Duration(l.rng.Int63n(span + 1))
			}
			if !l.sleep(d) {
				return
			}
			if backoff *= 2; backoff > backoffCeil {
				backoff = backoffCeil
			}
			continue
		}
		if connected {
			l.t.reconnects.Add(1)
			l.ins.reconn.Inc()
		}
		connected = true
		backoff = backoffFloor
		l.resetSent()
		l.stream(conn, lastSeq+1)
		_ = conn.Close()
	}
}

func (l *link) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// sleep waits d unless the transport shuts down first.
func (l *link) sleep(d time.Duration) bool {
	select {
	case <-l.t.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// dial connects and handshakes within Config.DialTimeout, returning the
// peer's last received contiguous data sequence. Both the connect and the
// handshake round trip run in a goroutine: a black-holed fabric dial, or a
// peer that accepts but never answers the Hello, cannot hang the run loop.
// The in-flight connection is handed out on connCh as soon as it exists, so
// an abandoning caller can close it — which aborts a handshake stalled in a
// fault gate or a dead network, letting the goroutine finish.
func (l *link) dial() (net.Conn, uint64, error) {
	timeout := l.t.cfg.DialTimeout
	connCh := make(chan net.Conn, 1)
	resCh := make(chan dialResult, 1)
	go func() {
		conn, err := l.t.cfg.Network.Dial(l.t.cfg.Self, l.peer)
		if err != nil {
			resCh <- dialResult{err: err}
			return
		}
		connCh <- conn
		// A deadline as defense in depth: on transports whose reads honor it
		// the handshake self-aborts even if nobody reaps the attempt.
		_ = conn.SetDeadline(time.Now().Add(timeout))
		frame := wire.AppendFrame(nil, &wire.Hello{From: uint16(l.t.cfg.Self), Epoch: l.t.cfg.Epoch})
		if _, err := conn.Write(frame); err != nil {
			resCh <- dialResult{conn: conn, err: err}
			return
		}
		r := wire.NewReader(conn)
		msg, err := r.Next()
		if err != nil {
			resCh <- dialResult{conn: conn, err: err}
			return
		}
		ack, ok := msg.(*wire.HelloAck)
		if !ok {
			resCh <- dialResult{conn: conn, err: errors.New("transport: handshake: unexpected frame")}
			return
		}
		_ = conn.SetDeadline(time.Time{})
		resCh <- dialResult{conn: conn, r: r, lastSeq: ack.LastSeq}
	}()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var res dialResult
	select {
	case res = <-resCh:
	case <-timer.C:
		go reapDial(connCh, resCh)
		return nil, 0, errDialTimeout
	case <-l.t.stop:
		go reapDial(connCh, resCh)
		return nil, 0, net.ErrClosed
	}
	if res.err != nil {
		if res.conn != nil {
			_ = res.conn.Close()
		}
		return nil, 0, res.err
	}
	conn, r := res.conn, res.r
	l.connMu.Lock()
	l.conn = conn
	l.connMu.Unlock()
	l.t.heard(l.peer)

	// Drain the reverse direction so connection teardown is noticed even
	// while the writer is idle. The only frames peers send here are
	// heartbeat echoes, which double as RTT probes and liveness evidence.
	go func() {
		for {
			msg, err := r.Next()
			if err != nil {
				_ = conn.Close()
				return
			}
			switch m := msg.(type) {
			case *wire.Heartbeat:
				l.observeEcho(m.Clock)
			case *wire.HeartbeatEcho:
				l.observeEcho(m.Clock)
			}
		}
	}()
	return conn, res.lastSeq, nil
}

// dialResult carries a completed dial-and-handshake back to the run loop.
type dialResult struct {
	conn    net.Conn
	r       *wire.Reader
	lastSeq uint64
	err     error
}

// reapDial cleans up an abandoned dial attempt: it closes the in-flight
// connection as soon as it exists (aborting a handshake stalled inside it),
// then waits for the dial goroutine's final result so nothing leaks.
func reapDial(connCh <-chan net.Conn, resCh <-chan dialResult) {
	for {
		select {
		case c := <-connCh:
			_ = c.Close()
		case res := <-resCh:
			if res.conn != nil {
				_ = res.conn.Close()
			}
			return
		}
	}
}

// observeEcho matches a heartbeat echo against the newest heartbeat written
// and records the round trip.
func (l *link) observeEcho(clock uint64) {
	l.mu.Lock()
	match := clock == l.hbSentClock && !l.hbSentAt.IsZero()
	sentAt := l.hbSentAt
	l.mu.Unlock()
	if match {
		l.ins.hbRTT.Observe(time.Since(sentAt).Nanoseconds())
	}
	l.t.heard(l.peer)
}

// budgetRefreshEvery is how many data batches are sized from one cached
// budget before the heartbeat-RTT histogram is consulted again.
const budgetRefreshEvery = 32

// batchBudget returns the link's current data-batch byte budget, sized
// bandwidth-delay-product style from the observed heartbeat RTT: slower
// links get bigger batches (budget = RTT × assumed bandwidth), clamped to
// [BatchMinBytes, BatchMaxBytes]. Before any RTT sample exists the budget
// is the configured minimum, which keeps fresh links latency-friendly.
// The histogram scan is amortized over budgetRefreshEvery batches.
func (l *link) batchBudget() int {
	if l.budgetAge > 0 {
		l.budgetAge--
		return l.budgetBytes
	}
	l.budgetAge = budgetRefreshEvery
	cfg := &l.t.cfg.Batch
	rttSec := l.ins.hbRTT.Quantile(0.5)
	b := int(rttSec * cfg.BandwidthBps / 8)
	if b < cfg.MinBytes {
		b = cfg.MinBytes
	}
	if b > cfg.MaxBytes {
		b = cfg.MaxBytes
	}
	l.budgetBytes = b
	return b
}

// nowNano is the data-path clock. It is a variable so tests can count
// clock reads on the drain path: with tracing off (or nothing in the batch
// sampled) the stream loop must make zero clock calls.
var nowNano = func() int64 { return time.Now().UnixNano() }

// directWriteMin is the smallest encoded batch written straight to the
// connection instead of through the 64 KiB buffered writer: at this size
// the bufio copy buys no coalescing, it is pure memcpy overhead.
const directWriteMin = 32 << 10

// stream multiplexes the send log + control outbox over an established
// connection until it fails or the link closes. Data is written in batches:
// a run of log entries is drained under one lock acquisition, framed, and
// handed to the connection as one write — via writev (per-entry header and
// payload iovecs, no payload copy) on TCP connections carrying enough
// bytes, via one reusable frame buffer otherwise. Pending control traffic
// (coalesced ACKs, app messages, heartbeats, piggybacked echoes) rides
// behind each batch as trailer frames in the same write; when no data is
// flowing, control falls back to standalone buffered writes. Control is
// collected once per loop iteration, so it waits at most one MaxFrames
// batch behind bulk data — that bound is the control/data fairness rule.
func (l *link) stream(conn net.Conn, cursor uint64) {
	defer l.draining.Store(false)
	l.sendCursor.Store(cursor)
	defer l.sendCursor.Store(0)
	tcp, _ := conn.(*net.TCPConn)
	cfg := &l.t.cfg.Batch
	bw := bufio.NewWriterSize(conn, 64<<10)
	var frame []byte
	for {
		l.batch = l.t.cfg.Log.TryNextBatch(cursor, l.batch[:0], cfg.MaxFrames, l.batchBudget())
		ctl, ok := l.takeControl()
		if !ok {
			return
		}
		wrote := false
		if n := len(l.batch); n > 0 {
			l.draining.Store(true)
			rec := l.t.cfg.Trace
			if rec != nil {
				l.traced = l.traced[:0]
			}
			var tDrain int64
			resends := 0
			payloadBytes := 0
			l.hdrs = l.hdrs[:0]
			for i := range l.batch {
				e := &l.batch[i]
				l.hdrs = wire.AppendDataFrameHeader(l.hdrs, e.Seq, e.SentUnixNano, len(e.Payload))
				payloadBytes += len(e.Payload)
				if e.Seq <= l.maxDataSeq {
					resends++
				} else {
					l.maxDataSeq = e.Seq
				}
				if rec != nil && rec.Sampled(l.t.cfg.Self, e.Seq) {
					if tDrain == 0 {
						tDrain = nowNano() // first sampled entry pays the clock read
					}
					rec.Record(optrace.StageBatchEnqueue, l.t.cfg.Self, e.Seq, l.peer, 0, tDrain)
					l.t.stageBatchQueue.Observe(tDrain - e.SentUnixNano)
					l.traced = append(l.traced, e.Seq)
				}
			}
			cursor = l.batch[n-1].Seq + 1
			l.sendCursor.Store(cursor)
			ackB, appB, hbB := l.encodeControl(&ctl)
			var err error
			if tcp != nil && cfg.WritevMinBytes >= 0 && payloadBytes >= cfg.WritevMinBytes {
				err = l.writeVectored(tcp, bw, payloadBytes)
			} else {
				frame, err = l.writeCopied(conn, bw, frame)
			}
			if err != nil {
				return // resetSent on reconnect resyncs everything
			}
			if len(l.traced) > 0 {
				tWrite := nowNano()
				for _, seq := range l.traced {
					rec.Record(optrace.StageWireSend, l.t.cfg.Self, seq, l.peer, 0, tWrite)
					l.t.stageWireSend.Observe(tWrite - tDrain)
				}
				l.traced = l.traced[:0]
			}
			l.countSent(len(l.hdrs)+payloadBytes, n, &l.ins.dataSent)
			l.t.dataSent.Add(int64(n))
			if resends > 0 {
				l.t.resent.Add(int64(resends))
				l.ins.resent.Add(int64(resends))
			}
			l.noteControlSent(&ctl, ackB, appB, hbB)
			wrote = true
		} else if ctl.any() {
			// Idle fallback: standalone control frames through the
			// buffered writer.
			ackB, appB, hbB := l.encodeControl(&ctl)
			if _, err := bw.Write(l.ctl); err != nil {
				return
			}
			l.noteControlSent(&ctl, ackB, appB, hbB)
			wrote = true
		}
		if wrote {
			continue
		}
		l.draining.Store(false)
		if err := bw.Flush(); err != nil {
			return
		}
		if !l.waitWork(cursor) {
			return
		}
	}
}

// writeVectored hands the current batch to the kernel as one writev: the
// headers packed in l.hdrs and each entry's payload become alternating
// iovecs, with the control trailer as the final one. Payload bytes are
// never copied. Any bytes still sitting in the buffered writer are flushed
// first so frame order is preserved.
func (l *link) writeVectored(tcp *net.TCPConn, bw *bufio.Writer, payloadBytes int) error {
	if bw.Buffered() > 0 {
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	l.vecs = l.vecs[:0]
	h := 0
	for i := range l.batch {
		e := &l.batch[i]
		l.vecs = append(l.vecs, l.hdrs[h:h+wire.DataFrameOverhead])
		h += wire.DataFrameOverhead
		if len(e.Payload) > 0 {
			l.vecs = append(l.vecs, e.Payload)
		}
	}
	if len(l.ctl) > 0 {
		l.vecs = append(l.vecs, l.ctl)
	}
	total := int64(len(l.hdrs) + payloadBytes + len(l.ctl))
	bufs := net.Buffers(l.vecs)
	n, err := bufs.WriteTo(tcp)
	if err != nil {
		return err
	}
	if n != total {
		return io.ErrShortWrite
	}
	return nil
}

// writeCopied encodes the current batch plus control trailer into the
// reusable frame buffer and writes it in one call: straight to the
// connection for large batches (the bufio copy would buy nothing), through
// the buffered writer for small ones so consecutive little batches still
// coalesce into one wire write.
func (l *link) writeCopied(conn net.Conn, bw *bufio.Writer, frame []byte) ([]byte, error) {
	frame = frame[:0]
	h := 0
	for i := range l.batch {
		frame = append(frame, l.hdrs[h:h+wire.DataFrameOverhead]...)
		h += wire.DataFrameOverhead
		frame = append(frame, l.batch[i].Payload...)
	}
	frame = append(frame, l.ctl...)
	if len(frame) >= directWriteMin {
		if bw.Buffered() > 0 {
			if err := bw.Flush(); err != nil {
				return frame, err
			}
		}
		_, err := conn.Write(frame)
		return frame, err
	}
	_, err := bw.Write(frame)
	return frame, err
}

// encodeControl frames the drained control batch into l.ctl, returning the
// per-kind byte spans (ACKs, apps, heartbeat+echo) for metric attribution.
func (l *link) encodeControl(c *controlBatch) (ackB, appB, hbB int) {
	l.ctl = l.ctl[:0]
	for i := range c.acks {
		l.ctl = wire.AppendFrame(l.ctl, &c.acks[i])
	}
	ackB = len(l.ctl)
	for _, a := range c.apps {
		l.ctl = wire.AppendFrame(l.ctl, a)
	}
	appB = len(l.ctl) - ackB
	if c.hb {
		l.ctl = wire.AppendFrame(l.ctl, &wire.Heartbeat{Clock: c.hbClock})
	}
	if c.echo {
		l.ctl = wire.AppendFrame(l.ctl, &wire.HeartbeatEcho{Clock: c.echoClock})
	}
	hbB = len(l.ctl) - ackB - appB
	return ackB, appB, hbB
}

// noteControlSent updates the per-kind counters for a control batch that
// reached the connection and stamps the heartbeat send time for RTT
// matching.
func (l *link) noteControlSent(c *controlBatch, ackB, appB, hbB int) {
	if len(c.acks) > 0 {
		l.countSent(ackB, len(c.acks), &l.ins.ackSent)
	}
	if len(c.apps) > 0 {
		l.countSent(appB, len(c.apps), &l.ins.appSent)
	}
	hbFrames := 0
	if c.hb {
		hbFrames++
	}
	if c.echo {
		hbFrames++
	}
	if hbFrames > 0 {
		l.countSent(hbB, hbFrames, &l.ins.hbSent)
	}
	if c.hb {
		l.mu.Lock()
		l.hbSentClock, l.hbSentAt = c.hbClock, time.Now()
		l.mu.Unlock()
	}
}

// countSent records one written batch of `frames` frames totalling n bytes
// in the transport total and the per-peer byte and frame-kind counters.
func (l *link) countSent(n, frames int, kind *counterPair) {
	l.t.bytesSent.Add(int64(n))
	l.ins.bytesSent.Add(int64(n))
	kind.Add(int64(frames))
}

// controlBatch is one atomically drained snapshot of a link's control
// outbox: everything that rides as trailer frames behind the current data
// batch, or as standalone frames when the link is idle.
type controlBatch struct {
	acks      []wire.Ack
	apps      []*wire.App
	hb        bool
	hbClock   uint64
	echo      bool
	echoClock uint64
}

// any reports whether the batch carries anything to write.
func (c *controlBatch) any() bool {
	return len(c.acks) > 0 || len(c.apps) > 0 || c.hb || c.echo
}

// takeControl atomically drains the control outbox. ok is false once the
// link is closed. The returned ACK slice aliases link-owned scratch valid
// until the next call (the stream goroutine is the only caller).
func (l *link) takeControl() (c controlBatch, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return c, false
	}
	if len(l.dirty) > 0 {
		l.ackBuf = l.ackBuf[:0]
		for _, k := range l.dirty {
			v := l.acks[k]
			if v <= l.sent[k] {
				continue // already on the wire for this connection
			}
			l.sent[k] = v
			l.ackBuf = append(l.ackBuf, wire.Ack{Origin: k.origin, By: k.by, Type: k.typ, Seq: v})
		}
		c.acks = l.ackBuf
		l.dirty = l.dirty[:0]
		clear(l.dirtySet)
	}
	if len(l.apps) > 0 {
		c.apps = l.apps
		l.apps = nil
	}
	c.hb, c.hbClock = l.hbDue, l.hbClock
	l.hbDue = false
	c.echo, c.echoClock = l.echoDue, l.echoClock
	l.echoDue = false
	return c, true
}

// waitWork blocks until there is something to send: control traffic, a
// heartbeat or echo, or a log entry at or beyond cursor. Returns false on
// close.
func (l *link) waitWork(cursor uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		// Re-arm notifications before checking for work: any append or
		// queue that lands after this store triggers a real signal, and
		// any that landed before it is visible to the checks below — so
		// no wakeup is lost while the flag keeps bursts down to one
		// broadcast per idle period.
		l.notified.Store(false)
		if l.closed {
			return false
		}
		if len(l.dirty) > 0 || len(l.apps) > 0 || l.hbDue || l.echoDue {
			return true
		}
		if _, ready := l.t.cfg.Log.TryNext(cursor); ready {
			return true
		}
		l.cond.Wait()
	}
}
