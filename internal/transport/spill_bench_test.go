package transport

import (
	"testing"

	"stabilizer/internal/emunet"
	"stabilizer/internal/optrace"
)

// BenchmarkSpillWrite measures sustained spill bandwidth: appends against a
// small memory cap with no reader, so every byte past the watermark must
// migrate through the spiller to disk before the next append is admitted.
// bytes/sec here is the ceiling on how fast a sender can absorb a region
// outage.
func BenchmarkSpillWrite(b *testing.B) {
	const payloadLen = 4096
	l, err := NewSendLogTiered(1, FlowConfig{
		MaxBytes:          256 << 10,
		Mode:              FlowSpill,
		SpillDir:          b.TempDir(),
		SpillSegmentBytes: 4 << 20,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, payloadLen)
	b.SetBytes(payloadLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if l.SpilledBytes() == 0 && int64(b.N)*payloadLen > l.Flow().MaxBytes {
		b.Fatal("benchmark never spilled")
	}
}

// BenchmarkSpillReadback measures the tiered reader: the whole stream is
// first forced to disk, then drained through TryNextBatch exactly the way
// link.stream drains a reconnecting peer — disk segments first, live
// memory tail last. bytes/sec is the post-outage catch-up rate the disk
// tier adds on top of the network.
func BenchmarkSpillReadback(b *testing.B) {
	const payloadLen = 4096
	l, err := NewSendLogTiered(1, FlowConfig{
		MaxBytes:          256 << 10,
		Mode:              FlowSpill,
		SpillDir:          b.TempDir(),
		SpillSegmentBytes: 4 << 20,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, payloadLen)
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload, 0); err != nil {
			b.Fatal(err)
		}
	}
	var batch []LogEntry
	cursor := uint64(1)
	b.SetBytes(payloadLen)
	b.ReportAllocs()
	b.ResetTimer()
	for cursor <= uint64(b.N) {
		batch = l.TryNextBatch(cursor, batch[:0], 64, 1<<20)
		if len(batch) == 0 {
			b.Fatalf("drain stalled at %d of %d", cursor, b.N)
		}
		cursor = batch[len(batch)-1].Seq + 1
	}
}

// BenchmarkStreamThroughputSpillUntriggered is the acceptance guard for
// FlowSpill's zero-cost-when-idle claim: the identical end-to-end stream
// harness as BenchmarkStreamThroughputLocal, but the sender's log is a
// tiered FlowSpill log whose cap is far above the benchmark's in-flight
// window, so the spiller arms but never runs. msgs/s must stay within 5%
// of the recorded StreamThroughputLocal numbers in BENCH_transport.json.
func BenchmarkStreamThroughputSpillUntriggered(b *testing.B) {
	l, err := NewSendLogTiered(1, FlowConfig{
		MaxBytes:          1 << 30, // the 8192-message window tops out ~2 MB
		Mode:              FlowSpill,
		SpillDir:          b.TempDir(),
		SpillSegmentBytes: 4 << 20,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkThroughputLog(b, emunet.NewMemNetwork(nil), l, 256, optrace.Config{})
	if l.SpilledBytes() != 0 {
		b.Fatalf("spiller ran (%d bytes): the benchmark no longer measures the untriggered path", l.SpilledBytes())
	}
}
