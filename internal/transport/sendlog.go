// Package transport implements Stabilizer's data-plane networking: one
// lossless FIFO link per peer, fed aggressively from a shared send log
// (paper §III-B). Each link has its own cursor into the log, so a slow WAN
// link never blocks a fast one; on reconnect the peer reports the last
// contiguous sequence it received and the link resumes from there. Control
// information (ACKs) is coalesced per link — only the newest value per
// (origin, stability type) is kept, exploiting monotonicity — and is
// streamed alongside data without disrupting it.
package transport

import (
	"errors"
	"sync"
)

// ErrLogClosed is returned by send-log operations after Close.
var ErrLogClosed = errors.New("transport: send log closed")

// LogEntry is one sequenced data message buffered for (re)transmission.
type LogEntry struct {
	Seq          uint64
	SentUnixNano int64
	Payload      []byte
}

// SendLog is the shared retransmission buffer: an append-only, in-memory
// log of the local node's sequenced messages. Entries are retained until
// TruncateThrough reclaims them (the core does so once a message has been
// delivered everywhere).
type SendLog struct {
	mu   sync.Mutex
	cond sync.Cond
	base uint64 // sequence of entries[off]; next when empty
	next uint64 // next sequence to assign (first is 1)
	// off is the reclaimed prefix length of entries: entries[:off] are
	// zeroed husks kept so TruncateThrough can advance in O(1) and only
	// compact when the dead prefix dominates the slice.
	off     int
	entries []LogEntry
	bytes   int64
	closed  bool
}

// NewSendLog returns an empty log whose first assigned sequence is
// firstSeq (1 on a fresh start; a checkpointed value on primary restart).
func NewSendLog(firstSeq uint64) *SendLog {
	if firstSeq == 0 {
		firstSeq = 1
	}
	l := &SendLog{base: firstSeq, next: firstSeq}
	l.cond.L = &l.mu
	return l
}

// Append assigns the next sequence number to payload and buffers it.
// The payload is retained by reference; callers must not mutate it.
func (l *SendLog) Append(payload []byte, sentUnixNano int64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrLogClosed
	}
	seq := l.next
	l.next++
	l.entries = append(l.entries, LogEntry{Seq: seq, SentUnixNano: sentUnixNano, Payload: payload})
	l.bytes += int64(len(payload))
	l.cond.Broadcast()
	return seq, nil
}

// Next blocks until the entry with sequence seq is available, then returns
// it. If seq has been truncated, the oldest retained entry is returned
// instead (its Seq tells the caller where it landed). Returns ErrLogClosed
// once the log is closed and drained past seq.
func (l *SendLog) Next(seq uint64) (LogEntry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if seq < l.base {
			seq = l.base
		}
		if seq < l.next {
			return l.entries[l.off+int(seq-l.base)], nil
		}
		if l.closed {
			return LogEntry{}, ErrLogClosed
		}
		l.cond.Wait()
	}
}

// TryNext is Next without blocking; ok is false when no entry is ready.
func (l *SendLog) TryNext(seq uint64) (entry LogEntry, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		seq = l.base
	}
	if seq < l.next {
		return l.entries[l.off+int(seq-l.base)], true
	}
	return LogEntry{}, false
}

// TryNextBatch drains a contiguous run of ready entries starting at seq
// under a single lock acquisition, appending them to dst and returning the
// extended slice. The run is capped at maxFrames entries and stops before
// the entry that would push the accumulated payload bytes past maxBytes —
// but always includes at least one entry when any is ready, so an
// over-budget payload still makes progress. A seq below the retained base
// snaps to the base, exactly like TryNext. Entries share payload slices
// with the log; callers must not mutate them.
func (l *SendLog) TryNextBatch(seq uint64, dst []LogEntry, maxFrames, maxBytes int) []LogEntry {
	if maxFrames < 1 {
		maxFrames = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		seq = l.base
	}
	budget := maxBytes
	for n := 0; n < maxFrames && seq < l.next; n++ {
		e := l.entries[l.off+int(seq-l.base)]
		if n > 0 && len(e.Payload) > budget {
			break
		}
		dst = append(dst, e)
		budget -= len(e.Payload)
		seq++
	}
	return dst
}

// TruncateThrough reclaims every entry with sequence ≤ seq. Reclaim is
// amortized: dropped entries are zeroed in place (releasing their payloads
// to the collector) and the slice is only compacted once the dead prefix
// outgrows the live tail, so each entry is moved O(1) times over its life
// instead of once per call.
func (l *SendLog) TruncateThrough(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		return
	}
	drop := int(seq - l.base + 1)
	if live := len(l.entries) - l.off; drop > live {
		drop = live
	}
	dead := l.entries[l.off : l.off+drop]
	for i := range dead {
		l.bytes -= int64(len(dead[i].Payload))
	}
	clear(dead) // release payload references
	l.off += drop
	l.base += uint64(drop)
	if l.off >= len(l.entries)-l.off && l.off >= compactThreshold {
		n := copy(l.entries, l.entries[l.off:])
		clear(l.entries[n:])
		l.entries = l.entries[:n]
		l.off = 0
	}
}

// compactThreshold is the minimum dead-prefix length before TruncateThrough
// compacts the slice, so tiny logs don't shuffle on every reclaim.
const compactThreshold = 32

// Head returns the highest assigned sequence (0 if none).
func (l *SendLog) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// NextSeq returns the sequence the next Append will assign.
func (l *SendLog) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Base returns the oldest retained sequence.
func (l *SendLog) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Bytes returns the payload bytes currently buffered.
func (l *SendLog) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Len returns the number of buffered entries.
func (l *SendLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries) - l.off
}

// Close wakes all blocked readers with ErrLogClosed.
func (l *SendLog) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}
