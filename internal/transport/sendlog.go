// Package transport implements Stabilizer's data-plane networking: one
// lossless FIFO link per peer, fed aggressively from a shared send log
// (paper §III-B). Each link has its own cursor into the log, so a slow WAN
// link never blocks a fast one; on reconnect the peer reports the last
// contiguous sequence it received and the link resumes from there. Control
// information (ACKs) is coalesced per link — only the newest value per
// (origin, stability type) is kept, exploiting monotonicity — and is
// streamed alongside data without disrupting it.
package transport

import (
	"context"
	"errors"
	"sync"

	"stabilizer/internal/metrics"
)

// ErrLogClosed is returned by send-log operations after Close.
var ErrLogClosed = errors.New("transport: send log closed")

// ErrBackpressure is returned by Append in FlowFail mode while the send log
// is above its high watermark: the slowest unreclaimed peer has put the node
// into admission control and the caller should shed load, retry later, or
// fall back to a weaker predicate (see core.Node.Health for blame).
var ErrBackpressure = errors.New("transport: send log backpressure")

// FlowMode selects what Append does once the send log hits its high
// watermark.
type FlowMode uint8

const (
	// FlowBlock makes Append wait (context-aware via AppendCtx) until
	// reclaim truncates the log back below the low watermark.
	FlowBlock FlowMode = iota
	// FlowFail makes Append return ErrBackpressure immediately.
	FlowFail
)

// String implements fmt.Stringer.
func (m FlowMode) String() string {
	if m == FlowFail {
		return "fail"
	}
	return "block"
}

// FlowConfig bounds the send log so a partitioned or slow peer cannot grow
// the retransmission buffer without limit. The zero value disables admission
// control entirely (the pre-flow-control behavior: an unbounded log).
//
// Admission control is hysteretic: once either cap is reached the log is
// "full" and stays full until reclaim brings it back under the low
// watermarks (LowFrac x cap), so appenders don't thrash at the boundary.
// Caps are checked before the entry is added, so the buffer can exceed
// MaxBytes by at most one payload — "cap plus one message", never unbounded.
type FlowConfig struct {
	// MaxBytes is the high watermark on buffered payload bytes (0 = no
	// byte cap).
	MaxBytes int64
	// MaxEntries is the high watermark on buffered entries (0 = no entry
	// cap).
	MaxEntries int
	// LowFrac positions the low watermark as a fraction of each cap
	// (default 0.5; clamped to (0, 1]).
	LowFrac float64
	// Mode picks blocking or fail-fast admission (default FlowBlock).
	Mode FlowMode
}

// Enabled reports whether any cap is configured.
func (f FlowConfig) Enabled() bool { return f.MaxBytes > 0 || f.MaxEntries > 0 }

func (f FlowConfig) normalized() FlowConfig {
	if f.LowFrac <= 0 || f.LowFrac > 1 {
		f.LowFrac = 0.5
	}
	return f
}

// lowBytes returns the byte low watermark (0 when no byte cap).
func (f FlowConfig) lowBytes() int64 { return int64(float64(f.MaxBytes) * f.LowFrac) }

// lowEntries returns the entry low watermark (0 when no entry cap).
func (f FlowConfig) lowEntries() int { return int(float64(f.MaxEntries) * f.LowFrac) }

// LogEntry is one sequenced data message buffered for (re)transmission.
type LogEntry struct {
	Seq          uint64
	SentUnixNano int64
	Payload      []byte
}

// SendLog is the shared retransmission buffer: an append-only, in-memory
// log of the local node's sequenced messages. Entries are retained until
// TruncateThrough reclaims them (the core does so once a message has been
// delivered everywhere).
type SendLog struct {
	mu   sync.Mutex
	cond sync.Cond
	base uint64 // sequence of entries[off]; next when empty
	next uint64 // next sequence to assign (first is 1)
	// off is the reclaimed prefix length of entries: entries[:off] are
	// zeroed husks kept so TruncateThrough can advance in O(1) and only
	// compact when the dead prefix dominates the slice.
	off     int
	entries []LogEntry
	bytes   int64
	closed  bool

	// Flow control (admission) state. full latches once a cap is hit and
	// clears only below the low watermarks (hysteresis). spaceCh is the
	// wakeup channel for blocked appenders: created on demand, closed and
	// dropped when space frees, so each stall round gets a fresh channel.
	flow    FlowConfig
	full    bool
	spaceCh chan struct{}
	waiting int   // appenders currently blocked
	blocked int64 // total appends that had to wait
	shed    int64 // total appends rejected with ErrBackpressure

	// Optional backpressure counters, set by the transport when metrics are
	// enabled (same-package wiring; nil-safe).
	mBlocked *metrics.Counter
	mShed    *metrics.Counter
}

// NewSendLog returns an empty log whose first assigned sequence is
// firstSeq (1 on a fresh start; a checkpointed value on primary restart).
func NewSendLog(firstSeq uint64) *SendLog {
	if firstSeq == 0 {
		firstSeq = 1
	}
	l := &SendLog{base: firstSeq, next: firstSeq}
	l.cond.L = &l.mu
	return l
}

// NewSendLogFlow is NewSendLog with admission control configured.
func NewSendLogFlow(firstSeq uint64, flow FlowConfig) *SendLog {
	l := NewSendLog(firstSeq)
	l.flow = flow.normalized()
	return l
}

// Append assigns the next sequence number to payload and buffers it.
// The payload is retained by reference; callers must not mutate it.
// Under a configured FlowConfig in FlowBlock mode a full log makes Append
// wait (without deadline — use AppendCtx for cancellation) until reclaim
// frees space; in FlowFail mode it returns ErrBackpressure instead.
func (l *SendLog) Append(payload []byte, sentUnixNano int64) (uint64, error) {
	return l.AppendCtx(nil, payload, sentUnixNano)
}

// AppendCtx is Append with cancellation: a blocked append returns ctx.Err()
// promptly when ctx is done. A nil ctx blocks until space frees or the log
// closes.
func (l *SendLog) AppendCtx(ctx context.Context, payload []byte, sentUnixNano int64) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrLogClosed
	}
	if l.overLocked() {
		if l.flow.Mode == FlowFail {
			l.shed++
			c := l.mShed
			l.mu.Unlock()
			if c != nil {
				c.Inc()
			}
			return 0, ErrBackpressure
		}
		l.blocked++
		if c := l.mBlocked; c != nil {
			c.Inc()
		}
		for l.overLocked() {
			ch := l.spaceCh
			if ch == nil {
				ch = make(chan struct{})
				l.spaceCh = ch
			}
			l.waiting++
			l.mu.Unlock()
			var err error
			if ctx == nil {
				<-ch
			} else {
				select {
				case <-ch:
				case <-ctx.Done():
					err = ctx.Err()
				}
			}
			l.mu.Lock()
			l.waiting--
			if err != nil {
				l.mu.Unlock()
				return 0, err
			}
			if l.closed {
				l.mu.Unlock()
				return 0, ErrLogClosed
			}
		}
	}
	seq := l.next
	l.next++
	l.entries = append(l.entries, LogEntry{Seq: seq, SentUnixNano: sentUnixNano, Payload: payload})
	l.bytes += int64(len(payload))
	l.mu.Unlock()
	l.cond.Broadcast()
	return seq, nil
}

// overLocked reports whether admission control currently gates appends,
// updating the hysteretic full latch from the live byte/entry counts.
func (l *SendLog) overLocked() bool {
	fc := &l.flow
	if fc.MaxBytes <= 0 && fc.MaxEntries <= 0 {
		return false
	}
	live := len(l.entries) - l.off
	if (fc.MaxBytes > 0 && l.bytes >= fc.MaxBytes) ||
		(fc.MaxEntries > 0 && live >= fc.MaxEntries) {
		l.full = true
	} else if l.full {
		if (fc.MaxBytes <= 0 || l.bytes <= fc.lowBytes()) &&
			(fc.MaxEntries <= 0 || live <= fc.lowEntries()) {
			l.full = false
		}
	}
	return l.full
}

// releaseSpaceLocked refreshes the hysteretic latch from the live counts
// and wakes blocked appenders once it clears. It runs on every reclaim —
// not just when appenders are waiting — so Full() tracks truncation in
// fail-fast mode too, where nothing blocks and the next admission check
// may be arbitrarily far away.
func (l *SendLog) releaseSpaceLocked() {
	if !l.overLocked() && l.spaceCh != nil {
		close(l.spaceCh)
		l.spaceCh = nil
	}
}

// Next blocks until the entry with sequence seq is available, then returns
// it. If seq has been truncated, the oldest retained entry is returned
// instead (its Seq tells the caller where it landed). Returns ErrLogClosed
// once the log is closed and drained past seq.
func (l *SendLog) Next(seq uint64) (LogEntry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if seq < l.base {
			seq = l.base
		}
		if seq < l.next {
			return l.entries[l.off+int(seq-l.base)], nil
		}
		if l.closed {
			return LogEntry{}, ErrLogClosed
		}
		l.cond.Wait()
	}
}

// TryNext is Next without blocking; ok is false when no entry is ready.
func (l *SendLog) TryNext(seq uint64) (entry LogEntry, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		seq = l.base
	}
	if seq < l.next {
		return l.entries[l.off+int(seq-l.base)], true
	}
	return LogEntry{}, false
}

// TryNextBatch drains a contiguous run of ready entries starting at seq
// under a single lock acquisition, appending them to dst and returning the
// extended slice. The run is capped at maxFrames entries and stops before
// the entry that would push the accumulated payload bytes past maxBytes —
// but always includes at least one entry when any is ready, so an
// over-budget payload still makes progress. A seq below the retained base
// snaps to the base, exactly like TryNext. Entries share payload slices
// with the log; callers must not mutate them.
func (l *SendLog) TryNextBatch(seq uint64, dst []LogEntry, maxFrames, maxBytes int) []LogEntry {
	if maxFrames < 1 {
		maxFrames = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		seq = l.base
	}
	budget := maxBytes
	for n := 0; n < maxFrames && seq < l.next; n++ {
		e := l.entries[l.off+int(seq-l.base)]
		if n > 0 && len(e.Payload) > budget {
			break
		}
		dst = append(dst, e)
		budget -= len(e.Payload)
		seq++
	}
	return dst
}

// TruncateThrough reclaims every entry with sequence ≤ seq. Reclaim is
// amortized: dropped entries are zeroed in place (releasing their payloads
// to the collector) and the slice is only compacted once the dead prefix
// outgrows the live tail, so each entry is moved O(1) times over its life
// instead of once per call.
func (l *SendLog) TruncateThrough(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		return
	}
	drop := int(seq - l.base + 1)
	if live := len(l.entries) - l.off; drop > live {
		drop = live
	}
	dead := l.entries[l.off : l.off+drop]
	for i := range dead {
		l.bytes -= int64(len(dead[i].Payload))
	}
	clear(dead) // release payload references
	l.off += drop
	l.base += uint64(drop)
	if l.off >= len(l.entries)-l.off && l.off >= compactThreshold {
		n := copy(l.entries, l.entries[l.off:])
		clear(l.entries[n:])
		l.entries = l.entries[:n]
		l.off = 0
	}
	l.releaseSpaceLocked()
}

// compactThreshold is the minimum dead-prefix length before TruncateThrough
// compacts the slice, so tiny logs don't shuffle on every reclaim.
const compactThreshold = 32

// Head returns the highest assigned sequence (0 if none).
func (l *SendLog) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// NextSeq returns the sequence the next Append will assign.
func (l *SendLog) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Base returns the oldest retained sequence.
func (l *SendLog) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Bytes returns the payload bytes currently buffered.
func (l *SendLog) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Len returns the number of buffered entries.
func (l *SendLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries) - l.off
}

// Flow returns the admission-control configuration (zero when unbounded).
func (l *SendLog) Flow() FlowConfig {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flow
}

// Full reports whether the admission latch is currently engaged.
func (l *SendLog) Full() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Read-only view: don't recompute the latch here, just report it.
	return l.full
}

// Waiting returns the number of appenders currently blocked on space.
func (l *SendLog) Waiting() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiting
}

// BlockedAppends returns the total appends that had to wait for space.
func (l *SendLog) BlockedAppends() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.blocked
}

// ShedAppends returns the total appends rejected with ErrBackpressure.
func (l *SendLog) ShedAppends() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shed
}

// setBackpressureCounters wires optional metrics counters for blocked and
// shed appends (transport-internal).
func (l *SendLog) setBackpressureCounters(blocked, shed *metrics.Counter) {
	l.mu.Lock()
	l.mBlocked = blocked
	l.mShed = shed
	l.mu.Unlock()
}

// Close wakes all blocked readers with ErrLogClosed.
func (l *SendLog) Close() {
	l.mu.Lock()
	l.closed = true
	if l.spaceCh != nil {
		close(l.spaceCh)
		l.spaceCh = nil
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}
