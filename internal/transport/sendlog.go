// Package transport implements Stabilizer's data-plane networking: one
// lossless FIFO link per peer, fed aggressively from a shared send log
// (paper §III-B). Each link has its own cursor into the log, so a slow WAN
// link never blocks a fast one; on reconnect the peer reports the last
// contiguous sequence it received and the link resumes from there. Control
// information (ACKs) is coalesced per link — only the newest value per
// (origin, stability type) is kept, exploiting monotonicity — and is
// streamed alongside data without disrupting it.
package transport

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"stabilizer/internal/metrics"
)

// ErrLogClosed is returned by send-log operations after Close.
var ErrLogClosed = errors.New("transport: send log closed")

// ErrBackpressure is returned by Append in FlowFail mode while the send log
// is above its high watermark: the slowest unreclaimed peer has put the node
// into admission control and the caller should shed load, retry later, or
// fall back to a weaker predicate (see core.Node.Health for blame).
var ErrBackpressure = errors.New("transport: send log backpressure")

// FlowMode selects what Append does once the send log hits its high
// watermark.
type FlowMode uint8

const (
	// FlowBlock makes Append wait (context-aware via AppendCtx) until
	// reclaim truncates the log back below the low watermark.
	FlowBlock FlowMode = iota
	// FlowFail makes Append return ErrBackpressure immediately.
	FlowFail
	// FlowSpill migrates the cold prefix of the log to on-disk segment
	// files once the high watermark latches, keeping memory bounded while
	// the total backlog grows with the disk: a partitioned peer's stream
	// is preserved in full and read back through the same batched drain
	// path on reconnect. Appends block (like FlowBlock) only while the
	// spiller is behind or the disk has failed. Requires
	// FlowConfig.SpillDir and at least one cap; see NewSendLogTiered.
	FlowSpill
)

// String implements fmt.Stringer.
func (m FlowMode) String() string {
	switch m {
	case FlowFail:
		return "fail"
	case FlowSpill:
		return "spill"
	}
	return "block"
}

// FlowConfig bounds the send log so a partitioned or slow peer cannot grow
// the retransmission buffer without limit. The zero value disables admission
// control entirely (the pre-flow-control behavior: an unbounded log).
//
// Admission control is hysteretic: once either cap is reached the log is
// "full" and stays full until reclaim brings it back under the low
// watermarks (LowFrac x cap), so appenders don't thrash at the boundary.
// Caps are checked before the entry is added, so the buffer can exceed
// MaxBytes by at most one payload — "cap plus one message", never unbounded.
// The caps are global across all producer stripes: admission-controlled
// appends serialize through the log's central mutex so byte and entry
// accounting stay exact no matter how many stripes are configured.
type FlowConfig struct {
	// MaxBytes is the high watermark on buffered payload bytes (0 = no
	// byte cap).
	MaxBytes int64
	// MaxEntries is the high watermark on buffered entries (0 = no entry
	// cap).
	MaxEntries int
	// LowFrac positions the low watermark as a fraction of each cap
	// (default 0.5; clamped to (0, 1]).
	LowFrac float64
	// Mode picks blocking, fail-fast, or disk-spilling admission (default
	// FlowBlock).
	Mode FlowMode
	// SpillDir is the directory holding the on-disk segment files of the
	// spill tier. Required in FlowSpill mode; ignored otherwise. Existing
	// segments found at open are recovered (crash restart).
	SpillDir string
	// SpillSegmentBytes bounds each spill segment file's payload bytes
	// (default 4 MiB). Smaller segments reclaim disk sooner as the peer
	// catches up; larger ones amortize file overhead.
	SpillSegmentBytes int64
}

// Enabled reports whether any cap is configured.
func (f FlowConfig) Enabled() bool { return f.MaxBytes > 0 || f.MaxEntries > 0 }

func (f FlowConfig) normalized() FlowConfig {
	if f.LowFrac <= 0 || f.LowFrac > 1 {
		f.LowFrac = 0.5
	}
	return f
}

// lowBytes returns the byte low watermark (0 when no byte cap).
func (f FlowConfig) lowBytes() int64 { return int64(float64(f.MaxBytes) * f.LowFrac) }

// lowEntries returns the entry low watermark (0 when no entry cap).
func (f FlowConfig) lowEntries() int { return int(float64(f.MaxEntries) * f.LowFrac) }

// LogEntry is one sequenced data message buffered for (re)transmission.
type LogEntry struct {
	Seq          uint64
	SentUnixNano int64
	Payload      []byte
}

// maxLogStripes caps the producer stripe count: past the point where every
// core has its own stripe, more stripes only cost merge passes.
const maxLogStripes = 64

// DefaultLogStripes returns the stripe count used when a caller asks for
// striping without picking a number: one per core, capped at 8 — append
// contention flattens well before then and the drainer's merge pass scales
// with the stripe count.
func DefaultLogStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// logStripe is one producer staging buffer. Appenders reserve a sequence
// from the log's shared atomic counter while holding the stripe mutex, so
// each stripe's entries are in ascending sequence order; the drainer merges
// stripes back into the dense canonical log in sequence order. The struct is
// padded to its own cache line so neighboring stripes don't false-share.
type logStripe struct {
	mu      sync.Mutex
	entries []LogEntry
	_       [96]byte
}

// SendLog is the shared retransmission buffer: an append-only, in-memory
// log of the local node's sequenced messages. Entries are retained until
// TruncateThrough reclaims them (the core does so once a message has been
// delivered everywhere).
//
// Appends are sharded across producer stripes (NewSendLogOpts): a producer
// reserves the next sequence from one atomic counter inside a per-stripe
// critical section and stages the entry there, so concurrent senders no
// longer serialize on a single mutex. Readers (TryNext/TryNextBatch/Next)
// merge staged entries into the dense canonical slice in sequence order
// before looking anything up, which keeps every external invariant of the
// single-lock log: sequences are gapless, batches are contiguous runs, and
// truncation is exact. An entry becomes visible to readers only once every
// lower sequence has been staged — a reservation gap in one stripe briefly
// hides later sequences, exactly preserving FIFO.
type SendLog struct {
	// next is the next sequence to assign (first is 1); reservations are
	// atomic so they need no central lock. bytes tracks buffered payload
	// bytes (staged + merged). rr is the sticky stripe hint: the index of
	// the stripe producers should try first (see lockStripe).
	next  atomic.Uint64
	bytes atomic.Int64
	rr    atomic.Uint32
	// readWaiters counts goroutines blocked in Next; fast-path appenders
	// skip the wakeup lock entirely while it is zero.
	readWaiters atomic.Int32
	// closedA mirrors closed for the lock-free append fast path.
	closedA atomic.Bool
	// flowFast is fixed at construction: true when the optimistic
	// reserve-and-check admission fast path applies (byte cap only — an
	// entry cap needs the retained base, which is mutex state).
	flowFast bool
	// flowOn is fixed at construction: admission-controlled appends take
	// the central mutex so the caps stay global across stripes.
	flowOn bool

	stripes []logStripe

	mu   sync.Mutex
	cond sync.Cond
	base uint64 // sequence of entries[off]; next when empty
	// off is the reclaimed prefix length of entries: entries[:off] are
	// zeroed husks kept so TruncateThrough can advance in O(1) and only
	// compact when the dead prefix dominates the slice.
	off     int
	entries []LogEntry // canonical merged log, contiguous from base
	closed  bool
	// reclaimed is the highest sequence ever passed to TruncateThrough
	// (clamped to assigned sequences). A truncation can overtake a staged
	// entry stuck behind a reservation gap in another stripe; the merge
	// consults this watermark so such an entry is dropped on arrival
	// instead of being re-exposed to readers after its reclaim.
	reclaimed uint64

	// Flow control (admission) state. full latches once a cap is hit and
	// clears only below the low watermarks (hysteresis). spaceCh is the
	// wakeup channel for blocked appenders: created on demand, closed and
	// dropped when space frees, so each stall round gets a fresh channel.
	flow    FlowConfig
	full    bool
	// fullA mirrors full for the lock-free admission fast path: byte-capped
	// appends far below the watermark skip the central mutex entirely and
	// only fall into the exact (locked) path once the latch is set or a
	// byte reservation would cross the cap.
	fullA   atomic.Bool
	spaceCh chan struct{}
	waiting int   // appenders currently blocked
	blocked int64 // total appends that had to wait
	shed    int64 // total appends rejected with ErrBackpressure

	// Optional backpressure counters, set by the transport when metrics are
	// enabled (same-package wiring; nil-safe).
	mBlocked *metrics.Counter
	mShed    *metrics.Counter

	// spill is the disk tier (FlowSpill mode only; nil otherwise). spillErr
	// records a spill setup failure when the caller used a constructor that
	// cannot return it — the log then degrades to FlowBlock semantics.
	spill    *spillState
	spillErr error
}

// NewSendLog returns an empty single-stripe log whose first assigned
// sequence is firstSeq (1 on a fresh start; a checkpointed value on primary
// restart).
func NewSendLog(firstSeq uint64) *SendLog {
	return NewSendLogOpts(firstSeq, FlowConfig{}, 1)
}

// NewSendLogFlow is NewSendLog with admission control configured.
func NewSendLogFlow(firstSeq uint64, flow FlowConfig) *SendLog {
	return NewSendLogOpts(firstSeq, flow, 1)
}

// NewSendLogOpts returns an empty log with flow control and producer
// striping configured. stripes < 1 means 1; values above maxLogStripes are
// clamped. Striping only changes append-side contention — the external
// contract (gapless sequences, contiguous batches, global flow caps) is
// identical at every stripe count.
//
// FlowSpill setup can fail (directory creation, segment recovery); use
// NewSendLogTiered to observe the error. Through this constructor a failed
// spill setup degrades the log to FlowBlock semantics — still bounded, no
// disk tier — and records the cause in SpillSetupErr.
func NewSendLogOpts(firstSeq uint64, flow FlowConfig, stripes int) *SendLog {
	flow = flow.normalized()
	if flow.Mode == FlowSpill {
		l, err := NewSendLogTiered(firstSeq, flow, stripes)
		if err == nil {
			return l
		}
		fb := flow
		fb.Mode = FlowBlock
		l = newSendLog(firstSeq, fb, stripes)
		l.spillErr = err
		return l
	}
	return newSendLog(firstSeq, flow, stripes)
}

// NewSendLogTiered is NewSendLogOpts with spill setup errors surfaced: in
// FlowSpill mode it creates (or recovers) the on-disk segment tier under
// flow.SpillDir and starts the spiller. Recovered segments re-anchor the
// log: the next assigned sequence continues after the highest recovered one,
// and the recovered backlog is served from disk exactly as if it had just
// been spilled. For other modes it behaves like NewSendLogOpts.
func NewSendLogTiered(firstSeq uint64, flow FlowConfig, stripes int) (*SendLog, error) {
	flow = flow.normalized()
	if flow.Mode != FlowSpill {
		return newSendLog(firstSeq, flow, stripes), nil
	}
	if flow.SpillDir == "" {
		return nil, errors.New("transport: FlowSpill requires FlowConfig.SpillDir")
	}
	if !flow.Enabled() {
		return nil, errors.New("transport: FlowSpill requires a byte or entry cap (the spill watermark)")
	}
	sp, err := newSpillState(flow)
	if err != nil {
		return nil, err
	}
	l := newSendLog(firstSeq, flow, stripes)
	l.spill = sp
	if n := len(sp.segs); n > 0 {
		last := sp.segs[n-1].last
		if l.base > last+1 {
			// The recovered chain cannot be sequenced under the caller's
			// checkpoint (a gap would separate disk from new appends):
			// discard it rather than serve a stream with a hole.
			sp.discardAllLocked()
		} else {
			l.base = last + 1
			l.next.Store(last + 1)
		}
	}
	go l.spiller()
	return l, nil
}

func newSendLog(firstSeq uint64, flow FlowConfig, stripes int) *SendLog {
	if firstSeq == 0 {
		firstSeq = 1
	}
	if stripes < 1 {
		stripes = 1
	}
	if stripes > maxLogStripes {
		stripes = maxLogStripes
	}
	l := &SendLog{
		base:    firstSeq,
		flow:    flow,
		stripes: make([]logStripe, stripes),
	}
	l.flowOn = l.flow.Enabled()
	l.flowFast = flow.MaxEntries <= 0 && flow.MaxBytes > 0
	l.next.Store(firstSeq)
	l.reclaimed = firstSeq - 1
	l.cond.L = &l.mu
	return l
}

// Stripes returns the configured producer stripe count.
func (l *SendLog) Stripes() int { return len(l.stripes) }

// Append assigns the next sequence number to payload and buffers it.
// The payload is retained by reference; callers must not mutate it.
// Under a configured FlowConfig in FlowBlock mode a full log makes Append
// wait (without deadline — use AppendCtx for cancellation) until reclaim
// frees space; in FlowFail mode it returns ErrBackpressure instead.
func (l *SendLog) Append(payload []byte, sentUnixNano int64) (uint64, error) {
	return l.AppendCtx(nil, payload, sentUnixNano)
}

// AppendCtx is Append with cancellation: a blocked append returns ctx.Err()
// promptly when ctx is done. A nil ctx blocks until space frees or the log
// closes.
func (l *SendLog) AppendCtx(ctx context.Context, payload []byte, sentUnixNano int64) (uint64, error) {
	if !l.flowOn {
		return l.appendFast(payload, sentUnixNano)
	}
	return l.appendFlow(ctx, payload, sentUnixNano)
}

// lockStripe picks and locks a staging stripe. Producers are sticky: each
// append first tries the last successfully locked stripe (uncontended
// TryLock), only migrating to a neighbor when it is busy. Stickiness keeps a
// lone producer's sequences in one stripe — so the drainer's merge pops them
// as one long run under a single stripe lock — while contention still
// spreads concurrent producers across stripes.
func (l *SendLog) lockStripe() *logStripe {
	n := len(l.stripes)
	if n == 1 {
		s := &l.stripes[0]
		s.mu.Lock()
		return s
	}
	start := int(l.rr.Load()) % n
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		s := &l.stripes[idx]
		if s.mu.TryLock() {
			if i != 0 {
				l.rr.Store(uint32(idx))
			}
			return s
		}
	}
	s := &l.stripes[start]
	s.mu.Lock()
	return s
}

// appendFast is the unbounded-log append: no admission control, so the
// whole operation is one short per-stripe critical section plus two atomic
// adds. The sequence is reserved inside the stripe lock, which is what
// keeps each stripe internally sorted for the merge.
func (l *SendLog) appendFast(payload []byte, sentUnixNano int64) (uint64, error) {
	s := l.lockStripe()
	if l.closedA.Load() {
		s.mu.Unlock()
		return 0, ErrLogClosed
	}
	seq := l.next.Add(1) - 1
	s.entries = append(s.entries, LogEntry{Seq: seq, SentUnixNano: sentUnixNano, Payload: payload})
	s.mu.Unlock()
	l.bytes.Add(int64(len(payload)))
	// Wake blocked readers only when some exist. A reader that raced this
	// publish re-checks the stripes after announcing itself (see Next), so
	// a zero read here can never strand it.
	if l.readWaiters.Load() != 0 {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	return seq, nil
}

// appendFlow is the admission-controlled append: capacity checks, sequence
// reservation and byte accounting all happen under the central mutex so the
// caps stay global and exact across stripes — except far below a byte cap,
// where an optimistic reserve-and-check keeps the hot path striped and
// lock-free like appendFast (a flow-configured-but-idle log must not tax
// the stream).
func (l *SendLog) appendFlow(ctx context.Context, payload []byte, sentUnixNano int64) (uint64, error) {
	// Fast path: reserve the bytes atomically; if the reservation stays
	// under the cap and the full latch is clear, admission could not have
	// blocked this append, so the central mutex adds nothing but
	// contention with the drainer. A reservation that crosses the cap is
	// rolled back and retried on the exact path (which latches full, kicks
	// the spiller, and blocks as configured). MaxEntries needs the retained
	// base — mutex state — so entry-capped logs always take the exact path.
	if pl := int64(len(payload)); l.flowFast && !l.fullA.Load() {
		nb := l.bytes.Add(pl)
		if nb < l.flow.MaxBytes {
			s := l.lockStripe()
			if l.closedA.Load() {
				s.mu.Unlock()
				l.bytes.Add(-pl)
				return 0, ErrLogClosed
			}
			seq := l.next.Add(1) - 1
			s.entries = append(s.entries, LogEntry{Seq: seq, SentUnixNano: sentUnixNano, Payload: payload})
			s.mu.Unlock()
			if l.readWaiters.Load() != 0 {
				l.mu.Lock()
				l.cond.Broadcast()
				l.mu.Unlock()
			}
			return seq, nil
		}
		l.bytes.Add(-pl)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrLogClosed
	}
	if l.overLocked() {
		if l.flow.Mode == FlowFail {
			l.shed++
			c := l.mShed
			l.mu.Unlock()
			if c != nil {
				c.Inc()
			}
			return 0, ErrBackpressure
		}
		l.blocked++
		if c := l.mBlocked; c != nil {
			c.Inc()
		}
		if l.spill != nil {
			l.kickSpill()
		}
		for l.overLocked() {
			ch := l.spaceCh
			if ch == nil {
				ch = make(chan struct{})
				l.spaceCh = ch
			}
			l.waiting++
			l.mu.Unlock()
			var err error
			if ctx == nil {
				<-ch
			} else {
				select {
				case <-ch:
				case <-ctx.Done():
					err = ctx.Err()
				}
			}
			l.mu.Lock()
			l.waiting--
			if err != nil {
				l.mu.Unlock()
				return 0, err
			}
			if l.closed {
				l.mu.Unlock()
				return 0, ErrLogClosed
			}
		}
	}
	s := l.lockStripe()
	seq := l.next.Add(1) - 1
	s.entries = append(s.entries, LogEntry{Seq: seq, SentUnixNano: sentUnixNano, Payload: payload})
	s.mu.Unlock()
	l.bytes.Add(int64(len(payload)))
	if l.spill != nil && l.overLocked() {
		// The high watermark latched: wake the spiller so the cold prefix
		// starts migrating to disk before appenders have to block.
		l.kickSpill()
	}
	l.mu.Unlock()
	l.cond.Broadcast()
	return seq, nil
}

// overLocked reports whether admission control currently gates appends,
// updating the hysteretic full latch from the live byte/entry counts.
func (l *SendLog) overLocked() bool {
	fc := &l.flow
	if fc.MaxBytes <= 0 && fc.MaxEntries <= 0 {
		return false
	}
	live := int(l.next.Load() - l.base)
	bytes := l.bytes.Load()
	if (fc.MaxBytes > 0 && bytes >= fc.MaxBytes) ||
		(fc.MaxEntries > 0 && live >= fc.MaxEntries) {
		l.full = true
		l.fullA.Store(true)
	} else if l.full {
		if (fc.MaxBytes <= 0 || bytes <= fc.lowBytes()) &&
			(fc.MaxEntries <= 0 || live <= fc.lowEntries()) {
			l.full = false
			l.fullA.Store(false)
		}
	}
	return l.full
}

// releaseSpaceLocked refreshes the hysteretic latch from the live counts
// and wakes blocked appenders once it clears. It runs on every reclaim —
// not just when appenders are waiting — so Full() tracks truncation in
// fail-fast mode too, where nothing blocks and the next admission check
// may be arbitrarily far away.
func (l *SendLog) releaseSpaceLocked() {
	if !l.overLocked() && l.spaceCh != nil {
		close(l.spaceCh)
		l.spaceCh = nil
	}
}

// mergeLocked moves staged stripe entries into the canonical slice in
// sequence order. It pops the contiguous head run of each stripe, looping
// until a full pass over the stripes makes no progress — a sequence that is
// reserved but not yet staged stops the merge exactly there, so readers
// never observe a gap. Caller holds l.mu.
func (l *SendLog) mergeLocked() {
	want := l.base + uint64(len(l.entries)-l.off)
	if l.next.Load() == want {
		return // nothing staged
	}
	dropped := false
	for {
		advanced := false
		for i := range l.stripes {
			s := &l.stripes[i]
			s.mu.Lock()
			n := 0
			for n < len(s.entries) && s.entries[n].Seq == want {
				if want <= l.reclaimed {
					// A truncation overtook this entry while it was staged
					// behind a reservation gap: it is already reclaimed and
					// must never become visible again. want <= reclaimed
					// implies the merged region is empty (truncation strips
					// merged entries <= reclaimed), so advancing base keeps
					// the dense invariant.
					l.bytes.Add(-int64(len(s.entries[n].Payload)))
					l.base++
					dropped = true
				} else {
					l.entries = append(l.entries, s.entries[n])
				}
				want++
				n++
			}
			if n > 0 {
				advanced = true
				rest := copy(s.entries, s.entries[n:])
				clear(s.entries[rest:]) // drop stale payload references
				s.entries = s.entries[:rest]
			}
			s.mu.Unlock()
		}
		if !advanced || l.next.Load() == want {
			if dropped {
				l.releaseSpaceLocked()
			}
			return
		}
	}
}

// visibleNextLocked is the first sequence not yet merged into the canonical
// slice: entries [base, visibleNext) are addressable. Caller holds l.mu.
func (l *SendLog) visibleNextLocked() uint64 {
	return l.base + uint64(len(l.entries)-l.off)
}

// Next blocks until the entry with sequence seq is available, then returns
// it. If seq has been truncated, the oldest retained entry is returned
// instead (its Seq tells the caller where it landed). Returns ErrLogClosed
// once the log is closed and drained past seq.
func (l *SendLog) Next(seq uint64) (LogEntry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		l.mergeLocked()
		if l.spill != nil && seq < l.base {
			memBase := l.base
			l.mu.Unlock()
			e, ok, resume := l.spill.readOne(seq, memBase)
			l.mu.Lock()
			if ok {
				return e, nil
			}
			if resume > seq {
				seq = resume // the prefix below resume was reclaimed
				continue
			}
			// Disk tier wedged (unreadable sealed segment): fall through
			// and block rather than fabricate a gap in the stream.
		}
		if seq < l.base {
			seq = l.base
		}
		if seq < l.visibleNextLocked() {
			return l.entries[l.off+int(seq-l.base)], nil
		}
		if l.closed {
			return LogEntry{}, ErrLogClosed
		}
		// Announce the sleeper before the final re-check: an appendFast
		// that published before our merge below must observe the counter
		// and take the broadcast path, so no wakeup can be lost between
		// the check and the Wait.
		l.readWaiters.Add(1)
		l.mergeLocked()
		if seq < l.visibleNextLocked() {
			l.readWaiters.Add(-1)
			continue
		}
		l.cond.Wait()
		l.readWaiters.Add(-1)
	}
}

// TryNext is Next without blocking; ok is false when no entry is ready.
func (l *SendLog) TryNext(seq uint64) (entry LogEntry, ok bool) {
	for {
		l.mu.Lock()
		l.mergeLocked()
		if l.spill != nil && seq < l.base {
			memBase := l.base
			l.mu.Unlock()
			e, ok, resume := l.spill.readOne(seq, memBase)
			if ok {
				return e, true
			}
			if resume > seq {
				seq = resume
				continue
			}
			return LogEntry{}, false // disk tier wedged: stall, don't gap
		}
		if seq < l.base {
			seq = l.base
		}
		if seq < l.visibleNextLocked() {
			e := l.entries[l.off+int(seq-l.base)]
			l.mu.Unlock()
			return e, true
		}
		l.mu.Unlock()
		return LogEntry{}, false
	}
}

// TryNextBatch drains a contiguous run of ready entries starting at seq
// under a single lock acquisition, appending them to dst and returning the
// extended slice. The run is capped at maxFrames entries and stops before
// the entry that would push the accumulated payload bytes past maxBytes —
// but always includes at least one entry when any is ready, so a single
// payload larger than the whole byte budget is still sent rather than
// wedging the link (the oversize first-frame rule; flow control has already
// accounted such a payload at admission, so draining it promptly is also
// what unblocks waiting appenders). A seq below the retained base snaps to
// the base, exactly like TryNext. Entries share payload slices with the
// log; callers must not mutate them.
func (l *SendLog) TryNextBatch(seq uint64, dst []LogEntry, maxFrames, maxBytes int) []LogEntry {
	if maxFrames < 1 {
		maxFrames = 1
	}
	if l.spill != nil {
		return l.tryNextBatchTiered(seq, dst, maxFrames, maxBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mergeLocked()
	if seq < l.base {
		seq = l.base
	}
	budget := maxBytes
	vnext := l.visibleNextLocked()
	for n := 0; n < maxFrames && seq < vnext; n++ {
		e := l.entries[l.off+int(seq-l.base)]
		if n > 0 && len(e.Payload) > budget {
			break
		}
		dst = append(dst, e)
		budget -= len(e.Payload)
		seq++
	}
	return dst
}

// tryNextBatchTiered is the FlowSpill drain: it serves the disk tier first
// (sequences below the in-memory base) and crosses seamlessly into the live
// memory tail within the same batch, preserving the gapless FIFO order the
// link protocol depends on. The same frame/byte budget and oversize
// first-frame rule apply across the boundary.
func (l *SendLog) tryNextBatchTiered(seq uint64, dst []LogEntry, maxFrames, maxBytes int) []LogEntry {
	sp := l.spill
	budget := maxBytes
	start := len(dst)
	for {
		l.mu.Lock()
		l.mergeLocked()
		if seq < l.base {
			memBase := l.base
			l.mu.Unlock()
			prevSeq, prevLen := seq, len(dst)
			var ok bool
			dst, seq, ok = sp.readBatch(seq, memBase, dst, start, maxFrames, &budget)
			if !ok || len(dst)-start >= maxFrames {
				return dst // wedged disk (stall, don't gap) or batch full
			}
			if budget <= 0 && len(dst) > start {
				return dst
			}
			if seq == prevSeq && len(dst) == prevLen {
				return dst // no progress (budget-stopped mid-tier)
			}
			continue // advanced below memBase exhausted: re-check tiers
		}
		vnext := l.visibleNextLocked()
		for len(dst)-start < maxFrames && seq < vnext {
			e := l.entries[l.off+int(seq-l.base)]
			if len(dst) > start && len(e.Payload) > budget {
				break
			}
			dst = append(dst, e)
			budget -= len(e.Payload)
			seq++
		}
		l.mu.Unlock()
		return dst
	}
}

// TruncateThrough reclaims every entry with sequence ≤ seq. Reclaim is
// amortized: dropped entries are zeroed in place (releasing their payloads
// to the collector) and the slice is only compacted once the dead prefix
// outgrows the live tail, so each entry is moved O(1) times over its life
// instead of once per call. Staged stripe entries are merged first, so a
// reclaim that has raced ahead of the drainer still accounts every byte.
func (l *SendLog) TruncateThrough(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if hi := l.next.Load() - 1; seq > hi {
		// Clamp to assigned sequences so a permissive caller cannot
		// poison entries that do not exist yet.
		seq = hi
	}
	if seq > l.reclaimed {
		l.reclaimed = seq
	}
	if l.spill != nil {
		l.spill.truncate(seq)
	}
	if seq < l.base {
		return
	}
	l.mergeLocked()
	drop := int(seq - l.base + 1)
	if live := len(l.entries) - l.off; drop > live {
		drop = live
	}
	dead := l.entries[l.off : l.off+drop]
	var freed int64
	for i := range dead {
		freed += int64(len(dead[i].Payload))
	}
	l.bytes.Add(-freed)
	clear(dead) // release payload references
	l.off += drop
	l.base += uint64(drop)
	if l.off >= len(l.entries)-l.off && l.off >= compactThreshold {
		n := copy(l.entries, l.entries[l.off:])
		clear(l.entries[n:])
		l.entries = l.entries[:n]
		l.off = 0
	}
	l.releaseSpaceLocked()
}

// compactThreshold is the minimum dead-prefix length before TruncateThrough
// compacts the slice, so tiny logs don't shuffle on every reclaim.
const compactThreshold = 32

// Head returns the highest assigned sequence (0 if none).
func (l *SendLog) Head() uint64 {
	return l.next.Load() - 1
}

// NextSeq returns the sequence the next Append will assign.
func (l *SendLog) NextSeq() uint64 {
	return l.next.Load()
}

// Base returns the oldest retained sequence, across both tiers: with a
// spill tier holding data, that is the oldest sequence still on disk.
func (l *SendLog) Base() uint64 {
	if sp := l.spill; sp != nil {
		if first, ok := sp.oldest(); ok {
			return first
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Bytes returns the payload bytes currently buffered across both tiers:
// the total retransmission backlog. Use MemoryBytes for the in-memory
// share that admission control bounds.
func (l *SendLog) Bytes() int64 {
	b := l.bytes.Load()
	if sp := l.spill; sp != nil {
		b += sp.spilled.Load()
	}
	return b
}

// MemoryBytes returns the payload bytes held in memory (staged and merged).
// This is the quantity the FlowConfig caps bound; in FlowSpill mode the
// on-disk remainder is excluded.
func (l *SendLog) MemoryBytes() int64 {
	return l.bytes.Load()
}

// Len returns the number of buffered entries across both tiers.
func (l *SendLog) Len() int {
	if sp := l.spill; sp != nil {
		if first, ok := sp.oldest(); ok {
			return int(l.next.Load() - first)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.next.Load() - l.base)
}

// SpilledBytes returns the payload bytes currently parked in on-disk spill
// segments (0 without a spill tier).
func (l *SendLog) SpilledBytes() int64 {
	if sp := l.spill; sp != nil {
		return sp.spilled.Load()
	}
	return 0
}

// SpilledSegments returns the number of live on-disk spill segment files.
func (l *SendLog) SpilledSegments() int64 {
	if sp := l.spill; sp != nil {
		return sp.segCount.Load()
	}
	return 0
}

// SpillReadbackBytes returns the cumulative payload bytes served back to
// readers from the disk tier.
func (l *SendLog) SpillReadbackBytes() int64 {
	if sp := l.spill; sp != nil {
		return sp.readback.Load()
	}
	return 0
}

// SpillDegraded reports whether the spill tier is currently unable to write
// (disk fault): the log keeps running with FlowBlock semantics — bounded
// memory, blocking appends, zero data loss — until the disk recovers.
func (l *SendLog) SpillDegraded() bool {
	if sp := l.spill; sp != nil {
		return sp.degraded.Load()
	}
	return false
}

// SpillSetupErr returns the spill initialization error recorded when a
// constructor without an error result (NewSendLogOpts) had to degrade a
// FlowSpill request to FlowBlock semantics. nil when spill is healthy or
// was never requested.
func (l *SendLog) SpillSetupErr() error { return l.spillErr }

// SetSpillWriteFault makes every subsequent spill segment write fail with
// cause — the fault-injection hook for disk-full and similar persistent
// failures. The spiller degrades to FlowBlock semantics while the fault is
// set; nil clears it and spilling resumes on the next append over the
// watermark.
func (l *SendLog) SetSpillWriteFault(cause error) {
	if sp := l.spill; sp != nil {
		sp.setFault(cause)
		if cause == nil {
			// Appenders blocked on the watermark kicked the spiller before
			// the fault cleared; wake it again so they aren't stranded.
			l.kickSpill()
		}
	}
}

// SetSpillHorizon installs the cold-prefix bias: fn returns the lowest
// sequence a live reader still needs from memory (typically the minimum
// send cursor across connected links). The spiller prefers not to migrate
// entries at or above it, so peers that are merely slow keep streaming from
// memory — but when the watermark demands it, bounded memory wins and the
// bias is ignored. nil (the default) treats the whole merged prefix as
// cold. Correctness never depends on the horizon: spilled entries remain
// readable through the same drain calls.
func (l *SendLog) SetSpillHorizon(fn func() uint64) {
	if sp := l.spill; sp != nil {
		sp.horizon.Store(&fn)
	}
}

// Flow returns the admission-control configuration (zero when unbounded).
func (l *SendLog) Flow() FlowConfig {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flow
}

// Full reports whether the admission latch is currently engaged.
func (l *SendLog) Full() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Read-only view: don't recompute the latch here, just report it.
	return l.full
}

// Waiting returns the number of appenders currently blocked on space.
func (l *SendLog) Waiting() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiting
}

// BlockedAppends returns the total appends that had to wait for space.
func (l *SendLog) BlockedAppends() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.blocked
}

// ShedAppends returns the total appends rejected with ErrBackpressure.
func (l *SendLog) ShedAppends() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shed
}

// setBackpressureCounters wires optional metrics counters for blocked and
// shed appends (transport-internal).
func (l *SendLog) setBackpressureCounters(blocked, shed *metrics.Counter) {
	l.mu.Lock()
	l.mBlocked = blocked
	l.mShed = shed
	l.mu.Unlock()
}

// Close wakes all blocked readers and appenders with ErrLogClosed and
// stops the spiller (on-disk segments are left in place for recovery).
func (l *SendLog) Close() {
	l.mu.Lock()
	l.closed = true
	l.closedA.Store(true)
	if l.spaceCh != nil {
		close(l.spaceCh)
		l.spaceCh = nil
	}
	l.mu.Unlock()
	l.cond.Broadcast()
	if sp := l.spill; sp != nil {
		sp.closeOnce.Do(func() { close(sp.kick) })
		// Wait for the spiller to finish any in-flight segment write and
		// release its cached reader: after Close returns, the spill
		// directory is quiescent and safe to recover from.
		<-sp.done
	}
}
