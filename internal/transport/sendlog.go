// Package transport implements Stabilizer's data-plane networking: one
// lossless FIFO link per peer, fed aggressively from a shared send log
// (paper §III-B). Each link has its own cursor into the log, so a slow WAN
// link never blocks a fast one; on reconnect the peer reports the last
// contiguous sequence it received and the link resumes from there. Control
// information (ACKs) is coalesced per link — only the newest value per
// (origin, stability type) is kept, exploiting monotonicity — and is
// streamed alongside data without disrupting it.
package transport

import (
	"errors"
	"sync"
)

// ErrLogClosed is returned by send-log operations after Close.
var ErrLogClosed = errors.New("transport: send log closed")

// LogEntry is one sequenced data message buffered for (re)transmission.
type LogEntry struct {
	Seq          uint64
	SentUnixNano int64
	Payload      []byte
}

// SendLog is the shared retransmission buffer: an append-only, in-memory
// log of the local node's sequenced messages. Entries are retained until
// TruncateThrough reclaims them (the core does so once a message has been
// delivered everywhere).
type SendLog struct {
	mu      sync.Mutex
	cond    sync.Cond
	base    uint64 // sequence of entries[0]; 0 when empty and nothing truncated
	next    uint64 // next sequence to assign (first is 1)
	entries []LogEntry
	bytes   int64
	closed  bool
}

// NewSendLog returns an empty log whose first assigned sequence is
// firstSeq (1 on a fresh start; a checkpointed value on primary restart).
func NewSendLog(firstSeq uint64) *SendLog {
	if firstSeq == 0 {
		firstSeq = 1
	}
	l := &SendLog{base: firstSeq, next: firstSeq}
	l.cond.L = &l.mu
	return l
}

// Append assigns the next sequence number to payload and buffers it.
// The payload is retained by reference; callers must not mutate it.
func (l *SendLog) Append(payload []byte, sentUnixNano int64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrLogClosed
	}
	seq := l.next
	l.next++
	l.entries = append(l.entries, LogEntry{Seq: seq, SentUnixNano: sentUnixNano, Payload: payload})
	l.bytes += int64(len(payload))
	l.cond.Broadcast()
	return seq, nil
}

// Next blocks until the entry with sequence seq is available, then returns
// it. If seq has been truncated, the oldest retained entry is returned
// instead (its Seq tells the caller where it landed). Returns ErrLogClosed
// once the log is closed and drained past seq.
func (l *SendLog) Next(seq uint64) (LogEntry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if seq < l.base {
			seq = l.base
		}
		if seq < l.next {
			return l.entries[seq-l.base], nil
		}
		if l.closed {
			return LogEntry{}, ErrLogClosed
		}
		l.cond.Wait()
	}
}

// TryNext is Next without blocking; ok is false when no entry is ready.
func (l *SendLog) TryNext(seq uint64) (entry LogEntry, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		seq = l.base
	}
	if seq < l.next {
		return l.entries[seq-l.base], true
	}
	return LogEntry{}, false
}

// TruncateThrough reclaims every entry with sequence ≤ seq.
func (l *SendLog) TruncateThrough(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		return
	}
	drop := seq - l.base + 1
	if drop > uint64(len(l.entries)) {
		drop = uint64(len(l.entries))
	}
	for _, e := range l.entries[:drop] {
		l.bytes -= int64(len(e.Payload))
	}
	// Copy the tail so the dropped prefix can be collected.
	tail := make([]LogEntry, len(l.entries)-int(drop))
	copy(tail, l.entries[drop:])
	l.entries = tail
	l.base += drop
}

// Head returns the highest assigned sequence (0 if none).
func (l *SendLog) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// NextSeq returns the sequence the next Append will assign.
func (l *SendLog) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Base returns the oldest retained sequence.
func (l *SendLog) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Bytes returns the payload bytes currently buffered.
func (l *SendLog) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Len returns the number of buffered entries.
func (l *SendLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Close wakes all blocked readers with ErrLogClosed.
func (l *SendLog) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}
