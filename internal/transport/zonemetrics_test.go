package transport

import (
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
)

// famTotal sums every child of a family, optionally filtered by label values.
func famTotal(t *testing.T, reg *metrics.Registry, name string, match map[string]string) float64 {
	t.Helper()
	fs := reg.Find(name)
	if fs == nil {
		t.Fatalf("family %q not registered", name)
	}
	var sum float64
outer:
	for _, m := range fs.Metrics {
		for k, v := range match {
			if m.Labels[k] != v {
				continue outer
			}
		}
		sum += m.Value
	}
	return sum
}

// TestZoneRollupsMatchPerPeerFamilies checks that the {az,region} rollup
// families account for exactly the same bytes and frames as the per-peer
// families they aggregate.
func TestZoneRollupsMatchPerPeerFamilies(t *testing.T) {
	const n = 3
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	tags := map[int]TopoTag{
		1: {AZ: "az-a", Region: "us"},
		2: {AZ: "az-b", Region: "us"},
		3: {AZ: "az-c", Region: "eu"},
	}
	regs := make([]*metrics.Registry, n+1)
	trs := make([]*Transport, n+1)
	recs := make([]*recorder, n+1)
	for i := 1; i <= n; i++ {
		regs[i] = metrics.NewRegistry()
		recs[i] = newRecorder()
		tr, err := New(Config{
			Self:           i,
			N:              n,
			Network:        net,
			Handler:        recs[i],
			Log:            NewSendLog(1),
			HeartbeatEvery: 20 * time.Millisecond,
			Metrics:        regs[i],
			TopoTags:       tags[i],
			PeerTags:       tags,
		})
		if err != nil {
			t.Fatalf("new transport %d: %v", i, err)
		}
		if err := tr.Start(); err != nil {
			t.Fatalf("start transport %d: %v", i, err)
		}
		trs[i] = tr
		defer tr.Close()
	}

	// Push some data from node 1 to everyone and let heartbeats flow.
	for i := 0; i < 20; i++ {
		if _, err := trs[1].cfg.Log.Append([]byte("payload"), time.Now().UnixNano()); err != nil {
			t.Fatal(err)
		}
	}
	trs[1].NotifyData()
	waitUntil(t, 5*time.Second, func() bool {
		return len(recs[2].dataSeqs(1)) == 20 && len(recs[3].dataSeqs(1)) == 20
	})

	for i := 1; i <= n; i++ {
		// Totals must agree exactly: every per-peer increment also fed a
		// zone child, snapshot ordering aside the transports are idle-ish,
		// so poll until they converge.
		waitUntil(t, 5*time.Second, func() bool {
			perPeer := famTotal(t, regs[i], "stabilizer_transport_bytes_sent_total", nil)
			zone := famTotal(t, regs[i], "stabilizer_transport_zone_bytes_sent_total", nil)
			return perPeer > 0 && perPeer == zone
		})
		if pp, z := famTotal(t, regs[i], "stabilizer_transport_frames_recv_total", nil),
			famTotal(t, regs[i], "stabilizer_transport_zone_frames_recv_total", nil); pp != z {
			t.Errorf("node %d: frames_recv per-peer %v != zone rollup %v", i, pp, z)
		}
	}

	// Node 1's sends split across zones: peer 2 rolls up under az-b/us and
	// peer 3 under az-c/eu, never under node 1's own zone.
	if v := famTotal(t, regs[1], "stabilizer_transport_zone_bytes_sent_total",
		map[string]string{"az": "az-b", "region": "us"}); v <= 0 {
		t.Errorf("zone az-b/us saw no sent bytes from node 1")
	}
	if v := famTotal(t, regs[1], "stabilizer_transport_zone_bytes_sent_total",
		map[string]string{"az": "az-c", "region": "eu"}); v <= 0 {
		t.Errorf("zone az-c/eu saw no sent bytes from node 1")
	}
	if v := famTotal(t, regs[1], "stabilizer_transport_zone_bytes_sent_total",
		map[string]string{"az": "az-a", "region": "us"}); v != 0 {
		t.Errorf("node 1's own zone rolled up %v sent bytes, want 0", v)
	}
}
