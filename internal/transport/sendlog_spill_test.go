package transport

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// spillPayload is the deterministic, sequence-derived payload used across
// the spill tests: any delivered entry can be checked byte-for-byte against
// ground truth without keeping a copy.
func spillPayload(seq uint64, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(seq*131 + uint64(i)*7 + 13)
	}
	return p
}

func checkSpillEntry(t *testing.T, e LogEntry, payloadLen int) {
	t.Helper()
	want := spillPayload(e.Seq, payloadLen)
	if string(e.Payload) != string(want) {
		t.Fatalf("seq %d payload corrupted across the tier boundary", e.Seq)
	}
	if e.SentUnixNano != int64(e.Seq*1000+7) {
		t.Fatalf("seq %d SentUnixNano = %d, want %d", e.Seq, e.SentUnixNano, e.Seq*1000+7)
	}
}

// drainSpillLog drains the log from seq via the batched read path, checking
// that the stream is gapless and byte-identical to ground truth, and
// returns the next undrained sequence.
func drainSpillLog(t *testing.T, l *SendLog, seq uint64, payloadLen int) uint64 {
	t.Helper()
	for {
		batch := l.TryNextBatch(seq, nil, 32, 1<<20)
		if len(batch) == 0 {
			return seq
		}
		for _, e := range batch {
			if e.Seq != seq {
				t.Fatalf("gap in drained stream: got seq %d, want %d", e.Seq, seq)
			}
			checkSpillEntry(t, e, payloadLen)
			seq++
		}
	}
}

func spillSegFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), "spill-") && strings.HasSuffix(de.Name(), ".seg") {
			out = append(out, filepath.Join(dir, de.Name()))
		}
	}
	return out
}

// TestSpillBoundedMemoryGaplessReadback is the core FlowSpill contract: a
// backlog several times the memory cap spills to disk, memory stays under
// cap-plus-one-payload at every step, and the batched drain returns the
// entire stream gapless and byte-identical across the disk->memory boundary.
func TestSpillBoundedMemoryGaplessReadback(t *testing.T) {
	const (
		payloadLen = 64
		total      = 500
		capBytes   = 8 << 10
	)
	flow := FlowConfig{
		MaxBytes:          capBytes,
		Mode:              FlowSpill,
		SpillDir:          t.TempDir(),
		SpillSegmentBytes: 2 << 10,
	}
	l, err := NewSendLogTiered(1, flow, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var sent int64
	for i := 0; i < total; i++ {
		seq := uint64(i + 1)
		if _, err := l.Append(spillPayload(seq, payloadLen), int64(seq*1000+7)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
		sent += payloadLen
		if mem := l.MemoryBytes(); mem > capBytes+payloadLen {
			t.Fatalf("after append %d: memory %d exceeds cap %d + one payload", seq, mem, capBytes)
		}
	}
	if got := l.Bytes(); got != sent {
		t.Fatalf("total backlog Bytes() = %d, want %d (memory+disk)", got, sent)
	}
	if l.SpilledBytes() == 0 || l.SpilledSegments() == 0 {
		t.Fatalf("no spill despite %d bytes against a %d cap (spilled=%d segs=%d)",
			sent, capBytes, l.SpilledBytes(), l.SpilledSegments())
	}
	if next := drainSpillLog(t, l, 1, payloadLen); next != total+1 {
		t.Fatalf("drained through seq %d, want %d", next-1, total)
	}
	if l.SpillReadbackBytes() == 0 {
		t.Fatal("drain crossed the disk tier but SpillReadbackBytes is 0")
	}
	if l.Len() != total {
		t.Fatalf("Len() = %d, want %d (nothing truncated)", l.Len(), total)
	}
}

// TestSpillSingleEntryReads exercises TryNext and blocking Next against the
// disk tier (the link uses these for readiness probes and non-batched
// paths).
func TestSpillSingleEntryReads(t *testing.T) {
	const payloadLen = 64
	flow := FlowConfig{MaxBytes: 1 << 10, Mode: FlowSpill, SpillDir: t.TempDir()}
	l, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 100; i++ {
		if _, err := l.Append(spillPayload(uint64(i), payloadLen), int64(uint64(i)*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	if l.SpilledSegments() == 0 {
		t.Fatal("expected spilled segments")
	}
	// Seq 1 now lives on disk; both single-entry paths must serve it.
	e, ok := l.TryNext(1)
	if !ok || e.Seq != 1 {
		t.Fatalf("TryNext(1) = (%v, %v), want disk-tier entry 1", e.Seq, ok)
	}
	checkSpillEntry(t, e, payloadLen)
	e2, err := l.Next(1)
	if err != nil || e2.Seq != 1 {
		t.Fatalf("Next(1) = (%v, %v)", e2.Seq, err)
	}
	checkSpillEntry(t, e2, payloadLen)
	// And sequential TryNext must walk the whole stream gapless.
	for seq := uint64(1); seq <= 100; seq++ {
		e, ok := l.TryNext(seq)
		if !ok || e.Seq != seq {
			t.Fatalf("TryNext(%d) = (%v, %v)", seq, e.Seq, ok)
		}
		checkSpillEntry(t, e, payloadLen)
	}
}

// TestSpillTruncate: reclaim below the cursor horizon deletes dead segment
// files, partially-reclaimed segments keep serving their live suffix, and
// a full reclaim empties the tier.
func TestSpillTruncate(t *testing.T) {
	const payloadLen = 64
	dir := t.TempDir()
	flow := FlowConfig{MaxBytes: 1 << 10, Mode: FlowSpill, SpillDir: dir, SpillSegmentBytes: 512}
	l, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const total = 200
	for i := 1; i <= total; i++ {
		if _, err := l.Append(spillPayload(uint64(i), payloadLen), int64(uint64(i)*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	if l.SpilledSegments() < 2 {
		t.Fatalf("want >= 2 segments, got %d", l.SpilledSegments())
	}
	files := len(spillSegFiles(t, dir))

	// Truncate into the middle of the spilled range: some files die, the
	// rest of the stream stays gapless from the new base.
	l.TruncateThrough(total / 2)
	if got := len(spillSegFiles(t, dir)); got >= files {
		t.Fatalf("truncate reclaimed no segment files (%d -> %d)", files, got)
	}
	if base := l.Base(); base != total/2+1 {
		t.Fatalf("Base() = %d after TruncateThrough(%d)", base, total/2)
	}
	if next := drainSpillLog(t, l, l.Base(), payloadLen); next != total+1 {
		t.Fatalf("post-truncate drain ended at %d, want %d", next-1, total)
	}

	// Full reclaim: the disk tier empties and every file is gone.
	l.TruncateThrough(total)
	if l.SpilledBytes() != 0 || l.SpilledSegments() != 0 {
		t.Fatalf("after full truncate: spilled=%d segs=%d, want 0,0", l.SpilledBytes(), l.SpilledSegments())
	}
	if got := spillSegFiles(t, dir); len(got) != 0 {
		t.Fatalf("segment files survive full truncation: %v", got)
	}
	if l.Len() != 0 {
		t.Fatalf("Len() = %d after full truncation", l.Len())
	}
}

// TestSpillRecovery: Close and reopen the same directory. The recovered
// log re-anchors sequencing after the highest durable entry and serves the
// recovered backlog from disk exactly as if it had just been spilled; new
// appends extend the same gapless stream.
func TestSpillRecovery(t *testing.T) {
	const payloadLen = 64
	dir := t.TempDir()
	flow := FlowConfig{MaxBytes: 4 << 10, Mode: FlowSpill, SpillDir: dir, SpillSegmentBytes: 1 << 10}
	l, err := NewSendLogTiered(1, flow, 2)
	if err != nil {
		t.Fatal(err)
	}
	const total = 300
	for i := 1; i <= total; i++ {
		if _, err := l.Append(spillPayload(uint64(i), payloadLen), int64(uint64(i)*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	if l.SpilledSegments() == 0 {
		t.Fatal("expected spill before close")
	}
	l.Close() // waits for the spiller: the directory is quiescent

	l2, err := NewSendLogTiered(1, flow, 2)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer l2.Close()
	if base := l2.Base(); base != 1 {
		t.Fatalf("recovered Base() = %d, want 1", base)
	}
	recovered := uint64(l2.Len())
	if recovered == 0 {
		t.Fatal("recovered log is empty")
	}
	// Only a contiguous durable prefix survives a restart (in-memory tail
	// entries die with the process — that is FlowSpill's contract: the
	// *spilled* backlog is durable).
	if next := drainSpillLog(t, l2, 1, payloadLen); next != recovered+1 {
		t.Fatalf("recovered drain ended at %d, want %d", next-1, recovered)
	}
	// New appends continue the stream with no gap and no reuse.
	seq, err := l2.Append(spillPayload(recovered+1, payloadLen), int64((recovered+1)*1000+7))
	if err != nil || seq != recovered+1 {
		t.Fatalf("post-recovery append = (%d, %v), want seq %d", seq, err, recovered+1)
	}
	if next := drainSpillLog(t, l2, recovered+1, payloadLen); next != recovered+2 {
		t.Fatalf("post-recovery drain ended at %d", next-1)
	}
}

// TestSpillRecoveryTornTail simulates a crash mid-spill: the last segment
// file loses its tail. Recovery must keep the intact prefix, never serve a
// torn record, and re-anchor sequencing after the last intact entry.
func TestSpillRecoveryTornTail(t *testing.T) {
	const payloadLen = 64
	dir := t.TempDir()
	flow := FlowConfig{MaxBytes: 1 << 10, Mode: FlowSpill, SpillDir: dir, SpillSegmentBytes: 1 << 10}
	l, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 150; i++ {
		if _, err := l.Append(spillPayload(uint64(i), payloadLen), int64(uint64(i)*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	files := spillSegFiles(t, dir)
	if len(files) < 2 {
		t.Fatalf("need >= 2 segment files, got %d", len(files))
	}
	// Tear the tail of the last (highest-epoch) segment: chop one byte, so
	// exactly the final record's CRC fails.
	last := files[len(files)-1]
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatalf("recover from torn tail: %v", err)
	}
	defer l2.Close()
	recovered := uint64(l2.Len())
	if recovered == 0 {
		t.Fatal("torn tail destroyed the whole chain")
	}
	if next := drainSpillLog(t, l2, 1, payloadLen); next != recovered+1 {
		t.Fatalf("drain ended at %d, want %d", next-1, recovered)
	}
}

// TestSpillRecoveryChainGap: a missing middle segment (manual deletion,
// disk loss) must not let recovery serve a stream with a hole — everything
// after the gap is discarded.
func TestSpillRecoveryChainGap(t *testing.T) {
	const payloadLen = 64
	dir := t.TempDir()
	flow := FlowConfig{MaxBytes: 1 << 10, Mode: FlowSpill, SpillDir: dir, SpillSegmentBytes: 512}
	l, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		if _, err := l.Append(spillPayload(uint64(i), payloadLen), int64(uint64(i)*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	files := spillSegFiles(t, dir)
	if len(files) < 3 {
		t.Fatalf("need >= 3 segment files, got %d", len(files))
	}
	if err := os.Remove(files[1]); err != nil {
		t.Fatal(err)
	}

	l2, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	next := drainSpillLog(t, l2, 1, payloadLen)
	// Everything served must have been contiguous from 1 (drainSpillLog
	// checks); the chain must stop before the hole.
	if got := len(spillSegFiles(t, dir)); got >= len(files)-1 {
		t.Fatalf("files after the gap were not discarded (%d files remain)", got)
	}
	if next < 2 {
		t.Fatal("even the pre-gap prefix was lost")
	}
}

// TestSpillCheckpointAheadDiscards: when the caller's checkpoint starts the
// log beyond the recovered chain (so a sequence gap would separate disk
// from new appends), the stale chain is discarded rather than served.
func TestSpillCheckpointAheadDiscards(t *testing.T) {
	const payloadLen = 64
	dir := t.TempDir()
	flow := FlowConfig{MaxBytes: 1 << 10, Mode: FlowSpill, SpillDir: dir}
	l, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if _, err := l.Append(spillPayload(uint64(i), payloadLen), int64(uint64(i)*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := NewSendLogTiered(10_000, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.SpilledBytes() != 0 || l2.SpilledSegments() != 0 {
		t.Fatalf("stale chain kept: spilled=%d segs=%d", l2.SpilledBytes(), l2.SpilledSegments())
	}
	if got := spillSegFiles(t, dir); len(got) != 0 {
		t.Fatalf("stale segment files kept: %v", got)
	}
	seq, err := l2.Append([]byte("x"), 1)
	if err != nil || seq != 10_000 {
		t.Fatalf("append after discard = (%d, %v), want seq 10000", seq, err)
	}
}

// TestSpillWriteFaultDegradesToBlock: a failing disk must not lose data or
// unbound memory — FlowSpill degrades to FlowBlock semantics (appends over
// the watermark stall) until the fault clears, then spilling resumes and
// the stranded appenders complete.
func TestSpillWriteFaultDegradesToBlock(t *testing.T) {
	const payloadLen = 64
	const capBytes = 1 << 10
	flow := FlowConfig{MaxBytes: capBytes, Mode: FlowSpill, SpillDir: t.TempDir()}
	l, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	diskFault := errors.New("injected: no space left on device")
	l.SetSpillWriteFault(diskFault)

	// Fill to the watermark: these appends stay in memory.
	n := 0
	for l.MemoryBytes()+payloadLen <= capBytes {
		n++
		if _, err := l.Append(spillPayload(uint64(n), payloadLen), int64(uint64(n)*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	// The next append must block: the spiller cannot free memory.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if _, err := l.AppendCtx(ctx, spillPayload(uint64(n+1), payloadLen), int64(uint64(n+1)*1000+7)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("append over watermark with faulted disk = %v, want DeadlineExceeded", err)
	}
	if l.SpilledBytes() != 0 {
		t.Fatalf("spilled %d bytes through a faulted disk", l.SpilledBytes())
	}
	if !l.SpillDegraded() {
		t.Fatal("SpillDegraded() = false while the disk fault is active")
	}
	if mem := l.MemoryBytes(); mem > capBytes+payloadLen {
		t.Fatalf("memory %d exceeds cap under fault", mem)
	}

	// Clear the fault: the stranded appender completes and spilling resumes.
	l.SetSpillWriteFault(nil)
	done := make(chan error, 1)
	go func() {
		_, err := l.Append(spillPayload(uint64(n+1), payloadLen), int64(uint64(n+1)*1000+7))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append after fault cleared: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append still blocked after the fault cleared")
	}
	if next := drainSpillLog(t, l, 1, payloadLen); next != uint64(n+2) {
		t.Fatalf("drain after fault ended at %d, want %d", next-1, n+1)
	}
}

// TestSpillSetupFallback: NewSendLogOpts (the error-less constructor) with
// an impossible spill dir degrades to FlowBlock semantics and records the
// cause, instead of returning a broken log.
func TestSpillSetupFallback(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	flow := FlowConfig{MaxBytes: 1 << 20, Mode: FlowSpill, SpillDir: filepath.Join(blocker, "sub")}
	l := NewSendLogOpts(1, flow, 1)
	defer l.Close()
	if l.SpillSetupErr() == nil {
		t.Fatal("SpillSetupErr() = nil for an uncreatable spill dir")
	}
	if l.Flow().Mode != FlowBlock {
		t.Fatalf("fallback mode = %v, want block", l.Flow().Mode)
	}
	if _, err := l.Append([]byte("still works"), 1); err != nil {
		t.Fatalf("fallback log append: %v", err)
	}
}

// TestSpillConfigValidation: FlowSpill without a dir or without any cap is
// a configuration error (there is no watermark to trigger spilling).
func TestSpillConfigValidation(t *testing.T) {
	if _, err := NewSendLogTiered(1, FlowConfig{Mode: FlowSpill, MaxBytes: 1}, 1); err == nil {
		t.Fatal("FlowSpill without SpillDir accepted")
	}
	if _, err := NewSendLogTiered(1, FlowConfig{Mode: FlowSpill, SpillDir: t.TempDir()}, 1); err == nil {
		t.Fatal("FlowSpill without any cap accepted")
	}
}

// TestSpillManySegmentsEpochNaming sanity-checks the on-disk layout: epoch
// numbers grow monotonically and survive recovery (a recovered log never
// reuses an epoch, so a crashed writer's file cannot be overwritten).
func TestSpillManySegmentsEpochNaming(t *testing.T) {
	const payloadLen = 64
	dir := t.TempDir()
	flow := FlowConfig{MaxBytes: 512, Mode: FlowSpill, SpillDir: dir, SpillSegmentBytes: 256}
	l, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 64; i++ {
		if _, err := l.Append(spillPayload(uint64(i), payloadLen), int64(uint64(i)*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	before := spillSegFiles(t, dir)
	if len(before) < 2 {
		t.Fatalf("want several segment files, got %d", len(before))
	}
	l2, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	base := uint64(l2.Len()) + 1
	for i := 0; i < 64; i++ {
		seq := base + uint64(i)
		if _, err := l2.Append(spillPayload(seq, payloadLen), int64(seq*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	after := spillSegFiles(t, dir)
	if len(after) <= len(before) {
		t.Fatalf("no new segments after recovery (%d -> %d)", len(before), len(after))
	}
	// Names sort lexicographically == numerically (zero-padded): the new
	// epochs must all land after the recovered ones.
	for i := 1; i < len(after); i++ {
		if after[i-1] >= after[i] {
			t.Fatalf("epoch ordering violated: %s >= %s", after[i-1], after[i])
		}
	}
	if next := drainSpillLog(t, l2, 1, payloadLen); next < base {
		t.Fatalf("drain ended at %d", next-1)
	}
}

// TestSpillOversizeFirstFrame: an entry bigger than the batch byte budget
// must still be delivered as the sole frame of its batch (same rule as the
// in-memory path), from the disk tier.
func TestSpillOversizeFirstFrame(t *testing.T) {
	flow := FlowConfig{MaxBytes: 2 << 10, Mode: FlowSpill, SpillDir: t.TempDir()}
	l, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := make([]byte, 4<<10)
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := l.Append(big, 1); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 40; i++ {
		if _, err := l.Append(spillPayload(uint64(i), 64), int64(uint64(i)*1000+7)); err != nil {
			t.Fatal(err)
		}
	}
	if l.SpilledBytes() == 0 {
		t.Fatal("expected spill")
	}
	batch := l.TryNextBatch(1, nil, 32, 1024) // budget smaller than entry 1
	if len(batch) != 1 || batch[0].Seq != 1 || len(batch[0].Payload) != len(big) {
		t.Fatalf("oversize first frame: got %d frames, first seq %d", len(batch), batch[0].Seq)
	}
	if string(batch[0].Payload) != string(big) {
		t.Fatal("oversize payload corrupted through the disk tier")
	}
	// The next batch resumes right after it.
	batch = l.TryNextBatch(2, nil, 8, 1<<20)
	if len(batch) == 0 || batch[0].Seq != 2 {
		t.Fatalf("batch after oversize frame starts at %v", batch)
	}
}

// TestSpillCloseUnblocksSpillAppenders: Close while appenders are stalled
// behind a faulted spill tier must wake them with ErrLogClosed and reap the
// spiller goroutine (satellite of the Close-vs-blocked-append fix).
func TestSpillCloseUnblocksSpillAppenders(t *testing.T) {
	const payloadLen = 64
	flow := FlowConfig{MaxBytes: 512, Mode: FlowSpill, SpillDir: t.TempDir()}
	l, err := NewSendLogTiered(1, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.SetSpillWriteFault(errors.New("wedged disk"))
	n := 0
	for l.MemoryBytes()+payloadLen <= 512 {
		n++
		if _, err := l.Append(spillPayload(uint64(n), payloadLen), 1); err != nil {
			t.Fatal(err)
		}
	}
	const blocked = 4
	errs := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		go func(i int) {
			_, err := l.Append(spillPayload(uint64(n+1+i), payloadLen), 1)
			errs <- err
		}(i)
	}
	// Wait until all of them are provably parked on the space latch.
	deadline := time.Now().Add(5 * time.Second)
	for l.Waiting() < blocked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d appenders blocked", l.Waiting(), blocked)
		}
		time.Sleep(time.Millisecond)
	}
	l.Close() // also waits for the spiller goroutine to exit
	for i := 0; i < blocked; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrLogClosed) {
				t.Fatalf("blocked appender woke with %v, want ErrLogClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("blocked appender leaked past Close")
		}
	}
	if got := l.Waiting(); got != 0 {
		t.Fatalf("Waiting() = %d after Close", got)
	}
}

func TestSpillFlowModeString(t *testing.T) {
	if got := fmt.Sprint(FlowSpill); got != "spill" {
		t.Fatalf("FlowSpill.String() = %q", got)
	}
}
