package transport

import (
	"sync"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
	"stabilizer/internal/wire"
)

// spillCheckHandler wraps a recorder and additionally verifies every
// delivered Data frame byte-for-byte against the deterministic ground
// truth, so corruption anywhere on the disk round trip is caught at the
// receiver, not just missequencing.
type spillCheckHandler struct {
	*recorder
	t          *testing.T
	payloadLen int
	mu         sync.Mutex
	badOnce    bool
}

func (h *spillCheckHandler) HandleData(from int, d *wire.Data) {
	want := spillPayload(d.Seq, h.payloadLen)
	if string(d.Payload) != string(want) || d.SentUnixNano != int64(d.Seq*1000+7) {
		h.mu.Lock()
		if !h.badOnce {
			h.badOnce = true
			h.t.Errorf("delivered seq %d differs from ground truth", d.Seq)
		}
		h.mu.Unlock()
	}
	h.recorder.HandleData(from, d)
}

// TestSpillEndToEndReconnectDrain is the transport-level FlowSpill story:
// while the peer is unreachable the origin's backlog overflows its memory
// cap onto disk; when the peer comes up, the link streams the disk
// segments back through the ordinary batched drain path and hands off to
// the live in-memory tail with no gap, no duplicate regression, and
// byte-identical payloads. The spill gauges must track the whole cycle.
func TestSpillEndToEndReconnectDrain(t *testing.T) {
	const (
		payloadLen = 512
		total      = 400 // 200 KiB total against a 32 KiB cap
		capBytes   = 32 << 10
	)
	net := emunet.NewMemNetwork(nil)
	defer net.Close()

	log, err := NewSendLogTiered(1, FlowConfig{
		MaxBytes:          capBytes,
		Mode:              FlowSpill,
		SpillDir:          t.TempDir(),
		SpillSegmentBytes: 8 << 10,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	rec1 := newRecorder()
	tr1, err := New(Config{
		Self: 1, N: 2, Network: net, Handler: rec1, Log: log,
		HeartbeatEvery: 20 * time.Millisecond,
		Metrics:        reg,
		TopoTags:       TopoTag{AZ: "az-a", Region: "us"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr1.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr1.Close()

	// Peer 2 is down: the whole backlog is cold. Everything past the cap
	// must migrate to disk without ever stalling the appender for long
	// (the spiller frees memory as fast as the disk accepts it).
	for i := 1; i <= total; i++ {
		seq := uint64(i)
		if _, err := log.Append(spillPayload(seq, payloadLen), int64(seq*1000+7)); err != nil {
			t.Fatal(err)
		}
		if mem := log.MemoryBytes(); mem > capBytes+payloadLen {
			t.Fatalf("memory %d exceeded cap while peer down", mem)
		}
	}
	tr1.NotifyData()
	if log.SpilledBytes() == 0 || log.SpilledSegments() == 0 {
		t.Fatalf("no spill with peer down: spilled=%d segs=%d", log.SpilledBytes(), log.SpilledSegments())
	}
	match := map[string]string{"az": "az-a", "region": "us"}
	if got := famTotal(t, reg, "stabilizer_sendlog_spilled_bytes", match); got != float64(log.SpilledBytes()) {
		t.Fatalf("spilled_bytes gauge = %v, log says %d", got, log.SpilledBytes())
	}
	if got := famTotal(t, reg, "stabilizer_sendlog_spilled_segments", match); got != float64(log.SpilledSegments()) {
		t.Fatalf("spilled_segments gauge = %v, log says %d", got, log.SpilledSegments())
	}
	if got := famTotal(t, reg, "stabilizer_sendlog_spill_degraded", match); got != 0 {
		t.Fatalf("spill_degraded gauge = %v with a healthy disk", got)
	}

	// Peer 2 comes up: the link must drain disk -> memory seamlessly.
	rec2 := &spillCheckHandler{recorder: newRecorder(), t: t, payloadLen: payloadLen}
	tr2, err := New(Config{
		Self: 2, N: 2, Network: net, Handler: rec2, Log: NewSendLog(1),
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()

	waitUntil(t, 20*time.Second, func() bool { return len(rec2.dataSeqs(1)) >= total })
	seqs := rec2.dataSeqs(1)
	for i, s := range seqs[:total] {
		if s != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d: stream not gapless FIFO across the tier boundary", i, s)
		}
	}
	if log.SpillReadbackBytes() == 0 {
		t.Fatal("backlog drained but SpillReadbackBytes is 0 — the disk tier was never read")
	}
	if got := famTotal(t, reg, "stabilizer_sendlog_readback_bytes", match); got != float64(log.SpillReadbackBytes()) {
		t.Fatalf("readback_bytes gauge = %v, log says %d", got, log.SpillReadbackBytes())
	}

	// Reclaim after global receipt empties both tiers, like invariant 3
	// (occupancy returns to zero) extended to the disk.
	log.TruncateThrough(total)
	if log.Bytes() != 0 || log.SpilledBytes() != 0 || log.SpilledSegments() != 0 {
		t.Fatalf("after full reclaim: bytes=%d spilled=%d segs=%d", log.Bytes(), log.SpilledBytes(), log.SpilledSegments())
	}
}
