package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"
)

// chaosSpillPayload is the seeded harness's ground truth: payload bytes and
// length are pure functions of the sequence number, so after any crash —
// even one that re-anchors the log and re-assigns sequence numbers — a
// surviving entry either matches f(seq) exactly or the disk tier corrupted
// it. No copy of the stream is needed.
func chaosSpillPayload(seq uint64) []byte {
	return spillPayload(seq, 48+int(seq%7)*16)
}

// spillChaosConfig is the harness's log shape: a tiny memory cap over tiny
// segments so every burst crosses the spill watermark and every crash lands
// on a multi-segment chain.
func spillChaosConfig(dir string) FlowConfig {
	return FlowConfig{
		MaxBytes:          4 << 10,
		Mode:              FlowSpill,
		SpillDir:          dir,
		SpillSegmentBytes: 1 << 10,
	}
}

// TestSpillCrashScheduleGroundTruth is invariant 9's crash matrix as a
// seeded schedule driven directly against one tiered SendLog: random
// interleavings of append bursts, partial reader drains (so crashes land
// mid-read-back as well as mid-spill), reclamation, disk-write fault
// windows, and crashes — a crash closes the log, then mutilates the newest
// segment (torn tail, whole file lost, or clean) before recovery reopens
// the same directory. After every step the drained stream must stay
// strictly sequential and byte-identical to f(seq); at the end the log must
// drain to empty with zero gaps. Each seed replays deterministically.
func TestSpillCrashScheduleGroundTruth(t *testing.T) {
	seeds := []int64{1, 2, 3}
	ops := 60
	if os.Getenv("STABILIZER_CHAOS_FULL") != "" {
		seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		ops = 300
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runSpillCrashSchedule(t, seed, ops)
		})
	}
}

func runSpillCrashSchedule(t *testing.T, seed int64, ops int) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	cfg := spillChaosConfig(dir)

	log, err := NewSendLogTiered(1, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { log.Close() }()

	cursor := log.Base() // next sequence the simulated peer expects
	faultOn := false
	everSpilled := false
	crashes := 0
	var readback int64

	// verifyNext drains up to m entries from the cursor, checking each
	// against ground truth. Returns on the first not-ready.
	verifyNext := func(m int) {
		for i := 0; i < m; i++ {
			e, ok := log.TryNext(cursor)
			if !ok {
				return
			}
			if e.Seq != cursor {
				t.Fatalf("seed %d: reader at %d got seq %d — gap or duplicate across the tier boundary", seed, cursor, e.Seq)
			}
			want := chaosSpillPayload(e.Seq)
			if string(e.Payload) != string(want) || e.SentUnixNano != int64(e.Seq*1000+7) {
				t.Fatalf("seed %d: seq %d differs from ground truth (%d bytes vs %d)", seed, e.Seq, len(e.Payload), len(want))
			}
			cursor++
		}
	}

	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // append burst
			n := 1 + rng.Intn(40)
			if faultOn {
				// Degraded to FlowBlock semantics: once memory fills, an
				// append can only time out. Keep bursts small and bounded.
				n = 1 + rng.Intn(5)
			}
			for i := 0; i < n; i++ {
				seq := log.NextSeq()
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				got, err := log.AppendCtx(ctx, chaosSpillPayload(seq), int64(seq*1000+7))
				cancel()
				if err != nil {
					if faultOn && errors.Is(err, context.DeadlineExceeded) {
						break // memory full under a disk fault: correct refusal
					}
					t.Fatalf("seed %d: append seq %d: %v", seed, seq, err)
				}
				if got != seq {
					t.Fatalf("seed %d: predicted seq %d but Append assigned %d", seed, seq, got)
				}
			}
			if log.SpilledBytes() > 0 {
				everSpilled = true
			}
		case 4, 5: // partial drain, so crashes land mid-read-back
			verifyNext(1 + rng.Intn(80))
		case 6: // reclaim the delivered prefix
			if cursor > log.Base() {
				log.TruncateThrough(cursor - 1)
			}
		case 7: // toggle the disk-write fault window
			if faultOn {
				log.SetSpillWriteFault(nil)
			} else {
				log.SetSpillWriteFault(errors.New("injected disk fault"))
			}
			faultOn = !faultOn
		case 8, 9: // crash: close, mutilate the newest segment, recover
			readback += log.SpillReadbackBytes()
			log.Close()
			if files := spillSegFiles(t, dir); len(files) > 0 {
				path := files[len(files)-1]
				switch rng.Intn(3) {
				case 0: // torn tail: the crash landed mid-segment-write
					if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
						chop := int64(1 + rng.Intn(24))
						if chop > fi.Size() {
							chop = fi.Size()
						}
						if err := os.Truncate(path, fi.Size()-chop); err != nil {
							t.Fatal(err)
						}
					}
				case 1: // the newest segment never made it to disk
					if err := os.Remove(path); err != nil {
						t.Fatal(err)
					}
				case 2: // clean crash: disk intact, memory tier lost
				}
			}
			log, err = NewSendLogTiered(1, cfg, 2)
			if err != nil {
				t.Fatalf("seed %d: recovery after crash %d: %v", seed, crashes, err)
			}
			// The peer re-syncs from the recovered base. Sequences above
			// the recovered tail will be re-assigned to new payloads, but
			// ground truth is f(seq), so re-assignment is byte-invisible.
			cursor = log.Base()
			faultOn = false
			crashes++
		}
	}

	// Quiesce and drain to empty: the surviving stream must be complete.
	if faultOn {
		log.SetSpillWriteFault(nil)
	}
	verifyNext(int(log.NextSeq() - cursor))
	if cursor != log.NextSeq() {
		t.Fatalf("seed %d: final drain stuck at %d, log next is %d", seed, cursor, log.NextSeq())
	}
	readback += log.SpillReadbackBytes()
	if cursor > log.Base() {
		log.TruncateThrough(cursor - 1)
	}
	if log.Len() != 0 || log.Bytes() != 0 || log.SpilledBytes() != 0 {
		t.Fatalf("seed %d: after full drain+reclaim: len=%d bytes=%d spilled=%d",
			seed, log.Len(), log.Bytes(), log.SpilledBytes())
	}
	if !everSpilled {
		t.Fatalf("seed %d: schedule never spilled — harness did not exercise the disk tier", seed)
	}
	if crashes > 0 && readback == 0 {
		t.Logf("seed %d: note: %d crashes but no disk read-back observed", seed, crashes)
	}
	t.Logf("seed %d: ops=%d crashes=%d readback=%d final_next=%d", seed, ops, crashes, readback, log.NextSeq())
}
