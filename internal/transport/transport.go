package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
	"stabilizer/internal/wire"
)

// Handler receives transport events. Callbacks run on transport goroutines:
// data and app callbacks are invoked in FIFO order per peer; implementations
// must be safe for concurrent calls from different peers.
type Handler interface {
	// HandleData delivers one sequenced data message originated by peer
	// from. Duplicates are filtered by the transport; sequence numbers
	// are strictly increasing per peer. The Data struct is transport-owned
	// scratch valid only for the duration of the call — retain d.Payload
	// (which is freshly allocated per frame) rather than d itself.
	HandleData(from int, d *wire.Data)
	// HandleAck delivers one monotonic stability report. Like Data, the
	// struct is only valid during the call.
	HandleAck(a *wire.Ack)
	// HandleApp delivers an application request/response message.
	HandleApp(from int, a *wire.App)
	// PeerUp fires when a peer is first heard from, or heard again after
	// a failure.
	PeerUp(peer int)
	// PeerDown fires when a peer has been silent past the failure
	// timeout.
	PeerDown(peer int)
}

// Config parameterizes a Transport.
type Config struct {
	// Self is the local node's 1-based index.
	Self int
	// N is the number of WAN nodes.
	N int
	// Network is the fabric to dial and listen through.
	Network emunet.Network
	// Handler receives events. Required.
	Handler Handler
	// Log is the shared send log feeding every outgoing link. Required.
	Log *SendLog
	// HeartbeatEvery is the idle heartbeat period (default 500ms).
	HeartbeatEvery time.Duration
	// PeerTimeout is the silence threshold for failure detection
	// (default 4×HeartbeatEvery).
	PeerTimeout time.Duration
	// Epoch identifies this process incarnation.
	Epoch uint64
	// Metrics receives the transport's instrumentation families
	// (stabilizer_transport_*). Nil uses a private registry so the
	// counters still exist for Stats-style snapshots.
	Metrics *metrics.Registry
	// Batch tunes the data-plane batch writer; zero values pick defaults.
	Batch BatchConfig
	// DialTimeout bounds each connect attempt, handshake included, so a
	// black-holed peer cannot hang a link's run loop (default 2s).
	DialTimeout time.Duration
	// TopoTags optionally labels the node-level sendlog/backpressure
	// families with the local availability zone and region so registries
	// aggregating many nodes can roll them up (empty strings omit no
	// labels — the families always carry az/region, possibly blank).
	TopoTags TopoTag
	// PeerTags optionally maps peer index → that peer's zone, enabling
	// the per-{az,region} rollups of the byte/frame families
	// (stabilizer_transport_zone_*). Missing peers roll up under blank
	// labels.
	PeerTags map[int]TopoTag
	// Trace, when non-nil, is the node's lifecycle flight recorder: the
	// transport records BatchEnqueue/WireSend on the outgoing links and
	// WireRecv on accepted connections for sampled operations, and feeds
	// the stabilizer_stage_seconds batch_queue/wire_send/flight segments.
	// Nil keeps every hot path branch-predictable and allocation-free.
	Trace *optrace.Recorder
}

// TopoTag places a node in the WAN topology: its availability zone and
// region.
type TopoTag struct {
	AZ     string
	Region string
}

// BatchConfig tunes how each outgoing link batches data frames. The batch
// byte budget adapts to the link's observed heartbeat RTT,
// bandwidth-delay-product style: budget = RTT × BandwidthBps/8, clamped to
// [MinBytes, MaxBytes], so slow WAN links drain bigger runs per lock
// acquisition and write while fast LAN links stay latency-friendly.
type BatchConfig struct {
	// MaxFrames caps the data frames drained per batch, bounding how long
	// the control outbox (ACKs, heartbeats) waits behind bulk data
	// (default 256).
	MaxFrames int
	// MinBytes is the batch byte budget before any RTT sample exists and
	// the floor thereafter (default 16 KiB).
	MinBytes int
	// MaxBytes caps the adaptive budget (default 1 MiB).
	MaxBytes int
	// BandwidthBps is the assumed per-link bandwidth in bits per second
	// used in the budget rule (default 100 Mbit/s).
	BandwidthBps float64
	// WritevMinBytes is the smallest batch payload handed to the kernel
	// as one vectored write (writev) on TCP connections, with per-entry
	// frame headers and payloads as separate iovecs so payload bytes are
	// never copied. Smaller batches go through the copying buffered
	// writer, which coalesces consecutive little batches into one wire
	// write. 0 picks the 8 KiB default; negative disables vectored writes
	// entirely. Non-TCP connections (in-memory fabrics, fault-injection
	// wrappers) always use the buffered path.
	WritevMinBytes int
}

func (b BatchConfig) normalized() BatchConfig {
	if b.MaxFrames <= 0 {
		b.MaxFrames = 256
	}
	if b.MinBytes <= 0 {
		b.MinBytes = 16 << 10
	}
	if b.MaxBytes <= 0 {
		b.MaxBytes = 1 << 20
	}
	if b.MaxBytes < b.MinBytes {
		b.MaxBytes = b.MinBytes
	}
	if b.BandwidthBps <= 0 {
		b.BandwidthBps = 100e6
	}
	if b.WritevMinBytes == 0 {
		b.WritevMinBytes = 8 << 10
	}
	return b
}

// counterPair fans one count into the per-peer family and that peer's
// {az,region} rollup family. Both legs are resolved at startup, so a hot
// path pays exactly two atomic adds.
type counterPair struct {
	peer *metrics.Counter
	zone *metrics.Counter
}

func (p *counterPair) Inc() { p.peer.Inc(); p.zone.Inc() }

func (p *counterPair) Add(n int64) { p.peer.Add(n); p.zone.Add(n) }

// peerInstruments are the per-peer metric instances, resolved once at
// startup so hot paths touch only atomics. Byte and frame counters are
// pairs feeding the per-peer family plus the peer's zone rollup.
type peerInstruments struct {
	bytesSent counterPair
	bytesRecv counterPair
	dataSent  counterPair
	ackSent   counterPair
	appSent   counterPair
	hbSent    counterPair
	dataRecv  counterPair
	ackRecv   counterPair
	appRecv   counterPair
	hbRecv    counterPair
	resent    *metrics.Counter
	reconn    *metrics.Counter
	fdTrips   *metrics.Counter
	hbRTT     *metrics.Histogram
	up        *metrics.Gauge
}

// Transport connects the local node to every peer: it owns one outgoing
// link per peer (our data, ACKs and app messages flow there) and accepts
// one incoming link per peer (their traffic toward us).
type Transport struct {
	cfg      Config
	listener net.Listener

	links map[int]*link            // keyed by peer index
	peers map[int]*peerInstruments // keyed by peer index
	// linkList is links as a dense slice: the per-message broadcast paths
	// (NotifyData, QueueAck) walk it instead of paying map iteration on
	// every append. Built once at construction, never mutated.
	linkList []*link

	// recvLast[p] is the highest contiguous data sequence received from
	// peer p. It is written under deliverMu[p] and read lock-free by
	// snapshot getters and the reconnect handshake. Index 0 is unused
	// (peers are 1-based).
	recvLast []atomic.Uint64
	// deliverMu[p] serializes the duplicate filter and the data upcall for
	// peer p, so the Handler's per-peer FIFO contract holds even while a
	// superseded connection from the same peer is still draining alongside
	// its replacement. Per-peer, so peers never contend with each other.
	deliverMu []sync.Mutex

	recvMu   sync.Mutex
	incoming map[int]net.Conn  // current accepted conn per peer
	accepted map[net.Conn]bool // every live accepted conn, incl. pre-handshake

	// Liveness is frame-counter based so the receive hot path stays off
	// the clock: heardTick[p] counts frames heard from peer p (bumped
	// with one atomic add per frame), and the failure detector's ticker
	// translates "the counter moved since my last scan" into an arrival
	// timestamp at tick granularity. liveMu serializes only the rare
	// up/down transitions. Index 0 is unused (peers are 1-based).
	liveMu    sync.Mutex
	heardTick []atomic.Int64
	peerUpA   []atomic.Bool

	stop    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
	started atomic.Bool

	// Stage-latency segments of stabilizer_stage_seconds, resolved once
	// at startup; nil when tracing is disabled.
	stageBatchQueue *metrics.Histogram
	stageWireSend   *metrics.Histogram
	stageFlight     *metrics.Histogram

	// Process-wide totals, independent of the per-peer metric families so
	// snapshot getters stay exact and O(1).
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	dataSent   atomic.Int64
	dataRecv   atomic.Int64
	resent     atomic.Int64
	reconnects atomic.Int64
	fdTrips    atomic.Int64
}

// New creates a transport. Call Start to begin dialing and accepting.
func New(cfg Config) (*Transport, error) {
	if cfg.Handler == nil {
		return nil, errors.New("transport: Config.Handler is required")
	}
	if cfg.Log == nil {
		return nil, errors.New("transport: Config.Log is required")
	}
	if cfg.Network == nil {
		return nil, errors.New("transport: Config.Network is required")
	}
	if cfg.Self < 1 || cfg.Self > cfg.N {
		return nil, fmt.Errorf("transport: self index %d out of range [1,%d]", cfg.Self, cfg.N)
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 4 * cfg.HeartbeatEvery
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	cfg.Batch = cfg.Batch.normalized()
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	t := &Transport{
		cfg:       cfg,
		links:     make(map[int]*link, cfg.N-1),
		peers:     make(map[int]*peerInstruments, cfg.N-1),
		recvLast:  make([]atomic.Uint64, cfg.N+1),
		deliverMu: make([]sync.Mutex, cfg.N+1),
		incoming:  make(map[int]net.Conn, cfg.N-1),
		accepted:  make(map[net.Conn]bool, cfg.N-1),
		heardTick: make([]atomic.Int64, cfg.N+1),
		peerUpA:   make([]atomic.Bool, cfg.N+1),
		stop:      make(chan struct{}),
	}
	m := cfg.Metrics
	bytesSent := m.CounterVec("stabilizer_transport_bytes_sent_total", "Frame bytes written per peer.", "peer")
	bytesRecv := m.CounterVec("stabilizer_transport_bytes_recv_total", "Frame bytes read per peer (post-handshake).", "peer")
	framesSent := m.CounterVec("stabilizer_transport_frames_sent_total", "Frames written per peer and kind.", "peer", "kind")
	framesRecv := m.CounterVec("stabilizer_transport_frames_recv_total", "Frames read per peer and kind.", "peer", "kind")
	resent := m.CounterVec("stabilizer_transport_data_resent_total", "Data frames retransmitted after reconnect, per peer.", "peer")
	reconn := m.CounterVec("stabilizer_transport_reconnects_total", "Successful re-dials after the first connection, per peer.", "peer")
	fdTrips := m.CounterVec("stabilizer_transport_failure_detector_trips_total", "Failure detector suspicions raised per peer.", "peer")
	hbRTT := m.HistogramVec("stabilizer_transport_heartbeat_rtt_seconds", "Heartbeat echo round-trip time per peer.", metrics.LatencyOpts, "peer")
	up := m.GaugeVec("stabilizer_transport_peer_up", "1 while the peer is considered alive.", "peer")

	// Zone rollups of the byte/frame families: the same counts keyed by the
	// destination (or source) peer's {az,region} instead of its index, for
	// dashboards over deployments too large to chart per peer.
	zoneBytesSent := m.CounterVec("stabilizer_transport_zone_bytes_sent_total", "Frame bytes written, rolled up by destination peer zone.", "az", "region")
	zoneBytesRecv := m.CounterVec("stabilizer_transport_zone_bytes_recv_total", "Frame bytes read, rolled up by source peer zone.", "az", "region")
	zoneFramesSent := m.CounterVec("stabilizer_transport_zone_frames_sent_total", "Frames written, rolled up by destination peer zone and kind.", "az", "region", "kind")
	zoneFramesRecv := m.CounterVec("stabilizer_transport_zone_frames_recv_total", "Frames read, rolled up by source peer zone and kind.", "az", "region", "kind")

	// Node-level send-log occupancy and backpressure families, tagged with
	// the local topology so multi-node registries can roll them up by
	// AZ/region. GaugeFuncs read the log directly at exposition time.
	log, az, region := cfg.Log, cfg.TopoTags.AZ, cfg.TopoTags.Region
	m.GaugeFuncVec("stabilizer_transport_sendlog_bytes",
		"Payload bytes buffered in the send log awaiting global reclaim.",
		"az", "region").Set(func() float64 { return float64(log.Bytes()) }, az, region)
	m.GaugeFuncVec("stabilizer_transport_sendlog_entries",
		"Entries buffered in the send log awaiting global reclaim.",
		"az", "region").Set(func() float64 { return float64(log.Len()) }, az, region)
	m.GaugeFuncVec("stabilizer_transport_sendlog_cap_bytes",
		"Configured send-log byte cap (0 = unbounded).",
		"az", "region").Set(func() float64 { return float64(log.Flow().MaxBytes) }, az, region)
	m.GaugeFuncVec("stabilizer_transport_backpressure_waiters",
		"Appends currently blocked on send-log admission control.",
		"az", "region").Set(func() float64 { return float64(log.Waiting()) }, az, region)
	bp := m.CounterVec("stabilizer_transport_backpressure_total",
		"Appends gated by send-log admission control, by outcome.", "outcome")
	log.setBackpressureCounters(bp.With("blocked"), bp.With("shed"))

	// Spill-tier families (zero and inert unless FlowSpill is configured):
	// how much retransmission backlog has been migrated to disk, how much
	// has been streamed back to reconnecting peers, and whether the tier is
	// currently degraded by a disk fault. Same az/region tagging as the
	// sendlog family, for the same rollups.
	m.GaugeFuncVec("stabilizer_sendlog_spilled_bytes",
		"Payload bytes parked in on-disk spill segments awaiting reclaim or read-back.",
		"az", "region").Set(func() float64 { return float64(log.SpilledBytes()) }, az, region)
	m.GaugeFuncVec("stabilizer_sendlog_spilled_segments",
		"Live on-disk spill segment files.",
		"az", "region").Set(func() float64 { return float64(log.SpilledSegments()) }, az, region)
	m.GaugeFuncVec("stabilizer_sendlog_readback_bytes",
		"Cumulative payload bytes served to readers from the spill tier.",
		"az", "region").Set(func() float64 { return float64(log.SpillReadbackBytes()) }, az, region)
	m.GaugeFuncVec("stabilizer_sendlog_spill_degraded",
		"1 while the spill tier cannot write (log degraded to blocking admission).",
		"az", "region").Set(func() float64 {
		if log.SpillDegraded() {
			return 1
		}
		return 0
	}, az, region)
	if cfg.Trace != nil {
		stage := m.HistogramVec(optrace.StageFamily, optrace.StageFamilyHelp, metrics.LatencyOpts, "stage")
		t.stageBatchQueue = stage.With(optrace.SegBatchQueue)
		t.stageWireSend = stage.With(optrace.SegWireSend)
		t.stageFlight = stage.With(optrace.SegFlight)
	}
	for p := 1; p <= cfg.N; p++ {
		if p == cfg.Self {
			continue
		}
		ps := strconv.Itoa(p)
		tag := cfg.PeerTags[p] // zero value → blank zone labels
		az, rg := tag.AZ, tag.Region
		t.peers[p] = &peerInstruments{
			bytesSent: counterPair{bytesSent.With(ps), zoneBytesSent.With(az, rg)},
			bytesRecv: counterPair{bytesRecv.With(ps), zoneBytesRecv.With(az, rg)},
			dataSent:  counterPair{framesSent.With(ps, "data"), zoneFramesSent.With(az, rg, "data")},
			ackSent:   counterPair{framesSent.With(ps, "ack"), zoneFramesSent.With(az, rg, "ack")},
			appSent:   counterPair{framesSent.With(ps, "app"), zoneFramesSent.With(az, rg, "app")},
			hbSent:    counterPair{framesSent.With(ps, "heartbeat"), zoneFramesSent.With(az, rg, "heartbeat")},
			dataRecv:  counterPair{framesRecv.With(ps, "data"), zoneFramesRecv.With(az, rg, "data")},
			ackRecv:   counterPair{framesRecv.With(ps, "ack"), zoneFramesRecv.With(az, rg, "ack")},
			appRecv:   counterPair{framesRecv.With(ps, "app"), zoneFramesRecv.With(az, rg, "app")},
			hbRecv:    counterPair{framesRecv.With(ps, "heartbeat"), zoneFramesRecv.With(az, rg, "heartbeat")},
			resent:    resent.With(ps),
			reconn:    reconn.With(ps),
			fdTrips:   fdTrips.With(ps),
			hbRTT:     hbRTT.With(ps),
			up:        up.With(ps),
		}
		t.links[p] = newLink(t, p)
		t.linkList = append(t.linkList, t.links[p])
	}
	// Feed the send log's spill tier (if configured) the live cursor
	// horizon, so it migrates the truly cold prefix first. No-op for
	// in-memory-only flow modes.
	log.SetSpillHorizon(t.spillHorizon)
	return t, nil
}

// spillHorizon returns the minimum next-to-send sequence across connected
// links — the boundary below which no live peer reads from memory — or 0
// when no link is streaming (everything buffered is cold).
func (t *Transport) spillHorizon() uint64 {
	var min uint64
	for _, l := range t.linkList {
		c := l.sendCursor.Load()
		if c != 0 && (min == 0 || c < min) {
			min = c
		}
	}
	return min
}

// Start opens the listener, the accept loop, the per-peer dial loops, the
// heartbeat ticker and the failure detector.
func (t *Transport) Start() error {
	if t.started.Swap(true) {
		return errors.New("transport: already started")
	}
	l, err := t.cfg.Network.Listen(t.cfg.Self)
	if err != nil {
		return fmt.Errorf("transport: listen: %w", err)
	}
	t.listener = l
	t.wg.Add(1)
	go t.acceptLoop()
	for _, lk := range t.links {
		t.wg.Add(1)
		go lk.run()
	}
	t.wg.Add(2)
	go t.heartbeatLoop()
	go t.failureDetector()
	return nil
}

// Close shuts the transport down and waits for its goroutines.
func (t *Transport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.stop)
	if t.listener != nil {
		_ = t.listener.Close()
	}
	for _, lk := range t.links {
		lk.close()
	}
	t.recvMu.Lock()
	for c := range t.accepted {
		_ = c.Close()
	}
	t.recvMu.Unlock()
	t.wg.Wait()
	return nil
}

// NotifyData wakes every outgoing link after new entries were appended to
// the send log. Wakeups are coalesced per link: during a burst of appends
// only the first notification after a link goes idle broadcasts; the rest
// cost one atomic load each.
func (t *Transport) NotifyData() {
	for _, lk := range t.linkList {
		lk.notifyData()
	}
}

// QueueAck coalesces a stability report onto every outgoing link. Only the
// newest sequence per (origin, by, type) is retained — monotonicity makes
// older reports redundant.
func (t *Transport) QueueAck(a wire.Ack) {
	for _, lk := range t.linkList {
		lk.queueAck(a)
	}
}

// QueueAckTo coalesces a stability report onto a single peer's link.
func (t *Transport) QueueAckTo(peer int, a wire.Ack) {
	if lk, ok := t.links[peer]; ok {
		lk.queueAck(a)
	}
}

// SendApp enqueues an application message toward peer.
func (t *Transport) SendApp(peer int, a *wire.App) error {
	lk, ok := t.links[peer]
	if !ok {
		return fmt.Errorf("transport: no link to peer %d", peer)
	}
	return lk.queueApp(a)
}

// BytesSent reports the total frame bytes written on outgoing links.
func (t *Transport) BytesSent() int64 { return t.bytesSent.Load() }

// BytesRecv reports the total frame bytes read on incoming links.
func (t *Transport) BytesRecv() int64 { return t.bytesRecv.Load() }

// DataSent reports the number of data frames written (retransmissions
// included).
func (t *Transport) DataSent() int64 { return t.dataSent.Load() }

// DataRecv reports the number of data frames read (duplicates included).
func (t *Transport) DataRecv() int64 { return t.dataRecv.Load() }

// Resent reports the number of data frames rewritten after reconnects.
func (t *Transport) Resent() int64 { return t.resent.Load() }

// Reconnects reports successful re-dials after each link's first connect.
func (t *Transport) Reconnects() int64 { return t.reconnects.Load() }

// FailureDetectorTrips reports how many times a live peer was declared
// suspect.
func (t *Transport) FailureDetectorTrips() int64 { return t.fdTrips.Load() }

// RecvLast returns the highest contiguous data sequence received from peer.
func (t *Transport) RecvLast(peer int) uint64 {
	if peer < 1 || peer >= len(t.recvLast) {
		return 0
	}
	return t.recvLast[peer].Load()
}

// RecvLastAll returns the highest contiguous data sequence received from
// every peer that has sent data.
func (t *Transport) RecvLastAll() map[int]uint64 {
	out := make(map[int]uint64)
	for p := 1; p < len(t.recvLast); p++ {
		if s := t.recvLast[p].Load(); s > 0 {
			out[p] = s
		}
	}
	return out
}

// peerIns returns peer's resolved instruments (nil for unknown peers).
func (t *Transport) peerIns(peer int) *peerInstruments { return t.peers[peer] }

// --- accept path ---

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.recvMu.Lock()
		if t.closed.Load() {
			t.recvMu.Unlock()
			_ = conn.Close()
			return
		}
		t.accepted[conn] = true
		t.recvMu.Unlock()
		t.wg.Add(1)
		go t.serveIncoming(conn)
	}
}

// countingReader counts bytes flowing through an incoming connection into
// the transport-wide total and, once the handshake identifies the peer, a
// per-peer counter.
type countingReader struct {
	r     io.Reader
	total *atomic.Int64
	peer  atomic.Pointer[counterPair]
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.total.Add(int64(n))
		if c := cr.peer.Load(); c != nil {
			c.Add(int64(n))
		}
	}
	return n, err
}

func (t *Transport) serveIncoming(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.recvMu.Lock()
		delete(t.accepted, conn)
		t.recvMu.Unlock()
		_ = conn.Close()
	}()
	cr := &countingReader{r: conn, total: &t.bytesRecv}
	r := wire.NewReader(cr)
	msg, err := r.Next()
	if err != nil {
		_ = conn.Close()
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok || int(hello.From) < 1 || int(hello.From) > t.cfg.N || int(hello.From) == t.cfg.Self {
		_ = conn.Close()
		return
	}
	from := int(hello.From)
	ins := t.peerIns(from)
	cr.peer.Store(&ins.bytesRecv)

	t.recvMu.Lock()
	if old := t.incoming[from]; old != nil {
		_ = old.Close()
	}
	t.incoming[from] = conn
	t.recvMu.Unlock()
	last := t.recvLast[from].Load()

	// scratch is the connection's reusable write buffer: the HelloAck here
	// and every heartbeat echo below are framed into it instead of paying
	// wire.WriteFrame's per-call allocation.
	var scratch []byte
	scratch = wire.AppendFrame(scratch, &wire.HelloAck{From: uint16(t.cfg.Self), LastSeq: last})
	if _, err := conn.Write(scratch); err != nil {
		_ = conn.Close()
		return
	}
	t.heard(from)

	for {
		msg, err := r.Next()
		if err != nil {
			t.recvMu.Lock()
			if t.incoming[from] == conn {
				delete(t.incoming, from)
			}
			t.recvMu.Unlock()
			_ = conn.Close()
			return
		}
		t.heard(from)
		switch m := msg.(type) {
		case *wire.Data:
			t.dataRecv.Add(1)
			ins.dataRecv.Inc()
			// Record the wire arrival before the duplicate filter: a
			// resent frame really did cross the wire again, and the trace
			// should show it.
			if rec := t.cfg.Trace; rec != nil && rec.Sampled(from, m.Seq) {
				now := time.Now().UnixNano()
				rec.Record(optrace.StageWireRecv, from, m.Seq, from, 0, now)
				t.stageFlight.Observe(now - m.SentUnixNano)
			}
			t.deliverData(from, m)
		case *wire.Ack:
			ins.ackRecv.Inc()
			t.cfg.Handler.HandleAck(m)
		case *wire.App:
			ins.appRecv.Inc()
			t.cfg.Handler.HandleApp(from, m)
		case *wire.Heartbeat:
			// Echo the heartbeat so the dialer can measure round-trip
			// time. Prefer piggybacking the echo on our own outgoing link
			// to the sender while it is draining data — that way the echo
			// rides inside a batch write instead of stealing a wakeup.
			// When that link is idle (or absent), fall back to a direct
			// write on this connection; this goroutine is the
			// connection's only writer after the HelloAck, so the write
			// (and scratch reuse) is race-free.
			ins.hbRecv.Inc()
			if lk := t.links[from]; lk != nil && lk.queueEcho(m.Clock) {
				break
			}
			scratch = wire.AppendFrame(scratch[:0], m)
			if _, err := conn.Write(scratch); err != nil {
				_ = conn.Close()
			}
		case *wire.HeartbeatEcho:
			// Our heartbeat coming back piggybacked on the peer's data
			// stream; route it to the outgoing link's RTT estimator.
			ins.hbRecv.Inc()
			if lk := t.links[from]; lk != nil {
				lk.observeEcho(m.Clock)
			}
		case *wire.Hello, *wire.HelloAck:
			// Unexpected mid-stream; ignore.
		}
	}
}

// deliverData filters duplicates caused by resend-after-reconnect and hands
// fresh frames to the Handler, all under the peer's delivery mutex. The
// mutex is what makes the Handler's per-peer FIFO promise real: during a
// reconnect a superseded connection from the same peer can still be
// draining frames alongside its replacement, and without serialization the
// two goroutines could both pass the filter (for different sequences) and
// race their upcalls out of order. Normal operation has one connection per
// peer, so the lock is uncontended.
func (t *Transport) deliverData(from int, d *wire.Data) {
	mu := &t.deliverMu[from]
	mu.Lock()
	defer mu.Unlock()
	if d.Seq <= t.recvLast[from].Load() {
		return
	}
	t.recvLast[from].Store(d.Seq)
	t.cfg.Handler.HandleData(from, d)
}

// --- liveness ---

// heard notes one frame from peer. The steady-state cost is one atomic add
// plus one atomic load — no clock read, no lock, no map write — because the
// failure detector derives arrival times from counter movement on its own
// ticker. Only the up transition (first frame after down) takes liveMu.
func (t *Transport) heard(peer int) {
	t.heardTick[peer].Add(1)
	if t.peerUpA[peer].Load() {
		return
	}
	t.liveMu.Lock()
	wasUp := t.peerUpA[peer].Swap(true)
	t.liveMu.Unlock()
	if !wasUp {
		if ins := t.peerIns(peer); ins != nil {
			ins.up.Set(1)
		}
		t.cfg.Handler.PeerUp(peer)
	}
}

func (t *Transport) failureDetector() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.PeerTimeout / 2)
	defer tick.Stop()
	// seen/lastMove are the detector's private view: the heard counter's
	// value at the last scan and the scan time at which it last advanced.
	// Detection latency is PeerTimeout plus at most one tick — the slop the
	// half-interval ticker always had.
	seen := make([]int64, len(t.heardTick))
	lastMove := make([]time.Time, len(t.heardTick))
	for {
		select {
		case <-t.stop:
			return
		case now := <-tick.C:
			var downs []int
			t.liveMu.Lock()
			for peer := range t.links {
				if cur := t.heardTick[peer].Load(); cur != seen[peer] {
					seen[peer] = cur
					lastMove[peer] = now
					continue
				}
				if t.peerUpA[peer].Load() && now.Sub(lastMove[peer]) > t.cfg.PeerTimeout {
					t.peerUpA[peer].Store(false)
					downs = append(downs, peer)
				}
			}
			t.liveMu.Unlock()
			for _, p := range downs {
				t.fdTrips.Add(1)
				if ins := t.peerIns(p); ins != nil {
					ins.fdTrips.Inc()
					ins.up.Set(0)
				}
				t.cfg.Handler.PeerDown(p)
			}
		}
	}
}

func (t *Transport) heartbeatLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.HeartbeatEvery)
	defer tick.Stop()
	var clock uint64
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			clock++
			for _, lk := range t.links {
				lk.queueHeartbeat(clock)
			}
		}
	}
}
