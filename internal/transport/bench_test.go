package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/optrace"
	"stabilizer/internal/wire"
)

// countHandler counts delivered data frames and ignores everything else.
type countHandler struct {
	n atomic.Int64
}

func (h *countHandler) HandleData(from int, d *wire.Data) { h.n.Add(1) }
func (h *countHandler) HandleAck(a *wire.Ack)             {}
func (h *countHandler) HandleApp(from int, a *wire.App)   {}
func (h *countHandler) PeerUp(peer int)                   {}
func (h *countHandler) PeerDown(peer int)                 {}

// BenchmarkSendLogAppendDrain measures the per-entry append + cursor-walk
// cost of the shared send log, including periodic reclaim.
func BenchmarkSendLogAppendDrain(b *testing.B) {
	l := NewSendLog(1)
	payload := make([]byte, 64)
	cursor := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload, 0); err != nil {
			b.Fatal(err)
		}
		e, ok := l.TryNext(cursor)
		if !ok {
			b.Fatal("entry not ready")
		}
		cursor = e.Seq + 1
		if i%4096 == 4095 {
			l.TruncateThrough(e.Seq)
		}
	}
}

// BenchmarkSendLogAppendDrainBatch is BenchmarkSendLogAppendDrain with the
// batched drain path: one lock acquisition per run of entries instead of
// one per entry.
func BenchmarkSendLogAppendDrainBatch(b *testing.B) {
	l := NewSendLog(1)
	payload := make([]byte, 64)
	cursor := uint64(1)
	var batch []LogEntry
	const run = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += run {
		n := run
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			if _, err := l.Append(payload, 0); err != nil {
				b.Fatal(err)
			}
		}
		batch = l.TryNextBatch(cursor, batch[:0], n, 1<<20)
		if len(batch) != n {
			b.Fatalf("drained %d of %d", len(batch), n)
		}
		cursor = batch[len(batch)-1].Seq + 1
		l.TruncateThrough(cursor - 1)
	}
}

// benchmarkThroughput streams b.N messages from node 1 to node 2 over the
// given matrix and reports the end-to-end delivery rate. trace configures
// the flight recorder on both ends (zero value = tracing off, the
// production default and the BENCH_transport.json baseline).
func benchmarkThroughput(b *testing.B, matrix *emunet.Matrix, payloadSize int, trace optrace.Config) {
	b.Helper()
	benchmarkThroughputNet(b, emunet.NewMemNetwork(matrix), payloadSize, trace)
}

// benchmarkThroughputNet is benchmarkThroughput over an explicit fabric, so
// the TCP variant can exercise the kernel writev path (vectored writes only
// engage on raw *net.TCPConn).
func benchmarkThroughputNet(b *testing.B, net emunet.Network, payloadSize int, trace optrace.Config) {
	b.Helper()
	benchmarkThroughputLog(b, net, NewSendLog(1), payloadSize, trace)
}

// benchmarkThroughputLog is the general form: the caller supplies the
// sender's send log, so the spill benchmarks can measure a tiered log on
// the identical harness the recorded baselines used.
func benchmarkThroughputLog(b *testing.B, net emunet.Network, sendLog *SendLog, payloadSize int, trace optrace.Config) {
	b.Helper()
	defer net.Close()
	rx := &countHandler{}
	tr1, err := New(Config{
		Self: 1, N: 2, Network: net, Handler: &countHandler{}, Log: sendLog,
		HeartbeatEvery: 20 * time.Millisecond,
		Trace:          optrace.New(1, trace),
	})
	if err != nil {
		b.Fatal(err)
	}
	tr2, err := New(Config{
		Self: 2, N: 2, Network: net, Handler: rx, Log: NewSendLog(1),
		HeartbeatEvery: 20 * time.Millisecond,
		Trace:          optrace.New(2, trace),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := tr1.Start(); err != nil {
		b.Fatal(err)
	}
	if err := tr2.Start(); err != nil {
		b.Fatal(err)
	}
	defer tr1.Close()
	defer tr2.Close()

	payload := make([]byte, payloadSize)
	const window = 8192 // max in-flight messages, bounds log growth
	b.SetBytes(int64(payloadSize))
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		recvd := int(rx.n.Load())
		if sent-recvd >= window {
			sendLog.TruncateThrough(uint64(recvd))
			time.Sleep(50 * time.Microsecond)
			continue
		}
		if _, err := sendLog.Append(payload, 0); err != nil {
			b.Fatal(err)
		}
		tr1.NotifyData()
		sent++
	}
	for int(rx.n.Load()) < b.N {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "msgs/s")
	}
}

// BenchmarkStreamThroughputLocal measures delivery rate over an unshaped
// in-memory fabric: the pure software overhead of the send/receive path.
func BenchmarkStreamThroughputLocal(b *testing.B) {
	benchmarkThroughput(b, nil, 256, optrace.Config{})
}

// BenchmarkStreamThroughputLocalTraceSampled is the Local benchmark with
// the flight recorder on at the production default sampling rate: the
// overhead an always-on deployment actually pays.
func BenchmarkStreamThroughputLocalTraceSampled(b *testing.B) {
	benchmarkThroughput(b, nil, 256, optrace.Config{SampleEvery: 64})
}

// BenchmarkStreamThroughputLocalTraceAlways is the Local benchmark tracing
// every message — the worst case, bounding what a 1-in-1 debug session
// costs on the hot path.
func BenchmarkStreamThroughputLocalTraceAlways(b *testing.B) {
	benchmarkThroughput(b, nil, 256, optrace.Config{SampleEvery: 1})
}

// BenchmarkStreamThroughputTCP measures delivery rate over unshaped
// loopback TCP: the only fabric whose connections reach the link as raw
// *net.TCPConn, so this is the benchmark that exercises the vectored
// (writev) batch path end to end.
func BenchmarkStreamThroughputTCP(b *testing.B) {
	benchmarkThroughputNet(b, emunet.NewTCPNetwork(nil), 256, optrace.Config{})
}

// BenchmarkStreamThroughputEmunet measures delivery rate over an
// emunet-shaped WAN link (5 ms one-way, 2 Gbit/s), where batching and
// pipelining decide how close the stream gets to saturating the link.
func BenchmarkStreamThroughputEmunet(b *testing.B) {
	m := emunet.NewMatrix()
	m.Default = emunet.Link{OneWayLatency: 5 * time.Millisecond, BandwidthBps: emunet.Mbps(2000)}
	benchmarkThroughput(b, m, 256, optrace.Config{})
}

// TestTracingDisabledDrainZeroAlloc pins the tentpole's zero-cost claim:
// with Config.Trace nil, the batched drain path (SendLog.TryNextBatch, the
// same call link.stream makes per wakeup) allocates nothing per entry
// beyond the baseline it always had.
func TestTracingDisabledDrainZeroAlloc(t *testing.T) {
	l := NewSendLog(1)
	payload := make([]byte, 64)
	var batch []LogEntry
	const run = 64
	batch = make([]LogEntry, 0, run)
	cursor := uint64(1)
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < run; j++ {
			if _, err := l.Append(payload, 0); err != nil {
				t.Fatal(err)
			}
		}
		batch = l.TryNextBatch(cursor, batch[:0], run, 1<<20)
		if len(batch) != run {
			t.Fatalf("drained %d of %d", len(batch), run)
		}
		cursor = batch[len(batch)-1].Seq + 1
		l.TruncateThrough(cursor - 1)
	})
	// Append copies the payload (one alloc per entry); the drain itself
	// must add zero. Anything above run allocs means the untraced drain
	// path regressed.
	if allocs > run {
		t.Fatalf("drain with tracing disabled: %.1f allocs per %d-entry batch, want <= %d (append-only)", allocs, run, run)
	}

	// Zero clock calls: the stream loop's stage timestamps (batch_enqueue,
	// wire_send) must be gated on the sampler, so an untraced end-to-end
	// run reads the clock zero times on the drain path. nowNano is swapped
	// for a counting shim; tests in this package run sequentially and
	// streamMessages joins every transport goroutine before returning, so
	// the swap cannot race a drain.
	var clockCalls atomic.Int64
	origNow := nowNano
	nowNano = func() int64 { clockCalls.Add(1); return origNow() }
	defer func() { nowNano = origNow }()

	streamMessages(t, optrace.Config{}, 512)
	if n := clockCalls.Load(); n != 0 {
		t.Fatalf("tracing-off stream made %d data-path clock calls, want 0", n)
	}
	// Positive control: with every op sampled the same path must read the
	// clock, proving the shim actually intercepts the drain loop.
	clockCalls.Store(0)
	streamMessages(t, optrace.Config{SampleEvery: 1}, 512)
	if clockCalls.Load() == 0 {
		t.Fatal("fully sampled stream made no data-path clock calls — the counting shim is not wired into the drain loop")
	}
}

// streamMessages pushes msgs end-to-end through a two-node transport pair on
// an unshaped in-memory fabric and waits for delivery, then closes both
// transports (joining every link goroutine).
func streamMessages(t *testing.T, trace optrace.Config, msgs int) {
	t.Helper()
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	sendLog := NewSendLog(1)
	rx := &countHandler{}
	tr1, err := New(Config{
		Self: 1, N: 2, Network: net, Handler: &countHandler{}, Log: sendLog,
		HeartbeatEvery: 20 * time.Millisecond,
		Trace:          optrace.New(1, trace),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := New(Config{
		Self: 2, N: 2, Network: net, Handler: rx, Log: NewSendLog(1),
		HeartbeatEvery: 20 * time.Millisecond,
		Trace:          optrace.New(2, trace),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	defer tr1.Close()

	payload := make([]byte, 64)
	for i := 0; i < msgs; i++ {
		if _, err := sendLog.Append(payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	tr1.NotifyData()
	deadline := time.Now().Add(10 * time.Second)
	for int(rx.n.Load()) < msgs {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d messages", rx.n.Load(), msgs)
		}
		time.Sleep(100 * time.Microsecond)
	}
}
