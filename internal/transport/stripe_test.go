package transport

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestStripedAppendDrainRace hammers the unbounded striped append fast path:
// N producers append concurrently while a drainer walks the log with
// TryNextBatch and truncates behind itself. Asserts gapless sequence
// assignment (every sequence in [1, total] assigned exactly once) and
// byte-exact occupancy (Bytes and Len return to zero once everything is
// reclaimed). Run under -race this also proves the stripe/merge locking.
func TestStripedAppendDrainRace(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
		total     = producers * perProd
	)
	l := NewSendLogOpts(1, FlowConfig{}, 4)
	if l.Stripes() != 4 {
		t.Fatalf("Stripes() = %d, want 4", l.Stripes())
	}

	seqs := make([][]uint64, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 1))
			mine := make([]uint64, 0, perProd)
			for i := 0; i < perProd; i++ {
				payload := make([]byte, 1+rng.Intn(64))
				seq, err := l.Append(payload, int64(i))
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				mine = append(mine, seq)
			}
			seqs[p] = mine
		}(p)
	}

	// Drainer: batch-read everything that becomes contiguous, truncating as
	// it goes so the log stays small while producers are still appending.
	drained := 0
	cursor := uint64(1)
	var batch []LogEntry
	done := make(chan struct{})
	go func() {
		defer close(done)
		for drained < total {
			batch = l.TryNextBatch(cursor, batch[:0], 64, 1<<20)
			if len(batch) == 0 {
				time.Sleep(20 * time.Microsecond)
				continue
			}
			for i, e := range batch {
				if e.Seq != cursor+uint64(i) {
					t.Errorf("gap in drained batch: entry %d has seq %d, want %d", i, e.Seq, cursor+uint64(i))
					return
				}
			}
			cursor = batch[len(batch)-1].Seq + 1
			drained += len(batch)
			l.TruncateThrough(cursor - 1)
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("drainer stuck: drained %d of %d (cursor %d, head %d)", drained, total, cursor, l.Head())
	}
	if t.Failed() {
		return
	}

	// Gapless assignment: the union of per-producer sequences is exactly
	// [1, total], no duplicates, no holes.
	var all []uint64
	for _, s := range seqs {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) != total {
		t.Fatalf("assigned %d sequences, want %d", len(all), total)
	}
	for i, s := range all {
		if s != uint64(i+1) {
			t.Fatalf("sequence assignment not gapless: position %d holds %d", i, s)
		}
	}

	// Byte-exact occupancy: everything was truncated, so nothing is buffered.
	if got := l.Bytes(); got != 0 {
		t.Fatalf("Bytes() = %d after draining and truncating everything, want 0", got)
	}
	if got := l.Len(); got != 0 {
		t.Fatalf("Len() = %d after draining and truncating everything, want 0", got)
	}
	if got := l.Head(); got != total {
		t.Fatalf("Head() = %d, want %d", got, total)
	}
}

// TestStripedFlowBlockedAppendRace is the admission-controlled variant:
// flow-blocked AppendCtx calls from many producers race a truncating
// drainer. The byte cap must stay global across stripes — occupancy never
// exceeds cap plus one payload — and every append must eventually land with
// a gapless sequence.
func TestStripedFlowBlockedAppendRace(t *testing.T) {
	const (
		producers  = 8
		perProd    = 500
		total      = producers * perProd
		maxPayload = 64
		capBytes   = 4 << 10
	)
	l := NewSendLogOpts(1, FlowConfig{MaxBytes: capBytes, Mode: FlowBlock}, 4)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	seqs := make([][]uint64, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 100))
			mine := make([]uint64, 0, perProd)
			for i := 0; i < perProd; i++ {
				payload := make([]byte, 1+rng.Intn(maxPayload))
				seq, err := l.AppendCtx(ctx, payload, int64(i))
				if err != nil {
					t.Errorf("producer %d append %d: %v", p, i, err)
					return
				}
				mine = append(mine, seq)
			}
			seqs[p] = mine
		}(p)
	}

	drained := 0
	cursor := uint64(1)
	var batch []LogEntry
	done := make(chan struct{})
	go func() {
		defer close(done)
		for drained < total {
			// Admission is checked under the central mutex before the entry
			// is staged, so occupancy is bounded by cap plus one in-flight
			// payload no matter how many stripes producers spread across.
			if got := l.Bytes(); got > capBytes+maxPayload {
				t.Errorf("occupancy %d exceeds cap %d + one payload %d", got, capBytes, maxPayload)
				return
			}
			batch = l.TryNextBatch(cursor, batch[:0], 64, 1<<20)
			if len(batch) == 0 {
				time.Sleep(20 * time.Microsecond)
				continue
			}
			cursor = batch[len(batch)-1].Seq + 1
			drained += len(batch)
			l.TruncateThrough(cursor - 1)
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("drainer stuck: drained %d of %d (cursor %d, head %d)", drained, total, cursor, l.Head())
	}
	if t.Failed() {
		return
	}

	var all []uint64
	for _, s := range seqs {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) != total {
		t.Fatalf("assigned %d sequences, want %d", len(all), total)
	}
	for i, s := range all {
		if s != uint64(i+1) {
			t.Fatalf("sequence assignment not gapless: position %d holds %d", i, s)
		}
	}
	if got := l.Bytes(); got != 0 {
		t.Fatalf("Bytes() = %d after full reclaim, want 0", got)
	}
	if got := l.BlockedAppends(); got == 0 {
		t.Log("note: no append ever blocked; cap may be too generous for this machine")
	}
}

// TestStripedBlockingNextNoLostWakeup drives the blocking reader path against
// striped fast-path appends: a reader consumes every sequence via Next while
// producers append in bursts. A lost wakeup would hang the reader; the test
// deadline catches it.
func TestStripedBlockingNextNoLostWakeup(t *testing.T) {
	const total = 20000
	l := NewSendLogOpts(1, FlowConfig{}, 4)
	payload := []byte("x")

	go func() {
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < total/4; i++ {
					if _, err := l.Append(payload, 0); err != nil {
						t.Errorf("append: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := uint64(1); seq <= total; seq++ {
			e, err := l.Next(seq)
			if err != nil {
				t.Errorf("Next(%d): %v", seq, err)
				return
			}
			if e.Seq != seq {
				t.Errorf("Next(%d) returned seq %d", seq, e.Seq)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("reader hung — lost wakeup in striped Next path")
	}
}

// TestTryNextBatchOversizeFirstFrame pins the first-frame rule on the striped
// drainer: a single entry larger than the whole byte budget is still returned
// when it is the first ready entry, and entries after it wait for the next
// batch. Without the rule an oversize payload would wedge the link forever.
func TestTryNextBatchOversizeFirstFrame(t *testing.T) {
	l := NewSendLogOpts(1, FlowConfig{}, 4)
	big := make([]byte, 4096)
	small := []byte("small")
	for _, p := range [][]byte{small, big, small} {
		if _, err := l.Append(p, 0); err != nil {
			t.Fatal(err)
		}
	}

	const budget = 1024
	// First batch: the small entry fits, the big one must NOT squeeze in
	// behind it (it only rides first).
	batch := l.TryNextBatch(1, nil, 16, budget)
	if len(batch) != 1 || batch[0].Seq != 1 {
		t.Fatalf("batch 1: got %d entries (first seq %v), want exactly the small entry", len(batch), batch)
	}
	// Second batch starts at the oversize entry: it exceeds the budget but
	// must be returned alone anyway.
	batch = l.TryNextBatch(2, nil, 16, budget)
	if len(batch) != 1 {
		t.Fatalf("batch 2: got %d entries, want the oversize entry alone", len(batch))
	}
	if batch[0].Seq != 2 || len(batch[0].Payload) != len(big) {
		t.Fatalf("batch 2: got seq %d payload %d bytes, want seq 2 with %d bytes", batch[0].Seq, len(batch[0].Payload), len(big))
	}
	// Third batch resumes normally after the oversize entry.
	batch = l.TryNextBatch(3, nil, 16, budget)
	if len(batch) != 1 || batch[0].Seq != 3 {
		t.Fatalf("batch 3: got %v, want the trailing small entry", batch)
	}
}

// TestTryNextBatchOversizeFlowAccounting checks the oversize edge against
// admission control: a payload bigger than the byte cap is admitted when the
// log has space (cap plus one message, never wedged), counted exactly, and
// reclaiming it returns occupancy to zero and unblocks a waiting appender.
func TestTryNextBatchOversizeFlowAccounting(t *testing.T) {
	const capBytes = 1024
	l := NewSendLogOpts(1, FlowConfig{MaxBytes: capBytes, Mode: FlowBlock}, 4)

	big := make([]byte, 4*capBytes) // larger than the whole cap
	if _, err := l.Append(big, 0); err != nil {
		t.Fatalf("oversize append into empty log: %v", err)
	}
	if got := l.Bytes(); got != int64(len(big)) {
		t.Fatalf("Bytes() = %d after oversize append, want %d", got, len(big))
	}

	// The log is now over its cap: the next append must block.
	blocked := make(chan error, 1)
	go func() {
		_, err := l.Append([]byte("next"), 0)
		blocked <- err
	}()
	select {
	case err := <-blocked:
		t.Fatalf("append after oversize returned early (err=%v), want it blocked at the cap", err)
	case <-time.After(50 * time.Millisecond):
	}

	// The striped drainer must hand the oversize entry out despite a tiny
	// byte budget (first-frame rule), or the blocked appender above would
	// never be released.
	batch := l.TryNextBatch(1, nil, 16, 64)
	if len(batch) != 1 || batch[0].Seq != 1 || len(batch[0].Payload) != len(big) {
		t.Fatalf("oversize entry not drained: got %d entries", len(batch))
	}
	l.TruncateThrough(1)

	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("unblocked append failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("appender still blocked after the oversize entry was reclaimed")
	}
	// Occupancy must be byte-exact: just the small trailing payload.
	if got := l.Bytes(); got != int64(len("next")) {
		t.Fatalf("Bytes() = %d after reclaiming the oversize entry, want %d", got, len("next"))
	}
}
