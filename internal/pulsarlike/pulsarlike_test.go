package pulsarlike

import (
	"sync"
	"testing"
	"time"

	"stabilizer/internal/emunet"
)

func startMesh(t *testing.T, n int, matrix *emunet.Matrix, cfg func(*Config)) []*Broker {
	t.Helper()
	network := emunet.NewMemNetwork(matrix)
	brokers := make([]*Broker, n)
	for i := 1; i <= n; i++ {
		c := Config{Self: i, N: n, Network: network}
		if cfg != nil {
			cfg(&c)
		}
		b, err := New(c)
		if err != nil {
			t.Fatalf("new broker %d: %v", i, err)
		}
		if err := b.Start(); err != nil {
			t.Fatalf("start broker %d: %v", i, err)
		}
		brokers[i-1] = b
	}
	t.Cleanup(func() {
		for _, b := range brokers {
			_ = b.Close()
		}
		_ = network.Close()
	})
	return brokers
}

func TestPublishDeliversInOrder(t *testing.T) {
	brokers := startMesh(t, 3, nil, nil)
	var mu sync.Mutex
	got := make(map[int][]uint64)
	for i := 2; i <= 3; i++ {
		idx := i
		brokers[i-1].Subscribe(func(m Message) {
			mu.Lock()
			got[idx] = append(got[idx], m.Seq)
			mu.Unlock()
		})
	}
	const count = 100
	for i := 0; i < count; i++ {
		if _, err := brokers[0].Publish([]byte{byte(i)}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(got[2]) == count && len(got[3]) == count
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for idx := 2; idx <= 3; idx++ {
		if len(got[idx]) != count {
			t.Fatalf("broker %d got %d/%d", idx, len(got[idx]), count)
		}
		for i, s := range got[idx] {
			if s != uint64(i+1) {
				t.Fatalf("broker %d out of order at %d: %d", idx, i, s)
			}
		}
	}
}

func TestAckLatencyCallback(t *testing.T) {
	matrix := emunet.NewMatrix()
	matrix.SetSymmetric(1, 2, emunet.Link{OneWayLatency: 20 * time.Millisecond})
	brokers := startMesh(t, 2, matrix, nil)
	brokers[1].Subscribe(func(Message) {})

	acks := make(chan time.Duration, 1)
	brokers[0].OnAck(func(by int, seq uint64, lat time.Duration) {
		if by == 2 && seq == 1 {
			select {
			case acks <- lat:
			default:
			}
		}
	})
	if _, err := brokers[0].Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case lat := <-acks:
		if lat < 40*time.Millisecond {
			t.Fatalf("ack RTT %v below injected 40ms", lat)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ack never arrived")
	}
}

func TestRecvStats(t *testing.T) {
	brokers := startMesh(t, 2, nil, nil)
	brokers[1].Subscribe(func(Message) {})
	const count = 50
	payload := make([]byte, 1024)
	for i := 0; i < count; i++ {
		if _, err := brokers[0].Publish(payload); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if brokers[1].RecvStatsFor(1).Messages == count {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := brokers[1].RecvStatsFor(1)
	if st.Messages != count || st.Bytes != count*1024 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Throughput() <= 0 {
		t.Fatalf("throughput = %v", st.Throughput())
	}
	if empty := brokers[1].RecvStatsFor(9); empty.Messages != 0 {
		t.Fatalf("stats for unknown origin = %+v", empty)
	}
}

func TestGCPausesAddLatency(t *testing.T) {
	// Aggressive GC model: pause after every ~4KB for 30ms. Average
	// delivery latency must be visibly above the no-GC baseline.
	run := func(gcEvery int64) time.Duration {
		network := emunet.NewMemNetwork(nil)
		defer network.Close()
		var brokers []*Broker
		for i := 1; i <= 2; i++ {
			b, err := New(Config{
				Self: i, N: 2, Network: network,
				GCEveryBytes: gcEvery, GCPause: 30 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Start(); err != nil {
				t.Fatal(err)
			}
			brokers = append(brokers, b)
		}
		defer func() {
			for _, b := range brokers {
				_ = b.Close()
			}
		}()
		var mu sync.Mutex
		var total time.Duration
		var n int
		done := make(chan struct{})
		brokers[1].Subscribe(func(m Message) {
			mu.Lock()
			total += m.ReceivedAt.Sub(m.SentAt)
			n++
			if n == 50 {
				close(done)
			}
			mu.Unlock()
		})
		payload := make([]byte, 1024)
		for i := 0; i < 50; i++ {
			if _, err := brokers[0].Publish(payload); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatal("messages not delivered")
		}
		mu.Lock()
		defer mu.Unlock()
		return total / time.Duration(n)
	}
	noGC := run(-1)
	withGC := run(4 << 10)
	if withGC < noGC+2*time.Millisecond {
		t.Fatalf("GC model added no latency: %v vs %v", withGC, noGC)
	}
}

func TestConfigValidation(t *testing.T) {
	network := emunet.NewMemNetwork(nil)
	defer network.Close()
	if _, err := New(Config{Self: 0, N: 2, Network: network}); err == nil {
		t.Fatal("self 0 accepted")
	}
	if _, err := New(Config{Self: 1, N: 2}); err == nil {
		t.Fatal("nil network accepted")
	}
}
