// Package pulsarlike is the reproduction's stand-in for Apache Pulsar's
// non-persistent geo-replication (§VI-C): an independent broker mesh that
// forwards published messages to remote brokers through per-link bounded
// store-and-forward queues. Two Pulsar behaviours relevant to the paper's
// Fig. 7 comparison are modeled:
//
//   - Buffering on slow links. The paper had to patch Pulsar to buffer
//     (instead of silently dropping) messages when a WAN link is slow;
//     that patched behaviour is this broker's default.
//   - JVM garbage-collection pauses. Pulsar is a Java system; the paper
//     attributes its rising LAN latency at higher publish rates to GC.
//     The broker injects stop-the-world pauses after a configurable
//     volume of allocations, so pause frequency grows with message rate.
//
// The wire protocol reuses package wire's framing; the transport is
// deliberately simpler than Stabilizer's (blocking queues, no control/data
// separation) — that contrast is the point of the experiment.
package pulsarlike

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/wire"
)

// Message is one delivered message at a subscriber.
type Message struct {
	Origin     int
	Seq        uint64
	Payload    []byte
	SentAt     time.Time
	ReceivedAt time.Time
}

// Config parameterizes a Broker.
type Config struct {
	// Self and N identify the broker in an N-site mesh.
	Self, N int
	// Network is the (emulated) WAN fabric.
	Network emunet.Network
	// QueueCap bounds each per-link queue in messages (default 65536,
	// comfortably above the paper's 10,000-message runs).
	QueueCap int
	// GCEveryBytes triggers a stop-the-world pause after this many bytes
	// of message allocations (default 8 MB). Zero disables GC modeling.
	GCEveryBytes int64
	// GCPause is the stop-the-world duration (default 12ms).
	GCPause time.Duration
}

// Broker is one site's pub/sub broker.
type Broker struct {
	cfg      Config
	listener net.Listener

	seq atomic.Uint64

	mu     sync.Mutex
	subs   []func(Message)
	ackCb  func(by int, seq uint64, latency time.Duration)
	sent   map[uint64]time.Time
	queues map[int]*sendQueue

	gcMu    sync.RWMutex // writers = GC pause; readers = all work
	gcBytes atomic.Int64

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	recvMu    sync.Mutex
	recvStats map[int]*RecvStats
}

// RecvStats aggregates per-origin delivery statistics (Fig. 7 throughput).
type RecvStats struct {
	Messages int
	Bytes    int64
	First    time.Time
	Last     time.Time
}

// Throughput returns the average delivery rate in bits per second.
func (s *RecvStats) Throughput() float64 {
	d := s.Last.Sub(s.First).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(s.Bytes) * 8 / d
}

// New creates a broker; call Start to join the mesh.
func New(cfg Config) (*Broker, error) {
	if cfg.Network == nil {
		return nil, errors.New("pulsarlike: Config.Network is required")
	}
	if cfg.Self < 1 || cfg.Self > cfg.N {
		return nil, fmt.Errorf("pulsarlike: self %d out of range [1,%d]", cfg.Self, cfg.N)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 65536
	}
	if cfg.GCEveryBytes == 0 {
		cfg.GCEveryBytes = 8 << 20
	}
	if cfg.GCPause == 0 {
		cfg.GCPause = 12 * time.Millisecond
	}
	return &Broker{
		cfg:       cfg,
		sent:      make(map[uint64]time.Time),
		queues:    make(map[int]*sendQueue),
		recvStats: make(map[int]*RecvStats),
		stop:      make(chan struct{}),
	}, nil
}

// Start listens and connects to every peer broker.
func (b *Broker) Start() error {
	l, err := b.cfg.Network.Listen(b.cfg.Self)
	if err != nil {
		return fmt.Errorf("pulsarlike: listen: %w", err)
	}
	b.listener = l
	b.wg.Add(1)
	go b.acceptLoop()
	for p := 1; p <= b.cfg.N; p++ {
		if p == b.cfg.Self {
			continue
		}
		q := newSendQueue(b.cfg.QueueCap)
		b.mu.Lock()
		b.queues[p] = q
		b.mu.Unlock()
		b.wg.Add(1)
		go b.forward(p, q)
	}
	return nil
}

// Close shuts the broker down.
func (b *Broker) Close() error {
	if b.closed.Swap(true) {
		return nil
	}
	close(b.stop)
	_ = b.listener.Close()
	b.mu.Lock()
	for _, q := range b.queues {
		q.close()
	}
	b.mu.Unlock()
	b.wg.Wait()
	return nil
}

// Subscribe registers a local subscriber callback.
func (b *Broker) Subscribe(fn func(Message)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, fn)
}

// OnAck registers a publisher-side callback fired when a remote broker
// acknowledges delivery of a message (used to measure end-to-end latency).
func (b *Broker) OnAck(fn func(by int, seq uint64, latency time.Duration)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ackCb = fn
}

// Publish forwards payload to every remote broker. It blocks while a link
// queue is full (patched-Pulsar buffering semantics) and never drops.
func (b *Broker) Publish(payload []byte) (uint64, error) {
	if b.closed.Load() {
		return 0, net.ErrClosed
	}
	seq := b.seq.Add(1)
	now := time.Now()
	b.alloc(int64(len(payload)))
	b.gate()

	d := &wire.Data{Seq: seq, SentUnixNano: now.UnixNano(), Payload: payload}
	b.mu.Lock()
	b.sent[seq] = now
	queues := make([]*sendQueue, 0, len(b.queues))
	for _, q := range b.queues {
		queues = append(queues, q)
	}
	b.mu.Unlock()
	for _, q := range queues {
		if err := q.push(d); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// RecvStatsFor returns a copy of the delivery statistics for origin.
func (b *Broker) RecvStatsFor(origin int) RecvStats {
	b.recvMu.Lock()
	defer b.recvMu.Unlock()
	if s := b.recvStats[origin]; s != nil {
		return *s
	}
	return RecvStats{}
}

// --- internals ---

// alloc charges the GC model and triggers a stop-the-world pause when the
// allocation budget is exhausted.
func (b *Broker) alloc(n int64) {
	if b.cfg.GCEveryBytes <= 0 {
		return
	}
	if b.gcBytes.Add(n) >= b.cfg.GCEveryBytes {
		b.gcBytes.Store(0)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.gcMu.Lock() // stop the world
			defer b.gcMu.Unlock()
			select {
			case <-time.After(b.cfg.GCPause):
			case <-b.stop:
			}
		}()
	}
}

// gate blocks while a GC pause is in progress.
func (b *Broker) gate() {
	b.gcMu.RLock()
	//lint:ignore SA2001 empty critical section intentionally models STW
	b.gcMu.RUnlock()
}

func (b *Broker) forward(peer int, q *sendQueue) {
	defer b.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		d, err := q.pop()
		if err != nil {
			return
		}
		b.gate()
		if conn == nil {
			conn, err = b.dialWithRetry(peer)
			if err != nil {
				return
			}
		}
		if err := wire.WriteFrame(conn, d); err != nil {
			_ = conn.Close()
			conn = nil
			// Patched semantics: retry on a fresh connection rather
			// than dropping.
			if conn, err = b.dialWithRetry(peer); err != nil {
				return
			}
			if err := wire.WriteFrame(conn, d); err != nil {
				return
			}
		}
	}
}

func (b *Broker) dialWithRetry(peer int) (net.Conn, error) {
	backoff := 20 * time.Millisecond
	for {
		conn, err := b.cfg.Network.Dial(b.cfg.Self, peer)
		if err == nil {
			if err := wire.WriteFrame(conn, &wire.Hello{From: uint16(b.cfg.Self)}); err != nil {
				_ = conn.Close()
				return nil, err
			}
			// Delivery ACKs flow back on this connection; read them
			// until the connection dies.
			b.wg.Add(1)
			go b.readAcks(conn)
			return conn, nil
		}
		select {
		case <-b.stop:
			return nil, net.ErrClosed
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// readAcks drains the reverse direction of a dialed connection, delivering
// publisher-side delivery acknowledgments.
func (b *Broker) readAcks(conn net.Conn) {
	defer b.wg.Done()
	go func() {
		<-b.stop
		_ = conn.Close()
	}()
	r := wire.NewReader(conn)
	for {
		msg, err := r.Next()
		if err != nil {
			return
		}
		if a, ok := msg.(*wire.Ack); ok {
			b.handleAck(a)
		}
	}
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.listener.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.serve(conn)
	}
}

func (b *Broker) serve(conn net.Conn) {
	defer b.wg.Done()
	defer conn.Close()
	go func() {
		<-b.stop
		_ = conn.Close()
	}()
	r := wire.NewReader(conn)
	msg, err := r.Next()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		return
	}
	from := int(hello.From)
	for {
		msg, err := r.Next()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *wire.Data:
			b.deliver(from, m, conn)
		case *wire.Ack:
			b.handleAck(m)
		}
	}
}

func (b *Broker) deliver(from int, d *wire.Data, conn net.Conn) {
	now := time.Now()
	b.alloc(int64(len(d.Payload)))
	b.gate()

	b.recvMu.Lock()
	st := b.recvStats[from]
	if st == nil {
		st = &RecvStats{First: now}
		b.recvStats[from] = st
	}
	st.Messages++
	st.Bytes += int64(len(d.Payload))
	st.Last = now
	b.recvMu.Unlock()

	msg := Message{
		Origin:     from,
		Seq:        d.Seq,
		Payload:    d.Payload,
		SentAt:     time.Unix(0, d.SentUnixNano),
		ReceivedAt: now,
	}
	b.mu.Lock()
	subs := make([]func(Message), len(b.subs))
	copy(subs, b.subs)
	b.mu.Unlock()
	for _, fn := range subs {
		fn(msg)
	}
	// Acknowledge delivery back to the publisher on the same connection.
	_ = wire.WriteFrame(conn, &wire.Ack{
		Origin: uint16(from),
		By:     uint16(b.cfg.Self),
		Type:   1,
		Seq:    d.Seq,
	})
}

func (b *Broker) handleAck(a *wire.Ack) {
	b.mu.Lock()
	sent, ok := b.sent[a.Seq]
	cb := b.ackCb
	b.mu.Unlock()
	if !ok || cb == nil {
		return
	}
	cb(int(a.By), a.Seq, time.Since(sent))
}

// sendQueue is a bounded blocking FIFO of data frames.
type sendQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	items    []*wire.Data
	cap      int
	closed   bool
}

func newSendQueue(capacity int) *sendQueue {
	q := &sendQueue{cap: capacity}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

func (q *sendQueue) push(d *wire.Data) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.items) >= q.cap {
		q.notFull.Wait()
	}
	if q.closed {
		return net.ErrClosed
	}
	q.items = append(q.items, d)
	q.notEmpty.Signal()
	return nil
}

func (q *sendQueue) pop() (*wire.Data, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.items) == 0 {
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		return nil, net.ErrClosed
	}
	d := q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return d, nil
}

func (q *sendQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
