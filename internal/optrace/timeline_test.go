package optrace

import (
	"strings"
	"testing"
)

// buildOpRecorders simulates a 3-node cluster tracing op (origin=1, seq=5)
// end to end and returns the per-node recorders.
func buildOpRecorders() []*Recorder {
	cfg := Config{SampleEvery: 1, RingSize: 64}
	n1 := New(1, cfg)
	n2 := New(2, cfg)
	n3 := New(3, cfg)

	all1 := n1.Label("all")
	n1.Record(StageAppend, 1, 5, 0, 0, 100)
	n1.Record(StageBatchEnqueue, 1, 5, 2, 0, 110)
	n1.Record(StageBatchEnqueue, 1, 5, 3, 0, 111)
	n1.Record(StageWireSend, 1, 5, 2, 0, 120)
	n1.Record(StageWireSend, 1, 5, 3, 0, 121)
	n1.Record(StageDeliver, 1, 5, 0, 0, 105)

	n2.Record(StageWireRecv, 1, 5, 1, 0, 140)
	n2.Record(StageDeliver, 1, 5, 0, 0, 150)
	n3.Record(StageWireRecv, 1, 5, 1, 0, 141)
	n3.Record(StageDeliver, 1, 5, 0, 0, 152)

	n1.Record(StageAck, 1, 5, 2, n1.Label("delivered"), 160)
	n1.Record(StageAck, 1, 6, 3, n1.Label("delivered"), 161)
	n1.Record(StageStabilize, 1, 5, 0, all1, 170)
	return []*Recorder{n1, n2, n3}
}

func TestMergeOpTimeline(t *testing.T) {
	recs := buildOpRecorders()
	tl := MergeOp(1, 5, recs)
	if !tl.HasAllStages() {
		t.Fatalf("missing stages: %v", tl.Stages())
	}
	// nil recorders are tolerated.
	if tl2 := MergeOp(1, 5, append(recs, nil)); len(tl2.Events) != len(tl.Events) {
		t.Fatal("nil recorder changed merge")
	}
	// Ordered by timestamp.
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].TS < tl.Events[i-1].TS {
			t.Fatalf("unordered merge at %d: %+v", i, tl.Events)
		}
	}
	// Cumulative ack at seq 6 covers the op; one per peer.
	if n := tl.Stages()[StageAck]; n != 2 {
		t.Fatalf("ack events = %d, want 2", n)
	}
	if bad := tl.Validate(map[string]int{"all": 3}); len(bad) != 0 {
		t.Fatalf("well-ordered timeline flagged: %v", bad)
	}
}

func TestValidateCatchesDeliverBeforeRecv(t *testing.T) {
	cfg := Config{SampleEvery: 1, RingSize: 16}
	n2 := New(2, cfg)
	n2.Record(StageDeliver, 1, 5, 0, 0, 100)
	n2.Record(StageWireRecv, 1, 5, 1, 0, 200)
	tl := MergeOp(1, 5, []*Recorder{n2})
	bad := tl.Validate(nil)
	if len(bad) != 1 || !strings.Contains(bad[0], "before its WireRecv") {
		t.Fatalf("violations = %v", bad)
	}

	// And a deliver with no recv at all.
	n3 := New(3, cfg)
	n3.Record(StageDeliver, 1, 5, 0, 0, 100)
	bad = MergeOp(1, 5, []*Recorder{n3}).Validate(nil)
	if len(bad) != 1 || !strings.Contains(bad[0], "no WireRecv") {
		t.Fatalf("violations = %v", bad)
	}
}

func TestValidateCatchesSendBeforeEnqueue(t *testing.T) {
	n1 := New(1, Config{SampleEvery: 1, RingSize: 16})
	n1.Record(StageWireSend, 1, 5, 2, 0, 100)
	n1.Record(StageBatchEnqueue, 1, 5, 2, 0, 150)
	bad := MergeOp(1, 5, []*Recorder{n1}).Validate(nil)
	if len(bad) != 1 || !strings.Contains(bad[0], "before its BatchEnqueue") {
		t.Fatalf("violations = %v", bad)
	}
}

func TestValidateCatchesMissingAckQuorum(t *testing.T) {
	n1 := New(1, Config{SampleEvery: 1, RingSize: 16})
	lbl := n1.Label("all")
	n1.Record(StageAppend, 1, 5, 0, 0, 100)
	n1.Record(StageAck, 1, 5, 2, 0, 150)
	n1.Record(StageStabilize, 1, 5, 0, lbl, 160)
	tl := MergeOp(1, 5, []*Recorder{n1})

	// Quorum 3 needs 2 remote acks; only one was ingested.
	bad := tl.Validate(map[string]int{"all": 3})
	if len(bad) != 1 || !strings.Contains(bad[0], "only 1 remote acks") {
		t.Fatalf("violations = %v", bad)
	}
	// Quorum 2 is satisfied.
	if bad := tl.Validate(map[string]int{"all": 2}); len(bad) != 0 {
		t.Fatalf("quorum-2 flagged: %v", bad)
	}
	// Unknown predicate keys are skipped.
	if bad := tl.Validate(map[string]int{"other": 3}); len(bad) != 0 {
		t.Fatalf("unknown key flagged: %v", bad)
	}

	// Acks ingested after the stabilize don't count.
	n4 := New(1, Config{SampleEvery: 1, RingSize: 16})
	lbl = n4.Label("all")
	n4.Record(StageAck, 1, 5, 2, 0, 300)
	n4.Record(StageStabilize, 1, 5, 0, lbl, 200)
	bad = MergeOp(1, 5, []*Recorder{n4}).Validate(map[string]int{"all": 2})
	if len(bad) != 1 {
		t.Fatalf("late ack counted toward quorum: %v", bad)
	}
}

func TestValidateStabilizeBeforeAppend(t *testing.T) {
	n1 := New(1, Config{SampleEvery: 1, RingSize: 16})
	n1.Record(StageStabilize, 1, 5, 0, n1.Label("all"), 50)
	n1.Record(StageAppend, 1, 5, 0, 0, 100)
	bad := MergeOp(1, 5, []*Recorder{n1}).Validate(nil)
	if len(bad) != 1 || !strings.Contains(bad[0], "before Append") {
		t.Fatalf("violations = %v", bad)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tl := MergeOp(1, 5, buildOpRecorders())
	var sb strings.Builder
	if err := tl.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"ph":"i"`, `"pid":2`, "stabilize:all", `"seq":5`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %q:\n%s", want, out)
		}
	}
}
