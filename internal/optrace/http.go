package optrace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Source resolves trace queries. *core.Cluster implements it; a bench
// harness can wrap whatever cluster is currently running.
type Source interface {
	// TraceOp merges every live recorder's view of one operation.
	TraceOp(origin int, seq uint64) (*Timeline, error)
	// SlowestOp traces the slowest sampled operation observed so far.
	SlowestOp() (*Timeline, error)
}

// NewHTTPHandler serves merged timelines as JSON:
//
//	GET /debug/trace?origin=2&seq=1234          one op's timeline
//	GET /debug/trace?op=latest-slow             worst sampled op so far
//	GET /debug/trace?...&format=chrome          Chrome trace_event array
func NewHTTPHandler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var (
			tl  *Timeline
			err error
		)
		switch {
		case q.Get("op") == "latest-slow":
			tl, err = src.SlowestOp()
		case q.Get("op") != "":
			http.Error(w, fmt.Sprintf("unknown op %q (want latest-slow)", q.Get("op")), http.StatusBadRequest)
			return
		default:
			origin, oerr := strconv.Atoi(q.Get("origin"))
			seq, serr := strconv.ParseUint(q.Get("seq"), 10, 64)
			if oerr != nil || serr != nil {
				http.Error(w, "need ?origin=<node>&seq=<n> or ?op=latest-slow", http.StatusBadRequest)
				return
			}
			tl, err = src.TraceOp(origin, seq)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if q.Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = tl.WriteChromeTrace(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tl)
	})
}
