package optrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Metric names shared by every layer that decomposes stability latency
// into per-stage segments. transport and core both resolve children of
// the same family, so the name and help text live here.
const (
	// StageFamily is the histogram family decomposing
	// stabilizer_stability_latency_seconds into blameable segments.
	StageFamily = "stabilizer_stage_seconds"
	// StageFamilyHelp documents the family on /metrics.
	StageFamilyHelp = "Per-stage latency decomposition of the append-to-stabilize lifecycle for sampled operations."

	// Stage label values. batch_queue: append → drained into a peer batch.
	// wire_send: drained → written to the connection. flight: written at
	// the origin → received by the peer (cross-clock). deliver: received →
	// applied with upcalls run. ack_return: append → covering ack ingested
	// back at the origin.
	SegBatchQueue = "batch_queue"
	SegWireSend   = "wire_send"
	SegFlight     = "flight"
	SegDeliver    = "deliver"
	SegAckReturn  = "ack_return"
)

// Timeline is the merged, causally-ordered view of one operation across
// every recorder that saw it.
type Timeline struct {
	Origin int     `json:"origin"`
	Seq    uint64  `json:"seq"`
	Events []Event `json:"events"`
}

// MergeOp merges the per-node views of one operation into a single
// timeline. Nil recorders are skipped. Events are ordered by timestamp
// with (stage, node, ticket) tie-breaks; cross-node clock skew means the
// order is best-effort for display — Validate only relies on per-node and
// happens-before pairs.
func MergeOp(origin int, seq uint64, recs []*Recorder) *Timeline {
	tl := &Timeline{Origin: origin, Seq: seq}
	for _, r := range recs {
		tl.Events = append(tl.Events, r.SnapshotOp(origin, seq)...)
	}
	sort.Slice(tl.Events, func(i, j int) bool {
		a, b := tl.Events[i], tl.Events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Ticket < b.Ticket
	})
	return tl
}

// Stages counts events per stage kind.
func (t *Timeline) Stages() map[Stage]int {
	m := make(map[Stage]int, 8)
	for _, ev := range t.Events {
		m[ev.Stage]++
	}
	return m
}

// HasAllStages reports whether all seven lifecycle stage kinds appear.
func (t *Timeline) HasAllStages() bool {
	m := t.Stages()
	for s := StageAppend; s <= StageStabilize; s++ {
		if m[s] == 0 {
			return false
		}
	}
	return true
}

// Validate checks the timeline's internal causal order and returns a
// human-readable description of every violation (empty = well-ordered).
//
// The rules deliberately compare only timestamps read on the same node,
// or pairs with a real happens-before edge, so WAN clock skew and resend
// duplicates cannot produce false positives:
//
//   - every Deliver has an earlier-or-equal WireRecv on the same node;
//   - every WireSend to a peer has an earlier-or-equal BatchEnqueue for
//     that peer on the same node;
//   - Append precedes every BatchEnqueue on the origin;
//   - Stabilize never precedes Append when both were captured;
//   - for each Stabilize whose predicate key appears in quorums with
//     quorum size k, the origin ingested acks covering the op from at
//     least k−1 distinct non-origin peers no later than the Stabilize.
//
// quorums maps predicate keys to their required node counts (the origin's
// local delivery counts as one, hence k−1 remote acks); Stabilize events
// for keys not in the map are skipped.
func (t *Timeline) Validate(quorums map[string]int) []string {
	var bad []string
	violatef := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	var appendTS int64
	haveAppend := false
	for _, ev := range t.Events {
		if ev.Stage == StageAppend && ev.Node == t.Origin {
			if !haveAppend || ev.TS < appendTS {
				appendTS = ev.TS
			}
			haveAppend = true
		}
	}

	// earliest per-(node[,peer]) timestamps of the prerequisite stages.
	type nodePeer struct{ node, peer int }
	firstRecv := map[int]int64{}
	firstEnq := map[nodePeer]int64{}
	for _, ev := range t.Events {
		switch ev.Stage {
		case StageWireRecv:
			if ts, ok := firstRecv[ev.Node]; !ok || ev.TS < ts {
				firstRecv[ev.Node] = ev.TS
			}
		case StageBatchEnqueue:
			k := nodePeer{ev.Node, ev.Peer}
			if ts, ok := firstEnq[k]; !ok || ev.TS < ts {
				firstEnq[k] = ev.TS
			}
		}
	}

	for _, ev := range t.Events {
		switch ev.Stage {
		case StageDeliver:
			if ev.Node == t.Origin {
				break // origin delivers locally, no wire hop
			}
			ts, ok := firstRecv[ev.Node]
			if !ok {
				violatef("node %d delivered seq %d with no WireRecv recorded", ev.Node, ev.Seq)
			} else if ts > ev.TS {
				violatef("node %d delivered seq %d at %d before its WireRecv at %d", ev.Node, ev.Seq, ev.TS, ts)
			}
		case StageWireSend:
			ts, ok := firstEnq[nodePeer{ev.Node, ev.Peer}]
			if !ok {
				violatef("node %d wire-sent seq %d to %d with no BatchEnqueue recorded", ev.Node, ev.Seq, ev.Peer)
			} else if ts > ev.TS {
				violatef("node %d wire-sent seq %d to %d at %d before its BatchEnqueue at %d", ev.Node, ev.Seq, ev.Peer, ev.TS, ts)
			}
		case StageBatchEnqueue:
			if haveAppend && ev.Node == t.Origin && ev.TS < appendTS {
				violatef("node %d batch-enqueued seq %d at %d before its Append at %d", ev.Node, ev.Seq, ev.TS, appendTS)
			}
		case StageStabilize:
			if haveAppend && ev.Node == t.Origin && ev.TS < appendTS {
				violatef("node %d stabilized %q covering seq %d at %d before Append at %d", ev.Node, ev.Label, t.Seq, ev.TS, appendTS)
			}
			if ev.Node != t.Origin {
				break
			}
			k, ok := quorums[ev.Label]
			if !ok {
				break
			}
			ackers := map[int]bool{}
			for _, ack := range t.Events {
				if ack.Stage == StageAck && ack.Node == t.Origin && ack.Peer != t.Origin &&
					ack.Seq >= t.Seq && ack.TS <= ev.TS {
					ackers[ack.Peer] = true
				}
			}
			if len(ackers) < k-1 {
				violatef("predicate %q (quorum %d) stabilized seq %d with only %d remote acks ingested at the origin",
					ev.Label, k, t.Seq, len(ackers))
			}
		}
	}
	return bad
}

// chromeEvent is one Chrome trace_event "instant" record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the timeline in Chrome trace_event JSON array
// format (load via about://tracing or https://ui.perfetto.dev). Each node
// becomes one pid; timestamps are rebased to the earliest event.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	var base int64
	for i, ev := range t.Events {
		if i == 0 || ev.TS < base {
			base = ev.TS
		}
	}
	out := make([]chromeEvent, 0, len(t.Events))
	for _, ev := range t.Events {
		args := map[string]any{"origin": ev.Origin, "seq": ev.Seq}
		if ev.Peer != 0 {
			args["peer"] = ev.Peer
		}
		if ev.Label != "" {
			args["label"] = ev.Label
		}
		name := ev.Stage.String()
		if ev.Label != "" {
			name += ":" + ev.Label
		}
		out = append(out, chromeEvent{
			Name:  name,
			Phase: "i",
			TS:    float64(ev.TS-base) / 1e3,
			PID:   ev.Node,
			TID:   ev.Node,
			Scope: "p",
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
