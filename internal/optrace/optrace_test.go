package optrace

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Sampled(1, 42) {
		t.Fatal("nil recorder sampled an op")
	}
	r.Record(StageAppend, 1, 42, 0, 0, 1) // must not panic
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	if r.Label("x") != 0 {
		t.Fatal("nil recorder interned a label")
	}
	if r.Node() != 0 || r.SampleEvery() != 0 {
		t.Fatal("nil recorder reported non-zero config")
	}
}

func TestNewDisabled(t *testing.T) {
	if New(1, Config{}) != nil {
		t.Fatal("disabled config built a live recorder")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config claims enabled")
	}
	if !(Config{SampleEvery: 1}).Enabled() {
		t.Fatal("SampleEvery=1 claims disabled")
	}
}

func TestSamplingDeterministic(t *testing.T) {
	r := New(3, Config{SampleEvery: 8, RingSize: 64})
	kept := 0
	for seq := uint64(1); seq <= 4096; seq++ {
		a := r.Sampled(3, seq)
		b := SampledAt(8, 3, seq)
		if a != b {
			t.Fatalf("seq %d: Sampled=%v SampledAt=%v", seq, a, b)
		}
		if a {
			kept++
		}
	}
	// 1-in-8 over 4096 draws: expect ~512, allow wide slack.
	if kept < 256 || kept > 1024 {
		t.Fatalf("kept %d of 4096 at 1-in-8", kept)
	}
	// Different origins must sample different seq sets (hash mixes origin).
	same := 0
	for seq := uint64(1); seq <= 512; seq++ {
		if SampledAt(8, 1, seq) == SampledAt(8, 2, seq) {
			same++
		}
	}
	if same == 512 {
		t.Fatal("origin does not affect sampling")
	}

	always := New(1, Config{SampleEvery: 1, RingSize: 64})
	for seq := uint64(1); seq <= 64; seq++ {
		if !always.Sampled(1, seq) {
			t.Fatalf("SampleEvery=1 dropped seq %d", seq)
		}
	}
}

func TestRecordSnapshotRoundtrip(t *testing.T) {
	r := New(2, Config{SampleEvery: 1, RingSize: 16})
	lbl := r.Label("all")
	r.Record(StageAppend, 2, 7, 0, 0, 100)
	r.Record(StageBatchEnqueue, 2, 7, 3, 0, 110)
	r.Record(StageStabilize, 2, 9, 0, lbl, 200)

	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(evs))
	}
	if evs[0].Stage != StageAppend || evs[0].Seq != 7 || evs[0].TS != 100 || evs[0].Node != 2 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Peer != 3 {
		t.Fatalf("event 1 peer = %d", evs[1].Peer)
	}
	if evs[2].Label != "all" || !evs[2].Stage.Cumulative() {
		t.Fatalf("event 2 = %+v", evs[2])
	}

	// SnapshotOp: point stages match exactly, cumulative cover seq ranges.
	op := r.SnapshotOp(2, 7)
	if len(op) != 3 {
		t.Fatalf("op snapshot len = %d, want 3 (stabilize@9 covers 7): %+v", len(op), op)
	}
	op9 := r.SnapshotOp(2, 9)
	if len(op9) != 1 || op9[0].Stage != StageStabilize {
		t.Fatalf("op9 snapshot = %+v", op9)
	}
	if got := r.SnapshotOp(5, 7); len(got) != 0 {
		t.Fatalf("wrong-origin snapshot = %+v", got)
	}
}

func TestRingWrap(t *testing.T) {
	r := New(1, Config{SampleEvery: 1, RingSize: 8})
	for seq := uint64(1); seq <= 100; seq++ {
		r.Record(StageAppend, 1, seq, 0, 0, int64(seq))
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot len = %d, want ring size 8", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(93 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestTailFilter(t *testing.T) {
	r := New(1, Config{SampleEvery: 1, RingSize: 64})
	for seq := uint64(1); seq <= 20; seq++ {
		peer := 2
		if seq%2 == 0 {
			peer = 3
		}
		r.Record(StageWireSend, 1, seq, peer, 0, int64(seq))
	}
	tail := r.Tail(4, func(ev Event) bool { return ev.Peer == 3 })
	if len(tail) != 4 {
		t.Fatalf("tail len = %d", len(tail))
	}
	for _, ev := range tail {
		if ev.Peer != 3 {
			t.Fatalf("tail leaked peer %d", ev.Peer)
		}
	}
	if tail[len(tail)-1].Seq != 20 {
		t.Fatalf("tail not newest-aligned: %+v", tail)
	}
}

func TestLabelIntern(t *testing.T) {
	r := New(1, Config{SampleEvery: 1, RingSize: 8})
	a := r.Label("maj")
	b := r.Label("all")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("intern ids a=%d b=%d", a, b)
	}
	if r.Label("maj") != a {
		t.Fatal("re-intern changed id")
	}
	if r.labelName(a) != "maj" || r.labelName(9999) != "" {
		t.Fatal("labelName decode broken")
	}
}

// TestConcurrentRecordSnapshot exercises the seqlock under the race
// detector: writers wrap the ring while readers snapshot continuously.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := New(1, Config{SampleEvery: 1, RingSize: 32})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(StageDeliver, w+1, seq, 0, 0, int64(seq))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, ev := range r.Snapshot() {
			if ev.Stage != StageDeliver || ev.Origin < 1 || ev.Origin > 4 {
				t.Errorf("torn event: %+v", ev)
			}
			// A consistent slot must pair origin and ts coherently:
			// writers always store ts == seq.
			if ev.TS != int64(ev.Seq) {
				t.Errorf("mixed-writer slot: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestDisabledPathsAllocationFree(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		if nilRec.Sampled(1, 7) {
			t.Fatal("sampled")
		}
		nilRec.Record(StageAppend, 1, 7, 0, 0, 1)
	}); n != 0 {
		t.Fatalf("nil recorder path allocates %v/op", n)
	}

	rec := New(1, Config{SampleEvery: 1 << 20, RingSize: 64})
	seq := uint64(0)
	if n := testing.AllocsPerRun(100, func() {
		seq++
		if rec.Sampled(1, seq) {
			rec.Record(StageAppend, 1, seq, 0, 0, 1)
		}
	}); n != 0 {
		t.Fatalf("unsampled recorder path allocates %v/op", n)
	}

	hot := New(1, Config{SampleEvery: 1, RingSize: 64})
	if n := testing.AllocsPerRun(100, func() {
		seq++
		hot.Record(StageWireRecv, 1, seq, 2, 0, int64(seq))
	}); n != 0 {
		t.Fatalf("record path allocates %v/op", n)
	}
}

func BenchmarkRecord(b *testing.B) {
	r := New(1, Config{SampleEvery: 1, RingSize: 1 << 13})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(StageAppend, 1, uint64(i), 2, 0, int64(i))
	}
}

func BenchmarkSampledMiss(b *testing.B) {
	r := New(1, Config{SampleEvery: 1 << 16, RingSize: 64})
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Sampled(1, uint64(i)) {
			n++
		}
	}
	_ = n
}

func TestHTTPHandler(t *testing.T) {
	src := fakeSource{
		tl: &Timeline{Origin: 2, Seq: 7, Events: []Event{
			{Stage: StageAppend, Node: 2, Origin: 2, Seq: 7, TS: 100},
		}},
	}
	h := NewHTTPHandler(src)

	get := func(url string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, url, nil))
		return rr
	}

	rr := get("/debug/trace?origin=2&seq=7")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	var tl Timeline
	if err := json.Unmarshal(rr.Body.Bytes(), &tl); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if tl.Seq != 7 || len(tl.Events) != 1 || tl.Events[0].Stage != StageAppend {
		t.Fatalf("timeline = %+v", tl)
	}

	if rr := get("/debug/trace?op=latest-slow"); rr.Code != http.StatusOK {
		t.Fatalf("latest-slow status %d", rr.Code)
	}
	if rr := get("/debug/trace"); rr.Code != http.StatusBadRequest {
		t.Fatalf("missing-params status %d", rr.Code)
	}
	if rr := get("/debug/trace?op=bogus"); rr.Code != http.StatusBadRequest {
		t.Fatalf("bogus-op status %d", rr.Code)
	}
	rr = get("/debug/trace?origin=2&seq=7&format=chrome")
	if rr.Code != http.StatusOK {
		t.Fatalf("chrome status %d", rr.Code)
	}
	var arr []map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &arr); err != nil || len(arr) != 1 {
		t.Fatalf("chrome export: err=%v len=%d", err, len(arr))
	}
}

type fakeSource struct{ tl *Timeline }

func (f fakeSource) TraceOp(origin int, seq uint64) (*Timeline, error) { return f.tl, nil }
func (f fakeSource) SlowestOp() (*Timeline, error)                     { return f.tl, nil }

func TestStageJSONNames(t *testing.T) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(Event{Stage: StageWireRecv}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"wire_recv"`)) {
		t.Fatalf("stage name not in JSON: %s", buf.Bytes())
	}
}
