// Package optrace is a per-node flight recorder for the append→stabilize
// lifecycle. Every node owns one Recorder: a fixed-size, power-of-two ring
// of lifecycle events keyed by the (origin, seq) identity that already
// flows on every Data and Ack frame, so events recorded independently on
// different nodes can be correlated after the fact with no wire-format
// change.
//
// The recorder is built for the hot path:
//
//   - Recording is lock-free and allocation-free. A writer claims a slot
//     with one atomic add and publishes it seqlock-style: the commit word
//     is zeroed, the event words are stored, then the commit word is set
//     to ticket+1. Readers accept a slot only when the commit word is
//     non-zero and unchanged across the read, so torn reads are impossible
//     (tickets are unique, the commit word never repeats a value).
//   - All slot accesses are atomic, so concurrent snapshots during a
//     `-race` soak are clean.
//   - Sampling is a deterministic 1-in-N hash of (origin, seq): every node
//     makes the same keep/drop decision for the same operation without
//     coordination, which is what makes cross-node merging work.
//
// Point stages (Append, BatchEnqueue, WireSend, WireRecv, Deliver)
// describe one specific sequence number and are recorded only for sampled
// operations. Cumulative stages (Ack, Stabilize) describe a coalesced
// watermark covering every seq at or below the recorded one; they are
// cheap (control-plane rate, not data rate) and are recorded whenever the
// recorder is enabled, so a sampled op's timeline can always find the ack
// and stabilization that covered it.
package optrace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Stage identifies one step of an operation's lifecycle.
type Stage uint8

// Lifecycle stages in causal order. The zero value is reserved so an
// uninitialised slot word never decodes as a valid event.
const (
	// StageAppend: the origin accepted the update into its send log.
	StageAppend Stage = 1 + iota
	// StageBatchEnqueue: a link drained the entry from the send log into
	// an outgoing batch for one peer.
	StageBatchEnqueue
	// StageWireSend: the batch containing the entry was written to the
	// peer's connection.
	StageWireSend
	// StageWireRecv: a node received the Data frame from the wire.
	StageWireRecv
	// StageDeliver: the receiving node applied the update and ran its
	// delivery upcalls.
	StageDeliver
	// StageAck: the node ingested a (coalesced, monotone) Ack frame
	// covering this seq. Cumulative: one event covers every seq ≤ Seq.
	StageAck
	// StageStabilize: a registered predicate's frontier advanced to cover
	// this seq. Cumulative, labeled with the predicate key.
	StageStabilize
)

var stageNames = [...]string{
	StageAppend:       "append",
	StageBatchEnqueue: "batch_enqueue",
	StageWireSend:     "wire_send",
	StageWireRecv:     "wire_recv",
	StageDeliver:      "deliver",
	StageAck:          "ack",
	StageStabilize:    "stabilize",
}

// String returns the snake_case stage name used in JSON and metrics.
func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// MarshalText makes stages render as names in JSON output.
func (s Stage) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a stage name back (unknown names decode to 0).
func (s *Stage) UnmarshalText(b []byte) error {
	for i, name := range stageNames {
		if name == string(b) {
			*s = Stage(i)
			return nil
		}
	}
	*s = 0
	return nil
}

// Cumulative reports whether events of this stage cover a seq range
// (every seq ≤ Event.Seq) rather than one exact seq.
func (s Stage) Cumulative() bool { return s == StageAck || s == StageStabilize }

// Event is one decoded recorder entry.
type Event struct {
	// Ticket is the slot's claim order within its recorder — a per-node
	// record sequence, not comparable across nodes.
	Ticket uint64 `json:"-"`
	Stage  Stage  `json:"stage"`
	// Node is the id of the node whose recorder captured the event.
	Node int `json:"node"`
	// Origin and Seq identify the operation (Data/Ack frame identity).
	Origin int    `json:"origin"`
	Seq    uint64 `json:"seq"`
	// Peer is the remote node involved, when there is one: the batch /
	// wire-send destination, the wire-recv sender, or the acking node.
	Peer int `json:"peer,omitempty"`
	// Aux is a recorder-local label id (predicate key for Stabilize,
	// frontier type name for Ack); Label is its decoded string.
	Aux   uint16 `json:"-"`
	Label string `json:"label,omitempty"`
	// TS is the event wall-clock time in Unix nanoseconds, read from the
	// recording node's clock.
	TS int64 `json:"ts"`
}

// Config enables and sizes a node's recorder.
type Config struct {
	// SampleEvery keeps roughly 1 in N operations: 0 disables tracing
	// entirely, 1 traces every operation. Rounded up to a power of two.
	SampleEvery int
	// RingSize is the per-node event capacity, rounded up to a power of
	// two. 0 means DefaultRingSize.
	RingSize int
}

// DefaultRingSize is the per-node event capacity when Config.RingSize is 0.
const DefaultRingSize = 1 << 13

// Enabled reports whether the config asks for a live recorder.
func (c Config) Enabled() bool { return c.SampleEvery > 0 }

// slot is one seqlock-published ring entry: w[0] packs
// stage|origin|peer|aux, w[1] is seq, w[2] is ts, and w[3] is the commit
// word (ticket+1, 0 while a write is in flight).
type slot struct {
	w [4]atomic.Uint64
}

const (
	originShift = 8
	peerShift   = 24
	auxShift    = 40
	fieldMask   = 0xffff
)

// Recorder is one node's flight recorder. The zero of *Recorder (nil) is
// a valid disabled recorder: Sampled reports false and Record is a no-op.
type Recorder struct {
	node       int
	every      int
	sampleMask uint64
	ringMask   uint64
	cursor     atomic.Uint64
	ring       []slot

	mu     sync.RWMutex
	labels map[string]uint16
	names  []string
}

// New builds a recorder for the given node id. It returns nil — a valid,
// disabled recorder — when the config is disabled.
func New(node int, cfg Config) *Recorder {
	if !cfg.Enabled() {
		return nil
	}
	size := cfg.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	size = nextPow2(size)
	return &Recorder{
		node:       node,
		every:      cfg.SampleEvery,
		sampleMask: uint64(nextPow2(cfg.SampleEvery)) - 1,
		ringMask:   uint64(size) - 1,
		ring:       make([]slot, size),
		labels:     map[string]uint16{"": 0},
		names:      []string{""},
	}
}

// Node returns the id the recorder was built for (0 for nil).
func (r *Recorder) Node() int {
	if r == nil {
		return 0
	}
	return r.node
}

// SampleEvery returns the configured sampling period (0 for nil).
func (r *Recorder) SampleEvery() int {
	if r == nil {
		return 0
	}
	return r.every
}

// sampleHash is a splitmix64-style finalizer over the op identity. It is
// shared by every node so sampling decisions agree cluster-wide.
func sampleHash(origin int, seq uint64) uint64 {
	x := seq ^ uint64(origin)<<48 ^ 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SampledAt reports the cluster-wide sampling decision for an op under a
// given 1-in-every policy, without needing a recorder.
func SampledAt(every, origin int, seq uint64) bool {
	if every <= 0 {
		return false
	}
	return sampleHash(origin, seq)&(uint64(nextPow2(every))-1) == 0
}

// Sampled reports whether point-stage events for this op should be
// recorded. Safe (and false) on a nil recorder; allocation-free.
func (r *Recorder) Sampled(origin int, seq uint64) bool {
	if r == nil {
		return false
	}
	if r.sampleMask == 0 {
		return true
	}
	return sampleHash(origin, seq)&r.sampleMask == 0
}

// Record appends one event to the ring. Safe no-op on a nil recorder;
// lock-free and allocation-free otherwise. Callers gate point stages on
// Sampled; cumulative stages (Ack, Stabilize) are recorded unconditionally
// because they are coalesced watermarks, not per-op traffic.
func (r *Recorder) Record(stage Stage, origin int, seq uint64, peer int, aux uint16, ts int64) {
	if r == nil {
		return
	}
	t := r.cursor.Add(1) - 1
	s := &r.ring[t&r.ringMask]
	s.w[3].Store(0)
	s.w[0].Store(uint64(stage) |
		uint64(uint16(origin))<<originShift |
		uint64(uint16(peer))<<peerShift |
		uint64(aux)<<auxShift)
	s.w[1].Store(seq)
	s.w[2].Store(uint64(ts))
	s.w[3].Store(t + 1)
}

// Label interns a string (predicate key, frontier type name) and returns
// its id for use as Record's aux argument. Not for the per-message hot
// path — callers cache ids or call it at control-plane rate.
func (r *Recorder) Label(name string) uint16 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	id, ok := r.labels[name]
	r.mu.RUnlock()
	if ok {
		return id
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok = r.labels[name]; ok {
		return id
	}
	if len(r.names) > fieldMask {
		return 0 // intern table full; degrade to the empty label
	}
	id = uint16(len(r.names))
	r.names = append(r.names, name)
	r.labels[name] = id
	return id
}

// labelName decodes an interned id ("" for unknown ids).
func (r *Recorder) labelName(id uint16) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) < len(r.names) {
		return r.names[id]
	}
	return ""
}

// Snapshot returns every committed event currently in the ring, oldest
// first. Events overwritten or mid-write during the scan are skipped.
func (r *Recorder) Snapshot() []Event {
	return r.snapshot(func(Event) bool { return true })
}

// SnapshotOp returns the events relevant to one operation: point stages
// matching (origin, seq) exactly, cumulative stages whose watermark covers
// seq.
func (r *Recorder) SnapshotOp(origin int, seq uint64) []Event {
	return r.snapshot(func(ev Event) bool {
		if ev.Origin != origin {
			return false
		}
		if ev.Stage.Cumulative() {
			return ev.Seq >= seq
		}
		return ev.Seq == seq
	})
}

// Tail returns the newest n events satisfying keep, oldest first.
func (r *Recorder) Tail(n int, keep func(Event) bool) []Event {
	if keep == nil {
		keep = func(Event) bool { return true }
	}
	evs := r.snapshot(keep)
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

func (r *Recorder) snapshot(keep func(Event) bool) []Event {
	if r == nil {
		return nil
	}
	evs := make([]Event, 0, 64)
	for i := range r.ring {
		s := &r.ring[i]
		c1 := s.w[3].Load()
		if c1 == 0 {
			continue
		}
		w0 := s.w[0].Load()
		w1 := s.w[1].Load()
		w2 := s.w[2].Load()
		if s.w[3].Load() != c1 {
			continue // torn: overwritten mid-read
		}
		ev := Event{
			Ticket: c1 - 1,
			Stage:  Stage(w0 & 0xff),
			Node:   r.node,
			Origin: int(int16(w0 >> originShift & fieldMask)),
			Seq:    w1,
			Peer:   int(int16(w0 >> peerShift & fieldMask)),
			Aux:    uint16(w0 >> auxShift & fieldMask),
			TS:     int64(w2),
		}
		if ev.Aux != 0 {
			ev.Label = r.labelName(ev.Aux)
		}
		if keep(ev) {
			evs = append(evs, ev)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Ticket < evs[j].Ticket })
	return evs
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
