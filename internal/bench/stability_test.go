package bench

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/emunet"
)

// TestHistogramSeriesAgreement pins the two stability-latency measurement
// paths against each other on one fixed workload: the ad-hoc
// timestamp-reconciliation series (the original Fig. 5 bookkeeping) and
// the stabilizer_stability_latency_seconds histogram the node maintains
// itself. Both see the same frontier advances, so their quantiles must
// agree up to the histogram's log2-bucket interpolation error (bounded by
// ~2-2.5x) plus scheduling noise.
func TestHistogramSeriesAgreement(t *testing.T) {
	opts := Options{TimeScale: 5}.normalized()

	topo := &config.Topology{Self: 1}
	for i := 1; i <= 3; i++ {
		topo.Nodes = append(topo.Nodes, config.Node{
			Name:   fmt.Sprintf("node%d", i),
			AZ:     fmt.Sprintf("az%d", i),
			Region: fmt.Sprintf("region%d", i),
		})
	}
	matrix := emunet.NewMatrix()
	// 5ms emulated one-way latency (1ms wall at TimeScale 5) keeps the
	// latencies well above bucket-zero noise.
	matrix.Default = emunet.Link{OneWayLatency: 5 * time.Millisecond}
	c, err := startCluster(topo, matrix, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	sender := c.node(1)

	const pred = "agree"
	if err := sender.RegisterPredicate(pred, "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}

	// The series path, exactly as Fig5 builds it: send timestamps on one
	// side, monitor-upcall timestamps on the other, reconciled per seq.
	var (
		mu       sync.Mutex
		sentAt   []time.Time
		stableAt []time.Time
		covered  uint64
	)
	cancel, err := sender.MonitorStabilityFrontier(pred, func(f uint64) {
		now := time.Now()
		mu.Lock()
		for uint64(len(stableAt)) < f {
			stableAt = append(stableAt, time.Time{})
		}
		for seq := covered + 1; seq <= f; seq++ {
			stableAt[seq-1] = now
		}
		covered = f
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	const count = 300
	payload := make([]byte, 64)
	var lastSeq uint64
	for i := 0; i < count; i++ {
		now := time.Now()
		seq, err := sender.Send(payload)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		for uint64(len(sentAt)) < seq {
			sentAt = append(sentAt, time.Time{})
		}
		sentAt[seq-1] = now
		mu.Unlock()
		lastSeq = seq
		// Pace the workload so frontier advances spread over many
		// recomputes instead of one coalesced jump.
		if i%10 == 9 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	ctx, cancelWait := context.WithTimeout(context.Background(), time.Minute)
	defer cancelWait()
	if err := sender.WaitFor(ctx, lastSeq, pred); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	s := make(series, 0, lastSeq)
	for seq := uint64(1); seq <= lastSeq; seq++ {
		if stableAt[seq-1].IsZero() || sentAt[seq-1].IsZero() {
			continue
		}
		s = append(s, opts.rescale(stableAt[seq-1].Sub(sentAt[seq-1])))
	}
	mu.Unlock()
	if len(s) < count*9/10 {
		t.Fatalf("series reconciled only %d/%d messages", len(s), count)
	}

	if got := stabilityHistogram(sender, pred).Count(); got == 0 {
		t.Fatal("stability histogram never observed anything")
	}

	for _, q := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p99", 0.99}} {
		fromSeries := s.percentile(q.q)
		fromHist := opts.stabilityQuantile(sender, pred, q.q)
		if fromSeries <= 0 || fromHist <= 0 {
			t.Fatalf("%s: non-positive quantile: series=%v histogram=%v", q.name, fromSeries, fromHist)
		}
		// Factor 3 absorbs the log2-bucket interpolation error; the
		// absolute slack absorbs timestamping skew between the two paths
		// on very fast runs (values are in rescaled paper units).
		const slack = 10 * time.Millisecond
		if fromHist > 3*fromSeries+slack || fromSeries > 3*fromHist+slack {
			t.Fatalf("%s disagrees beyond bucket error: series=%v histogram=%v", q.name, fromSeries, fromHist)
		}
	}
}
