package bench

import (
	"time"

	"stabilizer/internal/core"
	"stabilizer/internal/metrics"
)

// stabilityHistogram returns a node's stability-latency histogram for one
// predicate — the same stabilizer_stability_latency_seconds child the
// /metrics endpoint exposes under the node's label.
func stabilityHistogram(n *core.Node, pred string) *metrics.Histogram {
	return n.StabilityLatencyHistogram(pred)
}

// stabilityQuantile reads the q-quantile stability latency of pred from
// the node's histogram, rescaled to paper time units. The histogram
// observes raw wall-clock time (exposed as seconds), so the same rescale
// applies as to series built from wall-clock timestamps. Returns 0 when
// the predicate has no observations.
func (o Options) stabilityQuantile(n *core.Node, pred string, q float64) time.Duration {
	secs := stabilityHistogram(n, pred).Quantile(q)
	return o.rescale(time.Duration(secs * float64(time.Second)))
}
