package bench

import (
	"time"

	"stabilizer/internal/core"
	"stabilizer/internal/metrics"
)

// stabilityHistogram returns a node's stability-latency histogram for one
// predicate — the same stabilizer_stability_latency_seconds family the
// /metrics endpoint exposes. Families are get-or-create, so this resolves
// to the histogram the node's frontier hook has been observing into.
func stabilityHistogram(n *core.Node, pred string) *metrics.Histogram {
	return n.Metrics().HistogramVec("stabilizer_stability_latency_seconds",
		"Send to predicate-frontier crossing, per predicate key.",
		metrics.LatencyOpts, "predicate").With(pred)
}

// stabilityQuantile reads the q-quantile stability latency of pred from
// the node's histogram, rescaled to paper time units. The histogram
// observes raw wall-clock time (exposed as seconds), so the same rescale
// applies as to series built from wall-clock timestamps. Returns 0 when
// the predicate has no observations.
func (o Options) stabilityQuantile(n *core.Node, pred string, q float64) time.Duration {
	secs := stabilityHistogram(n, pred).Quantile(q)
	return o.rescale(time.Duration(secs * float64(time.Second)))
}
