//go:build race

package bench

// raceEnabled reports that this test binary was built with -race; timing-
// shape assertions are skipped because the detector's 5-20x slowdown
// swamps sub-millisecond emulated latencies.
const raceEnabled = true
