// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VI) on the emulated WAN. Each
// experiment is a plain function returning structured results and printing
// the same rows/series the paper reports; cmd/stabilizer-bench and the
// repository's bench_test.go are thin wrappers around these functions.
//
// Absolute numbers differ from the paper (the substrate is an emulator,
// not EC2/CloudLab hardware), but the comparisons — who wins, by what
// factor, where the crossovers are — are the reproduction targets;
// EXPERIMENTS.md records paper-vs-measured for each.
package bench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
	"stabilizer/internal/transport"
)

// Options configure an experiment run.
type Options struct {
	// Out receives the experiment's report (defaults to io.Discard).
	Out io.Writer
	// TimeScale divides all emulated latencies (and multiplies
	// bandwidth) so experiments finish quickly; reported latencies are
	// rescaled back to paper units. 1 = faithful wall-clock.
	TimeScale float64
	// Fabric picks the network: "mem" (default) or "tcp".
	Fabric string
	// Short shrinks workloads for use under `go test -short` and
	// testing.B iteration.
	Short bool
	// Metrics, when set, is shared by every node of every cluster an
	// experiment starts: each node instruments through its own
	// node-labeled group, so a live /metrics endpoint watches the whole
	// run. Families are get-or-create, so successive clusters accumulate
	// into the same counters.
	Metrics *metrics.Registry
	// Batch overrides the data-plane batching knobs on every node the
	// experiment starts (zero value = transport defaults). Note the
	// RTT-adaptive byte budget already tracks TimeScale implicitly: the
	// scaled heartbeat RTT shrinks the bandwidth-delay product along with
	// the emulated latencies.
	Batch transport.BatchConfig
	// Flow bounds every node's send log with admission control (byte and
	// entry caps with hysteretic watermarks), so experiments can measure
	// throughput under bounded memory. Zero value = unbounded (the
	// pre-flow-control behavior).
	Flow transport.FlowConfig
	// LogStripes shards every node's send-log appends across that many
	// producer stripes; 0 picks transport.DefaultLogStripes(), 1 forces
	// the classic single-stripe log for A/B comparisons.
	LogStripes int
	// Trace arms the per-operation flight recorder on every node an
	// experiment starts (zero value = off, the faithful-measurement
	// default — always-on tracing perturbs the numbers it measures).
	Trace optrace.Config
	// TraceTarget, when set, is pointed at each cluster an experiment
	// boots, so a long-lived /debug/trace endpoint built over it follows
	// the live run across successive short-lived clusters.
	TraceTarget *TraceTarget
	// StabilizeInterval defers predicate stabilization onto a periodic
	// control-plane tick on every node an experiment starts (0 = inline;
	// see core.Config.StabilizeInterval).
	StabilizeInterval time.Duration
	// Adaptive, when set, starts the closed-loop consistency controller
	// on every node of every cluster an experiment boots (see
	// core.ClusterConfig.Adaptive). Off by default: the controller swaps
	// predicates underneath the measured workloads.
	Adaptive *core.AdaptiveSpec
}

// TraceTarget adapts the most recently started experiment cluster to
// optrace.Source. Experiments open and close clusters as they go; the
// target atomically tracks the newest one (and keeps serving the last
// cluster's recorders after it closes, for post-run inspection).
type TraceTarget struct {
	cur atomic.Pointer[core.Cluster]
}

// errNoCluster is returned before the first experiment cluster boots.
var errNoCluster = errors.New("bench: no experiment cluster has started yet")

// TraceOp implements optrace.Source against the current cluster.
func (t *TraceTarget) TraceOp(origin int, seq uint64) (*optrace.Timeline, error) {
	if cl := t.cur.Load(); cl != nil {
		return cl.TraceOp(origin, seq)
	}
	return nil, errNoCluster
}

// SlowestOp implements optrace.Source against the current cluster.
func (t *TraceTarget) SlowestOp() (*optrace.Timeline, error) {
	if cl := t.cur.Load(); cl != nil {
		return cl.SlowestOp()
	}
	return nil, errNoCluster
}

func (o Options) normalized() Options {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 10
	}
	if o.Fabric == "" {
		o.Fabric = "mem"
	}
	return o
}

// network builds the chosen fabric over a time-scaled matrix.
func (o Options) network(m *emunet.Matrix) emunet.Network {
	scaled := m.Scaled(o.TimeScale)
	if o.Fabric == "tcp" {
		return emunet.NewTCPNetwork(scaled)
	}
	return emunet.NewMemNetwork(scaled)
}

// rescale converts a measured duration back to paper time units.
func (o Options) rescale(d time.Duration) time.Duration {
	return time.Duration(float64(d) * o.TimeScale)
}

// cluster wraps a core.Cluster plus the fabric it runs over.
type cluster struct {
	cl  *core.Cluster
	net emunet.Network
}

// startCluster boots the whole topology in-process on the chosen fabric.
func startCluster(topo *config.Topology, matrix *emunet.Matrix, opts Options) (*cluster, error) {
	net := opts.network(matrix)
	cl, err := core.OpenCluster(core.ClusterConfig{
		Topology:          topo,
		Network:           net,
		Metrics:           opts.Metrics,
		HeartbeatEvery:    100 * time.Millisecond,
		PeerTimeout:       5 * time.Second,
		Batch:             opts.Batch,
		Flow:              opts.Flow,
		LogStripes:        opts.LogStripes,
		Trace:             opts.Trace,
		StabilizeInterval: opts.StabilizeInterval,
		Adaptive:          opts.Adaptive,
	})
	if err != nil {
		_ = net.Close()
		return nil, fmt.Errorf("bench: open cluster: %w", err)
	}
	if opts.TraceTarget != nil {
		opts.TraceTarget.cur.Store(cl)
	}
	return &cluster{cl: cl, net: net}, nil
}

func (c *cluster) close() {
	if c.cl != nil {
		_ = c.cl.Close()
	}
	if c.net != nil {
		_ = c.net.Close()
	}
}

// node returns the 1-based node.
func (c *cluster) node(i int) *core.Node { return c.cl.Node(i) }

// --- small stat helpers ---

type series []time.Duration

func (s series) avg() time.Duration {
	if len(s) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s {
		sum += v
	}
	return sum / time.Duration(len(s))
}

func (s series) percentile(p float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	cp := make(series, len(s))
	copy(cp, s)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(p * float64(len(cp)-1))
	return cp[idx]
}

func (s series) max() time.Duration {
	var m time.Duration
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// ms renders a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// mbps renders bits-per-second as Mbit/s.
func mbps(bps float64) string {
	return fmt.Sprintf("%.1f", bps/1e6)
}

// randomBytes returns a deterministic pseudo-random payload.
func randomBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}
