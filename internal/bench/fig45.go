package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/emunet"
	"stabilizer/internal/filebackup"
	"stabilizer/internal/predlib"
	"stabilizer/internal/trace"
	"stabilizer/internal/wankv"
)

// Fig4 reproduces the trace shape figure: the synthetic Dropbox workload's
// per-interval volume and largest file, which must show three huge-file
// spikes inside a bursty 17-minute window of ~3.87 GB.
func Fig4(opts Options) ([]trace.Bucket, error) {
	opts = opts.normalized()
	spec := trace.DefaultSpec()
	reqs := trace.Generate(spec)
	buckets := trace.Histogram(reqs, 30*time.Second)

	fmt.Fprintln(opts.Out, "Fig. 4 — Dropbox file size distribution over the trace window (synthetic)")
	fmt.Fprintf(opts.Out, "total %.2f GB in %d files over %v; %d packets at 8 KB\n",
		float64(trace.TotalBytes(reqs))/1e9, len(reqs), spec.Duration, trace.Messages(reqs, 8<<10))
	fmt.Fprintf(opts.Out, "%10s %8s %12s %14s\n", "t(s)", "files", "MB", "maxfile(MB)")
	for _, b := range buckets {
		fmt.Fprintf(opts.Out, "%10.0f %8d %12.1f %14.1f\n",
			b.Start.Seconds(), b.Files, float64(b.Bytes)/1e6, float64(b.MaxFile)/1e6)
	}
	return buckets, nil
}

// Fig5Bucket aggregates stability-frontier latency over a range of message
// sequence numbers (the paper's x-axis), per predicate.
type Fig5Bucket struct {
	FirstSeq, LastSeq uint64
	Avg               map[string]time.Duration
	Max               map[string]time.Duration
}

// Fig5Result is the trace-driven experiment outcome.
type Fig5Result struct {
	Messages uint64
	Buckets  []Fig5Bucket
	// Overall per-predicate statistics. Avg and Max come from the
	// per-message reconciliation series; P50 and P99 are read from the
	// sender's stabilizer_stability_latency_seconds histogram, so the
	// report and a live /metrics scrape agree by construction.
	Avg, P50, P99, Max map[string]time.Duration
}

// Fig5 reproduces the trace-driven experiment (§VI-B): the synthetic
// Dropbox trace is replayed against the Dropbox-like backup application on
// the emulated EC2 topology, and for every message we record when its
// synchronization first satisfies each of the six Table III predicates.
// Expected shape: three latency spikes aligned with the huge files; weaker
// predicates (OneRegion/OneWNode) stay low; MajorityWNodes suffers more
// than MajorityRegions; AllWNodes/AllRegions are the slowest.
func Fig5(opts Options) (*Fig5Result, error) {
	opts = opts.normalized()
	scale := 0.1
	if opts.Short {
		scale = 0.01
	}
	spec := trace.DefaultSpec().Scale(scale)
	reqs := trace.Generate(spec)

	topo := config.EC2Topology(1)
	c, err := startCluster(topo, emunet.EC2Matrix(), opts)
	if err != nil {
		return nil, err
	}
	defer c.close()

	sender := c.node(1)
	kv := wankv.New(sender)
	svc := filebackup.New(kv)
	if err := svc.RegisterTableIII(); err != nil {
		return nil, err
	}
	// Receivers intentionally run no K/V mirror here: all six predicates
	// read "received" acknowledgments, which the transport generates
	// regardless, and retaining seven mirrored copies of the multi-GB
	// trace would only stress memory, not the metric.

	preds := predlib.TableIIIOrder()

	// sentAt[seq-1] and stableAt[pred][seq-1] reconcile after the run;
	// monitors may fire before the sender records the send time.
	var (
		mu       sync.Mutex
		sentAt   []time.Time
		stableAt = make(map[string][]time.Time, len(preds))
		covered  = make(map[string]uint64, len(preds))
	)
	ensureLen := func(s []time.Time, n uint64) []time.Time {
		for uint64(len(s)) < n {
			s = append(s, time.Time{})
		}
		return s
	}
	var cancels []func()
	defer func() {
		for _, cf := range cancels {
			cf()
		}
	}()
	for _, p := range preds {
		p := p
		cancel, err := sender.MonitorStabilityFrontier(p, func(f uint64) {
			now := time.Now()
			mu.Lock()
			stableAt[p] = ensureLen(stableAt[p], f)
			for seq := covered[p] + 1; seq <= f; seq++ {
				stableAt[p][seq-1] = now
			}
			covered[p] = f
			mu.Unlock()
		})
		if err != nil {
			return nil, err
		}
		cancels = append(cancels, cancel)
	}

	// Replay the trace: arrival times compressed by the time scale.
	rng := rand.New(rand.NewSource(5))
	start := time.Now()
	var lastSeq uint64
	for _, r := range reqs {
		due := start.Add(time.Duration(float64(r.At) / opts.TimeScale))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		data := randomBytes(rng, int(r.Size))
		now := time.Now()
		res, err := svc.Backup(r.Name, data)
		if err != nil {
			return nil, fmt.Errorf("bench: backup %s: %w", r.Name, err)
		}
		mu.Lock()
		sentAt = ensureLen(sentAt, res.LastSeq)
		for seq := res.FirstSeq; seq <= res.LastSeq; seq++ {
			sentAt[seq-1] = now
		}
		mu.Unlock()
		lastSeq = res.LastSeq
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	for _, p := range preds {
		if err := sender.WaitFor(ctx, lastSeq, p); err != nil {
			return nil, fmt.Errorf("bench: drain %s: %w", p, err)
		}
	}

	// Reconcile latencies.
	mu.Lock()
	defer mu.Unlock()
	res := &Fig5Result{
		Messages: lastSeq,
		Avg:      make(map[string]time.Duration),
		P50:      make(map[string]time.Duration),
		P99:      make(map[string]time.Duration),
		Max:      make(map[string]time.Duration),
	}
	lat := make(map[string]series, len(preds))
	for _, p := range preds {
		s := make(series, 0, lastSeq)
		for seq := uint64(1); seq <= lastSeq; seq++ {
			st := stableAt[p][seq-1]
			se := sentAt[seq-1]
			if st.IsZero() || se.IsZero() {
				continue
			}
			s = append(s, opts.rescale(st.Sub(se)))
		}
		lat[p] = s
		res.Avg[p] = s.avg()
		res.Max[p] = s.max()
		// Quantiles come from the node's own histogram rather than the
		// ad-hoc series (TestHistogramSeriesAgreement pins the two paths
		// against each other).
		res.P50[p] = opts.stabilityQuantile(sender, p, 0.50)
		res.P99[p] = opts.stabilityQuantile(sender, p, 0.99)
	}

	const nBuckets = 24
	per := lastSeq / nBuckets
	if per == 0 {
		per = 1
	}
	for lo := uint64(1); lo <= lastSeq; lo += per {
		hi := lo + per - 1
		if hi > lastSeq {
			hi = lastSeq
		}
		b := Fig5Bucket{
			FirstSeq: lo, LastSeq: hi,
			Avg: make(map[string]time.Duration),
			Max: make(map[string]time.Duration),
		}
		for _, p := range preds {
			var sub series
			for seq := lo; seq <= hi; seq++ {
				st := stableAt[p][seq-1]
				se := sentAt[seq-1]
				if st.IsZero() || se.IsZero() {
					continue
				}
				sub = append(sub, opts.rescale(st.Sub(se)))
			}
			b.Avg[p] = sub.avg()
			b.Max[p] = sub.max()
		}
		res.Buckets = append(res.Buckets, b)
	}

	fmt.Fprintf(opts.Out, "Fig. 5 — stability frontier latency, trace-driven (%d messages, trace scale %.2f)\n", lastSeq, scale)
	fmt.Fprintf(opts.Out, "%-10s", "seq")
	for _, p := range preds {
		fmt.Fprintf(opts.Out, " %15s", p)
	}
	fmt.Fprintln(opts.Out)
	for _, b := range res.Buckets {
		fmt.Fprintf(opts.Out, "%-10d", b.LastSeq)
		for _, p := range preds {
			fmt.Fprintf(opts.Out, " %15s", ms(b.Avg[p]))
		}
		fmt.Fprintln(opts.Out)
	}
	fmt.Fprintf(opts.Out, "%-10s", "avg(ms)")
	for _, p := range preds {
		fmt.Fprintf(opts.Out, " %15s", ms(res.Avg[p]))
	}
	fmt.Fprintln(opts.Out)
	fmt.Fprintf(opts.Out, "%-10s", "p50(ms)")
	for _, p := range preds {
		fmt.Fprintf(opts.Out, " %15s", ms(res.P50[p]))
	}
	fmt.Fprintln(opts.Out)
	fmt.Fprintf(opts.Out, "%-10s", "p99(ms)")
	for _, p := range preds {
		fmt.Fprintf(opts.Out, " %15s", ms(res.P99[p]))
	}
	fmt.Fprintln(opts.Out)
	fmt.Fprintf(opts.Out, "%-10s", "max(ms)")
	for _, p := range preds {
		fmt.Fprintf(opts.Out, " %15s", ms(res.Max[p]))
	}
	fmt.Fprintln(opts.Out)
	return res, nil
}
