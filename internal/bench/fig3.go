package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/emunet"
	"stabilizer/internal/quorum"
)

// Fig3Point is one quorum-read measurement.
type Fig3Point struct {
	MessageKB  int
	AvgLatency time.Duration
	P99Latency time.Duration
}

// Fig3Result reproduces Fig. 3: quorum read latency versus message size,
// with the site RTTs as reference lines.
type Fig3Result struct {
	Points []Fig3Point
	// RTTs are the reference ping latencies from Utah1 (the paper's
	// dashed lines): Utah1 (self, ~0), Wisconsin, Clemson.
	RTTs map[string]time.Duration
}

// Fig3 runs the §VI-A quorum read experiment: three quorum members on
// Utah1, Wisconsin and Clemson; writer on Utah2; reader on Utah1;
// Nr = Nw = 2. The expected shape: read latency tracks the Wisconsin RTT
// (the second-fastest member from Utah) and grows slightly with message
// size.
func Fig3(opts Options) (*Fig3Result, error) {
	opts = opts.normalized()
	topo := config.CloudLabTopology(1)
	matrix := emunet.CloudLabMatrix()
	c, err := startCluster(topo, matrix, opts)
	if err != nil {
		return nil, err
	}
	defer c.close()

	members := []int{1, 3, 4} // Utah1, Wisconsin, Clemson
	kvs := make([]*quorum.KV, topo.N())
	for i := 1; i <= topo.N(); i++ {
		kv, err := quorum.New(quorum.Config{
			Node:    c.node(i),
			Members: members,
			Nw:      2,
			Nr:      2,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: quorum node %d: %w", i, err)
		}
		kvs[i-1] = kv
	}
	writer := kvs[1] // Utah2
	reader := kvs[0] // Utah1

	sizesKB := []int{1, 2, 4, 8, 16, 32, 64}
	reads := 20
	if opts.Short {
		sizesKB = []int{1, 8, 64}
		reads = 5
	}

	// The raw matrix holds paper-unit latencies; only measured durations
	// need rescaling back from the compressed fabric.
	res := &Fig3Result{RTTs: map[string]time.Duration{
		"Utah1":     2 * matrix.Get(1, 2).OneWayLatency,
		"Wisconsin": 2 * matrix.Get(1, 3).OneWayLatency,
		"Clemson":   2 * matrix.Get(1, 4).OneWayLatency,
	}}

	fmt.Fprintln(opts.Out, "Fig. 3 — latency of quorum read operation (Nr = Nw = 2)")
	fmt.Fprintf(opts.Out, "reference RTTs: Wisconsin %s ms, Clemson %s ms\n",
		ms(res.RTTs["Wisconsin"]), ms(res.RTTs["Clemson"]))
	fmt.Fprintf(opts.Out, "%12s %12s %12s\n", "size(KB)", "avg(ms)", "p99(ms)")

	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	for _, kb := range sizesKB {
		payload := randomBytes(rng, kb<<10)
		key := fmt.Sprintf("obj-%dk", kb)
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		if _, err := writer.Write(wctx, key, payload); err != nil {
			cancel()
			return nil, fmt.Errorf("bench: quorum write %dKB: %w", kb, err)
		}
		cancel()

		var lats series
		for i := 0; i < reads; i++ {
			rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			d, err := reader.ReadLatency(rctx, key)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("bench: quorum read %dKB: %w", kb, err)
			}
			lats = append(lats, opts.rescale(d))
		}
		p := Fig3Point{MessageKB: kb, AvgLatency: lats.avg(), P99Latency: lats.percentile(0.99)}
		res.Points = append(res.Points, p)
		fmt.Fprintf(opts.Out, "%12d %12s %12s\n", p.MessageKB, ms(p.AvgLatency), ms(p.P99Latency))
	}
	return res, nil
}
