package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/emunet"
	"stabilizer/internal/predlib"
	"stabilizer/internal/pubsub"
)

// Fig8Bucket is one second of the reconfiguration timeline.
type Fig8Bucket struct {
	Second int
	// Avg maps run name ("all sites", "three sites", "changing
	// predicate") to the mean end-to-end latency of messages sent in
	// this second.
	Avg map[string]time.Duration
}

// Fig8Result is the dynamic reconfiguration experiment outcome.
type Fig8Result struct {
	Buckets []Fig8Bucket
	Overall map[string]time.Duration
}

// fig8Runs are the three predicate regimes of Fig. 8.
var fig8Runs = []string{"all sites", "three sites", "changing predicate"}

// Fig8 reproduces the dynamic reconfiguration experiment (§VI-D): a
// reliable-broadcast application on the pub/sub prototype sends 1600 × 8 KB
// messages at 80 msg/s over the CloudLab WAN. Three runs measure the
// latency from sending until the stability frontier covers the message:
// with the all-remote-sites predicate, with an at-least-three-sites
// predicate, and with the predicate switching every five seconds between
// all sites and all-but-the-slowest (Clemson) as a subscriber there comes
// and goes. Expected shape: the changing run's latency drops toward the
// three-sites line whenever the slowest site is excluded, and the all/three
// lines differ by only a few milliseconds (Massachusetts is barely faster
// than Clemson).
func Fig8(opts Options) (*Fig8Result, error) {
	opts = opts.normalized()
	const (
		rate     = 80
		totalMsg = 1600
		slowest  = 4 // Clemson
	)
	msgs := totalMsg
	flipEvery := 5 * time.Second // paper: subscribe/unsubscribe every 5s
	if opts.Short {
		msgs = 400
		flipEvery = time.Second // the short run lasts only ~5 paper-s
	}

	allSites := predlib.AllWNodes()
	threeSites := predlib.KOfRemote(3)
	excludeSlowest := predlib.ExcludeNodes([]int{slowest})

	res := &Fig8Result{Overall: make(map[string]time.Duration)}
	perRun := make(map[string][]series) // run -> per-second latency series

	for _, run := range fig8Runs {
		buckets, overall, err := fig8Run(opts, run, msgs, rate, flipEvery, allSites, threeSites, excludeSlowest)
		if err != nil {
			return nil, err
		}
		perRun[run] = buckets
		res.Overall[run] = overall
	}

	nSec := 0
	for _, b := range perRun {
		if len(b) > nSec {
			nSec = len(b)
		}
	}
	for s := 0; s < nSec; s++ {
		bucket := Fig8Bucket{Second: s, Avg: make(map[string]time.Duration)}
		for run, bs := range perRun {
			if s < len(bs) {
				bucket.Avg[run] = bs[s].avg()
			}
		}
		res.Buckets = append(res.Buckets, bucket)
	}

	fmt.Fprintln(opts.Out, "Fig. 8 — latency under predicate dynamic reconfiguration (ms)")
	fmt.Fprintf(opts.Out, "%8s %14s %14s %20s\n", "t(s)", "all sites", "three sites", "changing predicate")
	for _, b := range res.Buckets {
		fmt.Fprintf(opts.Out, "%8d %14s %14s %20s\n",
			b.Second, ms(b.Avg["all sites"]), ms(b.Avg["three sites"]), ms(b.Avg["changing predicate"]))
	}
	fmt.Fprintf(opts.Out, "overall: all=%s ms, three=%s ms, changing=%s ms\n",
		ms(res.Overall["all sites"]), ms(res.Overall["three sites"]), ms(res.Overall["changing predicate"]))
	return res, nil
}

// fig8Run executes one regime and returns per-paper-second latency series.
func fig8Run(opts Options, run string, msgs, rate int, flipEvery time.Duration, allSites, threeSites, excludeSlowest string) ([]series, time.Duration, error) {
	topo := config.CloudLabTopology(1)
	c, err := startCluster(topo, emunet.CloudLabMatrix(), opts)
	if err != nil {
		return nil, 0, err
	}
	defer c.close()

	brokers := make([]*pubsub.Broker, topo.N())
	for i := 1; i <= topo.N(); i++ {
		b, err := pubsub.New(c.node(i))
		if err != nil {
			return nil, 0, fmt.Errorf("bench: broker %d: %w", i, err)
		}
		brokers[i-1] = b
	}
	// Reliable broadcast: every remote site subscribes.
	for i := 2; i <= topo.N(); i++ {
		brokers[i-1].Subscribe(func(pubsub.Message) {})
	}
	time.Sleep(200 * time.Millisecond)

	pub := brokers[0]
	node := pub.Node()
	const key = "fig8"
	initial := allSites
	if run == "three sites" {
		initial = threeSites
	}
	if err := node.RegisterPredicate(key, initial); err != nil {
		return nil, 0, err
	}

	// Frontier monitor stamps first-stability times (cf. Fig. 5).
	var (
		mu       sync.Mutex
		sentAt   []time.Time
		stableAt []time.Time
		covered  uint64
	)
	grow := func(s []time.Time, n uint64) []time.Time {
		for uint64(len(s)) < n {
			s = append(s, time.Time{})
		}
		return s
	}
	cancelMon, err := node.MonitorStabilityFrontier(key, func(f uint64) {
		now := time.Now()
		mu.Lock()
		stableAt = grow(stableAt, f)
		for seq := covered + 1; seq <= f; seq++ {
			stableAt[seq-1] = now
		}
		covered = f
		mu.Unlock()
	})
	if err != nil {
		return nil, 0, err
	}
	defer cancelMon()

	// The changing run flips the predicate every 5 paper-seconds,
	// emulating the slowest site's subscriber coming and going.
	stopFlip := make(chan struct{})
	var flipWg sync.WaitGroup
	if run == "changing predicate" {
		flipWg.Add(1)
		go func() {
			defer flipWg.Done()
			excluded := false
			tick := time.NewTicker(time.Duration(float64(flipEvery) / opts.TimeScale))
			defer tick.Stop()
			for {
				select {
				case <-stopFlip:
					return
				case <-tick.C:
					excluded = !excluded
					src := allSites
					if excluded {
						src = excludeSlowest
					}
					_ = node.ChangePredicate(key, src)
				}
			}
		}()
	}

	// Publish at the paced rate (compressed by the time scale).
	interval := time.Duration(float64(time.Second) / float64(rate) / opts.TimeScale)
	start := time.Now()
	next := start
	seqOf := make([]uint64, 0, msgs)
	sendTick := make([]time.Duration, 0, msgs) // paper-time offset of each send
	payload := make([]byte, 8<<10)
	for i := 0; i < msgs; i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		now := time.Now()
		seq, err := pub.Publish(payload)
		if err != nil {
			return nil, 0, err
		}
		mu.Lock()
		sentAt = grow(sentAt, seq)
		sentAt[seq-1] = now
		mu.Unlock()
		seqOf = append(seqOf, seq)
		sendTick = append(sendTick, opts.rescale(now.Sub(start)))
		next = next.Add(interval)
	}
	close(stopFlip)
	flipWg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := node.WaitFor(ctx, seqOf[len(seqOf)-1], key); err != nil {
		return nil, 0, fmt.Errorf("bench: fig8 drain (%s): %w", run, err)
	}

	mu.Lock()
	defer mu.Unlock()
	var buckets []series
	var all series
	for i, seq := range seqOf {
		se := sentAt[seq-1]
		var st time.Time
		if uint64(len(stableAt)) >= seq {
			st = stableAt[seq-1]
		}
		if se.IsZero() || st.IsZero() {
			continue
		}
		lat := opts.rescale(st.Sub(se))
		all = append(all, lat)
		sec := int(sendTick[i] / time.Second)
		for len(buckets) <= sec {
			buckets = append(buckets, nil)
		}
		buckets[sec] = append(buckets[sec], lat)
	}
	return buckets, all.avg(), nil
}
