package bench

import (
	"fmt"
	"math/rand"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/dsl"
	"stabilizer/internal/emunet"
	"stabilizer/internal/frontier"
	"stabilizer/internal/predlib"
	"stabilizer/internal/wire"
)

// LinkReport is one measured link row for Tables I/II.
type LinkReport struct {
	Name         string
	ExpectRTT    time.Duration
	MeasuredRTT  time.Duration
	ExpectMbps   float64
	MeasuredMbps float64
}

// Table1 validates the emulated EC2 WAN of Table I: for each North
// California link it measures ping RTT and bulk throughput on the shaped
// fabric and prints them against the table's values.
func Table1(opts Options) ([]LinkReport, error) {
	opts = opts.normalized()
	fmt.Fprintln(opts.Out, "Table I — network status between North California and other regions (emulated)")
	targets := []struct {
		name string
		peer int
	}{
		{"North California (intra-region)", 2},
		{"Ohio", 8},
		{"Oregon", 7},
		{"North Virginia", 3},
	}
	return probeMatrix(opts, emunet.EC2Matrix(), 1, targets)
}

// Table2 validates the emulated CloudLab WAN of Table II from Utah1.
func Table2(opts Options) ([]LinkReport, error) {
	opts = opts.normalized()
	fmt.Fprintln(opts.Out, "Table II — network performance between Utah1 and other servers (emulated)")
	targets := []struct {
		name string
		peer int
	}{
		{"Utah2", 2},
		{"Wisconsin", 3},
		{"Clemson", 4},
		{"Massachusetts", 5},
	}
	return probeMatrix(opts, emunet.CloudLabMatrix(), 1, targets)
}

func probeMatrix(opts Options, matrix *emunet.Matrix, from int, targets []struct {
	name string
	peer int
}) ([]LinkReport, error) {
	// Probes validate the emulation itself, so they always run at
	// faithful wall-clock: time compression would fold the shaper's
	// fixed scheduling overhead (tens of microseconds per hop) into the
	// rescaled numbers.
	opts.TimeScale = 1
	bulk := int64(4 << 20)
	if opts.Short {
		bulk = 1 << 20
	}
	var out []LinkReport
	fmt.Fprintf(opts.Out, "%-34s %10s %10s %12s %12s\n", "link", "lat(ms)", "meas(ms)", "thp(Mbit/s)", "meas(Mbit/s)")
	for _, t := range targets {
		link := matrix.Get(from, t.peer)
		rtt, bps, err := probeLink(opts, matrix, from, t.peer, bulk)
		if err != nil {
			return nil, fmt.Errorf("bench: probe %s: %w", t.name, err)
		}
		r := LinkReport{
			Name:         t.name,
			ExpectRTT:    2 * link.OneWayLatency,
			MeasuredRTT:  rtt,
			ExpectMbps:   link.BandwidthBps / 1e6,
			MeasuredMbps: bps / 1e6,
		}
		out = append(out, r)
		fmt.Fprintf(opts.Out, "%-34s %10s %10s %12s %12s\n",
			r.Name, ms(r.ExpectRTT), ms(r.MeasuredRTT), mbps(r.ExpectMbps*1e6), mbps(r.MeasuredMbps*1e6))
	}
	return out, nil
}

// probeLink measures RTT (median of 8 pings) and one-way bulk throughput
// over a fresh shaped connection. Results are rescaled to paper units.
func probeLink(opts Options, matrix *emunet.Matrix, from, to int, bulk int64) (time.Duration, float64, error) {
	network := opts.network(matrix)
	defer network.Close()
	l, err := network.Listen(to)
	if err != nil {
		return 0, 0, err
	}

	type recvResult struct {
		first, last time.Time
		bytes       int64
		err         error
	}
	done := make(chan recvResult, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- recvResult{err: err}
			return
		}
		defer conn.Close()
		r := wire.NewReader(conn)
		var res recvResult
		for {
			msg, err := r.Next()
			if err != nil {
				res.err = err
				done <- res
				return
			}
			d, ok := msg.(*wire.Data)
			if !ok {
				continue
			}
			switch d.Seq {
			case 0: // ping: echo back
				if err := wire.WriteFrame(conn, d); err != nil {
					res.err = err
					done <- res
					return
				}
			case 1: // bulk payload
				now := time.Now()
				if res.first.IsZero() {
					res.first = now
				}
				res.last = now
				res.bytes += int64(len(d.Payload))
				if res.bytes >= bulk {
					done <- res
					return
				}
			}
		}
	}()

	conn, err := network.Dial(from, to)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	r := wire.NewReader(conn)

	// RTT: median of 8 pings after one warmup.
	var rtts series
	for i := 0; i < 9; i++ {
		start := time.Now()
		if err := wire.WriteFrame(conn, &wire.Data{Seq: 0, Payload: []byte{1}}); err != nil {
			return 0, 0, err
		}
		if _, err := r.Next(); err != nil {
			return 0, 0, err
		}
		if i > 0 {
			rtts = append(rtts, time.Since(start))
		}
	}
	rtt := opts.rescale(rtts.percentile(0.5))

	// Bulk: stream 32 KB frames one way.
	payload := make([]byte, 32<<10)
	var sent int64
	for sent < bulk {
		if err := wire.WriteFrame(conn, &wire.Data{Seq: 1, Payload: payload}); err != nil {
			return 0, 0, err
		}
		sent += int64(len(payload))
	}
	res := <-done
	if res.err != nil {
		return 0, 0, res.err
	}
	elapsed := res.last.Sub(res.first)
	if elapsed <= 0 {
		elapsed = time.Microsecond
	}
	bps := float64(res.bytes) * 8 / opts.rescale(elapsed).Seconds()
	return rtt, bps, nil
}

// PredicateReport is one Table III row with compile/eval cost.
type PredicateReport struct {
	Name        string
	Source      string
	Instrs      int
	CompileTime time.Duration
	EvalTime    time.Duration
	Frontier    uint64
}

// Table3 compiles the six experiment predicates of Table III against the
// Fig. 2 topology and measures their compile and evaluate cost.
func Table3(opts Options) ([]PredicateReport, error) {
	opts = opts.normalized()
	topo := config.EC2Topology(1)
	env := core.NewDSLEnv(topo, frontier.NewTypes())
	table := frontier.NewTable(topo.N())
	rng := rand.New(rand.NewSource(42))
	for n := 1; n <= topo.N(); n++ {
		table.Update(n, frontier.TypeReceived, uint64(rng.Intn(1000)))
	}

	fmt.Fprintln(opts.Out, "Table III — predicates used in the experiments")
	fmt.Fprintf(opts.Out, "%-16s %7s %12s %12s  %s\n", "name", "instrs", "compile", "eval", "predicate")
	var out []PredicateReport
	for _, name := range predlib.TableIIIOrder() {
		src := predlib.TableIII(topo)[name]
		start := time.Now()
		prog, err := dsl.Compile(src, env)
		if err != nil {
			return nil, fmt.Errorf("bench: compile %s: %w", name, err)
		}
		compile := time.Since(start)

		const evals = 10000
		start = time.Now()
		var f uint64
		for i := 0; i < evals; i++ {
			f = table.EvalLocked(prog)
		}
		eval := time.Since(start) / evals

		r := PredicateReport{
			Name:        name,
			Source:      src,
			Instrs:      prog.Len(),
			CompileTime: compile,
			EvalTime:    eval,
			Frontier:    f,
		}
		out = append(out, r)
		fmt.Fprintf(opts.Out, "%-16s %7d %12v %12v  %s\n", r.Name, r.Instrs, r.CompileTime, r.EvalTime, r.Source)
	}
	return out, nil
}

// MicroDSLPoint is one cell of the §VI-A DSL-overhead microbenchmark.
type MicroDSLPoint struct {
	Operators   int
	Operands    int
	CompileTime time.Duration
	EvalTime    time.Duration
}

// MicroDSL reproduces the §VI-A microbenchmark: compile and evaluate cost
// for predicates with 1-5 operators and 5-20 operands. The paper's maxima
// (libgccjit backend) are ~30 ms compile and ~0.2 ms evaluate; the shape to
// reproduce is compile ≫ evaluate, both growing with size.
func MicroDSL(opts Options) ([]MicroDSLPoint, error) {
	opts = opts.normalized()
	const maxNodes = 20
	topo := &config.Topology{Self: 1}
	for i := 1; i <= maxNodes; i++ {
		topo.Nodes = append(topo.Nodes, config.Node{
			Name: fmt.Sprintf("n%d", i), AZ: fmt.Sprintf("az%d", i),
		})
	}
	env := core.NewDSLEnv(topo, frontier.NewTypes())
	table := frontier.NewTable(maxNodes)
	for i := 1; i <= maxNodes; i++ {
		table.Update(i, frontier.TypeReceived, uint64(i*37%101))
	}

	fmt.Fprintln(opts.Out, "§VI-A microbenchmark — DSL compile / evaluate cost")
	fmt.Fprintf(opts.Out, "%9s %9s %12s %12s\n", "operators", "operands", "compile", "eval")
	var out []MicroDSLPoint
	for ops := 1; ops <= 5; ops++ {
		for operands := 5; operands <= 20; operands += 5 {
			src := buildMicroPredicate(ops, operands)
			const reps = 200
			start := time.Now()
			var prog *dsl.Program
			for i := 0; i < reps; i++ {
				var err error
				prog, err = dsl.Compile(src, env)
				if err != nil {
					return nil, fmt.Errorf("bench: micro compile (%d ops, %d operands): %w", ops, operands, err)
				}
			}
			compile := time.Since(start) / reps

			const evals = 20000
			start = time.Now()
			for i := 0; i < evals; i++ {
				table.EvalLocked(prog)
			}
			eval := time.Since(start) / evals

			p := MicroDSLPoint{Operators: ops, Operands: operands, CompileTime: compile, EvalTime: eval}
			out = append(out, p)
			fmt.Fprintf(opts.Out, "%9d %9d %12v %12v\n", p.Operators, p.Operands, p.CompileTime, p.EvalTime)
		}
	}
	return out, nil
}

// buildMicroPredicate nests `ops` KTH_MIN operators, spreading `operands`
// node references across the nesting levels.
func buildMicroPredicate(ops, operands int) string {
	per := operands / ops
	if per < 1 {
		per = 1
	}
	used := 0
	operandList := func(n int) string {
		s := ""
		for i := 0; i < n; i++ {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("$%d", used%20+1)
			used++
		}
		return s
	}
	// Innermost level.
	inner := operands - per*(ops-1)
	src := fmt.Sprintf("KTH_MIN(1, %s)", operandList(inner))
	for level := 1; level < ops; level++ {
		src = fmt.Sprintf("KTH_MIN(1, %s, %s)", src, operandList(per))
	}
	return src
}
