package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/emunet"
	"stabilizer/internal/filebackup"
	"stabilizer/internal/paxos"
	"stabilizer/internal/predlib"
	"stabilizer/internal/wankv"
)

// Fig6Point is one file-size row: per-consistency-model sync time.
type Fig6Point struct {
	FileBytes int
	// Times maps model name ("MajorityRegions", "MajorityWNodes",
	// "OneWNode", "PhxPaxos") to completion time.
	Times map[string]time.Duration
}

// Fig6Result reproduces Fig. 6 plus the paper's headline number: the
// average end-to-end improvement of MajorityRegions over Paxos.
type Fig6Result struct {
	Points []Fig6Point
	// ImprovementOverPaxos is the mean of
	// (paxos - majorityRegions)/paxos across file sizes (paper: 24.75%).
	ImprovementOverPaxos float64
	// PaxosVsMajorityWNodes is the mean relative gap between Paxos and
	// MajorityWNodes (paper: the two curves mostly overlap, so ~0).
	PaxosVsMajorityWNodes float64
	// PerSizeImprovement maps file size to that row's
	// (paxos - majorityRegions)/paxos.
	PerSizeImprovement map[int]float64
}

// fig6Predicates are the consistency models measured in Fig. 6.
var fig6Predicates = []string{
	predlib.MajorityRegionsKey,
	predlib.MajorityWNodesKey,
	predlib.OneWNodeKey,
}

// Fig6 runs the file-based experiment (§VI-B): one file at a time is
// synchronized from node 1 of the Fig. 2 EC2 topology, and we record the
// time until the chosen consistency model is satisfied — for three
// Stabilizer predicates and for a pipelined Multi-Paxos baseline whose
// topology-indifferent majority rule must wait for the ⌈(N+1)/2⌉-th
// fastest acknowledgment. Expected shape: Paxos ≈ MajorityWNodes (curves
// overlap), both slower than MajorityRegions, with the gap growing with
// file size; OneWNode is fastest.
func Fig6(opts Options) (*Fig6Result, error) {
	opts = opts.normalized()
	topo := config.EC2Topology(1)
	c, err := startCluster(topo, emunet.EC2Matrix(), opts)
	if err != nil {
		return nil, err
	}
	defer c.close()

	sender := c.node(1)
	svc := filebackup.New(wankv.New(sender))
	if err := svc.RegisterTableIII(); err != nil {
		return nil, err
	}
	// Receivers run no K/V mirror: both systems are measured on their
	// network-level acknowledgment rule ("received" acks vs paxos
	// accepted watermarks), keeping the comparison symmetric.

	// Paxos baseline over the same emulated WAN. Applied entries are
	// discarded to bound memory during the 100 MB runs (PhxPaxos-style
	// deployments rely on application snapshots the same way).
	replicas := make([]*paxos.Replica, topo.N())
	for i := 1; i <= topo.N(); i++ {
		replicas[i-1] = paxos.NewReplica(paxos.NewCoreBus(c.node(i)), paxos.WithDiscardApplied())
	}
	leader := replicas[0]
	campCtx, campCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer campCancel()
	if err := leader.Campaign(campCtx); err != nil {
		return nil, fmt.Errorf("bench: paxos campaign: %w", err)
	}

	sizes := []int{1 << 10, 10 << 10, 100 << 10, 1 << 20, 10 << 20, 100 << 20}
	repeats := 3
	if opts.Short {
		sizes = []int{1 << 10, 100 << 10, 1 << 20}
		repeats = 1
	}

	res := &Fig6Result{PerSizeImprovement: make(map[int]float64, len(sizes))}
	rng := rand.New(rand.NewSource(6))
	fmt.Fprintln(opts.Out, "Fig. 6 — file synchronization completion time (ms)")
	fmt.Fprintf(opts.Out, "%12s %16s %16s %16s %16s %9s\n",
		"size(B)", "MajorityRegions", "MajorityWNodes", "OneWNode", "PhxPaxos", "MR-gain")

	var sumImp, sumWNodeGap float64
	for si, size := range sizes {
		point := Fig6Point{FileBytes: size, Times: make(map[string]time.Duration)}
		data := randomBytes(rng, size)

		for rep := 0; rep < repeats; rep++ {
			// Stabilizer: one backup, all predicate times from the
			// same send via concurrent waiters.
			times, err := measureBackup(opts, svc, fmt.Sprintf("f6-%d-%d", si, rep), data)
			if err != nil {
				return nil, err
			}
			for p, d := range times {
				point.Times[p] += d
			}
			// Paxos: pipeline the same chunks, time the last commit.
			d, err := measurePaxos(opts, leader, data)
			if err != nil {
				return nil, err
			}
			point.Times["PhxPaxos"] += d
		}
		for p := range point.Times {
			point.Times[p] /= time.Duration(repeats)
		}
		res.Points = append(res.Points, point)

		px := point.Times["PhxPaxos"].Seconds()
		mr := point.Times[predlib.MajorityRegionsKey].Seconds()
		mw := point.Times[predlib.MajorityWNodesKey].Seconds()
		var imp float64
		if px > 0 {
			imp = (px - mr) / px
			sumImp += imp
			sumWNodeGap += (px - mw) / px
		}
		res.PerSizeImprovement[size] = imp
		fmt.Fprintf(opts.Out, "%12d %16s %16s %16s %16s %8.1f%%\n",
			size,
			ms(point.Times[predlib.MajorityRegionsKey]),
			ms(point.Times[predlib.MajorityWNodesKey]),
			ms(point.Times[predlib.OneWNodeKey]),
			ms(point.Times["PhxPaxos"]),
			imp*100)
	}
	res.ImprovementOverPaxos = sumImp / float64(len(sizes))
	res.PaxosVsMajorityWNodes = sumWNodeGap / float64(len(sizes))
	fmt.Fprintf(opts.Out, "MajorityRegions improvement over Paxos: %.2f%% (paper: 24.75%%)\n",
		res.ImprovementOverPaxos*100)
	fmt.Fprintf(opts.Out, "Paxos vs MajorityWNodes gap: %.2f%% (paper: curves overlap)\n",
		res.PaxosVsMajorityWNodes*100)
	return res, nil
}

// measureBackup backs a file up once and measures, concurrently, the time
// until each Fig. 6 predicate is satisfied.
func measureBackup(opts Options, svc *filebackup.Service, name string, data []byte) (map[string]time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	start := time.Now()
	bres, err := svc.Backup(name, data)
	if err != nil {
		return nil, fmt.Errorf("bench: backup: %w", err)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		out  = make(map[string]time.Duration, len(fig6Predicates))
		werr error
	)
	for _, p := range fig6Predicates {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := svc.Wait(ctx, bres, p); err != nil {
				mu.Lock()
				if werr == nil {
					werr = fmt.Errorf("bench: wait %s: %w", p, err)
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			out[p] = opts.rescale(time.Since(start))
			mu.Unlock()
		}()
	}
	wg.Wait()
	if werr != nil {
		return nil, werr
	}
	return out, nil
}

// measurePaxos replicates the file's 8 KB chunks through the paxos log and
// measures the time until the final chunk commits.
func measurePaxos(opts Options, leader *paxos.Replica, data []byte) (time.Duration, error) {
	const chunk = filebackup.DefaultChunkSize
	start := time.Now()
	var last <-chan error
	for lo := 0; lo < len(data); lo += chunk {
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		_, done, err := leader.ProposeAsync(data[lo:hi])
		if err != nil {
			return 0, fmt.Errorf("bench: paxos propose: %w", err)
		}
		last = done
	}
	if last == nil {
		return 0, nil
	}
	select {
	case err := <-last:
		if err != nil {
			return 0, fmt.Errorf("bench: paxos commit: %w", err)
		}
	case <-time.After(10 * time.Minute):
		return 0, fmt.Errorf("bench: paxos commit timed out")
	}
	return opts.rescale(time.Since(start)), nil
}
