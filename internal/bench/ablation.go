package bench

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/dsl"
	"stabilizer/internal/emunet"
	"stabilizer/internal/frontier"
	"stabilizer/internal/predlib"
)

// AblationDSLResult compares three predicate evaluation strategies
// (DESIGN.md ablation 1 — the paper's JIT claim): the compiled bytecode
// program, the pre-resolved tree-walking interpreter, and the naive
// re-parse-per-evaluation strategy a system without compile-once support
// would be stuck with.
type AblationDSLResult struct {
	CompiledEval    time.Duration
	InterpretedEval time.Duration
	ReparseEval     time.Duration
	// Speedup is interpreted/compiled; SpeedupVsReparse is
	// reparse/compiled — the one that justifies compile-once.
	Speedup          float64
	SpeedupVsReparse float64
}

// AblationDSL measures per-evaluation cost of the DSL backends on the
// MajorityWNodes predicate over the Fig. 2 topology.
func AblationDSL(opts Options) (*AblationDSLResult, error) {
	opts = opts.normalized()
	topo := config.EC2Topology(1)
	env := core.NewDSLEnv(topo, frontier.NewTypes())
	table := frontier.NewTable(topo.N())
	for i := 1; i <= topo.N(); i++ {
		table.Update(i, frontier.TypeReceived, uint64(i*13%29))
	}
	src := predlib.MajorityWNodes()
	ast, err := dsl.Parse(src)
	if err != nil {
		return nil, err
	}
	resolved, err := dsl.Resolve(ast, env)
	if err != nil {
		return nil, err
	}
	prog := dsl.CompileResolved(src, resolved)

	const evals = 2_000_000
	start := time.Now()
	for i := 0; i < evals; i++ {
		prog.Eval(table)
	}
	compiled := time.Since(start) / evals

	start = time.Now()
	for i := 0; i < evals; i++ {
		resolved.Eval(table)
	}
	interp := time.Since(start) / evals

	const reparses = 20000
	start = time.Now()
	for i := 0; i < reparses; i++ {
		p, err := dsl.Compile(src, env)
		if err != nil {
			return nil, err
		}
		p.Eval(table)
	}
	reparse := time.Since(start) / reparses

	res := &AblationDSLResult{
		CompiledEval:     compiled,
		InterpretedEval:  interp,
		ReparseEval:      reparse,
		Speedup:          float64(interp) / float64(compiled),
		SpeedupVsReparse: float64(reparse) / float64(compiled),
	}
	fmt.Fprintf(opts.Out,
		"Ablation (DSL backend): compiled %v/eval, interpreted %v/eval (%.2fx), reparse-per-eval %v (%.0fx)\n",
		res.CompiledEval, res.InterpretedEval, res.Speedup, res.ReparseEval, res.SpeedupVsReparse)
	return res, nil
}

// AblationControlPlaneResult compares asynchronous control/data separation
// against a Paxos-style blocking round per message (DESIGN.md ablation 2,
// the paper's §III-B claim).
type AblationControlPlaneResult struct {
	Messages      int
	PipelinedTime time.Duration
	BlockingTime  time.Duration
	Speedup       float64
}

// AblationControlPlane streams N messages to majority stability twice: once
// pipelined (send everything, wait once) and once blocking (wait for
// majority stability before each next send).
func AblationControlPlane(opts Options) (*AblationControlPlaneResult, error) {
	opts = opts.normalized()
	msgs := 400
	if opts.Short {
		msgs = 80
	}
	payload := make([]byte, 1<<10)

	run := func(blocking bool) (time.Duration, error) {
		topo := config.EC2Topology(1)
		c, err := startCluster(topo, emunet.EC2Matrix(), opts)
		if err != nil {
			return 0, err
		}
		defer c.close()
		sender := c.node(1)
		if err := sender.RegisterPredicate("maj", predlib.MajorityWNodes()); err != nil {
			return 0, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()

		start := time.Now()
		var last uint64
		for i := 0; i < msgs; i++ {
			seq, err := sender.Send(payload)
			if err != nil {
				return 0, err
			}
			last = seq
			if blocking {
				if err := sender.WaitFor(ctx, seq, "maj"); err != nil {
					return 0, err
				}
			}
		}
		if !blocking {
			if err := sender.WaitFor(ctx, last, "maj"); err != nil {
				return 0, err
			}
		}
		return opts.rescale(time.Since(start)), nil
	}

	pipelined, err := run(false)
	if err != nil {
		return nil, err
	}
	blocking, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &AblationControlPlaneResult{
		Messages:      msgs,
		PipelinedTime: pipelined,
		BlockingTime:  blocking,
		Speedup:       float64(blocking) / float64(pipelined),
	}
	fmt.Fprintf(opts.Out, "Ablation (control plane): %d msgs to majority stability — pipelined %v, per-message blocking %v (%.1fx)\n",
		res.Messages, res.PipelinedTime, res.BlockingTime, res.Speedup)
	return res, nil
}

// AblationDeferredStabilizationResult compares inline stabilization (every
// ACK ingested evaluates each affected predicate on the data path) against
// the deferred control-plane tick (DESIGN.md §14): with a population of
// predicates watching the same stream, batching ACK ingestion amortizes
// evaluation — many table updates per tick collapse into one drain.
type AblationDeferredStabilizationResult struct {
	Messages   int
	Predicates int
	// InlineTime / DeferredTime stream the same workload to majority
	// stability with StabilizeInterval 0 and with the default tick.
	InlineTime   time.Duration
	DeferredTime time.Duration
	// Speedup is inline/deferred (>1 means the tick wins).
	Speedup float64
}

// AblationDeferredStabilization streams messages to majority stability with
// a crowd of predicates registered over the same stream, once with inline
// stabilization and once with the default deferred tick.
func AblationDeferredStabilization(opts Options) (*AblationDeferredStabilizationResult, error) {
	opts = opts.normalized()
	msgs, preds := 2000, 256
	if opts.Short {
		msgs, preds = 400, 64
	}
	payload := make([]byte, 1<<10)

	run := func(interval time.Duration) (time.Duration, error) {
		topo := config.EC2Topology(1)
		o := opts
		o.StabilizeInterval = interval
		c, err := startCluster(topo, emunet.EC2Matrix(), o)
		if err != nil {
			return 0, err
		}
		defer c.close()
		sender := c.node(1)
		if err := sender.RegisterPredicate("maj", predlib.MajorityWNodes()); err != nil {
			return 0, err
		}
		for i := 0; i < preds; i++ {
			if err := sender.RegisterPredicate(fmt.Sprintf("watch%d", i), predlib.MajorityWNodes()); err != nil {
				return 0, err
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		start := time.Now()
		var last uint64
		for i := 0; i < msgs; i++ {
			if last, err = sender.Send(payload); err != nil {
				return 0, err
			}
		}
		if err := sender.WaitFor(ctx, last, "maj"); err != nil {
			return 0, err
		}
		return opts.rescale(time.Since(start)), nil
	}

	inline, err := run(0)
	if err != nil {
		return nil, err
	}
	deferred, err := run(core.DefaultStabilizeInterval)
	if err != nil {
		return nil, err
	}
	res := &AblationDeferredStabilizationResult{
		Messages:     msgs,
		Predicates:   preds + 1,
		InlineTime:   inline,
		DeferredTime: deferred,
		Speedup:      float64(inline) / float64(deferred),
	}
	fmt.Fprintf(opts.Out,
		"Ablation (deferred stabilization): %d msgs, %d predicates — inline %v, %v tick %v (%.2fx)\n",
		res.Messages, res.Predicates, res.InlineTime, core.DefaultStabilizeInterval, res.DeferredTime, res.Speedup)
	return res, nil
}

// AblationBatchingResult shows monotonic upcall batching (DESIGN.md
// ablation 4): under load, frontier monitors fire far fewer times than the
// number of messages, because a report for message Y implies stability of
// everything before Y.
type AblationBatchingResult struct {
	Messages int
	Upcalls  int64
	Ratio    float64
}

// AblationBatching streams messages at full speed and counts monitor
// upcalls on the AllWNodes predicate.
func AblationBatching(opts Options) (*AblationBatchingResult, error) {
	opts = opts.normalized()
	msgs := 2000
	if opts.Short {
		msgs = 400
	}
	topo := config.EC2Topology(1)
	c, err := startCluster(topo, emunet.EC2Matrix(), opts)
	if err != nil {
		return nil, err
	}
	defer c.close()
	sender := c.node(1)
	if err := sender.RegisterPredicate("all", predlib.AllWNodes()); err != nil {
		return nil, err
	}
	var upcalls atomic.Int64
	cancel, err := sender.MonitorStabilityFrontier("all", func(uint64) {
		upcalls.Add(1)
	})
	if err != nil {
		return nil, err
	}
	defer cancel()

	payload := make([]byte, 4<<10)
	var last uint64
	for i := 0; i < msgs; i++ {
		last, err = sender.Send(payload)
		if err != nil {
			return nil, err
		}
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancelCtx()
	if err := sender.WaitFor(ctx, last, "all"); err != nil {
		return nil, err
	}
	res := &AblationBatchingResult{
		Messages: msgs,
		Upcalls:  upcalls.Load(),
		Ratio:    float64(msgs) / float64(upcalls.Load()),
	}
	fmt.Fprintf(opts.Out, "Ablation (upcall batching): %d messages produced %d frontier upcalls (%.1f msgs/upcall)\n",
		res.Messages, res.Upcalls, res.Ratio)
	return res, nil
}
