package bench

import (
	"fmt"
	"sync"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/emunet"
	"stabilizer/internal/pubsub"
	"stabilizer/internal/pulsarlike"
)

// Fig7SiteStats is one (system, rate, site) cell.
type Fig7SiteStats struct {
	AvgLatency time.Duration
	Throughput float64 // bits per second
	Messages   int
}

// Fig7Point is one sending-rate row.
type Fig7Point struct {
	RateMsgsPerSec int
	// Sites maps site name (UT2, WI, CLEM, MA) to its stats.
	Sites map[string]Fig7SiteStats
}

// Fig7Result holds both systems' series.
type Fig7Result struct {
	Stabilizer []Fig7Point
	Pulsar     []Fig7Point
}

// fig7Sites maps node index to the paper's site labels.
var fig7Sites = map[int]string{2: "UT2", 3: "WI", 4: "CLEM", 5: "MA"}

// Fig7 reproduces the pub/sub comparison (§VI-C): a publisher on Utah1
// streams 8 KB messages at increasing rates to subscribers on Utah2,
// Wisconsin, Clemson and Massachusetts, once through the Stabilizer
// pub/sub prototype and once through the Pulsar-like baseline.
//
// Expected shape: both systems bottleneck at the same WAN throughput with
// comparable latency on the WAN links (latency rising sharply once the
// rate exceeds link bandwidth); on the LAN link (UT2) the Pulsar-like
// baseline's latency grows with rate because of GC pauses while
// Stabilizer's stays flat.
//
// This experiment runs at TimeScale 1 regardless of Options.TimeScale:
// compressing time here would change the rate/bandwidth ratio that the
// figure is about.
func Fig7(opts Options) (*Fig7Result, error) {
	opts = opts.normalized()
	opts.TimeScale = 1

	rates := []int{250, 500, 1000, 2000, 4000, 8000, 16000}
	msgs := 10000
	if opts.Short {
		rates = []int{500, 4000, 16000}
		msgs = 1200
	}

	res := &Fig7Result{}
	for _, rate := range rates {
		p, err := fig7Stabilizer(opts, rate, msgs)
		if err != nil {
			return nil, err
		}
		res.Stabilizer = append(res.Stabilizer, *p)
	}
	for _, rate := range rates {
		p, err := fig7Pulsar(opts, rate, msgs)
		if err != nil {
			return nil, err
		}
		res.Pulsar = append(res.Pulsar, *p)
	}

	for _, block := range []struct {
		name   string
		points []Fig7Point
	}{{"Stabilizer", res.Stabilizer}, {"Pulsar-like", res.Pulsar}} {
		fmt.Fprintf(opts.Out, "Fig. 7 — %s pub/sub: latency (ms) / throughput (Mbit/s) per site\n", block.name)
		fmt.Fprintf(opts.Out, "%10s", "rate")
		for _, n := range []int{2, 3, 4, 5} {
			fmt.Fprintf(opts.Out, " %18s", fig7Sites[n])
		}
		fmt.Fprintln(opts.Out)
		for _, p := range block.points {
			fmt.Fprintf(opts.Out, "%10d", p.RateMsgsPerSec)
			for _, n := range []int{2, 3, 4, 5} {
				s := p.Sites[fig7Sites[n]]
				fmt.Fprintf(opts.Out, " %8s/%9s", ms(s.AvgLatency), mbps(s.Throughput))
			}
			fmt.Fprintln(opts.Out)
		}
	}
	return res, nil
}

// fig7Collector accumulates per-site latency and arrival statistics.
type fig7Collector struct {
	mu    sync.Mutex
	lat   map[string]series
	first map[string]time.Time
	last  map[string]time.Time
	bytes map[string]int64
	count map[string]int
	done  chan struct{}
	want  int
	total int
}

func newFig7Collector(wantPerSite, sites int) *fig7Collector {
	return &fig7Collector{
		lat:   make(map[string]series),
		first: make(map[string]time.Time),
		last:  make(map[string]time.Time),
		bytes: make(map[string]int64),
		count: make(map[string]int),
		done:  make(chan struct{}),
		want:  wantPerSite * sites,
	}
}

func (col *fig7Collector) add(site string, sentAt, recvAt time.Time, n int) {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.lat[site] = append(col.lat[site], recvAt.Sub(sentAt))
	if col.first[site].IsZero() {
		col.first[site] = recvAt
	}
	col.last[site] = recvAt
	col.bytes[site] += int64(n)
	col.count[site]++
	col.total++
	if col.total == col.want {
		close(col.done)
	}
}

func (col *fig7Collector) point(rate int) *Fig7Point {
	col.mu.Lock()
	defer col.mu.Unlock()
	p := &Fig7Point{RateMsgsPerSec: rate, Sites: make(map[string]Fig7SiteStats)}
	for site, lats := range col.lat {
		elapsed := col.last[site].Sub(col.first[site]).Seconds()
		var thp float64
		if elapsed > 0 {
			thp = float64(col.bytes[site]) * 8 / elapsed
		}
		p.Sites[site] = Fig7SiteStats{
			AvgLatency: lats.avg(),
			Throughput: thp,
			Messages:   col.count[site],
		}
	}
	return p
}

func fig7Stabilizer(opts Options, rate, msgs int) (*Fig7Point, error) {
	topo := config.CloudLabTopology(1)
	c, err := startCluster(topo, emunet.CloudLabMatrix(), opts)
	if err != nil {
		return nil, err
	}
	defer c.close()

	brokers := make([]*pubsub.Broker, topo.N())
	for i := 1; i <= topo.N(); i++ {
		b, err := pubsub.New(c.node(i))
		if err != nil {
			return nil, fmt.Errorf("bench: broker %d: %w", i, err)
		}
		brokers[i-1] = b
	}
	col := newFig7Collector(msgs, len(fig7Sites))
	for idx, site := range fig7Sites {
		site := site
		brokers[idx-1].Subscribe(func(m pubsub.Message) {
			col.add(site, m.SentAt, m.ReceivedAt, len(m.Payload))
		})
	}
	// Let subscription announcements settle.
	time.Sleep(200 * time.Millisecond)

	payload := make([]byte, 8<<10)
	if err := pace(rate, msgs, func() error {
		_, err := brokers[0].Publish(payload)
		return err
	}); err != nil {
		return nil, err
	}
	select {
	case <-col.done:
	case <-time.After(5 * time.Minute):
		return nil, fmt.Errorf("bench: fig7 stabilizer rate %d: only %d/%d deliveries", rate, col.total, col.want)
	}
	return col.point(rate), nil
}

func fig7Pulsar(opts Options, rate, msgs int) (*Fig7Point, error) {
	network := opts.network(emunet.CloudLabMatrix())
	defer network.Close()

	brokers := make([]*pulsarlike.Broker, 5)
	for i := 1; i <= 5; i++ {
		b, err := pulsarlike.New(pulsarlike.Config{Self: i, N: 5, Network: network})
		if err != nil {
			return nil, err
		}
		if err := b.Start(); err != nil {
			return nil, err
		}
		brokers[i-1] = b
	}
	defer func() {
		for _, b := range brokers {
			_ = b.Close()
		}
	}()

	col := newFig7Collector(msgs, len(fig7Sites))
	for idx, site := range fig7Sites {
		site := site
		brokers[idx-1].Subscribe(func(m pulsarlike.Message) {
			col.add(site, m.SentAt, m.ReceivedAt, len(m.Payload))
		})
	}

	payload := make([]byte, 8<<10)
	if err := pace(rate, msgs, func() error {
		_, err := brokers[0].Publish(payload)
		return err
	}); err != nil {
		return nil, err
	}
	select {
	case <-col.done:
	case <-time.After(5 * time.Minute):
		return nil, fmt.Errorf("bench: fig7 pulsar rate %d: only %d/%d deliveries", rate, col.total, col.want)
	}
	return col.point(rate), nil
}

// pace invokes fn `count` times at the given per-second rate.
func pace(rate, count int, fn func() error) error {
	interval := time.Second / time.Duration(rate)
	next := time.Now()
	for i := 0; i < count; i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if err := fn(); err != nil {
			return err
		}
		next = next.Add(interval)
	}
	return nil
}
