package bench

import (
	"io"
	"testing"
	"time"

	"stabilizer/internal/predlib"
)

// These tests run the Short experiment configurations and assert the
// qualitative reproduction targets — who wins, which curves order how —
// rather than absolute numbers (see EXPERIMENTS.md for those).

func shortOpts() Options {
	return Options{Out: io.Discard, TimeScale: 10, Short: true}
}

// skipUnderRace skips timing-shape assertions in -race builds.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("timing-shape assertions are unreliable under the race detector")
	}
}

func TestTable1EmulationAccuracy(t *testing.T) {
	skipUnderRace(t)
	if testing.Short() {
		t.Skip("emulation probe runs at wall-clock speed")
	}
	rows, err := Table1(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Latency within +3ms of target (shaper overhead only adds).
		if r.MeasuredRTT < r.ExpectRTT || r.MeasuredRTT > r.ExpectRTT+3*time.Millisecond {
			t.Errorf("%s: RTT %v, want %v..+3ms", r.Name, r.MeasuredRTT, r.ExpectRTT)
		}
		// Throughput within 15% of target.
		if ratio := r.MeasuredMbps / r.ExpectMbps; ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: throughput %.1f, want ≈%.1f", r.Name, r.MeasuredMbps, r.ExpectMbps)
		}
	}
}

func TestTable3AllPredicatesCompileAndEvalFast(t *testing.T) {
	rows, err := Table3(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper's property: one-time compilation, then negligible
		// evaluation cost on the critical path.
		if r.EvalTime > 50*time.Microsecond {
			t.Errorf("%s evaluates in %v; far above critical-path budget", r.Name, r.EvalTime)
		}
		if r.Instrs == 0 {
			t.Errorf("%s compiled to an empty program", r.Name)
		}
	}
}

func TestMicroDSLCompileDominatesEval(t *testing.T) {
	skipUnderRace(t)
	points, err := MicroDSL(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 20 { // 5 operators × 4 operand counts
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.CompileTime < p.EvalTime {
			t.Errorf("%d ops/%d operands: compile %v < eval %v (paper shape: compile ≫ eval)",
				p.Operators, p.Operands, p.CompileTime, p.EvalTime)
		}
	}
}

func TestFig3ReadTracksSecondFastestMember(t *testing.T) {
	skipUnderRace(t)
	opts := shortOpts()
	opts.TimeScale = 2
	res, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	wi := res.RTTs["Wisconsin"]
	clem := res.RTTs["Clemson"]
	for _, p := range res.Points {
		// The quorum read is satisfied by self + Wisconsin; it must sit
		// near the Wisconsin RTT, clearly below Clemson's for small
		// messages.
		if p.AvgLatency < wi {
			t.Errorf("%dKB read %v faster than the Wisconsin RTT %v — impossible", p.MessageKB, p.AvgLatency, wi)
		}
		if p.MessageKB <= 8 && p.AvgLatency > clem {
			t.Errorf("%dKB read %v above the Clemson RTT %v — wrong quorum member dominating", p.MessageKB, p.AvgLatency, clem)
		}
	}
	// Latency grows (weakly) with message size.
	if last, first := res.Points[len(res.Points)-1].AvgLatency, res.Points[0].AvgLatency; last < first {
		t.Errorf("read latency shrank with size: %v -> %v", first, last)
	}
}

func TestFig4TraceHasSpikes(t *testing.T) {
	buckets, err := Fig4(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	var spikes int
	for _, b := range buckets {
		if b.MaxFile > 64<<20 {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatal("no huge-file spikes in the trace histogram")
	}
}

func TestFig5PredicateOrdering(t *testing.T) {
	skipUnderRace(t)
	res, err := Fig5(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	avg := res.Avg
	// Weaker models must not be slower than stronger ones (paper Fig. 5
	// vertical ordering).
	pairs := [][2]string{
		{predlib.OneWNodeKey, predlib.MajorityWNodesKey},
		{predlib.MajorityWNodesKey, predlib.AllWNodesKey},
		{predlib.OneRegionKey, predlib.MajorityRegionsKey},
		{predlib.MajorityRegionsKey, predlib.AllRegionsKey},
		// The paper's headline ordering: MajorityRegions beats
		// MajorityWNodes.
		{predlib.MajorityRegionsKey, predlib.MajorityWNodesKey},
	}
	for _, p := range pairs {
		weak, strong := avg[p[0]], avg[p[1]]
		if weak > strong {
			t.Errorf("avg(%s)=%v > avg(%s)=%v; ordering inverted", p[0], weak, p[1], strong)
		}
	}
	if res.Messages == 0 {
		t.Fatal("no messages measured")
	}
}

func TestFig6PaxosMatchesMajorityWNodesAndLosesToMajorityRegions(t *testing.T) {
	skipUnderRace(t)
	opts := shortOpts()
	// Latency fidelity matters: at TimeScale 10 the ~10ms MR-vs-Paxos
	// gap compresses to ~1ms and drowns in scheduler noise.
	opts.TimeScale = 2
	res, err := Fig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementOverPaxos <= 0 {
		t.Errorf("MajorityRegions does not beat Paxos: %.2f%%", res.ImprovementOverPaxos*100)
	}
	// Paxos ≈ MajorityWNodes: within ±15% on average (paper: overlap).
	if gap := res.PaxosVsMajorityWNodes; gap < -0.15 || gap > 0.15 {
		t.Errorf("Paxos vs MajorityWNodes gap %.2f%%; paper curves overlap", gap*100)
	}
	for _, p := range res.Points {
		if p.Times[predlib.OneWNodeKey] > p.Times[predlib.MajorityRegionsKey] {
			t.Errorf("%dB: OneWNode slower than MajorityRegions", p.FileBytes)
		}
	}
}

func TestFig8ThreeSitesBeatsAllSites(t *testing.T) {
	skipUnderRace(t)
	res, err := Fig8(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	all := res.Overall["all sites"]
	three := res.Overall["three sites"]
	changing := res.Overall["changing predicate"]
	if three > all {
		t.Errorf("three sites (%v) slower than all sites (%v)", three, all)
	}
	// The changing run sits between the two fixed regimes (inclusive,
	// with slack for timing noise).
	if changing > all+all/5 {
		t.Errorf("changing run (%v) far above the all-sites ceiling (%v)", changing, all)
	}
}

func TestAblationsHoldDesignClaims(t *testing.T) {
	skipUnderRace(t)
	dsl, err := AblationDSL(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Compiled and interpreted are equivalent at Fig.-2 predicate sizes;
	// the claim that must hold is compile-once vs reparse-per-eval.
	if dsl.SpeedupVsReparse < 2 {
		t.Errorf("compile-once only %.2fx faster than reparse-per-eval", dsl.SpeedupVsReparse)
	}
	if dsl.Speedup < 0.5 {
		t.Errorf("compiled evaluator anomalously slow vs interpreter: %.2fx", dsl.Speedup)
	}
	cp, err := AblationControlPlane(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if cp.Speedup < 2 {
		t.Errorf("control/data separation speedup only %.2fx; pipelining broken?", cp.Speedup)
	}
	ba, err := AblationBatching(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ba.Ratio < 1 {
		t.Errorf("upcall batching ratio %.2f; more upcalls than messages", ba.Ratio)
	}
	ds, err := AblationDeferredStabilization(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The claim that must hold: batching stabilization onto a tick does not
	// regress end-to-end time-to-stability (WAN latency dominates; the tick
	// only trades control-plane CPU for at most one tick of lag). Generous
	// slack absorbs emulated-network timing noise.
	if ds.Speedup < 0.5 {
		t.Errorf("deferred stabilization %.2fx vs inline; tick overhead regressed time-to-stability (inline %v, deferred %v)",
			ds.Speedup, ds.InlineTime, ds.DeferredTime)
	}
}
