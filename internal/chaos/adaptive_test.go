package chaos

import (
	"strings"
	"testing"
	"time"

	"stabilizer/internal/adaptive"
	"stabilizer/internal/metrics"
)

// TestAdaptiveDemo runs the closed-loop consistency acceptance scenario
// under a blackhole: the histogram goes silent, the stall detector steps
// the ladder down within one SLO long-window, and the controller climbs
// back to the strongest rung after the heal plus cooldown — with invariant
// 10 (guarantee honesty, hysteresis, release consistency) checked
// throughout.
func TestAdaptiveDemo(t *testing.T) {
	seed := soakSeed(t)
	rep, err := AdaptiveDemo(AdaptiveOptions{Seed: seed, Logf: t.Logf})
	if err != nil {
		t.Fatalf("adaptive demo failed — replay byte-for-byte with STABILIZER_CHAOS_SEED=%d:\n%v", seed, err)
	}
	if rep.Downgrades == 0 || rep.Upgrades == 0 || rep.ValidatedReleases == 0 {
		t.Fatalf("loop not exercised: down=%d up=%d validated=%d",
			rep.Downgrades, rep.Upgrades, rep.ValidatedReleases)
	}
	if got := rep.Transitions[0].Reason; got != "stall" {
		t.Fatalf("blackhole downgrade reason %q, want \"stall\"", got)
	}
	t.Logf("adaptive demo passed: seed=%d fingerprint=%s victim=%d head=%d down=%d up=%d validated=%d",
		seed, rep.Schedule.Fingerprint(), rep.Victim, rep.Head,
		rep.Downgrades, rep.Upgrades, rep.ValidatedReleases)
}

// TestAdaptiveDemoSpike drives the same loop through the burn detector: a
// latency spike keeps samples flowing but far past the SLO target, so the
// downgrade must carry the "slo-burn" reason instead of "stall".
func TestAdaptiveDemoSpike(t *testing.T) {
	if testing.Short() {
		t.Skip("spike variant skipped in -short; the blackhole demo covers invariant 10")
	}
	seed := soakSeed(t)
	rep, err := AdaptiveDemo(AdaptiveOptions{Seed: seed, Fault: AdaptiveFaultSpike, Logf: t.Logf})
	if err != nil {
		t.Fatalf("adaptive spike demo failed — replay byte-for-byte with STABILIZER_CHAOS_SEED=%d:\n%v", seed, err)
	}
	if got := rep.Transitions[0].Reason; got != "slo-burn" {
		t.Fatalf("spike downgrade reason %q, want \"slo-burn\"", got)
	}
	t.Logf("adaptive spike demo passed: seed=%d fingerprint=%s victim=%d down=%d up=%d validated=%d",
		seed, rep.Schedule.Fingerprint(), rep.Victim, rep.Downgrades, rep.Upgrades, rep.ValidatedReleases)
}

// TestAdaptiveDemoScheduleReplayIsIdentical pins the acceptance requirement
// that the same seed reproduces the adaptive demo's fault plan byte for
// byte, for both fault shapes.
func TestAdaptiveDemoScheduleReplayIsIdentical(t *testing.T) {
	for _, fault := range []AdaptiveFault{AdaptiveFaultBlackhole, AdaptiveFaultSpike} {
		o := AdaptiveOptions{Seed: soakSeed(t), Fault: fault}
		a, b := o.Schedule(), o.Schedule()
		if a.String() != b.String() {
			t.Fatalf("seed %d fault %s: replayed schedule differs:\n%s\n--- vs ---\n%s", o.Seed, fault, a, b)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("seed %d fault %s: fingerprints differ: %s vs %s", o.Seed, fault, a.Fingerprint(), b.Fingerprint())
		}
		if v1, v2 := o.Victim(), o.Victim(); v1 != v2 {
			t.Fatalf("seed %d fault %s: victim choice not deterministic: %d vs %d", o.Seed, fault, v1, v2)
		}
	}
}

// flapHost is a minimal adaptive.Host whose histogram the test feeds
// directly, so a paused controller can be marched through transitions on a
// synthetic clock.
type flapHost struct{ hist *metrics.Histogram }

func (h *flapHost) ChangePredicate(key, source string) error     { return nil }
func (h *flapHost) StabilityFrontier(key string) (uint64, error) { return 1, nil }
func (h *flapHost) NextSeq() uint64                              { return 2 }
func (h *flapHost) StabilityLatencyHistogram(string) *metrics.Histogram {
	return h.hist
}

// TestCheckerAdaptiveFlapDetection proves the invariant-10 spacing check
// actually fires: a controller legally stepping every 30s must be flagged
// when the checker is told the hysteresis contract was one hour.
func TestCheckerAdaptiveFlapDetection(t *testing.T) {
	ladder, err := adaptive.NewLadder(
		adaptive.Rung{Name: "a", Source: "MIN($ALLWNODES)"},
		adaptive.Rung{Name: "b", Source: "KTH_MIN(3, $ALLWNODES)"},
		adaptive.Rung{Name: "c", Source: "KTH_MIN(2, $ALLWNODES)"},
	)
	if err != nil {
		t.Fatal(err)
	}
	host := &flapHost{hist: metrics.NewHistogram(metrics.LatencyOpts)}
	ctrl, err := adaptive.StartPaused(host, "p", ladder, adaptive.Config{
		Target:      time.Millisecond,
		Objective:   0.75,
		ShortWindow: time.Minute,
		LongWindow:  2 * time.Minute,
		Burn:        2,
		CheckEvery:  15 * time.Second,
		MinDwell:    time.Second,
		Cooldown:    time.Hour,
		StallAfter:  time.Hour,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	c := NewChecker(1, []int{1})
	detach := c.AttachAdaptive(ctrl, time.Hour) // contract far above the real dwell
	defer detach()

	now := time.Unix(0, 0)
	for i := 0; i < 12 && len(ctrl.History()) < 2; i++ {
		for j := 0; j < 50; j++ {
			host.hist.Observe(int64(time.Second)) // every sample blows the SLO
		}
		now = now.Add(30 * time.Second)
		ctrl.Tick(now)
	}
	if got := len(ctrl.History()); got != 2 {
		t.Fatalf("controller recorded %d transitions, want 2", got)
	}
	vs := c.Violations()
	if len(vs) == 0 {
		t.Fatal("AttachAdaptive missed transitions closer together than the asserted MinDwell")
	}
	found := false
	for _, v := range vs {
		found = found || strings.Contains(v, "adaptive flap")
	}
	if !found {
		t.Fatalf("no flap violation among: %v", vs)
	}
}
