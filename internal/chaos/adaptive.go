package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"stabilizer/internal/adaptive"
	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
	"stabilizer/internal/faultinject"
	"stabilizer/internal/metrics"
)

// AttachAdaptive subscribes to an adaptive controller's transition stream
// and enforces the flap half of invariant 10: consecutive transitions are
// at least minDwell apart, every transition moves exactly one rung, and the
// direction label matches the move. It returns the hook's cancel func.
func (c *Checker) AttachAdaptive(ctrl *adaptive.Controller, minDwell time.Duration) func() {
	var mu sync.Mutex
	var last time.Time
	var have bool
	return ctrl.OnTransition(func(tr adaptive.Transition) {
		if tr.To != tr.From+1 && tr.To != tr.From-1 {
			c.Violatef("adaptive transition skips rungs: %q %d->%d", tr.Predicate, tr.From, tr.To)
		}
		if (tr.Direction == adaptive.DirectionDown && tr.To != tr.From+1) ||
			(tr.Direction == adaptive.DirectionUp && tr.To != tr.From-1) {
			c.Violatef("adaptive direction mislabeled: %q %d->%d labeled %q",
				tr.Predicate, tr.From, tr.To, tr.Direction)
		}
		mu.Lock()
		defer mu.Unlock()
		if have && tr.At.Sub(last) < minDwell {
			c.Violatef("adaptive flap: %q transitions %v apart, MinDwell is %v",
				tr.Predicate, tr.At.Sub(last), minDwell)
		}
		last, have = tr.At, true
	})
}

// CheckAdaptiveHonesty sweeps the guarantee half of invariant 10: no
// controller may report a rung stronger (lower index) than the predicate
// actually installed in the registry. The reported rung is re-read around
// the registry read; a mismatch means a transition is in flight and the
// sample is skipped — the honesty ordering inside the controller makes the
// remaining samples race-free in both directions.
func (c *Checker) CheckAdaptiveHonesty(nodes []*core.Node) {
	for _, n := range nodes {
		for _, ctrl := range n.AdaptiveControllers() {
			r1 := ctrl.RungIndex()
			src, err := n.PredicateSource(ctrl.Key())
			r2 := ctrl.RungIndex()
			if err != nil || r1 != r2 {
				continue
			}
			idx := ctrl.Ladder().IndexOfSource(src)
			if idx == -1 {
				c.Violatef("adaptive honesty: node %d predicate %q installed source %q is not a ladder rung",
					n.Self(), ctrl.Key(), src)
				continue
			}
			if r1 < idx {
				c.Violatef("adaptive honesty: node %d predicate %q reports rung %d but only rung %d (weaker) is installed",
					n.Self(), ctrl.Key(), r1, idx)
			}
		}
	}
}

// AdaptiveFault picks the fault the demo injects against the ladder.
type AdaptiveFault string

const (
	// AdaptiveFaultBlackhole darkens the sender→victim data path: the
	// strongest rung stalls outright (no histogram samples at all), so the
	// downgrade must come from the controller's stall detector.
	AdaptiveFaultBlackhole AdaptiveFault = "blackhole"
	// AdaptiveFaultSpike delays the sender→victim data path: stabilization
	// still completes but far past the SLO target, so the downgrade must
	// come from the multiwindow burn detector.
	AdaptiveFaultSpike AdaptiveFault = "spike"
)

// AdaptiveOptions parameterizes AdaptiveDemo. The zero value (plus a Seed)
// runs the canonical scenario: 4 nodes, a 3-rung all→majority→2-of ladder
// on the sender, one seeded victim link faulted mid-run and healed.
type AdaptiveOptions struct {
	// Seed pins the victim choice and the fabric jitter. Zero means 1.
	Seed int64
	// Fault picks the injected fault (default AdaptiveFaultBlackhole).
	Fault AdaptiveFault
	// N is the cluster size (default 4). Node 1 is always the sender and
	// runs the controller.
	N int
	// Warmup is the healthy phase before the fault engages (default 500ms):
	// long enough for the controller to see clean traffic, and the phase in
	// which any transition at all is a violation.
	Warmup time.Duration
	// FaultFor is how long the fault stays engaged (default 1.2s). The
	// controller's Cooldown must exceed it so the recovery climb happens
	// after the heal, not as a mid-fault probe.
	FaultFor time.Duration
	// SpikeBy is the extra one-way delay of AdaptiveFaultSpike
	// (default 300ms).
	SpikeBy time.Duration
	// SendEvery is the pump's inter-message gap (default 5ms).
	SendEvery time.Duration
	// DrainTimeout bounds the post-heal recovery and convergence waits
	// (default 20s).
	DrainTimeout time.Duration
	// HeartbeatEvery / PeerTimeout tune the failure detectors
	// (defaults 25ms / 250ms).
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	// Adaptive is the controller tuning; the zero value picks demo-scale
	// windows (Target 40ms, Short 200ms, Long 600ms, Burn 2, CheckEvery
	// 25ms, MinDwell 100ms, Cooldown 1.5s, StallAfter 200ms).
	Adaptive adaptive.Config
	// Logf, when set, traces the run (fault, transitions, recovery).
	Logf func(format string, args ...any)
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Fault == "" {
		o.Fault = AdaptiveFaultBlackhole
	}
	if o.N == 0 {
		o.N = 4
	}
	if o.Warmup == 0 {
		o.Warmup = 500 * time.Millisecond
	}
	if o.FaultFor == 0 {
		o.FaultFor = 1200 * time.Millisecond
	}
	if o.SpikeBy == 0 {
		o.SpikeBy = 300 * time.Millisecond
	}
	if o.SendEvery == 0 {
		o.SendEvery = 5 * time.Millisecond
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 20 * time.Second
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = 25 * time.Millisecond
	}
	if o.PeerTimeout == 0 {
		o.PeerTimeout = 250 * time.Millisecond
	}
	if o.Adaptive.Target == 0 {
		o.Adaptive = adaptive.Config{
			Target:      40 * time.Millisecond,
			Objective:   0.9,
			ShortWindow: 200 * time.Millisecond,
			LongWindow:  600 * time.Millisecond,
			Burn:        2,
			CheckEvery:  25 * time.Millisecond,
			MinDwell:    100 * time.Millisecond,
			Cooldown:    1500 * time.Millisecond,
			StallAfter:  200 * time.Millisecond,
		}
		if o.Fault == AdaptiveFaultSpike {
			// A spike pauses the frontier for one SpikeBy before the first
			// delayed message lands; push the stall detector past that so
			// the downgrade provably comes from the burn detector.
			o.Adaptive.StallAfter = 2 * o.SpikeBy
		}
	}
	return o
}

// Victim returns the faulted peer the seed selects: a deterministic draw
// from the non-sender nodes 2..N.
func (o AdaptiveOptions) Victim() int {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	return 2 + rng.Intn(o.N-1)
}

// Schedule returns the run's fault plan — one seeded victim-link fault,
// healed after FaultFor — as a canonical, replayable artifact. AdaptiveDemo
// applies and heals the event itself, so the schedule is the replay
// fingerprint, not a Runner input.
func (o AdaptiveOptions) Schedule() *faultinject.Schedule {
	o = o.withDefaults()
	ev := faultinject.Event{
		At:   o.Warmup,
		Dur:  o.FaultFor,
		Kind: faultinject.KindBlackhole,
		Nodes: []int{
			1, o.Victim(),
		},
	}
	if o.Fault == AdaptiveFaultSpike {
		ev.Kind = faultinject.KindLatencySpike
		ev.Extra = o.SpikeBy
	}
	return &faultinject.Schedule{Seed: o.Seed, Events: []faultinject.Event{ev}}
}

// AdaptiveKey is the predicate key AdaptiveDemo's controller drives.
const AdaptiveKey = "adaptive"

// AdaptiveReport summarizes an AdaptiveDemo run.
type AdaptiveReport struct {
	// Schedule is the executed fault plan; its Fingerprint is the replay
	// artifact.
	Schedule *faultinject.Schedule
	// Victim is the faulted peer.
	Victim int
	// Head is the sender's final stream head.
	Head uint64
	// Transitions is the controller's recorded history, oldest first.
	Transitions []adaptive.Transition
	// Downgrades and Upgrades count transitions by direction.
	Downgrades, Upgrades int
	// ValidatedReleases counts WaitFor completions that were successfully
	// cross-checked against the rung active at release time.
	ValidatedReleases int
	// Violations lists every invariant violation (empty on success).
	Violations []string
}

// AdaptiveDemo runs the closed-loop consistency acceptance scenario: a
// sender pumps under an SLO-driven 3-rung ladder while the seeded victim
// link is faulted and later healed. It demonstrates — and the checker
// enforces — that
//
//   - the controller steps down within one SLO long-window of the fault
//     (via the burn detector under a latency spike, via the stall detector
//     under a blackhole, where the histogram is silent);
//   - it steps back up after the heal plus one cooldown, and never during
//     the healthy warmup;
//   - invariant 10 holds throughout: the reported rung is never stronger
//     than the installed predicate, transitions never come closer together
//     than MinDwell, and WaitFor callers observe released sequences
//     consistent with the rung active at release time.
func AdaptiveDemo(o AdaptiveOptions) (*AdaptiveReport, error) {
	o = o.withDefaults()
	victim := o.Victim()
	sched := o.Schedule()
	rep := &AdaptiveReport{Schedule: sched, Victim: victim}
	if o.Logf != nil {
		o.Logf("chaos: adaptive demo seed=%d fingerprint=%s fault=%s victim=%d",
			o.Seed, sched.Fingerprint(), o.Fault, victim)
	}

	matrix := emunet.NewMatrix()
	matrix.Default = emunet.Link{
		OneWayLatency: 2 * time.Millisecond,
		Jitter:        time.Millisecond,
		BandwidthBps:  emunet.Mbps(200),
	}
	fabric := emunet.NewMemNetwork(matrix)
	fabric.Seed(o.Seed)
	defer fabric.Close()

	inj := faultinject.New(metrics.NewRegistry())
	defer inj.Close()
	fabric.SetConnHook(inj.Hook())

	topo := &config.Topology{Self: 1}
	for i := 1; i <= o.N; i++ {
		topo.Nodes = append(topo.Nodes, config.Node{
			Name:   fmt.Sprintf("node%d", i),
			AZ:     fmt.Sprintf("az%d", i),
			Region: fmt.Sprintf("region%d", i),
		})
	}

	maj := o.N/2 + 1
	ladder, err := adaptive.NewLadder(
		adaptive.Rung{Name: "all", Source: "MIN($ALLWNODES)"},
		adaptive.Rung{Name: "majority", Source: fmt.Sprintf("KTH_MIN(%d, $ALLWNODES)", maj)},
		adaptive.Rung{Name: "two", Source: "KTH_MIN(2, $ALLWNODES)"},
	)
	if err != nil {
		return rep, fmt.Errorf("chaos: build ladder: %w", err)
	}

	check := NewChecker(o.N, []int{1})
	nodes := make([]*core.Node, o.N)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				_ = n.Close()
			}
		}
	}()
	for i := 1; i <= o.N; i++ {
		cfg := core.Config{
			Topology:       topo.WithSelf(i),
			Network:        fabric,
			HeartbeatEvery: o.HeartbeatEvery,
			PeerTimeout:    o.PeerTimeout,
		}
		if i == 1 {
			cfg.Adaptive = &core.AdaptiveSpec{Key: AdaptiveKey, Ladder: ladder, Config: o.Adaptive}
		}
		n, err := core.Open(cfg)
		if err != nil {
			return rep, fmt.Errorf("chaos: open node %d: %w", i, err)
		}
		check.Attach(n)
		nodes[i-1] = n
	}
	sender := nodes[0]
	ctrl := sender.AdaptiveController(AdaptiveKey)

	detach := check.AttachAdaptive(ctrl, o.Adaptive.MinDwell)
	defer detach()
	if o.Logf != nil {
		ctrl.OnTransition(func(tr adaptive.Transition) {
			o.Logf("chaos: adaptive %s %s->%s (%s) shortBurn=%.1f longBurn=%.1f",
				tr.Direction, tr.FromRung.Name, tr.ToRung.Name, tr.Reason, tr.ShortBurn, tr.LongBurn)
		})
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup

	// Invariant sweeps: frontier/FIFO/phantom-stability plus the honesty
	// half of invariant 10.
	aux.Add(1)
	go func() {
		defer aux.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				check.CrossCheck(nodes)
				check.CheckAdaptiveHonesty(nodes)
			}
		}
	}()

	// Pump: append continuously so the stall detector has head-past-frontier
	// evidence during the blackhole phase.
	pumpCtx, pumpCancel := context.WithCancel(context.Background())
	defer pumpCancel()
	aux.Add(1)
	go func() {
		defer aux.Done()
		payload := make([]byte, 128)
		tick := time.NewTicker(o.SendEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if _, err := sender.SendCtx(pumpCtx, payload); err != nil && pumpCtx.Err() == nil {
					check.Violatef("pump send failed: %v", err)
					return
				}
			}
		}
	}()

	// Release validator: the WaitFor-caller half of invariant 10. Each probe
	// appends its own message, waits for it on the adaptive predicate, and —
	// when no transition happened between just-before-append and
	// after-release (so the release provably ran under the sandwiched rung)
	// — re-evaluates that rung's source: ack counters are monotonic, so the
	// released sequence must still satisfy it.
	var validated, timedOut int64
	var valMu sync.Mutex
	aux.Add(1)
	go func() {
		defer aux.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			hist0 := len(ctrl.History())
			r1 := ctrl.RungIndex()
			src1, err := sender.PredicateSource(AdaptiveKey)
			if err != nil {
				continue
			}
			seq, err := sender.SendCtx(pumpCtx, []byte("probe"))
			if err != nil {
				continue
			}
			wctx, wcancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
			werr := sender.WaitFor(wctx, seq, AdaptiveKey)
			wcancel()
			src2, err2 := sender.PredicateSource(AdaptiveKey)
			r2 := ctrl.RungIndex()
			hist1 := len(ctrl.History())
			valMu.Lock()
			if werr != nil {
				timedOut++ // stalled phase; the controller is expected to fix this
				valMu.Unlock()
				continue
			}
			valMu.Unlock()
			if err2 != nil || src1 != src2 || r1 != r2 || hist0 != hist1 {
				continue // rung changed mid-probe; release rung is ambiguous
			}
			v, everr := sender.EvalFor(1, src1)
			if everr != nil {
				check.Violatef("release validation: rung %d source %q unevaluable: %v", r1, src1, everr)
				continue
			}
			if v < seq {
				check.Violatef("release ahead of active rung: WaitFor(%d) returned on rung %d (%q) but its own evaluation is %d",
					seq, r1, src1, v)
			}
			valMu.Lock()
			validated++
			valMu.Unlock()
		}
	}()

	// Phase 1 — healthy warmup: any transition here is a flap by definition.
	time.Sleep(o.Warmup)
	if h := ctrl.History(); len(h) != 0 {
		check.Violatef("controller transitioned during healthy warmup: %+v", h[0])
	}

	// Phase 2 — fault. Under a blackhole the histogram goes silent and the
	// stall detector must act; under a spike the burn detector must.
	faultStart := time.Now()
	switch o.Fault {
	case AdaptiveFaultSpike:
		inj.Spike(1, victim, o.SpikeBy)
	default:
		inj.Blackhole(1, victim)
	}
	if o.Logf != nil {
		o.Logf("chaos: fault engaged (%s 1->%d)", o.Fault, victim)
	}
	time.Sleep(o.FaultFor)

	// Phase 3 — heal, then wait out the recovery climb back to rung 0.
	switch o.Fault {
	case AdaptiveFaultSpike:
		inj.ClearSpike(1, victim, o.SpikeBy)
	default:
		inj.HealBlackhole(1, victim)
	}
	healTime := time.Now()
	if o.Logf != nil {
		o.Logf("chaos: fault healed")
	}
	recoverDeadline := time.Now().Add(o.DrainTimeout)
	for time.Now().Before(recoverDeadline) {
		if ctrl.RungIndex() == 0 && len(ctrl.History()) >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Let the restored strongest rung serve traffic briefly before teardown.
	time.Sleep(300 * time.Millisecond)

	close(stop)
	pumpCancel()
	aux.Wait()

	head := sender.NextSeq() - 1
	rep.Head = head
	rep.Transitions = ctrl.History()
	for _, tr := range rep.Transitions {
		switch tr.Direction {
		case adaptive.DirectionDown:
			rep.Downgrades++
		case adaptive.DirectionUp:
			rep.Upgrades++
		}
	}
	valMu.Lock()
	rep.ValidatedReleases = int(validated)
	valMu.Unlock()

	// The demo must have exercised the loop it exists to prove.
	if rep.Downgrades == 0 {
		check.Violatef("controller never stepped down under the %s fault (transitions: %d)", o.Fault, len(rep.Transitions))
	} else {
		first := rep.Transitions[0]
		if first.Direction != adaptive.DirectionDown {
			check.Violatef("first transition was %q, want a downgrade", first.Direction)
		}
		// Under a spike the first over-target sample cannot exist until the
		// first delayed delivery lands, SpikeBy after the fault engages —
		// the burn windows only start filling then.
		lagBound := o.Adaptive.LongWindow
		if o.Fault == AdaptiveFaultSpike {
			lagBound += o.SpikeBy
		}
		if lag := first.At.Sub(faultStart); lag > lagBound {
			check.Violatef("downgrade took %v after the fault, bound is %v", lag, lagBound)
		}
		wantReason := "stall"
		if o.Fault == AdaptiveFaultSpike {
			wantReason = "slo-burn"
		}
		if first.Reason != wantReason {
			check.Violatef("downgrade reason %q, want %q for a %s fault", first.Reason, wantReason, o.Fault)
		}
	}
	if rep.Upgrades == 0 {
		check.Violatef("controller never recovered after the heal (rung %d, transitions: %d)",
			ctrl.RungIndex(), len(rep.Transitions))
	} else {
		for _, tr := range rep.Transitions {
			if tr.Direction != adaptive.DirectionUp {
				continue
			}
			if tr.Reason != "recovered" {
				check.Violatef("upgrade reason %q, want \"recovered\"", tr.Reason)
			}
			if tr.At.Before(healTime) {
				check.Violatef("upgrade at %v preceded the heal at %v: cooldown %v should outlast the fault",
					tr.At, healTime, o.Adaptive.Cooldown)
			}
		}
	}
	if rep.Downgrades != rep.Upgrades || ctrl.RungIndex() != 0 {
		check.Violatef("controller did not return to the strongest rung: rung %d after %d down / %d up",
			ctrl.RungIndex(), rep.Downgrades, rep.Upgrades)
	}
	if src, err := sender.PredicateSource(AdaptiveKey); err != nil || src != ladder.Rung(0).Source {
		check.Violatef("final installed predicate %q (%v), want rung 0 %q", src, err, ladder.Rung(0).Source)
	}
	if rep.ValidatedReleases == 0 {
		check.Violatef("release validator never completed a probe (timeouts: %d)", timedOut)
	}

	// Convergence: after the heal everyone — the victim included — drains
	// the full stream, and the restored strongest rung reaches the head.
	deadline := time.Now().Add(o.DrainTimeout)
	converged := func() bool {
		for i, n := range nodes {
			if i == 0 {
				continue
			}
			if n.RecvLast(1) < head || check.Delivered(i+1, 1) < head {
				return false
			}
		}
		return true
	}
	for !converged() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !converged() {
		for i, n := range nodes {
			if i == 0 {
				continue
			}
			check.Violatef("node %d did not drain after heal: recvLast %d delivered %d of head %d",
				i+1, n.RecvLast(1), check.Delivered(i+1, 1), head)
		}
	}
	wctx, wcancel := context.WithDeadline(context.Background(), deadline)
	if err := sender.WaitFor(wctx, head, AdaptiveKey); err != nil {
		check.Violatef("restored rung 0 never reached head %d: %v", head, err)
	}
	wcancel()

	check.CrossCheck(nodes)
	check.CheckAdaptiveHonesty(nodes)

	rep.Violations = check.Violations()
	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("chaos: adaptive demo: %d invariant violation(s), seed %d (fingerprint %s):\n%s",
			len(rep.Violations), o.Seed, sched.Fingerprint(), joinLines(rep.Violations))
	}
	return rep, nil
}
