package chaos

import (
	"os"
	"testing"
	"time"

	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
	"stabilizer/internal/faultinject"
	"stabilizer/internal/transport"
)

// spillSoakOptions is invariant 9's cluster configuration: FlowSpill send
// logs with a small memory cap, auto-reclaim on (so bounded memory is a
// live claim, not an artifact of never truncating), crash_restart excluded
// (reclaim requirement), and one backlog_partition that isolates a receiver
// until the senders' backlog — almost all of it on disk — crosses the
// threshold. Senders pump deterministic seq-derived payloads so every
// delivery is checked byte-for-byte against ground truth.
func spillSoakOptions(seed int64, dir string) Options {
	var kinds []faultinject.Kind
	for _, k := range faultinject.AllKinds() {
		if k != faultinject.KindCrashRestart {
			kinds = append(kinds, k)
		}
	}
	return Options{
		Seed:  seed,
		Kinds: kinds,
		Flow: transport.FlowConfig{
			MaxBytes:          64 << 10,
			Mode:              transport.FlowSpill,
			SpillDir:          dir,
			SpillSegmentBytes: 64 << 10,
		},
		LogStripes:        2,
		AutoReclaim:       true,
		PayloadBytes:      4 << 10,
		SendEvery:         time.Millisecond,
		BacklogFault:      2 << 20,
		Horizon:           2 * time.Second,
		StabilizeInterval: core.DefaultStabilizeInterval,
	}
}

// TestChaosSoakSpill is chaos invariant 9 end to end: under a seeded
// schedule whose centerpiece is a backlog-driven partition (the "day-long
// region outage" measured in bytes, not wall time), every node's in-memory
// send tier stays under the cap while the true backlog grows far past it
// onto disk, and after the heal every peer's delivered stream is gap-free
// FIFO and byte-identical to ground truth — invariants 1-8 still ride the
// same run. The full profile (STABILIZER_CHAOS_FULL=1) pushes the backlog
// past 1 GiB before healing; -short keeps the same shape at a few MiB.
func TestChaosSoakSpill(t *testing.T) {
	seed := soakSeed(t)
	o := spillSoakOptions(seed, t.TempDir())
	o.Logf = t.Logf
	switch {
	case os.Getenv("STABILIZER_CHAOS_FULL") != "":
		// 1 GiB of backlog needs a fat pump and a fat post-heal drain:
		// 64 KiB payloads every ms from two senders accumulate ~128 MB/s,
		// and a 4 Gbps fabric drains the gigabyte within the timeout.
		o.PayloadBytes = 64 << 10
		o.BacklogFault = 1 << 30
		o.Horizon = 30 * time.Second
		o.BandwidthBps = emunet.Mbps(4000)
		o.DrainTimeout = 180 * time.Second
	case testing.Short():
		o.Horizon = 1500 * time.Millisecond
		o.BacklogFault = 1 << 20
	}
	rep, err := Soak(o)
	if err != nil {
		if rep != nil {
			t.Logf("schedule (fingerprint %s):\n%s", rep.Schedule.Fingerprint(), rep.Schedule)
		}
		t.Fatalf("spill soak failed — replay byte-for-byte with STABILIZER_CHAOS_SEED=%d:\n%v", seed, err)
	}
	last := rep.Schedule.Events[len(rep.Schedule.Events)-1]
	if last.Kind != faultinject.KindBacklogPartition || last.Bytes != o.BacklogFault {
		t.Fatalf("seed %d: schedule missing the backlog partition event:\n%s", seed, rep.Schedule)
	}
	// A spill soak that never spilled proves nothing: require the disk
	// tier to have held more than the entire memory cap, and the post-heal
	// drain to have actually read segments back.
	if rep.PeakSpilledBytes <= o.Flow.MaxBytes {
		t.Fatalf("seed %d: peak spill %d never meaningfully exceeded the %d memory cap — invariant 9 unexercised",
			seed, rep.PeakSpilledBytes, o.Flow.MaxBytes)
	}
	if rep.SpillReadbackBytes == 0 {
		t.Fatalf("seed %d: backlog converged but no bytes were read back from disk", seed)
	}
	t.Logf("spill soak passed: seed=%d fingerprint=%s heads=%v deliveries=%d peakSpill=%d readback=%d",
		seed, rep.Schedule.Fingerprint(), rep.Heads, rep.Deliveries, rep.PeakSpilledBytes, rep.SpillReadbackBytes)
}
