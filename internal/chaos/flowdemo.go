package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
	"stabilizer/internal/faultinject"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
	"stabilizer/internal/transport"
)

// FlowOptions parameterizes FlowDemo, the bounded-memory degraded-mode
// scenario: one sender with a hard send-log cap, one peer blackholed for the
// whole run. The zero value (plus a Seed) runs the canonical demo: 4 nodes,
// a 64 KiB cap, 512-byte payloads.
type FlowOptions struct {
	// Seed pins the victim choice, the schedule rendering, and the fabric
	// jitter. Zero means seed 1.
	Seed int64
	// N is the cluster size (default 4). Node 1 is always the sender.
	N int
	// Horizon is how long the pump runs (default 2s). The blackhole lasts
	// the entire horizon — it is never healed.
	Horizon time.Duration
	// SendEvery is the pump's inter-message gap (default 1ms).
	SendEvery time.Duration
	// PayloadBytes sizes each message (default 512) and doubles as the
	// bounded-memory slack: admission control may overshoot the cap by at
	// most one in-flight payload.
	PayloadBytes int
	// CapBytes is the sender's send-log byte cap (default 64 KiB).
	CapBytes int64
	// StallDeadline is the stall monitor's no-progress deadline
	// (default 150ms).
	StallDeadline time.Duration
	// DrainTimeout bounds the post-pump convergence wait (default 20s).
	DrainTimeout time.Duration
	// HeartbeatEvery / PeerTimeout tune the failure detectors
	// (defaults 25ms / 200ms).
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	// Trace configures the per-op flight recorder on every node. The
	// default samples every op into a 16Ki-event ring, so the demo's
	// stall reports always ship a recorder tail for the blamed victim
	// (invariant 7's stall half, enforced via AttachStallTraces).
	Trace optrace.Config
	// Logf, when set, traces the run (fault, stall, fallback, drain).
	Logf func(format string, args ...any)
}

func (o FlowOptions) withDefaults() FlowOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.N == 0 {
		o.N = 4
	}
	if o.Horizon == 0 {
		o.Horizon = 2 * time.Second
	}
	if o.SendEvery == 0 {
		o.SendEvery = time.Millisecond
	}
	if o.PayloadBytes == 0 {
		o.PayloadBytes = 512
	}
	if o.CapBytes == 0 {
		o.CapBytes = 64 << 10
	}
	if o.StallDeadline == 0 {
		o.StallDeadline = 150 * time.Millisecond
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 20 * time.Second
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = 25 * time.Millisecond
	}
	if o.PeerTimeout == 0 {
		o.PeerTimeout = 200 * time.Millisecond
	}
	if !o.Trace.Enabled() {
		o.Trace = optrace.Config{SampleEvery: 1, RingSize: 1 << 14}
	}
	return o
}

// Victim returns the blackholed peer the seed selects: a deterministic draw
// from the non-sender nodes 2..N.
func (o FlowOptions) Victim() int {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	return 2 + rng.Intn(o.N-1)
}

// Schedule returns the run's fault plan — a single whole-horizon blackhole
// of the sender→victim direction — as a canonical, replayable artifact.
// FlowDemo applies the event itself (and never heals it: "whole run" means
// the victim stays dark past the last check), so the schedule is the replay
// fingerprint, not a Runner input.
func (o FlowOptions) Schedule() *faultinject.Schedule {
	o = o.withDefaults()
	return &faultinject.Schedule{Seed: o.Seed, Events: []faultinject.Event{
		{At: 0, Dur: o.Horizon, Kind: faultinject.KindBlackhole, Nodes: []int{1, o.Victim()}},
	}}
}

// FlowReport summarizes a FlowDemo run.
type FlowReport struct {
	// Schedule is the executed fault plan; its Fingerprint is the replay
	// artifact.
	Schedule *faultinject.Schedule
	// Victim is the blackholed peer.
	Victim int
	// Head is the sender's final stream head.
	Head uint64
	// FallbackHead is the head at the moment the reclaim predicate was
	// swapped to the majority fallback (0 if the fallback never fired).
	FallbackHead uint64
	// MaxLogBytes is the largest send-log occupancy any sweep observed.
	MaxLogBytes int64
	// BlockedAppends counts appends that waited on admission control.
	BlockedAppends int64
	// StallReports counts degraded-mode notifications the sender emitted.
	StallReports int
	// Violations lists every invariant violation (empty on success).
	Violations []string
}

// FlowDemo runs the bounded-memory acceptance scenario: the sender pumps
// under a hard send-log cap while one peer is blackholed for the entire run.
// It demonstrates — and the checker enforces — that
//
//   - memory stays bounded: send-log bytes never exceed the cap plus one
//     in-flight payload (invariant 5), because admission control blocks the
//     pump once the stalled full-set reclaim predicate pins the log;
//   - degraded mode is honest: the stall monitor blames exactly the
//     blackholed peer (invariant 6), and Node.Health names it too;
//   - the fallback restores progress: when the app (this harness) reacts to
//     the stall notification by swapping reclaim to a majority predicate,
//     truncation resumes, blocked appends drain, and appends to
//     healthy-majority predicates keep completing to the end of the run.
func FlowDemo(o FlowOptions) (*FlowReport, error) {
	o = o.withDefaults()
	victim := o.Victim()
	sched := o.Schedule()
	rep := &FlowReport{Schedule: sched, Victim: victim}
	if o.Logf != nil {
		o.Logf("chaos: flow demo seed=%d fingerprint=%s victim=%d cap=%dB", o.Seed, sched.Fingerprint(), victim, o.CapBytes)
	}

	matrix := emunet.NewMatrix()
	matrix.Default = emunet.Link{
		OneWayLatency: 2 * time.Millisecond,
		Jitter:        time.Millisecond,
		BandwidthBps:  emunet.Mbps(200),
	}
	fabric := emunet.NewMemNetwork(matrix)
	fabric.Seed(o.Seed)
	defer fabric.Close()

	inj := faultinject.New(metrics.NewRegistry())
	defer inj.Close()
	fabric.SetConnHook(inj.Hook())

	topo := &config.Topology{Self: 1}
	for i := 1; i <= o.N; i++ {
		topo.Nodes = append(topo.Nodes, config.Node{
			Name:   fmt.Sprintf("node%d", i),
			AZ:     fmt.Sprintf("az%d", i),
			Region: fmt.Sprintf("region%d", i),
		})
	}

	check := NewChecker(o.N, []int{1})
	nodes := make([]*core.Node, o.N)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				_ = n.Close()
			}
		}
	}()
	for i := 1; i <= o.N; i++ {
		n, err := core.Open(core.Config{
			Topology:       topo.WithSelf(i),
			Network:        fabric,
			HeartbeatEvery: o.HeartbeatEvery,
			PeerTimeout:    o.PeerTimeout,
			Flow: transport.FlowConfig{
				MaxBytes: o.CapBytes,
				Mode:     transport.FlowBlock,
			},
			Stall: core.StallConfig{Deadline: o.StallDeadline},
			Trace: o.Trace,
			// Auto-reclaim stays ON: bounded memory requires truncation, and
			// the demo's whole point is watching reclaim stall and fall back.
		})
		if err != nil {
			return rep, fmt.Errorf("chaos: open node %d: %w", i, err)
		}
		check.Attach(n)
		check.AttachStallHonesty(n, func(peer int) bool { return peer == victim })
		check.AttachStallTraces(n)
		nodes[i-1] = n
	}
	sender := nodes[0]

	maj := o.N/2 + 1
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		return rep, fmt.Errorf("chaos: register 'all': %w", err)
	}
	if err := sender.RegisterPredicate("maj", fmt.Sprintf("KTH_MIN(%d, $ALLWNODES)", maj)); err != nil {
		return rep, fmt.Errorf("chaos: register 'maj': %w", err)
	}

	// Degraded-mode notification → fallback trigger. The app pattern under
	// test: on a reclaim stall naming the victim, wait for real backpressure
	// (the log actually full), then swap reclaim to a majority predicate so
	// truncation no longer waits on the dark peer.
	var (
		stallCount     atomic.Int64
		reclaimStalled atomic.Bool
		fallbackHead   atomic.Uint64
	)
	sender.OnStall(func(r core.StallReport) {
		stallCount.Add(1)
		if o.Logf != nil {
			o.Logf("chaos: stall report: predicate %q frontier %d/%d blames %v", r.Predicate, r.Frontier, r.Head, r.Peers)
		}
		if r.Predicate == core.ReclaimPredicateKey {
			reclaimStalled.Store(true)
		}
	})

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if !reclaimStalled.Load() || !sender.Health().Backpressured {
				continue
			}
			fallbackHead.Store(sender.NextSeq() - 1)
			if err := sender.ChangeReclaimPredicate(fmt.Sprintf("KTH_MIN(%d, $ALLWNODES)", maj)); err != nil {
				check.Violatef("reclaim fallback failed: %v", err)
			} else if o.Logf != nil {
				o.Logf("chaos: reclaim fallback to majority at head %d", fallbackHead.Load())
			}
			return
		}
	}()

	// Invariant sweeps: phantom stability plus bounded memory, and the
	// high-water bookkeeping for the report.
	aux.Add(1)
	go func() {
		defer aux.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				check.CrossCheck(nodes)
				check.CheckBounded(nodes, o.CapBytes, int64(o.PayloadBytes))
				if b := sender.BufferedBytes(); b > rep.MaxLogBytes {
					rep.MaxLogBytes = b
				}
			}
		}
	}()

	// The whole-run fault: sender→victim data path dark from the first byte.
	inj.Blackhole(1, victim)

	// Pump under the cap. SendCtx so a blocked append can be aborted at
	// teardown if the fallback path is broken — the run then fails on
	// assertions instead of hanging.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		payload := make([]byte, o.PayloadBytes)
		tick := time.NewTicker(o.SendEvery)
		defer tick.Stop()
		horizon := time.NewTimer(o.Horizon)
		defer horizon.Stop()
		for {
			select {
			case <-horizon.C:
				return
			case <-tick.C:
				if _, err := sender.SendCtx(ctx, payload); err != nil {
					if ctx.Err() == nil {
						check.Violatef("pump send failed: %v", err)
					}
					return
				}
			}
		}
	}()
	select {
	case <-pumpDone:
	case <-time.After(o.Horizon + o.DrainTimeout):
		cancel() // aborts an append stuck past the fallback window
		<-pumpDone
		check.Violatef("pump did not finish within horizon+drain: fallback never unblocked the log")
	}

	head := sender.NextSeq() - 1
	rep.Head = head
	h := sender.Health()
	rep.FallbackHead = fallbackHead.Load()
	rep.BlockedAppends = h.BlockedAppends
	rep.StallReports = int(stallCount.Load())

	// The demo must actually have exercised the degraded path.
	if rep.FallbackHead == 0 {
		check.Violatef("reclaim fallback never fired (stalls=%d, backpressured=%v)", rep.StallReports, h.Backpressured)
	} else if head <= rep.FallbackHead {
		check.Violatef("appends stopped after fallback: head %d never passed fallback head %d", head, rep.FallbackHead)
	}
	if rep.BlockedAppends == 0 {
		check.Violatef("admission control never engaged: 0 blocked appends at cap %d", o.CapBytes)
	}
	// Health must name exactly the blackholed peer as the stall cause on the
	// full-set predicate.
	foundAll := false
	for _, ph := range h.Predicates {
		if ph.Key != "all" {
			continue
		}
		foundAll = true
		if !ph.Stalled || len(ph.Blamed) != 1 || ph.Blamed[0].Peer != victim {
			check.Violatef("Health misnames the stall cause: predicate 'all' stalled=%v blamed=%+v, want exactly peer %d",
				ph.Stalled, ph.Blamed, victim)
		}
	}
	if !foundAll {
		check.Violatef("Health has no entry for predicate 'all'")
	}

	// Healthy-majority convergence: every node but the victim drains the full
	// stream, and the sender's majority predicate reaches the head.
	deadline := time.Now().Add(o.DrainTimeout)
	converged := func() bool {
		for i, n := range nodes {
			if i+1 == victim || i == 0 {
				continue
			}
			if n.RecvLast(1) < head || check.Delivered(i+1, 1) < head {
				return false
			}
		}
		return true
	}
	for !converged() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !converged() {
		for i, n := range nodes {
			if i+1 == victim || i == 0 {
				continue
			}
			check.Violatef("healthy node %d did not drain: recvLast %d delivered %d of head %d",
				i+1, n.RecvLast(1), check.Delivered(i+1, 1), head)
		}
	}
	wctx, wcancel := context.WithDeadline(context.Background(), deadline)
	if err := sender.WaitFor(wctx, head, "maj"); err != nil {
		check.Violatef("majority predicate never reached head %d: %v", head, err)
	}
	wcancel()
	// The victim must still be dark — "whole run" means no quiet catch-up.
	if got := nodes[victim-1].RecvLast(1); got != 0 {
		check.Violatef("victim %d received %d messages through a whole-run blackhole", victim, got)
	}

	close(stop)
	aux.Wait()
	check.CrossCheck(nodes)
	check.CheckBounded(nodes, o.CapBytes, int64(o.PayloadBytes))

	rep.Violations = check.Violations()
	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("chaos: flow demo: %d invariant violation(s), seed %d (fingerprint %s):\n%s",
			len(rep.Violations), o.Seed, sched.Fingerprint(), joinLines(rep.Violations))
	}
	return rep, nil
}
