package chaos

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
	"stabilizer/internal/faultinject"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
	"stabilizer/internal/transport"
)

// Options parameterizes a soak run. The zero value (plus a Seed) is a
// sensible short soak: a 4-node flat cluster where nodes 1 and 2 originate
// data and nodes 3 and 4 are crashable receivers.
type Options struct {
	// Seed pins the fault schedule AND the fabric's jitter, making the
	// whole run replayable. Zero means seed 1.
	Seed int64
	// N is the cluster size (default 4).
	N int
	// Senders originate data and register stability predicates; they are
	// never crashed (a fresh-restarted primary would need checkpoint
	// plumbing the soak doesn't exercise). Default {1, 2}.
	Senders []int
	// Crashable nodes may be crash-restarted by the schedule. Defaults to
	// every non-sender. Must be disjoint from Senders.
	Crashable []int
	// Horizon is the fault-injection window (default 2.5s).
	Horizon time.Duration
	// SendEvery is each sender's inter-message gap (default 3ms).
	SendEvery time.Duration
	// DrainTimeout bounds the post-fault convergence wait (default 20s;
	// reconnect backoff alone can take ~2s after the last heal).
	DrainTimeout time.Duration
	// HeartbeatEvery / PeerTimeout tune the nodes' failure detectors
	// (defaults 25ms / 200ms — fast enough to trip during the soak).
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	// Kinds restricts the fault kinds the schedule draws from (default all).
	Kinds []faultinject.Kind
	// Flow, when enabled, caps every node's send log and turns on the
	// bounded-memory invariant: CrossCheck sweeps additionally assert no
	// node's buffer exceeds the cap plus one payload. With Mode FlowSpill
	// the soak switches to invariant 9: the cap bounds only the *in-memory*
	// tier (CheckBoundedMemory), senders pump deterministic seq-derived
	// payloads, and every delivery is checked byte-for-byte against ground
	// truth via AttachPayloadTruth — so a corrupt disk round trip fails the
	// run even though the stream stays FIFO.
	Flow transport.FlowConfig
	// PayloadBytes sizes every pumped message (default 96). Spill soaks
	// raise it so a backlog measured in MBs or GBs accumulates within the
	// horizon instead of over a literal day.
	PayloadBytes int
	// BacklogFault, when > 0, appends one backlog_partition event to the
	// seeded schedule: the first non-sender is isolated until the senders'
	// retransmission backlog (memory + spill) reaches this many bytes, the
	// "day-long region outage" whose natural unit is data volume. Requires
	// Flow.Mode == FlowSpill. The event is appended after generation, so
	// seeded fingerprints of the generated prefix are unchanged.
	BacklogFault int64
	// BandwidthBps overrides the fabric's per-link bandwidth (default
	// 200 Mbps). GB-scale spill soaks raise it so the post-heal drain fits
	// DrainTimeout.
	BandwidthBps float64
	// LogStripes shards every node's send-log appends across that many
	// producer stripes (0 = transport default, 1 = classic single-stripe
	// log), so soaks exercise the striped merge path under faults.
	LogStripes int
	// Stall, when its Deadline is set, runs the nodes' stall monitors and
	// turns on the degraded-mode honesty invariant: every stall report must
	// blame only peers the schedule actually faulted.
	Stall core.StallConfig
	// Trace, when enabled, runs every node's lifecycle flight recorder and
	// turns on the trace well-orderedness invariant: after convergence a
	// sampled operation's merged timeline must cover all seven lifecycle
	// stages and validate (no Deliver before WireRecv, no Stabilize before
	// its ack quorum). With Stall also enabled, every stall-triggered
	// Health report must carry a non-empty recorder tail for each blamed
	// peer.
	Trace optrace.Config
	// StabilizeInterval defers predicate stabilization onto each node's
	// control-plane tick of this period (0 = legacy inline evaluation on
	// the ack path). Either way the frontier-truth invariant is swept: no
	// frontier ahead of its own recorder evaluation, every release backed
	// by witness receive cursors, and — with a tick — drain lag bounded
	// well under a sweep period.
	StabilizeInterval time.Duration
	// AutoReclaim leaves send-log reclamation on (the soak default disables
	// it so crash-restarted receivers can be resent the full prefix). A
	// flow-capped soak needs it on — bounded memory requires truncation —
	// and therefore must exclude KindCrashRestart via Kinds.
	AutoReclaim bool
	// Metrics, when set, is the registry shared by every node of the soak
	// cluster (node-labeled families); scraping it while the soak runs is
	// itself a race test of the registry. Nil keeps a private registry.
	Metrics *metrics.Registry
	// Logf, when set, traces faults and crash/restart events.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.N == 0 {
		o.N = 4
	}
	if len(o.Senders) == 0 {
		o.Senders = []int{1, 2}
	}
	if len(o.Crashable) == 0 {
		isSender := make(map[int]bool, len(o.Senders))
		for _, s := range o.Senders {
			isSender[s] = true
		}
		for i := 1; i <= o.N; i++ {
			if !isSender[i] {
				o.Crashable = append(o.Crashable, i)
			}
		}
	}
	if o.Horizon == 0 {
		o.Horizon = 2500 * time.Millisecond
	}
	if o.SendEvery == 0 {
		o.SendEvery = 3 * time.Millisecond
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 20 * time.Second
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = 25 * time.Millisecond
	}
	if o.PeerTimeout == 0 {
		o.PeerTimeout = 200 * time.Millisecond
	}
	if o.PayloadBytes == 0 {
		o.PayloadBytes = soakPayload
	}
	return o
}

// genConfig is the schedule generator configuration the soak uses; it is a
// method so the replay test can assert byte-identical regeneration against
// the exact configuration Soak runs.
func (o Options) genConfig() faultinject.GenConfig {
	return faultinject.GenConfig{
		N:         o.N,
		Crashable: o.Crashable,
		Horizon:   o.Horizon,
		Kinds:     o.Kinds,
	}
}

// soakPayload is the default size of every pumped message; the
// bounded-memory sweeps use the (possibly overridden) payload size as the
// admission-control overshoot budget.
const soakPayload = 96

// chaosPayload derives the deterministic payload for (origin, seq): byte i
// is a cheap mix of all three, so corruption, a cross-stream swap, or an
// off-by-one resequencing anywhere on the spill tier's disk round trip
// changes the bytes a receiver sees. Spill soaks pump these and verify
// them at delivery, which is how invariant 9 gets ground truth without
// storing a copy of every stream.
func chaosPayload(origin int, seq uint64, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(uint64(origin)*31 + seq*131 + uint64(i)*7 + 13)
	}
	return p
}

// convergencePred is the predicate every node must agree on at drain time.
// The .delivered suffix matters: the row advances only after application
// upcalls finish, so agreement implies the checker's FIFO counters have
// seen the whole stream too.
const convergencePred = "MIN($ALLWNODES.delivered)"

// Report summarizes a soak run.
type Report struct {
	// Schedule is the fault schedule that was executed.
	Schedule *faultinject.Schedule
	// Heads maps each sender to its final stream head.
	Heads map[int]uint64
	// Deliveries counts application upcalls across all nodes and
	// incarnations (re-deliveries to restarted nodes included).
	Deliveries int64
	// PeakSpilledBytes is the high-water mark of any node's on-disk spill
	// tier observed by the sweeps (0 unless the soak ran FlowSpill). A
	// spill soak should assert it is non-zero: a run whose backlog never
	// left memory did not exercise invariant 9.
	PeakSpilledBytes int64
	// SpillReadbackBytes totals the bytes senders streamed back from disk
	// segments (0 unless FlowSpill); non-zero proves the post-heal drain
	// actually crossed the disk→memory boundary.
	SpillReadbackBytes int64
	// Violations lists every invariant violation (empty on success).
	Violations []string
}

// Soak runs one deterministic chaos soak: it boots the cluster on a seeded
// in-memory fabric, pumps data from the senders while executing the fault
// schedule derived from Options.Seed, then heals everything and requires
// convergence. The returned error is non-nil iff any invariant was
// violated (the Report carries the details either way).
func Soak(o Options) (*Report, error) {
	o = o.withDefaults()
	for _, s := range o.Senders {
		for _, c := range o.Crashable {
			if s == c {
				return nil, fmt.Errorf("chaos: node %d is both sender and crashable", s)
			}
		}
	}

	spill := o.Flow.Mode == transport.FlowSpill

	sched := faultinject.Generate(o.Seed, o.genConfig())
	if o.AutoReclaim {
		for _, k := range sched.Kinds() {
			if k == faultinject.KindCrashRestart {
				return nil, fmt.Errorf("chaos: an auto-reclaim soak cannot include crash_restart events " +
					"(a restarted receiver needs the full prefix resent, which reclaim truncates); " +
					"restrict Options.Kinds")
			}
		}
	}
	if o.BacklogFault > 0 {
		if !spill {
			return nil, fmt.Errorf("chaos: BacklogFault requires Flow.Mode == FlowSpill (a memory-only capped log would just block the pumps)")
		}
		isSender := make(map[int]bool, len(o.Senders))
		for _, s := range o.Senders {
			isSender[s] = true
		}
		victim := 0
		for i := 1; i <= o.N; i++ {
			if !isSender[i] {
				victim = i
				break
			}
		}
		if victim == 0 {
			return nil, fmt.Errorf("chaos: BacklogFault needs a non-sender node to isolate")
		}
		sched.Events = append(sched.Events, faultinject.Event{
			At:    o.Horizon / 10,
			Dur:   o.Horizon, // safety timeout; the backlog threshold normally heals first
			Kind:  faultinject.KindBacklogPartition,
			Nodes: []int{victim},
			Bytes: o.BacklogFault,
		})
	}
	// Ground truth for the honesty invariant: the set of nodes any schedule
	// event touches. A stall report may only blame these. A partition cuts
	// every link crossing the set boundary, so both sides are affected — if
	// the isolated set contains a sender, the peers left outside genuinely
	// fall behind on its stream.
	suspect := make(map[int]bool)
	for _, e := range sched.Events {
		if e.Kind == faultinject.KindPartition || e.Kind == faultinject.KindBacklogPartition {
			for i := 1; i <= o.N; i++ {
				suspect[i] = true
			}
			continue
		}
		for _, n := range e.Nodes {
			suspect[n] = true
		}
	}

	// A lightly shaped fabric: enough latency that faults hit in-flight
	// traffic, jitter to exercise the seeded shaper, and a bandwidth cap so
	// post-heal resends stream rather than teleport.
	bw := emunet.Mbps(200)
	if o.BandwidthBps > 0 {
		bw = o.BandwidthBps
	}
	matrix := emunet.NewMatrix()
	matrix.Default = emunet.Link{
		OneWayLatency: 2 * time.Millisecond,
		Jitter:        time.Millisecond,
		BandwidthBps:  bw,
	}
	fabric := emunet.NewMemNetwork(matrix)
	fabric.Seed(o.Seed)
	defer fabric.Close()

	inj := faultinject.New(metrics.NewRegistry())
	defer inj.Close()
	fabric.SetConnHook(inj.Hook())

	topo := &config.Topology{Self: 1}
	for i := 1; i <= o.N; i++ {
		topo.Nodes = append(topo.Nodes, config.Node{
			Name:   fmt.Sprintf("node%d", i),
			AZ:     fmt.Sprintf("az%d", i),
			Region: fmt.Sprintf("region%d", i),
		})
	}

	check := NewChecker(o.N, o.Senders)
	var deliveries atomic.Int64

	// attach must run before the node's peers can deliver anything. At
	// boot no sender is pumping yet; after a restart the fabric's 2ms
	// one-way latency guarantees a reconnect handshake takes longer than
	// the call gap after Restart returns.
	attach := func(n *core.Node) {
		check.Attach(n)
		if o.Stall.Deadline > 0 {
			check.AttachStallHonesty(n, func(peer int) bool { return suspect[peer] })
		}
		if o.Trace.Enabled() && o.Stall.Deadline > 0 {
			check.AttachStallTraces(n)
		}
		if spill {
			check.AttachPayloadTruth(n, func(origin int, seq uint64) []byte {
				return chaosPayload(origin, seq, o.PayloadBytes)
			})
		}
		n.OnDeliver(func(core.Message) { deliveries.Add(1) })
	}

	// mu serializes crash/restart (and their checker bookkeeping) against
	// CrossCheck sweeps and the final convergence reads.
	var mu sync.Mutex
	cl, err := core.OpenCluster(core.ClusterConfig{
		Topology:          topo,
		Network:           fabric,
		Metrics:           o.Metrics,
		HeartbeatEvery:    o.HeartbeatEvery,
		PeerTimeout:       o.PeerTimeout,
		Flow:              o.Flow,
		LogStripes:        o.LogStripes,
		Stall:             o.Stall,
		Trace:             o.Trace,
		StabilizeInterval: o.StabilizeInterval,
		// Unless the soak opts into reclamation, keep send buffers whole:
		// a fresh-restarted receiver needs the full prefix resent, which
		// reclaim would have truncated.
		DisableAutoReclaim: !o.AutoReclaim,
		// Epoch 1 for first incarnations; Cluster.Restart bumps from there.
		Configure: func(_ int, cfg *core.Config) { cfg.Epoch = 1 },
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: open cluster: %w", err)
	}
	defer cl.Close()
	for _, n := range cl.Nodes() {
		attach(n)
	}
	// liveNodes rebuilds the checker's positional view: index i-1 holds
	// node i, nil while crashed.
	liveNodes := func() []*core.Node {
		out := make([]*core.Node, o.N)
		for i := 1; i <= o.N; i++ {
			out[i-1] = cl.Node(i)
		}
		return out
	}

	// Quorum sizes follow the registered predicates: MIN($ALLWNODES) needs
	// every node; KTH_MIN(k, $ALLWNODES) advances once N-k+1 nodes have
	// acked that far. Both the frontier-truth sweeps and the trace check
	// judge against these.
	maj := o.N/2 + 1
	quorums := map[string]int{"all": o.N, "maj": o.N - maj + 1}
	for _, s := range o.Senders {
		sn := cl.Node(s)
		if err := sn.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
			return nil, fmt.Errorf("chaos: register 'all' on node %d: %w", s, err)
		}
		if err := sn.RegisterPredicate("maj", fmt.Sprintf("KTH_MIN(%d, $ALLWNODES)", maj)); err != nil {
			return nil, fmt.Errorf("chaos: register 'maj' on node %d: %w", s, err)
		}
	}

	// Data pumps. Senders are never crashed, so their *Node pointers are
	// stable for the whole run.
	pumpStop := make(chan struct{})
	var pumps sync.WaitGroup
	for _, s := range o.Senders {
		sn := cl.Node(s)
		pumps.Add(1)
		go func(s int, sn *core.Node) {
			defer pumps.Done()
			payload := make([]byte, o.PayloadBytes)
			tick := time.NewTicker(o.SendEvery)
			defer tick.Stop()
			for {
				select {
				case <-pumpStop:
					return
				case <-tick.C:
					if spill {
						// The pump is its node's only appender, so the next
						// sequence is known before Send assigns it — that is
						// what lets the payload be derived from (origin, seq)
						// and re-derived independently at every receiver.
						seq := sn.NextSeq()
						got, err := sn.Send(chaosPayload(s, seq, o.PayloadBytes))
						if err != nil {
							return
						}
						if got != seq {
							check.Violatef("pump: node %d predicted seq %d but Send assigned %d", s, seq, got)
							return
						}
					} else if _, err := sn.Send(payload); err != nil {
						return
					}
				}
			}
		}(s, sn)
	}

	crash := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		// Cluster.Crash closes the node but hands back the dead handle:
		// its receive high water is monotone within the incarnation, so
		// reading it after Close yields the incarnation's final value.
		dead, err := cl.Crash(i)
		if err != nil {
			return // already down
		}
		hw := make(map[int]uint64, len(o.Senders))
		for _, s := range o.Senders {
			hw[s] = dead.RecvLast(s)
		}
		check.RecordCrash(i, hw)
		if o.Logf != nil {
			o.Logf("chaos: crashed node %d, high water %v", i, hw)
		}
	}
	restart := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		if cl.Node(i) != nil {
			return
		}
		check.RecordRestart(i)
		n, err := cl.Restart(i)
		if err != nil {
			check.Violatef("restart node %d: %v", i, err)
			return
		}
		attach(n)
		if o.Logf != nil {
			o.Logf("chaos: restarted node %d", i)
		}
	}

	// The bounded-memory sweep: under FlowSpill the cap governs only the
	// in-memory tier (the whole point is that total backlog exceeds it),
	// and the sweeps also track invariant 9's peak-spill witness.
	var peakSpill int64 // guarded by mu
	sweepBounded := func(nodes []*core.Node) {
		if o.Flow.MaxBytes > 0 {
			if spill {
				check.CheckBoundedMemory(nodes, o.Flow.MaxBytes, int64(o.PayloadBytes))
			} else {
				check.CheckBounded(nodes, o.Flow.MaxBytes, int64(o.PayloadBytes))
			}
		}
		if spill {
			for _, n := range nodes {
				if n == nil {
					continue
				}
				if b := n.SpilledBytes(); b > peakSpill {
					peakSpill = b
				}
			}
		}
	}

	// Continuous invariant-3 and invariant-8 sweeps while faults fly.
	ccStop := make(chan struct{})
	ccDone := make(chan struct{})
	go func() {
		defer close(ccDone)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ccStop:
				return
			case <-tick.C:
				mu.Lock()
				live := liveNodes()
				check.CrossCheck(live)
				check.CheckFrontierTruth(live, quorums)
				sweepBounded(live)
				mu.Unlock()
			}
		}
	}()

	runner := &faultinject.Runner{
		Inj: inj, Sched: sched, N: o.N, Scale: 1,
		Crash: crash, Restart: restart, Logf: o.Logf,
	}
	if o.BacklogFault > 0 {
		// The backlog a region outage induces lives on the *senders*:
		// reclamation is keyed to MIN over all nodes, so the isolated
		// victim pins every origin's log. Senders never crash, so their
		// handles are stable for the whole run.
		senderNodes := make([]*core.Node, 0, len(o.Senders))
		for _, s := range o.Senders {
			senderNodes = append(senderNodes, cl.Node(s))
		}
		runner.Backlog = func(int) int64 {
			var max int64
			for _, sn := range senderNodes {
				if b := sn.BufferedBytes(); b > max {
					max = b
				}
			}
			return max
		}
	}
	runner.Run(nil)
	inj.HealAll()

	close(pumpStop)
	pumps.Wait()

	heads := make(map[int]uint64, len(o.Senders))
	for _, s := range o.Senders {
		heads[s] = cl.Node(s).NextSeq() - 1
	}

	// Invariant 4: with faults healed, every node must be back up and its
	// evaluation of the convergence predicate over every sender's stream
	// must reach that stream's head.
	converged := func() bool {
		mu.Lock()
		defer mu.Unlock()
		if len(cl.Nodes()) != o.N {
			return false
		}
		for _, s := range o.Senders {
			f, err := cl.EvalAllFor(s, convergencePred)
			if err != nil || f < heads[s] {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(o.DrainTimeout)
	ok := false
	for time.Now().Before(deadline) {
		if ok = converged(); ok {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		mu.Lock()
		var lines []string
		for _, s := range o.Senders {
			for i, n := range liveNodes() {
				if n == nil {
					lines = append(lines, fmt.Sprintf("node %d: down", i+1))
					continue
				}
				f, err := n.EvalFor(s, convergencePred)
				lines = append(lines, fmt.Sprintf("node %d: origin %d frontier %d/%d recvLast %d (err=%v)",
					i+1, s, f, heads[s], n.RecvLast(s), err))
			}
		}
		mu.Unlock()
		sort.Strings(lines)
		check.Violatef("no convergence within %v:\n  %s", o.DrainTimeout, joinLines(lines))
	}

	close(ccStop)
	<-ccDone
	mu.Lock()
	final := liveNodes()
	check.CrossCheck(final)
	check.CheckFrontierTruth(final, quorums)
	sweepBounded(final)
	// The checker's own FIFO counters must also have reached the heads:
	// agreement on .delivered plus gap-free counting means every message
	// was upcalled exactly once per incarnation.
	if ok {
		for _, s := range o.Senders {
			for i, n := range final {
				if n == nil || i+1 == s {
					continue
				}
				if got := check.Delivered(i+1, s); got != heads[s] {
					check.Violatef("delivery incomplete: node %d saw %d/%d of origin %d", i+1, got, heads[s], s)
				}
			}
		}
	}
	mu.Unlock()

	// Invariant 7: after convergence a sampled op must have a complete,
	// well-ordered merged timeline. The cluster is quiescent here (faults
	// healed, pumps stopped, sweeps done), so no lock is needed.
	if ok && o.Trace.Enabled() {
		for _, s := range o.Senders {
			check.CheckTraces(cl, s, heads[s], o.Trace.SampleEvery, quorums)
		}
	}

	rep := &Report{
		Schedule:   sched,
		Heads:      heads,
		Deliveries: deliveries.Load(),
		Violations: check.Violations(),
	}
	if spill {
		rep.PeakSpilledBytes = peakSpill
		for _, s := range o.Senders {
			rep.SpillReadbackBytes += cl.Node(s).SpillReadbackBytes()
		}
	}
	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("chaos: %d invariant violation(s), seed %d:\n%s",
			len(rep.Violations), o.Seed, joinLines(rep.Violations))
	}
	return rep, nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
