package chaos

import (
	"os"
	"strconv"
	"testing"
	"time"

	"stabilizer/internal/core"
	"stabilizer/internal/faultinject"
	"stabilizer/internal/optrace"
	"stabilizer/internal/transport"
)

// defaultSoakSeed is the pinned CI seed. Every failure message carries the
// seed; replay any schedule byte-for-byte with
//
//	STABILIZER_CHAOS_SEED=<seed> go test -run TestChaosSoak ./internal/chaos
const defaultSoakSeed = 20260806

func soakSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("STABILIZER_CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad STABILIZER_CHAOS_SEED=%q: %v", v, err)
		}
		return s
	}
	return defaultSoakSeed
}

func TestChaosSoak(t *testing.T) {
	seed := soakSeed(t)
	o := Options{
		Seed: seed,
		Logf: t.Logf,
		// Stripes > 1 so the soak's FIFO no-gap/no-dup and trace
		// invariants run against the striped append/merge path.
		LogStripes: 4,
		Trace:      optrace.Config{SampleEvery: 4, RingSize: 1 << 15},
		// Deferred stabilization on its default tick, so the frontier-truth
		// sweeps judge the batched control plane, not the inline path.
		StabilizeInterval: core.DefaultStabilizeInterval,
	}
	switch {
	case os.Getenv("STABILIZER_CHAOS_FULL") != "":
		o.Horizon = 12 * time.Second
	case testing.Short():
		o.Horizon = 1500 * time.Millisecond
	}
	rep, err := Soak(o)
	if err != nil {
		if rep != nil {
			t.Logf("schedule (fingerprint %s):\n%s", rep.Schedule.Fingerprint(), rep.Schedule)
		}
		t.Fatalf("chaos soak failed — replay byte-for-byte with STABILIZER_CHAOS_SEED=%d:\n%v", seed, err)
	}
	if kinds := rep.Schedule.Kinds(); len(kinds) < 3 {
		t.Fatalf("seed %d: schedule exercised only %d fault kinds (%v), want >= 3:\n%s",
			seed, len(kinds), kinds, rep.Schedule)
	}
	for s, head := range rep.Heads {
		if head == 0 {
			t.Fatalf("seed %d: sender %d never sent anything", seed, s)
		}
	}
	t.Logf("chaos soak passed: seed=%d fingerprint=%s heads=%v deliveries=%d kinds=%v",
		seed, rep.Schedule.Fingerprint(), rep.Heads, rep.Deliveries, rep.Schedule.Kinds())
}

// TestChaosSoakInline runs a shorter soak with StabilizeInterval zero — the
// legacy inline stabilization path — with the same frontier-truth sweeps
// armed, pinning the acceptance requirement that invariant 8 holds in both
// modes (inline lag is zero by construction, so the bounded-lag clause must
// never fire here).
func TestChaosSoakInline(t *testing.T) {
	seed := soakSeed(t)
	o := Options{
		Seed:       seed,
		Logf:       t.Logf,
		LogStripes: 4,
		Horizon:    1500 * time.Millisecond,
	}
	if testing.Short() {
		o.Horizon = 800 * time.Millisecond
	}
	rep, err := Soak(o)
	if err != nil {
		if rep != nil {
			t.Logf("schedule (fingerprint %s):\n%s", rep.Schedule.Fingerprint(), rep.Schedule)
		}
		t.Fatalf("inline soak failed — replay byte-for-byte with STABILIZER_CHAOS_SEED=%d:\n%v", seed, err)
	}
	t.Logf("inline soak passed: seed=%d fingerprint=%s heads=%v deliveries=%d",
		seed, rep.Schedule.Fingerprint(), rep.Heads, rep.Deliveries)
}

// TestSoakScheduleReplayIsIdentical pins the acceptance requirement that
// re-running with the same seed reproduces the identical fault schedule,
// using the exact generator configuration Soak itself uses.
func TestSoakScheduleReplayIsIdentical(t *testing.T) {
	o := Options{Seed: soakSeed(t)}.withDefaults()
	a := faultinject.Generate(o.Seed, o.genConfig())
	b := faultinject.Generate(o.Seed, o.genConfig())
	if a.String() != b.String() {
		t.Fatalf("seed %d: replayed schedule differs:\n%s\n--- vs ---\n%s", o.Seed, a, b)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("seed %d: fingerprints differ: %s vs %s", o.Seed, a.Fingerprint(), b.Fingerprint())
	}
}

// flowSoakOptions is the flow-capped soak configuration: every node's send
// log capped with blocking admission control, stall monitoring on, and
// auto-reclaim enabled (bounded memory requires truncation) — which in turn
// requires excluding crash_restart from the schedule.
func flowSoakOptions(seed int64) Options {
	var kinds []faultinject.Kind
	for _, k := range faultinject.AllKinds() {
		if k != faultinject.KindCrashRestart {
			kinds = append(kinds, k)
		}
	}
	return Options{
		Seed:  seed,
		Kinds: kinds,
		Flow:  transport.FlowConfig{MaxBytes: 16 << 10, Mode: transport.FlowBlock},
		// Stripes > 1 so the bounded-memory invariant is checked against
		// the striped log's global flow accounting.
		LogStripes:  4,
		Stall:       core.StallConfig{Deadline: 300 * time.Millisecond},
		AutoReclaim: true,
		Trace:       optrace.Config{SampleEvery: 1, RingSize: 1 << 14},
		// Deferred stabilization interacts with stall monitoring and the
		// degraded-mode fallback; the frontier-truth sweeps watch it here.
		StabilizeInterval: core.DefaultStabilizeInterval,
	}
}

// TestChaosSoakFlow is the bounded-memory soak: random faults (crashes
// excluded) against flow-capped nodes, with the checker's bounded-memory and
// degraded-mode-honesty invariants armed alongside the original four.
func TestChaosSoakFlow(t *testing.T) {
	seed := soakSeed(t)
	o := flowSoakOptions(seed)
	o.Logf = t.Logf
	switch {
	case os.Getenv("STABILIZER_CHAOS_FULL") != "":
		o.Horizon = 12 * time.Second
	case testing.Short():
		o.Horizon = 1500 * time.Millisecond
	}
	rep, err := Soak(o)
	if err != nil {
		if rep != nil {
			t.Logf("schedule (fingerprint %s):\n%s", rep.Schedule.Fingerprint(), rep.Schedule)
		}
		t.Fatalf("flow soak failed — replay byte-for-byte with STABILIZER_CHAOS_SEED=%d:\n%v", seed, err)
	}
	for _, k := range rep.Schedule.Kinds() {
		if k == faultinject.KindCrashRestart {
			t.Fatalf("seed %d: flow soak schedule contains crash_restart:\n%s", seed, rep.Schedule)
		}
	}
	t.Logf("flow soak passed: seed=%d fingerprint=%s heads=%v deliveries=%d kinds=%v",
		seed, rep.Schedule.Fingerprint(), rep.Heads, rep.Deliveries, rep.Schedule.Kinds())
}

func TestSoakRejectsCrashWithAutoReclaim(t *testing.T) {
	if _, err := Soak(Options{Seed: 1, AutoReclaim: true}); err == nil {
		t.Fatal("Soak accepted auto-reclaim with crash_restart events in the schedule")
	}
}

// TestFlowDemo runs the bounded-memory acceptance scenario end to end: cap
// hit, stall blamed on exactly the blackholed peer, majority fallback
// restores progress, memory stays bounded throughout.
func TestFlowDemo(t *testing.T) {
	seed := soakSeed(t)
	o := FlowOptions{Seed: seed, Logf: t.Logf}
	if testing.Short() {
		o.Horizon = 1200 * time.Millisecond
	}
	rep, err := FlowDemo(o)
	if err != nil {
		t.Fatalf("flow demo failed — replay byte-for-byte with STABILIZER_CHAOS_SEED=%d:\n%v", seed, err)
	}
	if rep.BlockedAppends == 0 || rep.FallbackHead == 0 || rep.Head <= rep.FallbackHead {
		t.Fatalf("degraded path not exercised: blocked=%d fallbackHead=%d head=%d",
			rep.BlockedAppends, rep.FallbackHead, rep.Head)
	}
	if rep.StallReports == 0 {
		t.Fatalf("no stall reports emitted")
	}
	t.Logf("flow demo passed: seed=%d fingerprint=%s victim=%d head=%d fallbackHead=%d maxLogBytes=%d blocked=%d stalls=%d",
		seed, rep.Schedule.Fingerprint(), rep.Victim, rep.Head, rep.FallbackHead,
		rep.MaxLogBytes, rep.BlockedAppends, rep.StallReports)
}

// TestFlowDemoScheduleReplayIsIdentical pins the acceptance requirement that
// the same seed reproduces the flow demo's fault plan byte for byte.
func TestFlowDemoScheduleReplayIsIdentical(t *testing.T) {
	o := FlowOptions{Seed: soakSeed(t)}
	a, b := o.Schedule(), o.Schedule()
	if a.String() != b.String() {
		t.Fatalf("seed %d: replayed schedule differs:\n%s\n--- vs ---\n%s", o.Seed, a, b)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("seed %d: fingerprints differ: %s vs %s", o.Seed, a.Fingerprint(), b.Fingerprint())
	}
	if v1, v2 := o.Victim(), o.Victim(); v1 != v2 {
		t.Fatalf("seed %d: victim choice not deterministic: %d vs %d", o.Seed, v1, v2)
	}
}

func TestCheckerViolationCap(t *testing.T) {
	c := NewChecker(2, []int{1})
	for i := 0; i < maxViolations+5; i++ {
		c.Violatef("synthetic violation %d", i)
	}
	v := c.Violations()
	if len(v) != maxViolations+1 {
		t.Fatalf("got %d violation lines, want %d capped + 1 overflow marker", len(v), maxViolations+1)
	}
}

func TestSoakRejectsOverlappingRoles(t *testing.T) {
	if _, err := Soak(Options{Seed: 1, Senders: []int{1}, Crashable: []int{1, 2}}); err == nil {
		t.Fatal("Soak accepted a node that is both sender and crashable")
	}
}
