package chaos

import (
	"os"
	"strconv"
	"testing"
	"time"

	"stabilizer/internal/faultinject"
)

// defaultSoakSeed is the pinned CI seed. Every failure message carries the
// seed; replay any schedule byte-for-byte with
//
//	STABILIZER_CHAOS_SEED=<seed> go test -run TestChaosSoak ./internal/chaos
const defaultSoakSeed = 20260806

func soakSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("STABILIZER_CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad STABILIZER_CHAOS_SEED=%q: %v", v, err)
		}
		return s
	}
	return defaultSoakSeed
}

func TestChaosSoak(t *testing.T) {
	seed := soakSeed(t)
	o := Options{Seed: seed, Logf: t.Logf}
	switch {
	case os.Getenv("STABILIZER_CHAOS_FULL") != "":
		o.Horizon = 12 * time.Second
	case testing.Short():
		o.Horizon = 1500 * time.Millisecond
	}
	rep, err := Soak(o)
	if err != nil {
		if rep != nil {
			t.Logf("schedule (fingerprint %s):\n%s", rep.Schedule.Fingerprint(), rep.Schedule)
		}
		t.Fatalf("chaos soak failed — replay byte-for-byte with STABILIZER_CHAOS_SEED=%d:\n%v", seed, err)
	}
	if kinds := rep.Schedule.Kinds(); len(kinds) < 3 {
		t.Fatalf("seed %d: schedule exercised only %d fault kinds (%v), want >= 3:\n%s",
			seed, len(kinds), kinds, rep.Schedule)
	}
	for s, head := range rep.Heads {
		if head == 0 {
			t.Fatalf("seed %d: sender %d never sent anything", seed, s)
		}
	}
	t.Logf("chaos soak passed: seed=%d fingerprint=%s heads=%v deliveries=%d kinds=%v",
		seed, rep.Schedule.Fingerprint(), rep.Heads, rep.Deliveries, rep.Schedule.Kinds())
}

// TestSoakScheduleReplayIsIdentical pins the acceptance requirement that
// re-running with the same seed reproduces the identical fault schedule,
// using the exact generator configuration Soak itself uses.
func TestSoakScheduleReplayIsIdentical(t *testing.T) {
	o := Options{Seed: soakSeed(t)}.withDefaults()
	a := faultinject.Generate(o.Seed, o.genConfig())
	b := faultinject.Generate(o.Seed, o.genConfig())
	if a.String() != b.String() {
		t.Fatalf("seed %d: replayed schedule differs:\n%s\n--- vs ---\n%s", o.Seed, a, b)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("seed %d: fingerprints differ: %s vs %s", o.Seed, a.Fingerprint(), b.Fingerprint())
	}
}

func TestCheckerViolationCap(t *testing.T) {
	c := NewChecker(2, []int{1})
	for i := 0; i < maxViolations+5; i++ {
		c.Violatef("synthetic violation %d", i)
	}
	v := c.Violations()
	if len(v) != maxViolations+1 {
		t.Fatalf("got %d violation lines, want %d capped + 1 overflow marker", len(v), maxViolations+1)
	}
}

func TestSoakRejectsOverlappingRoles(t *testing.T) {
	if _, err := Soak(Options{Seed: 1, Senders: []int{1}, Crashable: []int{1, 2}}); err == nil {
		t.Fatal("Soak accepted a node that is both sender and crashable")
	}
}
