package chaos

import (
	"io"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/metrics"
)

// TestChaosSoakSharedRegistryScrape runs a bounded soak with every node —
// crash-restarts included — instrumenting one shared registry, while a
// scraper continuously renders and snapshots it. Under -race this is the
// registry's concurrency proof: child resolution across shards, GaugeFunc
// re-binding on restart, and exposition all overlap the data plane.
func TestChaosSoakSharedRegistryScrape(t *testing.T) {
	seed := soakSeed(t)
	reg := metrics.NewRegistry()
	o := Options{
		Seed:    seed,
		Horizon: 1500 * time.Millisecond,
		Metrics: reg,
		Logf:    t.Logf,
	}
	if !testing.Short() {
		o.Horizon = 3 * time.Second
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			for _, fam := range reg.Snapshot() {
				_ = fam
			}
			time.Sleep(time.Millisecond)
		}
	}()

	rep, err := Soak(o)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("soak failed — replay with STABILIZER_CHAOS_SEED=%d:\n%v", seed, err)
	}

	// Every node — restarted incarnations included — must be visible in
	// the one registry, under its own node label.
	fam := reg.Find("stabilizer_core_deliveries_total")
	if fam == nil {
		t.Fatal("shared registry missing stabilizer_core_deliveries_total")
	}
	nodes := map[string]bool{}
	var total float64
	for _, m := range fam.Metrics {
		nodes[m.Labels["node"]] = true
		total += m.Value
	}
	for _, id := range []string{"1", "2", "3", "4"} {
		if !nodes[id] {
			t.Errorf("node %s absent from shared registry (have %v)", id, nodes)
		}
	}
	if int64(total) != rep.Deliveries {
		t.Errorf("registry deliveries %v != report deliveries %d", total, rep.Deliveries)
	}
}
