// Package chaos contains the fault-injection soak harness and the
// invariant checker it drives. The checker encodes the safety properties
// Stabilizer promises regardless of network weather (paper §II-A, §III-A):
//
//  1. Frontier monotonicity — a predicate's stability frontier only moves
//     forward, and never past the origin stream's head. Frontier regressions
//     would un-stabilize messages an application already acted on.
//  2. Per-origin FIFO delivery — every receiver sees each origin's stream
//     gap-free and duplicate-free, across any number of reconnects. This is
//     the lossless-channel abstraction of §II-A.
//  3. No phantom stability — no node's recorder may claim a peer received a
//     sequence beyond what that peer actually received (crashes included).
//     A violation means a stability report was invented or mis-attributed.
//  4. Convergence — once faults cease, every live node's view of every
//     origin stream reaches the origin's head ("all WAN nodes reach the
//     same conclusions eventually", §III-A).
//  5. Bounded memory — with a send-log byte cap configured, no node's
//     retransmission buffer exceeds the cap plus one in-flight append,
//     no matter which peers stop draining it. Admission control, not
//     fault-free weather, is what keeps memory bounded.
//  6. Degraded-mode honesty — every stall report names only peers the
//     harness knows to be faulted or genuinely behind, and never an empty
//     set. Blaming a healthy peer would route an operator (or an automated
//     fallback) at the wrong subsystem.
//  7. Trace well-orderedness — with the flight recorder on, a sampled
//     operation's merged cross-node timeline must cover the whole
//     append→stabilize lifecycle and be causally well-ordered: no Deliver
//     before the node's WireRecv, no WireSend before its BatchEnqueue, no
//     Stabilize before the predicate's ack quorum was ingested at the
//     origin — across any number of crashes and restarts. A violation
//     means the observability layer would tell an operator a false story
//     about where an operation spent its time.
//  8. Frontier truth under deferred stabilization — a predicate's frontier
//     never runs ahead of a fresh evaluation of its own recorder cells (no
//     phantom release: a WaitFor resumed at seq s implies s really is
//     stable), every frontier value is backed by a quorum of witnesses
//     whose actual receive cursors reached it, and the deferred drain keeps
//     up — the frontier observed at one sweep must have caught up with the
//     ground-truth evaluation recorded a full sweep period (many tick
//     intervals) earlier. Holds identically in inline mode, where the lag
//     is zero by construction.
//  9. Spill-tier integrity — with the send log's disk tier configured
//     (FlowSpill), the bounded-memory invariant applies to the *in-memory*
//     portion of the buffer while the total backlog is free to grow with
//     the disk, and every delivered payload must be byte-identical to the
//     origin's ground truth — data that round-tripped through spill
//     segments and back is indistinguishable from data served from memory.
//     The FIFO invariant (2) riding the same deliveries proves the
//     disk→memory hand-off is gapless.
// 10. Adaptive-controller honesty — a closed-loop consistency controller
//     (internal/adaptive) never reports a guarantee stronger than the
//     predicate rung actually installed in the frontier registry, never
//     moves more than one rung per transition or faster than its MinDwell
//     hysteresis, and a WaitFor caller that observes a released sequence
//     can re-evaluate the rung active at release time and find the
//     sequence still covered. A violation means the adaptation layer
//     *lied* about consistency — the one thing it must never do while
//     trading it away under faults.
//
// Invariants 1 and 2 are asserted continuously from hooks on the live
// nodes; invariant 3 by periodic CrossCheck sweeps (CheckBounded and
// CheckFrontierTruth ride the same sweeps for invariants 5 and 8, and
// CheckBoundedMemory plus peak-spill tracking for invariant 9); invariant
// 4 by the harness at drain time via Violatef; invariant 6 by
// AttachStallHonesty on each node's OnStall stream; invariant 7 by
// CheckTraces after convergence plus AttachStallTraces on each stall
// report; invariant 9's byte-identity by AttachPayloadTruth on the same
// delivery hooks as invariant 2; invariant 10 by AttachAdaptive on each
// controller's transition stream plus CheckAdaptiveHonesty sweeps and the
// release validator inside AdaptiveDemo.
package chaos

import (
	"fmt"
	"sync"
	"time"

	"stabilizer/internal/core"
	"stabilizer/internal/optrace"
)

// maxViolations caps the violation log so a systemic failure doesn't
// buffer unboundedly; the count is exact up to the cap.
const maxViolations = 32

type frontierKey struct {
	node int
	pred string
}

type streamKey struct {
	receiver, origin int
}

// Checker accumulates invariant violations across a soak run. All methods
// are safe for concurrent use; hooks registered by Attach run on the
// nodes' delivery and control-plane goroutines.
type Checker struct {
	n       int
	senders []int

	mu           sync.Mutex
	lastFrontier map[frontierKey]uint64
	lastDeliv    map[streamKey]uint64
	// lastTruth holds, per sender predicate, the ground-truth recorder
	// evaluation observed at the previous CheckFrontierTruth sweep; the
	// next sweep requires the frontier to have caught up with it
	// (invariant 8's bounded-lag clause).
	lastTruth map[frontierKey]uint64
	// crashHW holds the receive high water each receiver had reached when
	// it crashed, so invariant 3 stays checkable while the node is down
	// and across its fresh (RecvLast-reset) incarnation.
	crashHW    map[streamKey]uint64
	violations []string
	dropped    int
}

// NewChecker returns a checker for an n-node cluster in which the given
// nodes originate data.
func NewChecker(n int, senders []int) *Checker {
	return &Checker{
		n:            n,
		senders:      append([]int(nil), senders...),
		lastFrontier: make(map[frontierKey]uint64),
		lastDeliv:    make(map[streamKey]uint64),
		lastTruth:    make(map[frontierKey]uint64),
		crashHW:      make(map[streamKey]uint64),
	}
}

// Attach hooks invariants 1 and 2 into a live node. Call it right after
// core.Open, before the node's peers can have delivered anything, and
// again for every restarted incarnation (after RecordRestart).
func (c *Checker) Attach(node *core.Node) {
	self := node.Self()

	// Invariant 1: frontiers only advance, and never overrun the head of
	// the stream they describe (registered predicates always concern the
	// node's own outbound stream). The head is read at hook time: it is
	// monotone and was at least `new` when the advance happened, so the
	// comparison is conservative.
	node.OnFrontierAdvance(func(key string, old, new uint64) {
		head := node.NextSeq() - 1
		c.mu.Lock()
		defer c.mu.Unlock()
		k := frontierKey{self, key}
		if new <= old {
			c.failf("frontier regression: node %d predicate %q advanced %d -> %d", self, key, old, new)
		}
		if last := c.lastFrontier[k]; new <= last {
			c.failf("frontier non-monotonic: node %d predicate %q reported %d after %d", self, key, new, last)
		}
		if new > head {
			c.failf("frontier overran head: node %d predicate %q frontier %d > stream head %d", self, key, new, head)
		}
		if new > c.lastFrontier[k] {
			c.lastFrontier[k] = new
		}
	})

	// Invariant 2: per-origin FIFO, no gaps, no duplicates. A restarted
	// receiver is reset by RecordRestart and legitimately re-observes the
	// stream from sequence 1.
	node.OnDeliver(func(m core.Message) {
		c.mu.Lock()
		defer c.mu.Unlock()
		k := streamKey{self, m.Origin}
		switch want := c.lastDeliv[k] + 1; {
		case m.Seq == want:
		case m.Seq <= c.lastDeliv[k]:
			c.failf("duplicate delivery: node %d re-delivered seq %d of origin %d (already at %d)",
				self, m.Seq, m.Origin, c.lastDeliv[k])
		default:
			c.failf("delivery gap: node %d got seq %d of origin %d, want %d",
				self, m.Seq, m.Origin, want)
		}
		if m.Seq > c.lastDeliv[k] {
			c.lastDeliv[k] = m.Seq
		}
	})
}

// RecordCrash notes a crashed receiver's final receive high waters
// (origin → highest contiguous sequence), read after the node was closed.
func (c *Checker) RecordCrash(node int, highWater map[int]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for origin, hw := range highWater {
		k := streamKey{node, origin}
		if hw > c.crashHW[k] {
			c.crashHW[k] = hw
		}
	}
}

// RecordRestart resets the FIFO and frontier tracking of a node that is
// about to come back as a fresh incarnation: its transport restarts
// receive counters at zero (origins resend from sequence 1) and its
// frontier registry starts empty. Call before the new core.Open.
func (c *Checker) RecordRestart(node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.lastDeliv {
		if k.receiver == node {
			delete(c.lastDeliv, k)
		}
	}
	for k := range c.lastFrontier {
		if k.node == node {
			delete(c.lastFrontier, k)
		}
	}
	for k := range c.lastTruth {
		if k.node == node {
			delete(c.lastTruth, k)
		}
	}
}

// CrossCheck sweeps invariant 3 over a snapshot of the cluster: for every
// live node A, origin o, and witness b, A's record of "b received seq v of
// o" must not exceed b's actual receive high water. nodes is 0-indexed
// with nil entries for crashed nodes; the caller must prevent concurrent
// crash/restart (the soak harness holds its cluster lock).
//
// Read order matters: the claimed ack value is read before the witness's
// high water. Receipt at b happens-before b emits the ack happens-before A
// records it, and high waters are monotone within an incarnation (crashes
// are covered by RecordCrash), so a genuine report can never observe
// claim > high water.
func (c *Checker) CrossCheck(nodes []*core.Node) {
	for ai, a := range nodes {
		if a == nil {
			continue
		}
		for _, o := range c.senders {
			for b := 1; b <= c.n; b++ {
				if b == o {
					continue // an origin trivially "received" its own stream
				}
				claim, err := a.AckValue(o, b, "received")
				if err != nil || claim == 0 {
					continue
				}
				var hw uint64
				if bn := nodes[b-1]; bn != nil {
					hw = bn.RecvLast(o)
				}
				c.mu.Lock()
				if chw := c.crashHW[streamKey{b, o}]; chw > hw {
					hw = chw
				}
				if claim > hw {
					c.failf("phantom stability report: node %d records node %d received seq %d of origin %d, but node %d only reached %d",
						ai+1, b, claim, o, b, hw)
				}
				c.mu.Unlock()
			}
		}
	}
}

// CheckBounded sweeps invariant 5 over a snapshot of the cluster: no live
// node's send-log bytes may exceed capBytes + slack. slack covers the one
// append admission control lets through while the log sits just under the
// cap (the cap is checked before the payload lands, so the overshoot is at
// most one payload). nodes is 0-indexed with nil entries for crashed nodes.
func (c *Checker) CheckBounded(nodes []*core.Node, capBytes, slack int64) {
	for i, n := range nodes {
		if n == nil {
			continue
		}
		if b := n.BufferedBytes(); b > capBytes+slack {
			c.Violatef("bounded-memory violation: node %d buffers %d send-log bytes > cap %d + slack %d",
				i+1, b, capBytes, slack)
		}
	}
}

// CheckBoundedMemory sweeps invariant 9's memory clause: under FlowSpill
// the cap bounds the in-memory portion of each send buffer — the total
// backlog (BufferedBytes) legitimately grows far past it, onto disk.
func (c *Checker) CheckBoundedMemory(nodes []*core.Node, capBytes, slack int64) {
	for i, n := range nodes {
		if n == nil {
			continue
		}
		if b := n.MemoryBufferedBytes(); b > capBytes+slack {
			c.Violatef("spill bounded-memory violation: node %d holds %d send-log bytes in memory > cap %d + slack %d (spilled %d)",
				i+1, b, capBytes, slack, n.SpilledBytes())
		}
	}
}

// AttachPayloadTruth hooks invariant 9's byte-identity clause into a live
// node: every delivered payload must equal truth(origin, seq). Pair it
// with deterministic, sequence-derived sender payloads so ground truth
// needs no copy of the stream. Violations are reported once per node per
// origin to keep the log readable.
func (c *Checker) AttachPayloadTruth(node *core.Node, truth func(origin int, seq uint64) []byte) {
	self := node.Self()
	reported := make(map[int]bool)
	var mu sync.Mutex
	node.OnDeliver(func(m core.Message) {
		want := truth(m.Origin, m.Seq)
		if string(m.Payload) == string(want) {
			return
		}
		mu.Lock()
		first := !reported[m.Origin]
		reported[m.Origin] = true
		mu.Unlock()
		if first {
			c.Violatef("payload corruption: node %d got %d bytes for origin %d seq %d that differ from ground truth (%d bytes)",
				self, len(m.Payload), m.Origin, m.Seq, len(want))
		}
	})
}

// CheckFrontierTruth sweeps invariant 8 over a snapshot of the cluster:
// for every sender s and registered predicate key (quorums maps keys to the
// number of witnesses each needs), three clauses must hold.
//
// (a) No phantom frontier: s's published frontier must not exceed a fresh
// evaluation of the predicate over s's own recorder. The frontier is read
// first and recorder cells are monotone, so however stale a deferred
// drain's snapshot was, a genuine frontier can never be observed above the
// evaluation that defines it.
//
// (b) Witness-backed release: a frontier of f means every waiter parked at
// seq ≤ f has been released, so at least quorum-many witnesses must have
// receive cursors (crash high waters included — an ack can outlive its
// sender's incarnation) that actually reached f. Receipt happens-before the
// ack happens-before the table update happens-before the drain that
// published f, and cursors are read after f, so a genuine release always
// passes.
//
// (c) Bounded lag: the frontier must be at or past the ground truth
// recorded by the previous sweep. Sweeps are spaced many stabilization
// ticks apart, so a deferred control plane that is keeping up has long
// since drained the dirty marks behind that older state; in inline mode the
// lag is zero by construction.
//
// nodes is 0-indexed with nil entries for crashed nodes; the caller must
// prevent concurrent crash/restart (the soak harness holds its cluster
// lock).
func (c *Checker) CheckFrontierTruth(nodes []*core.Node, quorums map[string]int) {
	for _, s := range c.senders {
		sn := nodes[s-1]
		if sn == nil {
			continue
		}
		for key, quorum := range quorums {
			fr, err := sn.StabilityFrontier(key)
			if err != nil {
				continue // predicate not registered on this node
			}
			src, err := sn.PredicateSource(key)
			if err != nil {
				continue
			}
			gt, err := sn.Eval(src)
			if err != nil {
				c.Violatef("frontier truth: node %d predicate %q unevaluable: %v", s, key, err)
				continue
			}
			if fr > gt {
				c.Violatef("phantom frontier: node %d predicate %q frontier %d ahead of its own recorder evaluation %d",
					s, key, fr, gt)
			}
			if fr > 0 {
				stable := 0
				for b := 1; b <= c.n; b++ {
					var hw uint64
					if b == s {
						// The origin trivially "received" its own stream.
						hw = sn.NextSeq() - 1
					} else {
						if bn := nodes[b-1]; bn != nil {
							hw = bn.RecvLast(s)
						}
						c.mu.Lock()
						if chw := c.crashHW[streamKey{b, s}]; chw > hw {
							hw = chw
						}
						c.mu.Unlock()
					}
					if hw >= fr {
						stable++
					}
				}
				if stable < quorum {
					c.Violatef("phantom release: node %d predicate %q frontier %d backed by only %d/%d witness receive cursors",
						s, key, fr, stable, quorum)
				}
			}
			c.mu.Lock()
			prev := c.lastTruth[frontierKey{s, key}]
			if gt > prev {
				c.lastTruth[frontierKey{s, key}] = gt
			}
			c.mu.Unlock()
			if prev > 0 && fr < prev {
				c.Violatef("frontier lag unbounded: node %d predicate %q frontier %d still behind ground truth %d from the previous sweep",
					s, key, fr, prev)
			}
		}
	}
}

// AttachStallHonesty hooks invariant 6 into a node's degraded-mode reports:
// every stall report must blame at least one peer, and only peers for which
// allowed returns true — the harness supplies allowed from its ground-truth
// knowledge of which peers the schedule faulted (or which are genuinely
// behind). Call alongside Attach, once per incarnation.
func (c *Checker) AttachStallHonesty(node *core.Node, allowed func(peer int) bool) {
	self := node.Self()
	node.OnStall(func(r core.StallReport) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if len(r.Peers) == 0 {
			c.failf("stall report without blame: node %d predicate %q stalled at %d/%d naming no peers",
				self, r.Predicate, r.Frontier, r.Head)
		}
		for _, p := range r.Peers {
			if !allowed(p) {
				c.failf("dishonest stall blame: node %d predicate %q blamed healthy peer %d (frontier %d/%d)",
					self, r.Predicate, p, r.Frontier, r.Head)
			}
		}
	})
}

// AttachStallTraces hooks the trace half of invariant 7 into a node's
// degraded-mode reports: every stall-triggered Health snapshot must carry
// a non-empty flight-recorder tail for each blamed peer, so "frontier
// stalled, blame node 3" always ships a post-mortem. Call alongside
// Attach on traced nodes, once per incarnation.
func (c *Checker) AttachStallTraces(node *core.Node) {
	self := node.Self()
	node.OnStall(func(r core.StallReport) {
		h := node.Health()
		for _, ph := range h.Predicates {
			// Only judge the predicate this report is about, and only if
			// it is still stalled (the monitor may have already cleared
			// it by the time the hook runs).
			if ph.Key != r.Predicate || !ph.Stalled {
				continue
			}
			for _, lag := range ph.Blamed {
				if len(lag.Recent) == 0 {
					c.Violatef("stall trace missing: node %d predicate %q blames peer %d with an empty recorder tail (frontier %d/%d)",
						self, ph.Key, lag.Peer, ph.Frontier, ph.Head)
				}
			}
		}
	})
}

// CheckTraces asserts the timeline half of invariant 7 for one origin
// after convergence: scanning down from the stream head, find a sampled
// operation whose merged timeline covers all seven lifecycle stages, and
// validate its causal order (quorums maps predicate keys to required node
// counts). Recorders on restarted nodes start empty, so ops whose events
// died with a crashed incarnation are skipped; with the cluster converged
// a recent op must still trace end to end, and finding none is itself a
// violation. Brief retries absorb the gap between an ack's table update
// and the frontier hook that records Stabilize.
func (c *Checker) CheckTraces(cl *core.Cluster, origin int, head uint64, sampleEvery int, quorums map[string]int) {
	if head == 0 {
		return
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		tl := findTracedOp(cl, origin, head, sampleEvery)
		if tl != nil {
			for _, v := range tl.Validate(quorums) {
				c.Violatef("trace ill-ordered: origin %d seq %d: %s", origin, tl.Seq, v)
			}
			return
		}
		if time.Now().After(deadline) {
			c.Violatef("no fully-traced sampled op for origin %d (head %d, sample 1-in-%d): every candidate timeline was incomplete",
				origin, head, sampleEvery)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// findTracedOp returns the newest sampled op at or below head whose merged
// timeline has all seven stages, or nil. It bounds the scan so a pathological
// sampling mask cannot spin forever.
func findTracedOp(cl *core.Cluster, origin int, head uint64, sampleEvery int) *optrace.Timeline {
	const maxScan, maxMerges = 1 << 14, 64
	merges := 0
	for seq, scanned := head, 0; seq >= 1 && scanned < maxScan && merges < maxMerges; seq, scanned = seq-1, scanned+1 {
		if !optrace.SampledAt(sampleEvery, origin, seq) {
			continue
		}
		merges++
		tl, err := cl.TraceOp(origin, seq)
		if err == nil && tl.HasAllStages() {
			return tl
		}
	}
	return nil
}

// Delivered returns the checker's view of the highest contiguous sequence
// the receiver has had upcalled for origin.
func (c *Checker) Delivered(receiver, origin int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastDeliv[streamKey{receiver, origin}]
}

// Violatef records an externally detected violation (the harness uses it
// for the convergence invariant).
func (c *Checker) Violatef(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failf(format, args...)
}

// failf appends a violation; callers hold c.mu.
func (c *Checker) failf(format string, args ...any) {
	if len(c.violations) >= maxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// Violations returns the recorded violations (empty means all invariants
// held). A trailing marker notes any overflow past the cap.
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.violations...)
	if c.dropped > 0 {
		out = append(out, fmt.Sprintf("... and %d more violations", c.dropped))
	}
	return out
}
