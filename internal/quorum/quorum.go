// Package quorum implements Gifford's quorum protocol (§IV-B) on top of
// Stabilizer's read/write stability predicates. A write completes once Nw
// member replicas hold it (write predicate KTH_MIN(Nw, members)); a read
// collects responses from Nr members and returns the highest-versioned
// value. With Nw + Nr > N, every read quorum intersects every write
// quorum, so a reader always sees the value of the latest non-concurrent
// committed write.
//
// Roles: every participating node runs a KV (members store replicas and
// answer reads; non-members act as clients only). Writes use the primary-
// site model — versions are the writer's Stabilizer sequence numbers, which
// are unique and monotonic.
package quorum

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stabilizer/internal/core"
	"stabilizer/internal/predlib"
)

// Errors returned by the quorum KV.
var (
	ErrBadQuorum   = errors.New("quorum: Nw+Nr must exceed the member count")
	ErrNotFound    = errors.New("quorum: key not found")
	ErrReadTimeout = errors.New("quorum: read quorum not reached")
)

// writePredicateKey is the predicate registered for write completion.
const writePredicateKey = "__quorum_write"

// methodRead is the App method selector for read RPCs.
const methodRead uint16 = 0x5152 // "QR"

// Config parameterizes a quorum KV.
type Config struct {
	// Node is the Stabilizer node this replica/client runs on.
	Node *core.Node
	// Members are the replica node indexes (the quorum universe N).
	Members []int
	// Nw and Nr are the write and read quorum sizes; Nw+Nr > len(Members).
	Nw, Nr int
}

// entry is one replicated value.
type entry struct {
	value   []byte
	version uint64
	origin  int
}

// KV is one node's quorum endpoint.
type KV struct {
	node    *core.Node
	members []int
	nw, nr  int
	member  bool

	mu      sync.Mutex
	store   map[string]entry
	pending map[uint64]chan readReply
	nextID  atomic.Uint64
}

type readReply struct {
	from    int
	found   bool
	version uint64
	value   []byte
}

// New creates a quorum endpoint and registers its handlers on the node.
func New(cfg Config) (*KV, error) {
	if cfg.Node == nil {
		return nil, errors.New("quorum: Config.Node is required")
	}
	n := len(cfg.Members)
	if n == 0 || cfg.Nw < 1 || cfg.Nr < 1 || cfg.Nw+cfg.Nr <= n {
		return nil, fmt.Errorf("%w: N=%d Nw=%d Nr=%d", ErrBadQuorum, n, cfg.Nw, cfg.Nr)
	}
	kv := &KV{
		node:    cfg.Node,
		members: append([]int{}, cfg.Members...),
		nw:      cfg.Nw,
		nr:      cfg.Nr,
		store:   make(map[string]entry),
		pending: make(map[uint64]chan readReply),
	}
	self := cfg.Node.Self()
	for _, m := range kv.members {
		if m == self {
			kv.member = true
		}
	}
	src := predlib.QuorumWrite(kv.members, kv.nw)
	if err := cfg.Node.RegisterPredicate(writePredicateKey, src); err != nil {
		return nil, fmt.Errorf("quorum: register write predicate: %w", err)
	}
	cfg.Node.OnDeliver(kv.applyWrite)
	cfg.Node.OnApp(kv.handleApp)
	return kv, nil
}

// WritePredicate returns the DSL source of the write-completion predicate.
func (kv *KV) WritePredicate() string { return predlib.QuorumWrite(kv.members, kv.nw) }

// Write replicates key=value and blocks until a write quorum holds it.
// The returned version is the write's Stabilizer sequence number.
func (kv *KV) Write(ctx context.Context, key string, value []byte) (uint64, error) {
	payload := encodeWrite(key, value)
	seq, err := kv.node.SendNoCopy(payload)
	if err != nil {
		return 0, err
	}
	// A member writer stores its own replica immediately (its own ACK is
	// part of the quorum by the completeness rule).
	if kv.member {
		kv.storeEntry(key, value, seq, kv.node.Self())
	}
	if err := kv.node.WaitFor(ctx, seq, writePredicateKey); err != nil {
		return seq, err
	}
	return seq, nil
}

// Read performs a quorum read: it queries every member, waits for Nr
// responses, and returns the freshest value among them.
func (kv *KV) Read(ctx context.Context, key string) ([]byte, uint64, error) {
	id := kv.nextID.Add(1)
	replies := make(chan readReply, len(kv.members))
	kv.mu.Lock()
	kv.pending[id] = replies
	kv.mu.Unlock()
	defer func() {
		kv.mu.Lock()
		delete(kv.pending, id)
		kv.mu.Unlock()
	}()

	self := kv.node.Self()
	for _, m := range kv.members {
		if m == self {
			// Local replica answers immediately.
			replies <- kv.localRead(key)
			continue
		}
		if err := kv.node.SendApp(m, id, methodRead, false, []byte(key)); err != nil {
			// An unreachable member just reduces the response pool.
			continue
		}
	}

	var (
		got  int
		best readReply
	)
	for got < kv.nr {
		select {
		case r := <-replies:
			got++
			if r.found && (best.version < r.version || !best.found) {
				best = r
			}
		case <-ctx.Done():
			return nil, 0, fmt.Errorf("%w: %d/%d responses: %v", ErrReadTimeout, got, kv.nr, ctx.Err())
		}
	}
	if !best.found {
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return best.value, best.version, nil
}

// Version returns this replica's local version of key (testing/metrics).
func (kv *KV) Version(key string) (uint64, bool) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	e, ok := kv.store[key]
	return e.version, ok
}

func (kv *KV) localRead(key string) readReply {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	e, ok := kv.store[key]
	return readReply{from: kv.node.Self(), found: ok, version: e.version, value: e.value}
}

func (kv *KV) storeEntry(key string, value []byte, version uint64, origin int) {
	buf := make([]byte, len(value))
	copy(buf, value)
	kv.mu.Lock()
	defer kv.mu.Unlock()
	e, ok := kv.store[key]
	if !ok || e.version < version {
		kv.store[key] = entry{value: buf, version: version, origin: origin}
	}
}

// applyWrite installs replicated writes on member replicas.
func (kv *KV) applyWrite(m core.Message) {
	if !kv.member {
		return
	}
	key, value, err := decodeWrite(m.Payload)
	if err != nil {
		return // other traffic on the shared node
	}
	kv.storeEntry(key, value, m.Seq, m.Origin)
}

// handleApp answers read RPCs and routes read responses.
func (kv *KV) handleApp(m core.AppMessage) {
	if m.Method != methodRead {
		return
	}
	if !m.IsResponse {
		if !kv.member {
			return
		}
		r := kv.localRead(string(m.Payload))
		resp := encodeReadReply(r)
		// Best effort; an unreachable requester will time out.
		_ = kv.node.SendApp(m.From, m.ID, methodRead, true, resp)
		return
	}
	r, err := decodeReadReply(m.Payload)
	if err != nil {
		return
	}
	r.from = m.From
	kv.mu.Lock()
	ch := kv.pending[m.ID]
	kv.mu.Unlock()
	if ch != nil {
		select {
		case ch <- r:
		default: // late response after quorum reached
		}
	}
}

// --- codecs ---

const writeMagic uint16 = 0x5157 // "QW"

func encodeWrite(key string, value []byte) []byte {
	buf := make([]byte, 0, 4+len(key)+len(value))
	buf = binary.BigEndian.AppendUint16(buf, writeMagic)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

func decodeWrite(p []byte) (string, []byte, error) {
	if len(p) < 4 || binary.BigEndian.Uint16(p) != writeMagic {
		return "", nil, errors.New("quorum: not a quorum write")
	}
	klen := int(binary.BigEndian.Uint16(p[2:]))
	if len(p) < 4+klen {
		return "", nil, errors.New("quorum: short write payload")
	}
	return string(p[4 : 4+klen]), p[4+klen:], nil
}

func encodeReadReply(r readReply) []byte {
	buf := make([]byte, 0, 9+len(r.value))
	if r.found {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint64(buf, r.version)
	buf = append(buf, r.value...)
	return buf
}

func decodeReadReply(p []byte) (readReply, error) {
	if len(p) < 9 {
		return readReply{}, errors.New("quorum: short read reply")
	}
	return readReply{
		found:   p[0] == 1,
		version: binary.BigEndian.Uint64(p[1:]),
		value:   p[9:],
	}, nil
}

// ReadLatency measures one quorum read of key, for the Fig. 3 experiment.
func (kv *KV) ReadLatency(ctx context.Context, key string) (time.Duration, error) {
	start := time.Now()
	if _, _, err := kv.Read(ctx, key); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
