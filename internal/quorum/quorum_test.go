package quorum

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
)

type qcluster struct {
	nodes []*core.Node
	kvs   []*KV
}

func startQuorum(t *testing.T, n int, members []int, nw, nr int) *qcluster {
	t.Helper()
	topo := &config.Topology{Self: 1}
	for i := 1; i <= n; i++ {
		topo.Nodes = append(topo.Nodes, config.Node{
			Name: fmt.Sprintf("q%d", i), AZ: fmt.Sprintf("az%d", i),
		})
	}
	network := emunet.NewMemNetwork(nil)
	c := &qcluster{}
	for i := 1; i <= n; i++ {
		node, err := core.Open(core.Config{Topology: topo.WithSelf(i), Network: network})
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		kv, err := New(Config{Node: node, Members: members, Nw: nw, Nr: nr})
		if err != nil {
			t.Fatalf("quorum node %d: %v", i, err)
		}
		c.nodes = append(c.nodes, node)
		c.kvs = append(c.kvs, kv)
	}
	t.Cleanup(func() {
		for _, node := range c.nodes {
			_ = node.Close()
		}
		_ = network.Close()
	})
	return c
}

func TestWriteThenReadSeesValue(t *testing.T) {
	c := startQuorum(t, 3, []int{1, 2, 3}, 2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ver, err := c.kvs[0].Write(ctx, "k", []byte("v1"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	val, gotVer, err := c.kvs[1].Read(ctx, "k")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(val) != "v1" || gotVer != ver {
		t.Fatalf("read = %q@%d, want v1@%d", val, gotVer, ver)
	}
}

func TestReadIntersectsWriteQuorum(t *testing.T) {
	// 5 members, Nw=3, Nr=3: any read quorum overlaps any write quorum.
	c := startQuorum(t, 5, []int{1, 2, 3, 4, 5}, 3, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		want := fmt.Sprintf("v%d", i)
		if _, err := c.kvs[0].Write(ctx, "counter", []byte(want)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		// Read from a different node each time.
		reader := c.kvs[i%5]
		got, _, err := reader.Read(ctx, "counter")
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("read %d = %q, want %q (quorum intersection violated)", i, got, want)
		}
	}
}

func TestNonMemberClientCanWriteAndRead(t *testing.T) {
	// Node 2 is a pure client (not in the member set), like Utah2 in
	// the paper's Fig. 3 setup.
	c := startQuorum(t, 4, []int{1, 3, 4}, 2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.kvs[1].Write(ctx, "k", []byte("from-client")); err != nil {
		t.Fatalf("client write: %v", err)
	}
	got, _, err := c.kvs[1].Read(ctx, "k")
	if err != nil || string(got) != "from-client" {
		t.Fatalf("client read = %q, %v", got, err)
	}
	// The client stores no replica itself.
	if _, ok := c.kvs[1].Version("k"); ok {
		t.Fatal("non-member stored a replica")
	}
	// Members do.
	if _, ok := c.kvs[0].Version("k"); !ok {
		t.Fatal("member missing replica after quorum write")
	}
}

func TestReadMissingKey(t *testing.T) {
	c := startQuorum(t, 3, []int{1, 2, 3}, 2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, err := c.kvs[0].Read(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestReadTimesOutWithoutQuorum(t *testing.T) {
	// Only node 1 exists: the remaining members never respond.
	topo := &config.Topology{Self: 1, Nodes: []config.Node{
		{Name: "a", AZ: "z1"}, {Name: "b", AZ: "z2"}, {Name: "c", AZ: "z3"},
	}}
	network := emunet.NewMemNetwork(nil)
	defer network.Close()
	node, err := core.Open(core.Config{Topology: topo, Network: network})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	kv, err := New(Config{Node: node, Members: []int{1, 2, 3}, Nw: 2, Nr: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, _, err := kv.Read(ctx, "k"); !errors.Is(err, ErrReadTimeout) {
		t.Fatalf("err = %v, want ErrReadTimeout", err)
	}
}

func TestQuorumConfigValidation(t *testing.T) {
	topo := &config.Topology{Self: 1, Nodes: []config.Node{{Name: "a", AZ: "z"}}}
	network := emunet.NewMemNetwork(nil)
	defer network.Close()
	node, err := core.Open(core.Config{Topology: topo, Network: network})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	bad := []Config{
		{Node: node, Members: nil, Nw: 1, Nr: 1},
		{Node: node, Members: []int{1}, Nw: 0, Nr: 1},
		{Node: node, Members: []int{1, 2, 3}, Nw: 1, Nr: 1}, // Nw+Nr ≤ N
		{Node: nil, Members: []int{1}, Nw: 1, Nr: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	c := startQuorum(t, 3, []int{1, 2, 3}, 2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Background readers must never see an error other than not-found.
	// (Reads concurrent with a write may legitimately observe either
	// version — the protocol only orders reads against *non-concurrent*
	// writes, §IV-B — so no monotonicity is asserted here.)
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := c.kvs[r].Read(ctx, "hot"); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}()
	}
	var lastVer uint64
	for i := 0; i < 30; i++ {
		ver, err := c.kvs[0].Write(ctx, "hot", []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		lastVer = ver
	}
	close(stop)
	wg.Wait()
	// After all writes completed, a quorum read sees the final value.
	got, ver, err := c.kvs[2].Read(ctx, "hot")
	if err != nil || string(got) != "v29" || ver != lastVer {
		t.Fatalf("final read = %q@%d, %v; want v29@%d", got, ver, err, lastVer)
	}
}
