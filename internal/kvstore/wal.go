package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// WAL is a minimal append-only write-ahead log. Records are CRC-protected
// and length-prefixed; recovery stops cleanly at the first torn record.
//
// Record layout:
//
//	uint32  crc32 (IEEE) of everything after this field
//	uint32  body length
//	uint16  key length, key bytes
//	uint64  version
//	int64   unix-nano timestamp
//	[]byte  value (rest of body)
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	bw   *bufio.Writer
	sync bool
	// fault, when non-nil, makes every append fail with it (wrapped in
	// ErrWALWrite) before touching the file — the disk-full fault hook.
	fault error
}

// ErrWALWrite wraps every error from appending to the log, so callers can
// distinguish "the disk failed" (degrade to read-only, keep serving reads)
// from bad-input errors without matching on platform-specific causes. The
// original cause stays in the chain for errors.Is (e.g. syscall.ENOSPC).
var ErrWALWrite = errors.New("kvstore: wal write failed")

// Record is one recovered WAL entry.
type Record struct {
	Key   string
	Value []byte
	Ver   uint64
	Time  time.Time
}

// OpenWAL opens (creating if needed) the log at path. If syncEveryWrite is
// set, each record is fsynced — the durable flavor of "persisted".
func OpenWAL(path string, syncEveryWrite bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	return &WAL{f: f, bw: bufio.NewWriterSize(f, 64<<10), sync: syncEveryWrite}, nil
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}

func (w *WAL) appendPut(key string, value []byte, ver uint64, ts time.Time) error {
	body := make([]byte, 0, 2+len(key)+8+8+len(value))
	body = binary.BigEndian.AppendUint16(body, uint16(len(key)))
	body = append(body, key...)
	body = binary.BigEndian.AppendUint64(body, ver)
	body = binary.BigEndian.AppendUint64(body, uint64(ts.UnixNano()))
	body = append(body, value...)

	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(body)))
	crc := crc32.NewIEEE()
	_, _ = crc.Write(hdr[4:])
	_, _ = crc.Write(body)
	binary.BigEndian.PutUint32(hdr[:4], crc.Sum32())

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fault != nil {
		return fmt.Errorf("%w: %w", ErrWALWrite, w.fault)
	}
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("%w: %w", ErrWALWrite, err)
	}
	if _, err := w.bw.Write(body); err != nil {
		return fmt.Errorf("%w: %w", ErrWALWrite, err)
	}
	if w.sync {
		if err := w.bw.Flush(); err != nil {
			return fmt.Errorf("%w: %w", ErrWALWrite, err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("%w: %w", ErrWALWrite, err)
		}
	}
	return nil
}

// SetWriteFault makes every subsequent append fail with cause (wrapped in
// ErrWALWrite) without touching the file — the fault-injection hook for
// disk-full and similar persistent write failures. nil clears the fault.
func (w *WAL) SetWriteFault(cause error) {
	w.mu.Lock()
	w.fault = cause
	w.mu.Unlock()
}

// Flush forces buffered records to the OS.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bw.Flush()
}

// ReadWAL recovers all intact records from the log at path. A torn tail
// (partial final record or CRC mismatch) terminates recovery without error,
// mirroring standard WAL semantics.
func ReadWAL(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("kvstore: open wal for read: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 64<<10)
	var out []Record
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return out, nil // clean EOF or torn header: stop
		}
		want := binary.BigEndian.Uint32(hdr[:4])
		n := binary.BigEndian.Uint32(hdr[4:])
		if n < 2+8+8 || n > 1<<30 {
			return out, nil
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return out, nil // torn record
		}
		crc := crc32.NewIEEE()
		_, _ = crc.Write(hdr[4:])
		_, _ = crc.Write(body)
		if crc.Sum32() != want {
			return out, nil // corrupt tail
		}
		klen := int(binary.BigEndian.Uint16(body[:2]))
		if 2+klen+16 > len(body) {
			return out, nil
		}
		key := string(body[2 : 2+klen])
		ver := binary.BigEndian.Uint64(body[2+klen:])
		ts := int64(binary.BigEndian.Uint64(body[2+klen+8:]))
		val := body[2+klen+16:]
		out = append(out, Record{Key: key, Value: val, Ver: ver, Time: time.Unix(0, ts)})
	}
}
