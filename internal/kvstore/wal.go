package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"stabilizer/internal/storage/segment"
)

// WAL is a minimal append-only write-ahead log. It sits on the shared
// internal/storage/segment framing (the same machinery the transport's
// spill tier uses), so CRC protection, fsync discipline, and torn-tail
// recovery live in one implementation. Files written before the extraction
// stay readable: the framing is byte-identical.
//
// Record body layout (inside the segment frame):
//
//	uint16  key length, key bytes
//	uint64  version
//	int64   unix-nano timestamp
//	[]byte  value (rest of body)
type WAL struct {
	w *segment.Writer
}

// ErrWALWrite wraps every error from appending to the log, so callers can
// distinguish "the disk failed" (degrade to read-only, keep serving reads)
// from bad-input errors without matching on platform-specific causes. The
// original cause stays in the chain for errors.Is (e.g. syscall.ENOSPC).
var ErrWALWrite = errors.New("kvstore: wal write failed")

// Record is one recovered WAL entry.
type Record struct {
	Key   string
	Value []byte
	Ver   uint64
	Time  time.Time
}

// OpenWAL opens (creating if needed) the log at path. If syncEveryWrite is
// set, each record is fsynced — the durable flavor of "persisted".
func OpenWAL(path string, syncEveryWrite bool) (*WAL, error) {
	w, err := segment.OpenWriter(path, syncEveryWrite)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	return &WAL{w: w}, nil
}

// Close flushes and closes the log.
func (w *WAL) Close() error { return w.w.Close() }

func (w *WAL) appendPut(key string, value []byte, ver uint64, ts time.Time) error {
	body := make([]byte, 0, 2+len(key)+8+8+len(value))
	body = binary.BigEndian.AppendUint16(body, uint16(len(key)))
	body = append(body, key...)
	body = binary.BigEndian.AppendUint64(body, ver)
	body = binary.BigEndian.AppendUint64(body, uint64(ts.UnixNano()))
	body = append(body, value...)
	if err := w.w.Append(body); err != nil {
		return fmt.Errorf("%w: %w", ErrWALWrite, err)
	}
	return nil
}

// SetWriteFault makes every subsequent append fail with cause (wrapped in
// ErrWALWrite) without touching the file — the fault-injection hook for
// disk-full and similar persistent write failures. nil clears the fault.
func (w *WAL) SetWriteFault(cause error) { w.w.SetWriteFault(cause) }

// Flush forces buffered records to the OS.
func (w *WAL) Flush() error { return w.w.Flush() }

// ReadWAL recovers all intact records from the log at path. A torn tail
// (partial final record or CRC mismatch) terminates recovery without error,
// mirroring standard WAL semantics; a record body too short to parse also
// terminates recovery (a corrupt tail that happened to pass the CRC of a
// differently-framed write never occurs in practice, but stopping is the
// safe reading of it).
func ReadWAL(path string) ([]Record, error) {
	var out []Record
	stop := errors.New("stop")
	err := segment.Scan(path, func(body []byte) error {
		if len(body) < 2+8+8 {
			return stop
		}
		klen := int(binary.BigEndian.Uint16(body[:2]))
		if 2+klen+16 > len(body) {
			return stop
		}
		key := string(body[2 : 2+klen])
		ver := binary.BigEndian.Uint64(body[2+klen:])
		ts := int64(binary.BigEndian.Uint64(body[2+klen+8:]))
		val := body[2+klen+16:]
		out = append(out, Record{Key: key, Value: val, Ver: ver, Time: time.Unix(0, ts)})
		return nil
	})
	if err != nil && !errors.Is(err, stop) {
		return nil, fmt.Errorf("kvstore: wal read: %w", err)
	}
	return out, nil
}
