// Package kvstore is a single-data-center versioned object store — this
// reproduction's substitute for the Derecho object store the paper
// integrates with (§V-A). It keeps the full version history of every
// object (supporting get, put and get_by_time, the APIs the paper lists)
// and can persist updates to an append-only log so the "persisted"
// stability level has real meaning.
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by the store.
var (
	ErrNotFound   = errors.New("kvstore: key not found")
	ErrNoVersion  = errors.New("kvstore: no version at requested point")
	ErrStoreDirty = errors.New("kvstore: load requires an empty store")
	// ErrReadOnly is returned by writes while the store is in its degraded
	// read-only state: a WAL append failed, so accepting further writes
	// would let memory diverge from what a recovery could replay. Reads
	// keep working; ClearReadOnly re-arms writes once the disk is fixed.
	ErrReadOnly = errors.New("kvstore: store is read-only after a wal write failure")
)

// Version is one immutable revision of an object.
type Version struct {
	// Value is the object contents at this revision.
	Value []byte
	// Num is the store-wide version number (monotonic across keys).
	Num uint64
	// Time is the commit timestamp.
	Time time.Time
}

// Store is an in-memory versioned K/V object store. All methods are safe
// for concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]Version // ascending Num
	nextVer uint64
	wal     *WAL
	now     func() time.Time
	// readOnly is the degraded state entered when a WAL append fails:
	// writes are refused (ErrReadOnly) until ClearReadOnly.
	readOnly bool
}

// Option configures a Store.
type Option func(*Store)

// WithWAL attaches an append-only log; every Put is recorded before it is
// applied.
func WithWAL(w *WAL) Option { return func(s *Store) { s.wal = w } }

// WithClock overrides the commit timestamp source (tests).
func WithClock(now func() time.Time) Option { return func(s *Store) { s.now = now } }

// New creates an empty store.
func New(opts ...Option) *Store {
	s := &Store{
		objects: make(map[string][]Version),
		nextVer: 1,
		now:     time.Now,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Put commits a new version of key and returns its version number.
// The value is copied.
func (s *Store) Put(key string, value []byte) (uint64, error) {
	buf := make([]byte, len(value))
	copy(buf, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return 0, ErrReadOnly
	}
	ver := s.nextVer
	ts := s.now()
	if s.wal != nil {
		if err := s.wal.appendPut(key, buf, ver, ts); err != nil {
			s.readOnly = true
			return 0, err
		}
	}
	s.nextVer++
	s.objects[key] = append(s.objects[key], Version{Value: buf, Num: ver, Time: ts})
	return ver, nil
}

// Get returns the latest version of key.
func (s *Store) Get(key string) (Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.objects[key]
	if len(vs) == 0 {
		return Version{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return vs[len(vs)-1], nil
}

// GetVersion returns the version of key with the exact number num.
func (s *Store) GetVersion(key string, num uint64) (Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.objects[key]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].Num >= num })
	if i == len(vs) || vs[i].Num != num {
		return Version{}, fmt.Errorf("%w: %q@%d", ErrNoVersion, key, num)
	}
	return vs[i], nil
}

// GetByTime returns the newest version of key committed at or before t
// (the paper's get_by_time).
func (s *Store) GetByTime(key string, t time.Time) (Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.objects[key]
	if len(vs) == 0 {
		return Version{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	// First version strictly after t.
	i := sort.Search(len(vs), func(i int) bool { return vs[i].Time.After(t) })
	if i == 0 {
		return Version{}, fmt.Errorf("%w: %q before %v", ErrNoVersion, key, t)
	}
	return vs[i-1], nil
}

// History returns all versions of key, ascending.
func (s *Store) History(key string) []Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.objects[key]
	out := make([]Version, len(vs))
	copy(out, vs)
	return out
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// LatestVersion returns the highest committed version number (0 if empty).
func (s *Store) LatestVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextVer - 1
}

// ReadOnly reports whether the store is in its degraded read-only state.
func (s *Store) ReadOnly() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.readOnly
}

// ClearReadOnly re-arms writes after the WAL's failure cause is fixed (disk
// space freed, volume remounted). The failed write was never applied in
// memory, so clearing is safe: the next write re-attempts the WAL first.
func (s *Store) ClearReadOnly() {
	s.mu.Lock()
	s.readOnly = false
	s.mu.Unlock()
}

// ErrStaleVersion is returned by Apply for out-of-order replicated updates.
var ErrStaleVersion = errors.New("kvstore: stale replicated version")

// Apply installs a replicated version with the origin-assigned version
// number and timestamp, preserving the origin's ordering. It is the mirror
// side of geo-replication: mirrors never assign version numbers of their
// own. Versions must arrive in increasing order per key.
func (s *Store) Apply(key string, value []byte, ver uint64, ts time.Time) error {
	buf := make([]byte, len(value))
	copy(buf, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	vs := s.objects[key]
	if len(vs) > 0 && vs[len(vs)-1].Num >= ver {
		return fmt.Errorf("%w: %q@%d after %d", ErrStaleVersion, key, ver, vs[len(vs)-1].Num)
	}
	if s.wal != nil {
		if err := s.wal.appendPut(key, buf, ver, ts); err != nil {
			s.readOnly = true
			return err
		}
	}
	s.objects[key] = append(vs, Version{Value: buf, Num: ver, Time: ts})
	if ver >= s.nextVer {
		s.nextVer = ver + 1
	}
	return nil
}

// Load replays WAL records into an empty store (crash recovery).
func (s *Store) Load(records []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.objects) != 0 {
		return ErrStoreDirty
	}
	for _, r := range records {
		s.objects[r.Key] = append(s.objects[r.Key], Version{Value: r.Value, Num: r.Ver, Time: r.Time})
		if r.Ver >= s.nextVer {
			s.nextVer = r.Ver + 1
		}
	}
	return nil
}
