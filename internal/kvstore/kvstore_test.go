package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func appendRaw(path string, raw []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func TestPutGetLatest(t *testing.T) {
	s := New()
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
	v1, err := s.Put("k", []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Put("k", []byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Fatalf("versions not monotonic: %d then %d", v1, v2)
	}
	got, err := s.Get("k")
	if err != nil || string(got.Value) != "two" {
		t.Fatalf("Get = %q, %v", got.Value, err)
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := New()
	buf := []byte("original")
	if _, err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, _ := s.Get("k")
	if string(got.Value) != "original" {
		t.Fatal("store aliased the caller's buffer")
	}
}

func TestGetVersion(t *testing.T) {
	s := New()
	v1, _ := s.Put("k", []byte("a"))
	_, _ = s.Put("other", []byte("x"))
	v3, _ := s.Put("k", []byte("b"))
	got, err := s.GetVersion("k", v1)
	if err != nil || string(got.Value) != "a" {
		t.Fatalf("GetVersion(v1) = %q, %v", got.Value, err)
	}
	if _, err := s.GetVersion("k", v1+1); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("GetVersion(middle) err = %v", err)
	}
	if got, _ := s.GetVersion("k", v3); string(got.Value) != "b" {
		t.Fatalf("GetVersion(v3) = %q", got.Value)
	}
}

func TestGetByTime(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := New(WithClock(clock))
	_, _ = s.Put("k", []byte("t1000"))
	now = time.Unix(2000, 0)
	_, _ = s.Put("k", []byte("t2000"))

	if _, err := s.GetByTime("k", time.Unix(999, 0)); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("before first version err = %v", err)
	}
	got, err := s.GetByTime("k", time.Unix(1500, 0))
	if err != nil || string(got.Value) != "t1000" {
		t.Fatalf("GetByTime(1500) = %q, %v", got.Value, err)
	}
	got, _ = s.GetByTime("k", time.Unix(2000, 0))
	if string(got.Value) != "t2000" {
		t.Fatalf("GetByTime(2000) = %q (boundary must be inclusive)", got.Value)
	}
	if _, err := s.GetByTime("missing", time.Unix(3000, 0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
}

func TestKeysAndLen(t *testing.T) {
	s := New()
	_, _ = s.Put("a/1", nil)
	_, _ = s.Put("a/2", nil)
	_, _ = s.Put("b/1", nil)
	if got := s.Keys("a/"); len(got) != 2 || got[0] != "a/1" || got[1] != "a/2" {
		t.Fatalf("Keys(a/) = %v", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestApplyReplicated(t *testing.T) {
	s := New()
	ts := time.Unix(5, 0)
	if err := s.Apply("k", []byte("v10"), 10, ts); err != nil {
		t.Fatal(err)
	}
	// Stale or duplicate versions are rejected.
	if err := s.Apply("k", []byte("old"), 10, ts); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("duplicate apply err = %v", err)
	}
	if err := s.Apply("k", []byte("older"), 3, ts); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale apply err = %v", err)
	}
	if err := s.Apply("k", []byte("v11"), 11, ts.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("k")
	if got.Num != 11 || string(got.Value) != "v11" {
		t.Fatalf("after apply: %d %q", got.Num, got.Value)
	}
	// Local Put after Apply continues above the applied version.
	ver, _ := s.Put("k", []byte("local"))
	if ver <= 11 {
		t.Fatalf("local version %d not above applied 11", ver)
	}
}

func TestHistoryIsCopy(t *testing.T) {
	s := New()
	_, _ = s.Put("k", []byte("a"))
	h := s.History("k")
	if len(h) != 1 {
		t.Fatalf("history len = %d", len(h))
	}
	h[0].Num = 999
	h2 := s.History("k")
	if h2[0].Num == 999 {
		t.Fatal("History exposes internal state")
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.wal")
	w, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s := New(WithWAL(w))
	for i := 0; i < 20; i++ {
		if _, err := s.Put(fmt.Sprintf("k%d", i%3), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	records, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 20 {
		t.Fatalf("recovered %d records, want 20", len(records))
	}
	s2 := New()
	if err := s2.Load(records); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		a, _ := s.Get(key)
		b, err := s2.Get(key)
		if err != nil || !bytes.Equal(a.Value, b.Value) || a.Num != b.Num {
			t.Fatalf("recovered %s = %q@%d, want %q@%d (%v)", key, b.Value, b.Num, a.Value, a.Num, err)
		}
	}
	if s2.LatestVersion() != s.LatestVersion() {
		t.Fatalf("version counters diverge: %d vs %d", s2.LatestVersion(), s.LatestVersion())
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.wal")
	w, err := OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	s := New(WithWAL(w))
	_, _ = s.Put("a", []byte("intact"))
	_, _ = s.Put("b", []byte("intact"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the tail: append garbage that looks like a header.
	f, err := filepath.Glob(path)
	if err != nil || len(f) != 1 {
		t.Fatal("glob failed")
	}
	appendGarbage(t, path)

	records, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("recovered %d records, want 2 (torn tail dropped)", len(records))
	}
}

func appendGarbage(t *testing.T, path string) {
	t.Helper()
	w, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// Write a record then truncate... simpler: write raw garbage bytes.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := appendRaw(path, []byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 50, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRequiresEmptyStore(t *testing.T) {
	s := New()
	_, _ = s.Put("k", nil)
	if err := s.Load(nil); !errors.Is(err, ErrStoreDirty) {
		t.Fatalf("Load on dirty store err = %v", err)
	}
}

func TestReadWALMissingFile(t *testing.T) {
	records, err := ReadWAL(filepath.Join(t.TempDir(), "nope.wal"))
	if err != nil || records != nil {
		t.Fatalf("missing WAL: %v, %v", records, err)
	}
}

// TestQuickVersionHistoryOrdered property-checks that any Put sequence
// yields strictly increasing versions and GetVersion retrieves each.
func TestQuickVersionHistoryOrdered(t *testing.T) {
	f := func(values [][]byte) bool {
		s := New()
		var vers []uint64
		for _, v := range values {
			ver, err := s.Put("k", v)
			if err != nil {
				return false
			}
			vers = append(vers, ver)
		}
		for i := 1; i < len(vers); i++ {
			if vers[i] <= vers[i-1] {
				return false
			}
		}
		for i, ver := range vers {
			got, err := s.GetVersion("k", ver)
			if err != nil || !bytes.Equal(got.Value, values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := s.Put(fmt.Sprintf("g%d", g), []byte{byte(i)}); err != nil {
					t.Errorf("put: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if s.LatestVersion() != 800 {
		t.Fatalf("latest version = %d, want 800", s.LatestVersion())
	}
	for g := 0; g < 8; g++ {
		h := s.History(fmt.Sprintf("g%d", g))
		if len(h) != 100 {
			t.Fatalf("g%d history = %d", g, len(h))
		}
		for i := 1; i < len(h); i++ {
			if h[i].Num <= h[i-1].Num {
				t.Fatal("history not ordered")
			}
		}
	}
}

func TestWALWriteFaultEntersReadOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s := New(WithWAL(w))
	if _, err := s.Put("a", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Disk fills: the put fails with the typed error carrying the cause, and
	// the store degrades to read-only.
	diskFull := errors.New("no space left on device")
	w.SetWriteFault(diskFull)
	if _, err := s.Put("a", []byte("v2")); !errors.Is(err, ErrWALWrite) || !errors.Is(err, diskFull) {
		t.Fatalf("put with write fault: err=%v, want ErrWALWrite wrapping cause", err)
	}
	if !s.ReadOnly() {
		t.Fatal("store not read-only after wal write failure")
	}

	// Degraded mode: writes fail fast, reads keep serving.
	if _, err := s.Put("b", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("put while read-only: err=%v, want ErrReadOnly", err)
	}
	if err := s.Apply("b", []byte("x"), 99, time.Now()); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("apply while read-only: err=%v, want ErrReadOnly", err)
	}
	if v, err := s.Get("a"); err != nil || string(v.Value) != "v1" {
		t.Fatalf("read while read-only: %q, %v", v.Value, err)
	}

	// The failed write was never applied, so recovery sees only v1.
	w.SetWriteFault(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadWAL(path)
	if err != nil || len(recs) != 1 || string(recs[0].Value) != "v1" {
		t.Fatalf("recovered %d records (%v), want exactly v1", len(recs), err)
	}

	// Disk fixed: clearing read-only re-arms writes end to end.
	s.ClearReadOnly()
	if _, err := s.Put("a", []byte("v3")); err != nil {
		t.Fatalf("put after ClearReadOnly: %v", err)
	}
	if v, _ := s.Get("a"); string(v.Value) != "v3" {
		t.Fatalf("latest after recovery = %q, want v3", v.Value)
	}
}

func TestWALEveryTruncationPointRecoversPrefix(t *testing.T) {
	// The crash matrix for the shared segment framing, exercised through
	// kvstore's own encoding: a WAL truncated at every possible byte
	// boundary recovers an exact prefix of the written puts.
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	w, err := OpenWAL(full, false)
	if err != nil {
		t.Fatal(err)
	}
	s := New(WithWAL(w))
	want := make([][2]string, 0, 3)
	for i := 0; i < 3; i++ {
		k, v := fmt.Sprintf("key%d", i), fmt.Sprintf("value-%d", i)
		if _, err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want = append(want, [2]string{k, v})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(raw); cut++ {
		p := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := ReadWAL(p)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(recs) > len(want) {
			t.Fatalf("cut=%d: recovered %d > written %d", cut, len(recs), len(want))
		}
		for i, r := range recs {
			if r.Key != want[i][0] || string(r.Value) != want[i][1] {
				t.Fatalf("cut=%d: record %d = %s=%q, want %s=%q",
					cut, i, r.Key, r.Value, want[i][0], want[i][1])
			}
		}
	}
}
