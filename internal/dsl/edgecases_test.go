package dsl

import (
	"strings"
	"testing"
)

// TestKthEdgeCases is the boundary table for the KTH operators: rank at
// each end of the valid range, ranks past it, empty node sets, and
// duplicate operands — both the explicit kind (two operands naming the
// same node, which is a 2-element value list) and the union kind ($1+$1,
// which dedups to one node and can shrink a value list below the rank).
// Invalid predicates must be rejected at resolve (compile) time, never at
// evaluation.
func TestKthEdgeCases(t *testing.T) {
	env := newFakeEnv() // 8 nodes, self = 1
	src := received(5, 3, 9, 1, 1, 9, 3, 5)

	valid := []struct {
		pred string
		want uint64
	}{
		// Rank boundaries: k = 1 and k = N degenerate to MIN/MAX.
		{"KTH_MIN(1, $ALLWNODES)", 1},
		{"KTH_MAX(1, $ALLWNODES)", 9},
		{"KTH_MIN(8, $ALLWNODES)", 9},
		{"KTH_MAX(8, $ALLWNODES)", 1},
		// k = N spelled via SIZEOF stays in range by construction.
		{"KTH_MIN(SIZEOF($ALLWNODES), $ALLWNODES)", 9},
		// Explicit duplicate operands are a value list, not a set: both
		// cells are loaded, so the rank range is [1, 2].
		{"KTH_MIN(2, $1, $1)", 5},
		{"KTH_MAX(2, $3, $3)", 9},
		// A single-node set is fine at rank 1.
		{"KTH_MIN(1, $4)", 1},
		// Union dedup: $1+$1 is the one-node set {1}.
		{"KTH_MIN(1, $1+$1)", 5},
	}
	for _, tc := range valid {
		t.Run(tc.pred, func(t *testing.T) {
			p, err := Compile(tc.pred, env)
			if err != nil {
				t.Fatalf("Compile(%q): %v", tc.pred, err)
			}
			if got := p.Eval(src); got != tc.want {
				t.Fatalf("Eval(%q) = %d, want %d", tc.pred, got, tc.want)
			}
		})
	}

	invalid := []struct {
		pred string
		frag string // required fragment of the resolve error
	}{
		// Ranks outside [1, len(values)].
		{"KTH_MIN(0, $ALLWNODES)", "out of range"},
		{"KTH_MAX(0, $ALLWNODES)", "out of range"},
		{"KTH_MIN(9, $ALLWNODES)", "out of range"},
		{"KTH_MAX(9, $ALLWNODES)", "out of range"},
		{"KTH_MIN(SIZEOF($ALLWNODES)+1, $ALLWNODES)", "out of range"},
		// Negative rank via arithmetic.
		{"KTH_MIN(1-2, $ALLWNODES)", "out of range"},
		// Union dedup shrinks the value list below the rank: $1+$1 is one
		// node, so the list has 2 entries and rank 3 is invalid.
		{"KTH_MIN(3, $1+$1, $2)", "out of range"},
		// Empty node sets.
		{"KTH_MIN(1, $ALLWNODES-$ALLWNODES)", "no WAN nodes"},
		{"KTH_MAX(1, $MYWNODE-$MYWNODE)", "no WAN nodes"},
		{"MIN($ALLWNODES-$ALLWNODES)", "no WAN nodes"},
		// A rank with no values at all.
		{"KTH_MIN(1)", "needs a rank and at least one value"},
	}
	for _, tc := range invalid {
		t.Run(tc.pred, func(t *testing.T) {
			ast, err := Parse(tc.pred)
			if err != nil {
				t.Fatalf("Parse(%q) must succeed (rejection belongs to resolve): %v", tc.pred, err)
			}
			_, err = Resolve(ast, env)
			if err == nil {
				t.Fatalf("Resolve(%q) succeeded, want error containing %q", tc.pred, tc.frag)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("Resolve(%q) error %q does not mention %q", tc.pred, err, tc.frag)
			}
		})
	}
}
