// Package dsl implements the stability-frontier predicate language of the
// paper (§III-C): a compact expression language whose operators (MAX, MIN,
// KTH_MAX, KTH_MIN) range over per-node monotonic acknowledgment counters.
//
// A predicate source string goes through four phases, all performed once
// per predicate registration:
//
//	Lex → Parse (AST) → Resolve (macro/variable expansion, type checking,
//	constant folding against a topology) → Compile (flat bytecode program)
//
// The compiled Program is then evaluated on the critical path with a tight,
// allocation-free loop — this reproduction's substitute for the paper's
// libgccjit JIT backend. A tree-walking interpreter over the resolved form
// is kept as an ablation baseline (see Resolved.Eval).
package dsl

import "fmt"

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF    tokenKind = iota + 1
	tokIdent            // MAX, MIN, KTH_MAX, KTH_MIN, SIZEOF, suffix names
	tokInt              // integer literal
	tokRef              // $-reference: $3, $ALLWNODES, $WNODE_Foo, ...
	tokLParen           // (
	tokRParen           // )
	tokComma            // ,
	tokDot              // .
	tokPlus             // +
	tokMinus            // -
	tokStar             // *
	tokSlash            // /
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokRef:
		return "$-reference"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source position.
type token struct {
	kind tokenKind
	text string // identifier text, ref text (without '$'), or digits
	pos  int    // byte offset in the source
}

// SyntaxError reports a lexical or grammatical problem with its byte offset
// in the predicate source.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("dsl: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func syntaxErrf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
