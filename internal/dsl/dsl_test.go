package dsl

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// fakeEnv is a test topology: 8 nodes in 4 regions mirroring the paper's
// Fig. 2, with self = 1.
type fakeEnv struct {
	n    int
	self int
	az   map[string][]int
	name map[string]int
	typs map[string]uint16
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		n:    8,
		self: 1,
		az: map[string][]int{
			"North_California": {1, 2},
			"North_Virginia":   {3, 4, 5, 6},
			"Oregon":           {7},
			"Ohio":             {8},
		},
		name: map[string]int{
			"NCal_A": 1, "NCal_B": 2,
			"NVir_A": 3, "NVir_B": 4, "NVir_C": 5, "NVir_D": 6,
			"Oregon_A": 7, "Ohio_A": 8,
		},
		typs: map[string]uint16{"received": 1, "persisted": 2, "delivered": 3, "verified": 16},
	}
}

func (e *fakeEnv) N() int      { return e.n }
func (e *fakeEnv) MyNode() int { return e.self }

func (e *fakeEnv) AllNodes() []int {
	out := make([]int, e.n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func (e *fakeEnv) MyAZNodes() []int { return e.az["North_California"] }

func (e *fakeEnv) AZNodes(name string) ([]int, error) {
	if ns, ok := e.az[name]; ok {
		return ns, nil
	}
	return nil, fmt.Errorf("no az %q", name)
}

func (e *fakeEnv) NodeIndex(name string) (int, error) {
	if i, ok := e.name[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("no node %q", name)
}

func (e *fakeEnv) StabilityType(name string) (uint16, error) {
	if id, ok := e.typs[name]; ok {
		return id, nil
	}
	return 0, fmt.Errorf("no type %q", name)
}

// mapSource backs predicate evaluation with a plain map.
type mapSource map[[2]int]uint64

func (s mapSource) Value(node int, typ uint16) uint64 { return s[[2]int{node, int(typ)}] }

// tableSource assigns node i counter value vals[i-1] for type received(1),
// and vals[i-1]+offset for other types.
func received(vals ...uint64) mapSource {
	s := make(mapSource)
	for i, v := range vals {
		s[[2]int{i + 1, 1}] = v
	}
	return s
}

func compile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src, newFakeEnv())
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return p
}

func TestEvalBasicOperators(t *testing.T) {
	// Counters per Fig. 1: node1..node6 (we use 8; extra nodes zero).
	src := received(33, 25, 19, 21, 23, 28, 40, 2)
	tests := []struct {
		pred string
		want uint64
	}{
		{"MAX($ALLWNODES-$MYWNODE)", 40},
		{"MIN($ALLWNODES)", 2},
		{"MIN($ALLWNODES-$WNODE_Ohio_A)", 19},
		{"MAX($1, $2, $3)", 33},
		{"MIN($2, $3, $4)", 19},
		{"KTH_MAX(1, $ALLWNODES)", 40},
		{"KTH_MAX(2, $ALLWNODES)", 33},
		{"KTH_MIN(1, $ALLWNODES)", 2},
		{"KTH_MIN(2, $ALLWNODES)", 19},
		{"KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)", 25}, // 5th smallest of {2,19,21,23,25,28,33,40}
		{"MAX($MYAZWNODES-$MYWNODE)", 25},
		{"MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))", 25},
		{"MAX($AZ_North_Virginia)", 28},
		{"MIN(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))", 2},
		{"KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))", 28},
		{"MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))", 40},
		{"MAX($ALLWNODES-$MYAZWNODES+$MYWNODE)", 40}, // union extension
	}
	for _, tc := range tests {
		t.Run(tc.pred, func(t *testing.T) {
			p := compile(t, tc.pred)
			if got := p.Eval(src); got != tc.want {
				t.Fatalf("Eval(%q) = %d, want %d", tc.pred, got, tc.want)
			}
		})
	}
}

func TestTypedSuffixSelectsRow(t *testing.T) {
	src := make(mapSource)
	for node := 1; node <= 8; node++ {
		src[[2]int{node, 1}] = uint64(100 + node) // received
		src[[2]int{node, 16}] = uint64(node)      // verified
	}
	p := compile(t, "MIN(($ALLWNODES-$MYWNODE).verified)")
	if got := p.Eval(src); got != 2 {
		t.Fatalf("verified min = %d, want 2", got)
	}
	p2 := compile(t, "MIN($ALLWNODES-$MYWNODE)")
	if got := p2.Eval(src); got != 102 {
		t.Fatalf("default received min = %d, want 102", got)
	}
	p3 := compile(t, "MAX($3.verified, $4.verified)")
	if got := p3.Eval(src); got != 4 {
		t.Fatalf("single-node suffix = %d, want 4", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	sources := []string{
		"MAX($ALLWNODES-$MYWNODE)",
		"KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)",
		"MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))",
		"KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
		"MIN(($MYAZWNODES-$MYWNODE).verified)",
		"MAX($WNODE_Ohio_A.persisted)",
	}
	for _, src := range sources {
		ast, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := ast.String()
		ast2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q (printed from %q): %v", printed, src, err)
		}
		if ast2.String() != printed {
			t.Fatalf("round trip unstable: %q -> %q -> %q", src, printed, ast2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"MAX",
		"MAX(",
		"MAX()",
		"$ALLWNODES",         // not an operator application
		"FOO($1)",            // unknown operator
		"MAX($)",             // bare $
		"MAX($1,)",           // trailing comma
		"MAX($1) extra",      // trailing tokens
		"MAX($1 $2)",         // missing comma
		"MAX($1.)",           // missing suffix name
		"MAX($UNKNOWNMACRO)", // unknown reference
		"MAX($WNODE_)",       // empty node name
		"MAX($AZ_)",          // empty az name
		"MAX(%$1)",           // bad character
		"MAX(2 + + 3, $1)",   // malformed arithmetic
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	env := newFakeEnv()
	bad := []struct {
		src  string
		frag string
	}{
		{"MAX($99)", "exceeds"},
		{"MAX($WNODE_Nowhere)", "unknown WAN node"},
		{"MAX($AZ_Atlantis)", "unknown availability zone"},
		{"MAX($1.notatype)", "unknown stability type"},
		{"KTH_MAX($1)", "needs a rank"},
		{"KTH_MAX(0, $ALLWNODES)", "out of range"},
		{"KTH_MAX(9, $ALLWNODES)", "out of range"},
		{"KTH_MIN(SIZEOF($ALLWNODES)/0, $ALLWNODES)", "division by zero"},
		{"MAX(5)", "stability source"},
		{"MAX(SIZEOF($ALLWNODES))", "stability source"},
		{"KTH_MIN($ALLWNODES, $ALLWNODES)", "SIZEOF"},
		{"KTH_MIN(MAX($1), $ALLWNODES)", "compile-time"},
		{"MAX($MYWNODE-$MYWNODE)", "no WAN nodes"},
		{"MAX($1*$2)", "not defined on WAN node sets"},
		{"MAX(($1.verified)-$2)", "value list"},
	}
	for _, tc := range bad {
		ast, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q should succeed (resolution must fail instead): %v", tc.src, err)
		}
		_, err = Resolve(ast, env)
		if err == nil {
			t.Errorf("Resolve(%q) succeeded, want error containing %q", tc.src, tc.frag)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Resolve(%q) error %q does not mention %q", tc.src, err, tc.frag)
		}
		var re *ResolveError
		if !errors.As(err, &re) {
			t.Errorf("Resolve(%q) error is %T, want *ResolveError", tc.src, err)
		}
	}
}

func TestDependsOn(t *testing.T) {
	tests := []struct {
		src  string
		want []int
	}{
		{"MAX($ALLWNODES-$MYWNODE)", []int{2, 3, 4, 5, 6, 7, 8}},
		{"MIN($MYAZWNODES)", []int{1, 2}},
		{"MAX($AZ_Oregon, $AZ_Ohio)", []int{7, 8}},
		{"MIN(MAX($3), MAX($3.persisted))", []int{3}},
	}
	for _, tc := range tests {
		p := compile(t, tc.src)
		got := p.DependsOn()
		if len(got) != len(tc.want) {
			t.Fatalf("DependsOn(%q) = %v, want %v", tc.src, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("DependsOn(%q) = %v, want %v", tc.src, got, tc.want)
			}
		}
	}
}

func TestKthDegenerateCases(t *testing.T) {
	src := received(5, 3, 9, 1, 1, 9, 3, 5)
	// KTH_MIN(1, ·) == MIN, KTH_MAX(1, ·) == MAX.
	if got := compile(t, "KTH_MIN(1, $ALLWNODES)").Eval(src); got != 1 {
		t.Fatalf("KTH_MIN(1) = %d, want 1", got)
	}
	if got := compile(t, "KTH_MAX(1, $ALLWNODES)").Eval(src); got != 9 {
		t.Fatalf("KTH_MAX(1) = %d, want 9", got)
	}
	// KTH_MIN(n, ·) == MAX, KTH_MAX(n, ·) == MIN.
	if got := compile(t, "KTH_MIN(SIZEOF($ALLWNODES), $ALLWNODES)").Eval(src); got != 9 {
		t.Fatalf("KTH_MIN(n) = %d, want 9", got)
	}
	if got := compile(t, "KTH_MAX(SIZEOF($ALLWNODES), $ALLWNODES)").Eval(src); got != 1 {
		t.Fatalf("KTH_MAX(n) = %d, want 1", got)
	}
}

func TestWhitespaceAndCaseTolerance(t *testing.T) {
	src := received(1, 2, 3, 4, 5, 6, 7, 8)
	variants := []string{
		"max( $allwnodes )",
		"MAX($ALLWNODES)",
		"  MAX(\n\t$ALLWNODES\n)  ",
	}
	for _, v := range variants {
		p := compile(t, v)
		if got := p.Eval(src); got != 8 {
			t.Fatalf("Eval(%q) = %d, want 8", v, got)
		}
	}
}

func TestDisassembleMentionsEveryLoad(t *testing.T) {
	p := compile(t, "KTH_MIN(2, $MYAZWNODES)")
	dis := p.Disassemble()
	if !strings.Contains(dis, "LOAD") || !strings.Contains(dis, "KTHMIN") {
		t.Fatalf("disassembly missing expected mnemonics:\n%s", dis)
	}
	if p.Len() != 3 { // 2 loads + 1 kth
		t.Fatalf("program length = %d, want 3", p.Len())
	}
}

func TestPaperTable3Predicates(t *testing.T) {
	// All six predicates from Table III must compile against the Fig. 2
	// topology. (The AZ_ names resolve via the region fallback.)
	preds := map[string]string{
		"OneRegion":       "MAX(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
		"MajorityRegions": "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
		"AllRegions":      "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
		"OneWNode":        "MAX($ALLWNODES-$MYWNODE)",
		"MajorityWNodes":  "KTH_MAX(SIZEOF($ALLWNODES)/2+1, ($ALLWNODES-$MYWNODE))",
		"AllWNodes":       "MIN($ALLWNODES-$MYWNODE)",
	}
	src := received(100, 90, 10, 20, 30, 40, 50, 60)
	want := map[string]uint64{
		"OneRegion":       60, // best region max: NVir 40, Oregon 50, Ohio 60
		"MajorityRegions": 50,
		"AllRegions":      40,
		"OneWNode":        90,
		"MajorityWNodes":  30, // 5th largest of {90,10,20,30,40,50,60}
		"AllWNodes":       10,
	}
	for name, pred := range preds {
		p := compile(t, pred)
		if got := p.Eval(src); got != want[name] {
			t.Errorf("%s = %d, want %d", name, got, want[name])
		}
	}
}
