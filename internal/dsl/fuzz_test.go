package dsl

import (
	"testing"
)

// FuzzParseResolveCompile feeds arbitrary strings through the full
// predicate pipeline. Invariants under fuzzing:
//
//   - no panic anywhere in lex/parse/resolve/compile/eval;
//   - anything that parses must print to a string that reparses to the
//     same canonical form;
//   - anything that resolves must compile, and the compiled program must
//     agree with the tree-walking interpreter on a fixed counter state.
//
// Run with `go test -fuzz=FuzzParseResolveCompile ./internal/dsl` for a
// real fuzzing session; the seed corpus runs in ordinary test mode.
func FuzzParseResolveCompile(f *testing.F) {
	for _, seed := range []string{
		"MIN($ALLWNODES)",
		"MAX($ALLWNODES-$MYWNODE)",
		"KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)",
		"KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
		"MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))",
		"MIN(($ALLWNODES-$MYWNODE).verified)",
		"MAX($WNODE_Ohio_A.persisted, $1)",
		"MAX($1+$2-$3)",
		"KTH_MIN(2-1, $ALLWNODES)",
		"MAX(((($1))))",
		"MAX($",
		"KTH_MIN(,)",
		"MIN($AZ_)",
		"MAX(1/0)",
		"\x00\xff$(",
	} {
		f.Add(seed)
	}

	env := newFakeEnv()
	state := make(mapSource)
	for node := 1; node <= 8; node++ {
		for _, typ := range []int{1, 2, 3, 16} {
			state[[2]int{node, typ}] = uint64(node*31+typ) % 97
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		ast, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := ast.String()
		ast2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of %q does not reparse: %v", printed, src, err)
		}
		if ast2.String() != printed {
			t.Fatalf("canonical form unstable: %q -> %q", printed, ast2.String())
		}
		resolved, err := Resolve(ast, env)
		if err != nil {
			return
		}
		prog := CompileResolved(src, resolved)
		if got, want := prog.Eval(state), resolved.Eval(state); got != want {
			t.Fatalf("backends disagree on %q: compiled %d, interpreted %d", src, got, want)
		}
	})
}
