package dsl

// lexer splits a predicate source string into tokens.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// lexAll tokenizes the entire input, appending a trailing EOF token.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '.':
		l.pos++
		return token{kind: tokDot, pos: start}, nil
	case c == '+':
		l.pos++
		return token{kind: tokPlus, pos: start}, nil
	case c == '-':
		l.pos++
		return token{kind: tokMinus, pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case c == '/':
		l.pos++
		return token{kind: tokSlash, pos: start}, nil
	case c == '$':
		l.pos++
		refStart := l.pos
		for l.pos < len(l.src) && isRefChar(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == refStart {
			return token{}, syntaxErrf(start, "bare '$' without a reference name")
		}
		return token{kind: tokRef, text: l.src[refStart:l.pos], pos: start}, nil
	case isDigit(c):
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokInt, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, syntaxErrf(start, "unexpected character %q", string(c))
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool { return isIdentStart(c) || isDigit(c) }

// isRefChar accepts the characters of a $-reference body: node indexes
// ($12) and names ($ALLWNODES, $WNODE_Foo, $AZ_North_Virginia).
func isRefChar(c byte) bool { return isIdentChar(c) }
