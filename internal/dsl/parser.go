package dsl

import (
	"strconv"
	"strings"
)

// Parse parses a complete predicate. The top level of a predicate must be
// an operator application (paper form p = O(x)).
func Parse(src string) (*CallExpr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	call, ok := expr.(*CallExpr)
	if !ok {
		return nil, syntaxErrf(expr.Pos(), "a predicate must be an operator application (MAX/MIN/KTH_MAX/KTH_MIN)")
	}
	return call, nil
}

// ParseExpr parses a bare expression (used by tests and tooling).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return expr, nil
}

type parser struct {
	toks []token
	at   int
}

func (p *parser) peek() token { return p.toks[p.at] }

func (p *parser) advance() token {
	t := p.toks[p.at]
	if t.kind != tokEOF {
		p.at++
	}
	return t
}

func (p *parser) expect(k tokenKind) error {
	t := p.peek()
	if t.kind != k {
		return syntaxErrf(t.pos, "expected %s, found %s", k, describe(t))
	}
	p.advance()
	return nil
}

func describe(t token) string {
	switch t.kind {
	case tokIdent:
		return "identifier " + strconv.Quote(t.text)
	case tokInt:
		return "integer " + t.text
	case tokRef:
		return "$" + t.text
	default:
		return t.kind.String()
	}
}

// parseExpr := parseMul (('+'|'-') parseMul)*
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPlus && t.kind != tokMinus {
			return left, nil
		}
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := byte('+')
		if t.kind == tokMinus {
			op = '-'
		}
		left = &BinExpr{Op: op, L: left, R: right, At: left.Pos()}
	}
}

// parseMul := parsePostfix (('*'|'/') parsePostfix)*
func (p *parser) parseMul() (Expr, error) {
	left, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokStar && t.kind != tokSlash {
			return left, nil
		}
		p.advance()
		right, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		op := byte('*')
		if t.kind == tokSlash {
			op = '/'
		}
		left = &BinExpr{Op: op, L: left, R: right, At: left.Pos()}
	}
}

// parsePostfix := parsePrimary ['.' IDENT]
func (p *parser) parsePostfix() (Expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokDot {
		return prim, nil
	}
	dot := p.advance()
	name := p.peek()
	if name.kind != tokIdent {
		return nil, syntaxErrf(dot.pos, "expected a stability-type name after '.', found %s", describe(name))
	}
	p.advance()
	return &TypedExpr{Set: prim, Type: name.text, At: prim.Pos()}, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, syntaxErrf(t.pos, "integer literal %q out of range", t.text)
		}
		return &NumLit{Value: v, At: t.pos}, nil

	case tokRef:
		p.advance()
		return parseRef(t)

	case tokIdent:
		return p.parseIdentForm(t)

	case tokLParen:
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil

	default:
		return nil, syntaxErrf(t.pos, "expected an expression, found %s", describe(t))
	}
}

// parseIdentForm parses SIZEOF(...) or an operator call.
func (p *parser) parseIdentForm(t token) (Expr, error) {
	upper := strings.ToUpper(t.text)
	if upper == "SIZEOF" {
		p.advance()
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &SizeofExpr{Arg: arg, At: t.pos}, nil
	}
	op, ok := opByName[upper]
	if !ok {
		return nil, syntaxErrf(t.pos, "unknown identifier %q (expected MAX, MIN, KTH_MAX, KTH_MIN or SIZEOF)", t.text)
	}
	p.advance()
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	call := &CallExpr{Op: op, At: t.pos}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		next := p.peek()
		switch next.kind {
		case tokComma:
			p.advance()
		case tokRParen:
			p.advance()
			return call, nil
		default:
			return nil, syntaxErrf(next.pos, "expected ',' or ')' in argument list, found %s", describe(next))
		}
	}
}

// parseRef interprets the body of a $-reference token.
func parseRef(t token) (Expr, error) {
	body := t.text
	if isAllDigits(body) {
		idx, err := strconv.Atoi(body)
		if err != nil || idx < 1 {
			return nil, syntaxErrf(t.pos, "invalid node index $%s", body)
		}
		return &SetRef{Kind: SetIndex, Index: idx, At: t.pos}, nil
	}
	switch strings.ToUpper(body) {
	case "ALLWNODES":
		return &SetRef{Kind: SetAllWNodes, At: t.pos}, nil
	case "MYWNODE", "MYWNODES":
		return &SetRef{Kind: SetMyWNode, At: t.pos}, nil
	case "MYAZWNODES":
		return &SetRef{Kind: SetMyAZWNodes, At: t.pos}, nil
	}
	if rest, ok := cutPrefixFold(body, "WNODE_"); ok {
		if rest == "" {
			return nil, syntaxErrf(t.pos, "$WNODE_ needs a node name")
		}
		return &SetRef{Kind: SetWNodeNamed, Name: rest, At: t.pos}, nil
	}
	if rest, ok := cutPrefixFold(body, "AZ_"); ok {
		if rest == "" {
			return nil, syntaxErrf(t.pos, "$AZ_ needs an availability-zone name")
		}
		return &SetRef{Kind: SetAZNamed, Name: rest, At: t.pos}, nil
	}
	return nil, syntaxErrf(t.pos, "unknown reference $%s", body)
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return true
}

// cutPrefixFold is strings.CutPrefix with ASCII case-insensitive matching
// of the prefix.
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) {
		return "", false
	}
	if !strings.EqualFold(s[:len(prefix)], prefix) {
		return "", false
	}
	return s[len(prefix):], true
}
