package dsl

import (
	"fmt"
	"strconv"
	"strings"
)

// OpKind is one of the four frontier operators.
type OpKind int

// The operator set of the paper's predicate form p = O(x).
const (
	OpMax OpKind = iota + 1
	OpMin
	OpKthMax
	OpKthMin
)

// String returns the operator's DSL spelling.
func (o OpKind) String() string {
	switch o {
	case OpMax:
		return "MAX"
	case OpMin:
		return "MIN"
	case OpKthMax:
		return "KTH_MAX"
	case OpKthMin:
		return "KTH_MIN"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// opByName maps DSL spellings (including the paper's space-separated
// figures rendered with underscores) to operator kinds.
var opByName = map[string]OpKind{
	"MAX":     OpMax,
	"MIN":     OpMin,
	"KTH_MAX": OpKthMax,
	"KTH_MIN": OpKthMin,
}

// SetKind identifies the flavor of a $-reference.
type SetKind int

// $-reference flavors (paper §III-C operands, macros and variables).
const (
	SetIndex      SetKind = iota + 1 // $3
	SetAllWNodes                     // $ALLWNODES
	SetMyWNode                       // $MYWNODE (alias: $MYWNODES)
	SetMyAZWNodes                    // $MYAZWNODES
	SetWNodeNamed                    // $WNODE_<name>
	SetAZNamed                       // $AZ_<name>
)

// Expr is a parsed expression node.
type Expr interface {
	fmt.Stringer
	// Pos is the byte offset of the expression's first token.
	Pos() int
	exprNode()
}

// CallExpr is an operator application: MAX(a, b, ...).
type CallExpr struct {
	Op   OpKind
	Args []Expr
	At   int
}

// NumLit is an integer literal.
type NumLit struct {
	Value int64
	At    int
}

// SizeofExpr is SIZEOF(set).
type SizeofExpr struct {
	Arg Expr
	At  int
}

// BinExpr is a binary arithmetic or set-difference expression. Op is one of
// '+', '-', '*', '/'.
type BinExpr struct {
	Op   byte
	L, R Expr
	At   int
}

// SetRef is a $-reference.
type SetRef struct {
	Kind SetKind
	// Name holds the node or AZ name for SetWNodeNamed / SetAZNamed.
	Name string
	// Index holds the node index for SetIndex.
	Index int
	At    int
}

// TypedExpr applies a stability-type suffix to a set expression:
// ($MYAZWNODES-$MYWNODE).verified.
type TypedExpr struct {
	Set  Expr
	Type string
	At   int
}

var (
	_ Expr = (*CallExpr)(nil)
	_ Expr = (*NumLit)(nil)
	_ Expr = (*SizeofExpr)(nil)
	_ Expr = (*BinExpr)(nil)
	_ Expr = (*SetRef)(nil)
	_ Expr = (*TypedExpr)(nil)
)

func (*CallExpr) exprNode()   {}
func (*NumLit) exprNode()     {}
func (*SizeofExpr) exprNode() {}
func (*BinExpr) exprNode()    {}
func (*SetRef) exprNode()     {}
func (*TypedExpr) exprNode()  {}

// Pos implements Expr.
func (e *CallExpr) Pos() int { return e.At }

// Pos implements Expr.
func (e *NumLit) Pos() int { return e.At }

// Pos implements Expr.
func (e *SizeofExpr) Pos() int { return e.At }

// Pos implements Expr.
func (e *BinExpr) Pos() int { return e.At }

// Pos implements Expr.
func (e *SetRef) Pos() int { return e.At }

// Pos implements Expr.
func (e *TypedExpr) Pos() int { return e.At }

// String renders the expression in canonical DSL syntax.
func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Op.String() + "(" + strings.Join(parts, ", ") + ")"
}

// String renders the expression in canonical DSL syntax.
func (e *NumLit) String() string { return strconv.FormatInt(e.Value, 10) }

// String renders the expression in canonical DSL syntax.
func (e *SizeofExpr) String() string { return "SIZEOF(" + e.Arg.String() + ")" }

// String renders the expression in canonical DSL syntax.
func (e *BinExpr) String() string {
	l := e.L.String()
	r := e.R.String()
	if rb, ok := e.R.(*BinExpr); ok && samePrecedence(e.Op, rb.Op) {
		// Left-associative operators need parentheses on the right to
		// round-trip: a-(b-c) must not print as a-b-c.
		r = "(" + r + ")"
	}
	if lb, ok := e.L.(*BinExpr); ok && lowerPrecedence(lb.Op, e.Op) {
		l = "(" + l + ")"
	}
	if rb, ok := e.R.(*BinExpr); ok && lowerPrecedence(rb.Op, e.Op) {
		r = "(" + r + ")"
	}
	return l + string(e.Op) + r
}

// String renders the expression in canonical DSL syntax.
func (e *SetRef) String() string {
	switch e.Kind {
	case SetIndex:
		return "$" + strconv.Itoa(e.Index)
	case SetAllWNodes:
		return "$ALLWNODES"
	case SetMyWNode:
		return "$MYWNODE"
	case SetMyAZWNodes:
		return "$MYAZWNODES"
	case SetWNodeNamed:
		return "$WNODE_" + e.Name
	case SetAZNamed:
		return "$AZ_" + e.Name
	default:
		return fmt.Sprintf("$?(%d)", int(e.Kind))
	}
}

// String renders the expression in canonical DSL syntax.
func (e *TypedExpr) String() string {
	if _, ok := e.Set.(*SetRef); ok {
		return e.Set.String() + "." + e.Type
	}
	return "(" + e.Set.String() + ")." + e.Type
}

func precedence(op byte) int {
	switch op {
	case '*', '/':
		return 2
	default:
		return 1
	}
}

func samePrecedence(a, b byte) bool  { return precedence(a) == precedence(b) }
func lowerPrecedence(a, b byte) bool { return precedence(a) < precedence(b) }
