package dsl

import (
	"sort"
	"testing"
)

// recordingSource wraps a Source and records every (node, type) cell read
// during evaluation, so a test can compare the actual read set against the
// program's static metadata.
type recordingSource struct {
	inner Source
	reads map[Cell]struct{}
	nodes map[int]struct{}
}

func newRecordingSource(inner Source) *recordingSource {
	return &recordingSource{
		inner: inner,
		reads: make(map[Cell]struct{}),
		nodes: make(map[int]struct{}),
	}
}

func (r *recordingSource) Value(node int, typ uint16) uint64 {
	r.reads[Cell{Node: node, Type: typ}] = struct{}{}
	r.nodes[node] = struct{}{}
	return r.inner.Value(node, typ)
}

// FuzzCompileEval fuzzes the compiler+evaluator contract the incremental
// frontier registry depends on: for arbitrary input, Compile either
// returns an error or a program whose static metadata is exact —
// evaluation reads precisely the cells Cells() lists and precisely the
// nodes DependsOn() lists, never more, never fewer. A predicate that read
// an unlisted cell would be missing from the registry's inverted index and
// silently stop stabilizing; one that listed an unread cell would only
// waste drain work. Evaluation must also be deterministic. Seeds come from
// the KTH boundary table (edgecases_test.go) plus the pipeline fuzz seeds.
//
// Run with `go test -fuzz=FuzzCompileEval ./internal/dsl` for a real
// session; the seed corpus runs in ordinary test mode.
func FuzzCompileEval(f *testing.F) {
	for _, seed := range []string{
		// KTH boundary table: rank extremes, SIZEOF ranks, duplicate
		// operands, single- and deduped-union node sets.
		"KTH_MIN(1, $ALLWNODES)",
		"KTH_MAX(1, $ALLWNODES)",
		"KTH_MIN(8, $ALLWNODES)",
		"KTH_MAX(8, $ALLWNODES)",
		"KTH_MIN(SIZEOF($ALLWNODES), $ALLWNODES)",
		"KTH_MIN(2, $1, $1)",
		"KTH_MAX(2, $3, $3)",
		"KTH_MIN(1, $4)",
		"KTH_MIN(1, $1+$1)",
		// Invalid at resolve time — compile-or-error, never a panic.
		"KTH_MIN(0, $ALLWNODES)",
		"KTH_MIN(9, $ALLWNODES)",
		"KTH_MIN(SIZEOF($ALLWNODES)+1, $ALLWNODES)",
		"KTH_MIN(1-2, $ALLWNODES)",
		"KTH_MIN(3, $1+$1, $2)",
		"KTH_MIN(1, $ALLWNODES-$ALLWNODES)",
		"KTH_MIN(1)",
		// The paper's predicate zoo and assorted malformed inputs.
		"MIN($ALLWNODES)",
		"MAX($ALLWNODES-$MYWNODE)",
		"KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)",
		"MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))",
		"MIN(($ALLWNODES-$MYWNODE).verified)",
		"MAX($WNODE_Ohio_A.persisted, $1)",
		"MAX($",
		"KTH_MIN(,)",
		"\x00\xff$(",
	} {
		f.Add(seed)
	}

	env := newFakeEnv()
	state := make(mapSource)
	for node := 1; node <= 8; node++ {
		for _, typ := range []int{1, 2, 3, 16} {
			state[[2]int{node, typ}] = uint64(node*31+typ) % 97
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src, env)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rec := newRecordingSource(state)
		got := prog.Eval(rec)

		// Cells() must equal the evaluation read set exactly.
		cells := prog.Cells()
		declared := make(map[Cell]struct{}, len(cells))
		for _, c := range cells {
			if _, dup := declared[c]; dup {
				t.Fatalf("Cells() of %q lists %+v twice", src, c)
			}
			declared[c] = struct{}{}
		}
		if len(declared) != len(rec.reads) {
			t.Fatalf("%q: Cells() lists %d cells, evaluation read %d", src, len(declared), len(rec.reads))
		}
		for c := range rec.reads {
			if _, ok := declared[c]; !ok {
				t.Fatalf("%q read undeclared cell %+v", src, c)
			}
		}

		// DependsOn() must equal the set of nodes read, distinct and
		// ascending.
		deps := prog.DependsOn()
		if !sort.IntsAreSorted(deps) {
			t.Fatalf("DependsOn() of %q not ascending: %v", src, deps)
		}
		seen := make(map[int]struct{}, len(deps))
		for _, n := range deps {
			if _, dup := seen[n]; dup {
				t.Fatalf("DependsOn() of %q lists node %d twice: %v", src, n, deps)
			}
			seen[n] = struct{}{}
		}
		if len(seen) != len(rec.nodes) {
			t.Fatalf("%q: DependsOn() lists %d nodes, evaluation read %d", src, len(seen), len(rec.nodes))
		}
		for n := range rec.nodes {
			if _, ok := seen[n]; !ok {
				t.Fatalf("%q read undeclared node %d", src, n)
			}
		}

		// Evaluation is deterministic.
		if again := prog.Eval(state); again != got {
			t.Fatalf("%q not deterministic: %d then %d", src, got, again)
		}
	})
}
