package dsl

import (
	"fmt"
	"sort"
)

// Env supplies everything resolution needs from the deployment: the
// topology (for macro and variable expansion) and the stability-type
// registry (for '.suffix' lookup). config.Topology plus the frontier's type
// registry satisfy it; tests use lightweight fakes.
type Env interface {
	// N is the number of WAN nodes.
	N() int
	// MyNode is the local node's 1-based index ($MYWNODE).
	MyNode() int
	// AllNodes lists every node index ($ALLWNODES).
	AllNodes() []int
	// MyAZNodes lists the local availability zone's node indexes
	// ($MYAZWNODES), including the local node.
	MyAZNodes() []int
	// AZNodes lists the node indexes of the named availability zone
	// ($AZ_name); implementations may fall back to region names.
	AZNodes(name string) ([]int, error)
	// NodeIndex resolves a node name ($WNODE_name) to its index.
	NodeIndex(name string) (int, error)
	// StabilityType resolves a stability-type name ('.received',
	// '.persisted', application-defined) to its numeric id.
	StabilityType(name string) (uint16, error)
}

// Source supplies per-(node, stability type) monotonic counters at
// evaluation time — the ACK recorder.
type Source interface {
	// Value returns the highest sequence number acknowledged by node for
	// the given stability type.
	Value(node int, typ uint16) uint64
}

// ResolveError reports a semantic problem found while resolving a parsed
// predicate against an Env.
type ResolveError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *ResolveError) Error() string {
	return fmt.Sprintf("dsl: resolve error at offset %d: %s", e.Pos, e.Msg)
}

func resolveErrf(pos int, format string, args ...any) error {
	return &ResolveError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Resolved is a predicate after macro expansion, type checking and constant
// folding: an operator tree whose leaves are single counter loads. It can
// be evaluated directly (tree-walking; the ablation baseline) or compiled
// to a Program.
type Resolved struct {
	// Root is the top operator.
	Root *ROp
	// DependsOn lists the distinct node indexes the predicate reads,
	// ascending.
	DependsOn []int
}

// RNode is a node of the resolved tree: either an ROp or an RLoad.
type RNode interface{ rnode() }

// RLoad reads one (node, stability-type) counter.
type RLoad struct {
	Node int
	Type uint16
}

// ROp applies an operator over resolved children. K is the (constant-
// folded) rank for the KTH operators.
type ROp struct {
	Op   OpKind
	K    int
	Args []RNode
}

func (*RLoad) rnode() {}
func (*ROp) rnode()   {}

// Resolve expands, checks and folds a parsed predicate against env.
func Resolve(call *CallExpr, env Env) (*Resolved, error) {
	r := &resolver{env: env, defaultType: "received"}
	root, err := r.call(call)
	if err != nil {
		return nil, err
	}
	deps := make([]int, 0, len(r.deps))
	for n := range r.deps {
		deps = append(deps, n)
	}
	sort.Ints(deps)
	return &Resolved{Root: root, DependsOn: deps}, nil
}

type resolver struct {
	env         Env
	defaultType string
	deps        map[int]bool
}

func (r *resolver) call(c *CallExpr) (*ROp, error) {
	op := &ROp{Op: c.Op}
	args := c.Args
	switch c.Op {
	case OpKthMax, OpKthMin:
		if len(args) < 2 {
			return nil, resolveErrf(c.At, "%s needs a rank and at least one value", c.Op)
		}
		k, err := r.constInt(args[0])
		if err != nil {
			return nil, err
		}
		op.K = int(k)
		args = args[1:]
	default:
		if len(args) == 0 {
			return nil, resolveErrf(c.At, "%s needs at least one argument", c.Op)
		}
	}
	for _, a := range args {
		vals, err := r.valueList(a)
		if err != nil {
			return nil, err
		}
		op.Args = append(op.Args, vals...)
	}
	if len(op.Args) == 0 {
		return nil, resolveErrf(c.At, "%s argument expands to an empty value list", c.Op)
	}
	if c.Op == OpKthMax || c.Op == OpKthMin {
		if op.K < 1 || op.K > len(op.Args) {
			return nil, resolveErrf(c.At, "%s rank %d out of range [1, %d]", c.Op, op.K, len(op.Args))
		}
	}
	return op, nil
}

// valueList resolves an operator argument to one or more value sources.
func (r *resolver) valueList(e Expr) ([]RNode, error) {
	switch v := e.(type) {
	case *CallExpr:
		op, err := r.call(v)
		if err != nil {
			return nil, err
		}
		return []RNode{op}, nil

	case *TypedExpr:
		nodes, err := r.set(v.Set)
		if err != nil {
			return nil, err
		}
		typ, err := r.env.StabilityType(v.Type)
		if err != nil {
			return nil, resolveErrf(v.At, "unknown stability type %q: %v", v.Type, err)
		}
		return r.loads(nodes, typ, v.At)

	case *SetRef, *BinExpr:
		nodes, err := r.set(e)
		if err != nil {
			return nil, err
		}
		typ, err := r.env.StabilityType(r.defaultType)
		if err != nil {
			return nil, resolveErrf(e.Pos(), "default stability type %q unavailable: %v", r.defaultType, err)
		}
		return r.loads(nodes, typ, e.Pos())

	case *NumLit, *SizeofExpr:
		return nil, resolveErrf(e.Pos(), "integer expression cannot be used as a stability source (SIZEOF arithmetic belongs in a KTH rank)")

	default:
		return nil, resolveErrf(e.Pos(), "unsupported expression %T", e)
	}
}

func (r *resolver) loads(nodes []int, typ uint16, pos int) ([]RNode, error) {
	if len(nodes) == 0 {
		return nil, resolveErrf(pos, "set expands to no WAN nodes")
	}
	if r.deps == nil {
		r.deps = make(map[int]bool)
	}
	out := make([]RNode, len(nodes))
	for i, n := range nodes {
		r.deps[n] = true
		out[i] = &RLoad{Node: n, Type: typ}
	}
	return out, nil
}

// set evaluates a set-valued expression to a sorted list of node indexes.
func (r *resolver) set(e Expr) ([]int, error) {
	switch v := e.(type) {
	case *SetRef:
		return r.setRef(v)
	case *BinExpr:
		l, err := r.set(v.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.set(v.R)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case '-':
			return setDiff(l, rr), nil
		case '+':
			// Union is a documented extension beyond the paper's '-'.
			return setUnion(l, rr), nil
		default:
			return nil, resolveErrf(v.At, "operator %q is not defined on WAN node sets", string(v.Op))
		}
	case *TypedExpr:
		return nil, resolveErrf(v.At, "a '.%s'-suffixed expression is a value list, not a node set", v.Type)
	case *NumLit:
		return nil, resolveErrf(v.At, "integer %d is not a node set (node references are written $%d)", v.Value, v.Value)
	default:
		return nil, resolveErrf(e.Pos(), "expression is not a node set")
	}
}

func (r *resolver) setRef(s *SetRef) ([]int, error) {
	switch s.Kind {
	case SetIndex:
		if s.Index > r.env.N() {
			return nil, resolveErrf(s.At, "node index $%d exceeds the %d configured WAN nodes", s.Index, r.env.N())
		}
		return []int{s.Index}, nil
	case SetAllWNodes:
		return normalizeSet(r.env.AllNodes()), nil
	case SetMyWNode:
		return []int{r.env.MyNode()}, nil
	case SetMyAZWNodes:
		return normalizeSet(r.env.MyAZNodes()), nil
	case SetWNodeNamed:
		idx, err := r.env.NodeIndex(s.Name)
		if err != nil {
			return nil, resolveErrf(s.At, "unknown WAN node %q", s.Name)
		}
		return []int{idx}, nil
	case SetAZNamed:
		nodes, err := r.env.AZNodes(s.Name)
		if err != nil {
			return nil, resolveErrf(s.At, "unknown availability zone %q", s.Name)
		}
		return normalizeSet(nodes), nil
	default:
		return nil, resolveErrf(s.At, "unknown reference kind %d", int(s.Kind))
	}
}

// constInt evaluates a compile-time integer expression (KTH ranks).
func (r *resolver) constInt(e Expr) (int64, error) {
	switch v := e.(type) {
	case *NumLit:
		return v.Value, nil
	case *SizeofExpr:
		nodes, err := r.set(v.Arg)
		if err != nil {
			return 0, err
		}
		return int64(len(nodes)), nil
	case *BinExpr:
		l, err := r.constInt(v.L)
		if err != nil {
			return 0, err
		}
		rr, err := r.constInt(v.R)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case '+':
			return l + rr, nil
		case '-':
			return l - rr, nil
		case '*':
			return l * rr, nil
		case '/':
			if rr == 0 {
				return 0, resolveErrf(v.At, "division by zero in rank expression")
			}
			return l / rr, nil
		default:
			return 0, resolveErrf(v.At, "unknown arithmetic operator %q", string(v.Op))
		}
	case *SetRef:
		return 0, resolveErrf(v.At, "a node set cannot be used as an integer; did you mean SIZEOF(%s)?", v)
	case *CallExpr:
		return 0, resolveErrf(v.At, "KTH ranks must be compile-time constants; nested %s calls are runtime values", v.Op)
	default:
		return 0, resolveErrf(e.Pos(), "expression is not a constant integer")
	}
}

// Eval evaluates the resolved tree directly against src. This is the
// tree-walking ablation baseline; production evaluation goes through
// Program.Eval.
func (r *Resolved) Eval(src Source) uint64 {
	return evalRNode(r.Root, src)
}

func evalRNode(n RNode, src Source) uint64 {
	switch v := n.(type) {
	case *RLoad:
		return src.Value(v.Node, v.Type)
	case *ROp:
		vals := make([]uint64, len(v.Args))
		for i, a := range v.Args {
			vals[i] = evalRNode(a, src)
		}
		return applyOp(v.Op, v.K, vals)
	default:
		return 0
	}
}

// applyOp reduces vals with the operator. vals may be reordered in place.
func applyOp(op OpKind, k int, vals []uint64) uint64 {
	switch op {
	case OpMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case OpMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case OpKthMax:
		sortU64(vals)
		return vals[len(vals)-k]
	case OpKthMin:
		sortU64(vals)
		return vals[k-1]
	default:
		return 0
	}
}

// sortU64 sorts ascending; operand lists are small, so insertion sort wins.
func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

func normalizeSet(nodes []int) []int {
	out := make([]int, len(nodes))
	copy(out, nodes)
	sort.Ints(out)
	// Deduplicate in place.
	w := 0
	for i, n := range out {
		if i == 0 || n != out[w-1] {
			out[w] = n
			w++
		}
	}
	return out[:w]
}

func setDiff(a, b []int) []int {
	drop := make(map[int]bool, len(b))
	for _, n := range b {
		drop[n] = true
	}
	var out []int
	for _, n := range a {
		if !drop[n] {
			out = append(out, n)
		}
	}
	return out
}

func setUnion(a, b []int) []int {
	return normalizeSet(append(append([]int{}, a...), b...))
}
