package dsl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// genPredicate builds a random well-formed predicate over the fake 8-node
// topology, up to the given nesting depth.
func genPredicate(rng *rand.Rand, depth int) string {
	op := []string{"MAX", "MIN", "KTH_MAX", "KTH_MIN"}[rng.Intn(4)]
	nArgs := 1 + rng.Intn(4)
	args := make([]string, 0, nArgs+1)
	for i := 0; i < nArgs; i++ {
		args = append(args, genValueArg(rng, depth))
	}
	if strings.HasPrefix(op, "KTH") {
		// A rank of 1 is always within range regardless of how many
		// values the sets expand to.
		args = append([]string{genRankExpr(rng)}, args...)
	}
	return op + "(" + strings.Join(args, ", ") + ")"
}

func genValueArg(rng *rand.Rand, depth int) string {
	if depth > 0 && rng.Intn(3) == 0 {
		return genPredicate(rng, depth-1)
	}
	set := genSetExpr(rng)
	switch rng.Intn(4) {
	case 0:
		return "(" + set + ").verified"
	case 1:
		return "(" + set + ").persisted"
	default:
		return set
	}
}

func genSetExpr(rng *rand.Rand) string {
	base := []string{
		"$ALLWNODES",
		"$MYAZWNODES",
		fmt.Sprintf("$%d", 1+rng.Intn(8)),
		"$AZ_North_Virginia",
		"$AZ_Oregon",
		"$WNODE_Ohio_A",
	}[rng.Intn(6)]
	if rng.Intn(3) == 0 {
		// Subtract something that can never empty the set entirely
		// when the base is $ALLWNODES; other bases may still empty —
		// the caller tolerates resolve errors for those.
		return base + "-$" + fmt.Sprint(1+rng.Intn(8))
	}
	if rng.Intn(4) == 0 {
		return base + "+$" + fmt.Sprint(1+rng.Intn(8))
	}
	return base
}

func genRankExpr(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return "1"
	case 1:
		return "SIZEOF($MYAZWNODES)" // == 2 on the fake env... actually 2 nodes
	default:
		return "2-1" // == 1
	}
}

// TestQuickCompiledMatchesInterpreted cross-checks the bytecode evaluator
// against the tree-walking interpreter on random predicates and random
// counter states: both backends must agree exactly.
func TestQuickCompiledMatchesInterpreted(t *testing.T) {
	env := newFakeEnv()
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for i := 0; i < 3000; i++ {
		src := genPredicate(rng, 2)
		ast, err := Parse(src)
		if err != nil {
			t.Fatalf("generated unparseable predicate %q: %v", src, err)
		}
		resolved, err := Resolve(ast, env)
		if err != nil {
			continue // e.g. an emptied set or out-of-range rank: fine
		}
		prog := CompileResolved(src, resolved)
		// Random counter state.
		srcTable := make(mapSource)
		for node := 1; node <= 8; node++ {
			for _, typ := range []int{1, 2, 3, 16} {
				srcTable[[2]int{node, typ}] = uint64(rng.Intn(1000))
			}
		}
		got := prog.Eval(srcTable)
		want := resolved.Eval(srcTable)
		if got != want {
			t.Fatalf("backends disagree on %q: compiled %d, interpreted %d", src, got, want)
		}
		checked++
	}
	if checked < 1000 {
		t.Fatalf("only %d/3000 generated predicates resolved; generator too narrow", checked)
	}
}

// TestQuickPrintParseStable: printing a parsed predicate and reparsing the
// output is a fixed point.
func TestQuickPrintParseStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		src := genPredicate(rng, 2)
		ast, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := ast.String()
		ast2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", printed, src, err)
		}
		if ast2.String() != printed {
			t.Fatalf("print not stable: %q -> %q", printed, ast2.String())
		}
	}
}

// TestQuickFrontierMonotoneInCounters: predicates are monotone — raising
// any counter can never lower the frontier. This is the property that
// makes stability reports safely coalescible.
func TestQuickFrontierMonotoneInCounters(t *testing.T) {
	env := newFakeEnv()
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 1500; i++ {
		src := genPredicate(rng, 2)
		ast, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		resolved, err := Resolve(ast, env)
		if err != nil {
			continue
		}
		prog := CompileResolved(src, resolved)
		table := make(mapSource)
		for node := 1; node <= 8; node++ {
			for _, typ := range []int{1, 2, 3, 16} {
				table[[2]int{node, typ}] = uint64(rng.Intn(100))
			}
		}
		before := prog.Eval(table)
		// Raise one random counter.
		k := [2]int{1 + rng.Intn(8), []int{1, 2, 3, 16}[rng.Intn(4)]}
		table[k] += uint64(1 + rng.Intn(100))
		after := prog.Eval(table)
		if after < before {
			t.Fatalf("%q not monotone: %d -> %d after raising %v", src, before, after, k)
		}
	}
}

// TestQuickParserNeverPanics throws random garbage at the full pipeline.
func TestQuickParserNeverPanics(t *testing.T) {
	env := newFakeEnv()
	f := func(junk string) bool {
		ast, err := Parse(junk)
		if err != nil {
			return true
		}
		if _, err := Resolve(ast, env); err != nil {
			return true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Also structured near-miss inputs built from real tokens.
	pieces := []string{"MAX", "MIN", "KTH_MIN", "(", ")", ",", "$1", "$ALLWNODES",
		"$MYWNODE", "-", "+", "/", "SIZEOF", ".", "received", "2", "$AZ_", "$"}
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 3000; i++ {
		n := 1 + rng.Intn(12)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		ast, err := Parse(b.String())
		if err == nil {
			_, _ = Resolve(ast, env) // must not panic
		}
	}
}

// TestEvalZeroStateIsZero: with no acknowledgments at all, every predicate
// that resolves evaluates to 0 — no message can be falsely stable.
func TestEvalZeroStateIsZero(t *testing.T) {
	env := newFakeEnv()
	rng := rand.New(rand.NewSource(31))
	empty := make(mapSource)
	for i := 0; i < 800; i++ {
		src := genPredicate(rng, 2)
		ast, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		resolved, err := Resolve(ast, env)
		if err != nil {
			continue
		}
		if got := CompileResolved(src, resolved).Eval(empty); got != 0 {
			t.Fatalf("%q = %d on empty state", src, got)
		}
	}
}
