package dsl

import (
	"fmt"
	"strings"
)

// opcode is a Program instruction operation.
type opcode uint8

const (
	opLoad   opcode = iota + 1 // push src.Value(a, b)
	opMax                      // reduce top a values to their maximum
	opMin                      // reduce top a values to their minimum
	opKthMax                   // reduce top b values to their a-th largest
	opKthMin                   // reduce top b values to their a-th smallest
)

type instr struct {
	op   opcode
	a, b uint32
}

// Program is a predicate compiled to a flat bytecode program. Compilation
// happens once, at registration time; Eval runs on the critical path with
// no parsing, no map lookups and no heap allocation. This is the
// reproduction's substitute for the paper's libgccjit backend (see
// DESIGN.md §2).
//
// Programs are immutable after compilation and safe for concurrent Eval.
type Program struct {
	source    string
	instrs    []instr
	maxStack  int
	dependsOn []int
}

// CompileResolved lowers a resolved predicate to bytecode.
func CompileResolved(src string, r *Resolved) *Program {
	p := &Program{source: src, dependsOn: append([]int{}, r.DependsOn...)}
	p.emit(r.Root)
	p.maxStack = measureStack(r.Root)
	return p
}

// Compile parses, resolves and lowers a predicate source string in one
// step.
func Compile(src string, env Env) (*Program, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	resolved, err := Resolve(ast, env)
	if err != nil {
		return nil, err
	}
	return CompileResolved(src, resolved), nil
}

func (p *Program) emit(n RNode) {
	switch v := n.(type) {
	case *RLoad:
		p.instrs = append(p.instrs, instr{op: opLoad, a: uint32(v.Node), b: uint32(v.Type)})
	case *ROp:
		for _, a := range v.Args {
			p.emit(a)
		}
		switch v.Op {
		case OpMax:
			p.instrs = append(p.instrs, instr{op: opMax, a: uint32(len(v.Args))})
		case OpMin:
			p.instrs = append(p.instrs, instr{op: opMin, a: uint32(len(v.Args))})
		case OpKthMax:
			p.instrs = append(p.instrs, instr{op: opKthMax, a: uint32(v.K), b: uint32(len(v.Args))})
		case OpKthMin:
			p.instrs = append(p.instrs, instr{op: opKthMin, a: uint32(v.K), b: uint32(len(v.Args))})
		}
	}
}

// measureStack computes the evaluation stack high-water mark: evaluating
// argument i happens with i earlier results already on the stack.
func measureStack(n RNode) int {
	switch v := n.(type) {
	case *RLoad:
		return 1
	case *ROp:
		max := 1
		for i, a := range v.Args {
			if need := i + measureStack(a); need > max {
				max = need
			}
		}
		return max
	default:
		return 1
	}
}

// Eval computes the predicate's current stability frontier from src.
// It performs no heap allocation for predicates whose evaluation depth is
// at most 64 values (effectively all practical predicates).
func (p *Program) Eval(src Source) uint64 {
	var local [64]uint64
	stack := local[:0]
	if p.maxStack > len(local) {
		stack = make([]uint64, 0, p.maxStack)
	}
	for _, in := range p.instrs {
		switch in.op {
		case opLoad:
			stack = append(stack, src.Value(int(in.a), uint16(in.b)))
		case opMax:
			base := len(stack) - int(in.a)
			m := stack[base]
			for _, v := range stack[base+1:] {
				if v > m {
					m = v
				}
			}
			stack = append(stack[:base], m)
		case opMin:
			base := len(stack) - int(in.a)
			m := stack[base]
			for _, v := range stack[base+1:] {
				if v < m {
					m = v
				}
			}
			stack = append(stack[:base], m)
		case opKthMax:
			base := len(stack) - int(in.b)
			seg := stack[base:]
			sortU64(seg)
			v := seg[len(seg)-int(in.a)]
			stack = append(stack[:base], v)
		case opKthMin:
			base := len(stack) - int(in.b)
			seg := stack[base:]
			sortU64(seg)
			v := seg[int(in.a)-1]
			stack = append(stack[:base], v)
		}
	}
	if len(stack) != 1 {
		// Unreachable for programs produced by CompileResolved.
		return 0
	}
	return stack[0]
}

// Source returns the predicate source string the program was compiled from.
func (p *Program) Source() string { return p.source }

// DependsOn lists the distinct WAN node indexes the program reads,
// ascending. Applications use it to decide whether a predicate is affected
// by a node failure (paper §III-E).
func (p *Program) DependsOn() []int {
	out := make([]int, len(p.dependsOn))
	copy(out, p.dependsOn)
	return out
}

// Cell is one (node, stability type) recorder-table coordinate a program
// reads.
type Cell struct {
	Node int
	Type uint16
}

// Cells lists the distinct recorder-table cells the program loads, in
// first-load order. Stall blame attribution uses it to ask, per dependent
// peer, which ack value the predicate actually consumed.
func (p *Program) Cells() []Cell {
	seen := make(map[Cell]struct{}, len(p.instrs))
	var out []Cell
	for _, in := range p.instrs {
		if in.op != opLoad {
			continue
		}
		c := Cell{Node: int(in.a), Type: uint16(in.b)}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		out = append(out, c)
	}
	return out
}

// Len returns the number of instructions (tooling/diagnostics).
func (p *Program) Len() int { return len(p.instrs) }

// Disassemble renders the program one instruction per line, for the
// predcheck tool and debugging.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, in := range p.instrs {
		switch in.op {
		case opLoad:
			fmt.Fprintf(&b, "%3d  LOAD   node=%d type=%d\n", i, in.a, in.b)
		case opMax:
			fmt.Fprintf(&b, "%3d  MAX    n=%d\n", i, in.a)
		case opMin:
			fmt.Fprintf(&b, "%3d  MIN    n=%d\n", i, in.a)
		case opKthMax:
			fmt.Fprintf(&b, "%3d  KTHMAX k=%d n=%d\n", i, in.a, in.b)
		case opKthMin:
			fmt.Fprintf(&b, "%3d  KTHMIN k=%d n=%d\n", i, in.a, in.b)
		}
	}
	return b.String()
}
