package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGroupInjectsBaseLabels(t *testing.T) {
	root := NewRegistry()
	n1 := root.NodeGroup("1")
	n2 := root.NodeGroup("2")

	n1.Counter("grp_sends_total", "h").Add(5)
	n2.Counter("grp_sends_total", "h").Add(7)
	n1.CounterVec("grp_frames_total", "h", "kind").With("data").Add(3)
	n2.CounterVec("grp_frames_total", "h", "kind").With("ack").Add(4)

	var sb strings.Builder
	if err := root.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`grp_sends_total{node="1"} 5`,
		`grp_sends_total{node="2"} 7`,
		`grp_frames_total{node="1",kind="data"} 3`,
		`grp_frames_total{node="2",kind="ack"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One family, visible from every view over the same root.
	if fs := n1.Find("grp_sends_total"); fs == nil || len(fs.Metrics) != 2 {
		t.Fatalf("node view sees %+v, want the 2-child shared family", fs)
	}
}

func TestGroupSchemaMismatchPanics(t *testing.T) {
	root := NewRegistry()
	root.NodeGroup("1").Counter("grp_mismatch_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("root-level re-registration with fewer labels did not panic")
		}
	}()
	root.Counter("grp_mismatch_total", "h")
}

func TestGroupNesting(t *testing.T) {
	root := NewRegistry()
	g := root.Group("az", "us-east-1a").Group("node", "3")
	g.Counter("grp_nested_total", "h").Inc()
	fs := root.Find("grp_nested_total")
	if fs == nil || len(fs.Metrics) != 1 {
		t.Fatalf("family = %+v", fs)
	}
	m := fs.Metrics[0]
	if m.Labels["az"] != "us-east-1a" || m.Labels["node"] != "3" {
		t.Fatalf("labels = %v, want az+node base labels", m.Labels)
	}
}

func TestGaugeFuncReplacedOnLiveRegistry(t *testing.T) {
	root := NewRegistry()
	g := root.NodeGroup("1")
	g.GaugeFunc("grp_buffered", "h", func() float64 { return 1 })
	g.GaugeFunc("grp_buffered", "h", func() float64 { return 2 }) // restart re-binds
	fs := root.Find("grp_buffered")
	if fs == nil || len(fs.Metrics) != 1 || fs.Metrics[0].Value != 2 {
		t.Fatalf("family = %+v, want single child with replaced callback", fs)
	}
}

func TestHistogramCountLe(t *testing.T) {
	h := NewHistogram(HistogramOpts{Unit: 1, MinPow: 2, MaxPow: 6})
	// Buckets (upper bounds): 4, 8, 16, 32, 64, +Inf.
	for _, v := range []int64{0, 3, 5, 9, 20, 100} {
		h.Observe(v)
	}
	for _, tc := range []struct {
		v    int64
		want int64
	}{
		{0, 0}, {3, 0}, {4, 2}, {8, 3}, {16, 4}, {31, 4}, {32, 5}, {64, 5}, {1 << 40, 5},
	} {
		if got := h.CountLe(tc.v); got != tc.want {
			t.Errorf("CountLe(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestSLOMonitorBurnTransitions drives the monitor with a synthetic clock:
// a burst of bad latency must fire both windows, and recovery must resolve
// once the short window drains.
func TestSLOMonitorBurnTransitions(t *testing.T) {
	h := NewHistogram(HistogramOpts{Unit: 1e-9, MinPow: 12, MaxPow: 37})
	var alerts []BurnAlert
	m, err := NewSLOMonitor(h, SLOConfig{
		Name:        "stab",
		Threshold:   1 << 20, // ~1ms in ns, on a bucket boundary
		Objective:   0.99,
		ShortWindow: time.Minute,
		LongWindow:  5 * time.Minute,
		Burn:        5,
		CheckEvery:  time.Hour, // background ticks irrelevant; we drive tick()
		OnAlert:     func(a BurnAlert) { alerts = append(alerts, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	now := time.Unix(1000, 0)
	step := 15 * time.Second
	good := func(n int) {
		for i := 0; i < n; i++ {
			h.Observe(1 << 15) // well under threshold
		}
	}
	bad := func(n int) {
		for i := 0; i < n; i++ {
			h.Observe(1 << 30) // ~1s, violates
		}
	}

	// Healthy traffic for 2 minutes.
	for i := 0; i < 8; i++ {
		good(100)
		m.Tick(now)
		now = now.Add(step)
	}
	if m.Firing() {
		t.Fatal("fired on healthy traffic")
	}
	// 100% bad for 1 minute: error rate 1.0, burn = 1.0/0.01 = 100 ≥ 5 in
	// both windows (the long window still holds the burst).
	for i := 0; i < 4; i++ {
		bad(100)
		m.Tick(now)
		now = now.Add(step)
	}
	if !m.Firing() {
		t.Fatal("did not fire under sustained burn")
	}
	// Recovery: healthy again until the short window is clean.
	for i := 0; i < 8; i++ {
		good(100)
		m.Tick(now)
		now = now.Add(step)
	}
	if m.Firing() {
		t.Fatal("did not resolve after recovery")
	}
	if len(alerts) != 2 || !alerts[0].Firing || alerts[1].Firing {
		t.Fatalf("alerts = %+v, want fire then resolve", alerts)
	}
	if alerts[0].ShortBurn < 5 || alerts[0].LongBurn < 5 {
		t.Fatalf("firing alert burn rates = %+v, want ≥ threshold", alerts[0])
	}
}

func TestSLOMonitorNoTrafficNoAlert(t *testing.T) {
	h := NewHistogram(LatencyOpts)
	m, err := NewSLOMonitor(h, SLOConfig{
		Name: "idle", Threshold: 1 << 20, Objective: 0.999, CheckEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	now := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		m.Tick(now)
		now = now.Add(time.Minute)
	}
	if m.Firing() {
		t.Fatal("fired with zero traffic")
	}
}

// BenchmarkRegistryShardContention measures hot-path child resolution from
// many goroutines — the pattern of a multi-node process where every node's
// transport resolves labeled children through its own group view. Compare
// -cpu 1,8 to see striping headroom.
func BenchmarkRegistryShardContention(b *testing.B) {
	root := NewRegistry()
	const nodes = 16
	views := make([]*Registry, nodes)
	for i := range views {
		views[i] = root.NodeGroup(fmt.Sprint(i + 1))
	}
	var next sync.Mutex
	id := 0
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		next.Lock()
		v := views[id%nodes]
		id++
		next.Unlock()
		cv := v.CounterVec("bench_frames_total", "h", "peer", "kind")
		i := 0
		for pb.Next() {
			// Resolve through the vec each iteration: this is the
			// contended path the stripes exist for.
			cv.With(peerLabels[i&7], "data").Inc()
			i++
		}
	})
}

var peerLabels = [8]string{"1", "2", "3", "4", "5", "6", "7", "8"}

// BenchmarkRegistryResolvedChild is the baseline: children resolved once,
// updates are single atomic adds regardless of node count.
func BenchmarkRegistryResolvedChild(b *testing.B) {
	root := NewRegistry()
	c := root.NodeGroup("1").Counter("bench_resolved_total", "h")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
