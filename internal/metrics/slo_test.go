package metrics

import (
	"sync"
	"testing"
	"time"
)

// sloHist returns a histogram whose 1<<20 ns threshold lands on a bucket
// boundary, so good/bad attribution in these tests is exact.
func sloHist() *Histogram {
	return NewHistogram(HistogramOpts{Unit: 1e-9, MinPow: 12, MaxPow: 37})
}

func observeN(h *Histogram, v int64, n int) {
	for i := 0; i < n; i++ {
		h.Observe(v)
	}
}

const (
	sloGood = 1 << 15 // well under the 1<<20 threshold
	sloBad  = 1 << 30 // far past it
)

// TestSLOMonitorZeroSampleWindows pins the zero-traffic contracts the
// adaptive controller leans on: windows with no samples at all, windows
// where the histogram exists but never moves, and a burn evaluation taken
// before the first tick must all read as "no budget spent" — never as a
// spurious alert, and never as NaN/Inf from a zero-denominator division.
func TestSLOMonitorZeroSampleWindows(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, h *Histogram, m *SLOMonitor, now time.Time)
	}{
		{
			// No traffic ever: every tick sees total == 0.
			name: "never any traffic",
			run: func(t *testing.T, h *Histogram, m *SLOMonitor, now time.Time) {
				for i := 0; i < 12; i++ {
					s, l := m.Tick(now)
					if s != 0 || l != 0 {
						t.Fatalf("tick %d: burn = (%v, %v), want (0, 0)", i, s, l)
					}
					now = now.Add(30 * time.Second)
				}
			},
		},
		{
			// Traffic stops entirely: the deltas go to zero while the
			// absolute counters stay high. dTotal == 0 must short-circuit
			// before the division.
			name: "traffic then silence",
			run: func(t *testing.T, h *Histogram, m *SLOMonitor, now time.Time) {
				observeN(h, sloBad, 100)
				m.Tick(now)
				for i := 0; i < 40; i++ { // > LongWindow of silence
					now = now.Add(30 * time.Second)
					m.Tick(now)
				}
				if s, l := m.Tick(now); s != 0 || l != 0 {
					t.Fatalf("burn after silence = (%v, %v), want (0, 0)", s, l)
				}
				if m.Firing() {
					t.Fatal("firing with an empty window")
				}
			},
		},
		{
			// One lone sample: the first tick has no baseline delta.
			name: "single sample window",
			run: func(t *testing.T, h *Histogram, m *SLOMonitor, now time.Time) {
				observeN(h, sloBad, 1)
				m.Tick(now)
				if m.Firing() {
					t.Fatal("fired off a single first sample with no baseline")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := sloHist()
			m, err := NewSLOMonitorPaused(h, SLOConfig{
				Name: tc.name, Threshold: 1 << 20, Objective: 0.99,
				ShortWindow: time.Minute, LongWindow: 5 * time.Minute, Burn: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			tc.run(t, h, m, time.Unix(1000, 0))
		})
	}
}

// TestSLOMonitorCounterResetOnRebind simulates a histogram re-bind: a vec
// child is dropped and re-created, so the monitor's Source suddenly
// resolves a fresh histogram whose totals are far below the recorded
// baselines. The monitor must treat the backwards step as a reset — restart
// its sample history, report zero burn for that tick, and keep working
// (including firing for real) against the new counters.
func TestSLOMonitorCounterResetOnRebind(t *testing.T) {
	old := sloHist()
	cur := old
	var mu sync.Mutex
	m, err := NewSLOMonitorPaused(nil, SLOConfig{
		Name: "rebind", Threshold: 1 << 20, Objective: 0.99,
		ShortWindow: time.Minute, LongWindow: 5 * time.Minute, Burn: 2,
		Source: func() *Histogram { mu.Lock(); defer mu.Unlock(); return cur },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	now := time.Unix(1000, 0)
	step := 15 * time.Second
	// Build up healthy history on the original histogram.
	for i := 0; i < 8; i++ {
		observeN(old, sloGood, 100)
		m.Tick(now)
		now = now.Add(step)
	}

	// Re-bind: fresh histogram, counters restart from zero with a few
	// good observations — strictly below every recorded baseline.
	fresh := sloHist()
	observeN(fresh, sloGood, 10)
	mu.Lock()
	cur = fresh
	mu.Unlock()
	if s, l := m.Tick(now); s != 0 || l != 0 {
		t.Fatalf("burn across the reset = (%v, %v), want (0, 0)", s, l)
	}
	if m.Firing() {
		t.Fatal("reset misread as an SLO burn")
	}
	now = now.Add(step)

	// The monitor must still detect a genuine burn on the new histogram.
	for i := 0; i < 5; i++ {
		observeN(fresh, sloBad, 100)
		m.Tick(now)
		now = now.Add(step)
	}
	if !m.Firing() {
		t.Fatal("did not fire on a real burn after the re-bind")
	}
}

// TestSLOMonitorBurnExactlyAtThreshold pins the boundary comparison: a burn
// rate exactly equal to SLOConfig.Burn fires (the comparison is ≥, matching
// the Prometheus rule in examples/alerts), while one epsilon-of-traffic
// below it does not.
func TestSLOMonitorBurnExactlyAtThreshold(t *testing.T) {
	// Exactly-representable floats so the boundary really is equality:
	// Objective 0.75 → error budget 0.25; 50 bad in 100 → error rate 0.5 →
	// burn exactly 2.0 against Burn: 2.
	run := func(bad, total int) (*SLOMonitor, bool) {
		h := sloHist()
		m, err := NewSLOMonitorPaused(h, SLOConfig{
			Name: "edge", Threshold: 1 << 20, Objective: 0.75,
			ShortWindow: time.Minute, LongWindow: 5 * time.Minute, Burn: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		now := time.Unix(1000, 0)
		m.Tick(now) // zero baseline
		observeN(h, sloBad, bad)
		observeN(h, sloGood, total-bad)
		m.Tick(now.Add(30 * time.Second))
		return m, m.Firing()
	}

	if _, firing := run(50, 100); !firing {
		t.Fatal("burn exactly at the threshold did not fire (want ≥ semantics)")
	}
	if _, firing := run(49, 100); firing {
		t.Fatal("burn below the threshold fired")
	}
}

// TestSLOMonitorCloseDuringTick races Close against a storm of manual Ticks
// and the background sampler: no tick may fire an alert after Close
// returns, double-Close must be safe, and nothing may deadlock. Run with
// -race to make the interleavings count.
func TestSLOMonitorCloseDuringTick(t *testing.T) {
	for i := 0; i < 20; i++ {
		h := sloHist()
		observeN(h, sloBad, 1000)
		alerts := make(chan BurnAlert, 64)
		m, err := NewSLOMonitor(h, SLOConfig{
			Name: "close-race", Threshold: 1 << 20, Objective: 0.99,
			ShortWindow: time.Minute, LongWindow: 5 * time.Minute, Burn: 2,
			CheckEvery: time.Microsecond, // background sampler spins hard
			OnAlert:    func(a BurnAlert) { alerts <- a },
		})
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				now := time.Unix(2000, 0)
				for j := 0; j < 50; j++ {
					observeN(h, sloBad, 1)
					m.Tick(now)
					now = now.Add(time.Second)
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			m.Close()
			m.Close() // idempotent
		}()
		close(start)
		wg.Wait()

		// Close has returned everywhere; the alert stream must be closed
		// for business — a post-Close Tick is a no-op.
		drained := len(alerts)
		if s, l := m.Tick(time.Unix(3000, 0)); s != 0 || l != 0 {
			t.Fatalf("post-Close Tick evaluated: burn (%v, %v)", s, l)
		}
		if len(alerts) != drained {
			t.Fatal("post-Close Tick fired an alert")
		}
	}
}
