// Package metrics is Stabilizer's instrumentation substrate: a stdlib-only,
// allocation-free-on-hot-path metrics library. It offers atomic Counter and
// Gauge primitives, a fixed-bucket log-scale Histogram (suited to latencies
// in nanoseconds and sizes in bytes), and a Registry of named families with
// optional labels. Exposition (Prometheus text format, JSON, HTTP) lives in
// expose.go.
//
// Hot-path rule: resolve labeled children once (Vec.With) and keep the
// returned pointer; Inc/Add/Set/Observe on a resolved child is a single
// atomic operation with no allocation and no map lookup.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative deltas are ignored to preserve
// monotonicity.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MetricType discriminates family kinds.
type MetricType uint8

// Family kinds.
const (
	TypeCounter MetricType = iota + 1
	TypeGauge
	TypeGaugeFunc
	TypeHistogram
)

// String returns the Prometheus TYPE keyword for t.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge, TypeGaugeFunc:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// child is one metric instance inside a family (one per label-value tuple).
type child struct {
	labels []string // label values, parallel to family.labelNames
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// Family is a named group of metric instances sharing a type, help string
// and label schema.
type Family struct {
	name       string
	help       string
	typ        MetricType
	labelNames []string
	hopts      HistogramOpts

	mu       sync.RWMutex
	children map[string]*child
	order    []string // insertion-ordered child keys, sorted at exposition
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// Type returns the family's metric type.
func (f *Family) Type() MetricType { return f.typ }

// labelKey joins label values into a map key. 0xff cannot appear in UTF-8
// text, making the join unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// get returns the child for values, creating it with mk on first use.
func (f *Family) get(values []string, mk func() *child) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: family %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	k := labelKey(values)
	f.mu.RLock()
	ch := f.children[k]
	f.mu.RUnlock()
	if ch != nil {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch = f.children[k]; ch != nil {
		return ch
	}
	ch = mk()
	ch.labels = append([]string(nil), values...)
	f.children[k] = ch
	f.order = append(f.order, k)
	return ch
}

// delete removes the child for values (no-op when absent).
func (f *Family) delete(values []string) {
	k := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[k]; !ok {
		return
	}
	delete(f.children, k)
	for i, o := range f.order {
		if o == k {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *Family }

// With returns the counter for the given label values, creating it on first
// use. Hot paths should call With once and retain the result.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() *child { return &child{c: &Counter{}} }).c
}

// Delete drops the child for the given label values.
func (v *CounterVec) Delete(values ...string) { v.f.delete(values) }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *Family }

// With returns the gauge for the given label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() *child { return &child{g: &Gauge{}} }).g
}

// Delete drops the child for the given label values.
func (v *GaugeVec) Delete(values ...string) { v.f.delete(values) }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *Family }

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() *child { return &child{h: newHistogram(v.f.hopts)} }).h
}

// Delete drops the child for the given label values.
func (v *HistogramVec) Delete(values ...string) { v.f.delete(values) }

// Registry holds metric families keyed by name. Lookups are get-or-create:
// fetching an existing family with a compatible schema returns it, letting
// independent components share families; an incompatible re-registration
// panics (it is a programming error).
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*Family)}
}

// family gets or creates a family, validating schema compatibility.
func (r *Registry) family(name, help string, typ MetricType, labels []string, hopts HistogramOpts) *Family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid family name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q in family %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labels) {
			panic(fmt.Sprintf("metrics: family %q re-registered with a different schema", name))
		}
		for i := range labels {
			if f.labelNames[i] != labels[i] {
				panic(fmt.Sprintf("metrics: family %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &Family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labels...),
		hopts:      hopts.normalized(),
		children:   make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

// Counter returns the unlabeled counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec returns the labeled counter family named name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, TypeCounter, labels, HistogramOpts{})}
}

// Gauge returns the unlabeled gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec returns the labeled gauge family named name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, TypeGauge, labels, HistogramOpts{})}
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (for cheap reads of externally owned state, e.g. buffer sizes).
// Re-registering the same name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, TypeGaugeFunc, nil, HistogramOpts{})
	ch := f.get(nil, func() *child { return &child{} })
	f.mu.Lock()
	ch.fn = fn
	f.mu.Unlock()
}

// GaugeFuncVec returns the labeled callback-gauge family named name. Each
// child's value is computed at exposition time, like GaugeFunc, but carries
// label values — used for topology rollups (az/region tags) over externally
// owned state.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	return &GaugeFuncVec{f: r.family(name, help, TypeGaugeFunc, labels, HistogramOpts{})}
}

// GaugeFuncVec is a family of callback gauges distinguished by label values.
type GaugeFuncVec struct{ f *Family }

// Set installs fn as the callback for the given label values, replacing any
// previous callback for the same tuple.
func (v *GaugeFuncVec) Set(fn func() float64, values ...string) {
	ch := v.f.get(values, func() *child { return &child{} })
	v.f.mu.Lock()
	ch.fn = fn
	v.f.mu.Unlock()
}

// Delete drops the child for the given label values.
func (v *GaugeFuncVec) Delete(values ...string) { v.f.delete(values) }

// Histogram returns the unlabeled histogram named name.
func (r *Registry) Histogram(name, help string, opts HistogramOpts) *Histogram {
	return r.HistogramVec(name, help, opts).With()
}

// HistogramVec returns the labeled histogram family named name.
func (r *Registry) HistogramVec(name, help string, opts HistogramOpts, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, TypeHistogram, labels, opts)}
}

// families returns the registered families sorted by name.
func (r *Registry) families() []*Family {
	r.mu.RLock()
	out := make([]*Family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// validName reports whether s is a legal Prometheus metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
