// Package metrics is Stabilizer's instrumentation substrate: a stdlib-only,
// allocation-free-on-hot-path metrics library. It offers atomic Counter and
// Gauge primitives, a fixed-bucket log-scale Histogram (suited to latencies
// in nanoseconds and sizes in bytes), and a Registry of named families with
// optional labels. Exposition (Prometheus text format, JSON, HTTP) lives in
// expose.go; the in-process SLO burn-rate monitor in slo.go.
//
// Hot-path rule: resolve labeled children once (Vec.With) and keep the
// returned pointer; Inc/Add/Set/Observe on a resolved child is a single
// atomic operation with no allocation and no map lookup.
//
// # Registry groups
//
// A Registry value is a view over a shared store of families. Group derives
// a new view that injects constant base labels into every family created or
// resolved through it:
//
//	root := metrics.NewRegistry()
//	n3 := root.Group("node", "3")
//	n3.Counter("stabilizer_core_sends_total", "...").Inc()
//	// root now exposes stabilizer_core_sends_total{node="3"} 1
//
// Groups are how one process hosting many Stabilizer nodes shares a single
// registry: each node instruments through its own node-labeled group, and
// one /metrics scrape sees every node. All views over the same root expose
// the same families; a family's label schema is the group's base labels
// followed by the caller's labels, and re-registering a name with a
// different schema panics (it is a programming error).
//
// # Sharding
//
// The family store and each family's children are lock-striped: names and
// label tuples hash to independent shards so concurrent child resolution
// from many in-process nodes does not serialize on one mutex. Resolved
// children are plain atomics, so striping only matters on the resolution
// and exposition paths.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative deltas are ignored to preserve
// monotonicity.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MetricType discriminates family kinds.
type MetricType uint8

// Family kinds.
const (
	TypeCounter MetricType = iota + 1
	TypeGauge
	TypeGaugeFunc
	TypeHistogram
)

// String returns the Prometheus TYPE keyword for t.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge, TypeGaugeFunc:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// child is one metric instance inside a family (one per label-value tuple).
type child struct {
	labels []string // label values, parallel to family.labelNames
	c      *Counter
	g      *Gauge
	h      *Histogram
	// fn is atomic so GaugeFunc callbacks can be replaced on a live
	// registry (a restarted in-process node re-binds its closures) while
	// exposition reads them lock-free.
	fn atomic.Pointer[func() float64]
}

// value evaluates the child for exposition.
func (ch *child) value() float64 {
	switch {
	case ch.c != nil:
		return float64(ch.c.Value())
	case ch.g != nil:
		return float64(ch.g.Value())
	default:
		if fn := ch.fn.Load(); fn != nil {
			return (*fn)()
		}
		return 0
	}
}

// famShardCount stripes each family's children; must be a power of two.
const famShardCount = 16

// famShard is one stripe of a family's children.
type famShard struct {
	mu       sync.RWMutex
	children map[string]*child
}

// Family is a named group of metric instances sharing a type, help string
// and label schema. Children are lock-striped by label tuple so many
// in-process nodes resolving children of the same family do not contend.
type Family struct {
	name       string
	help       string
	typ        MetricType
	labelNames []string
	hopts      HistogramOpts

	shards [famShardCount]famShard
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// Type returns the family's metric type.
func (f *Family) Type() MetricType { return f.typ }

// labelKey joins label values into a map key. 0xff cannot appear in UTF-8
// text, making the join unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// fnv32 is the FNV-1a hash used to pick shards.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func (f *Family) shard(key string) *famShard {
	return &f.shards[fnv32(key)&(famShardCount-1)]
}

// get returns the child for values, creating it with mk on first use.
func (f *Family) get(values []string, mk func() *child) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: family %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	k := labelKey(values)
	sh := f.shard(k)
	sh.mu.RLock()
	ch := sh.children[k]
	sh.mu.RUnlock()
	if ch != nil {
		return ch
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ch = sh.children[k]; ch != nil {
		return ch
	}
	ch = mk()
	ch.labels = append([]string(nil), values...)
	if sh.children == nil {
		sh.children = make(map[string]*child)
	}
	sh.children[k] = ch
	return ch
}

// setFn installs fn as the callback of the child for values.
func (f *Family) setFn(values []string, fn func() float64) {
	ch := f.get(values, func() *child { return &child{} })
	ch.fn.Store(&fn)
}

// delete removes the child for values (no-op when absent).
func (f *Family) delete(values []string) {
	k := labelKey(values)
	sh := f.shard(k)
	sh.mu.Lock()
	delete(sh.children, k)
	sh.mu.Unlock()
}

// withBase prepends a view's base label values to caller values.
func withBase(base, values []string) []string {
	if len(base) == 0 {
		return values
	}
	out := make([]string, 0, len(base)+len(values))
	out = append(out, base...)
	return append(out, values...)
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	f    *Family
	base []string
}

// With returns the counter for the given label values, creating it on first
// use. Hot paths should call With once and retain the result.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(withBase(v.base, values), func() *child { return &child{c: &Counter{}} }).c
}

// Delete drops the child for the given label values.
func (v *CounterVec) Delete(values ...string) { v.f.delete(withBase(v.base, values)) }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	f    *Family
	base []string
}

// With returns the gauge for the given label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(withBase(v.base, values), func() *child { return &child{g: &Gauge{}} }).g
}

// Delete drops the child for the given label values.
func (v *GaugeVec) Delete(values ...string) { v.f.delete(withBase(v.base, values)) }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	f    *Family
	base []string
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.get(withBase(v.base, values), func() *child { return &child{h: newHistogram(f.hopts)} }).h
}

// Delete drops the child for the given label values.
func (v *HistogramVec) Delete(values ...string) { v.f.delete(withBase(v.base, values)) }

// GaugeFuncVec is a family of callback gauges distinguished by label values.
type GaugeFuncVec struct {
	f    *Family
	base []string
}

// Set installs fn as the callback for the given label values, replacing any
// previous callback for the same tuple. Safe on a live registry.
func (v *GaugeFuncVec) Set(fn func() float64, values ...string) {
	v.f.setFn(withBase(v.base, values), fn)
}

// Delete drops the child for the given label values.
func (v *GaugeFuncVec) Delete(values ...string) { v.f.delete(withBase(v.base, values)) }

// regShardCount stripes the family store; must be a power of two.
const regShardCount = 16

// regShard is one stripe of the family store.
type regShard struct {
	mu   sync.RWMutex
	fams map[string]*Family
}

// registryRoot is the store shared by every view derived from one
// NewRegistry call.
type registryRoot struct {
	shards [regShardCount]regShard
}

// Registry is a view over a shared store of metric families. The view
// returned by NewRegistry has no base labels; Group derives views that
// inject constant labels (e.g. node identity) into every family they touch.
// Lookups are get-or-create: fetching an existing family with a compatible
// schema returns it, letting independent components share families; an
// incompatible re-registration panics (it is a programming error).
type Registry struct {
	root       *registryRoot
	baseNames  []string
	baseValues []string
}

// NewRegistry returns an empty registry (a root view with no base labels).
func NewRegistry() *Registry {
	root := &registryRoot{}
	for i := range root.shards {
		root.shards[i].fams = make(map[string]*Family)
	}
	return &Registry{root: root}
}

// Group returns a view of r whose families all carry the given constant
// label pairs ("name", "value", ...) in addition to r's own base labels.
// Families created through the group expose the base labels first; every
// Vec resolved through it injects the base values automatically. Views are
// cheap handles — derive one per in-process node and share the root.
func (r *Registry) Group(pairs ...string) *Registry {
	if len(pairs)%2 != 0 {
		panic("metrics: Group wants name/value pairs")
	}
	names := append([]string(nil), r.baseNames...)
	values := append([]string(nil), r.baseValues...)
	for i := 0; i < len(pairs); i += 2 {
		if !validName(pairs[i]) {
			panic(fmt.Sprintf("metrics: invalid group label name %q", pairs[i]))
		}
		names = append(names, pairs[i])
		values = append(values, pairs[i+1])
	}
	return &Registry{root: r.root, baseNames: names, baseValues: values}
}

// NodeGroup is the conventional per-node group: it tags every family with a
// node label carrying id (a 1-based WAN node index rendered in decimal).
func (r *Registry) NodeGroup(id string) *Registry { return r.Group("node", id) }

// BaseLabels returns the view's base label names and values (nil for a
// root view).
func (r *Registry) BaseLabels() (names, values []string) {
	return append([]string(nil), r.baseNames...), append([]string(nil), r.baseValues...)
}

// family gets or creates a family, validating schema compatibility. The
// family's label schema is the view's base labels followed by labels.
func (r *Registry) family(name, help string, typ MetricType, labels []string, hopts HistogramOpts) *Family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid family name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q in family %q", l, name))
		}
	}
	full := withBase(r.baseNames, labels)
	sh := &r.root.shards[fnv32(name)&(regShardCount-1)]
	sh.mu.RLock()
	f := sh.fams[name]
	sh.mu.RUnlock()
	if f == nil {
		sh.mu.Lock()
		if f = sh.fams[name]; f == nil {
			f = &Family{
				name:       name,
				help:       help,
				typ:        typ,
				labelNames: append([]string(nil), full...),
				hopts:      hopts.normalized(),
			}
			sh.fams[name] = f
		}
		sh.mu.Unlock()
	}
	if f.typ != typ || len(f.labelNames) != len(full) {
		panic(fmt.Sprintf("metrics: family %q re-registered with a different schema", name))
	}
	for i := range full {
		if f.labelNames[i] != full[i] {
			panic(fmt.Sprintf("metrics: family %q re-registered with different labels", name))
		}
	}
	return f
}

// Counter returns the counter named name carrying only the view's base
// labels.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec returns the labeled counter family named name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, TypeCounter, labels, HistogramOpts{}), base: r.baseValues}
}

// Gauge returns the gauge named name carrying only the view's base labels.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec returns the labeled gauge family named name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, TypeGauge, labels, HistogramOpts{}), base: r.baseValues}
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (for cheap reads of externally owned state, e.g. buffer sizes).
// Re-registering the same name under the same view replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, TypeGaugeFunc, nil, HistogramOpts{})
	f.setFn(r.baseValues, fn)
}

// GaugeFuncVec returns the labeled callback-gauge family named name. Each
// child's value is computed at exposition time, like GaugeFunc, but carries
// label values — used for topology rollups (az/region tags) over externally
// owned state.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	return &GaugeFuncVec{f: r.family(name, help, TypeGaugeFunc, labels, HistogramOpts{}), base: r.baseValues}
}

// Histogram returns the histogram named name carrying only the view's base
// labels.
func (r *Registry) Histogram(name, help string, opts HistogramOpts) *Histogram {
	return r.HistogramVec(name, help, opts).With()
}

// HistogramVec returns the labeled histogram family named name.
func (r *Registry) HistogramVec(name, help string, opts HistogramOpts, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, TypeHistogram, labels, opts), base: r.baseValues}
}

// families returns the registered families sorted by name. Every view over
// the same root sees the same set.
func (r *Registry) families() []*Family {
	var out []*Family
	for i := range r.root.shards {
		sh := &r.root.shards[i]
		sh.mu.RLock()
		for _, f := range sh.fams {
			out = append(out, f)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// validName reports whether s is a legal Prometheus metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
