package metrics

import (
	"fmt"
	"sync"
	"time"
)

// SLOConfig describes a latency service-level objective over one histogram:
// "Objective of observations complete within Threshold". The monitor
// evaluates it with the multiwindow burn-rate method (a short and a long
// lookback must both burn error budget faster than Burn× the sustainable
// rate before an alert fires), which is the in-process equivalent of the
// Prometheus rules shipped in examples/alerts/stability-slo.rules.yml.
type SLOConfig struct {
	// Name identifies the SLO in alerts (e.g. the predicate key).
	Name string
	// Threshold is the latency goal in the histogram's base units
	// (nanoseconds for LatencyOpts histograms). Observations at or below
	// it count as good. Exact when it lands on a power-of-two bucket
	// boundary; otherwise the straddling bucket counts as bad
	// (conservative).
	Threshold int64
	// Objective is the target good fraction in (0,1), e.g. 0.999.
	Objective float64
	// ShortWindow and LongWindow are the two burn lookbacks. The long
	// window decides that real budget is being spent; the short window
	// makes the alert resolve quickly once the burn stops. Defaults:
	// 1m and 10m.
	ShortWindow, LongWindow time.Duration
	// Burn is the burn-rate threshold: an alert needs both windows to
	// consume budget at ≥ Burn× the rate that would exactly exhaust it
	// over the SLO period. Default 10.
	Burn float64
	// CheckEvery is the sampling interval. Default ShortWindow/4.
	CheckEvery time.Duration
	// OnAlert is called on every transition (firing and resolving).
	// Called from the monitor goroutine (or from Tick when the caller
	// drives the clock); keep it fast or hand off.
	OnAlert func(BurnAlert)
	// Source, when set, re-resolves the observed histogram before every
	// sample. Use it when the histogram identity can change under the
	// monitor — e.g. a HistogramVec child re-bound after a Delete, whose
	// replacement is a fresh instance the original pointer no longer
	// sees. A nil return keeps the previous histogram.
	Source func() *Histogram
}

func (c SLOConfig) normalized() (SLOConfig, error) {
	if c.Threshold <= 0 {
		return c, fmt.Errorf("metrics: SLO %q: Threshold must be > 0", c.Name)
	}
	if !(c.Objective > 0 && c.Objective < 1) {
		return c, fmt.Errorf("metrics: SLO %q: Objective must be in (0,1)", c.Name)
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = time.Minute
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 10 * time.Minute
	}
	if c.LongWindow < c.ShortWindow {
		return c, fmt.Errorf("metrics: SLO %q: LongWindow < ShortWindow", c.Name)
	}
	if c.Burn <= 0 {
		c.Burn = 10
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = c.ShortWindow / 4
	}
	return c, nil
}

// BurnAlert is one alert transition from an SLOMonitor.
type BurnAlert struct {
	// Name echoes SLOConfig.Name.
	Name string
	// Firing is true when the alert starts and false when it resolves.
	Firing bool
	// ShortBurn and LongBurn are the burn rates that triggered the
	// transition (multiples of the sustainable budget-spend rate).
	ShortBurn, LongBurn float64
	// At is the evaluation time of the transition.
	At time.Time
}

// sloSample is one (time, total, good) reading of the target histogram.
type sloSample struct {
	at    time.Time
	total int64
	good  int64
}

// SLOMonitor watches a Histogram and fires multiwindow burn-rate alerts
// against an SLOConfig. It samples counts rather than recomputing
// quantiles, so a check costs a few atomic loads regardless of traffic.
type SLOMonitor struct {
	cfg  SLOConfig
	hist *Histogram

	mu      sync.Mutex
	samples []sloSample // ring, oldest first, bounded by LongWindow
	firing  bool

	stop chan struct{}
	done chan struct{}
}

// NewSLOMonitor starts a monitor over h. Close it to stop the background
// sampler. h may be nil when cfg.Source is set (the source resolves it).
func NewSLOMonitor(h *Histogram, cfg SLOConfig) (*SLOMonitor, error) {
	m, err := NewSLOMonitorPaused(h, cfg)
	if err != nil {
		return nil, err
	}
	m.done = make(chan struct{})
	go m.run()
	return m, nil
}

// NewSLOMonitorPaused constructs a monitor without starting the background
// sampler: the caller drives it by invoking Tick on its own clock. The
// adaptive consistency controller uses this form so SLO evaluation and
// ladder decisions share one deterministic tick.
func NewSLOMonitorPaused(h *Histogram, cfg SLOConfig) (*SLOMonitor, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if h == nil && cfg.Source == nil {
		return nil, fmt.Errorf("metrics: SLO %q: nil histogram and no Source", cfg.Name)
	}
	return &SLOMonitor{cfg: cfg, hist: h, stop: make(chan struct{})}, nil
}

func (m *SLOMonitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.CheckEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			m.Tick(now)
		}
	}
}

// Close stops the monitor. It does not emit a resolving alert; callers that
// care should treat Close as end-of-signal. Safe to call more than once and
// concurrently with Tick.
func (m *SLOMonitor) Close() {
	m.mu.Lock()
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	done := m.done
	m.mu.Unlock()
	if done != nil {
		<-done
	}
}

// Firing reports whether the alert is currently active.
func (m *SLOMonitor) Firing() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.firing
}

// Tick takes one sample at now and evaluates both windows, firing OnAlert
// on a transition. The background sampler calls it every CheckEvery;
// paused monitors (NewSLOMonitorPaused) and tests drive it directly with
// their own clock. Returns the burn rates the evaluation produced.
func (m *SLOMonitor) Tick(now time.Time) (shortBurn, longBurn float64) {
	m.mu.Lock()
	select {
	case <-m.stop:
		// Closed concurrently with a pending tick: drop the sample so no
		// alert transition fires after Close returns.
		m.mu.Unlock()
		return 0, 0
	default:
	}
	if m.cfg.Source != nil {
		if h := m.cfg.Source(); h != nil {
			m.hist = h
		}
	}
	total := m.hist.Count()
	good := m.hist.CountLe(m.cfg.Threshold)

	// A histogram re-bind (vec child deleted and re-created) or any other
	// counter reset shows up as the running totals moving backwards. The
	// old baselines are meaningless against the new counters, so restart
	// the sample history rather than reporting a bogus burn.
	if n := len(m.samples); n > 0 {
		last := m.samples[n-1]
		if total < last.total || good < last.good {
			m.samples = m.samples[:0]
		}
	}

	m.samples = append(m.samples, sloSample{at: now, total: total, good: good})
	// Drop samples older than the long window, but keep one sample at or
	// beyond the horizon so the long window always has a baseline.
	horizon := now.Add(-m.cfg.LongWindow)
	cut := 0
	for cut < len(m.samples)-1 && m.samples[cut+1].at.Before(horizon) {
		cut++
	}
	if cut > 0 {
		m.samples = append(m.samples[:0], m.samples[cut:]...)
	}

	shortBurn = m.burnRate(now, m.cfg.ShortWindow)
	longBurn = m.burnRate(now, m.cfg.LongWindow)
	shouldFire := shortBurn >= m.cfg.Burn && longBurn >= m.cfg.Burn
	transition := shouldFire != m.firing
	m.firing = shouldFire
	cb := m.cfg.OnAlert
	m.mu.Unlock()

	if transition && cb != nil {
		cb(BurnAlert{
			Name:      m.cfg.Name,
			Firing:    shouldFire,
			ShortBurn: shortBurn,
			LongBurn:  longBurn,
			At:        now,
		})
	}
	return shortBurn, longBurn
}

// burnRate computes the budget burn multiple over the trailing window:
// (bad events / total events) / (1 - objective). Returns 0 when the window
// saw no traffic (no traffic spends no budget). The bad count is clamped
// into [0, total] so a mid-window counter glitch can never produce a burn
// above the all-bad rate or below zero.
func (m *SLOMonitor) burnRate(now time.Time, window time.Duration) float64 {
	if len(m.samples) == 0 {
		return 0
	}
	horizon := now.Add(-window)
	// Baseline: the newest sample at or before the horizon, else the
	// oldest we have.
	base := m.samples[0]
	for _, s := range m.samples {
		if s.at.After(horizon) {
			break
		}
		base = s
	}
	cur := m.samples[len(m.samples)-1]
	dTotal := cur.total - base.total
	if dTotal <= 0 {
		return 0
	}
	dBad := dTotal - (cur.good - base.good)
	if dBad < 0 {
		dBad = 0
	}
	if dBad > dTotal {
		dBad = dTotal
	}
	errRate := float64(dBad) / float64(dTotal)
	return errRate / (1 - m.cfg.Objective)
}
