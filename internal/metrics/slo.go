package metrics

import (
	"fmt"
	"sync"
	"time"
)

// SLOConfig describes a latency service-level objective over one histogram:
// "Objective of observations complete within Threshold". The monitor
// evaluates it with the multiwindow burn-rate method (a short and a long
// lookback must both burn error budget faster than Burn× the sustainable
// rate before an alert fires), which is the in-process equivalent of the
// Prometheus rules shipped in examples/alerts/stability-slo.rules.yml.
type SLOConfig struct {
	// Name identifies the SLO in alerts (e.g. the predicate key).
	Name string
	// Threshold is the latency goal in the histogram's base units
	// (nanoseconds for LatencyOpts histograms). Observations at or below
	// it count as good. Exact when it lands on a power-of-two bucket
	// boundary; otherwise the straddling bucket counts as bad
	// (conservative).
	Threshold int64
	// Objective is the target good fraction in (0,1), e.g. 0.999.
	Objective float64
	// ShortWindow and LongWindow are the two burn lookbacks. The long
	// window decides that real budget is being spent; the short window
	// makes the alert resolve quickly once the burn stops. Defaults:
	// 1m and 10m.
	ShortWindow, LongWindow time.Duration
	// Burn is the burn-rate threshold: an alert needs both windows to
	// consume budget at ≥ Burn× the rate that would exactly exhaust it
	// over the SLO period. Default 10.
	Burn float64
	// CheckEvery is the sampling interval. Default ShortWindow/4.
	CheckEvery time.Duration
	// OnAlert is called on every transition (firing and resolving).
	// Called from the monitor goroutine; keep it fast or hand off.
	OnAlert func(BurnAlert)
}

func (c SLOConfig) normalized() (SLOConfig, error) {
	if c.Threshold <= 0 {
		return c, fmt.Errorf("metrics: SLO %q: Threshold must be > 0", c.Name)
	}
	if !(c.Objective > 0 && c.Objective < 1) {
		return c, fmt.Errorf("metrics: SLO %q: Objective must be in (0,1)", c.Name)
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = time.Minute
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 10 * time.Minute
	}
	if c.LongWindow < c.ShortWindow {
		return c, fmt.Errorf("metrics: SLO %q: LongWindow < ShortWindow", c.Name)
	}
	if c.Burn <= 0 {
		c.Burn = 10
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = c.ShortWindow / 4
	}
	return c, nil
}

// BurnAlert is one alert transition from an SLOMonitor.
type BurnAlert struct {
	// Name echoes SLOConfig.Name.
	Name string
	// Firing is true when the alert starts and false when it resolves.
	Firing bool
	// ShortBurn and LongBurn are the burn rates that triggered the
	// transition (multiples of the sustainable budget-spend rate).
	ShortBurn, LongBurn float64
	// At is the evaluation time of the transition.
	At time.Time
}

// sloSample is one (time, total, good) reading of the target histogram.
type sloSample struct {
	at    time.Time
	total int64
	good  int64
}

// SLOMonitor watches a Histogram and fires multiwindow burn-rate alerts
// against an SLOConfig. It samples counts rather than recomputing
// quantiles, so a check costs a few atomic loads regardless of traffic.
type SLOMonitor struct {
	cfg  SLOConfig
	hist *Histogram

	mu      sync.Mutex
	samples []sloSample // ring, oldest first, bounded by LongWindow
	firing  bool

	stop chan struct{}
	done chan struct{}
}

// NewSLOMonitor starts a monitor over h. Close it to stop the background
// sampler.
func NewSLOMonitor(h *Histogram, cfg SLOConfig) (*SLOMonitor, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if h == nil {
		return nil, fmt.Errorf("metrics: SLO %q: nil histogram", cfg.Name)
	}
	m := &SLOMonitor{cfg: cfg, hist: h, stop: make(chan struct{}), done: make(chan struct{})}
	go m.run()
	return m, nil
}

func (m *SLOMonitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.CheckEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			m.tick(now)
		}
	}
}

// Close stops the monitor. It does not emit a resolving alert; callers that
// care should treat Close as end-of-signal.
func (m *SLOMonitor) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}

// Firing reports whether the alert is currently active.
func (m *SLOMonitor) Firing() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.firing
}

// tick takes one sample at now and evaluates both windows. Split out from
// run so tests can drive the monitor with a synthetic clock.
func (m *SLOMonitor) tick(now time.Time) {
	total := m.hist.Count()
	good := m.hist.CountLe(m.cfg.Threshold)

	m.mu.Lock()
	m.samples = append(m.samples, sloSample{at: now, total: total, good: good})
	// Drop samples older than the long window, but keep one sample at or
	// beyond the horizon so the long window always has a baseline.
	horizon := now.Add(-m.cfg.LongWindow)
	cut := 0
	for cut < len(m.samples)-1 && m.samples[cut+1].at.Before(horizon) {
		cut++
	}
	if cut > 0 {
		m.samples = append(m.samples[:0], m.samples[cut:]...)
	}

	shortBurn := m.burnRate(now, m.cfg.ShortWindow)
	longBurn := m.burnRate(now, m.cfg.LongWindow)
	shouldFire := shortBurn >= m.cfg.Burn && longBurn >= m.cfg.Burn
	transition := shouldFire != m.firing
	m.firing = shouldFire
	cb := m.cfg.OnAlert
	m.mu.Unlock()

	if transition && cb != nil {
		cb(BurnAlert{
			Name:      m.cfg.Name,
			Firing:    shouldFire,
			ShortBurn: shortBurn,
			LongBurn:  longBurn,
			At:        now,
		})
	}
}

// burnRate computes the budget burn multiple over the trailing window:
// (bad events / total events) / (1 - objective). Returns 0 when the window
// saw no traffic (no traffic spends no budget).
func (m *SLOMonitor) burnRate(now time.Time, window time.Duration) float64 {
	if len(m.samples) == 0 {
		return 0
	}
	horizon := now.Add(-window)
	// Baseline: the newest sample at or before the horizon, else the
	// oldest we have.
	base := m.samples[0]
	for _, s := range m.samples {
		if s.at.After(horizon) {
			break
		}
		base = s
	}
	cur := m.samples[len(m.samples)-1]
	dTotal := cur.total - base.total
	if dTotal <= 0 {
		return 0
	}
	dBad := dTotal - (cur.good - base.good)
	errRate := float64(dBad) / float64(dTotal)
	return errRate / (1 - m.cfg.Objective)
}
