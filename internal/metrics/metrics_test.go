package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestVecWithReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "help", "peer")
	a := v.With("2")
	b := v.With("2")
	if a != b {
		t.Fatal("With with equal labels returned distinct counters")
	}
	if v.With("3") == a {
		t.Fatal("With with different labels returned the same counter")
	}
	// Get-or-create: re-fetching the family yields the same children.
	if r.CounterVec("test_total", "help", "peer").With("2") != a {
		t.Fatal("re-fetched family lost its children")
	}
}

func TestRegistrySchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram(HistogramOpts{Unit: 1, MinPow: 2, MaxPow: 6})
	// Buckets (inclusive upper bounds): 4, 8, 16, 32, 64, +Inf.
	for _, v := range []int64{0, 3, 4, 5, 9, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	s := h.Snapshot()
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 7 {
		t.Fatalf("bucket counts sum to %d, want 7", total)
	}
	// 0 and 3 land in the first bucket (le=4); 4 and 5 in le=8; 9 in le=16;
	// 100 and 2^40 overflow into +Inf.
	want := map[float64]int64{4: 2, 8: 2, 16: 1, math.Inf(1): 2}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%v count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
	if q := h.Quantile(0.5); q <= 0 || q > 16 {
		t.Fatalf("p50 = %v out of sane range", q)
	}
	if q := h.Quantile(1); q != 64 {
		t.Fatalf("p100 = %v, want overflow lower bound 64", q)
	}
}

// TestHistogramConcurrency hammers one histogram from parallel observers
// while a reader snapshots, quantiles and renders it. Run under -race.
func TestHistogramConcurrency(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_seconds", "help", LatencyOpts, "key")
	h := hv.With("k")

	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() { // reader
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = h.Snapshot()
			_ = h.Quantile(0.99)
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(seed int64) {
			defer writerWg.Done()
			v := seed
			for i := 0; i < perWriter; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				hv.With("k").Observe(v % (1 << 30)) // resolve + observe concurrently
			}
		}(int64(w + 1))
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()

	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
	s := h.Snapshot()
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != writers*perWriter {
		t.Fatalf("buckets sum to %d, want %d", total, writers*perWriter)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("stab_bytes_total", "bytes moved", "peer").With("2").Add(17)
	r.Gauge("stab_up", "liveness").Set(1)
	r.GaugeFunc("stab_buffered_bytes", "buffer", func() float64 { return 3.5 })
	r.Histogram("stab_lat_seconds", "latency", HistogramOpts{Unit: 1e-9, MinPow: 10, MaxPow: 20}).Observe(2048)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE stab_bytes_total counter",
		`stab_bytes_total{peer="2"} 17`,
		"# TYPE stab_up gauge",
		"stab_up 1",
		"stab_buffered_bytes 3.5",
		"# TYPE stab_lat_seconds histogram",
		`stab_lat_seconds_bucket{le="+Inf"} 1`,
		"stab_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
