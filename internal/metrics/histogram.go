package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HistogramOpts shape a histogram's fixed log-scale buckets.
//
// Observations are int64 values in an arbitrary base unit (nanoseconds,
// bytes, ...). Bucket i collects values v with bits.Len64(v) == i, i.e.
// v in [2^(i-1), 2^i); exponents are clamped to [MinPow, MaxPow] and
// values at or beyond 2^MaxPow land in a final overflow (+Inf) bucket.
// Unit converts one base unit into the exposed unit: a histogram observed
// in nanoseconds and exposed in seconds uses Unit = 1e-9.
type HistogramOpts struct {
	// Unit is the exposed value of one observed base unit (default 1).
	Unit float64
	// MinPow and MaxPow bound the bucket exponents (defaults 0 and 32).
	MinPow, MaxPow int
}

// LatencyOpts exposes nanosecond observations as seconds, with buckets from
// ~4µs (2^12 ns) to ~2.3min (2^37 ns).
var LatencyOpts = HistogramOpts{Unit: 1e-9, MinPow: 12, MaxPow: 37}

// SizeOpts exposes byte observations as bytes, with buckets from 16B to 16GiB.
var SizeOpts = HistogramOpts{Unit: 1, MinPow: 4, MaxPow: 34}

func (o HistogramOpts) normalized() HistogramOpts {
	if o.Unit == 0 {
		o.Unit = 1
	}
	if o.MinPow < 0 {
		o.MinPow = 0
	}
	if o.MaxPow <= o.MinPow {
		o.MaxPow = o.MinPow + 32
	}
	if o.MaxPow > 62 {
		o.MaxPow = 62
	}
	return o
}

// Histogram is a fixed-bucket log-scale histogram safe for concurrent
// observers. Observe is a bit-length computation plus two atomic adds: no
// locks, no allocation.
type Histogram struct {
	opts   HistogramOpts
	counts []atomic.Int64 // MaxPow-MinPow+1 bounded buckets, then overflow
	count  atomic.Int64
	sum    atomic.Int64 // base units
}

func newHistogram(opts HistogramOpts) *Histogram {
	opts = opts.normalized()
	return &Histogram{
		opts:   opts,
		counts: make([]atomic.Int64, opts.MaxPow-opts.MinPow+2),
	}
}

// NewHistogram returns a standalone histogram (not attached to a registry);
// use Registry.Histogram for registered families.
func NewHistogram(opts HistogramOpts) *Histogram { return newHistogram(opts) }

// Observe records one value in base units. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bits.Len64(uint64(v)) - h.opts.MinPow
	switch {
	case idx < 0:
		idx = 0
	case idx >= len(h.counts):
		idx = len(h.counts) - 1
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// CountLe returns the number of observations whose bucket upper bound is at
// most v (in base units) — the cumulative count of every bucket entirely at
// or below v. It is the primitive behind SLO good-event counting: with a
// threshold on a bucket boundary it is exact, otherwise it conservatively
// excludes the bucket straddling v.
func (h *Histogram) CountLe(v int64) int64 {
	if v < 0 {
		return 0
	}
	var cum int64
	for i := 0; i < len(h.counts)-1; i++ {
		ub := int64(1) << uint(i+h.opts.MinPow)
		if ub > v {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// Sum returns the sum of observations in base units.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// Le is the bucket's inclusive upper bound in exposed units;
	// math.Inf(1) for the overflow bucket.
	Le float64 `json:"le"`
	// Count is the number of observations in this bucket (not cumulative).
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"` // exposed units
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state. Concurrent observers may land
// between bucket reads; totals are internally consistent to within the
// in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   float64(h.sum.Load()) * h.opts.Unit,
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{Le: h.upperBound(i), Count: n})
	}
	return s
}

// upperBound is bucket i's inclusive upper bound in exposed units.
func (h *Histogram) upperBound(i int) float64 {
	if i == len(h.counts)-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i+h.opts.MinPow)) * h.opts.Unit
}

// Quantile estimates the q-quantile (0..1) in exposed units, assuming a
// uniform distribution inside each bucket. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			hi := h.upperBound(i)
			if math.IsInf(hi, 1) {
				// Overflow bucket: report its lower bound.
				return float64(uint64(1)<<uint(h.opts.MaxPow)) * h.opts.Unit
			}
			lo := hi / 2
			if i == 0 {
				lo = 0
			}
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return float64(uint64(1)<<uint(h.opts.MaxPow)) * h.opts.Unit
}
