package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// --- structured snapshot (shared by JSON exposition and tests) ---

// MetricSnapshot is one metric instance inside a FamilySnapshot.
type MetricSnapshot struct {
	// Labels maps label names to values; empty for unlabeled metrics.
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds counter and gauge readings.
	Value float64 `json:"value"`
	// Histogram holds histogram readings (nil otherwise).
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
	// P50/P99 are estimated quantiles, only set for histograms.
	P50 float64 `json:"p50,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// FamilySnapshot is a point-in-time copy of one family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Type    string           `json:"type"`
	Help    string           `json:"help,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot copies every family in the registry, sorted by name.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.families()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.typ.String(), Help: f.help}
		for _, ch := range f.sortedChildren() {
			m := MetricSnapshot{}
			if len(f.labelNames) > 0 {
				m.Labels = make(map[string]string, len(f.labelNames))
				for i, ln := range f.labelNames {
					m.Labels[ln] = ch.labels[i]
				}
			}
			if ch.h != nil {
				snap := ch.h.Snapshot()
				m.Histogram = &snap
				m.P50 = ch.h.Quantile(0.50)
				m.P99 = ch.h.Quantile(0.99)
			} else {
				m.Value = ch.value()
			}
			fs.Metrics = append(fs.Metrics, m)
		}
		out = append(out, fs)
	}
	return out
}

// Find returns the snapshot of the named family, or nil if absent.
func (r *Registry) Find(name string) *FamilySnapshot {
	for _, fs := range r.Snapshot() {
		if fs.Name == name {
			return &fs
		}
	}
	return nil
}

// sortedChildren returns the family's children ordered by label values,
// collected across the family's shards.
func (f *Family) sortedChildren() []*child {
	type kv struct {
		k  string
		ch *child
	}
	var all []kv
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for k, ch := range sh.children {
			all = append(all, kv{k, ch})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	out := make([]*child, len(all))
	for i := range all {
		out[i] = all[i].ch
	}
	return out
}

// --- Prometheus text exposition ---

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, ch := range children {
			if ch.h != nil {
				writeHistogram(bw, f.name, f.labelNames, ch.labels, ch.h)
			} else {
				writeSample(bw, f.name, f.labelNames, ch.labels, "", "", ch.value())
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram child: cumulative buckets, sum, count.
func writeHistogram(w io.Writer, name string, labelNames, labelValues []string, h *Histogram) {
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		cum += n
		if n == 0 && i != len(h.counts)-1 {
			continue // skip interior empty buckets; +Inf always emitted
		}
		le := formatLe(h.upperBound(i))
		writeSample(w, name+"_bucket", labelNames, labelValues, "le", le, float64(cum))
	}
	writeSample(w, name+"_sum", labelNames, labelValues, "", "", float64(h.sum.Load())*h.opts.Unit)
	writeSample(w, name+"_count", labelNames, labelValues, "", "", float64(h.count.Load()))
}

// writeSample renders one sample line, appending an optional extra label
// (used for histogram le).
func writeSample(w io.Writer, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	io.WriteString(w, name)
	if len(labelNames) > 0 || extraName != "" {
		io.WriteString(w, "{")
		first := true
		for i, ln := range labelNames {
			if !first {
				io.WriteString(w, ",")
			}
			first = false
			fmt.Fprintf(w, "%s=%q", ln, labelValues[i])
		}
		if extraName != "" {
			if !first {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", extraName, extraValue)
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatValue(v))
	io.WriteString(w, "\n")
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// --- HTTP exposition ---

// Handler serves the registry: Prometheus text format by default, JSON with
// ?format=json or an Accept header preferring application/json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Families []FamilySnapshot `json:"families"`
			}{r.Snapshot()})
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ServeOption customizes the mux built by Serve.
type ServeOption func(*serveConfig)

type serveConfig struct {
	pprof bool
}

// WithPprof mounts net/http/pprof's handlers under /debug/pprof/ on the
// metrics mux, so live runs can correlate CPU/alloc profiles with metric
// spikes without opening a second port. Off by default: profiles expose
// internals and profiling costs CPU, so deployments opt in per endpoint.
func WithPprof() ServeOption {
	return func(c *serveConfig) { c.pprof = true }
}

// Serve binds addr and serves reg at /metrics in the background, plus any
// extra handlers (path → handler). It returns once the listener is bound;
// callers Close the returned server on shutdown.
func Serve(addr string, reg *Registry, extra map[string]http.Handler, opts ...ServeOption) (*http.Server, error) {
	var cfg serveConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	for path, h := range extra {
		mux.Handle(path, h)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, Addr: ln.Addr().String()}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
