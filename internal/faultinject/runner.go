package faultinject

import (
	"sort"
	"sync"
	"time"
)

// Runner walks a Schedule against wall time and applies each event to an
// Injector, mapping virtual event times to wall times through Scale (the
// same convention as emunet.Matrix.Scaled: wall = virtual / Scale).
type Runner struct {
	Inj   *Injector
	Sched *Schedule
	// N is the cluster size partitions are computed against.
	N int
	// Scale divides virtual times; ≤ 0 means 1 (faithful wall-clock).
	Scale float64
	// Crash and Restart handle KindCrashRestart events: Crash(node) runs
	// at the event time, Restart(node) after the event's duration. Both
	// run on the runner's goroutine; nil skips crash events.
	Crash   func(node int)
	Restart func(node int)
	// Backlog reports the retransmission backlog (bytes, memory plus any
	// spill tier) of the node a KindBacklogPartition isolates. Required
	// for backlog-driven heals; with it nil (or Event.Bytes zero) the
	// event degrades to a plain timed partition.
	Backlog func(node int) int64
	// Logf, when set, traces each applied action.
	Logf func(format string, args ...any)
}

// action is one timed state change derived from an event.
type action struct {
	at   time.Duration // virtual
	desc string
	fn   func()
}

// Run applies the schedule, blocking until the last action has run or stop
// is closed. Every engaged fault's heal action is part of the timeline, so
// a completed Run leaves only severed connections behind (transports
// redial); an interrupted Run may leave faults engaged — use
// Injector.HealAll.
func (r *Runner) Run(stop <-chan struct{}) {
	scale := r.Scale
	if scale <= 0 {
		scale = 1
	}
	var actions []action
	for _, e := range r.Sched.Events {
		e := e
		switch e.Kind {
		case KindPartition:
			actions = append(actions,
				action{e.At, e.String(), func() {
					r.Inj.Partition(e.Nodes, r.N)
				}},
				action{e.At + e.Dur, "heal " + e.String(), func() {
					r.Inj.HealPartition(e.Nodes, r.N)
				}})
		case KindFlap:
			actions = append(actions, action{e.At, e.String(), func() {
				r.Inj.Flap(e.Nodes[0], e.Nodes[1])
			}})
		case KindBlackhole:
			actions = append(actions,
				action{e.At, e.String(), func() {
					r.Inj.Blackhole(e.Nodes[0], e.Nodes[1])
				}},
				action{e.At + e.Dur, "heal " + e.String(), func() {
					r.Inj.HealBlackhole(e.Nodes[0], e.Nodes[1])
				}})
		case KindLatencySpike:
			extra := time.Duration(float64(e.Extra) / scale)
			actions = append(actions,
				action{e.At, e.String(), func() {
					r.Inj.Spike(e.Nodes[0], e.Nodes[1], extra)
				}},
				action{e.At + e.Dur, "heal " + e.String(), func() {
					r.Inj.ClearSpike(e.Nodes[0], e.Nodes[1], extra)
				}})
		case KindSlowReceiver:
			extra := time.Duration(float64(e.Extra) / scale)
			actions = append(actions,
				action{e.At, e.String(), func() {
					r.Inj.SlowReceiver(e.Nodes[0], e.Nodes[1], extra)
				}},
				action{e.At + e.Dur, "heal " + e.String(), func() {
					r.Inj.ClearSlowReceiver(e.Nodes[0], e.Nodes[1], extra)
				}})
		case KindBacklogPartition:
			// Engage like a partition; heal on whichever comes first —
			// the victim's backlog crossing e.Bytes (polled on a side
			// goroutine) or the At+Dur safety timeout on the timeline.
			var heal sync.Once
			healFn := func(why string) {
				heal.Do(func() {
					if r.Logf != nil {
						r.Logf("faultinject: %s %s", why, e.String())
					}
					r.Inj.HealPartition(e.Nodes, r.N)
				})
			}
			actions = append(actions,
				action{e.At, e.String(), func() {
					r.Inj.RecordFault(KindBacklogPartition)
					r.Inj.Partition(e.Nodes, r.N)
					if r.Backlog == nil || e.Bytes <= 0 {
						return
					}
					go func() {
						tick := time.NewTicker(5 * time.Millisecond)
						defer tick.Stop()
						for {
							select {
							case <-stop:
								return
							case <-tick.C:
								if r.Backlog(e.Nodes[0]) >= e.Bytes {
									healFn("backlog-heal")
									return
								}
							}
						}
					}()
				}},
				action{e.At + e.Dur, "timeout-heal " + e.String(), func() {
					healFn("timeout-heal")
				}})
		case KindCrashRestart:
			if r.Crash == nil || r.Restart == nil {
				continue
			}
			actions = append(actions,
				action{e.At, e.String(), func() {
					r.Inj.RecordFault(KindCrashRestart)
					r.Crash(e.Nodes[0])
				}},
				action{e.At + e.Dur, "restart " + e.String(), func() {
					r.Restart(e.Nodes[0])
				}})
		}
	}
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].at < actions[j].at })

	start := time.Now()
	for _, a := range actions {
		due := start.Add(time.Duration(float64(a.at) / scale))
		if d := time.Until(due); d > 0 {
			select {
			case <-stop:
				return
			case <-time.After(d):
			}
		} else {
			select {
			case <-stop:
				return
			default:
			}
		}
		if r.Logf != nil {
			r.Logf("faultinject: t=%-8s %s", time.Since(start).Round(time.Millisecond), a.desc)
		}
		a.fn()
	}
}
