package faultinject

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
)

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := GenConfig{N: 4, Crashable: []int{3, 4}, Horizon: 10 * time.Second}
	const seed = 42
	a, b := Generate(seed, cfg), Generate(seed, cfg)
	if a.String() != b.String() {
		t.Fatalf("seed %d: schedules differ:\n%s\n--- vs ---\n%s", seed, a, b)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("seed %d: fingerprints differ: %s vs %s", seed, a.Fingerprint(), b.Fingerprint())
	}
	if c := Generate(seed+1, cfg); c.String() == a.String() {
		t.Fatalf("seeds %d and %d produced identical schedules", seed, seed+1)
	}
}

func TestGenerateCoversEveryKind(t *testing.T) {
	const seed = 7
	s := Generate(seed, GenConfig{N: 4, Crashable: []int{4}, Horizon: 10 * time.Second})
	if got, want := len(s.Kinds()), len(AllKinds()); got != want {
		t.Fatalf("seed %d: schedule covers %d kinds (%v), want all %d:\n%s", seed, got, s.Kinds(), want, s)
	}
}

func TestGenerateRespectsKindSubset(t *testing.T) {
	const seed = 7
	s := Generate(seed, GenConfig{N: 3, Horizon: 10 * time.Second, Kinds: []Kind{KindFlap, KindBlackhole}})
	for _, e := range s.Events {
		if e.Kind != KindFlap && e.Kind != KindBlackhole {
			t.Fatalf("seed %d: unexpected kind %s in restricted schedule", seed, e.Kind)
		}
	}
	if len(s.Events) == 0 {
		t.Fatalf("seed %d: empty schedule", seed)
	}
}

// pipePair returns an injected conn in front of one side of a net.Pipe.
func pipePair(t *testing.T, in *Injector, from, to int) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	wrapped, err := in.Hook()(from, to, a)
	if err != nil {
		t.Fatalf("hook: %v", err)
	}
	return wrapped.(*Conn), b
}

func TestCutStallsWriteUntilHeal(t *testing.T) {
	in := New(nil)
	defer in.Close()
	c, peer := pipePair(t, in, 1, 2)

	in.CutLink(1, 2)
	wrote := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("hello"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write completed through a cut link: err=%v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Heal: the stalled bytes must now flow, unmodified.
	go in.HealLink(1, 2)
	buf := make([]byte, 16)
	n, err := peer.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read after heal: %q, %v", buf[:n], err)
	}
	if err := <-wrote; err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestSeverFailsStalledWriteMidFrame(t *testing.T) {
	in := New(nil)
	defer in.Close()
	c, peer := pipePair(t, in, 1, 2)

	// A frame bigger than one write chunk: the first chunk lands, then the
	// cut engages and the sever kills the rest — a mid-frame break.
	frame := make([]byte, writeChunk*3)
	go func() {
		buf := make([]byte, writeChunk)
		_, _ = io.ReadFull(peer, buf) // accept the first chunk
		in.CutLink(1, 2)              // stall the remainder
		time.Sleep(20 * time.Millisecond)
		in.Sever(1, 2)
	}()
	n, err := c.Write(frame)
	if err == nil {
		t.Fatalf("write survived a sever (n=%d)", n)
	}
	// The kill may surface at the fault gate (net.ErrClosed) or inside the
	// underlying pipe write (io.ErrClosedPipe); either way it must land
	// mid-frame.
	if n == 0 || n >= len(frame) {
		t.Fatalf("sever did not land mid-frame: wrote %d of %d (err=%v)", n, len(frame), err)
	}
}

func TestCutStallsReadsOfReverseTraffic(t *testing.T) {
	in := New(nil)
	defer in.Close()
	// Conn dialed 2→1: its reads carry 1→2 traffic.
	c, peer := pipePair(t, in, 2, 1)

	in.CutLink(1, 2)
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		_, err := c.Read(buf)
		readDone <- err
	}()
	go func() { _, _ = peer.Write([]byte("ping")) }()
	select {
	case err := <-readDone:
		t.Fatalf("read completed through a cut reverse link: err=%v", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.HealLink(1, 2)
	if err := <-readDone; err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestDialFailsWhileCut(t *testing.T) {
	net1 := emunet.NewMemNetwork(nil)
	defer net1.Close()
	reg := metrics.NewRegistry()
	in := New(reg)
	defer in.Close()
	net1.SetConnHook(in.Hook())

	l, err := net1.Listen(2)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, c) }()
		}
	}()

	in.Blackhole(1, 2)
	if _, err := net1.Dial(1, 2); !errors.Is(err, ErrLinkCut) {
		t.Fatalf("dial through cut link: err=%v, want ErrLinkCut", err)
	}
	in.HealBlackhole(1, 2)
	c, err := net1.Dial(1, 2)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	_ = c.Close()
	if v := reg.CounterVec("stabilizer_faults_injected_total", "Fault events injected, by fault kind.", "kind").With(KindBlackhole.String()).Value(); v != 1 {
		t.Fatalf("injected counter = %d, want 1", v)
	}
}

func TestSpikeDelaysWrites(t *testing.T) {
	in := New(nil)
	defer in.Close()
	c, peer := pipePair(t, in, 1, 2)
	go func() { _, _ = io.Copy(io.Discard, peer) }()

	const spike = 60 * time.Millisecond
	in.Spike(1, 2, spike)
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < spike {
		t.Fatalf("spiked write took %v, want ≥ %v", el, spike)
	}
	in.ClearSpike(1, 2, spike)
	start = time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > spike {
		t.Fatalf("write after ClearSpike took %v, want < %v", el, spike)
	}
}

func TestSlowReceiverThrottlesReads(t *testing.T) {
	in := New(nil)
	defer in.Close()
	// Conn dialed 2→1: its reads carry 1→2 traffic, the throttled direction.
	c, peer := pipePair(t, in, 2, 1)

	payload := make([]byte, 3*readChunk)
	go func() {
		_, _ = peer.Write(payload)
	}()

	const slow = 20 * time.Millisecond
	in.SlowReceiver(1, 2, slow)
	start := time.Now()
	buf := make([]byte, len(payload))
	total := 0
	for total < len(payload) {
		n, err := c.Read(buf[total:])
		if err != nil {
			t.Fatalf("throttled read: %v", err)
		}
		if n > readChunk {
			t.Fatalf("throttled read returned %d bytes, want ≤ %d per chunk", n, readChunk)
		}
		total += n
	}
	// Three chunks at ≥ slow each; allow scheduler slop on the floor.
	if el := time.Since(start); el < 3*slow-slow/2 {
		t.Fatalf("throttled drain of %d bytes took %v, want ≥ ~%v", total, el, 3*slow)
	}
	in.ClearSlowReceiver(1, 2, slow)

	go func() { _, _ = peer.Write(payload[:4]) }()
	start = time.Now()
	if _, err := c.Read(buf[:4]); err != nil {
		t.Fatalf("read after clear: %v", err)
	}
	if el := time.Since(start); el > slow {
		t.Fatalf("read after ClearSlowReceiver took %v, want < %v", el, slow)
	}
}

func TestRunnerAppliesAndHealsInOrder(t *testing.T) {
	in := New(nil)
	defer in.Close()
	sched := &Schedule{Seed: 1, Events: []Event{
		{At: 10 * time.Millisecond, Dur: 30 * time.Millisecond, Kind: KindBlackhole, Nodes: []int{1, 2}},
		{At: 20 * time.Millisecond, Kind: KindFlap, Nodes: []int{1, 3}},
	}}
	crashed := make(chan int, 1)
	r := &Runner{Inj: in, Sched: sched, N: 3, Scale: 1,
		Crash: func(n int) { crashed <- n }, Restart: func(int) {}}
	done := make(chan struct{})
	go func() { r.Run(nil); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("runner did not finish")
	}
	// After Run, every engaged fault has healed: dials must succeed.
	if _, err := in.Hook()(1, 2, nopConn{}); err != nil {
		t.Fatalf("link still cut after runner finished: %v", err)
	}
}

// nopConn is a do-nothing net.Conn for hook-only tests.
type nopConn struct{}

func (nopConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (nopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return nil }
func (nopConn) RemoteAddr() net.Addr             { return nil }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }
