package faultinject

import (
	"net"
	"sync"
	"time"
)

// writeChunk bounds the bytes written between fault checks, so a fault
// engaged while a large frame is in flight lands mid-frame: the prefix is
// on the wire, the rest stalls or dies with the connection.
const writeChunk = 4 << 10

// readChunk bounds the bytes read per receive-throttle delay: a SlowReceiver
// fault charges its per-chunk delay for at most this many bytes, capping the
// throttled direction's drain rate at readChunk/delay.
const readChunk = 4 << 10

// Conn is the injectable connection wrapper the Injector's Hook installs on
// every dialed connection. Its reads and writes consult the injector's
// fault state: a cut direction stalls them (no bytes lost — TCP semantics),
// a spike delays writes, and a sever fails everything immediately.
type Conn struct {
	inj      *Injector
	from, to int
	base     net.Conn

	// severed is set by the injector under inj.mu; once true every
	// operation fails with net.ErrClosed.
	severed bool
	// closed is set under inj.mu when Close runs, so operations stalled in
	// a fault gate wake and fail instead of outliving their connection — a
	// closed socket aborts blocked I/O even while the link is dark.
	closed bool

	closeOnce sync.Once
}

var _ net.Conn = (*Conn)(nil)

// Write pushes p through the fault gate in chunks: each chunk first waits
// out any cut on the forward direction, so a concurrently engaged fault
// stalls (or a sever kills) the write mid-frame. Spike delay applies once
// per call, before the first byte.
func (c *Conn) Write(p []byte) (int, error) {
	d, err := c.inj.gateWrite(c)
	if err != nil {
		return 0, err
	}
	if d > 0 {
		time.Sleep(d)
	}
	total := 0
	for len(p) > 0 {
		if total > 0 { // re-check the gate between chunks
			if _, err := c.inj.gateWrite(c); err != nil {
				return total, err
			}
		}
		n := len(p)
		if n > writeChunk {
			n = writeChunk
		}
		m, err := c.base.Write(p[:n])
		total += m
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// Read waits out any cut on the reverse direction (whose traffic these
// reads carry), then reads from the underlying connection. Bytes already
// buffered below when a cut engages may still be delivered — matching a
// real one-way blackhole, which cannot recall packets past the bottleneck.
// A SlowReceiver fault on that direction charges its delay per readChunk
// bytes: the read is clipped to one chunk and sleeps first, bounding the
// drain rate regardless of the caller's buffer size.
func (c *Conn) Read(p []byte) (int, error) {
	d, err := c.inj.gateRead(c)
	if err != nil {
		return 0, err
	}
	if d > 0 {
		time.Sleep(d)
		if len(p) > readChunk {
			p = p[:readChunk]
		}
	}
	return c.base.Read(p)
}

// kill severs the connection: called by the injector after marking severed.
func (c *Conn) kill() { _ = c.base.Close() }

// Close implements net.Conn.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.inj.unregister(c)
		err = c.base.Close()
	})
	return err
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.base.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.base.RemoteAddr() }

// SetDeadline implements net.Conn by delegating to the wrapped connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.base.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.base.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.base.SetWriteDeadline(t) }
