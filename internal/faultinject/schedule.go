// Package faultinject is the deterministic fault-injection layer: it turns
// a seed into a replayable Schedule of network faults (partitions, link
// flaps, one-way blackholes, latency spikes, node crash-and-restarts,
// slow-receiver throttles) and applies them to a live emunet fabric through
// an Injector installed on the fabric's dial path.
//
// Fault semantics follow TCP's, because the transport layer's FIFO
// guarantee (paper §II-A) assumes lossless ordered connections: a fault
// never silently drops bytes mid-stream. A cut link *stalls* — writes and
// reads block, exactly like a dropped-packet window with no ACK clock —
// until the fault heals (buffered bytes then flow, modelling
// retransmission) or the connection is severed (the stall surfaces as a
// connection error, modelling an RTO kill). Severing mid-frame is the
// normal case: the injectable Conn chunks writes so a concurrently engaged
// fault lands inside a frame, exercising the transport's resend and
// reconnect-handshake paths.
//
// Everything is driven by explicit *rand.Rand sources: the same seed
// reproduces the same Schedule byte for byte (see Schedule.String), and a
// seeded fabric reproduces the same shaper jitter.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kind enumerates fault event types.
type Kind uint8

const (
	// KindPartition isolates a node set: every link crossing the set
	// boundary is cut in both directions and live connections are severed.
	KindPartition Kind = iota
	// KindFlap severs both directions of one link instantly; redialing is
	// allowed immediately (a transient TCP break).
	KindFlap
	// KindBlackhole cuts one direction of one link without severing:
	// traffic from→to stalls silently until the fault heals.
	KindBlackhole
	// KindLatencySpike adds a fixed extra delay to one direction of one
	// link for the fault's duration.
	KindLatencySpike
	// KindCrashRestart crashes a node (the harness closes it, losing all
	// volatile state) and restarts it fresh after the fault's duration.
	KindCrashRestart
	// KindSlowReceiver throttles the receive side of one directed link:
	// every read chunk carrying from→to traffic pays an extra delay, so
	// the receiver drains far slower than the sender produces — the
	// backpressure fault the flow-control layer exists for.
	KindSlowReceiver

	numKinds

	// KindBacklogPartition isolates one node (blackhole-style partition,
	// both directions) until the *backlog* it induces — not a timer —
	// reaches Event.Bytes: the runner polls Runner.Backlog and heals as
	// soon as the victim's unsent retransmission buffer has grown past the
	// threshold (typically GBs, the "day-long region outage" shape whose
	// natural unit is data volume, not wall time). Event.Dur still bounds
	// the fault as a safety timeout. Deliberately numbered after numKinds
	// and absent from AllKinds: Generate never draws it (existing seeded
	// schedules keep their fingerprints); harnesses place it explicitly.
	KindBacklogPartition
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPartition:
		return "partition"
	case KindFlap:
		return "flap"
	case KindBlackhole:
		return "blackhole"
	case KindLatencySpike:
		return "latency_spike"
	case KindCrashRestart:
		return "crash_restart"
	case KindSlowReceiver:
		return "slow_receiver"
	case KindBacklogPartition:
		return "backlog_partition"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// AllKinds lists every fault kind in canonical order.
func AllKinds() []Kind {
	return []Kind{KindPartition, KindFlap, KindBlackhole, KindLatencySpike, KindCrashRestart, KindSlowReceiver}
}

// Event is one scheduled fault.
type Event struct {
	// At is the virtual-time offset from schedule start at which the
	// fault engages.
	At time.Duration
	// Dur is how long the fault stays engaged; the heal (or restart)
	// action runs at At+Dur. Zero for instantaneous faults (flaps).
	Dur time.Duration
	// Kind is the fault type.
	Kind Kind
	// Nodes are the fault's subjects: the isolated set for a partition,
	// [a, b] for a flap, the directed [from, to] for blackholes and
	// latency spikes, and [node] for a crash.
	Nodes []int
	// Extra is the added one-way delay of a latency spike.
	Extra time.Duration
	// Bytes is a KindBacklogPartition's heal threshold: the fault ends
	// once the isolated node's retransmission backlog reaches this many
	// bytes (At+Dur remains the safety timeout).
	Bytes int64
}

// String renders the event canonically.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%08dms %-13s nodes=%v", e.At.Milliseconds(), e.Kind, e.Nodes)
	if e.Dur > 0 {
		fmt.Fprintf(&b, " dur=%dms", e.Dur.Milliseconds())
	}
	if e.Extra > 0 {
		fmt.Fprintf(&b, " extra=%dms", e.Extra.Milliseconds())
	}
	if e.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", e.Bytes)
	}
	return b.String()
}

// Schedule is a seeded, virtual-time fault plan. Two schedules generated
// from the same seed and GenConfig are identical, so a failing run's seed
// replays the exact event sequence.
type Schedule struct {
	Seed   int64
	Events []Event
}

// String renders the full schedule canonically, one event per line — the
// replay fingerprint used by tests.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d events=%d\n", s.Seed, len(s.Events))
	for _, e := range s.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fingerprint is a short stable hash of the canonical schedule rendering.
func (s *Schedule) Fingerprint() string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Kinds returns the distinct fault kinds present, in canonical order.
func (s *Schedule) Kinds() []Kind {
	seen := make(map[Kind]bool)
	for _, e := range s.Events {
		seen[e.Kind] = true
	}
	var out []Kind
	for _, k := range AllKinds() {
		if seen[k] {
			out = append(out, k)
		}
	}
	return out
}

// GenConfig parameterizes Generate.
type GenConfig struct {
	// N is the cluster size (1-based node indexes 1..N). Required, ≥ 2.
	N int
	// Crashable lists the nodes eligible for KindCrashRestart. Empty
	// disables crash events even if the kind is enabled.
	Crashable []int
	// Horizon is the virtual-time span events are generated over
	// (default 5s).
	Horizon time.Duration
	// MeanGap is the mean spacing between events (default Horizon/12).
	MeanGap time.Duration
	// MinDur and MaxDur bound fault durations (defaults 100ms and
	// MeanGap×2).
	MinDur, MaxDur time.Duration
	// MaxSpike bounds the extra delay of latency spikes (default 50ms).
	MaxSpike time.Duration
	// Kinds restricts the fault types generated (default AllKinds).
	Kinds []Kind
}

func (c GenConfig) normalized() GenConfig {
	if c.Horizon <= 0 {
		c.Horizon = 5 * time.Second
	}
	if c.MeanGap <= 0 {
		c.MeanGap = c.Horizon / 12
	}
	if c.MinDur <= 0 {
		c.MinDur = 100 * time.Millisecond
	}
	if c.MaxDur <= 0 {
		c.MaxDur = 2 * c.MeanGap
	}
	if c.MaxDur < c.MinDur {
		c.MaxDur = c.MinDur
	}
	if c.MaxSpike <= 0 {
		c.MaxSpike = 50 * time.Millisecond
	}
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
	if len(c.Crashable) == 0 {
		kept := c.Kinds[:0:0]
		for _, k := range c.Kinds {
			if k != KindCrashRestart {
				kept = append(kept, k)
			}
		}
		c.Kinds = kept
	}
	return c
}

// Generate builds a deterministic schedule from seed. The first len(Kinds)
// events cycle through every enabled kind once, so any non-trivial horizon
// exercises each fault type; later events draw kinds uniformly.
func Generate(seed int64, cfg GenConfig) *Schedule {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed}
	if cfg.N < 2 || len(cfg.Kinds) == 0 {
		return s
	}
	// Crash windows per node: a node is not re-crashed while a previous
	// crash's restart is still pending.
	crashedUntil := make(map[int]time.Duration)

	t := time.Duration(0)
	for i := 0; ; i++ {
		t += cfg.MeanGap/2 + time.Duration(rng.Int63n(int64(cfg.MeanGap)))
		if t >= cfg.Horizon {
			break
		}
		kind := cfg.Kinds[i%len(cfg.Kinds)]
		if i >= len(cfg.Kinds) {
			kind = cfg.Kinds[rng.Intn(len(cfg.Kinds))]
		}
		dur := cfg.MinDur + time.Duration(rng.Int63n(int64(cfg.MaxDur-cfg.MinDur)+1))
		e := Event{At: t, Dur: dur, Kind: kind}
		switch kind {
		case KindPartition:
			size := 1
			if max := cfg.N / 2; max > 1 {
				size += rng.Intn(max)
			}
			perm := rng.Perm(cfg.N)
			for _, p := range perm[:size] {
				e.Nodes = append(e.Nodes, p+1)
			}
			sort.Ints(e.Nodes)
		case KindFlap:
			a, b := pickPair(rng, cfg.N)
			if a > b {
				a, b = b, a
			}
			e.Nodes = []int{a, b}
			e.Dur = 0
		case KindBlackhole, KindLatencySpike, KindSlowReceiver:
			from, to := pickPair(rng, cfg.N)
			e.Nodes = []int{from, to}
			if kind != KindBlackhole {
				// Draw from [MaxSpike/4, MaxSpike) so every spike (or
				// per-chunk receive throttle) is big enough to be
				// observable against base latency.
				floor := int64(cfg.MaxSpike) / 4
				e.Extra = time.Duration(floor + rng.Int63n(int64(cfg.MaxSpike)-floor))
			}
		case KindCrashRestart:
			node, ok := pickCrashable(rng, cfg.Crashable, crashedUntil, t)
			if !ok {
				continue // every crashable node is already down
			}
			e.Nodes = []int{node}
			crashedUntil[node] = t + dur
		}
		s.Events = append(s.Events, e)
	}
	return s
}

// pickPair draws an ordered pair of distinct 1-based node indexes.
func pickPair(rng *rand.Rand, n int) (int, int) {
	a := rng.Intn(n) + 1
	b := rng.Intn(n-1) + 1
	if b >= a {
		b++
	}
	return a, b
}

// pickCrashable draws a crashable node that is currently up at time t.
func pickCrashable(rng *rand.Rand, crashable []int, crashedUntil map[int]time.Duration, t time.Duration) (int, bool) {
	up := make([]int, 0, len(crashable))
	for _, n := range crashable {
		if t >= crashedUntil[n] {
			up = append(up, n)
		}
	}
	if len(up) == 0 {
		return 0, false
	}
	return up[rng.Intn(len(up))], true
}
