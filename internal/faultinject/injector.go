package faultinject

import (
	"fmt"
	"net"
	"sync"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
)

// ErrLinkCut is returned by the dial hook while the dialed direction is cut.
var ErrLinkCut = fmt.Errorf("faultinject: link cut")

// pair is a directed (from, to) link.
type pair [2]int

// Injector applies faults to a live fabric. Install its Hook on an emunet
// network; every dialed connection is then wrapped in an injectable Conn
// whose reads and writes the injector can stall, delay, or sever at any
// moment — including mid-frame.
//
// Cut state is refcounted per directed pair so overlapping faults compose:
// a link stays cut until every fault holding it heals.
type Injector struct {
	mu     sync.Mutex
	cond   sync.Cond
	cut    map[pair]int             // stall refcount per directed pair
	delay  map[pair][]time.Duration // extra write delays (stack; max applies)
	slow   map[pair][]time.Duration // per-chunk read delays (stack; max applies)
	conns  map[pair]map[*Conn]struct{}
	closed bool

	injected *metrics.CounterVec
	active   *metrics.Gauge
}

// New creates an injector publishing fault counters into reg (nil uses a
// private registry): stabilizer_faults_injected_total{kind} and
// stabilizer_faults_active.
func New(reg *metrics.Registry) *Injector {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	in := &Injector{
		cut:   make(map[pair]int),
		delay: make(map[pair][]time.Duration),
		slow:  make(map[pair][]time.Duration),
		conns: make(map[pair]map[*Conn]struct{}),
		injected: reg.CounterVec("stabilizer_faults_injected_total",
			"Fault events injected, by fault kind.", "kind"),
		active: reg.Gauge("stabilizer_faults_active",
			"Fault effects currently engaged (cut directions plus delayed directions)."),
	}
	in.cond.L = &in.mu
	return in
}

// Hook returns the dial-path hook to install via SetConnHook. Dials in a
// cut direction fail with ErrLinkCut (a dropped SYN, surfaced fast so the
// transport's backoff drives retry); successful dials return an injectable
// wrapper registered with the injector.
func (in *Injector) Hook() emunet.ConnHook {
	return func(from, to int, conn net.Conn) (net.Conn, error) {
		in.mu.Lock()
		defer in.mu.Unlock()
		if in.closed {
			return nil, net.ErrClosed
		}
		if in.cut[pair{from, to}] > 0 {
			return nil, fmt.Errorf("%w: %d->%d", ErrLinkCut, from, to)
		}
		c := &Conn{inj: in, from: from, to: to, base: conn}
		set := in.conns[pair{from, to}]
		if set == nil {
			set = make(map[*Conn]struct{})
			in.conns[pair{from, to}] = set
		}
		set[c] = struct{}{}
		return c, nil
	}
}

// RecordFault bumps the injected-fault counter for kind. The Runner calls
// it once per applied event; direct Injector users may call it themselves.
func (in *Injector) RecordFault(k Kind) { in.injected.With(k.String()).Inc() }

// CutLink cuts the directed from→to traffic: writes carrying it stall,
// reads carrying it stall, and new dials in that direction fail. Refcounted;
// every CutLink needs a matching HealLink.
func (in *Injector) CutLink(from, to int) {
	in.mu.Lock()
	if in.cut[pair{from, to}] == 0 {
		in.active.Add(1)
	}
	in.cut[pair{from, to}]++
	in.mu.Unlock()
	in.cond.Broadcast()
}

// HealLink releases one CutLink of the directed from→to traffic. Stalled
// operations resume; the stalled bytes then flow (TCP retransmission after
// the blackhole lifts).
func (in *Injector) HealLink(from, to int) {
	in.mu.Lock()
	if n := in.cut[pair{from, to}]; n > 1 {
		in.cut[pair{from, to}] = n - 1
	} else if n == 1 {
		delete(in.cut, pair{from, to})
		in.active.Add(-1)
	}
	in.mu.Unlock()
	in.cond.Broadcast()
}

// Sever closes every live injected connection between a and b (both
// directions). Stalled reads and writes on those connections fail
// immediately with net.ErrClosed — a mid-frame connection kill.
func (in *Injector) Sever(a, b int) {
	in.mu.Lock()
	victims := in.takeConnsLocked(pair{a, b}, pair{b, a})
	in.mu.Unlock()
	in.cond.Broadcast()
	for _, c := range victims {
		c.kill()
	}
}

// Flap severs both directions of the a↔b link without leaving it cut:
// transports may redial immediately and resend through the reconnect
// handshake.
func (in *Injector) Flap(a, b int) {
	in.RecordFault(KindFlap)
	in.Sever(a, b)
}

// Blackhole engages a one-way blackhole on from→to. Existing connections
// stall silently (no error, no progress) and dials from→to fail until
// HealBlackhole.
func (in *Injector) Blackhole(from, to int) {
	in.RecordFault(KindBlackhole)
	in.CutLink(from, to)
}

// HealBlackhole lifts a one-way blackhole.
func (in *Injector) HealBlackhole(from, to int) { in.HealLink(from, to) }

// Partition isolates set from the rest of the 1..n cluster: every directed
// link crossing the boundary is cut and every live crossing connection is
// severed, so the cut surfaces immediately instead of waiting for traffic.
func (in *Injector) Partition(set []int, n int) {
	in.RecordFault(KindPartition)
	inside := make(map[int]bool, len(set))
	for _, s := range set {
		inside[s] = true
	}
	for a := 1; a <= n; a++ {
		for b := 1; b <= n; b++ {
			if a != b && inside[a] != inside[b] {
				in.CutLink(a, b)
			}
		}
	}
	for _, a := range set {
		for b := 1; b <= n; b++ {
			if !inside[b] {
				in.Sever(a, b)
			}
		}
	}
}

// HealPartition reverses Partition for the same set and cluster size.
func (in *Injector) HealPartition(set []int, n int) {
	inside := make(map[int]bool, len(set))
	for _, s := range set {
		inside[s] = true
	}
	for a := 1; a <= n; a++ {
		for b := 1; b <= n; b++ {
			if a != b && inside[a] != inside[b] {
				in.HealLink(a, b)
			}
		}
	}
}

// Spike adds d of extra one-way delay to writes on the directed from→to
// link until ClearSpike. Overlapping spikes compose: the largest applies.
func (in *Injector) Spike(from, to int, d time.Duration) {
	in.RecordFault(KindLatencySpike)
	in.mu.Lock()
	if len(in.delay[pair{from, to}]) == 0 {
		in.active.Add(1)
	}
	in.delay[pair{from, to}] = append(in.delay[pair{from, to}], d)
	in.mu.Unlock()
}

// ClearSpike removes one Spike(from, to, d).
func (in *Injector) ClearSpike(from, to int, d time.Duration) {
	in.mu.Lock()
	ds := in.delay[pair{from, to}]
	for i, v := range ds {
		if v == d {
			ds = append(ds[:i], ds[i+1:]...)
			break
		}
	}
	if len(ds) == 0 {
		delete(in.delay, pair{from, to})
		in.active.Add(-1)
	} else {
		in.delay[pair{from, to}] = ds
	}
	in.mu.Unlock()
}

// SlowReceiver throttles the receive side of the directed from→to link:
// every read chunk carrying that traffic pays d of extra delay until
// ClearSlowReceiver. Overlapping throttles compose: the largest applies.
func (in *Injector) SlowReceiver(from, to int, d time.Duration) {
	in.RecordFault(KindSlowReceiver)
	in.mu.Lock()
	if len(in.slow[pair{from, to}]) == 0 {
		in.active.Add(1)
	}
	in.slow[pair{from, to}] = append(in.slow[pair{from, to}], d)
	in.mu.Unlock()
}

// ClearSlowReceiver removes one SlowReceiver(from, to, d).
func (in *Injector) ClearSlowReceiver(from, to int, d time.Duration) {
	in.mu.Lock()
	ds := in.slow[pair{from, to}]
	for i, v := range ds {
		if v == d {
			ds = append(ds[:i], ds[i+1:]...)
			break
		}
	}
	if len(ds) == 0 {
		delete(in.slow, pair{from, to})
		in.active.Add(-1)
	} else {
		in.slow[pair{from, to}] = ds
	}
	in.mu.Unlock()
}

// HealAll lifts every cut, spike and receive throttle (severed connections
// stay dead — their transports redial). Faults cease; convergence checking
// may begin.
func (in *Injector) HealAll() {
	in.mu.Lock()
	n := int64(len(in.cut) + len(in.delay) + len(in.slow))
	in.cut = make(map[pair]int)
	in.delay = make(map[pair][]time.Duration)
	in.slow = make(map[pair][]time.Duration)
	in.active.Add(-n)
	in.mu.Unlock()
	in.cond.Broadcast()
}

// Close heals everything and severs every live injected connection. New
// dials through the hook fail afterwards.
func (in *Injector) Close() {
	in.mu.Lock()
	in.closed = true
	n := int64(len(in.cut) + len(in.delay) + len(in.slow))
	in.cut = make(map[pair]int)
	in.delay = make(map[pair][]time.Duration)
	in.slow = make(map[pair][]time.Duration)
	in.active.Add(-n)
	pairs := make([]pair, 0, len(in.conns))
	for p := range in.conns {
		pairs = append(pairs, p)
	}
	victims := in.takeConnsLocked(pairs...)
	in.mu.Unlock()
	in.cond.Broadcast()
	for _, c := range victims {
		c.kill()
	}
}

// takeConnsLocked removes and returns the live conns of the given pairs.
// Caller holds in.mu.
func (in *Injector) takeConnsLocked(pairs ...pair) []*Conn {
	var out []*Conn
	for _, p := range pairs {
		for c := range in.conns[p] {
			c.severed = true
			out = append(out, c)
		}
		delete(in.conns, p)
	}
	return out
}

// unregister drops a closed conn from the registry and wakes any of its
// operations stalled in a fault gate (they fail with net.ErrClosed).
func (in *Injector) unregister(c *Conn) {
	in.mu.Lock()
	c.closed = true
	if set := in.conns[pair{c.from, c.to}]; set != nil {
		delete(set, c)
		if len(set) == 0 {
			delete(in.conns, pair{c.from, c.to})
		}
	}
	in.mu.Unlock()
	in.cond.Broadcast()
}

// gateWrite blocks while the conn's forward direction is cut, then returns
// the extra write delay currently engaged. An error means the conn was
// severed or the injector closed.
func (in *Injector) gateWrite(c *Conn) (time.Duration, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.cut[pair{c.from, c.to}] > 0 && !c.severed && !c.closed && !in.closed {
		in.cond.Wait()
	}
	if c.severed || c.closed || in.closed {
		return 0, net.ErrClosed
	}
	var d time.Duration
	for _, v := range in.delay[pair{c.from, c.to}] {
		if v > d {
			d = v
		}
	}
	return d, nil
}

// gateRead blocks while the conn's reverse direction (the traffic its reads
// carry) is cut, then returns the per-chunk receive throttle currently
// engaged on that direction.
func (in *Injector) gateRead(c *Conn) (time.Duration, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.cut[pair{c.to, c.from}] > 0 && !c.severed && !c.closed && !in.closed {
		in.cond.Wait()
	}
	if c.severed || c.closed || in.closed {
		return 0, net.ErrClosed
	}
	var d time.Duration
	for _, v := range in.slow[pair{c.to, c.from}] {
		if v > d {
			d = v
		}
	}
	return d, nil
}
