// Package filebackup implements the paper's Dropbox-like file backup
// service (§V-A, §VI-B) over the geo-replicated WAN K/V store. Files are
// split into packets of at most 8 KB (the paper's chunking rule), written
// to the locally owned pool, and mirrored to every WAN node by Stabilizer.
// Callers pick the consistency model for each backup from the Table III
// predicates (OneWNode, OneRegion, MajorityWNodes, MajorityRegions,
// AllWNodes, AllRegions) or register their own.
package filebackup

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"stabilizer/internal/kvstore"
	"stabilizer/internal/predlib"
	"stabilizer/internal/wankv"
)

// DefaultChunkSize is the paper's 8 KB message size bound.
const DefaultChunkSize = 8 << 10

// Errors returned by the service.
var (
	ErrNotBackedUp = errors.New("filebackup: file not found")
	ErrCorrupt     = errors.New("filebackup: inconsistent backup state")
)

// Result describes a completed local backup.
type Result struct {
	// FirstSeq..LastSeq are the Stabilizer sequence numbers carrying the
	// backup; the backup satisfies a consistency model once LastSeq
	// clears its predicate.
	FirstSeq uint64
	LastSeq  uint64
	// Chunks is the number of data packets written.
	Chunks int
	// Bytes is the file size.
	Bytes int
}

// manifest is the stored file metadata.
type manifest struct {
	Size      int `json:"size"`
	Chunks    int `json:"chunks"`
	ChunkSize int `json:"chunkSize"`
}

// Service is one node's file backup endpoint.
type Service struct {
	kv        *wankv.Store
	chunkSize int
}

// Option configures a Service.
type Option func(*Service)

// WithChunkSize overrides the 8 KB default packet bound.
func WithChunkSize(n int) Option {
	return func(s *Service) {
		if n > 0 {
			s.chunkSize = n
		}
	}
}

// New attaches a backup service to the WAN K/V store.
func New(kv *wankv.Store, opts ...Option) *Service {
	s := &Service{kv: kv, chunkSize: DefaultChunkSize}
	for _, o := range opts {
		o(s)
	}
	return s
}

// RegisterTableIII registers the six consistency models of the paper's
// Table III under their paper names, built for this node's topology.
func (s *Service) RegisterTableIII() error {
	topo := s.kv.Node().Topology()
	for name, src := range predlib.TableIII(topo) {
		if err := s.kv.RegisterPredicate(name, src); err != nil {
			return fmt.Errorf("filebackup: register %s: %w", name, err)
		}
	}
	return nil
}

// Backup stores a file into the local pool and starts geo-replication.
// Like the paper's put, the call is locally stable on return; use Wait (or
// BackupWait) to block until the chosen consistency model holds.
func (s *Service) Backup(name string, data []byte) (Result, error) {
	return s.BackupCtx(context.Background(), name, data)
}

// BackupCtx is Backup with cancellation for bounded-memory deployments
// (core.Config.Flow): a chunk put blocked on a full send log aborts with
// ctx.Err(); in fail-fast mode it surfaces transport.ErrBackpressure so the
// caller can shed and retry. The manifest is written last, so an aborted
// backup is invisible to Restore (ErrNotBackedUp) rather than corrupt —
// retrying the same name simply overwrites the orphaned chunks.
func (s *Service) BackupCtx(ctx context.Context, name string, data []byte) (Result, error) {
	chunks := (len(data) + s.chunkSize - 1) / s.chunkSize
	if chunks == 0 {
		chunks = 1 // empty file still gets a manifest + one empty chunk
	}
	res := Result{Chunks: chunks, Bytes: len(data)}
	for i := 0; i < chunks; i++ {
		lo := i * s.chunkSize
		hi := lo + s.chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		pr, err := s.kv.PutCtx(ctx, chunkKey(name, i), data[lo:hi])
		if err != nil {
			return Result{}, fmt.Errorf("filebackup: chunk %d: %w", i, err)
		}
		if i == 0 {
			res.FirstSeq = pr.Seq
		}
		res.LastSeq = pr.Seq
	}
	meta, err := json.Marshal(manifest{Size: len(data), Chunks: chunks, ChunkSize: s.chunkSize})
	if err != nil {
		return Result{}, fmt.Errorf("filebackup: manifest: %w", err)
	}
	pr, err := s.kv.PutCtx(ctx, metaKey(name), meta)
	if err != nil {
		return Result{}, fmt.Errorf("filebackup: manifest put: %w", err)
	}
	if res.FirstSeq == 0 {
		res.FirstSeq = pr.Seq
	}
	res.LastSeq = pr.Seq
	return res, nil
}

// Wait blocks until the backup satisfies the named consistency model.
func (s *Service) Wait(ctx context.Context, res Result, predicateKey string) error {
	return s.kv.WaitStable(ctx, res.LastSeq, predicateKey)
}

// BackupWait stores a file and blocks until the named consistency model
// holds — the paper's "drop a file, wait until it reaches a majority of
// WAN data centers before allowing access" workflow.
func (s *Service) BackupWait(ctx context.Context, name string, data []byte, predicateKey string) (Result, error) {
	res, err := s.BackupCtx(ctx, name, data)
	if err != nil {
		return Result{}, err
	}
	if err := s.Wait(ctx, res, predicateKey); err != nil {
		return res, err
	}
	return res, nil
}

// Restore reassembles a file from origin's (mirrored) pool. Use the local
// node index to restore locally owned backups.
func (s *Service) Restore(origin int, name string) ([]byte, error) {
	read := func(key string) (kvstore.Version, error) {
		if origin == s.kv.Node().Self() {
			return s.kv.Get(key)
		}
		return s.kv.GetFrom(origin, key)
	}
	mv, err := read(metaKey(name))
	if err != nil {
		return nil, fmt.Errorf("%w: %q from node %d: %v", ErrNotBackedUp, name, origin, err)
	}
	var m manifest
	if err := json.Unmarshal(mv.Value, &m); err != nil {
		return nil, fmt.Errorf("%w: bad manifest for %q: %v", ErrCorrupt, name, err)
	}
	out := make([]byte, 0, m.Size)
	for i := 0; i < m.Chunks; i++ {
		cv, err := read(chunkKey(name, i))
		if err != nil {
			return nil, fmt.Errorf("%w: %q missing chunk %d: %v", ErrCorrupt, name, i, err)
		}
		out = append(out, cv.Value...)
	}
	if len(out) != m.Size {
		return nil, fmt.Errorf("%w: %q reassembled %d bytes, manifest says %d", ErrCorrupt, name, len(out), m.Size)
	}
	return out, nil
}

// ChangePredicate switches a registered consistency model at runtime.
func (s *Service) ChangePredicate(key, source string) error {
	return s.kv.ChangePredicate(key, source)
}

// Frontier reports the newest local sequence satisfying the named model.
func (s *Service) Frontier(predicateKey string) (uint64, error) {
	return s.kv.GetStabilityFrontier(predicateKey)
}

func metaKey(name string) string { return "bk/" + name + "/meta" }

func chunkKey(name string, i int) string { return fmt.Sprintf("bk/%s/c%08d", name, i) }
