package filebackup

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
	"stabilizer/internal/predlib"
	"stabilizer/internal/transport"
	"stabilizer/internal/wankv"
)

type env struct {
	nodes  []*core.Node
	stores []*wankv.Store
	svc    *Service
}

func startBackupCluster(t *testing.T, opts ...Option) *env {
	t.Helper()
	topo := config.EC2Topology(1)
	network := emunet.NewMemNetwork(emunet.EC2Matrix().Scaled(50))
	e := &env{}
	for i := 1; i <= topo.N(); i++ {
		n, err := core.Open(core.Config{Topology: topo.WithSelf(i), Network: network})
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		e.nodes = append(e.nodes, n)
		e.stores = append(e.stores, wankv.New(n))
	}
	e.svc = New(e.stores[0], opts...)
	if err := e.svc.RegisterTableIII(); err != nil {
		t.Fatalf("register table III: %v", err)
	}
	if err := e.stores[0].RegisterPredicate("alldel", "MIN(($ALLWNODES-$MYWNODE).delivered)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range e.nodes {
			_ = n.Close()
		}
		_ = network.Close()
	})
	return e
}

func TestBackupAndRestoreRoundTrip(t *testing.T) {
	e := startBackupCluster(t)
	data := make([]byte, 100<<10) // 100 KB = 13 chunks
	rand.New(rand.NewSource(1)).Read(data)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := e.svc.BackupWait(ctx, "report.pdf", data, predlib.AllWNodesKey)
	if err != nil {
		t.Fatalf("backup: %v", err)
	}
	if res.Chunks != 13 || res.Bytes != len(data) {
		t.Fatalf("result = %+v", res)
	}
	if res.LastSeq-res.FirstSeq != 13 { // 13 chunks + manifest - 1
		t.Fatalf("seq span = %d..%d", res.FirstSeq, res.LastSeq)
	}
	if err := e.svc.Wait(ctx, res, "alldel"); err != nil {
		t.Fatal(err)
	}

	// Restore locally and from a remote mirror.
	local, err := e.svc.Restore(1, "report.pdf")
	if err != nil || !bytes.Equal(local, data) {
		t.Fatalf("local restore: %v (match=%v)", err, bytes.Equal(local, data))
	}
	remoteSvc := New(e.stores[7]) // Ohio
	remote, err := remoteSvc.Restore(1, "report.pdf")
	if err != nil || !bytes.Equal(remote, data) {
		t.Fatalf("remote restore: %v (match=%v)", err, bytes.Equal(remote, data))
	}
}

func TestBackupEmptyFile(t *testing.T) {
	e := startBackupCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := e.svc.BackupWait(ctx, "empty", nil, predlib.OneWNodeKey)
	if err != nil {
		t.Fatalf("backup empty: %v", err)
	}
	if res.Chunks != 1 || res.Bytes != 0 {
		t.Fatalf("result = %+v", res)
	}
	if err := e.svc.Wait(ctx, res, "alldel"); err != nil {
		t.Fatal(err)
	}
	got, err := e.svc.Restore(1, "empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("restore empty = %d bytes, %v", len(got), err)
	}
}

func TestBackupExactChunkBoundary(t *testing.T) {
	e := startBackupCluster(t)
	data := make([]byte, 2*DefaultChunkSize)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := e.svc.BackupWait(ctx, "boundary", data, predlib.OneWNodeKey)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 2 {
		t.Fatalf("chunks = %d, want 2 (no empty trailing chunk)", res.Chunks)
	}
	if err := e.svc.Wait(ctx, res, "alldel"); err != nil {
		t.Fatal(err)
	}
	got, err := e.svc.Restore(1, "boundary")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restore: %v", err)
	}
}

func TestCustomChunkSize(t *testing.T) {
	e := startBackupCluster(t, WithChunkSize(1024))
	data := make([]byte, 4096+1)
	res, err := e.svc.Backup("tiny-chunks", data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 5 {
		t.Fatalf("chunks = %d, want 5", res.Chunks)
	}
}

func TestRestoreMissingFile(t *testing.T) {
	e := startBackupCluster(t)
	if _, err := e.svc.Restore(1, "never-backed-up"); !errors.Is(err, ErrNotBackedUp) {
		t.Fatalf("err = %v, want ErrNotBackedUp", err)
	}
}

func TestSLAOrderingWeakBeforeStrong(t *testing.T) {
	e := startBackupCluster(t)
	data := make([]byte, 64<<10)
	res, err := e.svc.Backup("sla-test", data)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Frontier values must be ordered weak ≥ strong at all times once
	// AllWNodes is satisfied.
	if err := e.svc.Wait(ctx, res, predlib.AllWNodesKey); err != nil {
		t.Fatal(err)
	}
	strongest, _ := e.svc.Frontier(predlib.AllWNodesKey)
	for _, weaker := range []string{predlib.OneWNodeKey, predlib.OneRegionKey, predlib.MajorityRegionsKey, predlib.MajorityWNodesKey} {
		f, err := e.svc.Frontier(weaker)
		if err != nil {
			t.Fatal(err)
		}
		if f < strongest {
			t.Fatalf("%s frontier %d below AllWNodes %d", weaker, f, strongest)
		}
	}
}

func TestChangePredicatePlumbing(t *testing.T) {
	e := startBackupCluster(t)
	if err := e.svc.ChangePredicate(predlib.AllWNodesKey, "MIN($ALLWNODES-$MYWNODE-$8)"); err != nil {
		t.Fatalf("change predicate: %v", err)
	}
	if err := e.svc.ChangePredicate("unknown-key", "MIN($1)"); err == nil {
		t.Fatal("changing unknown predicate succeeded")
	}
}

// TestBackupShedsUnderBackpressure pins the bounded-memory contract: with a
// fail-fast send-log cap, an oversized backup surfaces ErrBackpressure and
// the aborted backup stays invisible to Restore (the manifest is written
// last), so shedding never leaves a corrupt file.
func TestBackupShedsUnderBackpressure(t *testing.T) {
	topo := config.EC2Topology(1)
	network := emunet.NewMemNetwork(nil)
	var nodes []*core.Node
	var stores []*wankv.Store
	for i := 1; i <= topo.N(); i++ {
		n, err := core.Open(core.Config{
			Topology: topo.WithSelf(i),
			Network:  network,
			Flow:     transport.FlowConfig{MaxBytes: 16 << 10, Mode: transport.FlowFail},
			// Keep the log pinned so the test is deterministic: nothing
			// ever truncates, the cap must trip.
			DisableAutoReclaim: true,
		})
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		nodes = append(nodes, n)
		stores = append(stores, wankv.New(n))
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		_ = network.Close()
	})
	svc := New(stores[0])

	// 64 KB of chunks against a 16 KB cap: some chunk put must shed.
	data := make([]byte, 64<<10)
	_, err := svc.Backup("too-big", data)
	if !errors.Is(err, transport.ErrBackpressure) {
		t.Fatalf("oversized backup: err=%v, want ErrBackpressure", err)
	}
	if _, err := svc.Restore(1, "too-big"); !errors.Is(err, ErrNotBackedUp) {
		t.Fatalf("aborted backup visible to restore: err=%v, want ErrNotBackedUp", err)
	}
}
