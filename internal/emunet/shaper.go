package emunet

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// shaperQueueBytes bounds the number of in-flight bytes a shaped direction
// may hold before Write blocks, emulating a finite socket buffer.
const shaperQueueBytes = 4 << 20

// maxChunk bounds the size of one shaped unit so very large writes do not
// pin large buffers and are serialized progressively.
const maxChunk = 64 << 10

// Shape wraps conn so that writes experience the fwd link profile and reads
// the rev profile. The wrapper owns conn: closing the shaped connection
// closes conn and releases the internal goroutines. Link jitter is ignored
// (no random source); use ShapeSeeded or a fabric's Seed for jittered links.
func Shape(conn net.Conn, fwd, rev Link) net.Conn {
	return ShapeSeeded(conn, fwd, rev, nil)
}

// ShapeSeeded is Shape with an explicit random source for link jitter. The
// shaper never touches package-level randomness: all jitter draws come from
// rng, so a fixed seed replays the same delay sequence. A nil rng disables
// jitter. Each direction gets its own sub-source so the two queues never
// contend on rng.
func ShapeSeeded(conn net.Conn, fwd, rev Link, rng *rand.Rand) net.Conn {
	if fwd.zero() && rev.zero() {
		// Both directions are unshaped: wrapping would only add chunk
		// copies, two relay goroutines and a timestamp per chunk. Hand
		// the raw connection back so unshaped fabrics keep kernel-level
		// behavior (TCP conns stay *net.TCPConn and remain eligible for
		// vectored writes upstream).
		return conn
	}
	var fr, rr *rand.Rand
	if rng != nil {
		fr = rand.New(rand.NewSource(rng.Int63()))
		rr = rand.New(rand.NewSource(rng.Int63()))
	}
	s := &shapedConn{
		conn: conn,
		out:  newTimedQueue(fwd, fr),
		in:   newTimedQueue(rev, rr),
		done: make(chan struct{}),
	}
	s.wg.Add(2)
	go s.writeLoop()
	go s.readLoop()
	return s
}

type shapedConn struct {
	conn net.Conn
	out  *timedQueue // bytes we wrote, awaiting shaped delivery to conn
	in   *timedQueue // bytes read from conn, awaiting shaped delivery to Read

	pending []byte // partially consumed chunk for Read

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ net.Conn = (*shapedConn)(nil)

// Write enqueues p for shaped delivery and returns once the bytes are
// buffered (possibly blocking on the bounded queue).
func (s *shapedConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		chunk := make([]byte, n)
		copy(chunk, p[:n])
		if err := s.out.push(chunk); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Read delivers shaped inbound bytes.
func (s *shapedConn) Read(p []byte) (int, error) {
	if len(s.pending) == 0 {
		chunk, err := s.in.pop()
		if err != nil {
			return 0, err
		}
		s.pending = chunk
	}
	n := copy(p, s.pending)
	s.pending = s.pending[n:]
	return n, nil
}

func (s *shapedConn) writeLoop() {
	defer s.wg.Done()
	for {
		chunk, err := s.out.pop()
		if err != nil {
			return
		}
		if _, err := s.conn.Write(chunk); err != nil {
			s.out.fail(err)
			return
		}
	}
}

func (s *shapedConn) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 32<<10)
	for {
		n, err := s.conn.Read(buf)
		if n > 0 {
			chunk := make([]byte, n)
			copy(chunk, buf[:n])
			if perr := s.in.push(chunk); perr != nil {
				return
			}
		}
		if err != nil {
			s.in.fail(err)
			return
		}
	}
}

// Close tears the connection down.
func (s *shapedConn) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		s.out.fail(net.ErrClosed)
		s.in.fail(net.ErrClosed)
		err = s.conn.Close()
		s.wg.Wait()
	})
	return err
}

// LocalAddr implements net.Conn.
func (s *shapedConn) LocalAddr() net.Addr { return s.conn.LocalAddr() }

// RemoteAddr implements net.Conn.
func (s *shapedConn) RemoteAddr() net.Addr { return s.conn.RemoteAddr() }

// SetDeadline is a no-op: shaped connections are used by the transport
// layer, which relies on Close for unblocking rather than deadlines.
func (s *shapedConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline is a no-op; see SetDeadline.
func (s *shapedConn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline is a no-op; see SetDeadline.
func (s *shapedConn) SetWriteDeadline(time.Time) error { return nil }

// timedQueue is a bounded FIFO of byte chunks, each released no earlier than
// its link-computed delivery time. It implements the latency + token-bucket
// bandwidth model: chunk i's serialization starts when chunk i-1's ends, and
// delivery happens one propagation delay after serialization completes.
type timedQueue struct {
	link Link
	rng  *rand.Rand // jitter source; guarded by mu, nil = no jitter

	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	items    []timedChunk
	bytes    int
	nextFree time.Time // virtual clock: when the link is free to serialize
	err      error
}

type timedChunk struct {
	data      []byte
	deliverAt time.Time
}

func newTimedQueue(link Link, rng *rand.Rand) *timedQueue {
	q := &timedQueue{link: link, rng: rng}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// jitter draws this chunk's extra propagation delay. Caller holds q.mu.
func (q *timedQueue) jitter() time.Duration {
	if q.link.Jitter <= 0 || q.rng == nil {
		return 0
	}
	return time.Duration(q.rng.Int63n(int64(q.link.Jitter)))
}

// push enqueues a chunk, blocking while the queue is full.
func (q *timedQueue) push(data []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.err == nil && q.bytes+len(data) > shaperQueueBytes && q.bytes > 0 {
		q.notFull.Wait()
	}
	if q.err != nil {
		return q.err
	}
	now := time.Now()
	start := q.nextFree
	if start.Before(now) {
		start = now
	}
	done := start.Add(q.link.Transmission(len(data)))
	q.nextFree = done
	q.items = append(q.items, timedChunk{
		data:      data,
		deliverAt: done.Add(q.link.OneWayLatency + q.jitter()),
	})
	q.bytes += len(data)
	q.notEmpty.Signal()
	return nil
}

// pop dequeues the next chunk, sleeping until its delivery time.
func (q *timedQueue) pop() ([]byte, error) {
	q.mu.Lock()
	for len(q.items) == 0 && q.err == nil {
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		err := q.err
		q.mu.Unlock()
		return nil, err
	}
	item := q.items[0]
	q.items = q.items[1:]
	q.bytes -= len(item.data)
	q.notFull.Broadcast()
	q.mu.Unlock()

	if d := time.Until(item.deliverAt); d > 0 {
		time.Sleep(d)
	}
	return item.data, nil
}

// fail poisons the queue; blocked and future operations return err. Chunks
// already queued remain poppable so in-flight data drains (like a FIN after
// buffered data).
func (q *timedQueue) fail(err error) {
	if err == nil {
		err = io.EOF
	}
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// errTimedQueueClosed reports whether err marks a poisoned queue rather
// than transport data corruption.
func errTimedQueueClosed(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF)
}
