package emunet

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// shaperQueueBytes bounds the number of in-flight bytes a shaped direction
// may hold before Write blocks, emulating a finite socket buffer.
const shaperQueueBytes = 4 << 20

// maxChunk bounds the size of one shaped unit so very large writes do not
// pin large buffers and are serialized progressively.
const maxChunk = 64 << 10

// Shape wraps conn so that writes experience the fwd link profile and reads
// the rev profile. The wrapper owns conn: closing the shaped connection
// closes conn and releases the internal goroutines.
func Shape(conn net.Conn, fwd, rev Link) net.Conn {
	s := &shapedConn{
		conn: conn,
		out:  newTimedQueue(fwd),
		in:   newTimedQueue(rev),
		done: make(chan struct{}),
	}
	s.wg.Add(2)
	go s.writeLoop()
	go s.readLoop()
	return s
}

type shapedConn struct {
	conn net.Conn
	out  *timedQueue // bytes we wrote, awaiting shaped delivery to conn
	in   *timedQueue // bytes read from conn, awaiting shaped delivery to Read

	pending []byte // partially consumed chunk for Read

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ net.Conn = (*shapedConn)(nil)

// Write enqueues p for shaped delivery and returns once the bytes are
// buffered (possibly blocking on the bounded queue).
func (s *shapedConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		chunk := make([]byte, n)
		copy(chunk, p[:n])
		if err := s.out.push(chunk); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Read delivers shaped inbound bytes.
func (s *shapedConn) Read(p []byte) (int, error) {
	if len(s.pending) == 0 {
		chunk, err := s.in.pop()
		if err != nil {
			return 0, err
		}
		s.pending = chunk
	}
	n := copy(p, s.pending)
	s.pending = s.pending[n:]
	return n, nil
}

func (s *shapedConn) writeLoop() {
	defer s.wg.Done()
	for {
		chunk, err := s.out.pop()
		if err != nil {
			return
		}
		if _, err := s.conn.Write(chunk); err != nil {
			s.out.fail(err)
			return
		}
	}
}

func (s *shapedConn) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 32<<10)
	for {
		n, err := s.conn.Read(buf)
		if n > 0 {
			chunk := make([]byte, n)
			copy(chunk, buf[:n])
			if perr := s.in.push(chunk); perr != nil {
				return
			}
		}
		if err != nil {
			s.in.fail(err)
			return
		}
	}
}

// Close tears the connection down.
func (s *shapedConn) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		s.out.fail(net.ErrClosed)
		s.in.fail(net.ErrClosed)
		err = s.conn.Close()
		s.wg.Wait()
	})
	return err
}

// LocalAddr implements net.Conn.
func (s *shapedConn) LocalAddr() net.Addr { return s.conn.LocalAddr() }

// RemoteAddr implements net.Conn.
func (s *shapedConn) RemoteAddr() net.Addr { return s.conn.RemoteAddr() }

// SetDeadline is a no-op: shaped connections are used by the transport
// layer, which relies on Close for unblocking rather than deadlines.
func (s *shapedConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline is a no-op; see SetDeadline.
func (s *shapedConn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline is a no-op; see SetDeadline.
func (s *shapedConn) SetWriteDeadline(time.Time) error { return nil }

// timedQueue is a bounded FIFO of byte chunks, each released no earlier than
// its link-computed delivery time. It implements the latency + token-bucket
// bandwidth model: chunk i's serialization starts when chunk i-1's ends, and
// delivery happens one propagation delay after serialization completes.
type timedQueue struct {
	link Link

	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	items    []timedChunk
	bytes    int
	nextFree time.Time // virtual clock: when the link is free to serialize
	err      error
}

type timedChunk struct {
	data      []byte
	deliverAt time.Time
}

func newTimedQueue(link Link) *timedQueue {
	q := &timedQueue{link: link}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// push enqueues a chunk, blocking while the queue is full.
func (q *timedQueue) push(data []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.err == nil && q.bytes+len(data) > shaperQueueBytes && q.bytes > 0 {
		q.notFull.Wait()
	}
	if q.err != nil {
		return q.err
	}
	now := time.Now()
	start := q.nextFree
	if start.Before(now) {
		start = now
	}
	done := start.Add(q.link.Transmission(len(data)))
	q.nextFree = done
	q.items = append(q.items, timedChunk{
		data:      data,
		deliverAt: done.Add(q.link.OneWayLatency),
	})
	q.bytes += len(data)
	q.notEmpty.Signal()
	return nil
}

// pop dequeues the next chunk, sleeping until its delivery time.
func (q *timedQueue) pop() ([]byte, error) {
	q.mu.Lock()
	for len(q.items) == 0 && q.err == nil {
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		err := q.err
		q.mu.Unlock()
		return nil, err
	}
	item := q.items[0]
	q.items = q.items[1:]
	q.bytes -= len(item.data)
	q.notFull.Broadcast()
	q.mu.Unlock()

	if d := time.Until(item.deliverAt); d > 0 {
		time.Sleep(d)
	}
	return item.data, nil
}

// fail poisons the queue; blocked and future operations return err. Chunks
// already queued remain poppable so in-flight data drains (like a FIN after
// buffered data).
func (q *timedQueue) fail(err error) {
	if err == nil {
		err = io.EOF
	}
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// errTimedQueueClosed reports whether err marks a poisoned queue rather
// than transport data corruption.
func errTimedQueueClosed(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF)
}
