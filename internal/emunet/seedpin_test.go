package emunet

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// fabricTestSeed pins every seeded-fabric test in this package; failure
// messages carry it so a flake reproduces with the exact same randomness.
const fabricTestSeed int64 = 1

// TestJitterSequenceIsSeedPinned checks the shaper's randomness contract
// at the queue level, where it is timing-free: the same seed must yield
// the identical jitter sequence, a different seed a different one, and
// every draw must stay inside [0, Jitter).
func TestJitterSequenceIsSeedPinned(t *testing.T) {
	link := Link{OneWayLatency: time.Millisecond, Jitter: 5 * time.Millisecond}
	draw := func(seed int64, n int) []time.Duration {
		q := newTimedQueue(link, rand.New(rand.NewSource(seed)))
		out := make([]time.Duration, n)
		q.mu.Lock()
		defer q.mu.Unlock()
		for i := range out {
			out[i] = q.jitter()
		}
		return out
	}
	const n = 256
	a, b := draw(fabricTestSeed, n), draw(fabricTestSeed, n)
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d: jitter draw %d differs across replays: %v vs %v", fabricTestSeed, i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= link.Jitter {
			t.Fatalf("seed %d: jitter draw %d = %v outside [0, %v)", fabricTestSeed, i, a[i], link.Jitter)
		}
	}
	for i, v := range draw(fabricTestSeed+1, n) {
		if v != a[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatalf("seeds %d and %d produced identical %d-draw jitter sequences", fabricTestSeed, fabricTestSeed+1, n)
	}
}

// TestJitterZeroWithoutSource: bare Shape has no random source, so a
// jittered link profile must degrade to pure latency, not panic or hang.
func TestJitterZeroWithoutSource(t *testing.T) {
	link := Link{Jitter: 5 * time.Millisecond}
	q := newTimedQueue(link, nil)
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := 0; i < 16; i++ {
		if j := q.jitter(); j != 0 {
			t.Fatalf("sourceless queue drew jitter %v, want 0", j)
		}
	}
}

// TestJitteredLinkPreservesFIFOAndBounds runs real traffic over a seeded
// jittered link: order must hold and the observed one-way time must stay
// within the profile (plus scheduling slack).
func TestJitteredLinkPreservesFIFOAndBounds(t *testing.T) {
	const (
		latency = 10 * time.Millisecond
		jitter  = 10 * time.Millisecond
	)
	matrix := NewMatrix()
	matrix.SetSymmetric(1, 2, Link{OneWayLatency: latency, Jitter: jitter})
	n := NewMemNetwork(matrix)
	defer n.Close()
	n.Seed(fabricTestSeed)

	l, err := n.Listen(2)
	if err != nil {
		t.Fatal(err)
	}
	type arrival struct {
		b  byte
		at time.Duration
	}
	const count = 32
	got := make(chan arrival, count)
	var start time.Time
	var startMu sync.Mutex
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1)
		for i := 0; i < count; i++ {
			if _, err := io.ReadFull(conn, buf); err != nil {
				return
			}
			startMu.Lock()
			at := time.Since(start)
			startMu.Unlock()
			got <- arrival{buf[0], at}
		}
	}()

	conn, err := n.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	startMu.Lock()
	start = time.Now()
	startMu.Unlock()
	for i := 0; i < count; i++ {
		if _, err := conn.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		// Space the writes out so each is its own shaped chunk with an
		// independent jitter draw.
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < count; i++ {
		select {
		case a := <-got:
			if a.b != byte(i) {
				t.Fatalf("seed %d: FIFO violated under jitter: got byte %d at position %d", fabricTestSeed, a.b, i)
			}
			// Writes are ~1ms apart; byte i left no earlier than i·1ms.
			minAt := time.Duration(i)*time.Millisecond + latency
			maxAt := time.Duration(i+8)*time.Millisecond + latency + jitter + 100*time.Millisecond
			if a.at < minAt {
				t.Fatalf("seed %d: byte %d arrived at %v, before minimum latency %v", fabricTestSeed, i, a.at, minAt)
			}
			if a.at > maxAt {
				t.Fatalf("seed %d: byte %d arrived at %v, far beyond latency+jitter bound %v", fabricTestSeed, i, a.at, maxAt)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("seed %d: byte %d never arrived", fabricTestSeed, i)
		}
	}
}

// TestConnHook covers the dial-path hook on both fabrics: a wrapping hook
// sees the right endpoints and its wrapper carries the traffic; a
// rejecting hook fails the dial with the hook's error.
func TestConnHook(t *testing.T) {
	errVetoed := errors.New("vetoed")
	testFabrics(t, nil, func(t *testing.T, n Network) {
		type hooked interface {
			SetConnHook(ConnHook)
		}
		var (
			mu    sync.Mutex
			calls [][2]int
		)
		n.(hooked).SetConnHook(func(from, to int, conn net.Conn) (net.Conn, error) {
			mu.Lock()
			calls = append(calls, [2]int{from, to})
			mu.Unlock()
			if to == 3 {
				return nil, errVetoed
			}
			return conn, nil
		})

		l, err := n.Listen(2)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			_, _ = io.Copy(conn, conn)
		}()
		// Node 3 listens too: the veto must come from the hook, not from a
		// missing listener.
		l3, err := n.Listen(3)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				conn, err := l3.Accept()
				if err != nil {
					return
				}
				_ = conn.Close()
			}
		}()
		conn, err := n.Dial(1, 2)
		if err != nil {
			t.Fatalf("hooked dial: %v", err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "ping" {
			t.Fatalf("echo through hooked conn: %q, %v", buf, err)
		}

		if _, err := n.Dial(1, 3); !errors.Is(err, errVetoed) {
			t.Fatalf("vetoed dial err = %v, want %v", err, errVetoed)
		}

		mu.Lock()
		defer mu.Unlock()
		want := [][2]int{{1, 2}, {1, 3}}
		if len(calls) != len(want) || calls[0] != want[0] || calls[1] != want[1] {
			t.Fatalf("hook calls = %v, want %v", calls, want)
		}
	})
}
