package emunet

import "time"

// Canonical link matrices reproducing the paper's Table I and Table II.
// Latencies in the tables are ping round-trip times; the matrices store
// one-way delays (RTT/2). Table I bandwidths are the paper's halved values
// (they throttled to half the observed EC2 throughput to keep their gigabit
// NICs from becoming the bottleneck); we emulate the same halved numbers.

// EC2Matrix returns the emulated Amazon EC2 WAN of Table I for the Fig. 2
// topology (nodes 1,2 = North California; 3..6 = North Virginia; 7 =
// Oregon; 8 = Ohio). Links the table does not cover (between two remote
// regions, which carry only ACK gossip) are derived by triangle composition
// through North California: latency adds, bandwidth takes the minimum.
func EC2Matrix() *Matrix {
	const (
		ncalLat = 3.7 // ms RTT, between N. California availability zones
		ohioLat = 53.87
		oregLat = 23.29
		nvirLat = 64.12

		ncalBW = 333.5 // Mbit/s (half of observed, as in the paper)
		ohioBW = 44.5
		oregBW = 56.5
		nvirBW = 37
	)
	regionOf := map[int]string{
		1: "ncal", 2: "ncal",
		3: "nvir", 4: "nvir", 5: "nvir", 6: "nvir",
		7: "oreg", 8: "ohio",
	}
	// Latency/bandwidth from North California to each region.
	lat := map[string]float64{"ncal": ncalLat, "nvir": nvirLat, "oreg": oregLat, "ohio": ohioLat}
	bw := map[string]float64{"ncal": ncalBW, "nvir": nvirBW, "oreg": oregBW, "ohio": ohioBW}

	m := NewMatrix()
	m.Default = Link{OneWayLatency: 40 * time.Millisecond, BandwidthBps: Mbps(50)}
	for a := 1; a <= 8; a++ {
		for b := a + 1; b <= 8; b++ {
			ra, rb := regionOf[a], regionOf[b]
			var l Link
			switch {
			case ra == rb:
				// Intra-region availability-zone link.
				l = Link{OneWayLatency: halfMS(ncalLat), BandwidthBps: Mbps(ncalBW)}
			case ra == "ncal":
				l = Link{OneWayLatency: halfMS(lat[rb]), BandwidthBps: Mbps(bw[rb])}
			case rb == "ncal":
				l = Link{OneWayLatency: halfMS(lat[ra]), BandwidthBps: Mbps(bw[ra])}
			default:
				// Remote↔remote: triangle through North California.
				l = Link{
					OneWayLatency: halfMS(lat[ra] + lat[rb]),
					BandwidthBps:  Mbps(minF(bw[ra], bw[rb])),
				}
			}
			m.SetSymmetric(a, b, l)
		}
	}
	return m
}

// CloudLabMatrix returns the real-WAN profile of Table II for the CloudLab
// topology (1 = Utah1, 2 = Utah2, 3 = Wisconsin, 4 = Clemson, 5 =
// Massachusetts). The table lists measurements from Utah1; remote↔remote
// links are triangle-composed through Utah.
func CloudLabMatrix() *Matrix {
	type site struct {
		lat float64 // ms RTT from Utah1
		bw  float64 // Mbit/s from Utah1
	}
	sites := map[int]site{
		2: {lat: 0.124, bw: 9246.99},
		3: {lat: 35.612, bw: 361.82},
		4: {lat: 50.918, bw: 416.27},
		5: {lat: 48.083, bw: 437.11},
	}
	m := NewMatrix()
	m.Default = Link{OneWayLatency: 25 * time.Millisecond, BandwidthBps: Mbps(400)}
	for idx, s := range sites {
		m.SetSymmetric(1, idx, Link{OneWayLatency: halfMS(s.lat), BandwidthBps: Mbps(s.bw)})
		// Utah2 shares Utah1's vantage point for remote sites.
		if idx != 2 {
			m.SetSymmetric(2, idx, Link{OneWayLatency: halfMS(s.lat + sites[2].lat), BandwidthBps: Mbps(minF(s.bw, sites[2].bw))})
		}
	}
	for a := 3; a <= 5; a++ {
		for b := a + 1; b <= 5; b++ {
			m.SetSymmetric(a, b, Link{
				OneWayLatency: halfMS(sites[a].lat + sites[b].lat),
				BandwidthBps:  Mbps(minF(sites[a].bw, sites[b].bw)),
			})
		}
	}
	return m
}

func halfMS(rttMS float64) time.Duration {
	return time.Duration(rttMS / 2 * float64(time.Millisecond))
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
