package emunet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func testFabrics(t *testing.T, matrix *Matrix, fn func(t *testing.T, n Network)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		n := NewMemNetwork(matrix)
		defer n.Close()
		n.Seed(fabricTestSeed)
		fn(t, n)
	})
	t.Run("tcp", func(t *testing.T) {
		n := NewTCPNetwork(matrix)
		defer n.Close()
		n.Seed(fabricTestSeed)
		fn(t, n)
	})
}

func TestDialAndEcho(t *testing.T) {
	testFabrics(t, nil, func(t *testing.T, n Network) {
		l, err := n.Listen(2)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			conn, err := l.Accept()
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 5)
			if _, err := io.ReadFull(conn, buf); err != nil {
				done <- err
				return
			}
			_, err = conn.Write(bytes.ToUpper(buf))
			done <- err
		}()

		conn, err := n.Dial(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("hello")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "HELLO" {
			t.Fatalf("echo = %q", buf)
		}
		if err := <-done; err != nil {
			t.Fatalf("server: %v", err)
		}
	})
}

func TestDialNoListener(t *testing.T) {
	testFabrics(t, nil, func(t *testing.T, n Network) {
		if _, err := n.Dial(1, 3); !errors.Is(err, ErrNoListener) {
			t.Fatalf("err = %v, want ErrNoListener", err)
		}
	})
}

func TestDuplicateListen(t *testing.T) {
	testFabrics(t, nil, func(t *testing.T, n Network) {
		if _, err := n.Listen(1); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Listen(1); !errors.Is(err, ErrDupListen) {
			t.Fatalf("err = %v, want ErrDupListen", err)
		}
	})
}

func TestClosedNetworkRejectsEverything(t *testing.T) {
	n := NewMemNetwork(nil)
	_ = n.Close()
	if _, err := n.Listen(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Listen err = %v", err)
	}
	if _, err := n.Dial(1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Dial err = %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	matrix := NewMatrix()
	matrix.SetSymmetric(1, 2, Link{OneWayLatency: 30 * time.Millisecond})
	testFabrics(t, matrix, func(t *testing.T, n Network) {
		l, err := n.Listen(2)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			buf := make([]byte, 1)
			if _, err := io.ReadFull(conn, buf); err != nil {
				return
			}
			_, _ = conn.Write(buf)
		}()
		conn, err := n.Dial(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		start := time.Now()
		if _, err := conn.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatal(err)
		}
		rtt := time.Since(start)
		if rtt < 60*time.Millisecond {
			t.Fatalf("seed %d: RTT %v below the injected 60ms", fabricTestSeed, rtt)
		}
		if rtt > 120*time.Millisecond {
			t.Fatalf("seed %d: RTT %v wildly above the injected 60ms", fabricTestSeed, rtt)
		}
	})
}

func TestBandwidthThrottling(t *testing.T) {
	matrix := NewMatrix()
	// 8 Mbit/s: 1 MB should take ≈ 1 second one way.
	matrix.SetSymmetric(1, 2, Link{BandwidthBps: Mbps(8)})
	n := NewMemNetwork(matrix)
	defer n.Close()
	n.Seed(fabricTestSeed)

	l, err := n.Listen(2)
	if err != nil {
		t.Fatal(err)
	}
	const total = 1 << 20
	received := make(chan time.Duration, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		start := time.Now()
		if _, err := io.CopyN(io.Discard, conn, total); err != nil {
			return
		}
		received <- time.Since(start)
	}()

	conn, err := n.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 64<<10)
	for sent := 0; sent < total; sent += len(payload) {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case d := <-received:
		if d < 700*time.Millisecond || d > 1600*time.Millisecond {
			t.Fatalf("seed %d: 1MB at 8Mbit/s took %v, want ≈1s", fabricTestSeed, d)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("seed %d: transfer never completed", fabricTestSeed)
	}
}

func TestFIFOUnderConcurrencyAndShaping(t *testing.T) {
	matrix := NewMatrix()
	matrix.SetSymmetric(1, 2, Link{OneWayLatency: 2 * time.Millisecond, BandwidthBps: Mbps(200), Jitter: time.Millisecond})
	n := NewMemNetwork(matrix)
	defer n.Close()
	n.Seed(fabricTestSeed)
	l, err := n.Listen(2)
	if err != nil {
		t.Fatal(err)
	}
	const count = 2000
	errc := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 4)
		for i := 0; i < count; i++ {
			if _, err := io.ReadFull(conn, buf); err != nil {
				errc <- fmt.Errorf("read %d: %w", i, err)
				return
			}
			got := int(buf[0])<<24 | int(buf[1])<<16 | int(buf[2])<<8 | int(buf[3])
			if got != i {
				errc <- fmt.Errorf("seed %d: out of order: got %d want %d", fabricTestSeed, got, i)
				return
			}
		}
		errc <- nil
	}()
	conn, err := n.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < count; i++ {
		b := []byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestCloseUnblocksReaders(t *testing.T) {
	n := NewMemNetwork(nil)
	defer n.Close()
	l, err := n.Listen(2)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	serverSide := <-accepted

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err == nil {
			t.Error("read returned data after close")
		}
	}()
	time.Sleep(20 * time.Millisecond)
	_ = serverSide.Close()
	_ = conn.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by close")
	}
}

func TestMatrixScaled(t *testing.T) {
	m := NewMatrix()
	m.Default = Link{OneWayLatency: 100 * time.Millisecond, BandwidthBps: Mbps(10)}
	m.Set(1, 2, Link{OneWayLatency: 50 * time.Millisecond, BandwidthBps: Mbps(100)})
	s := m.Scaled(10)
	if got := s.Get(1, 2).OneWayLatency; got != 5*time.Millisecond {
		t.Fatalf("scaled latency = %v", got)
	}
	if got := s.Get(1, 2).BandwidthBps; got != Mbps(1000) {
		t.Fatalf("scaled bandwidth = %v", got)
	}
	if got := s.Get(3, 4).OneWayLatency; got != 10*time.Millisecond {
		t.Fatalf("scaled default latency = %v", got)
	}
	// Scale ≤ 0 is identity.
	if got := m.Scaled(0).Get(1, 2); got != m.Get(1, 2) {
		t.Fatalf("Scaled(0) altered links: %+v", got)
	}
}

func TestTransmissionMath(t *testing.T) {
	l := Link{BandwidthBps: Mbps(8)} // 1 byte per microsecond
	if got := l.Transmission(1000); got != time.Millisecond {
		t.Fatalf("Transmission(1000) = %v, want 1ms", got)
	}
	if got := (Link{}).Transmission(1 << 30); got != 0 {
		t.Fatalf("unlimited link transmission = %v", got)
	}
	if got := l.Transmission(0); got != 0 {
		t.Fatalf("zero bytes transmission = %v", got)
	}
}

func TestCanonicalMatricesCoverAllPairs(t *testing.T) {
	for name, tc := range map[string]struct {
		m *Matrix
		n int
	}{
		"ec2":      {EC2Matrix(), 8},
		"cloudlab": {CloudLabMatrix(), 5},
	} {
		for a := 1; a <= tc.n; a++ {
			for b := 1; b <= tc.n; b++ {
				if a == b {
					continue
				}
				l := tc.m.Get(a, b)
				if l.OneWayLatency <= 0 || l.BandwidthBps <= 0 {
					t.Errorf("%s: link %d->%d unshaped: %+v", name, a, b, l)
				}
				rev := tc.m.Get(b, a)
				if rev != l {
					t.Errorf("%s: link %d<->%d asymmetric", name, a, b)
				}
			}
		}
	}
	// Spot-check Table I values.
	ec2 := EC2Matrix()
	if got := ec2.Get(1, 8); got.OneWayLatency != halfMS(53.87) || got.BandwidthBps != Mbps(44.5) {
		t.Fatalf("NCal->Ohio = %+v", got)
	}
	// Spot-check Table II values.
	cl := CloudLabMatrix()
	if got := cl.Get(1, 3); got.OneWayLatency != halfMS(35.612) || got.BandwidthBps != Mbps(361.82) {
		t.Fatalf("Utah1->Wisconsin = %+v", got)
	}
}
