// Package emunet emulates a wide-area network on a single machine. It is
// this reproduction's substitute for the paper's TC-based latency/bandwidth
// injection (§VI): every directed link between two WAN nodes is shaped by a
// one-way latency and a token-bucket bandwidth limit taken from a Matrix.
//
// Two fabrics are provided behind the same Network interface:
//
//   - MemNetwork: in-process, built on net.Pipe. Deterministic to set up,
//     no sockets, used by tests and most experiments.
//   - TCPNetwork: real TCP over loopback, used to exercise the full socket
//     path.
//
// All shaping happens at the dialing endpoint: its writes are delayed and
// throttled by the forward link profile, and its reads by the reverse
// profile, so the accepting side can use the connection unmodified.
package emunet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Link is one directed link's emulation profile.
type Link struct {
	// OneWayLatency is the propagation delay applied to every byte.
	OneWayLatency time.Duration
	// BandwidthBps is the link capacity in bits per second. Zero means
	// unlimited.
	BandwidthBps float64
	// Jitter is the maximum extra random delay added on top of
	// OneWayLatency, drawn uniformly per shaped chunk from [0, Jitter).
	// Jitter requires a seeded random source: links shaped through a
	// fabric always have one (see Seed), while bare Shape calls apply no
	// jitter. FIFO order is preserved — jitter perturbs delivery times,
	// never ordering.
	Jitter time.Duration
}

// zero reports whether the link applies no shaping at all; a connection
// whose both directions are zero links is passed through unwrapped.
func (l Link) zero() bool {
	return l.OneWayLatency <= 0 && l.BandwidthBps <= 0 && l.Jitter <= 0
}

// Transmission returns the serialization delay of n bytes at the link's
// bandwidth.
func (l Link) Transmission(n int) time.Duration {
	if l.BandwidthBps <= 0 || n <= 0 {
		return 0
	}
	bits := float64(n) * 8
	return time.Duration(bits / l.BandwidthBps * float64(time.Second))
}

// Matrix holds the link profiles of a deployment, keyed by directed node
// pair (1-based indexes).
type Matrix struct {
	links map[[2]int]Link
	// Default applies to pairs without an explicit entry.
	Default Link
}

// NewMatrix returns an empty matrix with an unshaped default link.
func NewMatrix() *Matrix {
	return &Matrix{links: make(map[[2]int]Link)}
}

// Set installs the profile for the directed link from → to.
func (m *Matrix) Set(from, to int, l Link) {
	m.links[[2]int{from, to}] = l
}

// SetSymmetric installs the profile in both directions.
func (m *Matrix) SetSymmetric(a, b int, l Link) {
	m.Set(a, b, l)
	m.Set(b, a, l)
}

// Get returns the profile for the directed link from → to.
func (m *Matrix) Get(from, to int) Link {
	if l, ok := m.links[[2]int{from, to}]; ok {
		return l
	}
	return m.Default
}

// Scaled returns a copy of the matrix with every latency divided by factor.
// Bandwidths are left unchanged: scaling time compresses propagation delay
// while keeping serialization ratios intact, so experiment *shapes* are
// preserved while wall-clock time shrinks. Use factor 1 for faithful runs.
func (m *Matrix) Scaled(factor float64) *Matrix {
	if factor <= 0 {
		factor = 1
	}
	out := NewMatrix()
	out.Default = Link{
		OneWayLatency: time.Duration(float64(m.Default.OneWayLatency) / factor),
		BandwidthBps:  m.Default.BandwidthBps * factor,
		Jitter:        time.Duration(float64(m.Default.Jitter) / factor),
	}
	for k, l := range m.links {
		out.links[k] = Link{
			OneWayLatency: time.Duration(float64(l.OneWayLatency) / factor),
			BandwidthBps:  l.BandwidthBps * factor,
			Jitter:        time.Duration(float64(l.Jitter) / factor),
		}
	}
	return out
}

// Network is the fabric abstraction the transport layer dials through.
type Network interface {
	// Listen opens the accepting endpoint for the given node.
	Listen(node int) (net.Listener, error)
	// Dial connects node from to node to, returning a connection shaped
	// by the matrix profiles of both directions.
	Dial(from, to int) (net.Conn, error)
	// Close tears down the fabric and all listeners.
	Close() error
}

// Mbps converts megabits per second to bits per second.
func Mbps(v float64) float64 { return v * 1e6 }

// ConnHook intercepts the dial path of a fabric: it runs after shaping and
// may wrap the connection (fault injection, tracing) or reject the dial by
// returning an error, in which case the dial fails as if the target were
// unreachable. The hook runs on the dialer's goroutine.
type ConnHook func(from, to int, conn net.Conn) (net.Conn, error)

// fabricRand derives per-connection random sources from one master seed so
// shaped-link jitter is pinned by the fabric's seed rather than global
// process randomness. Dial-order dependence is accepted: the seed pins the
// family of sequences, which is what replayable tests need.
type fabricRand struct {
	mu     sync.Mutex
	master *rand.Rand
}

func newFabricRand(seed int64) *fabricRand {
	return &fabricRand{master: rand.New(rand.NewSource(seed))}
}

// child returns a fresh deterministic sub-source.
func (f *fabricRand) child() *rand.Rand {
	f.mu.Lock()
	defer f.mu.Unlock()
	return rand.New(rand.NewSource(f.master.Int63()))
}

// defaultFabricSeed seeds fabrics whose caller never called Seed, so jitter
// is deterministic by default.
const defaultFabricSeed = 1

// MemNetwork is an in-process fabric built on synchronous pipes.
type MemNetwork struct {
	matrix *Matrix

	mu        sync.Mutex
	listeners map[int]*memListener
	closed    bool
	hook      ConnHook
	rnd       *fabricRand
}

var _ Network = (*MemNetwork)(nil)

// NewMemNetwork creates an in-memory fabric shaped by matrix. A nil matrix
// yields unshaped links.
func NewMemNetwork(matrix *Matrix) *MemNetwork {
	if matrix == nil {
		matrix = NewMatrix()
	}
	return &MemNetwork{
		matrix:    matrix,
		listeners: make(map[int]*memListener),
		rnd:       newFabricRand(defaultFabricSeed),
	}
}

// Seed pins the fabric's random source (shaped-link jitter) to seed, making
// runs replayable. Call before dialing; the default seed is 1.
func (n *MemNetwork) Seed(seed int64) {
	n.mu.Lock()
	n.rnd = newFabricRand(seed)
	n.mu.Unlock()
}

// SetConnHook installs a dial-path hook (see ConnHook). Pass nil to remove.
// Call before dialing begins; concurrent dials observe the latest hook.
func (n *MemNetwork) SetConnHook(h ConnHook) {
	n.mu.Lock()
	n.hook = h
	n.mu.Unlock()
}

// Errors returned by the fabrics.
var (
	ErrClosed     = errors.New("emunet: network closed")
	ErrNoListener = errors.New("emunet: no listener for node")
	ErrDupListen  = errors.New("emunet: node already listening")
)

// Listen implements Network.
func (n *MemNetwork) Listen(node int) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.listeners[node]; dup {
		return nil, fmt.Errorf("%w: %d", ErrDupListen, node)
	}
	l := &memListener{
		node:   node,
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
		onClose: func() {
			n.mu.Lock()
			delete(n.listeners, node)
			n.mu.Unlock()
		},
	}
	n.listeners[node] = l
	return l, nil
}

// Dial implements Network.
func (n *MemNetwork) Dial(from, to int) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	l := n.listeners[to]
	hook, rnd := n.hook, n.rnd
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoListener, to)
	}
	dialSide, acceptSide := net.Pipe()
	shaped := ShapeSeeded(dialSide, n.matrix.Get(from, to), n.matrix.Get(to, from), rnd.child())
	if hook != nil {
		wrapped, err := hook(from, to, shaped)
		if err != nil {
			_ = shaped.Close()
			_ = acceptSide.Close()
			return nil, err
		}
		shaped = wrapped
	}
	select {
	case l.accept <- acceptSide:
		return shaped, nil
	case <-l.done:
		_ = shaped.Close()
		_ = acceptSide.Close()
		return nil, fmt.Errorf("%w: %d", ErrNoListener, to)
	}
}

// Close implements Network.
func (n *MemNetwork) Close() error {
	n.mu.Lock()
	n.closed = true
	ls := make([]*memListener, 0, len(n.listeners))
	for _, l := range n.listeners {
		ls = append(ls, l)
	}
	n.listeners = make(map[int]*memListener)
	n.mu.Unlock()
	for _, l := range ls {
		l.closeOnce()
	}
	return nil
}

type memListener struct {
	node    int
	accept  chan net.Conn
	done    chan struct{}
	once    sync.Once
	onClose func()
}

var _ net.Listener = (*memListener)(nil)

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce()
	return nil
}

func (l *memListener) closeOnce() {
	l.once.Do(func() {
		close(l.done)
		if l.onClose != nil {
			l.onClose()
		}
	})
}

func (l *memListener) Addr() net.Addr { return memAddr{node: l.node} }

type memAddr struct{ node int }

func (a memAddr) Network() string { return "emunet" }
func (a memAddr) String() string  { return fmt.Sprintf("emunet:%d", a.node) }

// TCPNetwork is a loopback-TCP fabric. Each node gets an ephemeral listener
// on 127.0.0.1; dialed connections are shaped exactly like MemNetwork's.
type TCPNetwork struct {
	matrix *Matrix

	mu        sync.Mutex
	addrs     map[int]string
	listeners []net.Listener
	closed    bool
	hook      ConnHook
	rnd       *fabricRand
}

var _ Network = (*TCPNetwork)(nil)

// NewTCPNetwork creates a loopback TCP fabric shaped by matrix.
func NewTCPNetwork(matrix *Matrix) *TCPNetwork {
	if matrix == nil {
		matrix = NewMatrix()
	}
	return &TCPNetwork{matrix: matrix, addrs: make(map[int]string), rnd: newFabricRand(defaultFabricSeed)}
}

// Seed pins the fabric's random source (shaped-link jitter) to seed, making
// runs replayable. Call before dialing; the default seed is 1.
func (n *TCPNetwork) Seed(seed int64) {
	n.mu.Lock()
	n.rnd = newFabricRand(seed)
	n.mu.Unlock()
}

// SetConnHook installs a dial-path hook (see ConnHook). Pass nil to remove.
// Call before dialing begins; concurrent dials observe the latest hook.
func (n *TCPNetwork) SetConnHook(h ConnHook) {
	n.mu.Lock()
	n.hook = h
	n.mu.Unlock()
}

// Listen implements Network.
func (n *TCPNetwork) Listen(node int) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.addrs[node]; dup {
		return nil, fmt.Errorf("%w: %d", ErrDupListen, node)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("emunet: listen: %w", err)
	}
	n.addrs[node] = l.Addr().String()
	n.listeners = append(n.listeners, l)
	return l, nil
}

// Dial implements Network.
func (n *TCPNetwork) Dial(from, to int) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	addr := n.addrs[to]
	hook, rnd := n.hook, n.rnd
	n.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("%w: %d", ErrNoListener, to)
	}
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("emunet: dial node %d: %w", to, err)
	}
	shaped := ShapeSeeded(c, n.matrix.Get(from, to), n.matrix.Get(to, from), rnd.child())
	if hook != nil {
		wrapped, herr := hook(from, to, shaped)
		if herr != nil {
			_ = shaped.Close()
			return nil, herr
		}
		shaped = wrapped
	}
	return shaped, nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	n.closed = true
	ls := n.listeners
	n.listeners = nil
	n.addrs = make(map[int]string)
	n.mu.Unlock()
	var firstErr error
	for _, l := range ls {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
