package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
)

// TestStabilityLatencyHistogram drives a KTH_MIN predicate on a 3-node
// in-memory cluster and asserts the headline stability-latency histogram
// records one sane sample per stabilized message.
func TestStabilityLatencyHistogram(t *testing.T) {
	reg := metrics.NewRegistry()
	topo := flatTopology(3)
	c := &cluster{net: emunet.NewMemNetwork(nil)}
	for i := 1; i <= topo.N(); i++ {
		cfg := Config{
			Topology:       topo.WithSelf(i),
			Network:        c.net,
			HeartbeatEvery: 20 * time.Millisecond,
		}
		if i == 1 {
			cfg.Metrics = reg
		}
		n, err := Open(cfg)
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		c.nodes = append(c.nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			_ = n.Close()
		}
		_ = c.net.Close()
	})

	sender := c.nodes[0]
	if err := sender.RegisterPredicate("maj", "KTH_MIN(2, $ALLWNODES)"); err != nil {
		t.Fatalf("register predicate: %v", err)
	}

	const msgs = 5
	var lastSeq uint64
	for i := 0; i < msgs; i++ {
		seq, err := sender.Send([]byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		lastSeq = seq
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, lastSeq, "maj"); err != nil {
		t.Fatalf("waitfor: %v", err)
	}

	fam := reg.Find("stabilizer_stability_latency_seconds")
	if fam == nil {
		t.Fatal("stabilizer_stability_latency_seconds family not registered")
	}
	var found bool
	for _, m := range fam.Metrics {
		if m.Labels["predicate"] != "maj" {
			continue
		}
		found = true
		h := m.Histogram
		if h == nil {
			t.Fatal("maj metric is not a histogram")
		}
		if h.Count != msgs {
			t.Errorf("latency samples = %d, want %d", h.Count, msgs)
		}
		// Sane: strictly positive and below the 10s test deadline.
		if h.Sum <= 0 || h.Sum > 10*msgs {
			t.Errorf("latency sum = %v s, out of sane range", h.Sum)
		}
	}
	if !found {
		t.Fatal("no stability-latency histogram for predicate \"maj\"")
	}

	// The rewritten Stats must reflect the new counters and stay a view
	// over the same state the registry exposes.
	s := sender.Stats()
	if s.Sends != msgs {
		t.Errorf("Stats.Sends = %d, want %d", s.Sends, msgs)
	}
	if s.BytesSent == 0 || s.BytesRecv == 0 {
		t.Errorf("Stats bandwidth accounting asymmetric: sent=%d recv=%d", s.BytesSent, s.BytesRecv)
	}
	if s.Waiters != 0 {
		t.Errorf("Stats.Waiters = %d, want 0", s.Waiters)
	}
	// A receiver's stats must show symmetric accounting: data frames in,
	// recv cursor advanced for the sender. KTH_MIN(2, ...) released the
	// wait as soon as ONE receiver acked, so this particular receiver may
	// still be catching up — poll briefly before judging its counters.
	var r Stats
	deadline := time.Now().Add(5 * time.Second)
	for {
		r = c.nodes[1].Stats()
		if (r.RecvLast[1] == lastSeq && r.Deliveries == msgs) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.DataFramesRecv < msgs {
		t.Errorf("receiver DataFramesRecv = %d, want >= %d", r.DataFramesRecv, msgs)
	}
	if r.RecvLast[1] != lastSeq {
		t.Errorf("receiver RecvLast[1] = %d, want %d", r.RecvLast[1], lastSeq)
	}
	if r.Deliveries != msgs {
		t.Errorf("receiver Deliveries = %d, want %d", r.Deliveries, msgs)
	}

	// Prometheus exposition includes the histogram with its label.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("write prometheus: %v", err)
	}
	if !strings.Contains(sb.String(), `stabilizer_stability_latency_seconds_count{node="1",predicate="maj"} 5`) {
		t.Errorf("prometheus output missing labeled stability-latency count:\n%s", sb.String())
	}
}
