package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/faultinject"
	"stabilizer/internal/transport"
)

// startFlowCluster is startCluster with admission control engaged and an
// optional fault injector wired into the fabric's dial path.
func startFlowCluster(t *testing.T, n int, inj *faultinject.Injector, cfg func(c *Config)) *cluster {
	t.Helper()
	topo := flatTopology(n)
	c := &cluster{net: emunet.NewMemNetwork(nil)}
	if inj != nil {
		c.net.SetConnHook(inj.Hook())
	}
	for i := 1; i <= n; i++ {
		conf := Config{
			Topology:       topo.WithSelf(i),
			Network:        c.net,
			HeartbeatEvery: 10 * time.Millisecond,
		}
		if cfg != nil {
			cfg(&conf)
		}
		node, err := Open(conf)
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		c.nodes = append(c.nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range c.nodes {
			_ = node.Close()
		}
		if inj != nil {
			inj.Close()
		}
		_ = c.net.Close()
	})
	return c
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSendBlocksAtCapResumesAfterHeal is the end-to-end admission story: a
// blackholed peer stops acking, auto-reclaim stalls, the bounded send log
// fills, Send blocks — and healing the link drains the backlog, truncates,
// and lets the blocked send complete.
func TestSendBlocksAtCapResumesAfterHeal(t *testing.T) {
	inj := faultinject.New(nil)
	c := startFlowCluster(t, 3, inj, func(conf *Config) {
		conf.Flow = transport.FlowConfig{MaxBytes: 2 << 10, Mode: transport.FlowBlock}
		conf.Stall = StallConfig{Deadline: 100 * time.Millisecond}
	})
	sender := c.nodes[0]

	// Warm up: make sure every link is live before cutting one, so the
	// heal path exercises gate release on an established connection
	// rather than a fresh redial.
	if _, err := sender.Send([]byte("warmup")); err != nil {
		t.Fatalf("warmup send: %v", err)
	}
	waitUntil(t, 5*time.Second, "warmup delivery", func() bool {
		return c.nodes[1].RecvLast(1) >= 1 && c.nodes[2].RecvLast(1) >= 1
	})

	inj.Blackhole(1, 3)

	const total = 12
	payload := make([]byte, 256)
	var sent atomic.Int64
	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if _, err := sender.SendCtx(context.Background(), payload); err != nil {
				done <- fmt.Errorf("send %d: %w", i, err)
				return
			}
			sent.Add(1)
		}
		done <- nil
	}()

	// The cap is 8 payloads; with node 3 dark the reclaim frontier pins
	// and the pump must wedge before finishing.
	waitUntil(t, 5*time.Second, "send to block at the cap", func() bool {
		return sender.Health().BlockedAppends >= 1
	})
	if got := sent.Load(); got >= total {
		t.Fatalf("all %d sends completed through a full log", got)
	}
	if h := sender.Health(); !h.Backpressured {
		t.Fatalf("health not backpressured while blocked: %+v", h)
	}
	// The stall monitor must name exactly the blackholed peer.
	waitUntil(t, 5*time.Second, "stall blame on peer 3", func() bool {
		for _, p := range sender.Health().Predicates {
			if p.Key == ReclaimPredicateKey && p.Stalled {
				return len(p.Blamed) == 1 && p.Blamed[0].Peer == 3
			}
		}
		return false
	})

	inj.HealBlackhole(1, 3)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pump after heal: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("pump never resumed after heal (sent %d/%d)", sent.Load(), total)
	}

	// Everyone converges and the latch clears once reclaim catches up.
	head := sender.Health().Head
	waitUntil(t, 10*time.Second, "receivers to drain", func() bool {
		return c.nodes[1].RecvLast(1) >= head && c.nodes[2].RecvLast(1) >= head
	})
	waitUntil(t, 10*time.Second, "backpressure to clear", func() bool {
		return !sender.Health().Backpressured
	})
}

// TestSendFailFastReturnsErrBackpressure pins the fail-fast contract: at the
// cap, Send sheds with ErrBackpressure instead of blocking.
func TestSendFailFastReturnsErrBackpressure(t *testing.T) {
	c := startFlowCluster(t, 2, nil, func(conf *Config) {
		conf.Flow = transport.FlowConfig{MaxBytes: 2 << 10, Mode: transport.FlowFail}
		conf.DisableAutoReclaim = true // nothing ever truncates
	})
	sender := c.nodes[0]

	payload := make([]byte, 256)
	for i := 0; i < 8; i++ {
		if _, err := sender.Send(payload); err != nil {
			t.Fatalf("send %d under cap: %v", i, err)
		}
	}
	if _, err := sender.Send(payload); !errors.Is(err, transport.ErrBackpressure) {
		t.Fatalf("send at cap: err=%v, want ErrBackpressure", err)
	}
	h := sender.Health()
	if h.ShedAppends < 1 || !h.Backpressured {
		t.Fatalf("health after shed: %+v", h)
	}
	// Fail-fast keeps the caller unblocked: the next attempt fails
	// immediately too rather than queueing.
	start := time.Now()
	if _, err := sender.Send(payload); !errors.Is(err, transport.ErrBackpressure) {
		t.Fatalf("repeat send at cap: err=%v", err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("fail-fast send took %v", el)
	}
}

// TestSendCtxCancelUnblocksPromptly pins cancellation: a Send blocked on a
// full log must return context.Canceled promptly, not wait for space.
func TestSendCtxCancelUnblocksPromptly(t *testing.T) {
	c := startFlowCluster(t, 2, nil, func(conf *Config) {
		conf.Flow = transport.FlowConfig{MaxBytes: 2 << 10, Mode: transport.FlowBlock}
		conf.DisableAutoReclaim = true
	})
	sender := c.nodes[0]

	payload := make([]byte, 256)
	for i := 0; i < 8; i++ {
		if _, err := sender.Send(payload); err != nil {
			t.Fatalf("send %d under cap: %v", i, err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sender.SendCtx(ctx, payload)
		done <- err
	}()
	waitUntil(t, 5*time.Second, "send to block", func() bool {
		return sender.Health().BlockedAppends >= 1
	})
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled send: err=%v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked send ignored cancellation")
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Fatalf("canceled send returned after %v, want prompt", el)
	}
}
