package core

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/kvstore"
)

// walPersister persists delivered messages to a kvstore WAL — the durable
// flavor of the "persisted" stability level (§III-A: "persistent logging"
// as one interpretation of 'having a copy').
type walPersister struct {
	store *kvstore.Store
}

var _ Persister = (*walPersister)(nil)

func (p *walPersister) Persist(m Message) error {
	_, err := p.store.Put(fmt.Sprintf("msg/%d/%d", m.Origin, m.Seq), m.Payload)
	return err
}

// TestPersistedStabilityEndToEnd drives the full "persisted" pipeline: a
// receiver persists delivered messages through a real write-ahead log, the
// persisted ACKs stream back, a .persisted predicate releases the sender,
// and the WAL replays the payloads after a simulated crash.
func TestPersistedStabilityEndToEnd(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	topo := flatTopology(3)

	walPaths := make([]string, 3)
	wals := make([]*kvstore.WAL, 3)
	nodes := make([]*Node, 3)
	dir := t.TempDir()
	for i := 1; i <= 3; i++ {
		var persister Persister
		if i != 1 {
			walPaths[i-1] = filepath.Join(dir, fmt.Sprintf("node%d.wal", i))
			w, err := kvstore.OpenWAL(walPaths[i-1], false)
			if err != nil {
				t.Fatalf("open wal %d: %v", i, err)
			}
			wals[i-1] = w
			persister = &walPersister{store: kvstore.New(kvstore.WithWAL(w))}
		}
		n, err := Open(Config{
			Topology:  topo.WithSelf(i),
			Network:   net,
			Persister: persister,
		})
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		nodes[i-1] = n
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	sender := nodes[0]
	if err := sender.RegisterPredicate("durable", "MIN(($ALLWNODES-$MYWNODE).persisted)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var last uint64
	for i := 0; i < 10; i++ {
		var err error
		last, err = sender.Send([]byte(fmt.Sprintf("durable-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sender.WaitFor(ctx, last, "durable"); err != nil {
		t.Fatalf("persisted predicate never satisfied: %v", err)
	}

	// The recorder agrees: both receivers report persisted ≥ last.
	for peer := 2; peer <= 3; peer++ {
		v, err := sender.AckValue(1, peer, "persisted")
		if err != nil || v < last {
			t.Fatalf("node %d persisted ack = %d, %v; want ≥ %d", peer, v, err, last)
		}
	}

	// Simulated crash: recover each receiver's WAL and verify every
	// payload survived in order.
	for peer := 2; peer <= 3; peer++ {
		if err := wals[peer-1].Close(); err != nil {
			t.Fatalf("close wal %d: %v", peer, err)
		}
		records, err := kvstore.ReadWAL(walPaths[peer-1])
		if err != nil {
			t.Fatalf("read wal %d: %v", peer, err)
		}
		if len(records) != 10 {
			t.Fatalf("node %d recovered %d/10 records", peer, len(records))
		}
		for i, r := range records {
			wantKey := fmt.Sprintf("msg/1/%d", i+1)
			wantVal := fmt.Sprintf("durable-%d", i)
			if r.Key != wantKey || string(r.Value) != wantVal {
				t.Fatalf("node %d record %d = %q=%q, want %q=%q",
					peer, i, r.Key, r.Value, wantKey, wantVal)
			}
		}
	}
}

// TestPersisterErrorWithholdsAck: a failing persister must not produce
// persisted stability.
func TestPersisterErrorWithholdsAck(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	topo := flatTopology(2)

	n1, err := Open(Config{Topology: topo.WithSelf(1), Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Open(Config{
		Topology:  topo.WithSelf(2),
		Network:   net,
		Persister: failingPersister{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	if err := n1.RegisterPredicate("recv", "MIN($ALLWNODES-$MYWNODE)"); err != nil {
		t.Fatal(err)
	}
	seq, err := n1.Send([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Received stability arrives...
	if err := n1.WaitFor(ctx, seq, "recv"); err != nil {
		t.Fatal(err)
	}
	// ...but persisted must stay at zero.
	time.Sleep(50 * time.Millisecond)
	if v, _ := n1.AckValue(1, 2, "persisted"); v != 0 {
		t.Fatalf("failing persister produced persisted ack %d", v)
	}
}

type failingPersister struct{}

func (failingPersister) Persist(Message) error { return fmt.Errorf("disk full") }
