package core

import (
	"context"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
)

func openTracedCluster(t *testing.T, n int, trace optrace.Config) *Cluster {
	t.Helper()
	net := emunet.NewMemNetwork(nil)
	cl, err := OpenCluster(ClusterConfig{
		Topology:       flatTopology(n),
		Network:        net,
		Metrics:        metrics.NewRegistry(),
		HeartbeatEvery: 20 * time.Millisecond,
		Trace:          trace,
	})
	if err != nil {
		net.Close()
		t.Fatalf("open cluster: %v", err)
	}
	t.Cleanup(func() {
		_ = cl.Close()
		_ = net.Close()
	})
	return cl
}

// TestTraceOpEndToEnd drives ops through a traced 3-node cluster and
// asserts the merged timeline covers the whole lifecycle and validates.
func TestTraceOpEndToEnd(t *testing.T) {
	cl := openTracedCluster(t, 3, optrace.Config{SampleEvery: 1, RingSize: 1 << 12})
	sender := cl.Node(1)
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 20; i++ {
		seq, err := sender.Send([]byte("traced payload"))
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.WaitAllFor(ctx, last, "all"); err != nil {
		t.Fatalf("WaitAllFor: %v", err)
	}

	// The frontier hook that records Stabilize may run a hair after
	// WaitAllFor unblocks; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var tl *optrace.Timeline
	for {
		var err error
		tl, err = cl.TraceOp(1, last)
		if err == nil && tl.HasAllStages() {
			break
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("TraceOp: %v", err)
			}
			t.Fatalf("timeline missing stages: %v\n%+v", tl.Stages(), tl.Events)
		}
		time.Sleep(10 * time.Millisecond)
	}

	stages := tl.Stages()
	// Two remote peers: one BatchEnqueue/WireSend per peer at the origin,
	// one WireRecv/Deliver per peer.
	if stages[optrace.StageAppend] < 1 || stages[optrace.StageWireRecv] < 2 || stages[optrace.StageDeliver] < 2 {
		t.Fatalf("stage counts = %v", stages)
	}
	// Events must come from all three nodes.
	nodes := map[int]bool{}
	for _, ev := range tl.Events {
		nodes[ev.Node] = true
	}
	if len(nodes) != 3 {
		t.Fatalf("merged timeline covers nodes %v, want all 3", nodes)
	}
	if bad := tl.Validate(map[string]int{"all": 3}); len(bad) != 0 {
		t.Fatalf("timeline violations: %v", bad)
	}

	// Stage histograms saw samples on the origin's registry.
	stage := sender.Metrics().HistogramVec(optrace.StageFamily, optrace.StageFamilyHelp, metrics.LatencyOpts, "stage")
	for _, seg := range []string{optrace.SegBatchQueue, optrace.SegWireSend, optrace.SegAckReturn} {
		if stage.With(seg).Count() == 0 {
			t.Errorf("stage %q histogram empty on origin", seg)
		}
	}
	// Flight and deliver are observed where the data lands: the receivers.
	recvStage := cl.Node(2).Metrics().HistogramVec(optrace.StageFamily, optrace.StageFamilyHelp, metrics.LatencyOpts, "stage")
	for _, seg := range []string{optrace.SegFlight, optrace.SegDeliver} {
		if recvStage.With(seg).Count() == 0 {
			t.Errorf("stage %q histogram empty on receiver", seg)
		}
	}

	// SlowestOp resolves to a traced op.
	slow, err := cl.SlowestOp()
	if err != nil {
		t.Fatalf("SlowestOp: %v", err)
	}
	if slow.Origin != 1 || len(slow.Events) == 0 {
		t.Fatalf("SlowestOp = %+v", slow)
	}
}

// TestTraceDisabled asserts the disabled path: no recorder, queries error.
func TestTraceDisabled(t *testing.T) {
	cl := openTracedCluster(t, 2, optrace.Config{})
	if cl.Node(1).TraceRecorder() != nil {
		t.Fatal("recorder exists with tracing disabled")
	}
	if _, err := cl.TraceOp(1, 1); err != ErrTracingDisabled {
		t.Fatalf("TraceOp error = %v, want ErrTracingDisabled", err)
	}
	if _, _, _, ok := cl.Node(1).SlowestSampled(); ok {
		t.Fatal("SlowestSampled reported an op with tracing disabled")
	}
}

// TestStallHealthIncludesTraceTail blackholes a peer and asserts the
// stall-triggered Health report carries a non-empty recorder snapshot for
// the blamed peer.
func TestStallHealthIncludesTraceTail(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	cl, err := OpenCluster(ClusterConfig{
		Topology:       flatTopology(3),
		Network:        net,
		Metrics:        metrics.NewRegistry(),
		HeartbeatEvery: 20 * time.Millisecond,
		Stall:          StallConfig{Deadline: 100 * time.Millisecond, CheckEvery: 20 * time.Millisecond},
		Trace:          optrace.Config{SampleEvery: 1, RingSize: 1 << 12},
	})
	if err != nil {
		net.Close()
		t.Fatalf("open cluster: %v", err)
	}
	defer func() {
		_ = cl.Close()
		_ = net.Close()
	}()

	sender := cl.Node(1)
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	stalled := make(chan StallReport, 8)
	sender.OnStall(func(r StallReport) {
		select {
		case stalled <- r:
		default:
		}
	})

	// Let traffic flow first so the recorder has events for peer 3, then
	// cut node 3 off and keep sending.
	for i := 0; i < 5; i++ {
		if _, err := sender.Send([]byte("warm")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := cl.Crash(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sender.Send([]byte("stuck")); err != nil {
			t.Fatal(err)
		}
	}

	select {
	case <-stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("no stall report")
	}

	h := sender.Health()
	foundBlamed := false
	for _, ph := range h.Predicates {
		if !ph.Stalled {
			continue
		}
		for _, lag := range ph.Blamed {
			if lag.Peer != 3 {
				continue
			}
			foundBlamed = true
			if len(lag.Recent) == 0 {
				t.Fatalf("blamed peer %d has empty trace tail (predicate %q)", lag.Peer, ph.Key)
			}
			for _, ev := range lag.Recent {
				if ev.Peer != 3 && !(ev.Origin == 1 && ev.Seq > ph.Frontier) {
					t.Fatalf("tail event unrelated to blame: %+v", ev)
				}
			}
		}
	}
	if !foundBlamed {
		t.Fatalf("no stalled predicate blames peer 3: %+v", h.Predicates)
	}
}
