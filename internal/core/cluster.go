package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
	"stabilizer/internal/transport"
)

// ClusterConfig parameterizes OpenCluster. One config describes a whole
// in-process deployment: which of the topology's nodes to boot here, the
// fabric they share, and the knobs applied uniformly to every node.
// Per-node divergence (a Persister on the primary, a restored Checkpoint,
// per-node flow caps) goes through the Configure hook.
type ClusterConfig struct {
	// Topology is the WAN deployment; required. Its Self field is ignored
	// — the cluster derives a per-node topology for every booted node.
	Topology *config.Topology
	// Network is the fabric every node dials and listens through; required.
	Network emunet.Network
	// Nodes lists the 1-based indices to boot in this process. Nil or
	// empty boots the whole topology. Duplicates and out-of-range indices
	// are rejected.
	Nodes []int
	// Metrics is the registry shared by every booted node: each node
	// instruments through its own node-labeled group view, so one scrape
	// of this registry sees the whole in-process deployment. Nil creates
	// a private registry (reachable via Cluster.Metrics).
	Metrics *metrics.Registry
	// HeartbeatEvery and PeerTimeout tune failure detection on every
	// node; zero values pick transport defaults.
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	// Batch, Flow, Stall, Trace, DialTimeout and StabilizeInterval apply
	// to every node; see Config.
	Batch             transport.BatchConfig
	Flow              transport.FlowConfig
	LogStripes        int
	Stall             StallConfig
	Trace             optrace.Config
	DialTimeout       time.Duration
	StabilizeInterval time.Duration
	// DisableAutoReclaim keeps every node's send buffer forever (tests,
	// ablations).
	DisableAutoReclaim bool
	// Adaptive, when set, starts the same closed-loop consistency
	// controller on every booted node (each drives its own predicate over
	// its own outbound stream); see Config.Adaptive. Per-node divergence
	// goes through Configure as usual.
	Adaptive *AdaptiveSpec
	// Configure, when set, runs on each node's Config after the shared
	// fields above are applied and before the node boots — the hook for
	// anything per-node: Persister, Checkpoint, Epoch, or overriding a
	// shared knob for one node. It also runs on Restart, so restart-aware
	// state (epochs, checkpoints) can be re-derived there.
	Configure func(node int, cfg *Config)
}

// Cluster owns a set of in-process Stabilizer nodes booted from one
// topology — the paper's evaluation shape (§VI: many WAN nodes per machine
// over emulated links) as a first-class handle. All nodes share one
// metrics registry with node-labeled families, and cluster-wide helpers
// (Health, WaitAllFor, Close with ordered drain) replace per-node loops.
type Cluster struct {
	topo *config.Topology
	reg  *metrics.Registry
	ids  []int // boot order, ascending

	mkCfg func(id int) Config

	mu     sync.Mutex
	nodes  map[int]*Node
	epochs map[int]uint64
	closed bool
}

// OpenCluster boots the requested subset of a topology's nodes in this
// process and wires them into one shared registry. On any boot failure the
// already-started nodes are closed and the error returned.
func OpenCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Topology == nil {
		return nil, errors.New("core: ClusterConfig.Topology is required")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Network == nil {
		return nil, errors.New("core: ClusterConfig.Network is required")
	}
	topo := cfg.Topology.Clone()
	n := topo.N()

	ids := cfg.Nodes
	if len(ids) == 0 {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i + 1
		}
	} else {
		ids = append([]int(nil), ids...)
		sort.Ints(ids)
		for i, id := range ids {
			if id < 1 || id > n {
				return nil, fmt.Errorf("core: cluster node %d out of range [1,%d]", id, n)
			}
			if i > 0 && ids[i-1] == id {
				return nil, fmt.Errorf("core: duplicate cluster node %d", id)
			}
		}
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	mkCfg := func(id int) Config {
		c := Config{
			Topology:           topo.WithSelf(id),
			Network:            cfg.Network,
			HeartbeatEvery:     cfg.HeartbeatEvery,
			PeerTimeout:        cfg.PeerTimeout,
			Metrics:            reg,
			Batch:              cfg.Batch,
			Flow:               cfg.Flow,
			LogStripes:         cfg.LogStripes,
			Stall:              cfg.Stall,
			Trace:              cfg.Trace,
			DialTimeout:        cfg.DialTimeout,
			DisableAutoReclaim: cfg.DisableAutoReclaim,
			StabilizeInterval:  cfg.StabilizeInterval,
			Adaptive:           cfg.Adaptive,
		}
		if cfg.Configure != nil {
			cfg.Configure(id, &c)
		}
		return c
	}

	cl := &Cluster{
		topo:   topo,
		reg:    reg,
		ids:    ids,
		mkCfg:  mkCfg,
		nodes:  make(map[int]*Node, len(ids)),
		epochs: make(map[int]uint64, len(ids)),
	}
	for _, id := range ids {
		ncfg := mkCfg(id)
		node, err := openNode(ncfg)
		if err != nil {
			_ = cl.Close()
			return nil, fmt.Errorf("core: open cluster node %d: %w", id, err)
		}
		cl.nodes[id] = node
		cl.epochs[id] = ncfg.Epoch
	}
	return cl, nil
}

// Node returns the handle for the 1-based node id, or nil when the id was
// not booted here or is currently crashed.
func (c *Cluster) Node(id int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// Nodes returns the live node handles in ascending id order.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, 0, len(c.nodes))
	for _, id := range c.ids {
		if n := c.nodes[id]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// IDs returns the node indices this cluster was asked to boot (crashed ones
// included), ascending.
func (c *Cluster) IDs() []int { return append([]int(nil), c.ids...) }

// Metrics returns the registry shared by every node in the cluster.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// Topology returns a copy of the cluster's topology.
func (c *Cluster) Topology() *config.Topology { return c.topo.Clone() }

// Health snapshots every live node's Health, in ascending id order.
func (c *Cluster) Health() []Health {
	nodes := c.Nodes()
	out := make([]Health, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Health())
	}
	return out
}

// Crash closes the node and removes it from the live set, keeping its dead
// handle available to the caller for post-mortem reads (RecvLast and other
// snapshot getters stay valid on a closed node). Restart brings the id
// back with a bumped epoch.
func (c *Cluster) Crash(id int) (*Node, error) {
	c.mu.Lock()
	node := c.nodes[id]
	delete(c.nodes, id)
	c.mu.Unlock()
	if node == nil {
		return nil, fmt.Errorf("core: cluster node %d is not running", id)
	}
	return node, node.Close()
}

// Restart reboots a crashed node with the next epoch. The node's Config is
// rebuilt (the Configure hook runs again) so restart-aware callers can
// re-derive checkpoints there.
func (c *Cluster) Restart(id int) (*Node, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.nodes[id] != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("core: cluster node %d is already running", id)
	}
	known := false
	for _, i := range c.ids {
		known = known || i == id
	}
	if !known {
		c.mu.Unlock()
		return nil, fmt.Errorf("core: node %d is not part of this cluster", id)
	}
	c.epochs[id]++
	epoch := c.epochs[id]
	c.mu.Unlock()

	cfg := c.mkCfg(id)
	cfg.Epoch = epoch
	node, err := openNode(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: restart cluster node %d: %w", id, err)
	}
	c.mu.Lock()
	c.nodes[id] = node
	c.mu.Unlock()
	return node, nil
}

// Close drains the cluster: nodes shut down in reverse boot order (later
// nodes first, so earlier ones — conventionally the primaries — observe
// their peers leaving before going down themselves). Idempotent; returns
// the first close error.
func (c *Cluster) Close() error {
	c.mu.Lock()
	c.closed = true
	var down []*Node
	for i := len(c.ids) - 1; i >= 0; i-- {
		if n := c.nodes[c.ids[i]]; n != nil {
			down = append(down, n)
			delete(c.nodes, c.ids[i])
		}
	}
	c.mu.Unlock()
	var first error
	for _, n := range down {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitAllFor blocks until every live node that has the named predicate
// registered sees its stability frontier reach seq. It errors immediately
// when no live node knows the predicate.
func (c *Cluster) WaitAllFor(ctx context.Context, seq uint64, key string) error {
	var targets []*Node
	for _, n := range c.Nodes() {
		if _, err := n.PredicateSource(key); err == nil {
			targets = append(targets, n)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("core: no live cluster node has predicate %q", key)
	}
	errs := make(chan error, len(targets))
	for _, n := range targets {
		go func(n *Node) { errs <- n.WaitFor(ctx, seq, key) }(n)
	}
	for range targets {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// WaitAllReceive polls until every live node other than origin has received
// origin's stream through seq, or ctx expires.
func (c *Cluster) WaitAllReceive(ctx context.Context, origin int, seq uint64) error {
	for {
		done := true
		for _, n := range c.Nodes() {
			if n.Self() == origin {
				continue
			}
			if n.RecvLast(origin) < seq {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// EvalAllFor evaluates source against origin's stream on every live node
// and returns the minimum — the frontier the whole in-process deployment
// agrees on. Crashed nodes are skipped; with no live nodes it errors.
func (c *Cluster) EvalAllFor(origin int, source string) (uint64, error) {
	nodes := c.Nodes()
	if len(nodes) == 0 {
		return 0, errors.New("core: no live cluster nodes")
	}
	var min uint64
	for i, n := range nodes {
		v, err := n.EvalFor(origin, source)
		if err != nil {
			return 0, fmt.Errorf("core: eval on node %d: %w", n.Self(), err)
		}
		if i == 0 || v < min {
			min = v
		}
	}
	return min, nil
}
