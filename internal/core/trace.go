package core

import (
	"errors"
	"fmt"

	"stabilizer/internal/optrace"
)

// TraceRecorder returns the node's lifecycle flight recorder, nil when
// tracing is disabled (Config.Trace zero).
func (n *Node) TraceRecorder() *optrace.Recorder { return n.trace }

// SlowestSampled reports the slowest sampled operation this node has seen
// stabilize: its sequence, stability latency, and the predicate whose
// frontier crossing produced the sample. ok is false until a sampled op
// has stabilized (or when tracing is disabled).
func (n *Node) SlowestSampled() (seq uint64, latNanos int64, predicate string, ok bool) {
	return n.slow.get()
}

// traceTail snapshots the newest events that involve the given peer or
// describe this node's own not-yet-stable operations past frontier — the
// post-mortem slice attached to stall blame.
func (n *Node) traceTail(peer int, frontier uint64) []optrace.Event {
	if n.trace == nil {
		return nil
	}
	self := n.topo.Self
	return n.trace.Tail(stallTailEvents, func(ev optrace.Event) bool {
		if ev.Peer == peer {
			return true
		}
		return ev.Origin == self && ev.Seq > frontier
	})
}

// stallTailEvents bounds the recorder tail attached to each blamed peer in
// a Health report.
const stallTailEvents = 24

// ErrTracingDisabled is returned by trace queries when no live node has a
// recorder.
var ErrTracingDisabled = errors.New("core: tracing is disabled (Config.Trace not set)")

// TraceOp merges every live node's recorder view of one operation into a
// single causally-ordered timeline. Crashed nodes contribute nothing (the
// recorder dies with the node); restarted nodes contribute whatever their
// fresh recorder has seen since.
func (c *Cluster) TraceOp(origin int, seq uint64) (*optrace.Timeline, error) {
	nodes := c.Nodes()
	recs := make([]*optrace.Recorder, 0, len(nodes))
	for _, n := range nodes {
		if r := n.TraceRecorder(); r != nil {
			recs = append(recs, r)
		}
	}
	if len(recs) == 0 {
		return nil, ErrTracingDisabled
	}
	tl := optrace.MergeOp(origin, seq, recs)
	if len(tl.Events) == 0 {
		return nil, fmt.Errorf("core: no trace events for origin %d seq %d (unsampled, or evicted from the rings)", origin, seq)
	}
	return tl, nil
}

// SlowestOp traces the slowest sampled operation any live node has seen
// stabilize — the /debug/trace?op=latest-slow query.
func (c *Cluster) SlowestOp() (*optrace.Timeline, error) {
	var (
		bestNode int
		bestSeq  uint64
		bestLat  int64
		found    bool
	)
	for _, n := range c.Nodes() {
		// Each node tracks ops it originated, so the node id is the
		// op's origin.
		if seq, lat, _, ok := n.SlowestSampled(); ok && (!found || lat > bestLat) {
			bestNode, bestSeq, bestLat, found = n.Self(), seq, lat, true
		}
	}
	if !found {
		return nil, errors.New("core: no sampled operation has stabilized yet")
	}
	return c.TraceOp(bestNode, bestSeq)
}

var _ optrace.Source = (*Cluster)(nil)
