package core

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
)

// StallConfig tunes degraded-mode stall detection: when a registered
// predicate's frontier lags the local send head and has not advanced for
// Deadline, the node reports the predicate stalled and names the peers
// holding it back (blame attribution). The zero value disables detection.
type StallConfig struct {
	// Deadline is how long a lagging frontier may sit still before the
	// predicate is declared stalled (0 disables the monitor).
	Deadline time.Duration
	// CheckEvery is the monitor sweep period (default Deadline/4,
	// floor 5ms).
	CheckEvery time.Duration
}

func (s StallConfig) normalized() StallConfig {
	if s.Deadline <= 0 {
		return StallConfig{}
	}
	if s.CheckEvery <= 0 {
		s.CheckEvery = s.Deadline / 4
	}
	if s.CheckEvery < 5*time.Millisecond {
		s.CheckEvery = 5 * time.Millisecond
	}
	return s
}

// StallReport is the degraded-mode notification delivered to OnStall hooks
// when a predicate stalls or its blamed peer set changes.
type StallReport struct {
	// Predicate is the stalled predicate's key (the reserved reclaim
	// predicate included — a stalled reclaim is what pins the send log).
	Predicate string
	// Frontier is the stuck frontier; Head the local send cursor it lags.
	Frontier uint64
	Head     uint64
	// Since is when the frontier last moved (or first lagged).
	Since time.Time
	// Peers are the blamed peer indexes, ascending: exactly the dependent
	// peers whose predicate-read ack cells sit at or below Frontier, i.e.
	// the ones whose advance would move it.
	Peers []int
}

// PeerLag describes one blamed peer inside a Health snapshot.
type PeerLag struct {
	Peer   int
	AZ     string
	Region string
	// Ack is the lowest recorder-cell value the predicate reads from this
	// peer (how far behind Head it is).
	Ack uint64
	// Recent is the flight-recorder tail snapshotted when this peer was
	// blamed: the newest traced events that involve the peer or describe
	// local not-yet-stable operations past the stuck frontier. Nil when
	// tracing is disabled.
	Recent []optrace.Event
}

// PredicateHealth is one predicate's entry in a Health snapshot.
type PredicateHealth struct {
	Key      string
	Frontier uint64
	Head     uint64
	Stalled  bool
	// StalledFor is how long the predicate has been stalled (0 unless
	// Stalled).
	StalledFor time.Duration
	// Blamed lists the peers holding the frontier back, ascending by index
	// (nil unless Stalled).
	Blamed []PeerLag
}

// Health is a point-in-time degraded-mode snapshot: send-log occupancy and
// admission-control pressure plus per-predicate stall state with blame.
type Health struct {
	Self int
	// Head is the highest locally assigned sequence.
	Head uint64
	// SendLogBytes/SendLogEntries describe the retransmission buffer;
	// SendLogCapBytes is the configured cap (0 = unbounded).
	SendLogBytes    int64
	SendLogEntries  int
	SendLogCapBytes int64
	// Backpressured is true while the admission latch is engaged;
	// BlockedAppends/ShedAppends count appends that waited / were rejected.
	Backpressured  bool
	BlockedAppends int64
	ShedAppends    int64
	// Predicates holds one entry per registered predicate (reclaim
	// included), sorted by key.
	Predicates []PredicateHealth
}

// predStall is the monitor's per-predicate bookkeeping.
type predStall struct {
	lastFrontier uint64
	lastChange   time.Time
	stalled      bool
	since        time.Time
	blamed       []int
	// tails holds the per-blamed-peer recorder snapshots taken at the
	// stall (or blame-change) transition; cleared on unstall.
	tails map[int][]optrace.Event
}

// stallHook is one OnStall registration; the id makes it detachable.
type stallHook struct {
	id int
	fn func(StallReport)
}

// stallState is the node's stall-monitor state, split out of Node so the
// hot data plane never touches it.
type stallState struct {
	mu         sync.Mutex
	preds      map[string]*predStall
	hooks      []stallHook
	nextHookID int
	stop       chan struct{}
	wg     sync.WaitGroup
	cfg    StallConfig
	gauge  *metrics.GaugeVec // stabilizer_frontier_stalled{predicate,peer}
	byZone *metrics.GaugeVec // stabilizer_frontier_stalled_peers{az,region}
	// zoneSet tracks which (az,region) children currently exist so sweeps
	// can zero rollups whose count dropped.
	zoneSet map[[2]string]bool
}

// initStallState wires the stall monitor's metric families and, when a
// deadline is configured, starts the sweep goroutine.
func (n *Node) initStallState(cfg StallConfig, mreg *metrics.Registry) {
	st := &stallState{
		preds:   make(map[string]*predStall),
		stop:    make(chan struct{}),
		cfg:     cfg.normalized(),
		zoneSet: make(map[[2]string]bool),
	}
	st.gauge = mreg.GaugeVec("stabilizer_frontier_stalled",
		"1 while the predicate's frontier is stalled with this peer blamed.",
		"predicate", "peer")
	st.byZone = mreg.GaugeVec("stabilizer_frontier_stalled_peers",
		"Currently blamed (predicate, peer) stall pairs whose peer is in this zone.",
		"az", "region")
	n.stall = st
	if st.cfg.Deadline <= 0 {
		return
	}
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		tick := time.NewTicker(st.cfg.CheckEvery)
		defer tick.Stop()
		for {
			select {
			case <-st.stop:
				return
			case <-tick.C:
				n.checkStalls(n.nowFn())
			}
		}
	}()
}

// stopStallMonitor halts the sweep goroutine (idempotent close path).
func (n *Node) stopStallMonitor() {
	st := n.stall
	if st == nil || st.cfg.Deadline <= 0 {
		return
	}
	close(st.stop)
	st.wg.Wait()
}

// OnStall registers fn to receive degraded-mode notifications: it fires when
// a predicate first stalls and again whenever a stalled predicate's blamed
// peer set changes. fn runs on the monitor goroutine; keep it short or hand
// off. Requires Config.Stall.Deadline > 0 for the monitor to run. The
// returned cancel detaches the hook (idempotent); a nil fn is ignored and
// gets a harmless no-op cancel.
func (n *Node) OnStall(fn func(StallReport)) (cancel func()) {
	if fn == nil {
		return func() {}
	}
	st := n.stall
	st.mu.Lock()
	id := st.nextHookID
	st.nextHookID++
	st.hooks = append(st.hooks, stallHook{id: id, fn: fn})
	st.mu.Unlock()
	return func() {
		st.mu.Lock()
		hooks := st.hooks[:0]
		for _, h := range st.hooks {
			if h.id != id {
				hooks = append(hooks, h)
			}
		}
		st.hooks = hooks
		st.mu.Unlock()
	}
}

// blamePeers names the dependent peers holding key's frontier at f: those
// whose predicate-read ack cells are ≤ f. Peers strictly ahead of f cannot
// be the binding constraint, so healthy-but-slightly-lagging peers are never
// over-blamed.
func (n *Node) blamePeers(key string, f uint64) []int {
	cells, err := n.registry.Cells(key)
	if err != nil {
		return nil
	}
	table := n.selfTable()
	seen := make(map[int]bool, len(cells))
	var peers []int
	for _, c := range cells {
		if c.Node == n.topo.Self || seen[c.Node] {
			continue
		}
		if table.Value(c.Node, c.Type) <= f {
			seen[c.Node] = true
			peers = append(peers, c.Node)
		}
	}
	sort.Ints(peers)
	return peers
}

// peerLagFor builds the Health view of one blamed peer.
func (n *Node) peerLagFor(key string, peer int) PeerLag {
	node := n.topo.Nodes[peer-1]
	lag := PeerLag{Peer: peer, AZ: node.AZ, Region: node.Region}
	cells, err := n.registry.Cells(key)
	if err != nil {
		return lag
	}
	table := n.selfTable()
	first := true
	for _, c := range cells {
		if c.Node != peer {
			continue
		}
		if v := table.Value(c.Node, c.Type); first || v < lag.Ack {
			lag.Ack = v
			first = false
		}
	}
	return lag
}

// captureStallTails snapshots the flight-recorder tail for each blamed
// peer at the moment blame is (re)assigned, so a Health report carries the
// post-mortem of the stuck op stream, not a view from after recovery.
// Returns nil when tracing is disabled.
func (n *Node) captureStallTails(blamed []int, frontier uint64) map[int][]optrace.Event {
	if n.trace == nil || len(blamed) == 0 {
		return nil
	}
	tails := make(map[int][]optrace.Event, len(blamed))
	for _, p := range blamed {
		tails[p] = n.traceTail(p, frontier)
	}
	return tails
}

// checkStalls is one monitor sweep: classify every registered predicate as
// healthy or stalled, attribute blame, fire hooks on transitions, and
// refresh the stall gauges and their per-zone rollups.
func (n *Node) checkStalls(now time.Time) {
	st := n.stall
	head := n.log.Head()
	keys := n.registry.Keys()
	var reports []StallReport

	st.mu.Lock()
	live := make(map[string]bool, len(keys))
	for _, key := range keys {
		f, err := n.registry.Frontier(key)
		if err != nil {
			continue
		}
		live[key] = true
		ps := st.preds[key]
		if ps == nil {
			ps = &predStall{lastFrontier: f, lastChange: now}
			st.preds[key] = ps
		}
		if f != ps.lastFrontier {
			ps.lastFrontier = f
			ps.lastChange = now
		}
		if f >= head {
			// Nothing outstanding: an idle predicate is never stalled, and
			// resetting the clock here means a later burst of sends gets a
			// full deadline before blame.
			ps.lastChange = now
		}
		lagging := f < head && now.Sub(ps.lastChange) >= st.cfg.Deadline
		switch {
		case lagging && !ps.stalled:
			ps.stalled = true
			ps.since = ps.lastChange
			ps.blamed = n.blamePeers(key, f)
			ps.tails = n.captureStallTails(ps.blamed, f)
			for _, p := range ps.blamed {
				st.gauge.With(key, strconv.Itoa(p)).Set(1)
			}
			reports = append(reports, StallReport{
				Predicate: key, Frontier: f, Head: head,
				Since: ps.since, Peers: append([]int(nil), ps.blamed...),
			})
		case lagging && ps.stalled:
			blamed := n.blamePeers(key, f)
			if !equalInts(blamed, ps.blamed) {
				for _, p := range ps.blamed {
					st.gauge.Delete(key, strconv.Itoa(p))
				}
				ps.blamed = blamed
				ps.tails = n.captureStallTails(blamed, f)
				for _, p := range blamed {
					st.gauge.With(key, strconv.Itoa(p)).Set(1)
				}
				reports = append(reports, StallReport{
					Predicate: key, Frontier: f, Head: head,
					Since: ps.since, Peers: append([]int(nil), blamed...),
				})
			}
		case !lagging && ps.stalled:
			ps.stalled = false
			for _, p := range ps.blamed {
				st.gauge.Delete(key, strconv.Itoa(p))
			}
			ps.blamed = nil
			ps.tails = nil
		}
	}
	// Drop state for predicates that were removed, clearing their gauges.
	for key, ps := range st.preds {
		if live[key] {
			continue
		}
		for _, p := range ps.blamed {
			st.gauge.Delete(key, strconv.Itoa(p))
		}
		delete(st.preds, key)
	}
	n.refreshZoneRollupLocked()
	hooks := make([]stallHook, len(st.hooks))
	copy(hooks, st.hooks)
	st.mu.Unlock()

	for _, r := range reports {
		for _, h := range hooks {
			h.fn(r)
		}
	}
}

// refreshZoneRollupLocked recounts blamed (predicate, peer) pairs per
// (az, region) and mirrors the counts into the rollup gauge, zeroing zones
// whose count dropped to nothing. Caller holds st.mu.
func (n *Node) refreshZoneRollupLocked() {
	st := n.stall
	counts := make(map[[2]string]int)
	for _, ps := range st.preds {
		if !ps.stalled {
			continue
		}
		for _, p := range ps.blamed {
			node := n.topo.Nodes[p-1]
			counts[[2]string{node.AZ, node.Region}]++
		}
	}
	for zone := range st.zoneSet {
		if _, ok := counts[zone]; !ok {
			st.byZone.With(zone[0], zone[1]).Set(0)
			delete(st.zoneSet, zone)
		}
	}
	for zone, c := range counts {
		st.byZone.With(zone[0], zone[1]).Set(int64(c))
		st.zoneSet[zone] = true
	}
}

// Health returns a degraded-mode snapshot: send-log occupancy and
// admission-control pressure, plus per-predicate stall state with blame
// attribution (populated by the stall monitor when Config.Stall is set).
func (n *Node) Health() Health {
	st := n.stall
	head := n.log.Head()
	h := Health{
		Self:            n.topo.Self,
		Head:            head,
		SendLogBytes:    n.log.Bytes(),
		SendLogEntries:  n.log.Len(),
		SendLogCapBytes: n.log.Flow().MaxBytes,
		Backpressured:   n.log.Full(),
		BlockedAppends:  n.log.BlockedAppends(),
		ShedAppends:     n.log.ShedAppends(),
	}
	now := n.nowFn()
	st.mu.Lock()
	for _, key := range n.registry.Keys() { // Keys() is sorted
		f, err := n.registry.Frontier(key)
		if err != nil {
			continue
		}
		ph := PredicateHealth{Key: key, Frontier: f, Head: head}
		if ps := st.preds[key]; ps != nil && ps.stalled {
			ph.Stalled = true
			ph.StalledFor = now.Sub(ps.since)
			for _, p := range ps.blamed {
				lag := n.peerLagFor(key, p)
				lag.Recent = ps.tails[p]
				ph.Blamed = append(ph.Blamed, lag)
			}
		}
		h.Predicates = append(h.Predicates, ph)
	}
	st.mu.Unlock()
	return h
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
