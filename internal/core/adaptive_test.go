package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"stabilizer/internal/adaptive"
	"stabilizer/internal/emunet"
	"stabilizer/internal/frontier"
)

func mustLadder(t *testing.T, rungs ...adaptive.Rung) adaptive.Ladder {
	t.Helper()
	l, err := adaptive.NewLadder(rungs...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRegisterPredicatesAllOrNothing(t *testing.T) {
	c := startCluster(t, flatTopology(3), nil)
	n := c.nodes[0]

	if err := n.RegisterPredicates(map[string]string{
		"all": "MIN($ALLWNODES)",
		"maj": "KTH_MAX(2, $ALLWNODES)",
	}); err != nil {
		t.Fatalf("batch register: %v", err)
	}
	for _, key := range []string{"all", "maj"} {
		if _, err := n.PredicateSource(key); err != nil {
			t.Fatalf("predicate %q missing after batch: %v", key, err)
		}
	}

	// One bad source: nothing from the batch lands.
	err := n.RegisterPredicates(map[string]string{
		"ok":     "MIN($ALLWNODES)",
		"broken": "MIN(",
	})
	if err == nil {
		t.Fatal("batch with a broken source succeeded")
	}
	if _, srcErr := n.PredicateSource("ok"); srcErr == nil {
		t.Fatal("partial batch: \"ok\" registered despite sibling failure")
	}

	// One duplicate key: same, and the error is the registry's dup error.
	err = n.RegisterPredicates(map[string]string{
		"all":   "MIN($ALLWNODES)",
		"fresh": "KTH_MAX(1, $ALLWNODES)",
	})
	if !errors.Is(err, frontier.ErrPredExists) {
		t.Fatalf("dup-key batch error = %v, want ErrPredExists", err)
	}
	if _, srcErr := n.PredicateSource("fresh"); srcErr == nil {
		t.Fatal("partial batch: \"fresh\" registered despite dup sibling")
	}

	// The reserved reclaim key is rejected up front.
	if err := n.RegisterPredicates(map[string]string{
		ReclaimPredicateKey: "MIN($ALLWNODES)",
	}); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("reserved key error = %v, want ErrReservedKey", err)
	}
}

func TestHookCancelDetaches(t *testing.T) {
	c := startCluster(t, flatTopology(3), nil)
	n := c.nodes[0]

	if err := n.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	advances := make(chan string, 64)
	cancel := n.OnFrontierAdvance(func(key string, old, new uint64) {
		select {
		case advances <- key:
		default:
		}
	})
	if _, err := n.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-advances:
	case <-time.After(5 * time.Second):
		t.Fatal("OnFrontierAdvance hook never fired")
	}
	cancel()
	cancel() // idempotent
	for len(advances) > 0 {
		<-advances
	}
	seq, err := n.Send([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithTimeout(context.Background(), 5*time.Second)
	defer stop()
	if err := n.WaitFor(ctx, seq, "all"); err != nil {
		t.Fatal(err)
	}
	// The frontier advanced to seq (WaitFor returned), yet the canceled
	// hook saw nothing.
	if len(advances) != 0 {
		t.Fatal("canceled OnFrontierAdvance hook still firing")
	}

	// Peer hooks: canceled before the transport could ever fire them.
	n.OnPeerUp(nil)()   // nil fn: no-op cancel must not panic
	n.OnPeerDown(nil)() // same
	upCancel := n.OnPeerUp(func(int) { t.Error("canceled OnPeerUp fired") })
	upCancel()
	// OnStall with no monitor configured: registration and cancel are safe.
	stallCancel := n.OnStall(func(StallReport) {})
	stallCancel()
	stallCancel()
}

func TestStartAdaptiveLifecycle(t *testing.T) {
	c := startCluster(t, flatTopology(3), nil)
	n := c.nodes[0]
	ladder := mustLadder(t,
		adaptive.Rung{Name: "all", Source: "MIN($ALLWNODES)"},
		adaptive.Rung{Name: "majority", Source: "KTH_MAX(2, $ALLWNODES)"},
	)
	// Long windows: this test exercises wiring, not control decisions.
	cfg := adaptive.Config{Target: time.Second}

	// A rung that does not compile fails up front.
	bad := mustLadder(t,
		adaptive.Rung{Name: "ok", Source: "MIN($ALLWNODES)"},
		adaptive.Rung{Name: "broken", Source: "MIN("},
	)
	if _, err := n.StartAdaptive("stable", bad, cfg); err == nil {
		t.Fatal("ladder with a broken rung accepted")
	}
	if n.AdaptiveController("stable") != nil {
		t.Fatal("controller registered despite rung validation failure")
	}

	ctrl, err := n.StartAdaptive("stable", ladder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src, err := n.PredicateSource("stable"); err != nil || src != "MIN($ALLWNODES)" {
		t.Fatalf("rung 0 not installed: %q, %v", src, err)
	}
	if got := n.AdaptiveController("stable"); got != ctrl {
		t.Fatal("AdaptiveController lookup mismatch")
	}
	if all := n.AdaptiveControllers(); len(all) != 1 || all[0] != ctrl {
		t.Fatalf("AdaptiveControllers = %v", all)
	}
	if ctrl.RungIndex() != 0 {
		t.Fatalf("initial rung %d", ctrl.RungIndex())
	}

	// One controller per key.
	if _, err := n.StartAdaptive("stable", ladder, cfg); err == nil {
		t.Fatal("second controller for the same key accepted")
	}
	// Reserved key rejected.
	if _, err := n.StartAdaptive(ReclaimPredicateKey, ladder, cfg); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("reserved key error = %v", err)
	}

	// The adaptive predicate behaves like any registered predicate.
	seq, err := n.Send([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithTimeout(context.Background(), 5*time.Second)
	defer stop()
	if err := n.WaitFor(ctx, seq, "stable"); err != nil {
		t.Fatalf("WaitFor on the adaptive predicate: %v", err)
	}

	// Node close stops the controller (idempotent with ctrl.Close).
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()
}

func TestOpenWithAdaptiveSpec(t *testing.T) {
	topo := flatTopology(3)
	net := emunet.NewMemNetwork(nil)
	t.Cleanup(func() { _ = net.Close() })
	ladder := mustLadder(t,
		adaptive.Rung{Name: "all", Source: "MIN($ALLWNODES)"},
		adaptive.Rung{Name: "one", Source: "KTH_MAX(1, $ALLWNODES)"},
	)
	cl, err := OpenCluster(ClusterConfig{
		Topology: topo,
		Network:  net,
		Adaptive: &AdaptiveSpec{
			Key:    "stable",
			Ladder: ladder,
			Config: adaptive.Config{Target: time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, n := range cl.Nodes() {
		ctrl := n.AdaptiveController("stable")
		if ctrl == nil {
			t.Fatalf("node %d: no adaptive controller", n.Self())
		}
		if src, err := n.PredicateSource("stable"); err != nil || src != "MIN($ALLWNODES)" {
			t.Fatalf("node %d: rung 0 not installed: %q, %v", n.Self(), src, err)
		}
	}
}
