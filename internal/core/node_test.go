package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/emunet"
)

// cluster spins up one Node per topology entry on a shared in-memory
// fabric.
type cluster struct {
	nodes []*Node
	net   *emunet.MemNetwork
}

func startCluster(t *testing.T, topo *config.Topology, matrix *emunet.Matrix) *cluster {
	t.Helper()
	c := &cluster{net: emunet.NewMemNetwork(matrix)}
	for i := 1; i <= topo.N(); i++ {
		n, err := Open(Config{
			Topology:       topo.WithSelf(i),
			Network:        c.net,
			HeartbeatEvery: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		c.nodes = append(c.nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			_ = n.Close()
		}
		_ = c.net.Close()
	})
	return c
}

func flatTopology(n int) *config.Topology {
	topo := &config.Topology{Self: 1}
	for i := 1; i <= n; i++ {
		topo.Nodes = append(topo.Nodes, config.Node{
			Name:   fmt.Sprintf("node%d", i),
			AZ:     fmt.Sprintf("az%d", i),
			Region: fmt.Sprintf("region%d", i),
		})
	}
	return topo
}

func TestSendDeliverAndWaitAllNodes(t *testing.T) {
	c := startCluster(t, flatTopology(4), nil)
	sender := c.nodes[0]

	var mu sync.Mutex
	got := make(map[int][]string) // receiver -> payloads in order
	for i, n := range c.nodes[1:] {
		idx := i + 2
		n.OnDeliver(func(m Message) {
			mu.Lock()
			got[idx] = append(got[idx], string(m.Payload))
			mu.Unlock()
		})
	}

	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatalf("register predicate: %v", err)
	}

	var lastSeq uint64
	for i := 0; i < 10; i++ {
		seq, err := sender.Send([]byte(fmt.Sprintf("msg-%d", i)))
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		lastSeq = seq
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, lastSeq, "all"); err != nil {
		t.Fatalf("waitfor: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	for idx := 2; idx <= 4; idx++ {
		msgs := got[idx]
		if len(msgs) != 10 {
			t.Fatalf("node %d delivered %d messages, want 10", idx, len(msgs))
		}
		for i, m := range msgs {
			if want := fmt.Sprintf("msg-%d", i); m != want {
				t.Fatalf("node %d message %d = %q, want %q (FIFO violated)", idx, i, m, want)
			}
		}
	}
}

func TestWaitForMajorityReleasesBeforeAll(t *testing.T) {
	// Shape one node to be much slower than the rest; a majority
	// predicate must release without waiting for it.
	matrix := emunet.NewMatrix()
	matrix.Default = emunet.Link{OneWayLatency: time.Millisecond}
	for p := 2; p <= 5; p++ {
		matrix.SetSymmetric(1, p, emunet.Link{OneWayLatency: time.Millisecond})
	}
	matrix.SetSymmetric(1, 5, emunet.Link{OneWayLatency: 300 * time.Millisecond})

	c := startCluster(t, flatTopology(5), matrix)
	sender := c.nodes[0]
	if err := sender.RegisterPredicate("maj", "KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)"); err != nil {
		t.Fatalf("register: %v", err)
	}
	seq, err := sender.Send([]byte("payload"))
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, seq, "maj"); err != nil {
		t.Fatalf("waitfor majority: %v", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("majority wait took %v; should not have waited for the 300ms straggler", d)
	}
}

func TestMonitorStabilityFrontierMonotonic(t *testing.T) {
	c := startCluster(t, flatTopology(3), nil)
	sender := c.nodes[0]
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES-$MYWNODE)"); err != nil {
		t.Fatalf("register: %v", err)
	}
	var mu sync.Mutex
	var seen []uint64
	cancel, err := sender.MonitorStabilityFrontier("all", func(seq uint64) {
		mu.Lock()
		seen = append(seen, seq)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("monitor: %v", err)
	}
	defer cancel()

	var last uint64
	for i := 0; i < 20; i++ {
		last, err = sender.Send([]byte("x"))
		if err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := sender.WaitFor(ctx, last, "all"); err != nil {
		t.Fatalf("waitfor: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("monitor never fired")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("monitor values not strictly increasing: %v", seen)
		}
	}
	if seen[len(seen)-1] != last {
		t.Fatalf("final monitor value %d, want %d", seen[len(seen)-1], last)
	}
}

func TestCustomStabilityType(t *testing.T) {
	c := startCluster(t, flatTopology(3), nil)
	sender, receiver := c.nodes[0], c.nodes[1]

	for _, n := range c.nodes {
		if err := n.RegisterStabilityType("verified"); err != nil {
			t.Fatalf("register type: %v", err)
		}
	}
	if err := sender.RegisterPredicate("ver2", "MIN(($ALLWNODES-$MYWNODE).verified)"); err != nil {
		t.Fatalf("register predicate: %v", err)
	}

	// Receivers verify each message as it arrives.
	for i, n := range c.nodes[1:] {
		_ = i
		nn := n
		n.OnDeliver(func(m Message) {
			if err := nn.ReportStability(m.Origin, "verified", m.Seq); err != nil {
				t.Errorf("report verified: %v", err)
			}
		})
	}
	_ = receiver

	seq, err := sender.Send([]byte("check me"))
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, seq, "ver2"); err != nil {
		t.Fatalf("waitfor verified: %v", err)
	}
}

func TestChangePredicateAtRuntime(t *testing.T) {
	matrix := emunet.NewMatrix()
	matrix.SetSymmetric(1, 2, emunet.Link{OneWayLatency: time.Millisecond})
	matrix.SetSymmetric(1, 3, emunet.Link{OneWayLatency: 400 * time.Millisecond})
	matrix.SetSymmetric(2, 3, emunet.Link{OneWayLatency: 400 * time.Millisecond})

	c := startCluster(t, flatTopology(3), matrix)
	sender := c.nodes[0]
	if err := sender.RegisterPredicate("p", "MIN($ALLWNODES-$MYWNODE)"); err != nil {
		t.Fatalf("register: %v", err)
	}
	seq, err := sender.Send([]byte("slow"))
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	// Drop the slow node 3 from the observation list at runtime.
	if err := sender.ChangePredicate("p", "MIN($ALLWNODES-$MYWNODE-$3)"); err != nil {
		t.Fatalf("change: %v", err)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, seq, "p"); err != nil {
		t.Fatalf("waitfor after change: %v", err)
	}
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Fatalf("wait after reconfiguration took %v; straggler should be excluded", d)
	}
	deps, err := sender.PredicateDependsOn("p")
	if err != nil {
		t.Fatalf("depends on: %v", err)
	}
	if len(deps) != 1 || deps[0] != 2 {
		t.Fatalf("depends on %v, want [2]", deps)
	}
}

func TestWaitForContextCancel(t *testing.T) {
	c := startCluster(t, flatTopology(2), emunet.NewMatrix())
	sender := c.nodes[0]
	if err := sender.RegisterPredicate("never", "MIN($ALLWNODES)"); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	// Wait for a sequence far beyond anything sent.
	err := sender.WaitFor(ctx, 999999, "never")
	if err == nil {
		t.Fatal("waitfor should fail when the context expires")
	}
}

func TestCheckpointRestartResumesSequence(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	topo := flatTopology(3)

	nodes := make([]*Node, 0, 3)
	for i := 1; i <= 3; i++ {
		n, err := Open(Config{Topology: topo.WithSelf(i), Network: net})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	sender := nodes[0]
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatalf("register: %v", err)
	}
	var last uint64
	for i := 0; i < 5; i++ {
		var err error
		last, err = sender.Send([]byte("pre-crash"))
		if err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, last, "all"); err != nil {
		t.Fatalf("waitfor: %v", err)
	}

	ckpt := sender.Checkpoint()
	if err := sender.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	restarted, err := Open(Config{
		Topology:   topo.WithSelf(1),
		Network:    net,
		Checkpoint: ckpt,
		Epoch:      2,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	nodes[0] = restarted

	seq, err := restarted.Send([]byte("post-crash"))
	if err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	if seq != last+1 {
		t.Fatalf("restarted sequence = %d, want %d", seq, last+1)
	}
	if err := restarted.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatalf("register after restart: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := restarted.WaitFor(ctx2, seq, "all"); err != nil {
		t.Fatalf("waitfor after restart: %v", err)
	}
}

func TestPeerDownDetection(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	topo := flatTopology(3)

	var nodes []*Node
	for i := 1; i <= 3; i++ {
		n, err := Open(Config{
			Topology:       topo.WithSelf(i),
			Network:        net,
			HeartbeatEvery: 10 * time.Millisecond,
			PeerTimeout:    50 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	down := make(chan int, 8)
	nodes[0].OnPeerDown(func(p int) { down <- p })

	// Give the mesh time to come up, then kill node 3.
	time.Sleep(100 * time.Millisecond)
	if err := nodes[2].Close(); err != nil {
		t.Fatalf("close node 3: %v", err)
	}

	deadline := time.After(3 * time.Second)
	for {
		select {
		case p := <-down:
			if p == 3 {
				return // detected
			}
		case <-deadline:
			t.Fatal("node 1 never detected node 3's failure")
		}
	}
}

func TestBufferReclaimedWhenReceivedEverywhere(t *testing.T) {
	c := startCluster(t, flatTopology(3), nil)
	sender := c.nodes[0]
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatalf("register: %v", err)
	}
	payload := make([]byte, 4096)
	var last uint64
	for i := 0; i < 50; i++ {
		var err error
		last, err = sender.Send(payload)
		if err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, last, "all"); err != nil {
		t.Fatalf("waitfor: %v", err)
	}
	// Reclamation runs on the same recompute path that released the
	// waiter, so by now the buffer must be (nearly) empty.
	deadline := time.Now().Add(2 * time.Second)
	for sender.BufferedBytes() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b := sender.BufferedBytes(); b != 0 {
		t.Fatalf("send buffer still holds %d bytes after full stability", b)
	}
}
