package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/emunet"
)

// TestPredicateAdjustmentOnPeerFailure exercises the paper's §III-E
// recovery recipe end to end: a secondary crashes mid-stream, the sender's
// strong predicate stalls, OnPeerDown fires, the application drops the dead
// node via ChangePredicate, and the stalled waiter completes.
func TestPredicateAdjustmentOnPeerFailure(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	topo := flatTopology(4)

	nodes := make([]*Node, 4)
	for i := 1; i <= 4; i++ {
		n, err := Open(Config{
			Topology:       topo.WithSelf(i),
			Network:        net,
			HeartbeatEvery: 10 * time.Millisecond,
			PeerTimeout:    60 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		nodes[i-1] = n
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				_ = n.Close()
			}
		}
	}()
	sender := nodes[0]
	if err := sender.RegisterPredicate("strong", "MIN($ALLWNODES-$MYWNODE)"); err != nil {
		t.Fatal(err)
	}

	// The application's recovery policy: on failure, re-derive every
	// predicate that depends on the dead node without it.
	sender.OnPeerDown(func(peer int) {
		for _, key := range sender.Predicates() {
			deps, err := sender.PredicateDependsOn(key)
			if err != nil {
				continue
			}
			for _, d := range deps {
				if d == peer {
					_ = sender.ChangePredicate(key,
						fmt.Sprintf("MIN($ALLWNODES-$MYWNODE-$%d)", peer))
					break
				}
			}
		}
	})

	// Let the mesh come up, then murder node 4 and send.
	time.Sleep(100 * time.Millisecond)
	_ = nodes[3].Close()
	nodes[3] = nil

	seq, err := sender.Send([]byte("survives failures"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, seq, "strong"); err != nil {
		t.Fatalf("waiter never released after predicate adjustment: %v", err)
	}
	deps, _ := sender.PredicateDependsOn("strong")
	for _, d := range deps {
		if d == 4 {
			t.Fatalf("predicate still depends on dead node: %v", deps)
		}
	}
}

// TestReceiverCrashAndRecoveryResumesStream kills a receiver and brings a
// fresh incarnation back: the sender's retransmission buffer replays the
// backlog and the strong predicate eventually covers everything.
func TestReceiverCrashAndRecoveryResumesStream(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	topo := flatTopology(3)

	open := func(i int) *Node {
		n, err := Open(Config{
			Topology:           topo.WithSelf(i),
			Network:            net,
			HeartbeatEvery:     10 * time.Millisecond,
			PeerTimeout:        80 * time.Millisecond,
			DisableAutoReclaim: i == 1, // keep the backlog replayable
		})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		return n
	}
	n1, n2, n3 := open(1), open(2), open(3)
	defer func() { _ = n1.Close(); _ = n2.Close() }()

	if err := n1.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	// Warm up, then crash node 3 and keep sending into the outage.
	time.Sleep(50 * time.Millisecond)
	_ = n3.Close()
	var last uint64
	for i := 0; i < 20; i++ {
		var err error
		last, err = n1.Send([]byte(fmt.Sprintf("outage-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
	}

	// Fresh incarnation of node 3 (state lost).
	var mu sync.Mutex
	var delivered []uint64
	n3 = open(3)
	defer func() { _ = n3.Close() }()
	n3.OnDeliver(func(m Message) {
		if m.Origin == 1 {
			mu.Lock()
			delivered = append(delivered, m.Seq)
			mu.Unlock()
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := n1.WaitFor(ctx, last, "all"); err != nil {
		t.Fatalf("stream never recovered: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != 20 {
		t.Fatalf("recovered node delivered %d/20 messages", len(delivered))
	}
	for i, s := range delivered {
		if s != uint64(i+1) {
			t.Fatalf("recovered delivery out of order at %d: %d", i, s)
		}
	}
}

// TestTCPFabricEndToEnd runs the full stack over real loopback TCP.
func TestTCPFabricEndToEnd(t *testing.T) {
	matrix := emunet.NewMatrix()
	matrix.Default = emunet.Link{OneWayLatency: 2 * time.Millisecond, BandwidthBps: emunet.Mbps(200)}
	net := emunet.NewTCPNetwork(matrix)
	defer net.Close()
	topo := flatTopology(3)

	var nodes []*Node
	for i := 1; i <= 3; i++ {
		n, err := Open(Config{Topology: topo.WithSelf(i), Network: net})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	sender := nodes[0]
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got int
	for _, n := range nodes[1:] {
		n.OnDeliver(func(m Message) {
			mu.Lock()
			got++
			mu.Unlock()
		})
	}
	payload := make([]byte, 8<<10)
	var last uint64
	for i := 0; i < 100; i++ {
		var err error
		last, err = sender.Send(payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, last, "all"); err != nil {
		t.Fatalf("waitfor over TCP: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got != 200 {
		t.Fatalf("delivered %d/200 over TCP", got)
	}
}

// TestConcurrentSendersAllOrigins drives every node as a sender at once;
// each origin's stream must stay FIFO at each receiver.
func TestConcurrentSendersAllOrigins(t *testing.T) {
	c := startCluster(t, flatTopology(4), nil)
	const per = 100

	type key struct{ receiver, origin int }
	var mu sync.Mutex
	seqs := make(map[key][]uint64)
	for i, n := range c.nodes {
		me := i + 1
		n.OnDeliver(func(m Message) {
			mu.Lock()
			k := key{me, m.Origin}
			seqs[k] = append(seqs[k], m.Seq)
			mu.Unlock()
		})
		if err := n.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	lasts := make([]uint64, 4)
	for i, n := range c.nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := 0; m < per; m++ {
				seq, err := n.Send([]byte(fmt.Sprintf("o%d-%d", i+1, m)))
				if err != nil {
					t.Errorf("send: %v", err)
					return
				}
				lasts[i] = seq
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i, n := range c.nodes {
		if err := n.WaitFor(ctx, lasts[i], "all"); err != nil {
			t.Fatalf("node %d waitfor: %v", i+1, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for receiver := 1; receiver <= 4; receiver++ {
		for origin := 1; origin <= 4; origin++ {
			if receiver == origin {
				continue
			}
			got := seqs[key{receiver, origin}]
			if len(got) != per {
				t.Fatalf("receiver %d got %d/%d from origin %d", receiver, len(got), per, origin)
			}
			for i, s := range got {
				if s != uint64(i+1) {
					t.Fatalf("receiver %d origin %d: FIFO violated at %d (%d)", receiver, origin, i, s)
				}
			}
		}
	}
}

// TestRegisterPredicateValidation covers reserved keys and bad sources at
// the node level.
func TestRegisterPredicateValidation(t *testing.T) {
	c := startCluster(t, flatTopology(2), emunet.NewMatrix().Scaled(1).Scaled(1))
	n := c.nodes[0]
	if err := n.RegisterPredicate(ReclaimPredicateKey, "MIN($1)"); err == nil {
		t.Fatal("reserved key accepted")
	}
	if err := n.ChangePredicate(ReclaimPredicateKey, "MIN($1)"); err == nil {
		t.Fatal("reserved key change accepted")
	}
	if err := n.RemovePredicate(ReclaimPredicateKey); err == nil {
		t.Fatal("reserved key removal accepted")
	}
	if err := n.RegisterPredicate("bad", "MIN($99)"); err == nil {
		t.Fatal("unresolvable predicate accepted")
	}
	if err := n.RegisterPredicate("ok", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	keys := n.Predicates()
	for _, k := range keys {
		if k == ReclaimPredicateKey {
			t.Fatal("reserved key leaked into Predicates()")
		}
	}
}

func TestReportStabilityValidation(t *testing.T) {
	c := startCluster(t, flatTopology(2), nil)
	n := c.nodes[0]
	if err := n.ReportStability(1, "nonexistent", 5); err == nil {
		t.Fatal("unknown type accepted")
	}
	if err := n.ReportStability(99, "received", 5); err == nil {
		t.Fatal("bad origin accepted")
	}
	if err := n.RegisterStabilityType("bad name!"); err == nil {
		t.Fatal("malformed type name accepted")
	}
	if err := n.RegisterStabilityType("audited"); err != nil {
		t.Fatal(err)
	}
	if err := n.ReportStability(2, "audited", 5); err != nil {
		t.Fatal(err)
	}
	v, err := n.AckValue(2, 1, "audited")
	if err != nil || v != 5 {
		t.Fatalf("AckValue = %d, %v", v, err)
	}
}

func TestOpenValidation(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	if _, err := Open(Config{Network: net}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := Open(Config{Topology: flatTopology(2)}); err == nil {
		t.Fatal("nil network accepted")
	}
	bad := flatTopology(2)
	bad.Self = 5
	if _, err := Open(Config{Topology: bad, Network: net}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestEvalAdHocPredicate(t *testing.T) {
	c := startCluster(t, flatTopology(2), nil)
	sender := c.nodes[0]
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	seq, err := sender.Send([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, seq, "all"); err != nil {
		t.Fatal(err)
	}
	got, err := sender.Eval("MAX($ALLWNODES)")
	if err != nil || got != seq {
		t.Fatalf("Eval = %d, %v; want %d", got, err, seq)
	}
	if _, err := sender.Eval("MIN($99)"); err == nil {
		t.Fatal("bad ad-hoc predicate accepted")
	}
}
