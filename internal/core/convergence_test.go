package core

import (
	"context"
	"testing"
	"time"
)

// TestAllNodesReachSameConclusions verifies the paper's §III-A claim: each
// WAN node detects stability independently and asynchronously, but all
// reach the same conclusions eventually. Every node evaluates the same
// predicate about node 1's stream; once traffic quiesces, all evaluations
// agree.
func TestAllNodesReachSameConclusions(t *testing.T) {
	c := startCluster(t, flatTopology(4), nil)
	sender := c.nodes[0]
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 30; i++ {
		var err error
		last, err = sender.Send([]byte("converge"))
		if err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, last, "all"); err != nil {
		t.Fatal(err)
	}

	// The sender knows everything is stable; the other nodes learn it
	// from the broadcast ACK stream within a short settle window.
	const pred = "MIN($ALLWNODES)"
	deadline := time.Now().Add(5 * time.Second)
	for {
		agree := true
		for _, n := range c.nodes {
			f, err := n.EvalFor(1, pred)
			if err != nil {
				t.Fatal(err)
			}
			if f != last {
				agree = false
			}
		}
		if agree {
			return
		}
		if time.Now().After(deadline) {
			for i, n := range c.nodes {
				f, _ := n.EvalFor(1, pred)
				t.Logf("node %d evaluates %q about origin 1 as %d (want %d)", i+1, pred, f, last)
			}
			t.Fatal("nodes never converged on the same stability conclusion")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEvalForValidation covers origin-range and compile errors.
func TestEvalForValidation(t *testing.T) {
	c := startCluster(t, flatTopology(2), nil)
	if _, err := c.nodes[0].EvalFor(0, "MIN($1)"); err == nil {
		t.Fatal("origin 0 accepted")
	}
	if _, err := c.nodes[0].EvalFor(3, "MIN($1)"); err == nil {
		t.Fatal("origin out of range accepted")
	}
	if _, err := c.nodes[0].EvalFor(2, "MIN($9)"); err == nil {
		t.Fatal("bad predicate accepted")
	}
	if _, err := c.nodes[0].EvalFor(2, "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
}
