package core

import (
	"sync"

	"stabilizer/internal/config"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
)

// coreMetrics are the node-level metric instances, resolved once at Open.
type coreMetrics struct {
	reg         *metrics.Registry
	sends       *metrics.Counter
	sendBytes   *metrics.Counter
	deliveries  *metrics.Counter
	deliveryLag *metrics.Histogram
	stabLatency *metrics.HistogramVec
	reclaimSeq  *metrics.Gauge

	// Stage-latency segments of stabilizer_stage_seconds, resolved by
	// initStageMetrics when tracing is enabled; nil otherwise. The
	// transport resolves its own segments of the same family.
	stageDeliver   *metrics.Histogram
	stageAckReturn *metrics.Histogram
}

// initStageMetrics resolves the core-owned segments of the per-stage
// latency decomposition family.
func (m *coreMetrics) initStageMetrics() {
	stage := m.reg.HistogramVec(optrace.StageFamily, optrace.StageFamilyHelp, metrics.LatencyOpts, "stage")
	m.stageDeliver = stage.With(optrace.SegDeliver)
	m.stageAckReturn = stage.With(optrace.SegAckReturn)
}

func newCoreMetrics(reg *metrics.Registry, log interface {
	Bytes() int64
	Len() int
	NextSeq() uint64
}) *coreMetrics {
	m := &coreMetrics{
		reg: reg,
		sends: reg.Counter("stabilizer_core_sends_total",
			"Messages sequenced by Send on this node."),
		sendBytes: reg.Counter("stabilizer_core_send_bytes_total",
			"Payload bytes sequenced by Send on this node."),
		deliveries: reg.Counter("stabilizer_core_deliveries_total",
			"Remote-origin messages delivered to the application."),
		deliveryLag: reg.Histogram("stabilizer_core_delivery_lag_seconds",
			"Origin send timestamp to local delivery.", metrics.LatencyOpts),
		stabLatency: reg.HistogramVec("stabilizer_stability_latency_seconds",
			"Send to predicate-frontier crossing, per predicate key.",
			metrics.LatencyOpts, "predicate"),
		reclaimSeq: reg.Gauge("stabilizer_core_reclaim_seq",
			"Highest sequence reclaimed from the send buffer."),
	}
	reg.GaugeFunc("stabilizer_core_buffered_bytes",
		"Payload bytes held in the retransmission buffer.",
		func() float64 { return float64(log.Bytes()) })
	reg.GaugeFunc("stabilizer_core_buffered_messages",
		"Messages held in the retransmission buffer.",
		func() float64 { return float64(log.Len()) })
	reg.GaugeFunc("stabilizer_core_next_seq",
		"Sequence number the next Send will be assigned.",
		func() float64 { return float64(log.NextSeq()) })
	return m
}

// sendTimeRingBits sizes the send-timestamp ring: the node remembers the
// send time of the most recent 2^sendTimeRingBits sequences to turn
// frontier advances into stability-latency samples. Messages that stabilize
// only after the ring wraps are dropped from the histogram, never blocked.
const sendTimeRingBits = 13

// sendTimes maps recent sequence numbers to their send timestamps. Writes
// come from Send callers, reads from the frontier-advance hook; both are
// short critical sections over fixed arrays (no allocation).
type sendTimes struct {
	mu  sync.Mutex
	seq [1 << sendTimeRingBits]uint64
	ts  [1 << sendTimeRingBits]int64
}

// record stores seq's send timestamp (UnixNano).
func (s *sendTimes) record(seq uint64, ts int64) {
	slot := seq & (1<<sendTimeRingBits - 1)
	s.mu.Lock()
	s.seq[slot] = seq
	s.ts[slot] = ts
	s.mu.Unlock()
}

// observeRange invokes obs with each sequence in (old, new] still present
// in the ring and its now-sendTime latency.
func (s *sendTimes) observeRange(old, new uint64, now int64, obs func(seq uint64, latNanos int64)) {
	const size = 1 << sendTimeRingBits
	if new-old > size {
		old = new - size
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for seq := old + 1; seq <= new; seq++ {
		slot := seq & (size - 1)
		if s.seq[slot] == seq {
			obs(seq, now-s.ts[slot])
		}
	}
}

// lookup returns seq's send timestamp if it is still in the ring.
func (s *sendTimes) lookup(seq uint64) (int64, bool) {
	slot := seq & (1<<sendTimeRingBits - 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq[slot] != seq {
		return 0, false
	}
	return s.ts[slot], true
}

// slowOp tracks the slowest sampled operation this node has seen
// stabilize, feeding the /debug/trace?op=latest-slow endpoint.
type slowOp struct {
	mu   sync.Mutex
	seq  uint64
	lat  int64
	pred string
	ok   bool
}

func (s *slowOp) update(seq uint64, lat int64, pred string) {
	s.mu.Lock()
	if !s.ok || lat > s.lat {
		s.seq, s.lat, s.pred, s.ok = seq, lat, pred, true
	}
	s.mu.Unlock()
}

func (s *slowOp) get() (seq uint64, lat int64, pred string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq, s.lat, s.pred, s.ok
}

// --- debug snapshot (served at /debug/stabilizer) ---

// PredicateDebug describes one registered predicate in a DebugSnapshot.
type PredicateDebug struct {
	Key       string `json:"key"`
	Source    string `json:"source"`
	Frontier  uint64 `json:"frontier"`
	DependsOn []int  `json:"dependsOn,omitempty"`
}

// DebugSnapshot is a JSON-friendly dump of a node's control-plane state:
// topology, predicate sources, the local origin's frontier table, and the
// traffic snapshot. Served by the cmds' -metrics-addr HTTP endpoint.
type DebugSnapshot struct {
	Self           int                 `json:"self"`
	Nodes          []config.Node       `json:"nodes"`
	StabilityTypes []string            `json:"stabilityTypes"`
	Predicates     []PredicateDebug    `json:"predicates"`
	Acks           map[string][]uint64 `json:"acks"`
	RecvLast       map[int]uint64      `json:"recvLast"`
	LogBase        uint64              `json:"logBase"`
	Stats          Stats               `json:"stats"`
}

// DebugSnapshot captures the node's control-plane state for inspection.
// The reserved reclaim predicate is included so buffer reclamation is
// observable.
func (n *Node) DebugSnapshot() DebugSnapshot {
	d := DebugSnapshot{
		Self:     n.topo.Self,
		Nodes:    append([]config.Node(nil), n.topo.Nodes...),
		RecvLast: n.tr.RecvLastAll(),
		LogBase:  n.log.Base(),
		Stats:    n.Stats(),
		Acks:     make(map[string][]uint64),
	}
	for _, id := range n.types.IDs() {
		d.StabilityTypes = append(d.StabilityTypes, n.types.Name(id))
	}
	for typ, row := range n.selfTable().Snapshot() {
		d.Acks[n.types.Name(typ)] = row
	}
	for _, key := range n.registry.Keys() {
		pd := PredicateDebug{Key: key}
		pd.Source, _ = n.registry.Source(key)
		pd.Frontier, _ = n.registry.Frontier(key)
		pd.DependsOn, _ = n.registry.DependsOn(key)
		d.Predicates = append(d.Predicates, pd)
	}
	return d
}

// Metrics returns the node's view of its metrics registry: the registry
// from Config.Metrics (or the private one created at Open) seen through
// this node's group, so families resolved here carry the node label.
func (n *Node) Metrics() *metrics.Registry { return n.metrics.reg }

// StabilityLatencyHistogram returns the node's headline stability-latency
// histogram for the given predicate key (the child is created on first
// use). It is the series SLO monitors and the bench harness read.
func (n *Node) StabilityLatencyHistogram(key string) *metrics.Histogram {
	return n.metrics.stabLatency.With(key)
}
