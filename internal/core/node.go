// Package core implements the Stabilizer node: the paper's primary
// contribution. A node glues the aggressive streaming data plane
// (internal/transport) to the asynchronous control plane
// (internal/frontier) and exposes the paper's interfaces (§III-D):
//
//   - Send            — sequence and stream a message to every peer
//   - WaitFor         — one-time stability frontier update trigger
//   - MonitorStabilityFrontier — stability frontier update monitor
//   - RegisterPredicate / ChangePredicate — DSL predicate management
//   - ReportStability — application-defined stability reports
//
// Each node owns one outbound stream (primary-site model: only the owner
// updates its data) and mirrors the streams of every other node. Stability
// reports are monotonic and coalesced, so control traffic never blocks the
// data flow (§III-A control/data separation).
package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stabilizer/internal/adaptive"
	"stabilizer/internal/config"
	"stabilizer/internal/dsl"
	"stabilizer/internal/emunet"
	"stabilizer/internal/frontier"
	"stabilizer/internal/metrics"
	"stabilizer/internal/optrace"
	"stabilizer/internal/transport"
	"stabilizer/internal/wire"
)

// ReclaimPredicateKey is the reserved predicate used internally to reclaim
// send-buffer space once a message has been received everywhere (§III-B).
const ReclaimPredicateKey = "__stabilizer_reclaim"

// DefaultStabilizeInterval is the recommended control-plane tick for
// deferred stabilization (Config.StabilizeInterval): long enough to batch a
// burst of ACK updates into one dirty-set drain, short enough that frontier
// visibility lags ground truth imperceptibly next to WAN RTTs.
const DefaultStabilizeInterval = time.Millisecond

// Errors returned by Node methods.
var (
	ErrClosed      = errors.New("core: node closed")
	ErrReservedKey = errors.New("core: predicate key is reserved")
)

// Message is one delivered data-plane message.
type Message struct {
	// Origin is the 1-based index of the node that sent the message.
	Origin int
	// Seq is the origin-assigned sequence number.
	Seq uint64
	// Payload is the application data. The slice is owned by the
	// receiver and may be retained.
	Payload []byte
	// SentAt is the origin's send timestamp.
	SentAt time.Time
}

// DeliverFunc is a data-plane upcall. Upcalls for one origin arrive in
// FIFO order; upcalls for different origins may be concurrent.
type DeliverFunc func(m Message)

// AppMessage is an out-of-band application request or response (used by
// the quorum protocol's read path, among others).
type AppMessage struct {
	From       int
	ID         uint64
	Method     uint16
	IsResponse bool
	Payload    []byte
}

// AppFunc handles application messages.
type AppFunc func(m AppMessage)

// Persister, when configured, is invoked after delivery; a nil error makes
// the node report the "persisted" stability level for the message.
type Persister interface {
	Persist(m Message) error
}

// Config parameterizes a Node.
type Config struct {
	// Topology is the WAN deployment; required.
	Topology *config.Topology
	// Network is the fabric the node dials through; required.
	Network emunet.Network
	// HeartbeatEvery and PeerTimeout tune failure detection; zero values
	// pick transport defaults.
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	// Persister optionally persists delivered messages (see Persister).
	Persister Persister
	// Checkpoint resumes a restarted primary (§III-E); nil starts fresh.
	Checkpoint *Checkpoint
	// DisableAutoReclaim keeps the send buffer forever (useful in tests
	// and ablations). By default the node reclaims buffer space once a
	// message is received everywhere.
	DisableAutoReclaim bool
	// Epoch identifies this process incarnation for reconnect handling.
	Epoch uint64
	// Metrics receives the node's instrumentation (stabilizer_core_*,
	// stabilizer_stability_latency_seconds, and the transport and
	// frontier families). Nil creates a private registry, so metrics are
	// always collected; pass one registry per node — families are
	// node-scoped and would collide if shared.
	Metrics *metrics.Registry
	// Batch tunes the transport's data-plane batching (RTT-adaptive batch
	// byte budgets per link); zero values pick the transport defaults.
	Batch transport.BatchConfig
	// Flow bounds the send log with admission control (byte/entry caps and
	// high/low watermarks); the zero value keeps the log unbounded.
	Flow transport.FlowConfig
	// LogStripes shards send-log appends across that many producer
	// stripes (per-stripe mutex, one shared atomic sequence) so
	// concurrent senders stop contending on a single lock. 0 picks
	// transport.DefaultLogStripes(); 1 keeps the classic single-stripe
	// log. Ordering, flow control, and truncation semantics are
	// identical at every setting.
	LogStripes int
	// Stall configures degraded-mode stall detection and blame attribution
	// (see StallConfig); the zero value disables the monitor.
	Stall StallConfig
	// DialTimeout bounds each transport connect attempt, handshake
	// included; zero picks the transport default (2s).
	DialTimeout time.Duration
	// Trace configures the per-operation lifecycle flight recorder
	// (sampling rate and ring size); the zero value disables tracing and
	// keeps every hot path allocation-free.
	Trace optrace.Config
	// StabilizeInterval defers predicate stabilization onto a periodic
	// control-plane tick: ACK ingestion only marks the affected predicates
	// dirty, and a background drain every StabilizeInterval re-evaluates
	// them, releases waiters and fires monitors. Batching takes frontier
	// evaluation off the append/ACK hot path at the cost of frontier
	// visibility lagging ground truth by at most one interval.
	// DefaultStabilizeInterval (1ms) is a good starting point; the zero
	// value keeps the legacy inline mode (stabilize synchronously on every
	// ACK advance).
	StabilizeInterval time.Duration
	// Adaptive, when set, starts a closed-loop consistency controller at
	// Open: the ladder's strongest rung is registered under Spec.Key and
	// the controller steps it down (and back up) against the stability
	// SLO. Equivalent to calling StartAdaptive right after Open.
	Adaptive *AdaptiveSpec
}

// AdaptiveSpec wires an SLO-driven predicate controller into a node: the
// ladder's rung 0 predicate is registered under Key at Open and an
// adaptive.Controller steps the active predicate down the ladder when the
// stability SLO burns (or the frontier stalls) and back up, with
// hysteresis, when it recovers.
type AdaptiveSpec struct {
	// Key is the predicate key the controller owns.
	Key string
	// Ladder orders the rungs, strongest first (adaptive.NewLadder /
	// adaptive.ParseLadder).
	Ladder adaptive.Ladder
	// Config is the controller tuning (SLO target, windows, hysteresis).
	Config adaptive.Config
}

// Checkpoint captures the durable control-plane state of a node so a
// restarted primary resumes sequence numbering and frontier tracking where
// it left off (§III-E).
type Checkpoint struct {
	// NextSeq is the next sequence number to assign.
	NextSeq uint64 `json:"nextSeq"`
	// SelfAcks is the ACK recorder snapshot for the local origin's
	// stream, keyed by stability-type id.
	SelfAcks map[uint16][]uint64 `json:"selfAcks"`
}

// Node is one Stabilizer WAN node.
type Node struct {
	topo     *config.Topology
	types    *frontier.Types
	tables   []*frontier.Table // index origin-1
	registry *frontier.Registry
	log      *transport.SendLog
	tr       *transport.Transport
	env      *topoEnv

	persister Persister

	metrics   *coreMetrics
	sendTimes sendTimes
	stall     *stallState
	trace     *optrace.Recorder // nil when tracing is disabled
	slow      slowOp

	mu            sync.Mutex
	deliverFns    []DeliverFunc
	appFns        []AppFunc
	peerDownFns   []peerHook
	peerUpFns     []peerHook
	nextPeerHook  int
	customByName  map[string]uint16
	reclaimCancel func()
	adaptiveCtrls map[string]*adaptive.Controller

	closed atomic.Bool
	nowFn  func() time.Time
}

// Open starts a single Stabilizer node and connects it to its peers. It is
// a thin wrapper over OpenCluster booting exactly Topology.Self; processes
// hosting several WAN nodes should call OpenCluster directly so all of them
// share one node-labeled metrics registry.
func Open(cfg Config) (*Node, error) {
	if cfg.Topology == nil {
		return nil, errors.New("core: Config.Topology is required")
	}
	if cfg.Network == nil {
		return nil, errors.New("core: Config.Network is required")
	}
	self := cfg.Topology.Self
	cl, err := OpenCluster(ClusterConfig{
		Topology:           cfg.Topology,
		Network:            cfg.Network,
		Nodes:              []int{self},
		Metrics:            cfg.Metrics,
		HeartbeatEvery:     cfg.HeartbeatEvery,
		PeerTimeout:        cfg.PeerTimeout,
		Batch:              cfg.Batch,
		Flow:               cfg.Flow,
		Stall:              cfg.Stall,
		Trace:              cfg.Trace,
		DialTimeout:        cfg.DialTimeout,
		DisableAutoReclaim: cfg.DisableAutoReclaim,
		StabilizeInterval:  cfg.StabilizeInterval,
		Adaptive:           cfg.Adaptive,
		Configure: func(id int, c *Config) {
			// Per-node state only a single-node caller can supply.
			c.Persister = cfg.Persister
			c.Checkpoint = cfg.Checkpoint
			c.Epoch = cfg.Epoch
		},
	})
	if err != nil {
		return nil, err
	}
	return cl.Node(self), nil
}

// openNode boots one node. cfg.Metrics, when set, is the registry shared by
// the process: openNode derives this node's group view from it, so every
// family the node touches carries a node label.
func openNode(cfg Config) (*Node, error) {
	if cfg.Topology == nil {
		return nil, errors.New("core: Config.Topology is required")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Network == nil {
		return nil, errors.New("core: Config.Network is required")
	}
	topo := cfg.Topology.Clone()
	n := topo.N()

	types := frontier.NewTypes()
	tables := make([]*frontier.Table, n)
	for i := range tables {
		tables[i] = frontier.NewTable(n)
	}
	env := &topoEnv{topo: topo, types: types}
	selfTable := tables[topo.Self-1]
	registry := frontier.NewRegistry(env, selfTable)

	firstSeq := uint64(1)
	if cfg.Checkpoint != nil {
		firstSeq = cfg.Checkpoint.NextSeq
		selfTable.Restore(cfg.Checkpoint.SelfAcks)
	}
	stripes := cfg.LogStripes
	if stripes == 0 {
		stripes = transport.DefaultLogStripes()
	}
	flow := cfg.Flow
	if flow.Mode == transport.FlowSpill && flow.SpillDir != "" {
		// Many nodes of one cluster commonly share a Config (and thus a
		// SpillDir); give each its own segment namespace so restarting
		// node i recovers exactly node i's backlog.
		flow.SpillDir = filepath.Join(flow.SpillDir, fmt.Sprintf("node%d", topo.Self))
	}
	log, err := transport.NewSendLogTiered(firstSeq, flow, stripes)
	if err != nil {
		return nil, fmt.Errorf("core: node %d send log: %w", topo.Self, err)
	}

	mreg := cfg.Metrics
	if mreg == nil {
		mreg = metrics.NewRegistry()
	}
	// Everything this node instruments — core, frontier, transport, stall
	// families — goes through the node-labeled view, so any number of
	// in-process nodes can share one registry and one scrape.
	mreg = mreg.NodeGroup(strconv.Itoa(topo.Self))

	node := &Node{
		topo:         topo,
		types:        types,
		tables:       tables,
		registry:     registry,
		log:          log,
		env:          env,
		persister:     cfg.Persister,
		metrics:       newCoreMetrics(mreg, log),
		customByName:  make(map[string]uint16),
		adaptiveCtrls: make(map[string]*adaptive.Controller),
		trace:        optrace.New(topo.Self, cfg.Trace),
		nowFn:        time.Now,
	}
	registry.EnableMetrics(mreg)
	if node.trace != nil {
		node.metrics.initStageMetrics()
	}
	// Turn frontier advances into the headline stability-latency samples:
	// each sequence crossing a predicate's frontier is timed from its Send.
	registry.OnAdvance(func(key string, old, new uint64) {
		// Stabilize is a cumulative watermark, recorded for every
		// predicate (the reclaim pseudo-predicate included) whenever the
		// recorder is live — coalesced control-plane rate, not data rate.
		if rec := node.trace; rec != nil {
			rec.Record(optrace.StageStabilize, node.topo.Self, new, 0,
				rec.Label(key), node.nowFn().UnixNano())
		}
		if key == ReclaimPredicateKey {
			node.metrics.reclaimSeq.Set(int64(new))
			return
		}
		h := node.metrics.stabLatency.With(key)
		now := node.nowFn().UnixNano()
		node.sendTimes.observeRange(old, new, now, func(seq uint64, lat int64) {
			h.Observe(lat)
			if node.trace.Sampled(node.topo.Self, seq) {
				node.slow.update(seq, lat, key)
			}
		})
	})
	// Materialize the well-known stability rows so the completeness rule
	// (UpdateAll on Send) covers them from the first message.
	head := log.Head()
	for _, typ := range []uint16{frontier.TypeReceived, frontier.TypePersisted, frontier.TypeDelivered} {
		selfTable.EnsureType(typ, topo.Self, head)
	}

	tcfg := transport.Config{
		Self:           topo.Self,
		N:              n,
		Network:        cfg.Network,
		Handler:        (*trHandler)(node),
		Log:            log,
		HeartbeatEvery: cfg.HeartbeatEvery,
		PeerTimeout:    cfg.PeerTimeout,
		Epoch:          cfg.Epoch,
		Metrics:        mreg,
		Batch:          cfg.Batch,
		DialTimeout:    cfg.DialTimeout,
		Trace:          node.trace,
	}
	self := topo.Nodes[topo.Self-1]
	tcfg.TopoTags.AZ, tcfg.TopoTags.Region = self.AZ, self.Region
	tcfg.PeerTags = make(map[int]transport.TopoTag, n)
	for i, tn := range topo.Nodes {
		tcfg.PeerTags[i+1] = transport.TopoTag{AZ: tn.AZ, Region: tn.Region}
	}
	tr, err := transport.New(tcfg)
	if err != nil {
		return nil, err
	}
	node.tr = tr
	node.initStallState(cfg.Stall, mreg)

	if !cfg.DisableAutoReclaim && n > 1 {
		if err := registry.Register(ReclaimPredicateKey, "MIN($ALLWNODES)"); err != nil {
			return nil, fmt.Errorf("core: install reclaim predicate: %w", err)
		}
		cancel, err := registry.Monitor(ReclaimPredicateKey, func(f uint64) {
			log.TruncateThrough(f)
		})
		if err != nil {
			return nil, fmt.Errorf("core: monitor reclaim predicate: %w", err)
		}
		node.reclaimCancel = cancel
	}

	// Deferred mode starts after every predicate install above so the first
	// tick sees a fully indexed registry; with the zero interval this is a
	// no-op and stabilization stays inline.
	registry.StartDeferred(cfg.StabilizeInterval)

	if err := tr.Start(); err != nil {
		registry.Close()
		return nil, err
	}
	if cfg.Adaptive != nil {
		if _, err := node.StartAdaptive(cfg.Adaptive.Key, cfg.Adaptive.Ladder, cfg.Adaptive.Config); err != nil {
			node.Close()
			return nil, fmt.Errorf("core: start adaptive controller: %w", err)
		}
	}
	return node, nil
}

// Close shuts the node down.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	// Stop the adaptive controllers first: they drive ChangePredicate into
	// the registry this teardown is about to close.
	n.mu.Lock()
	ctrls := make([]*adaptive.Controller, 0, len(n.adaptiveCtrls))
	for _, c := range n.adaptiveCtrls {
		ctrls = append(ctrls, c)
	}
	n.mu.Unlock()
	for _, c := range ctrls {
		c.Close()
	}
	n.stopStallMonitor()
	if n.reclaimCancel != nil {
		n.reclaimCancel()
	}
	// Stop the deferred stabilization tick (final drain included) before
	// tearing down the log it may still truncate through the reclaim
	// monitor.
	n.registry.Close()
	n.log.Close()
	return n.tr.Close()
}

// Self returns the local node's 1-based index.
func (n *Node) Self() int { return n.topo.Self }

// Topology returns a copy of the node's topology.
func (n *Node) Topology() *config.Topology { return n.topo.Clone() }

// --- data plane ---

// Send assigns the next sequence number to payload and streams it to every
// peer asynchronously. It returns as soon as the message is buffered: the
// semantics of a bare Send is local stability only — callers wanting a
// stronger guarantee follow up with WaitFor on a predicate matching their
// consistency model (paper §V-A).
//
// The payload is copied; callers may reuse the slice.
func (n *Node) Send(payload []byte) (uint64, error) {
	if n.closed.Load() {
		return 0, ErrClosed
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	return n.sendOwned(buf)
}

// SendNoCopy is Send without the defensive copy, for callers that promise
// not to mutate payload afterwards (bulk paths such as file backup).
func (n *Node) SendNoCopy(payload []byte) (uint64, error) {
	if n.closed.Load() {
		return 0, ErrClosed
	}
	return n.sendOwned(payload)
}

// SendCtx is Send with cancellation: when Config.Flow blocks the append at
// the send-log cap, a done ctx aborts the wait with ctx.Err(). In fail-fast
// mode it returns transport.ErrBackpressure immediately instead.
func (n *Node) SendCtx(ctx context.Context, payload []byte) (uint64, error) {
	if n.closed.Load() {
		return 0, ErrClosed
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	return n.sendOwnedCtx(ctx, buf)
}

// SendNoCopyCtx combines SendNoCopy and SendCtx: no defensive copy, and a
// done ctx aborts a backpressure-blocked append with ctx.Err().
func (n *Node) SendNoCopyCtx(ctx context.Context, payload []byte) (uint64, error) {
	if n.closed.Load() {
		return 0, ErrClosed
	}
	return n.sendOwnedCtx(ctx, payload)
}

func (n *Node) sendOwned(payload []byte) (uint64, error) {
	return n.sendOwnedCtx(nil, payload)
}

func (n *Node) sendOwnedCtx(ctx context.Context, payload []byte) (uint64, error) {
	sentAt := n.nowFn().UnixNano()
	seq, err := n.log.AppendCtx(ctx, payload, sentAt)
	if err != nil {
		if errors.Is(err, transport.ErrLogClosed) {
			return 0, ErrClosed
		}
		// ErrBackpressure (fail-fast mode) and context errors (cancelled
		// blocking append) pass through so callers can shed or retry.
		return 0, err
	}
	n.sendTimes.record(seq, sentAt)
	if rec := n.trace; rec != nil && rec.Sampled(n.topo.Self, seq) {
		rec.Record(optrace.StageAppend, n.topo.Self, seq, 0, 0, sentAt)
	}
	n.metrics.sends.Inc()
	n.metrics.sendBytes.Add(int64(len(payload)))
	// Completeness rule (§III-C): every stability property holds at the
	// originating node the moment the message exists.
	advanced := n.selfTable().UpdateAll(n.topo.Self, seq)
	n.tr.NotifyData()
	if advanced {
		n.registry.NoteNodeUpdate(n.topo.Self)
	}
	return seq, nil
}

// OnDeliver registers a data-plane upcall for messages from remote origins.
func (n *Node) OnDeliver(fn DeliverFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.deliverFns = append(n.deliverFns, fn)
}

// OnApp registers a handler for out-of-band application messages.
func (n *Node) OnApp(fn AppFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.appFns = append(n.appFns, fn)
}

// peerHook is one OnPeerDown/OnPeerUp registration; the id makes it
// detachable via the returned cancel.
type peerHook struct {
	id int
	fn func(peer int)
}

// detachPeerHook removes the hook with the given id from *list (which is
// either peerDownFns or peerUpFns). Caller must NOT hold n.mu.
func (n *Node) detachPeerHook(list *[]peerHook, id int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	hooks := (*list)[:0]
	for _, h := range *list {
		if h.id != id {
			hooks = append(hooks, h)
		}
	}
	*list = hooks
}

// OnPeerDown registers a callback fired when a peer is suspected failed.
// The paper's recovery recipe (§III-E): the application inspects which
// predicates depend on the dead node (PredicateDependsOn) and adjusts them
// with ChangePredicate. The returned cancel detaches the callback
// (idempotent); a nil fn is ignored and gets a no-op cancel.
func (n *Node) OnPeerDown(fn func(peer int)) (cancel func()) {
	if fn == nil {
		return func() {}
	}
	n.mu.Lock()
	id := n.nextPeerHook
	n.nextPeerHook++
	n.peerDownFns = append(n.peerDownFns, peerHook{id: id, fn: fn})
	n.mu.Unlock()
	return func() { n.detachPeerHook(&n.peerDownFns, id) }
}

// OnPeerUp registers a callback fired when a peer is (re)heard from. The
// returned cancel detaches it, mirroring OnPeerDown.
func (n *Node) OnPeerUp(fn func(peer int)) (cancel func()) {
	if fn == nil {
		return func() {}
	}
	n.mu.Lock()
	id := n.nextPeerHook
	n.nextPeerHook++
	n.peerUpFns = append(n.peerUpFns, peerHook{id: id, fn: fn})
	n.mu.Unlock()
	return func() { n.detachPeerHook(&n.peerUpFns, id) }
}

// SendApp sends an out-of-band application message to one peer.
func (n *Node) SendApp(to int, id uint64, method uint16, isResponse bool, payload []byte) error {
	if n.closed.Load() {
		return ErrClosed
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	return n.tr.SendApp(to, &wire.App{
		ID:         id,
		Method:     method,
		IsResponse: isResponse,
		From:       uint16(n.topo.Self),
		Payload:    buf,
	})
}

// --- control plane ---

// RegisterStabilityType registers an application-defined stability level
// ("verified", "countersigned", ...) usable as a '.suffix' in predicates
// and with ReportStability.
func (n *Node) RegisterStabilityType(name string) error {
	id, err := n.types.Register(name)
	if err != nil {
		return err
	}
	// Completeness: the local origin trivially satisfies the new level
	// for everything it has sent so far.
	n.selfTable().EnsureType(id, n.topo.Self, n.log.Head())
	n.mu.Lock()
	n.customByName[name] = id
	n.mu.Unlock()
	return nil
}

// ReportStability records that this node has reached the named stability
// level for origin's messages up to seq, and broadcasts the (monotonic)
// report to every peer.
func (n *Node) ReportStability(origin int, typeName string, seq uint64) error {
	if n.closed.Load() {
		return ErrClosed
	}
	typ, err := n.types.Lookup(typeName)
	if err != nil {
		return err
	}
	if origin < 1 || origin > n.topo.N() {
		return fmt.Errorf("core: origin %d out of range", origin)
	}
	advanced := n.tables[origin-1].Update(n.topo.Self, typ, seq)
	n.tr.QueueAck(wire.Ack{
		Origin: uint16(origin),
		By:     uint16(n.topo.Self),
		Type:   typ,
		Seq:    seq,
	})
	if advanced && origin == n.topo.Self {
		n.registry.NoteCellUpdate(n.topo.Self, typ)
	}
	return nil
}

// RegisterPredicate compiles a DSL predicate and installs it under key
// (paper register_predicate). The predicate evaluates the stability of the
// local node's outbound stream.
func (n *Node) RegisterPredicate(key, source string) error {
	if key == ReclaimPredicateKey {
		return fmt.Errorf("%w: %q", ErrReservedKey, key)
	}
	return n.registry.Register(key, source)
}

// RegisterPredicates installs a batch of predicates atomically: every
// source must compile and every key must be new (and none reserved), or
// nothing is registered at all. Keys are validated in sorted order, so the
// first error reported is deterministic regardless of map iteration.
func (n *Node) RegisterPredicates(preds map[string]string) error {
	if _, ok := preds[ReclaimPredicateKey]; ok {
		return fmt.Errorf("%w: %q", ErrReservedKey, ReclaimPredicateKey)
	}
	return n.registry.RegisterBatch(preds)
}

// ChangePredicate swaps the predicate under key at runtime (paper
// change_predicate, exercised by the dynamic reconfiguration experiment).
func (n *Node) ChangePredicate(key, source string) error {
	if key == ReclaimPredicateKey {
		return fmt.Errorf("%w: %q", ErrReservedKey, key)
	}
	return n.registry.Change(key, source)
}

// ChangeReclaimPredicate swaps the reserved reclaim predicate at runtime —
// the degraded-mode escape hatch: when a stalled peer pins the reclaim
// frontier and admission control has capped the send log, falling back to a
// weaker predicate (e.g. a majority KTH_MIN) lets reclaim advance and
// appends resume. Caveat: entries truncated under the weaker rule are gone
// from the retransmission buffer, so a peer excluded by the fallback that
// later heals will observe a gap in this node's stream and must recover out
// of band (snapshot/state transfer). Returns an error when auto-reclaim is
// disabled (no reclaim predicate is registered).
func (n *Node) ChangeReclaimPredicate(source string) error {
	if n.closed.Load() {
		return ErrClosed
	}
	return n.registry.Change(ReclaimPredicateKey, source)
}

// RemovePredicate deletes the predicate under key.
func (n *Node) RemovePredicate(key string) error {
	if key == ReclaimPredicateKey {
		return fmt.Errorf("%w: %q", ErrReservedKey, key)
	}
	return n.registry.Remove(key)
}

// Predicates lists the application-registered predicate keys.
func (n *Node) Predicates() []string {
	keys := n.registry.Keys()
	out := keys[:0]
	for _, k := range keys {
		if k != ReclaimPredicateKey {
			out = append(out, k)
		}
	}
	return out
}

// PredicateSource returns the DSL source registered under key.
func (n *Node) PredicateSource(key string) (string, error) {
	return n.registry.Source(key)
}

// PredicateDependsOn lists the WAN nodes the predicate under key reads.
func (n *Node) PredicateDependsOn(key string) ([]int, error) {
	return n.registry.DependsOn(key)
}

// WaitFor blocks until the stability frontier of the named predicate
// reaches seq (paper waitfor).
func (n *Node) WaitFor(ctx context.Context, seq uint64, key string) error {
	return n.registry.WaitFor(ctx, seq, key)
}

// MonitorStabilityFrontier registers fn to run with the newest frontier
// each time the named predicate advances (paper
// monitor_stability_frontier). Intermediate values may be skipped; an
// upcall with sequence s implies the stability of every message ≤ s.
func (n *Node) MonitorStabilityFrontier(key string, fn func(seq uint64)) (cancel func(), err error) {
	return n.registry.Monitor(key, frontier.MonitorFunc(fn))
}

// StabilityFrontier returns the last computed frontier of the named
// predicate (paper get_stability_frontier).
func (n *Node) StabilityFrontier(key string) (uint64, error) {
	return n.registry.Frontier(key)
}

// OnFrontierAdvance registers fn to run after any registered predicate's
// frontier advances, with the predicate key and the old and new frontiers.
// Unlike MonitorStabilityFrontier it covers every predicate (the reserved
// reclaim predicate included) and reports the previous value, which is what
// invariant checkers need to assert monotonicity. Hooks accumulate until
// their returned cancel detaches them, and are safe to add on a live node;
// fn runs on the control-plane recompute path, so keep it short. A nil fn
// is ignored and gets a no-op cancel.
func (n *Node) OnFrontierAdvance(fn func(key string, old, new uint64)) (cancel func()) {
	return n.registry.OnAdvance(fn)
}

// StartAdaptive registers the ladder's strongest rung under key and starts
// a closed-loop controller that steps the active predicate down the ladder
// when the stability SLO burns (or the frontier stalls) and back up, with
// hysteresis, when it recovers. Every rung is validated through the real
// DSL compile path up front, so a broken rung fails here instead of
// mid-incident. If key is already registered, the existing predicate is
// swapped to rung 0. One controller per key; the controller stops at node
// Close (or its own Close), leaving the last installed rung in place.
func (n *Node) StartAdaptive(key string, ladder adaptive.Ladder, cfg adaptive.Config) (*adaptive.Controller, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	if key == ReclaimPredicateKey {
		return nil, fmt.Errorf("%w: %q", ErrReservedKey, key)
	}
	if ladder.Len() < 2 {
		return nil, errors.New("core: adaptive ladder is empty or unvalidated; build it with adaptive.NewLadder")
	}
	for _, r := range ladder.Rungs() {
		if _, err := dsl.Compile(r.Source, n.env); err != nil {
			return nil, fmt.Errorf("core: adaptive rung %q: %w", r.Name, err)
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.adaptiveCtrls[key]; dup {
		return nil, fmt.Errorf("core: adaptive controller already running for %q", key)
	}
	if n.registry.Has(key) {
		if err := n.registry.Change(key, ladder.Rung(0).Source); err != nil {
			return nil, err
		}
	} else if err := n.registry.Register(key, ladder.Rung(0).Source); err != nil {
		return nil, err
	}
	ctrl, err := adaptive.Start(n, key, ladder, cfg, n.metrics.reg)
	if err != nil {
		return nil, err
	}
	// Swap events go into the flight recorder as stabilize-stage events
	// labeled adaptive:<direction>:<rung>, so a trace of an incident shows
	// when the guarantee changed relative to the op stream around it.
	if rec := n.trace; rec != nil {
		ctrl.OnTransition(func(tr adaptive.Transition) {
			f, _ := n.registry.Frontier(key)
			label := rec.Label("adaptive:" + string(tr.Direction) + ":" + tr.ToRung.Name)
			rec.Record(optrace.StageStabilize, n.topo.Self, f, tr.To, label, n.nowFn().UnixNano())
		})
	}
	n.adaptiveCtrls[key] = ctrl
	return ctrl, nil
}

// AdaptiveController returns the running controller for key, or nil when
// none was started.
func (n *Node) AdaptiveController(key string) *adaptive.Controller {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.adaptiveCtrls[key]
}

// AdaptiveControllers returns every running adaptive controller, sorted by
// predicate key.
func (n *Node) AdaptiveControllers() []*adaptive.Controller {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*adaptive.Controller, 0, len(n.adaptiveCtrls))
	for _, c := range n.adaptiveCtrls {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// RecvLast returns the highest contiguous data sequence received from peer
// over this node's lifetime (volatile: a restarted node starts from 0).
func (n *Node) RecvLast(peer int) uint64 { return n.tr.RecvLast(peer) }

// Eval compiles source against this node's topology and evaluates it once
// against the local origin's ACK recorder, without registering anything.
func (n *Node) Eval(source string) (uint64, error) {
	return n.EvalFor(n.topo.Self, source)
}

// EvalFor evaluates a predicate over another origin's stream: because
// every node receives every node's stability reports, each WAN site can
// independently evaluate the same predicate about the same stream, and
// "all WAN nodes reach the same conclusions eventually" (§III-A). The
// predicate is compiled ad hoc; registered predicates always concern the
// local origin's stream.
func (n *Node) EvalFor(origin int, source string) (uint64, error) {
	if origin < 1 || origin > n.topo.N() {
		return 0, fmt.Errorf("core: origin %d out of range", origin)
	}
	prog, err := dsl.Compile(source, n.env)
	if err != nil {
		return 0, err
	}
	return n.tables[origin-1].EvalLocked(prog), nil
}

// AckValue reads one recorder cell: the highest sequence of origin's
// stream that node has acknowledged at the named stability level.
func (n *Node) AckValue(origin, node int, typeName string) (uint64, error) {
	typ, err := n.types.Lookup(typeName)
	if err != nil {
		return 0, err
	}
	if origin < 1 || origin > n.topo.N() {
		return 0, fmt.Errorf("core: origin %d out of range", origin)
	}
	return n.tables[origin-1].Value(node, typ), nil
}

// Checkpoint exports the control-plane state needed to restart the node as
// the same primary (§III-E).
func (n *Node) Checkpoint() *Checkpoint {
	return &Checkpoint{
		NextSeq:  n.log.NextSeq(),
		SelfAcks: n.selfTable().Snapshot(),
	}
}

// NextSeq returns the sequence number the next Send will be assigned.
func (n *Node) NextSeq() uint64 { return n.log.NextSeq() }

// BufferedBytes reports the bytes currently held in the send buffer —
// memory plus any on-disk spill tier (the total retransmission backlog).
func (n *Node) BufferedBytes() int64 { return n.log.Bytes() }

// MemoryBufferedBytes reports only the in-memory portion of the send
// buffer. Under FlowSpill this is the number the memory cap bounds, while
// BufferedBytes keeps growing with the disk tier.
func (n *Node) MemoryBufferedBytes() int64 { return n.log.MemoryBytes() }

// SpilledBytes reports the bytes parked in the send log's on-disk spill
// tier (0 unless FlowSpill is configured).
func (n *Node) SpilledBytes() int64 { return n.log.SpilledBytes() }

// SpillReadbackBytes reports the cumulative bytes the send log has served
// to peers from its spill tier (0 unless FlowSpill is configured).
func (n *Node) SpillReadbackBytes() int64 { return n.log.SpillReadbackBytes() }

// BytesSent reports total frame bytes written to peers.
func (n *Node) BytesSent() int64 { return n.tr.BytesSent() }

// Stats is a point-in-time snapshot of a node's data- and control-plane
// state, for dashboards and debugging. It is a cheap view over the same
// counters the metrics registry exposes.
type Stats struct {
	// Self is the local node index; N the cluster size.
	Self, N int
	// NextSeq is the next outbound sequence number.
	NextSeq uint64
	// BufferedBytes/BufferedMessages describe the retransmission buffer.
	BufferedBytes    int64
	BufferedMessages int
	// Sends counts messages sequenced locally; Deliveries counts
	// remote-origin messages handed to the application.
	Sends      int64
	Deliveries int64
	// BytesSent/BytesRecv count all frame bytes written to / read from
	// peers; DataFramesSent/DataFramesRecv count data frames
	// (retransmissions and duplicates included).
	BytesSent      int64
	BytesRecv      int64
	DataFramesSent int64
	DataFramesRecv int64
	// ResentFrames counts data frames rewritten after reconnects;
	// Reconnects counts successful re-dials; FailureDetectorTrips counts
	// peers declared suspect.
	ResentFrames         int64
	Reconnects           int64
	FailureDetectorTrips int64
	// RecvLast is the highest contiguous data sequence received per peer.
	RecvLast map[int]uint64
	// Waiters is the number of WaitFor callers currently blocked.
	Waiters int
	// Predicates maps each registered predicate to its current frontier.
	Predicates map[string]uint64
}

// Stats captures a snapshot of the node's state.
func (n *Node) Stats() Stats {
	s := Stats{
		Self:                 n.topo.Self,
		N:                    n.topo.N(),
		NextSeq:              n.log.NextSeq(),
		BufferedBytes:        n.log.Bytes(),
		BufferedMessages:     n.log.Len(),
		Sends:                n.metrics.sends.Value(),
		Deliveries:           n.metrics.deliveries.Value(),
		BytesSent:            n.tr.BytesSent(),
		BytesRecv:            n.tr.BytesRecv(),
		DataFramesSent:       n.tr.DataSent(),
		DataFramesRecv:       n.tr.DataRecv(),
		ResentFrames:         n.tr.Resent(),
		Reconnects:           n.tr.Reconnects(),
		FailureDetectorTrips: n.tr.FailureDetectorTrips(),
		RecvLast:             n.tr.RecvLastAll(),
		Waiters:              n.registry.WaiterCount(),
		Predicates:           make(map[string]uint64),
	}
	for _, key := range n.Predicates() {
		if f, err := n.registry.Frontier(key); err == nil {
			s.Predicates[key] = f
		}
	}
	return s
}

func (n *Node) selfTable() *frontier.Table { return n.tables[n.topo.Self-1] }

// --- transport handler ---

// trHandler adapts Node to transport.Handler without exporting the
// callback methods on Node itself.
type trHandler Node

var _ transport.Handler = (*trHandler)(nil)

// HandleData implements transport.Handler: deliver, then report stability.
func (h *trHandler) HandleData(from int, d *wire.Data) {
	n := (*Node)(h)
	m := Message{
		Origin:  from,
		Seq:     d.Seq,
		Payload: d.Payload,
		SentAt:  time.Unix(0, d.SentUnixNano),
	}
	n.metrics.deliveries.Inc()
	handleStart := n.nowFn().UnixNano()
	n.metrics.deliveryLag.Observe(handleStart - d.SentUnixNano)
	traced := n.trace != nil && n.trace.Sampled(from, d.Seq)
	// Completeness rule (§III-C), applied remotely: learning of message
	// d.Seq implies the ORIGIN trivially holds every stability property
	// for it, so the origin's own row advances in our recorder too —
	// this is what lets every WAN node evaluate predicates about any
	// origin's stream and reach the same conclusions.
	for _, typ := range []uint16{frontier.TypeReceived, frontier.TypePersisted, frontier.TypeDelivered} {
		n.tables[from-1].EnsureType(typ, from, d.Seq)
	}
	n.tables[from-1].UpdateAll(from, d.Seq)

	// "received" is reported before the application upcall: the bytes
	// are in Stabilizer's hands.
	n.tables[from-1].Update(n.topo.Self, frontier.TypeReceived, d.Seq)
	n.tr.QueueAck(wire.Ack{Origin: uint16(from), By: uint16(n.topo.Self), Type: frontier.TypeReceived, Seq: d.Seq})

	n.mu.Lock()
	fns := make([]DeliverFunc, len(n.deliverFns))
	copy(fns, n.deliverFns)
	n.mu.Unlock()
	for _, fn := range fns {
		fn(m)
	}
	if traced {
		// Deliver is stamped after the upcalls but before the delivered
		// row advances, so a trace can never show stabilization racing
		// ahead of the delivery it depends on.
		done := n.nowFn().UnixNano()
		n.trace.Record(optrace.StageDeliver, from, d.Seq, 0, 0, done)
		n.metrics.stageDeliver.Observe(done - handleStart)
	}
	n.tables[from-1].Update(n.topo.Self, frontier.TypeDelivered, d.Seq)
	n.tr.QueueAck(wire.Ack{Origin: uint16(from), By: uint16(n.topo.Self), Type: frontier.TypeDelivered, Seq: d.Seq})

	if n.persister != nil {
		if err := n.persister.Persist(m); err == nil {
			n.tables[from-1].Update(n.topo.Self, frontier.TypePersisted, d.Seq)
			n.tr.QueueAck(wire.Ack{Origin: uint16(from), By: uint16(n.topo.Self), Type: frontier.TypePersisted, Seq: d.Seq})
		}
	}
}

// HandleAck implements transport.Handler.
func (h *trHandler) HandleAck(a *wire.Ack) {
	n := (*Node)(h)
	origin := int(a.Origin)
	if origin < 1 || origin > n.topo.N() {
		return
	}
	if rec := n.trace; rec != nil {
		// Recorded before the table update so the ack's timestamp always
		// precedes any Stabilize it enables. Acks are coalesced monotone
		// watermarks, so this runs at control-plane rate.
		now := n.nowFn().UnixNano()
		rec.Record(optrace.StageAck, origin, a.Seq, int(a.By), rec.Label(n.types.Name(a.Type)), now)
		if origin == n.topo.Self && rec.Sampled(origin, a.Seq) {
			if sentAt, ok := n.sendTimes.lookup(a.Seq); ok {
				n.metrics.stageAckReturn.Observe(now - sentAt)
			}
		}
	}
	advanced := n.tables[origin-1].Update(int(a.By), a.Type, a.Seq)
	if advanced && origin == n.topo.Self {
		n.registry.NoteCellUpdate(int(a.By), a.Type)
	}
}

// HandleApp implements transport.Handler.
func (h *trHandler) HandleApp(from int, a *wire.App) {
	n := (*Node)(h)
	n.mu.Lock()
	fns := make([]AppFunc, len(n.appFns))
	copy(fns, n.appFns)
	n.mu.Unlock()
	m := AppMessage{
		From:       from,
		ID:         a.ID,
		Method:     a.Method,
		IsResponse: a.IsResponse,
		Payload:    a.Payload,
	}
	for _, fn := range fns {
		fn(m)
	}
}

// PeerUp implements transport.Handler.
func (h *trHandler) PeerUp(peer int) {
	n := (*Node)(h)
	n.mu.Lock()
	fns := make([]peerHook, len(n.peerUpFns))
	copy(fns, n.peerUpFns)
	n.mu.Unlock()
	for _, hk := range fns {
		hk.fn(peer)
	}
}

// PeerDown implements transport.Handler.
func (h *trHandler) PeerDown(peer int) {
	n := (*Node)(h)
	n.mu.Lock()
	fns := make([]peerHook, len(n.peerDownFns))
	copy(fns, n.peerDownFns)
	n.mu.Unlock()
	for _, hk := range fns {
		hk.fn(peer)
	}
}

// NewDSLEnv builds a dsl.Env from a topology and a stability-type
// registry, for tooling (predcheck, benchmarks) that compiles predicates
// without running a node.
func NewDSLEnv(topo *config.Topology, types *frontier.Types) dsl.Env {
	return &topoEnv{topo: topo, types: types}
}

// --- DSL environment ---

// topoEnv adapts (Topology, Types) to dsl.Env.
type topoEnv struct {
	topo  *config.Topology
	types *frontier.Types
}

var _ dsl.Env = (*topoEnv)(nil)

func (e *topoEnv) N() int           { return e.topo.N() }
func (e *topoEnv) MyNode() int      { return e.topo.Self }
func (e *topoEnv) AllNodes() []int  { return e.topo.AllIndexes() }
func (e *topoEnv) MyAZNodes() []int { return e.topo.MyAZIndexes() }

func (e *topoEnv) AZNodes(name string) ([]int, error) { return e.topo.AZIndexes(name) }

func (e *topoEnv) NodeIndex(name string) (int, error) { return e.topo.IndexOf(name) }

func (e *topoEnv) StabilityType(name string) (uint16, error) { return e.types.Lookup(name) }
