package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"stabilizer/internal/emunet"
	"stabilizer/internal/metrics"
)

func openTestCluster(t *testing.T, n int, nodes []int) (*Cluster, *metrics.Registry) {
	t.Helper()
	net := emunet.NewMemNetwork(nil)
	reg := metrics.NewRegistry()
	cl, err := OpenCluster(ClusterConfig{
		Topology:       flatTopology(n),
		Network:        net,
		Nodes:          nodes,
		Metrics:        reg,
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		net.Close()
		t.Fatalf("open cluster: %v", err)
	}
	t.Cleanup(func() {
		_ = cl.Close()
		_ = net.Close()
	})
	return cl, reg
}

// TestClusterSharedRegistryExposesEveryNode is the tentpole acceptance
// check: one registry, one scrape, every in-process node visible through
// node-labeled families.
func TestClusterSharedRegistryExposesEveryNode(t *testing.T) {
	cl, reg := openTestCluster(t, 3, nil)
	if got := len(cl.Nodes()); got != 3 {
		t.Fatalf("live nodes = %d, want 3", got)
	}

	sender := cl.Node(1)
	if err := sender.RegisterPredicate("all", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 10; i++ {
		seq, err := sender.Send([]byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.WaitAllFor(ctx, last, "all"); err != nil {
		t.Fatalf("WaitAllFor: %v", err)
	}
	if err := cl.WaitAllReceive(ctx, 1, last); err != nil {
		t.Fatalf("WaitAllReceive: %v", err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for id := 1; id <= 3; id++ {
		want := fmt.Sprintf(`stabilizer_core_next_seq{node="%d"}`, id)
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
	// The sender's sends and a receiver's deliveries live in the same
	// family, distinguished only by node label.
	fam := reg.Find("stabilizer_core_sends_total")
	if fam == nil {
		t.Fatal("stabilizer_core_sends_total missing")
	}
	byNode := map[string]float64{}
	for _, m := range fam.Metrics {
		byNode[m.Labels["node"]] = m.Value
	}
	if byNode["1"] != 10 {
		t.Errorf("node 1 sends = %v, want 10", byNode["1"])
	}

	// EvalAllFor agrees with the awaited frontier. WaitAllFor only proved
	// node 1's frontier (the predicate is registered there); the other
	// nodes' ACK tables converge asynchronously, so poll.
	for {
		f, err := cl.EvalAllFor(1, "MIN($ALLWNODES)")
		if err != nil {
			t.Fatalf("EvalAllFor: %v", err)
		}
		if f >= last {
			break
		}
		if ctx.Err() != nil {
			t.Fatalf("EvalAllFor stuck at %d, want >= %d", f, last)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Cluster-wide health covers every node.
	if h := cl.Health(); len(h) != 3 {
		t.Errorf("Health() returned %d entries, want 3", len(h))
	}
}

func TestClusterPartialBoot(t *testing.T) {
	cl, _ := openTestCluster(t, 3, []int{1, 2})
	if cl.Node(3) != nil {
		t.Fatal("node 3 booted despite partial subset")
	}
	if got := cl.IDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("IDs = %v, want [1 2]", got)
	}
	// A majority predicate over the booted pair still stabilizes even with
	// node 3 absent.
	sender := cl.Node(1)
	if err := sender.RegisterPredicate("pair", "KTH_MIN(2, $ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	seq, err := sender.Send([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, seq, "pair"); err != nil {
		t.Fatalf("pair predicate did not stabilize on partial cluster: %v", err)
	}
}

func TestClusterRejectsBadNodeSets(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	for _, nodes := range [][]int{{1, 1}, {0}, {4}, {2, 3, 2}} {
		_, err := OpenCluster(ClusterConfig{
			Topology: flatTopology(3),
			Network:  net,
			Nodes:    nodes,
		})
		if err == nil {
			t.Errorf("OpenCluster(%v) succeeded, want rejection", nodes)
		}
	}
}

func TestClusterCloseOrderedIdempotent(t *testing.T) {
	cl, _ := openTestCluster(t, 3, nil)
	if err := cl.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if cl.Node(1) != nil || len(cl.Nodes()) != 0 {
		t.Fatal("nodes still live after Close")
	}
	if _, err := cl.Restart(1); err == nil {
		t.Fatal("Restart succeeded on a closed cluster")
	}
}

func TestClusterCrashRestart(t *testing.T) {
	cl, _ := openTestCluster(t, 3, nil)
	sender := cl.Node(1)
	var last uint64
	for i := 0; i < 5; i++ {
		seq, err := sender.Send([]byte("pre-crash"))
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.WaitAllReceive(ctx, 1, last); err != nil {
		t.Fatal(err)
	}

	dead, err := cl.Crash(2)
	if err != nil {
		t.Fatalf("crash: %v", err)
	}
	if cl.Node(2) != nil {
		t.Fatal("crashed node still listed live")
	}
	// Post-mortem read on the dead handle: its receive high-water is what
	// the chaos checker feeds RecordCrash.
	if got := dead.RecvLast(1); got != last {
		t.Errorf("dead handle RecvLast = %d, want %d", got, last)
	}
	if _, err := cl.Crash(2); err == nil {
		t.Fatal("double crash succeeded")
	}

	if _, err := cl.Restart(2); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if cl.Node(2) == nil {
		t.Fatal("restarted node not listed live")
	}
	if _, err := cl.Restart(2); err == nil {
		t.Fatal("restart of a running node succeeded")
	}
	// The restarted node catches back up on the sender's stream.
	seq, err := sender.Send([]byte("post-restart"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitAllReceive(ctx, 1, seq); err != nil {
		t.Fatalf("restarted node never caught up: %v", err)
	}
}

func TestClusterWaitAllForUnknownPredicate(t *testing.T) {
	cl, _ := openTestCluster(t, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := cl.WaitAllFor(ctx, 1, "nope"); err == nil {
		t.Fatal("WaitAllFor on unregistered predicate succeeded")
	}
}

// TestClusterConfigureHook checks per-node divergence flows through the
// hook — here, disabling auto-reclaim on one node only.
func TestClusterConfigureHook(t *testing.T) {
	net := emunet.NewMemNetwork(nil)
	defer net.Close()
	var seen []int
	cl, err := OpenCluster(ClusterConfig{
		Topology:       flatTopology(2),
		Network:        net,
		HeartbeatEvery: 20 * time.Millisecond,
		Configure: func(id int, cfg *Config) {
			seen = append(seen, id)
			cfg.Epoch = uint64(10 + id)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("Configure ran for %v, want [1 2]", seen)
	}
}
