// Package wankv is the paper's WAN K/V store (§V-A): a single-data-center
// object store (internal/kvstore) extended with Stabilizer geo-replication.
// Each WAN node has full read-write access to its locally owned pool of
// keys and read-only, asynchronously updated mirrors of every other node's
// pool. The K/V API is extended with the paper's get_stability_frontier,
// register_predicate and change_predicate functions so clients can pick and
// switch consistency models at runtime.
package wankv

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"stabilizer/internal/core"
	"stabilizer/internal/kvstore"
)

// Errors returned by the store.
var (
	ErrBadUpdate = errors.New("wankv: malformed replicated update")
	ErrBadOrigin = errors.New("wankv: origin index out of range")
)

// PutResult describes a committed local write.
type PutResult struct {
	// Seq is the Stabilizer sequence number carrying the update; feed it
	// to WaitStable / stability predicates.
	Seq uint64
	// Version is the store version assigned to the write.
	Version uint64
}

// Store is one node's view of the geo-replicated K/V system.
type Store struct {
	node    *core.Node
	self    int
	mirrors []*kvstore.Store // mirrors[i] holds origin i+1's pool
	onApply func(origin int, key string, ver uint64)

	applyMu   sync.Mutex
	applyCond sync.Cond
	appliedTo []uint64 // appliedTo[i]: highest origin-(i+1) seq applied locally
}

// Option configures a Store.
type Option func(*Store)

// WithLocalStore substitutes a prebuilt store (e.g. one with a WAL) for the
// locally owned pool.
func WithLocalStore(s *kvstore.Store) Option {
	return func(w *Store) { w.mirrors[w.self-1] = s }
}

// WithApplyHook registers a callback invoked after each replicated update
// is applied to a mirror (used by experiments to timestamp deliveries).
func WithApplyHook(fn func(origin int, key string, ver uint64)) Option {
	return func(w *Store) { w.onApply = fn }
}

// New attaches a geo-replicated K/V store to node. It registers a delivery
// upcall on the node; create the store before sending traffic.
func New(node *core.Node, opts ...Option) *Store {
	n := node.Topology().N()
	w := &Store{
		node:      node,
		self:      node.Self(),
		mirrors:   make([]*kvstore.Store, n),
		appliedTo: make([]uint64, n),
	}
	w.applyCond.L = &w.applyMu
	for i := range w.mirrors {
		w.mirrors[i] = kvstore.New()
	}
	for _, o := range opts {
		o(w)
	}
	node.OnDeliver(w.apply)
	return w
}

// Node returns the underlying Stabilizer node.
func (w *Store) Node() *core.Node { return w.node }

// Put writes a new version of key into the locally owned pool and streams
// the update to every mirror. Like the paper's put, it is locally stable on
// return; use WaitStable for stronger guarantees.
func (w *Store) Put(key string, value []byte) (PutResult, error) {
	ver, err := w.local().Put(key, value)
	if err != nil {
		return PutResult{}, err
	}
	v, err := w.local().GetVersion(key, ver)
	if err != nil {
		return PutResult{}, err
	}
	seq, err := w.node.SendNoCopy(encodeUpdate(key, value, ver, v.Time))
	if err != nil {
		return PutResult{}, err
	}
	return PutResult{Seq: seq, Version: ver}, nil
}

// PutCtx is Put with cancellation: when the node's send log is bounded
// (core.Config.Flow) and full, a blocked put aborts with ctx.Err() once ctx
// is done; in fail-fast mode it returns transport.ErrBackpressure
// immediately. The version is committed to the local pool either way — only
// replication is refused — so callers shedding load should retry the same
// key rather than treat the write as lost.
func (w *Store) PutCtx(ctx context.Context, key string, value []byte) (PutResult, error) {
	ver, err := w.local().Put(key, value)
	if err != nil {
		return PutResult{}, err
	}
	v, err := w.local().GetVersion(key, ver)
	if err != nil {
		return PutResult{}, err
	}
	seq, err := w.node.SendNoCopyCtx(ctx, encodeUpdate(key, value, ver, v.Time))
	if err != nil {
		return PutResult{}, err
	}
	return PutResult{Seq: seq, Version: ver}, nil
}

// PutWait is Put followed by WaitStable under the named predicate: the
// write returns only once it satisfies the chosen consistency model.
func (w *Store) PutWait(ctx context.Context, key string, value []byte, predicateKey string) (PutResult, error) {
	res, err := w.Put(key, value)
	if err != nil {
		return PutResult{}, err
	}
	if err := w.node.WaitFor(ctx, res.Seq, predicateKey); err != nil {
		return res, err
	}
	return res, nil
}

// Get reads the latest version of key from the locally owned pool.
func (w *Store) Get(key string) (kvstore.Version, error) {
	return w.local().Get(key)
}

// GetFrom reads the latest mirrored version of key from origin's pool.
// Mirrors are read-only and asynchronously updated.
func (w *Store) GetFrom(origin int, key string) (kvstore.Version, error) {
	m, err := w.mirror(origin)
	if err != nil {
		return kvstore.Version{}, err
	}
	return m.Get(key)
}

// GetByTimeFrom reads origin's newest version of key as of t (the paper's
// get_by_time).
func (w *Store) GetByTimeFrom(origin int, key string, t time.Time) (kvstore.Version, error) {
	m, err := w.mirror(origin)
	if err != nil {
		return kvstore.Version{}, err
	}
	return m.GetByTime(key, t)
}

// Keys lists the keys of origin's pool with the given prefix.
func (w *Store) Keys(origin int, prefix string) ([]string, error) {
	m, err := w.mirror(origin)
	if err != nil {
		return nil, err
	}
	return m.Keys(prefix), nil
}

// RegisterPredicate exposes the paper's register_predicate K/V extension.
func (w *Store) RegisterPredicate(key, source string) error {
	return w.node.RegisterPredicate(key, source)
}

// ChangePredicate exposes the paper's change_predicate K/V extension.
func (w *Store) ChangePredicate(key, source string) error {
	return w.node.ChangePredicate(key, source)
}

// GetStabilityFrontier exposes the paper's get_stability_frontier K/V
// extension: the newest local sequence number satisfying the predicate.
func (w *Store) GetStabilityFrontier(predicateKey string) (uint64, error) {
	return w.node.StabilityFrontier(predicateKey)
}

// WaitStable blocks until the write carried by seq satisfies the named
// predicate.
func (w *Store) WaitStable(ctx context.Context, seq uint64, predicateKey string) error {
	return w.node.WaitFor(ctx, seq, predicateKey)
}

func (w *Store) local() *kvstore.Store { return w.mirrors[w.self-1] }

func (w *Store) mirror(origin int) (*kvstore.Store, error) {
	if origin < 1 || origin > len(w.mirrors) {
		return nil, fmt.Errorf("%w: %d", ErrBadOrigin, origin)
	}
	return w.mirrors[origin-1], nil
}

// WaitApplied blocks until this node's mirror of origin has applied the
// update stream through seq — read-your-writes for mirror reads: a client
// that wrote at the owner (obtaining PutResult.Seq) can hand that sequence
// to any mirror node and read its own write there after WaitApplied
// returns. This is the read-side counterpart of the write predicates
// (paper §IV-B extends predicates to read operations).
func (w *Store) WaitApplied(ctx context.Context, origin int, seq uint64) error {
	if origin < 1 || origin > len(w.mirrors) {
		return fmt.Errorf("%w: %d", ErrBadOrigin, origin)
	}
	if origin == w.self {
		return nil // the owner's pool is always current
	}
	// Canceller: wakes the condition variable when ctx fires. Taking the
	// mutex around Broadcast closes the lost-wakeup window (the waiter
	// is either holding the mutex pre-Wait or parked inside Wait).
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			w.applyMu.Lock()
			w.applyCond.Broadcast()
			w.applyMu.Unlock()
		case <-stop:
		}
	}()

	w.applyMu.Lock()
	defer w.applyMu.Unlock()
	for w.appliedTo[origin-1] < seq {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("wankv: wait applied origin %d seq %d: %w", origin, seq, err)
		}
		w.applyCond.Wait()
	}
	return nil
}

// AppliedThrough reports the highest origin sequence applied locally.
func (w *Store) AppliedThrough(origin int) (uint64, error) {
	if origin < 1 || origin > len(w.mirrors) {
		return 0, fmt.Errorf("%w: %d", ErrBadOrigin, origin)
	}
	w.applyMu.Lock()
	defer w.applyMu.Unlock()
	return w.appliedTo[origin-1], nil
}

// apply installs one replicated update into the origin's mirror.
func (w *Store) apply(m core.Message) {
	key, value, ver, ts, err := decodeUpdate(m.Payload)
	if err != nil {
		return // ignore foreign traffic sharing the node
	}
	if m.Origin == w.self {
		return
	}
	mirror := w.mirrors[m.Origin-1]
	applyErr := mirror.Apply(key, value, ver, ts)
	// The applied watermark advances even for stale duplicates: the data
	// is present either way, and delivery is FIFO per origin.
	w.applyMu.Lock()
	if m.Seq > w.appliedTo[m.Origin-1] {
		w.appliedTo[m.Origin-1] = m.Seq
	}
	w.applyMu.Unlock()
	w.applyCond.Broadcast()
	if applyErr != nil {
		return // stale duplicate after reconnect; safe to drop
	}
	if w.onApply != nil {
		w.onApply(m.Origin, key, ver)
	}
}

// --- update codec ---

// updateMagic distinguishes wankv updates from other payloads sharing the
// data plane.
const updateMagic uint16 = 0x5756 // "WV"

func encodeUpdate(key string, value []byte, ver uint64, ts time.Time) []byte {
	buf := make([]byte, 0, 2+2+len(key)+8+8+len(value))
	buf = binary.BigEndian.AppendUint16(buf, updateMagic)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint64(buf, ver)
	buf = binary.BigEndian.AppendUint64(buf, uint64(ts.UnixNano()))
	buf = append(buf, value...)
	return buf
}

func decodeUpdate(p []byte) (key string, value []byte, ver uint64, ts time.Time, err error) {
	if len(p) < 2+2+8+8 || binary.BigEndian.Uint16(p) != updateMagic {
		return "", nil, 0, time.Time{}, ErrBadUpdate
	}
	klen := int(binary.BigEndian.Uint16(p[2:]))
	rest := p[4:]
	if len(rest) < klen+16 {
		return "", nil, 0, time.Time{}, ErrBadUpdate
	}
	key = string(rest[:klen])
	ver = binary.BigEndian.Uint64(rest[klen:])
	nano := int64(binary.BigEndian.Uint64(rest[klen+8:]))
	value = rest[klen+16:]
	return key, value, ver, time.Unix(0, nano), nil
}
