package wankv

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestWaitAppliedReadYourWrites(t *testing.T) {
	c := startKVCluster(t, 3)
	owner, mirror := c.stores[0], c.stores[1]

	// Write at the owner, then read your own write at a mirror node.
	res, err := owner.Put("profile", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := mirror.WaitApplied(ctx, 1, res.Seq); err != nil {
		t.Fatalf("wait applied: %v", err)
	}
	v, err := mirror.GetFrom(1, "profile")
	if err != nil || string(v.Value) != "v1" {
		t.Fatalf("mirror read after WaitApplied = %q, %v", v.Value, err)
	}
	thru, err := mirror.AppliedThrough(1)
	if err != nil || thru < res.Seq {
		t.Fatalf("AppliedThrough = %d, %v; want ≥ %d", thru, err, res.Seq)
	}
}

func TestWaitAppliedOwnerIsImmediate(t *testing.T) {
	c := startKVCluster(t, 2)
	owner := c.stores[0]
	res, err := owner.Put("k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := owner.WaitApplied(ctx, 1, res.Seq); err != nil {
		t.Fatalf("owner wait should be immediate: %v", err)
	}
}

func TestWaitAppliedContextCancel(t *testing.T) {
	c := startKVCluster(t, 2)
	mirror := c.stores[1]
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Sequence far beyond anything sent: must time out, not hang.
	if err := mirror.WaitApplied(ctx, 1, 999999); err == nil {
		t.Fatal("wait for unreachable sequence succeeded")
	}
}

func TestWaitAppliedBadOrigin(t *testing.T) {
	c := startKVCluster(t, 2)
	ctx := context.Background()
	if err := c.stores[0].WaitApplied(ctx, 0, 1); err == nil {
		t.Fatal("origin 0 accepted")
	}
	if err := c.stores[0].WaitApplied(ctx, 9, 1); err == nil {
		t.Fatal("origin 9 accepted")
	}
	if _, err := c.stores[0].AppliedThrough(0); err == nil {
		t.Fatal("AppliedThrough origin 0 accepted")
	}
}

func TestWaitAppliedManyConcurrentWaiters(t *testing.T) {
	c := startKVCluster(t, 2)
	owner, mirror := c.stores[0], c.stores[1]

	const writes = 50
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, writes)
	seqs := make([]uint64, writes)
	for i := 0; i < writes; i++ {
		res, err := owner.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = res.Seq
	}
	for i := 0; i < writes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := mirror.WaitApplied(ctx, 1, seqs[i]); err != nil {
				errs <- fmt.Errorf("waiter %d: %w", i, err)
				return
			}
			if _, err := mirror.GetFrom(1, fmt.Sprintf("k%d", i)); err != nil {
				errs <- fmt.Errorf("read %d after wait: %w", i, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
