package wankv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
	"stabilizer/internal/kvstore"
)

type testCluster struct {
	nodes  []*core.Node
	stores []*Store
}

func startKVCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	topo := &config.Topology{Self: 1}
	for i := 1; i <= n; i++ {
		topo.Nodes = append(topo.Nodes, config.Node{
			Name: fmt.Sprintf("n%d", i), AZ: fmt.Sprintf("az%d", i),
		})
	}
	network := emunet.NewMemNetwork(nil)
	c := &testCluster{}
	for i := 1; i <= n; i++ {
		node, err := core.Open(core.Config{Topology: topo.WithSelf(i), Network: network})
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		c.nodes = append(c.nodes, node)
		c.stores = append(c.stores, New(node))
	}
	t.Cleanup(func() {
		for _, node := range c.nodes {
			_ = node.Close()
		}
		_ = network.Close()
	})
	return c
}

func TestPutMirrorsToAllNodes(t *testing.T) {
	c := startKVCluster(t, 3)
	w := c.stores[0]
	if err := w.RegisterPredicate("all", "MIN(($ALLWNODES-$MYWNODE).delivered)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := w.PutWait(ctx, "user/42", []byte("alice"), "all")
	if err != nil {
		t.Fatalf("put wait: %v", err)
	}
	if res.Seq == 0 || res.Version == 0 {
		t.Fatalf("bad result %+v", res)
	}
	// Every mirror has it.
	for i := 2; i <= 3; i++ {
		v, err := c.stores[i-1].GetFrom(1, "user/42")
		if err != nil {
			t.Fatalf("node %d mirror read: %v", i, err)
		}
		if string(v.Value) != "alice" || v.Num != res.Version {
			t.Fatalf("node %d mirror = %q@%d, want alice@%d", i, v.Value, v.Num, res.Version)
		}
	}
	// The owner reads its own pool.
	v, err := w.Get("user/42")
	if err != nil || string(v.Value) != "alice" {
		t.Fatalf("owner read = %q, %v", v.Value, err)
	}
}

func TestVersionHistoryPreservedOnMirrors(t *testing.T) {
	c := startKVCluster(t, 2)
	w := c.stores[0]
	if err := w.RegisterPredicate("all", "MIN(($ALLWNODES-$MYWNODE).delivered)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var vers []uint64
	for i := 0; i < 5; i++ {
		res, err := w.PutWait(ctx, "k", []byte{byte(i)}, "all")
		if err != nil {
			t.Fatal(err)
		}
		vers = append(vers, res.Version)
	}
	before := time.Now()
	res, err := w.PutWait(ctx, "k", []byte{99}, "all")
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	v, err := c.stores[1].GetFrom(1, "k")
	if err != nil || v.Value[0] != 99 {
		t.Fatalf("latest mirror = %v, %v", v, err)
	}
	// get_by_time on the mirror sees the older version.
	old, err := c.stores[1].GetByTimeFrom(1, "k", before)
	if err != nil {
		t.Fatalf("get_by_time: %v", err)
	}
	if old.Value[0] != 4 {
		t.Fatalf("get_by_time value = %d, want 4", old.Value[0])
	}
	for i := 1; i < len(vers); i++ {
		if vers[i] <= vers[i-1] {
			t.Fatalf("versions not increasing: %v", vers)
		}
	}
}

func TestKeysOnMirror(t *testing.T) {
	c := startKVCluster(t, 2)
	w := c.stores[0]
	if err := w.RegisterPredicate("all", "MIN(($ALLWNODES-$MYWNODE).delivered)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var last PutResult
	for _, k := range []string{"a/1", "a/2", "b/1"} {
		var err error
		last, err = w.Put(k, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WaitStable(ctx, last.Seq, "all"); err != nil {
		t.Fatal(err)
	}
	keys, err := c.stores[1].Keys(1, "a/")
	if err != nil || len(keys) != 2 {
		t.Fatalf("mirror keys = %v, %v", keys, err)
	}
}

func TestGetFromBadOrigin(t *testing.T) {
	c := startKVCluster(t, 2)
	if _, err := c.stores[0].GetFrom(0, "k"); !errors.Is(err, ErrBadOrigin) {
		t.Fatalf("origin 0 err = %v", err)
	}
	if _, err := c.stores[0].GetFrom(9, "k"); !errors.Is(err, ErrBadOrigin) {
		t.Fatalf("origin 9 err = %v", err)
	}
}

func TestTwoWritersOwnPools(t *testing.T) {
	c := startKVCluster(t, 2)
	for i, s := range c.stores {
		if err := s.RegisterPredicate("all", "MIN(($ALLWNODES-$MYWNODE).delivered)"); err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The same key in two different pools holds different data —
	// pools are per-owner namespaces.
	if _, err := c.stores[0].PutWait(ctx, "cfg", []byte("one"), "all"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.stores[1].PutWait(ctx, "cfg", []byte("two"), "all"); err != nil {
		t.Fatal(err)
	}
	v1, err := c.stores[1].GetFrom(1, "cfg")
	if err != nil || string(v1.Value) != "one" {
		t.Fatalf("node2 mirror of node1 pool = %q, %v", v1.Value, err)
	}
	v2, err := c.stores[0].GetFrom(2, "cfg")
	if err != nil || string(v2.Value) != "two" {
		t.Fatalf("node1 mirror of node2 pool = %q, %v", v2.Value, err)
	}
}

func TestApplyHookFires(t *testing.T) {
	topo := &config.Topology{Self: 1, Nodes: []config.Node{
		{Name: "a", AZ: "z1"}, {Name: "b", AZ: "z2"},
	}}
	network := emunet.NewMemNetwork(nil)
	defer network.Close()
	n1, err := core.Open(core.Config{Topology: topo.WithSelf(1), Network: network})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := core.Open(core.Config{Topology: topo.WithSelf(2), Network: network})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	var mu sync.Mutex
	var hooks []string
	w1 := New(n1)
	New(n2, WithApplyHook(func(origin int, key string, ver uint64) {
		mu.Lock()
		hooks = append(hooks, fmt.Sprintf("%d:%s:%d", origin, key, ver))
		mu.Unlock()
	}))

	if err := w1.RegisterPredicate("all", "MIN(($ALLWNODES-$MYWNODE).delivered)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := w1.PutWait(ctx, "x", []byte("v"), "all"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hooks) != 1 || hooks[0] != "1:x:1" {
		t.Fatalf("hooks = %v", hooks)
	}
}

func TestWithLocalStoreUsesProvided(t *testing.T) {
	topo := &config.Topology{Self: 1, Nodes: []config.Node{{Name: "solo", AZ: "z"}}}
	network := emunet.NewMemNetwork(nil)
	defer network.Close()
	node, err := core.Open(core.Config{Topology: topo, Network: network})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	local := kvstore.New()
	_, _ = local.Put("preexisting", []byte("yes"))
	w := New(node, WithLocalStore(local))
	v, err := w.Get("preexisting")
	if err != nil || string(v.Value) != "yes" {
		t.Fatalf("preexisting = %q, %v", v.Value, err)
	}
}

func TestUpdateCodecRoundTrip(t *testing.T) {
	ts := time.Unix(42, 137)
	enc := encodeUpdate("key/name", []byte("value bytes"), 7, ts)
	key, val, ver, gotTS, err := decodeUpdate(enc)
	if err != nil {
		t.Fatal(err)
	}
	if key != "key/name" || !bytes.Equal(val, []byte("value bytes")) || ver != 7 || !gotTS.Equal(ts) {
		t.Fatalf("decoded %q %q %d %v", key, val, ver, gotTS)
	}
	// Foreign payloads are rejected, not mis-applied.
	if _, _, _, _, err := decodeUpdate([]byte("garbage-not-an-update")); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("garbage err = %v", err)
	}
	if _, _, _, _, err := decodeUpdate(nil); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("nil err = %v", err)
	}
}

func TestGetStabilityFrontierAdvances(t *testing.T) {
	c := startKVCluster(t, 2)
	w := c.stores[0]
	if err := w.RegisterPredicate("p", "MIN($ALLWNODES-$MYWNODE)"); err != nil {
		t.Fatal(err)
	}
	res, err := w.Put("k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.WaitStable(ctx, res.Seq, "p"); err != nil {
		t.Fatal(err)
	}
	f, err := w.GetStabilityFrontier("p")
	if err != nil || f < res.Seq {
		t.Fatalf("frontier = %d, %v; want ≥ %d", f, err, res.Seq)
	}
	// change_predicate is plumbed through.
	if err := w.ChangePredicate("p", "MAX($ALLWNODES-$MYWNODE)"); err != nil {
		t.Fatal(err)
	}
}
