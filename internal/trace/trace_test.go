package trace

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"time"
)

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(DefaultSpec())
	b := Generate(DefaultSpec())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
}

func TestGenerateMatchesPaperScale(t *testing.T) {
	spec := DefaultSpec()
	reqs := Generate(spec)
	total := TotalBytes(reqs)
	// Within 2% of the paper's 3.87 GB.
	if math.Abs(float64(total)-float64(spec.TotalBytes)) > 0.02*float64(spec.TotalBytes) {
		t.Fatalf("total bytes = %d, want ≈ %d", total, spec.TotalBytes)
	}
	// Paper: 517,294 packets at 8 KB. The synthetic workload should land
	// in the same ballpark (±25%: packet count depends on the size mix).
	msgs := Messages(reqs, 8<<10)
	if msgs < 380_000 || msgs > 650_000 {
		t.Fatalf("8KB packets = %d, want ≈ 517,294", msgs)
	}
}

func TestGenerateSortedAndInWindow(t *testing.T) {
	spec := DefaultSpec()
	reqs := Generate(spec)
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At }) {
		t.Fatal("requests not sorted by arrival time")
	}
	for _, r := range reqs {
		if r.At < 0 || r.At > spec.Duration {
			t.Fatalf("request %q at %v outside window %v", r.Name, r.At, spec.Duration)
		}
		if r.Size <= 0 {
			t.Fatalf("request %q has size %d", r.Name, r.Size)
		}
	}
}

func TestHugeFilesPresent(t *testing.T) {
	spec := DefaultSpec()
	reqs := Generate(spec)
	var huge []int64
	for _, r := range reqs {
		if r.Size > spec.MaxFileSize {
			huge = append(huge, r.Size)
		}
	}
	if len(huge) != len(spec.HugeSizes) {
		t.Fatalf("found %d huge files, want %d", len(huge), len(spec.HugeSizes))
	}
}

func TestHistogramShowsThreeSpikes(t *testing.T) {
	spec := DefaultSpec()
	reqs := Generate(spec)
	buckets := Histogram(reqs, 30*time.Second)
	spikes := 0
	for _, b := range buckets {
		if b.MaxFile > spec.MaxFileSize {
			spikes++
		}
	}
	// The three huge files can land in at most three distinct buckets.
	if spikes == 0 || spikes > 3 {
		t.Fatalf("found %d spike buckets, want 1..3 (distinct huge files)", spikes)
	}
	var total int64
	var files int
	for _, b := range buckets {
		total += b.Bytes
		files += b.Files
	}
	if total != TotalBytes(reqs) || files != len(reqs) {
		t.Fatalf("histogram conservation violated: %d/%d bytes, %d/%d files",
			total, TotalBytes(reqs), files, len(reqs))
	}
}

func TestScalePreservesShape(t *testing.T) {
	spec := DefaultSpec()
	small := spec.Scale(0.1)
	if small.Duration >= spec.Duration || small.TotalBytes >= spec.TotalBytes {
		t.Fatal("Scale(0.1) did not shrink the workload")
	}
	// Rate (bytes/sec) must be preserved so queueing dynamics match.
	origRate := float64(spec.TotalBytes) / spec.Duration.Seconds()
	newRate := float64(small.TotalBytes) / small.Duration.Seconds()
	if math.Abs(origRate-newRate)/origRate > 0.01 {
		t.Fatalf("scaling changed the data rate: %.0f vs %.0f B/s", origRate, newRate)
	}
	reqs := Generate(small)
	if got := TotalBytes(reqs); math.Abs(float64(got)-float64(small.TotalBytes)) > 0.05*float64(small.TotalBytes) {
		t.Fatalf("scaled trace bytes = %d, want ≈ %d", got, small.TotalBytes)
	}
}

func TestMessagesCountsEmptyFilesAsOnePacket(t *testing.T) {
	reqs := []Request{{Size: 0}, {Size: 1}, {Size: 8 << 10}, {Size: 8<<10 + 1}}
	if got := Messages(reqs, 8<<10); got != 1+1+1+2 {
		t.Fatalf("Messages = %d, want 5", got)
	}
}

func TestHistogramEmptyAndZeroWidth(t *testing.T) {
	if got := Histogram(nil, time.Second); got != nil {
		t.Fatalf("Histogram(nil) = %v", got)
	}
	if got := Histogram([]Request{{At: 1}}, 0); got != nil {
		t.Fatalf("Histogram(width=0) = %v", got)
	}
}
