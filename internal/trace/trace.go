// Package trace generates the synthetic Dropbox sync workload used by the
// Fig. 4/5/6 experiments. The real trace (Li et al., IMC'14 — user sync
// activity from 16:40:45 to 16:57:08 on 2012-09-20, 3.87 GB total) is not
// redistributable, so this generator reproduces its published
// characteristics deterministically from a seed:
//
//   - a ~17-minute window,
//   - ~3.87 GB of data overall,
//   - three huge files (~100-150 MB) that produce the three latency spikes
//     the paper observes in Fig. 5,
//   - a heavy-tailed mass of small files (log-normal sizes), with arrivals
//     concentrated in bursts ("most of the sync requests in each day are
//     concentrated within one hour or several minutes").
//
// All sizes and times scale down uniformly via Spec.Scale so experiments
// can run at laptop speed while preserving the workload's shape.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Request is one file sync request.
type Request struct {
	// At is the request's offset from the start of the trace.
	At time.Duration
	// Name identifies the file.
	Name string
	// Size is the file size in bytes.
	Size int64
}

// Spec parameterizes the generator.
type Spec struct {
	// Seed makes the trace reproducible.
	Seed int64
	// Duration is the trace window (paper: 16m23s).
	Duration time.Duration
	// TotalBytes is the target volume (paper: 3.87 GB).
	TotalBytes int64
	// HugeSizes are the outlier file sizes; HugeAtFrac their positions
	// as fractions of the window.
	HugeSizes  []int64
	HugeAtFrac []float64
	// MedianSize and SigmaLog shape the log-normal size distribution of
	// ordinary files.
	MedianSize int64
	SigmaLog   float64
	// BurstFrac is the fraction of ordinary files that arrive inside
	// bursts; Bursts the number of burst centers; BurstWidth their
	// standard deviation.
	BurstFrac  float64
	Bursts     int
	BurstWidth time.Duration
	// MaxFileSize caps ordinary file sizes.
	MaxFileSize int64
}

// DefaultSpec reproduces the paper-scale workload.
func DefaultSpec() Spec {
	return Spec{
		Seed:        20120920,
		Duration:    16*time.Minute + 23*time.Second,
		TotalBytes:  3_870_000_000,
		HugeSizes:   []int64{118_000_000, 152_000_000, 97_000_000},
		HugeAtFrac:  []float64{0.22, 0.52, 0.78},
		MedianSize:  60 << 10,
		SigmaLog:    1.9,
		BurstFrac:   0.6,
		Bursts:      4,
		BurstWidth:  40 * time.Second,
		MaxFileSize: 32 << 20,
	}
}

// Scale returns a copy of the spec with every size and time multiplied by
// factor (0 < factor ≤ 1 shrinks the workload while keeping its shape).
func (s Spec) Scale(factor float64) Spec {
	out := s
	out.Duration = time.Duration(float64(s.Duration) * factor)
	out.TotalBytes = int64(float64(s.TotalBytes) * factor)
	out.HugeSizes = make([]int64, len(s.HugeSizes))
	for i, h := range s.HugeSizes {
		out.HugeSizes[i] = int64(float64(h) * factor)
	}
	out.MedianSize = int64(float64(s.MedianSize) * factor)
	if out.MedianSize < 1024 {
		out.MedianSize = 1024
	}
	out.MaxFileSize = int64(float64(s.MaxFileSize) * factor)
	out.BurstWidth = time.Duration(float64(s.BurstWidth) * factor)
	return out
}

// Generate produces the request sequence, sorted by arrival time.
func Generate(spec Spec) []Request {
	rng := rand.New(rand.NewSource(spec.Seed))
	var reqs []Request

	var hugeTotal int64
	for i, size := range spec.HugeSizes {
		frac := 0.5
		if i < len(spec.HugeAtFrac) {
			frac = spec.HugeAtFrac[i]
		}
		reqs = append(reqs, Request{
			At:   time.Duration(float64(spec.Duration) * frac),
			Name: fmt.Sprintf("huge-%02d", i),
			Size: size,
		})
		hugeTotal += size
	}

	// Burst centers for ordinary traffic.
	centers := make([]time.Duration, spec.Bursts)
	for i := range centers {
		centers[i] = time.Duration(rng.Float64() * float64(spec.Duration))
	}

	mu := math.Log(float64(spec.MedianSize))
	var sum int64
	for i := 0; sum < spec.TotalBytes-hugeTotal; i++ {
		size := int64(math.Exp(mu + spec.SigmaLog*rng.NormFloat64()))
		if size < 128 {
			size = 128
		}
		if spec.MaxFileSize > 0 && size > spec.MaxFileSize {
			size = spec.MaxFileSize
		}
		var at time.Duration
		if rng.Float64() < spec.BurstFrac && len(centers) > 0 {
			c := centers[rng.Intn(len(centers))]
			at = c + time.Duration(rng.NormFloat64()*float64(spec.BurstWidth))
		} else {
			at = time.Duration(rng.Float64() * float64(spec.Duration))
		}
		if at < 0 {
			at = 0
		}
		if at > spec.Duration {
			at = spec.Duration
		}
		reqs = append(reqs, Request{
			At:   at,
			Name: fmt.Sprintf("file-%06d", i),
			Size: size,
		})
		sum += size
	}

	sort.Slice(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At })
	return reqs
}

// TotalBytes sums the request sizes.
func TotalBytes(reqs []Request) int64 {
	var sum int64
	for _, r := range reqs {
		sum += r.Size
	}
	return sum
}

// Messages returns the number of ≤chunkSize packets the trace expands to
// (the paper reports 517,294 for 8 KB packets). Each file contributes at
// least one packet.
func Messages(reqs []Request, chunkSize int) int64 {
	var n int64
	for _, r := range reqs {
		c := (r.Size + int64(chunkSize) - 1) / int64(chunkSize)
		if c == 0 {
			c = 1
		}
		n += c
	}
	return n
}

// Bucket is one Fig. 4 histogram bin.
type Bucket struct {
	Start time.Duration
	Bytes int64
	Files int
	// MaxFile is the largest single file in the bin (the Fig. 4 y-axis
	// plots per-request sizes; the max exposes the huge-file spikes).
	MaxFile int64
}

// Histogram bins the trace by arrival time (Fig. 4's shape).
func Histogram(reqs []Request, width time.Duration) []Bucket {
	if width <= 0 || len(reqs) == 0 {
		return nil
	}
	last := reqs[len(reqs)-1].At
	n := int(last/width) + 1
	out := make([]Bucket, n)
	for i := range out {
		out[i].Start = time.Duration(i) * width
	}
	for _, r := range reqs {
		b := &out[int(r.At/width)]
		b.Bytes += r.Size
		b.Files++
		if r.Size > b.MaxFile {
			b.MaxFile = r.Size
		}
	}
	return out
}
