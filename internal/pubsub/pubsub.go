// Package pubsub is the paper's pub/sub service prototype (§V-B): a thin
// broker layer over Stabilizer. One broker runs per data center; publish
// multicasts a message to every peer broker through the asynchronous data
// plane, and subscribe registers a callback for incoming messages. Brokers
// announce whether they have live subscribers; the publisher's delivery
// predicate tracks exactly the active brokers and is re-built with
// change_predicate whenever the active set changes — the dynamic
// reconfiguration mechanism evaluated in §VI-D.
//
// Two extensions the paper lists as easy follow-ups are implemented here:
//
//   - Topics. Publishers and subscribers can scope traffic to named
//     topics; activity announcements, delivery predicates and retention
//     are all per topic. The zero-value topic "" preserves the paper's
//     single-topic prototype behaviour.
//   - Retention (the prototype's take on Pulsar's persistent topics).
//     With WithRetention(n), each broker keeps the most recent n messages
//     per topic and replays them to late subscribers before live traffic.
package pubsub

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"stabilizer/internal/core"
)

// DefaultTopic is the paper's single implicit topic.
const DefaultTopic = ""

// DeliveryPredicateKey is the managed delivery predicate of DefaultTopic;
// other topics use DeliveryPredicateKeyFor.
const DeliveryPredicateKey = "pubsub_delivery"

// DeliveryPredicateKeyFor returns the managed predicate key for a topic.
func DeliveryPredicateKeyFor(topic string) string {
	if topic == DefaultTopic {
		return DeliveryPredicateKey
	}
	return DeliveryPredicateKey + "@" + topic
}

// methodSubState is the App selector announcing broker activity.
const methodSubState uint16 = 0x5053 // "PS"

// msgMagic marks pub/sub payloads on the shared data plane.
const msgMagic uint16 = 0x5042 // "PB"

// Errors returned by the broker.
var (
	// ErrNoSubscribers is returned by PublishWait when no broker (local
	// or remote) has a subscriber for the topic.
	ErrNoSubscribers = errors.New("pubsub: no active brokers")
	// ErrBadTopic rejects topics that do not fit the wire encoding.
	ErrBadTopic = errors.New("pubsub: topic too long")
)

// maxTopicLen bounds topic names on the wire.
const maxTopicLen = 1 << 10

// Message is one published message as seen by a subscriber.
type Message struct {
	// Topic the message was published under.
	Topic string
	// Origin is the publishing broker's node index.
	Origin int
	// Seq is the publisher-assigned sequence number.
	Seq uint64
	// Payload is the published data.
	Payload []byte
	// SentAt is the publisher's send timestamp; ReceivedAt the local
	// delivery timestamp (end-to-end latency = ReceivedAt - SentAt).
	SentAt     time.Time
	ReceivedAt time.Time
	// Replayed marks retained messages delivered to a late subscriber.
	Replayed bool
}

// SubscribeFunc consumes delivered messages.
type SubscribeFunc func(m Message)

// Option configures a Broker.
type Option func(*Broker)

// WithRetention keeps the most recent limit messages per topic and replays
// them to new local subscribers (0, the default, retains nothing — the
// paper's non-persistent prototype).
func WithRetention(limit int) Option {
	return func(b *Broker) {
		if limit > 0 {
			b.retention = limit
		}
	}
}

// topicState is one topic's bookkeeping on a broker.
type topicState struct {
	subs     map[int]SubscribeFunc
	active   map[int]bool // remote brokers with ≥1 subscriber
	retained []Message
}

// Broker is one data center's pub/sub endpoint.
type Broker struct {
	node      *core.Node
	self      int
	retention int

	mu      sync.Mutex
	topics  map[string]*topicState
	nextSub int
}

// New attaches a broker to node and installs the default topic's delivery
// predicate.
func New(node *core.Node, opts ...Option) (*Broker, error) {
	b := &Broker{
		node:   node,
		self:   node.Self(),
		topics: make(map[string]*topicState),
	}
	for _, o := range opts {
		o(b)
	}
	b.mu.Lock()
	st := b.topic(DefaultTopic)
	src := b.predicateLocked(st)
	b.mu.Unlock()
	if err := node.RegisterPredicate(DeliveryPredicateKey, src); err != nil {
		return nil, fmt.Errorf("pubsub: register delivery predicate: %w", err)
	}
	node.OnDeliver(b.deliver)
	node.OnApp(b.handleApp)
	node.OnPeerUp(b.announceTo)
	return b, nil
}

// topic returns (creating) a topic's state. Caller holds b.mu.
func (b *Broker) topic(name string) *topicState {
	st, ok := b.topics[name]
	if !ok {
		st = &topicState{
			subs:   make(map[int]SubscribeFunc),
			active: make(map[int]bool),
		}
		b.topics[name] = st
	}
	return st
}

// Publish multicasts payload on the default topic.
func (b *Broker) Publish(payload []byte) (uint64, error) {
	return b.PublishTopic(DefaultTopic, payload)
}

// PublishTopic multicasts payload on the named topic through the
// asynchronous data plane and returns immediately with its sequence number.
func (b *Broker) PublishTopic(topic string, payload []byte) (uint64, error) {
	if len(topic) > maxTopicLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrBadTopic, len(topic))
	}
	buf := make([]byte, 0, 4+len(topic)+len(payload))
	buf = binary.BigEndian.AppendUint16(buf, msgMagic)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(topic)))
	buf = append(buf, topic...)
	buf = append(buf, payload...)
	seq, err := b.node.SendNoCopy(buf)
	if err != nil {
		return 0, err
	}
	b.retain(Message{
		Topic:   topic,
		Origin:  b.self,
		Seq:     seq,
		Payload: append([]byte{}, payload...),
		SentAt:  time.Now(),
	})
	return seq, nil
}

// PublishWait publishes on the default topic and blocks until every active
// broker has delivered the message to its subscribers.
func (b *Broker) PublishWait(ctx context.Context, payload []byte) (uint64, error) {
	return b.PublishWaitTopic(ctx, DefaultTopic, payload)
}

// PublishWaitTopic is PublishWait for a named topic.
func (b *Broker) PublishWaitTopic(ctx context.Context, topic string, payload []byte) (uint64, error) {
	b.mu.Lock()
	st := b.topic(topic)
	audience := len(st.active) + len(st.subs)
	b.mu.Unlock()
	if audience == 0 {
		return 0, fmt.Errorf("%w: topic %q", ErrNoSubscribers, topic)
	}
	if err := b.ensurePredicate(topic); err != nil {
		return 0, err
	}
	seq, err := b.PublishTopic(topic, payload)
	if err != nil {
		return 0, err
	}
	if err := b.node.WaitFor(ctx, seq, DeliveryPredicateKeyFor(topic)); err != nil {
		return seq, err
	}
	return seq, nil
}

// Subscribe registers fn for the default topic.
func (b *Broker) Subscribe(fn SubscribeFunc) (cancel func()) {
	return b.SubscribeTopic(DefaultTopic, fn)
}

// SubscribeTopic registers fn for incoming messages on topic and returns a
// cancel function. The broker announces topic activity on the first
// subscription and inactivity after the last cancellation. With retention
// enabled, fn first receives the retained backlog (Replayed = true).
func (b *Broker) SubscribeTopic(topic string, fn SubscribeFunc) (cancel func()) {
	b.mu.Lock()
	st := b.topic(topic)
	id := b.nextSub
	b.nextSub++
	first := len(st.subs) == 0
	st.subs[id] = fn
	backlog := make([]Message, len(st.retained))
	copy(backlog, st.retained)
	b.mu.Unlock()

	for _, m := range backlog {
		m.Replayed = true
		m.ReceivedAt = time.Now()
		fn(m)
	}
	if first {
		b.broadcastState(topic, true)
	}
	return func() {
		b.mu.Lock()
		st := b.topic(topic)
		if _, ok := st.subs[id]; !ok {
			b.mu.Unlock()
			return
		}
		delete(st.subs, id)
		last := len(st.subs) == 0
		b.mu.Unlock()
		if last {
			b.broadcastState(topic, false)
		}
	}
}

// ActiveBrokers lists the remote brokers holding default-topic subscribers.
func (b *Broker) ActiveBrokers() []int { return b.ActiveBrokersFor(DefaultTopic) }

// ActiveBrokersFor lists the remote brokers holding subscribers for topic.
func (b *Broker) ActiveBrokersFor(topic string) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.topic(topic)
	out := make([]int, 0, len(st.active))
	for n := range st.active {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Topics lists the topics this broker has seen, sorted.
func (b *Broker) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.topics))
	for t := range b.topics {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// DeliveryPredicate returns the default topic's current predicate source.
func (b *Broker) DeliveryPredicate() string { return b.DeliveryPredicateFor(DefaultTopic) }

// DeliveryPredicateFor returns a topic's current predicate source.
func (b *Broker) DeliveryPredicateFor(topic string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.predicateLocked(b.topic(topic))
}

// MonitorDelivery registers fn on the default topic's delivery frontier.
func (b *Broker) MonitorDelivery(fn func(frontier uint64)) (cancel func(), err error) {
	return b.node.MonitorStabilityFrontier(DeliveryPredicateKey, fn)
}

// Frontier reports the newest published sequence delivered at every active
// default-topic broker.
func (b *Broker) Frontier() (uint64, error) {
	return b.node.StabilityFrontier(DeliveryPredicateKey)
}

// Node exposes the underlying Stabilizer node (experiments use it to
// install custom predicates alongside the managed ones).
func (b *Broker) Node() *core.Node { return b.node }

// --- internals ---

// retain appends m to its topic's retained ring.
func (b *Broker) retain(m Message) {
	if b.retention == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.topic(m.Topic)
	st.retained = append(st.retained, m)
	if excess := len(st.retained) - b.retention; excess > 0 {
		st.retained = append([]Message{}, st.retained[excess:]...)
	}
}

// deliver hands one multicast message to local subscribers of its topic.
func (b *Broker) deliver(m core.Message) {
	if len(m.Payload) < 4 || binary.BigEndian.Uint16(m.Payload) != msgMagic {
		return
	}
	tlen := int(binary.BigEndian.Uint16(m.Payload[2:]))
	if len(m.Payload) < 4+tlen {
		return
	}
	topic := string(m.Payload[4 : 4+tlen])
	msg := Message{
		Topic:      topic,
		Origin:     m.Origin,
		Seq:        m.Seq,
		Payload:    m.Payload[4+tlen:],
		SentAt:     m.SentAt,
		ReceivedAt: time.Now(),
	}
	b.retain(msg)

	b.mu.Lock()
	st := b.topic(topic)
	fns := make([]SubscribeFunc, 0, len(st.subs))
	for _, fn := range st.subs {
		fns = append(fns, fn)
	}
	b.mu.Unlock()
	for _, fn := range fns {
		fn(msg)
	}
}

// handleApp processes broker-activity announcements: [active byte][topic].
func (b *Broker) handleApp(m core.AppMessage) {
	if m.Method != methodSubState || m.IsResponse || len(m.Payload) < 1 {
		return
	}
	activeNow := m.Payload[0] == 1
	topic := string(m.Payload[1:])
	b.mu.Lock()
	st := b.topic(topic)
	changed := st.active[m.From] != activeNow
	if activeNow {
		st.active[m.From] = true
	} else {
		delete(st.active, m.From)
	}
	src := b.predicateLocked(st)
	b.mu.Unlock()
	if changed {
		// Reconfigure the observation list at runtime (§VI-D).
		b.upsertPredicate(topic, src)
	}
}

// ensurePredicate makes sure the topic's managed predicate exists.
func (b *Broker) ensurePredicate(topic string) error {
	b.mu.Lock()
	src := b.predicateLocked(b.topic(topic))
	b.mu.Unlock()
	key := DeliveryPredicateKeyFor(topic)
	if err := b.node.RegisterPredicate(key, src); err != nil {
		// Already registered: refresh instead.
		return b.node.ChangePredicate(key, src)
	}
	return nil
}

func (b *Broker) upsertPredicate(topic, src string) {
	key := DeliveryPredicateKeyFor(topic)
	if err := b.node.ChangePredicate(key, src); err != nil {
		_ = b.node.RegisterPredicate(key, src)
	}
}

// broadcastState announces this broker's activity for topic to every peer.
func (b *Broker) broadcastState(topic string, active bool) {
	topo := b.node.Topology()
	for p := 1; p <= topo.N(); p++ {
		if p == b.self {
			continue
		}
		b.sendState(p, topic, active)
	}
}

// announceTo re-announces current state to a (re)connected peer so late
// joiners and healed partitions converge.
func (b *Broker) announceTo(peer int) {
	b.mu.Lock()
	var activeTopics []string
	for name, st := range b.topics {
		if len(st.subs) > 0 {
			activeTopics = append(activeTopics, name)
		}
	}
	b.mu.Unlock()
	for _, topic := range activeTopics {
		b.sendState(peer, topic, true)
	}
}

func (b *Broker) sendState(peer int, topic string, active bool) {
	p := make([]byte, 0, 1+len(topic))
	if active {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	p = append(p, topic...)
	_ = b.node.SendApp(peer, 0, methodSubState, false, p)
}

// predicateLocked renders the delivery predicate over a topic's active
// remote brokers. With no active remote broker, delivery is trivially
// local: the predicate tracks only the publisher itself. Caller holds mu.
//
// Note: because all topics share the publisher's sequence stream, a
// topic's frontier covering sequence s implies delivery of *all* messages
// ≤ s at that topic's active brokers — a conservative (stronger) bound.
func (b *Broker) predicateLocked(st *topicState) string {
	if len(st.active) == 0 {
		return "MIN($MYWNODE)"
	}
	nodes := make([]int, 0, len(st.active))
	for n := range st.active {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	terms := make([]string, len(nodes))
	for i, n := range nodes {
		terms[i] = fmt.Sprintf("$%d.delivered", n)
	}
	return "MIN(" + strings.Join(terms, ", ") + ")"
}
