package pubsub

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/emunet"
)

type psCluster struct {
	nodes   []*core.Node
	brokers []*Broker
}

func startBrokers(t *testing.T, n int) *psCluster {
	t.Helper()
	return startBrokersCustom(t, n)
}

func startBrokersCustom(t *testing.T, n int, opts ...Option) *psCluster {
	t.Helper()
	topo := &config.Topology{Self: 1}
	for i := 1; i <= n; i++ {
		topo.Nodes = append(topo.Nodes, config.Node{
			Name: fmt.Sprintf("dc%d", i), AZ: fmt.Sprintf("az%d", i),
		})
	}
	network := emunet.NewMemNetwork(nil)
	c := &psCluster{}
	for i := 1; i <= n; i++ {
		node, err := core.Open(core.Config{Topology: topo.WithSelf(i), Network: network})
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		b, err := New(node, opts...)
		if err != nil {
			t.Fatalf("broker %d: %v", i, err)
		}
		c.nodes = append(c.nodes, node)
		c.brokers = append(c.brokers, b)
	}
	t.Cleanup(func() {
		for _, node := range c.nodes {
			_ = node.Close()
		}
		_ = network.Close()
	})
	return c
}

func waitActive(t *testing.T, b *Broker, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(b.ActiveBrokers()) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("active brokers = %v, want %d", b.ActiveBrokers(), want)
}

func TestPublishReachesSubscribers(t *testing.T) {
	c := startBrokers(t, 3)
	var mu sync.Mutex
	got := make(map[int][]string)
	for i := 2; i <= 3; i++ {
		idx := i
		c.brokers[i-1].Subscribe(func(m Message) {
			mu.Lock()
			got[idx] = append(got[idx], string(m.Payload))
			mu.Unlock()
		})
	}
	waitActive(t, c.brokers[0], 2)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := c.brokers[0].PublishWait(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for idx := 2; idx <= 3; idx++ {
		if len(got[idx]) != 5 {
			t.Fatalf("broker %d got %d messages, want 5", idx, len(got[idx]))
		}
		for i, m := range got[idx] {
			if m != fmt.Sprintf("m%d", i) {
				t.Fatalf("broker %d message order broken: %v", idx, got[idx])
			}
		}
	}
}

func TestPredicateTracksActiveBrokers(t *testing.T) {
	c := startBrokers(t, 4)
	pub := c.brokers[0]
	if pred := pub.DeliveryPredicate(); pred != "MIN($MYWNODE)" {
		t.Fatalf("idle predicate = %q", pred)
	}
	cancel3 := c.brokers[2].Subscribe(func(Message) {})
	waitActive(t, pub, 1)
	if pred := pub.DeliveryPredicate(); pred != "MIN($3.delivered)" {
		t.Fatalf("predicate = %q", pred)
	}
	c.brokers[3].Subscribe(func(Message) {})
	waitActive(t, pub, 2)
	if pred := pub.DeliveryPredicate(); !strings.Contains(pred, "$3.delivered") || !strings.Contains(pred, "$4.delivered") {
		t.Fatalf("predicate = %q", pred)
	}
	// Unsubscribe drops the broker from the observation list (§VI-D).
	cancel3()
	waitActive(t, pub, 1)
	if pred := pub.DeliveryPredicate(); strings.Contains(pred, "$3") {
		t.Fatalf("predicate still watches inactive broker: %q", pred)
	}
}

func TestPublishWaitWithNoSubscribers(t *testing.T) {
	c := startBrokers(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.brokers[0].PublishWait(ctx, []byte("x")); !errors.Is(err, ErrNoSubscribers) {
		t.Fatalf("err = %v, want ErrNoSubscribers", err)
	}
}

func TestPublishWaitDoesNotWaitForSubscriberlessSites(t *testing.T) {
	// Node 3 has no subscriber; only node 2's delivery is awaited.
	c := startBrokers(t, 3)
	c.brokers[1].Subscribe(func(Message) {})
	waitActive(t, c.brokers[0], 1)
	deps, err := c.brokers[0].Node().PredicateDependsOn(DeliveryPredicateKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0] != 2 {
		t.Fatalf("delivery predicate depends on %v, want [2]", deps)
	}
}

func TestMultipleLocalSubscribersOneAnnouncement(t *testing.T) {
	c := startBrokers(t, 2)
	cancelA := c.brokers[1].Subscribe(func(Message) {})
	cancelB := c.brokers[1].Subscribe(func(Message) {})
	waitActive(t, c.brokers[0], 1)
	// Cancelling one of two keeps the broker active.
	cancelA()
	time.Sleep(50 * time.Millisecond)
	if got := c.brokers[0].ActiveBrokers(); len(got) != 1 {
		t.Fatalf("active = %v after partial unsubscribe", got)
	}
	cancelB()
	waitActive(t, c.brokers[0], 0)
	// Double-cancel is a no-op.
	cancelB()
}

func TestMonitorDeliveryAndFrontier(t *testing.T) {
	c := startBrokers(t, 2)
	c.brokers[1].Subscribe(func(Message) {})
	waitActive(t, c.brokers[0], 1)

	var mu sync.Mutex
	var monitored []uint64
	cancel, err := c.brokers[0].MonitorDelivery(func(f uint64) {
		mu.Lock()
		monitored = append(monitored, f)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	seq, err := c.brokers[0].PublishWait(ctx, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.brokers[0].Frontier()
	if err != nil || f < seq {
		t.Fatalf("frontier = %d, %v; want ≥ %d", f, err, seq)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(monitored) == 0 {
		t.Fatal("delivery monitor never fired")
	}
}

func TestSubscriberSeesTimestamps(t *testing.T) {
	c := startBrokers(t, 2)
	gotMsg := make(chan Message, 1)
	c.brokers[1].Subscribe(func(m Message) {
		select {
		case gotMsg <- m:
		default:
		}
	})
	waitActive(t, c.brokers[0], 1)
	before := time.Now()
	if _, err := c.brokers[0].Publish([]byte("ts")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-gotMsg:
		if m.SentAt.Before(before.Add(-time.Second)) || m.ReceivedAt.Before(m.SentAt) {
			t.Fatalf("timestamps wrong: sent %v received %v", m.SentAt, m.ReceivedAt)
		}
		if m.Origin != 1 || string(m.Payload) != "ts" {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered")
	}
}
