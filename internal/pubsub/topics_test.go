package pubsub

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTopicsAreIsolated(t *testing.T) {
	c := startBrokers(t, 3)
	var mu sync.Mutex
	got := make(map[string][]string) // topic -> payloads at broker 2

	for _, topic := range []string{"orders", "metrics"} {
		topic := topic
		c.brokers[1].SubscribeTopic(topic, func(m Message) {
			mu.Lock()
			got[topic] = append(got[topic], string(m.Payload))
			mu.Unlock()
		})
	}
	waitActiveTopic(t, c.brokers[0], "orders", 1)
	waitActiveTopic(t, c.brokers[0], "metrics", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.brokers[0].PublishWaitTopic(ctx, "orders", []byte("o1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.brokers[0].PublishWaitTopic(ctx, "metrics", []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.brokers[0].PublishWaitTopic(ctx, "orders", []byte("o2")); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got["orders"]) != 2 || got["orders"][0] != "o1" || got["orders"][1] != "o2" {
		t.Fatalf("orders = %v", got["orders"])
	}
	if len(got["metrics"]) != 1 || got["metrics"][0] != "m1" {
		t.Fatalf("metrics = %v", got["metrics"])
	}
}

func waitActiveTopic(t *testing.T, b *Broker, topic string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(b.ActiveBrokersFor(topic)) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("topic %q active = %v, want %d", topic, b.ActiveBrokersFor(topic), want)
}

func TestPerTopicPredicates(t *testing.T) {
	c := startBrokers(t, 3)
	c.brokers[1].SubscribeTopic("t1", func(Message) {})
	c.brokers[2].SubscribeTopic("t2", func(Message) {})
	waitActiveTopic(t, c.brokers[0], "t1", 1)
	waitActiveTopic(t, c.brokers[0], "t2", 1)

	p1 := c.brokers[0].DeliveryPredicateFor("t1")
	p2 := c.brokers[0].DeliveryPredicateFor("t2")
	if !strings.Contains(p1, "$2") || strings.Contains(p1, "$3") {
		t.Fatalf("t1 predicate = %q", p1)
	}
	if !strings.Contains(p2, "$3") || strings.Contains(p2, "$2") {
		t.Fatalf("t2 predicate = %q", p2)
	}
	// Distinct key namespaces.
	if DeliveryPredicateKeyFor("t1") == DeliveryPredicateKeyFor("t2") {
		t.Fatal("topic predicate keys collide")
	}
	if DeliveryPredicateKeyFor(DefaultTopic) != DeliveryPredicateKey {
		t.Fatal("default topic key mismatch")
	}
}

func TestPublishWaitUnknownTopicNoSubscribers(t *testing.T) {
	c := startBrokers(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.brokers[0].PublishWaitTopic(ctx, "ghost", []byte("x")); !errors.Is(err, ErrNoSubscribers) {
		t.Fatalf("err = %v, want ErrNoSubscribers", err)
	}
}

func TestTopicTooLong(t *testing.T) {
	c := startBrokers(t, 2)
	if _, err := c.brokers[0].PublishTopic(strings.Repeat("x", 5000), nil); !errors.Is(err, ErrBadTopic) {
		t.Fatalf("err = %v, want ErrBadTopic", err)
	}
}

func TestTopicsListing(t *testing.T) {
	c := startBrokers(t, 2)
	c.brokers[0].SubscribeTopic("b-topic", func(Message) {})
	c.brokers[0].SubscribeTopic("a-topic", func(Message) {})
	topics := c.brokers[0].Topics()
	// DefaultTopic ("") is always present.
	if len(topics) != 3 || topics[1] != "a-topic" || topics[2] != "b-topic" {
		t.Fatalf("topics = %q", topics)
	}
}

func TestRetentionReplaysBacklog(t *testing.T) {
	topo := startBrokers(t, 2) // broker without retention on node 2
	_ = topo

	c := startBrokersWithOpts(t, 2, WithRetention(3))
	pub, sub := c.brokers[0], c.brokers[1]

	// Publish five messages with NO subscriber anywhere.
	for _, p := range []string{"m1", "m2", "m3", "m4", "m5"} {
		if _, err := pub.PublishTopic("logs", []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the remote broker has retained the tail.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		sub.mu.Lock()
		n := len(sub.topic("logs").retained)
		sub.mu.Unlock()
		if n == 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A late subscriber receives exactly the retained tail, marked
	// Replayed, in order.
	var mu sync.Mutex
	var replayed []string
	sub.SubscribeTopic("logs", func(m Message) {
		if m.Replayed {
			mu.Lock()
			replayed = append(replayed, string(m.Payload))
			mu.Unlock()
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if len(replayed) != 3 || replayed[0] != "m3" || replayed[2] != "m5" {
		t.Fatalf("replayed = %v, want [m3 m4 m5]", replayed)
	}
}

func TestRetentionDisabledByDefault(t *testing.T) {
	c := startBrokers(t, 2)
	if _, err := c.brokers[0].Publish([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	seen := false
	c.brokers[1].Subscribe(func(m Message) {
		if m.Replayed {
			seen = true
		}
	})
	time.Sleep(20 * time.Millisecond)
	if seen {
		t.Fatal("non-retaining broker replayed a message")
	}
}

// startBrokersWithOpts is startBrokers with broker options.
func startBrokersWithOpts(t *testing.T, n int, opts ...Option) *psCluster {
	t.Helper()
	c := startBrokersCustom(t, n, opts...)
	return c
}
