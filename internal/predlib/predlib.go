// Package predlib builds commonly used stability-frontier predicate sources
// from a topology: the six consistency models of the paper's Table III
// (OneRegion, MajorityRegions, AllRegions, OneWNode, MajorityWNodes,
// AllWNodes) plus quorum read/write predicates (§IV-B).
//
// All builders return plain DSL source strings, so applications can inspect
// them, tweak them, or feed them straight to RegisterPredicate.
package predlib

import (
	"fmt"
	"strings"

	"stabilizer/internal/adaptive"
	"stabilizer/internal/config"
)

// Table III predicate names.
const (
	OneRegionKey       = "OneRegion"
	MajorityRegionsKey = "MajorityRegions"
	AllRegionsKey      = "AllRegions"
	OneWNodeKey        = "OneWNode"
	MajorityWNodesKey  = "MajorityWNodes"
	AllWNodesKey       = "AllWNodes"
)

// remoteRegionMaxTerms returns one MAX($AZ_<region>) term per region other
// than the local node's, in topology order.
func remoteRegionMaxTerms(topo *config.Topology) []string {
	self := topo.SelfNode()
	selfRegion := self.Region
	if selfRegion == "" {
		selfRegion = self.AZ
	}
	var terms []string
	for _, r := range topo.Regions() {
		if r == selfRegion {
			continue
		}
		terms = append(terms, fmt.Sprintf("MAX($AZ_%s)", r))
	}
	return terms
}

// OneRegion claims a message stable once any WAN node in any remote region
// acknowledges it (Table III row 1).
func OneRegion(topo *config.Topology) string {
	return "MAX(" + strings.Join(remoteRegionMaxTerms(topo), ", ") + ")"
}

// MajorityRegions claims a message stable once a majority of the remote
// regions acknowledge it (Table III row 2).
func MajorityRegions(topo *config.Topology) string {
	terms := remoteRegionMaxTerms(topo)
	k := len(terms)/2 + 1
	return fmt.Sprintf("KTH_MAX(%d, %s)", k, strings.Join(terms, ", "))
}

// AllRegions claims a message stable once every remote region acknowledges
// it (Table III row 3).
func AllRegions(topo *config.Topology) string {
	return "MIN(" + strings.Join(remoteRegionMaxTerms(topo), ", ") + ")"
}

// OneWNode claims a message stable once any remote WAN node acknowledges it
// (Table III row 4).
func OneWNode() string { return "MAX($ALLWNODES-$MYWNODE)" }

// MajorityWNodes claims a message stable once a majority of all WAN nodes
// (excluding the sender from the counted set, as in Table III) acknowledge
// it (Table III row 5).
func MajorityWNodes() string {
	return "KTH_MAX(SIZEOF($ALLWNODES)/2+1, ($ALLWNODES-$MYWNODE))"
}

// AllWNodes claims a message stable once every remote WAN node acknowledges
// it (Table III row 6).
func AllWNodes() string { return "MIN($ALLWNODES-$MYWNODE)" }

// TableIII returns all six predicates of the paper's Table III for topo,
// keyed by their paper names.
func TableIII(topo *config.Topology) map[string]string {
	return map[string]string{
		OneRegionKey:       OneRegion(topo),
		MajorityRegionsKey: MajorityRegions(topo),
		AllRegionsKey:      AllRegions(topo),
		OneWNodeKey:        OneWNode(),
		MajorityWNodesKey:  MajorityWNodes(),
		AllWNodesKey:       AllWNodes(),
	}
}

// TableIIIOrder lists the Table III predicate keys in the paper's order.
func TableIIIOrder() []string {
	return []string{
		OneRegionKey, MajorityRegionsKey, AllRegionsKey,
		OneWNodeKey, MajorityWNodesKey, AllWNodesKey,
	}
}

// nodeTerms renders member node indexes as $i operands.
func nodeTerms(members []int) []string {
	terms := make([]string, len(members))
	for i, m := range members {
		terms[i] = fmt.Sprintf("$%d", m)
	}
	return terms
}

// QuorumWrite builds the write predicate of the quorum protocol (§IV-B): a
// write completes once nw of the member replicas acknowledge it.
func QuorumWrite(members []int, nw int) string {
	return fmt.Sprintf("KTH_MIN(%d, %s)", nw, strings.Join(nodeTerms(members), ", "))
}

// QuorumRead builds the read-progress predicate of the quorum protocol: the
// frontier up to which nr member replicas have the data.
func QuorumRead(members []int, nr int) string {
	return fmt.Sprintf("KTH_MIN(%d, %s)", nr, strings.Join(nodeTerms(members), ", "))
}

// ExcludeNodes rewrites a "wait for all remote sites" predicate to exclude
// the listed nodes — the paper's dynamic reconfiguration idiom (§VI-D).
func ExcludeNodes(excluded []int) string {
	expr := "$ALLWNODES-$MYWNODE"
	for _, n := range excluded {
		expr += fmt.Sprintf("-$%d", n)
	}
	return "MIN(" + expr + ")"
}

// KOfRemote waits until at least k remote sites acknowledge (the "three
// sites" style predicate of §VI-D).
func KOfRemote(k int) string {
	return fmt.Sprintf("KTH_MAX(%d, $ALLWNODES-$MYWNODE)", k)
}

// mustLadder wraps adaptive.NewLadder for the preset builders below, whose
// rungs are fixed distinct sources — a validation failure is a library bug,
// not a caller mistake.
func mustLadder(rungs ...adaptive.Rung) adaptive.Ladder {
	l, err := adaptive.NewLadder(rungs...)
	if err != nil {
		panic("predlib: invalid preset ladder: " + err.Error())
	}
	return l
}

// LadderWNodes is the canonical WAN-node adaptation ladder for the adaptive
// controller: all remote WAN nodes, then a majority, then any one —
// Table III rows 6, 5, 4 from strongest to weakest.
func LadderWNodes() adaptive.Ladder {
	return mustLadder(
		adaptive.Rung{Name: "all", Source: AllWNodes()},
		adaptive.Rung{Name: "majority", Source: MajorityWNodes()},
		adaptive.Rung{Name: "one", Source: OneWNode()},
	)
}

// LadderAllMajorityK builds the three-rung ladder the §VI-D reconfiguration
// example sketches: all remote WAN nodes, a majority of them, then any k of
// them as the escape hatch under wide outages.
func LadderAllMajorityK(k int) adaptive.Ladder {
	return mustLadder(
		adaptive.Rung{Name: "all", Source: AllWNodes()},
		adaptive.Rung{Name: "majority", Source: MajorityWNodes()},
		adaptive.Rung{Name: fmt.Sprintf("k%d", k), Source: KOfRemote(k)},
	)
}

// LadderRegions is the region-granular adaptation ladder: every remote
// region, then a majority of them, then any one — Table III rows 3, 2, 1
// from strongest to weakest.
func LadderRegions(topo *config.Topology) adaptive.Ladder {
	return mustLadder(
		adaptive.Rung{Name: "all-regions", Source: AllRegions(topo)},
		adaptive.Rung{Name: "majority-regions", Source: MajorityRegions(topo)},
		adaptive.Rung{Name: "one-region", Source: OneRegion(topo)},
	)
}
