package predlib

import (
	"strings"
	"testing"

	"stabilizer/internal/adaptive"
	"stabilizer/internal/config"
	"stabilizer/internal/core"
	"stabilizer/internal/dsl"
	"stabilizer/internal/frontier"
)

func env(t *testing.T, topo *config.Topology) dsl.Env {
	t.Helper()
	return core.NewDSLEnv(topo, frontier.NewTypes())
}

func TestTableIIICompilesOnEC2(t *testing.T) {
	topo := config.EC2Topology(1)
	e := env(t, topo)
	preds := TableIII(topo)
	if len(preds) != 6 {
		t.Fatalf("TableIII returned %d predicates, want 6", len(preds))
	}
	for name, src := range preds {
		if _, err := dsl.Compile(src, e); err != nil {
			t.Errorf("%s (%s): %v", name, src, err)
		}
	}
}

func TestTableIIIMatchesPaperForms(t *testing.T) {
	topo := config.EC2Topology(1)
	if got := OneWNode(); got != "MAX($ALLWNODES-$MYWNODE)" {
		t.Fatalf("OneWNode = %q", got)
	}
	if got := AllWNodes(); got != "MIN($ALLWNODES-$MYWNODE)" {
		t.Fatalf("AllWNodes = %q", got)
	}
	if got := MajorityWNodes(); got != "KTH_MAX(SIZEOF($ALLWNODES)/2+1, ($ALLWNODES-$MYWNODE))" {
		t.Fatalf("MajorityWNodes = %q", got)
	}
	// Region predicates must reference every remote region exactly once.
	for _, src := range []string{OneRegion(topo), MajorityRegions(topo), AllRegions(topo)} {
		for _, region := range []string{"North_Virginia", "Oregon", "Ohio"} {
			if !strings.Contains(src, "$AZ_"+region) {
				t.Errorf("%q missing region %s", src, region)
			}
		}
		if strings.Contains(src, "North_California") {
			t.Errorf("%q includes the sender's own region", src)
		}
	}
	// MajorityRegions needs 2 of the 3 remote regions.
	if src := MajorityRegions(topo); !strings.HasPrefix(src, "KTH_MAX(2,") {
		t.Fatalf("MajorityRegions = %q, want KTH_MAX(2, ...)", src)
	}
}

func TestTableIIIOrderCoversAllKeys(t *testing.T) {
	topo := config.EC2Topology(1)
	preds := TableIII(topo)
	order := TableIIIOrder()
	if len(order) != len(preds) {
		t.Fatalf("order has %d entries, map has %d", len(order), len(preds))
	}
	for _, k := range order {
		if _, ok := preds[k]; !ok {
			t.Fatalf("ordered key %q missing from TableIII", k)
		}
	}
}

func TestQuorumPredicates(t *testing.T) {
	topo := config.CloudLabTopology(2)
	e := env(t, topo)
	w := QuorumWrite([]int{1, 3, 4}, 2)
	if w != "KTH_MIN(2, $1, $3, $4)" {
		t.Fatalf("QuorumWrite = %q", w)
	}
	r := QuorumRead([]int{1, 3, 4}, 2)
	for _, src := range []string{w, r} {
		if _, err := dsl.Compile(src, e); err != nil {
			t.Errorf("compile %q: %v", src, err)
		}
	}
}

func TestReconfigurationBuilders(t *testing.T) {
	topo := config.CloudLabTopology(1)
	e := env(t, topo)
	if got := ExcludeNodes([]int{4}); got != "MIN($ALLWNODES-$MYWNODE-$4)" {
		t.Fatalf("ExcludeNodes = %q", got)
	}
	if got := KOfRemote(3); got != "KTH_MAX(3, $ALLWNODES-$MYWNODE)" {
		t.Fatalf("KOfRemote = %q", got)
	}
	for _, src := range []string{ExcludeNodes([]int{3, 4}), KOfRemote(2)} {
		if _, err := dsl.Compile(src, e); err != nil {
			t.Errorf("compile %q: %v", src, err)
		}
	}
}

func TestRegionFallbackToAZ(t *testing.T) {
	// Topology without regions: region builders group by AZ instead.
	topo := &config.Topology{
		Self: 1,
		Nodes: []config.Node{
			{Name: "A", AZ: "z1"},
			{Name: "B", AZ: "z2"},
			{Name: "C", AZ: "z3"},
		},
	}
	e := env(t, topo)
	src := AllRegions(topo)
	if strings.Contains(src, "z1") {
		t.Fatalf("AllRegions includes local AZ: %q", src)
	}
	if _, err := dsl.Compile(src, e); err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
}

func TestLadderPresets(t *testing.T) {
	topo := config.EC2Topology(1)
	e := env(t, topo)
	presets := map[string]adaptive.Ladder{
		"LadderWNodes":       LadderWNodes(),
		"LadderAllMajorityK": LadderAllMajorityK(2),
		"LadderRegions":      LadderRegions(topo),
	}
	for name, l := range presets {
		if l.Len() != 3 {
			t.Errorf("%s has %d rungs, want 3", name, l.Len())
		}
		// Strongest first, and every rung compiles on the EC2 topology.
		for _, r := range l.Rungs() {
			if _, err := dsl.Compile(r.Source, e); err != nil {
				t.Errorf("%s rung %q (%s): %v", name, r.Name, r.Source, err)
			}
		}
	}
	if got := presets["LadderAllMajorityK"].Rung(2).Source; got != KOfRemote(2) {
		t.Fatalf("LadderAllMajorityK weakest rung = %q", got)
	}
	if got := presets["LadderWNodes"].Rung(0).Source; got != AllWNodes() {
		t.Fatalf("LadderWNodes strongest rung = %q", got)
	}
	// Round-trips through the CLI form.
	for name, l := range presets {
		back, err := adaptive.ParseLadder(l.String())
		if err != nil {
			t.Fatalf("%s does not round-trip: %v", name, err)
		}
		if back.String() != l.String() {
			t.Fatalf("%s round-trip mismatch: %q vs %q", name, back.String(), l.String())
		}
	}
}
