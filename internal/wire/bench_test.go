package wire

import (
	"testing"
)

// repeatReader replays one encoded frame forever, so decode benchmarks
// measure the Reader alone with no per-iteration source allocation.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.data[r.off:])
	r.off += n
	if r.off == len(r.data) {
		r.off = 0
	}
	return n, nil
}

func benchmarkEncode(b *testing.B, msg Message) {
	b.Helper()
	var frame []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame = AppendFrame(frame[:0], msg)
	}
	b.SetBytes(int64(len(frame)))
}

func benchmarkDecode(b *testing.B, msg Message) {
	b.Helper()
	frame := AppendFrame(nil, msg)
	r := NewReader(&repeatReader{data: frame})
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeData1K(b *testing.B) {
	benchmarkEncode(b, &Data{Seq: 42, SentUnixNano: 1700000000, Payload: make([]byte, 1024)})
}

func BenchmarkEncodeAck(b *testing.B) {
	benchmarkEncode(b, &Ack{Origin: 1, By: 2, Type: 3, Seq: 99})
}

func BenchmarkDecodeData1K(b *testing.B) {
	benchmarkDecode(b, &Data{Seq: 42, SentUnixNano: 1700000000, Payload: make([]byte, 1024)})
}

func BenchmarkDecodeData64(b *testing.B) {
	benchmarkDecode(b, &Data{Seq: 42, SentUnixNano: 1700000000, Payload: make([]byte, 64)})
}

func BenchmarkDecodeAck(b *testing.B) {
	benchmarkDecode(b, &Ack{Origin: 1, By: 2, Type: 3, Seq: 99})
}

func BenchmarkDecodeHeartbeat(b *testing.B) {
	benchmarkDecode(b, &Heartbeat{Clock: 7})
}
