package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msg Message, fresh func() Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatalf("write %T: %v", msg, err)
	}
	r := NewReader(&buf)
	got, err := r.Next()
	if err != nil {
		t.Fatalf("read %T: %v", msg, err)
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []Message{
		&Hello{From: 3, Epoch: 42},
		&HelloAck{From: 7, LastSeq: 1 << 40},
		&Data{Seq: 99, SentUnixNano: 123456789, Payload: []byte("payload")},
		&Data{Seq: 1, Payload: nil},
		&Ack{Origin: 1, By: 5, Type: 16, Seq: 77},
		&Heartbeat{Clock: 8},
		&HeartbeatEcho{Clock: 8},
		&App{ID: 12, Method: 0x5152, IsResponse: true, From: 2, Payload: []byte{0, 1, 2}},
		&App{ID: 0, Method: 1, IsResponse: false, From: 8, Payload: []byte{}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m, nil)
		if got.Kind() != m.Kind() {
			t.Fatalf("kind mismatch: sent %v got %v", m.Kind(), got.Kind())
		}
		// Normalize empty-vs-nil payloads before deep comparison.
		normalize := func(msg Message) {
			switch v := msg.(type) {
			case *Data:
				if len(v.Payload) == 0 {
					v.Payload = nil
				}
			case *App:
				if len(v.Payload) == 0 {
					v.Payload = nil
				}
			}
		}
		normalize(m)
		normalize(got)
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\nsent %#v\ngot  %#v", m, got)
		}
	}
}

func TestStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	const n = 100
	for i := 0; i < n; i++ {
		if err := WriteFrame(&buf, &Data{Seq: uint64(i + 1), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i := 0; i < n; i++ {
		msg, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		d, ok := msg.(*Data)
		if !ok || d.Seq != uint64(i+1) {
			t.Fatalf("frame %d: got %#v", i, msg)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream: err = %v, want EOF", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	full := AppendFrame(nil, &Data{Seq: 5, Payload: bytes.Repeat([]byte{7}, 100)})
	for cut := 1; cut < len(full); cut += 17 {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.Next(); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestUnknownKindRejected(t *testing.T) {
	frame := []byte{0, 0, 0, 2, 0xEE, 0x01}
	r := NewReader(bytes.NewReader(frame))
	if _, err := r.Next(); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	r := NewReader(bytes.NewReader(hdr))
	if _, err := r.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestZeroLengthFrameRejected(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0, 0, 0, 0}))
	if _, err := r.Next(); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	// A Heartbeat body is exactly 8 bytes; add one extra.
	body := append([]byte{byte(KindHeartbeat)}, make([]byte, 9)...)
	frame := append([]byte{0, 0, 0, byte(len(body))}, body...)
	r := NewReader(bytes.NewReader(frame))
	if _, err := r.Next(); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}

// TestQuickDataRoundTrip property-checks the Data codec.
func TestQuickDataRoundTrip(t *testing.T) {
	f := func(seq uint64, nano int64, payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &Data{Seq: seq, SentUnixNano: nano, Payload: payload}); err != nil {
			return false
		}
		msg, err := NewReader(&buf).Next()
		if err != nil {
			return false
		}
		d, ok := msg.(*Data)
		return ok && d.Seq == seq && d.SentUnixNano == nano && bytes.Equal(d.Payload, payload)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAckRoundTrip property-checks the Ack codec.
func TestQuickAckRoundTrip(t *testing.T) {
	f := func(origin, by, typ uint16, seq uint64) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &Ack{Origin: origin, By: by, Type: typ, Seq: seq}); err != nil {
			return false
		}
		msg, err := NewReader(&buf).Next()
		if err != nil {
			return false
		}
		a, ok := msg.(*Ack)
		return ok && a.Origin == origin && a.By == by && a.Type == typ && a.Seq == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecoderNeverPanics feeds random bytes to the frame decoder.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		r := NewReader(bytes.NewReader(junk))
		for {
			if _, err := r.Next(); err != nil {
				return true // any error is fine; panics are not
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestReaderScratchReuse pins the Reader's zero-alloc contract: hot-path
// kinds decode into Reader-owned scratch structs (same pointer every call),
// while payload slices are fresh per frame and survive later calls.
func TestReaderScratchReuse(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, &Data{Seq: 1, Payload: []byte("first")})
	_ = WriteFrame(&buf, &Ack{Origin: 1, By: 2, Type: 3, Seq: 10})
	_ = WriteFrame(&buf, &Data{Seq: 2, Payload: []byte("second")})
	_ = WriteFrame(&buf, &Heartbeat{Clock: 4})
	r := NewReader(&buf)

	m1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	d1 := m1.(*Data)
	p1 := d1.Payload
	if _, err := r.Next(); err != nil { // Ack overwrites nothing of Data
		t.Fatal(err)
	}
	m3, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	d3 := m3.(*Data)
	if d1 != d3 {
		t.Fatal("Data frames decoded into distinct structs; want reused scratch")
	}
	if d3.Seq != 2 || string(d3.Payload) != "second" {
		t.Fatalf("second Data = %+v", d3)
	}
	// The first payload slice must still be intact after two more frames.
	if string(p1) != "first" {
		t.Fatalf("retained payload corrupted: %q", p1)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderBufferShrinksAfterOversizeFrame checks one giant frame does not
// pin its body buffer once normal-sized frames resume.
func TestReaderBufferShrinksAfterOversizeFrame(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, 2<<20)
	_ = WriteFrame(&buf, &Data{Seq: 1, Payload: big})
	_ = WriteFrame(&buf, &Data{Seq: 2, Payload: []byte("small")})
	_ = WriteFrame(&buf, &Data{Seq: 3, Payload: []byte("again")})
	r := NewReader(&buf)
	for i := 1; i <= 3; i++ {
		m, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if d := m.(*Data); d.Seq != uint64(i) {
			t.Fatalf("frame %d: seq %d", i, d.Seq)
		}
	}
	if cap(r.buf) > bufKeep {
		t.Fatalf("body buffer still %d bytes after oversize frame", cap(r.buf))
	}
}

// TestAppendDataFrameHeaderMatchesAppendFrame pins the vectored-write
// invariant: a data frame header encoded standalone (for writev iovecs)
// followed by the payload must be byte-identical to AppendFrame's output.
func TestAppendDataFrameHeaderMatchesAppendFrame(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 1000)}
	for _, p := range payloads {
		d := &Data{Seq: 1 << 33, SentUnixNano: -7, Payload: p}
		whole := AppendFrame(nil, d)
		split := AppendDataFrameHeader(nil, d.Seq, d.SentUnixNano, len(p))
		if len(split) != DataFrameOverhead {
			t.Fatalf("header length %d, want DataFrameOverhead %d", len(split), DataFrameOverhead)
		}
		split = append(split, p...)
		if !bytes.Equal(whole, split) {
			t.Fatalf("payload len %d: header+payload differs from AppendFrame:\n%x\nvs\n%x", len(p), split, whole)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindHello; k <= KindHeartbeatEcho; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Fatalf("kind %d has bad name %q", k, s)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatalf("unknown kind string = %q", Kind(200).String())
	}
}
